// Channel-survey: sweep every overlapped ZigBee channel and every QAM
// modulation, measuring the actual in-band power reduction from generated
// waveforms and the WiFi overhead of each plan. Reproduces the paper's
// observation that CH4 (no pilot subcarrier) is the best home for a
// ZigBee network under a SledZig WiFi.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sledzig"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 500)
	rng.Read(payload)

	type setting struct {
		mod  sledzig.Modulation
		rate sledzig.CodeRate
	}
	settings := []setting{
		{sledzig.QAM16, sledzig.Rate12},
		{sledzig.QAM64, sledzig.Rate23},
		{sledzig.QAM256, sledzig.Rate34},
	}
	channels := []sledzig.Channel{sledzig.CH1, sledzig.CH2, sledzig.CH3, sledzig.CH4}

	fmt.Printf("%-22s%8s%14s%12s\n", "setting", "channel", "band drop", "overhead")
	best := sledzig.Channel(0)
	bestDrop := 0.0
	for _, s := range settings {
		for _, ch := range channels {
			cfg := sledzig.Config{Modulation: s.mod, CodeRate: s.rate, Channel: ch}
			drop, err := sledzig.MeasureBandReduction(cfg, payload)
			if err != nil {
				log.Fatal(err)
			}
			enc, err := sledzig.NewEncoder(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-22s%8v%11.1f dB%11.2f%%\n",
				fmt.Sprintf("%v r=%v", s.mod, s.rate), ch, drop, 100*enc.OverheadFraction())
			if drop > bestDrop {
				bestDrop, best = drop, ch
			}
		}
	}
	fmt.Printf("\nbest protected channel: %v (%.1f dB below normal WiFi)\n", best, bestDrop)
	fmt.Println("CH4 wins because it overlaps no pilot subcarrier — the pilot is the")
	fmt.Println("one tone SledZig cannot turn down (paper section IV-E).")
}
