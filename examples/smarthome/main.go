// Smarthome: the paper's motivating scenario. A ZigBee sensor network
// (door sensors, thermostats) shares a flat with a busy WiFi access point
// four meters away. The example simulates the sensors' throughput under
// the stock AP and under a SledZig-enabled AP, across WiFi load levels.
package main

import (
	"fmt"
	"log"

	"sledzig"
)

func main() {
	fmt.Println("ZigBee sensor network 4 m from a WiFi AP (channel CH3 of the AP's band)")
	fmt.Printf("%-10s%20s%20s%14s\n", "WiFi load", "stock AP (kbit/s)", "SledZig AP (kbit/s)", "WiFi goodput")

	for _, duty := range []float64{0.25, 0.5, 0.75, 1.0} {
		base := sledzig.CoexistenceConfig{
			Modulation: sledzig.QAM256,
			CodeRate:   sledzig.Rate34,
			Channel:    sledzig.CH3,
			DWZ:        4, // AP to sensor hub
			DZ:         1, // sensor to hub
			DW:         1, // AP to its client
			DutyRatio:  duty,
			Duration:   10,
			Seed:       7,
			EnergyCCA:  true,
		}
		normal := base
		sled := base
		sled.UseSledZig = true

		rn, err := sledzig.SimulateCoexistence(normal)
		if err != nil {
			log.Fatal(err)
		}
		rs, err := sledzig.SimulateCoexistence(sled)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s%20.1f%20.1f%13.1f%%\n",
			fmt.Sprintf("%.0f%%", duty*100),
			rn.ZigBeeThroughputBps/1e3,
			rs.ZigBeeThroughputBps/1e3,
			100*rs.WiFiGoodputFraction)
	}

	fmt.Println("\nThe stock AP's carrier-sense footprint silences the sensors whenever it")
	fmt.Println("is busy; the SledZig AP drops its in-channel energy so the sensors keep")
	fmt.Println("reporting, costing the AP only the extra-bit overhead shown above.")
}
