// CTC-beacon: cross-technology signalling, the related-work idea
// (SLEM/OfdmFi) rebuilt on SledZig's pinning machinery. A WiFi AP embeds
// a small control message ("switch to channel CH4") into an ordinary data
// frame by toggling its energy inside the ZigBee band; a ZigBee node
// reads it with nothing but RSSI samples, while a WiFi client still
// receives the frame's normal payload.
package main

import (
	"fmt"
	"log"

	"sledzig/internal/bits"
	"sledzig/internal/core"
	"sledzig/internal/ctc"
	"sledzig/internal/wifi"
)

func main() {
	message := []bits.Bit{1, 0, 1, 1, 0, 1, 0, 0} // 8-bit opcode
	payload := []byte("ordinary WiFi traffic rides along unchanged")

	enc := ctc.Encoder{Channel: core.CH2}
	frame, err := enc.Encode(payload, message)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded %d CTC bits into a %d-symbol WiFi frame (%.0f us airtime)\n",
		len(message), frame.WiFi.NumSymbols, frame.WiFi.Duration()*1e6)

	// ZigBee node: RSSI sampling only.
	wave, err := frame.WiFi.DataWaveform()
	if err != nil {
		log.Fatal(err)
	}
	zbMsg, err := ctc.RSSIDecoder{Channel: core.CH2}.DecodeRSSI(wave, len(message))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ZigBee node (RSSI only) read:  %s\n", bits.String(zbMsg))

	// WiFi client: full receive recovers both.
	full, err := frame.WiFi.Waveform()
	if err != nil {
		log.Fatal(err)
	}
	rx, err := wifi.Receiver{}.Receive(full)
	if err != nil {
		log.Fatal(err)
	}
	gotPayload, wifiMsg, err := ctc.Decoder{Channel: core.CH2}.Decode(rx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WiFi client read message:      %s\n", bits.String(wifiMsg))
	fmt.Printf("WiFi client read payload:      %q\n", gotPayload)
}
