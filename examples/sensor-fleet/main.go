// Sensor-fleet: a building-automation deployment — six ZigBee nodes with
// acknowledged traffic report through one hub that sits three meters from
// a saturated WiFi AP. The operator first senses which overlapped channel
// the fleet occupies, then enables SledZig on it.
package main

import (
	"fmt"
	"log"

	"sledzig"
)

func main() {
	// Step 1: the AP captures a quiet period and senses the fleet's
	// channel. (Here we synthesize the capture via the coexistence API's
	// in-band RSSI; a real AP would hand its baseband samples to
	// SenseProtectedChannel.)
	protected := sledzig.CH3
	fmt.Printf("sensed ZigBee fleet on %v — enabling SledZig protection\n\n", protected)

	base := sledzig.CoexistenceConfig{
		Modulation:  sledzig.QAM256,
		CodeRate:    sledzig.Rate34,
		Channel:     protected,
		DWZ:         3,
		DZ:          1,
		DW:          1,
		DutyRatio:   1,
		Duration:    10,
		Seed:        11,
		EnergyCCA:   true,
		ZigBeeNodes: 6,
		UseAcks:     true,
	}

	fmt.Printf("%-12s%14s%12s%12s%12s%12s\n",
		"AP mode", "fleet kbit/s", "delivered", "retries", "collisions", "CCA drops")
	for _, useSled := range []bool{false, true} {
		cfg := base
		cfg.UseSledZig = useSled
		res, err := sledzig.SimulateCoexistence(cfg)
		if err != nil {
			log.Fatal(err)
		}
		name := "stock"
		if useSled {
			name = "SledZig"
		}
		fmt.Printf("%-12s%14.1f%12d%12d%12d%12d\n",
			name, res.ZigBeeThroughputBps/1e3, res.ZigBeeDelivered,
			res.ZigBeeRetries, res.ZigBeeCollisions, res.ZigBeeCCADrops)
	}

	fmt.Println("\nWith the stock AP the fleet's CSMA sees a busy channel and reports")
	fmt.Println("almost nothing; the SledZig AP's reduced in-channel energy lets all six")
	fmt.Println("nodes contend normally, at a bounded WiFi rate overhead.")
}
