// Quickstart: encode a payload with SledZig, render the standard 802.11
// waveform, and decode it back — demonstrating that the protection is pure
// payload encoding with a fully standard transmit chain.
package main

import (
	"fmt"
	"log"

	"sledzig"
)

func main() {
	enc, err := sledzig.NewEncoder(sledzig.Config{
		Modulation: sledzig.QAM64,
		CodeRate:   sledzig.Rate34,
		Channel:    sledzig.CH2, // e.g. ZigBee channel 24 under WiFi channel 13
	})
	if err != nil {
		log.Fatal(err)
	}

	payload := []byte("hello from the WiFi side — the ZigBee channel stays quiet")
	frame, err := enc.Encode(payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("payload: %d bytes -> %d OFDM symbols, %d extra bits (%.2f%% overhead), %.0f us airtime\n",
		len(payload), frame.NumSymbols(), frame.ExtraBits(),
		100*enc.OverheadFraction(), frame.AirtimeSeconds()*1e6)

	drop, err := sledzig.MeasureBandReduction(sledzig.Config{
		Modulation: sledzig.QAM64, CodeRate: sledzig.Rate34, Channel: sledzig.CH2,
	}, payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured power drop inside the protected 2 MHz channel: %.1f dB\n", drop)

	wave, err := frame.Waveform()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseband waveform: %d samples at 20 MS/s\n", len(wave))

	dec, err := sledzig.NewDecoder(sledzig.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dec.Decode(wave)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("receiver detected protected channel %v and recovered %q\n", res.Channel, res.Payload)
}
