# Convenience targets; everything is plain `go` underneath.

.PHONY: test bench experiments selfcheck cover fmt vet

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/experiments

selfcheck:
	go run ./cmd/selfcheck

cover:
	go test -cover ./...

fmt:
	gofmt -w .

vet:
	go vet ./...
