# Convenience targets; everything is plain `go` underneath.

.PHONY: test race bench bench-json bench-compare bench-baseline experiments selfcheck conformance cover fmt fmt-check vet sledvet lint lint-report fuzz-smoke chaos chaos-overload trace-smoke

# Benchmarks gated by the checked-in allocation baseline (hot encode and
# decode paths, plus every codec backend through the public facade).
BENCH_GATED = BenchmarkSledZigEncode1500B$$|BenchmarkCoreEncodeTo1500B$$|BenchmarkWaveformSynthesis$$|BenchmarkAppendWaveform$$|BenchmarkReceiverDecode1500B$$|BenchmarkReceiverDecode1500BWide$$|BenchmarkViterbiDecodeInto$$|BenchmarkViterbiDecodeSoftInto$$|BenchmarkViterbiACSReferenceHard$$|BenchmarkViterbiACSReferenceSoft$$|BenchmarkDepunctureInto$$|BenchmarkFFTPlanForward64$$|BenchmarkCodecOOKEncode400B$$|BenchmarkCodecOfdmFiEncode400B$$|BenchmarkQfunc$$|BenchmarkQfuncExact$$|BenchmarkSledvetWholeTree$$

test: conformance
	go test ./...

# The codec-conformance suite on its own: every registered backend against
# the shared contract (round-trip, band-power floor, typed errors, claimed
# allocation bounds — see docs/codecs.md). `make test` covers this too;
# the explicit target is the fast loop while developing a backend.
conformance:
	go test -run 'TestCodecConformance$$|TestCodecInstancesIndependent$$' -v ./internal/codec/

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Machine-readable benchmark run: raw `go test -bench` lines on stdout,
# suitable for piping into benchstat or a JSON converter.
bench-json:
	go test -run '^$$' -bench . -benchmem ./... | tee bench.txt

# Run the gated benchmarks and fail if allocs/op regressed against the
# checked-in bench.baseline.txt (ns/op is reported but not gated — it is
# machine-dependent). Allocs/op is deterministic, so CI shortens the run
# with BENCHTIME=100x without weakening the gate.
BENCHTIME ?= 1s
bench-compare:
	go test -run '^$$' -bench '$(BENCH_GATED)' -benchtime $(BENCHTIME) -benchmem . ./internal/mac/ ./internal/analysis/driver/ | tee bench.current.txt
	go run ./cmd/benchdiff -baseline bench.baseline.txt -current bench.current.txt

# Refresh the checked-in baseline after an intentional allocation change.
bench-baseline:
	go test -run '^$$' -bench '$(BENCH_GATED)' -benchmem . ./internal/mac/ ./internal/analysis/driver/ | tee bench.baseline.txt

experiments:
	go run ./cmd/experiments

selfcheck:
	go run ./cmd/selfcheck

cover:
	go test -cover ./...

fmt:
	gofmt -w .

# Fail (listing the offenders) if any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

# The project's own analyzers (see docs/static-analysis.md). Standalone
# mode; `go vet -vettool=$$(go env GOPATH)/bin/sledvet ./...` works too.
sledvet:
	go run ./cmd/sledvet ./...

# Machine-readable lint artifacts: the version-1 JSON report (then
# re-validated through -check-json, so the emitter can never drift from
# the documented schema) and a SARIF 2.1.0 log for code-scanning UIs.
# `|| true` keeps artifact production going when diagnostics exist; the
# plain `lint` target is what gates.
LINT_DIR ?= .
lint-report:
	go run ./cmd/sledvet -json -sarif $(LINT_DIR)/sledvet.sarif ./... > $(LINT_DIR)/sledvet.json || true
	go run ./cmd/sledvet -check-json $(LINT_DIR)/sledvet.json

# The single lint entry point CI runs: formatting, go vet, staticcheck
# (when installed — CI pins a version; locally it is optional), and the
# project analyzers.
lint: fmt-check vet sledvet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; fi

# Short fuzz runs of every target — a smoke pass, not a campaign. Go runs
# one -fuzz target per package invocation, so each gets its own line.
FUZZTIME ?= 20s
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzDecodeWaveform$$' -fuzztime $(FUZZTIME) .
	go test -run '^$$' -fuzz '^FuzzSignalField$$' -fuzztime $(FUZZTIME) .
	go test -run '^$$' -fuzz '^FuzzParseMACFrame$$' -fuzztime $(FUZZTIME) ./internal/wifi
	go test -run '^$$' -fuzz '^FuzzParseSignalField$$' -fuzztime $(FUZZTIME) ./internal/wifi
	go test -run '^$$' -fuzz '^FuzzViterbiDecode$$' -fuzztime $(FUZZTIME) ./internal/wifi
	go test -run '^$$' -fuzz '^FuzzDemap64RoundTrip$$' -fuzztime $(FUZZTIME) ./internal/wifi
	go test -run '^$$' -fuzz '^FuzzCodecRegistry$$' -fuzztime $(FUZZTIME) ./internal/codec
	go test -run '^$$' -fuzz '^FuzzCFGBuild$$' -fuzztime $(FUZZTIME) ./internal/analysis/cfg

# Fault-injection soak of the decode pipeline (see docs/robustness.md).
# Exits non-zero on any untyped error, escaped panic, or goroutine leak.
CHAOS_DURATION ?= 30s
chaos:
	go run -race ./cmd/chaos -duration $(CHAOS_DURATION)

# Overload soak (see docs/robustness.md): 4x offered load on a healthy
# engine plus a storm-poisoned codec behind a breaker. Exits non-zero on
# any stalled submit, untyped rejection, latency-bound breach, inert
# breaker, or goroutine leak; writes the health snapshot for archiving.
HEALTH_OUT ?= health.json
chaos-overload:
	go run -race ./cmd/chaos -overload -duration $(CHAOS_DURATION) -health-out $(HEALTH_OUT)

# End-to-end exercise of the per-frame tracing path (see
# docs/observability.md): a short traced chaos soak must produce a
# flight-recorder dump and a Perfetto-loadable Chrome trace, and both
# artifacts must parse and carry frames with stage spans.
TRACE_DIR ?= .
trace-smoke:
	go run ./cmd/chaos -duration 3s -trace-dump $(TRACE_DIR)/flight.json -trace-chrome $(TRACE_DIR)/trace.json
	go run ./cmd/tracecheck -dump $(TRACE_DIR)/flight.json -chrome $(TRACE_DIR)/trace.json
