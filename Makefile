# Convenience targets; everything is plain `go` underneath.

.PHONY: test race bench bench-json experiments selfcheck cover fmt vet

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Machine-readable benchmark run: raw `go test -bench` lines on stdout,
# suitable for piping into benchstat or a JSON converter.
bench-json:
	go test -run '^$$' -bench . -benchmem ./... | tee bench.txt

experiments:
	go run ./cmd/experiments

selfcheck:
	go run ./cmd/selfcheck

cover:
	go test -cover ./...

fmt:
	gofmt -w .

vet:
	go vet ./...
