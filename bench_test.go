package sledzig

// One benchmark per table and figure of the paper's evaluation section
// (see DESIGN.md's experiment index), plus core-pipeline micro-benchmarks.
// Each experiment bench regenerates its table/figure once per iteration
// and reports a headline metric from it, so `go test -bench .` doubles as
// a compact reproduction run.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"sledzig/internal/baseline"
	"sledzig/internal/bits"
	"sledzig/internal/core"
	"sledzig/internal/ctc"
	"sledzig/internal/dsp"
	"sledzig/internal/exp"
	"sledzig/internal/ht40"
	"sledzig/internal/mac"
	"sledzig/internal/wifi"
	"sledzig/internal/zigbee"
)

func BenchmarkTheoryPowerReduction(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, r := range exp.TheoreticalReductions() {
			sink += r.ComputedDB
		}
	}
	b.ReportMetric(wifi.PowerReductionDB(wifi.QAM256), "dB-QAM256")
	_ = sink
}

func BenchmarkTableIISignificantBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.TableII(wifi.ConventionPaper); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIIExtraBits(b *testing.B) {
	var rows []core.TableRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.OverheadTable(wifi.ConventionPaper)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].ExtraBitsCH13), "extra-bits-QAM16")
}

func BenchmarkTableIVThroughputLoss(b *testing.B) {
	var rows []core.TableRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.OverheadTable(wifi.ConventionPaper)
		if err != nil {
			b.Fatal(err)
		}
	}
	minLoss := 1.0
	for _, r := range rows {
		if r.LossCH4 < minLoss {
			minLoss = r.LossCH4
		}
	}
	b.ReportMetric(100*minLoss, "min-loss-%")
}

func BenchmarkFig5bSpectrum(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		spec, err := exp.Fig5b(wifi.ConventionPaper,
			wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}, core.CH2, 1)
		if err != nil {
			b.Fatal(err)
		}
		drop = spec.BandDropDB()
	}
	b.ReportMetric(drop, "dB-drop")
}

func BenchmarkFig11SubcarrierCount(b *testing.B) {
	var fig *exp.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = exp.Fig11(wifi.ConventionPaper, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	// CH1 RSSI with the paper-recommended 7 subcarriers.
	b.ReportMetric(fig.Series[0].At(7), "dBm-CH1-7sc")
}

func BenchmarkFig12RSSIReduction(b *testing.B) {
	var fig *exp.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = exp.Fig12(wifi.ConventionPaper, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	normal := fig.Series[0].At(4)
	q256 := fig.Series[3].At(4)
	b.ReportMetric(normal-q256, "dB-drop-CH4-QAM256")
}

func BenchmarkFig13ZigBeeRSSI(b *testing.B) {
	var fig *exp.Figure
	for i := 0; i < b.N; i++ {
		fig = exp.Fig13()
	}
	b.ReportMetric(fig.Series[0].At(31), "dBm-0.5m-gain31")
}

func benchThroughputOpts() exp.ThroughputOptions {
	return exp.ThroughputOptions{Convention: wifi.ConventionPaper, Seed: 1, Duration: 2}
}

func BenchmarkFig14aThroughputVsDistance(b *testing.B) {
	var fig *exp.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = exp.Fig14(core.CH3, benchThroughputOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Where the QAM-256 curve recovers 90% of the 63 kbit/s baseline.
	b.ReportMetric(fig.Series[3].CrossoverX(0.9*63), "m-crossover-QAM256")
}

func BenchmarkFig14bThroughputVsDistance(b *testing.B) {
	var fig *exp.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = exp.Fig14(core.CH4, benchThroughputOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.Series[3].At(1), "kbps-QAM256-at-1m")
}

func BenchmarkFig15ThroughputVsLinkDistance(b *testing.B) {
	var fig *exp.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = exp.Fig15(benchThroughputOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.Series[0].At(1.6), "kbps-normal-at-1.6m")
}

func BenchmarkFig16ThroughputVsTraffic(b *testing.B) {
	var pts []exp.Fig16Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = exp.Fig16(benchThroughputOpts(), 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Mean QAM-256 throughput at 70% duty (paper: 34.5 kbit/s).
	for _, p := range pts {
		if p.Variant == "QAM-256" && p.DutyRatio == 0.7 {
			b.ReportMetric(p.Stats.Mean, "kbps-QAM256-70%")
		}
	}
}

func BenchmarkFig17WiFiRxRSSI(b *testing.B) {
	var fig *exp.Figure
	for i := 0; i < b.N; i++ {
		fig = exp.Fig17()
	}
	b.ReportMetric(fig.Series[0].At(0.5)-fig.Series[1].At(0.5), "dB-asymmetry")
}

// --- pipeline micro-benchmarks ---

func BenchmarkSledZigEncode1500B(b *testing.B) {
	enc, err := NewEncoder(Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2})
	if err != nil {
		b.Fatal(err)
	}
	payload := bits.RandomBytes(rand.New(rand.NewSource(1)), 1500)
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreEncodeTo1500B is the pooled counterpart of
// BenchmarkSledZigEncode1500B: one reused result, scratch from the
// package pools. Compare allocs/op between the two to see the pooling win.
func BenchmarkCoreEncodeTo1500B(b *testing.B) {
	plan, err := core.CachedPlan(wifi.ConventionIEEE, wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate34}, core.CH2)
	if err != nil {
		b.Fatal(err)
	}
	enc := &core.Encoder{Plan: plan}
	payload := bits.RandomBytes(rand.New(rand.NewSource(1)), 1500)
	var res core.EncodeResult
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.EncodeTo(payload, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEncodeBatch measures pooled multi-worker throughput; on a
// multi-core machine it should beat single-goroutine Encode by roughly the
// worker count (the encoder's stages are CPU-bound and share no state
// beyond the read-only plan).
func BenchmarkEngineEncodeBatch(b *testing.B) {
	eng, err := NewEngine(EngineConfig{
		Config:  Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2},
		Workers: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	const batch = 64
	payloads := make([][]byte, batch)
	rng := rand.New(rand.NewSource(1))
	for i := range payloads {
		payloads[i] = bits.RandomBytes(rng, 1500)
	}
	b.SetBytes(batch * 1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EncodeBatch(context.Background(), payloads); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkAppendWaveform renders into a recycled buffer — the pooled
// counterpart of BenchmarkWaveformSynthesis.
func BenchmarkAppendWaveform(b *testing.B) {
	enc, err := NewEncoder(Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2})
	if err != nil {
		b.Fatal(err)
	}
	frame, err := enc.Encode(bits.RandomBytes(rand.New(rand.NewSource(1)), 1000))
	if err != nil {
		b.Fatal(err)
	}
	var buf []complex128
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = frame.AppendWaveform(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaveformSynthesis(b *testing.B) {
	enc, err := NewEncoder(Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2})
	if err != nil {
		b.Fatal(err)
	}
	frame, err := enc.Encode(bits.RandomBytes(rand.New(rand.NewSource(1)), 1000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := frame.Waveform(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullRoundTrip(b *testing.B) {
	enc, err := NewEncoder(Config{Modulation: QAM16, CodeRate: Rate12, Channel: CH4})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := NewDecoder(Config{})
	if err != nil {
		b.Fatal(err)
	}
	payload := bits.RandomBytes(rand.New(rand.NewSource(1)), 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := enc.Encode(payload)
		if err != nil {
			b.Fatal(err)
		}
		wave, err := frame.Waveform()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dec.Decode(wave); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReceiverDecode1500B measures the pooled receive chain — one
// reused RxResult, scratch from the package pools — over a 1500-byte
// QAM-64 r=3/4 frame. The steady state must stay within single-digit
// allocs/op (the SIGNAL-field decode keeps a few small slices).
func BenchmarkReceiverDecode1500B(b *testing.B) {
	enc, err := NewEncoder(Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2})
	if err != nil {
		b.Fatal(err)
	}
	frame, err := enc.Encode(bits.RandomBytes(rand.New(rand.NewSource(1)), 1500))
	if err != nil {
		b.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		b.Fatal(err)
	}
	rx := wifi.Receiver{Convention: wifi.ConventionIEEE, Seed: wifi.DefaultScramblerSeed}
	var res wifi.RxResult
	b.SetBytes(1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rx.ReceiveInto(wave, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSledZigDecode1500B is the full public decode path — receive,
// channel detection, constraint stripping, descrambling and EVM — with a
// fresh result per frame.
func BenchmarkSledZigDecode1500B(b *testing.B) {
	enc, err := NewEncoder(Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2})
	if err != nil {
		b.Fatal(err)
	}
	frame, err := enc.Encode(bits.RandomBytes(rand.New(rand.NewSource(1)), 1500))
	if err != nil {
		b.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		b.Fatal(err)
	}
	dec, err := NewDecoder(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.DecodeDetailed(wave); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineDecodeBatch is the decode counterpart of
// BenchmarkEngineEncodeBatch: pooled multi-worker demodulation of a batch
// of 1500-byte frames.
func BenchmarkEngineDecodeBatch(b *testing.B) {
	eng, err := NewEngine(EngineConfig{
		Config:  Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2},
		Workers: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	const batch = 16
	payloads := make([][]byte, batch)
	rng := rand.New(rand.NewSource(1))
	for i := range payloads {
		payloads[i] = bits.RandomBytes(rng, 1500)
	}
	frames, err := eng.EncodeBatch(context.Background(), payloads)
	if err != nil {
		b.Fatal(err)
	}
	waves := make([][]complex128, batch)
	for i, f := range frames {
		if waves[i], err = f.Waveform(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(batch * 1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.DecodeBatch(context.Background(), waves); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

func BenchmarkViterbiDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := bits.Random(rng, 1000)
	coded := wifi.ConvolutionalEncode(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wifi.ViterbiDecode(coded, nil, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViterbiDecodeInto is the table-driven pooled decoder; after the
// trellis tables and pool warm up it must run at 0 allocs/op.
func BenchmarkViterbiDecodeInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := bits.Random(rng, 1000)
	coded := wifi.ConvolutionalEncode(data)
	dst := make([]bits.Bit, 0, len(data))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wifi.ViterbiDecodeInto(dst, coded, nil, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViterbiDecodeSoftInto covers the soft-decision path under the
// same zero-allocation requirement.
func BenchmarkViterbiDecodeSoftInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := bits.Random(rng, 1000)
	coded := wifi.ConvolutionalEncode(data)
	llrs := make([]float64, len(coded))
	for i, c := range coded {
		if c == 1 {
			llrs[i] = -2.0 + rng.NormFloat64()*0.3
		} else {
			llrs[i] = 2.0 + rng.NormFloat64()*0.3
		}
	}
	dst := make([]bits.Bit, 0, len(data))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wifi.ViterbiDecodeSoftInto(dst, llrs, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViterbiACSReferenceHard pins the scalar reference ACS kernel —
// the denominator of the word kernel's speedup and the bit-exact oracle
// the identity tests decode against. Also 0 allocs/op.
func BenchmarkViterbiACSReferenceHard(b *testing.B) {
	if err := wifi.SetViterbiKernel("reference"); err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := wifi.SetViterbiKernel("word"); err != nil {
			b.Fatal(err)
		}
	}()
	rng := rand.New(rand.NewSource(1))
	data := bits.Random(rng, 1000)
	coded := wifi.ConvolutionalEncode(data)
	dst := make([]bits.Bit, 0, len(data))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wifi.ViterbiDecodeInto(dst, coded, nil, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViterbiACSReferenceSoft is the soft-metric counterpart of
// BenchmarkViterbiACSReferenceHard.
func BenchmarkViterbiACSReferenceSoft(b *testing.B) {
	if err := wifi.SetViterbiKernel("reference"); err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := wifi.SetViterbiKernel("word"); err != nil {
			b.Fatal(err)
		}
	}()
	rng := rand.New(rand.NewSource(1))
	data := bits.Random(rng, 1000)
	coded := wifi.ConvolutionalEncode(data)
	llrs := make([]float64, len(coded))
	for i, c := range coded {
		if c == 1 {
			llrs[i] = -2.0 + rng.NormFloat64()*0.3
		} else {
			llrs[i] = 2.0 + rng.NormFloat64()*0.3
		}
	}
	dst := make([]bits.Bit, 0, len(data))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wifi.ViterbiDecodeSoftInto(dst, llrs, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReceiverDecode1500BWide is BenchmarkReceiverDecode1500B on the
// complex128 reference pipeline (Receiver.WideIQ) — the before side of the
// narrow I/Q speedup, kept gated so both widths stay allocation-free.
func BenchmarkReceiverDecode1500BWide(b *testing.B) {
	enc, err := NewEncoder(Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2})
	if err != nil {
		b.Fatal(err)
	}
	frame, err := enc.Encode(bits.RandomBytes(rand.New(rand.NewSource(1)), 1500))
	if err != nil {
		b.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		b.Fatal(err)
	}
	rx := wifi.Receiver{Convention: wifi.ConventionIEEE, Seed: wifi.DefaultScramblerSeed, WideIQ: true}
	var res wifi.RxResult
	b.SetBytes(1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rx.ReceiveInto(wave, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDepunctureInto measures the single-pass pattern-table
// depuncturer into preallocated mother-stream buffers.
func BenchmarkDepunctureInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := bits.Random(rng, 1200)
	coded := wifi.ConvolutionalEncode(data)
	punctured, err := wifi.Puncture(coded, wifi.Rate34)
	if err != nil {
		b.Fatal(err)
	}
	mother := make([]bits.Bit, 0, len(coded))
	erased := make([]bool, 0, len(coded))
	b.SetBytes(int64(len(punctured)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mother, erased, err = wifi.DepunctureInto(mother, erased, punctured, wifi.Rate34); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFFTPlanForward64 exercises the cached 64-point plan — the inner
// loop of every OFDM symbol — which must not allocate.
func BenchmarkFFTPlanForward64(b *testing.B) {
	plan := dsp.MustPlan(64)
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	dst := make([]complex128, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.Forward(dst, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMACSimulationSecond(b *testing.B) {
	profile := mac.WiFiProfile{PreambleDBm: -60, DataDBm: -68, PilotDBm: -69}
	for i := 0; i < b.N; i++ {
		if _, err := mac.Run(mac.Config{
			Seed: int64(i), Duration: 1, DWZ: 4, DZ: 1, Profile: profile,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZigBeeRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	payload := bits.RandomBytes(rng, 100)
	wave, err := zigbee.Transmitter{}.Transmit(payload)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := (zigbee.Receiver{}).Receive(wave); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (design choices DESIGN.md calls out) ---

// BenchmarkAblationSubcarrierCount quantifies the Fig. 11 design choice in
// end-to-end terms: in-band RSSI when pinning 5, 6, 7 or 8 data
// subcarriers of CH2.
func BenchmarkAblationSubcarrierCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig11(wifi.ConventionPaper, 1)
		if err != nil {
			b.Fatal(err)
		}
		ch2 := fig.Series[1]
		b.ReportMetric(ch2.At(6)-ch2.At(7), "dB-gain-6to7")
		b.ReportMetric(ch2.At(7)-ch2.At(8), "dB-gain-7to8")
	}
}

// BenchmarkAblationPilotChannel contrasts pilot-bearing CH2 against
// pilot-free CH4 under QAM-256 — the paper's "work on CH4" recommendation.
func BenchmarkAblationPilotChannel(b *testing.B) {
	payload := bits.RandomBytes(rand.New(rand.NewSource(1)), 400)
	var ch2, ch4 float64
	for i := 0; i < b.N; i++ {
		var err error
		ch2, err = MeasureBandReduction(Config{Modulation: QAM256, CodeRate: Rate34, Channel: CH2}, payload)
		if err != nil {
			b.Fatal(err)
		}
		ch4, err = MeasureBandReduction(Config{Modulation: QAM256, CodeRate: Rate34, Channel: CH4}, payload)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ch2, "dB-CH2")
	b.ReportMetric(ch4, "dB-CH4")
}

// BenchmarkAblationPilotSuppression sweeps the despreader's tone-rejection
// parameter to show how much of the Fig. 16 QAM-256 advantage rides on it.
func BenchmarkAblationPilotSuppression(b *testing.B) {
	profile := mac.WiFiProfile{PreambleDBm: -60, DataDBm: -80, PilotDBm: -69}
	for _, supp := range []float64{3, 9, 15} {
		var tput float64
		for i := 0; i < b.N; i++ {
			res, err := mac.Run(mac.Config{
				Seed: 1, Duration: 2, DWZ: 1, DZ: 0.5,
				Profile:            profile,
				PilotSuppressionDB: supp,
				CCAMode:            mac.CCACarrierOnly,
				WiFiFrameAirtime:   6e-3,
			})
			if err != nil {
				b.Fatal(err)
			}
			tput = res.ZigBeeThroughputBps / 1e3
		}
		b.ReportMetric(tput, fmt.Sprintf("kbps-supp%.0fdB", supp))
	}
}

// BenchmarkTableIVMinSNR regenerates the min-SNR column through the full
// waveform chain.
func BenchmarkTableIVMinSNR(b *testing.B) {
	var rows []exp.MinSNRRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.MinSNRSweep(wifi.ConventionPaper, 1, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MeasuredDB, "dB-QAM16r12")
}

// BenchmarkPhyLevelMixing regenerates the waveform-level validation.
func BenchmarkPhyLevelMixing(b *testing.B) {
	var res *exp.PhyLevelResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp.RunPhyLevel(exp.PhyLevelConfig{Seed: 1, Trials: 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.NormalPER, "PER-normal")
	b.ReportMetric(res.SledZigPER, "PER-sledzig")
}

// BenchmarkFleetSweep regenerates the multi-node extension experiment.
func BenchmarkFleetSweep(b *testing.B) {
	var pts []exp.FleetPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = exp.FleetSweep(exp.ThroughputOptions{Seed: 1, Duration: 2})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.SledZig && p.Nodes == 8 {
			b.ReportMetric(p.Throughput, "kbps-8nodes-sledzig")
		}
	}
}

// BenchmarkHT40Encode measures the 40 MHz SledZig pipeline.
func BenchmarkHT40Encode(b *testing.B) {
	plan, err := ht40.NewPlan(wifi.ConventionPaper,
		wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}, ht40.Channel(2))
	if err != nil {
		b.Fatal(err)
	}
	enc := &ht40.Encoder{Plan: plan}
	payload := bits.RandomBytes(rand.New(rand.NewSource(1)), 1000)
	b.SetBytes(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineComparison regenerates the mechanism comparison.
func BenchmarkBaselineComparison(b *testing.B) {
	payload := baseline.RandomPayload(1, 400)
	var cmp *baseline.Comparison
	var err error
	for i := 0; i < b.N; i++ {
		cmp, err = baseline.Compare(wifi.ConventionPaper,
			wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}, core.CH4, payload)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.SledZigDropDB, "dB-sledzig")
	b.ReportMetric(cmp.NullDropDB, "dB-null")
}

// BenchmarkCTCEncode measures the cross-technology energy-modulation
// encoder (the SLEM/OfdmFi-style extension).
func BenchmarkCTCEncode(b *testing.B) {
	enc := ctc.Encoder{Channel: core.CH2}
	message := []bits.Bit{1, 0, 1, 1, 0, 1, 0, 0}
	payload := bits.RandomBytes(rand.New(rand.NewSource(1)), 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(payload, message); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkCodecEncode drives a registry backend through the public
// facade: Frame construction plus waveform render, the per-frame cost a
// codec-agnostic caller pays.
func benchmarkCodecEncode(b *testing.B, name string, payloadLen int) {
	enc, err := NewEncoder(Config{Channel: CH2, Codec: name})
	if err != nil {
		b.Fatal(err)
	}
	payload := bits.RandomBytes(rand.New(rand.NewSource(1)), payloadLen)
	b.SetBytes(int64(payloadLen))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := enc.Encode(payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := frame.Waveform(); err != nil {
			b.Fatal(err)
		}
	}
}

// The per-backend encode benchmarks sit in the allocation-gated set next
// to BenchmarkSledZigEncode1500B, so a new backend cannot creep
// allocations into the shared facade path unnoticed.
func BenchmarkCodecOOKEncode400B(b *testing.B)    { benchmarkCodecEncode(b, CodecOOK, 400) }
func BenchmarkCodecOfdmFiEncode400B(b *testing.B) { benchmarkCodecEncode(b, CodecOfdmFi, 400) }

func benchmarkCodecDecode(b *testing.B, name string, payloadLen int) {
	cfg := Config{Channel: CH2, Codec: name}
	enc, err := NewEncoder(cfg)
	if err != nil {
		b.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		b.Fatal(err)
	}
	frame, err := enc.Encode(bits.RandomBytes(rand.New(rand.NewSource(1)), payloadLen))
	if err != nil {
		b.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(payloadLen))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(wave); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecOOKDecode400B(b *testing.B)    { benchmarkCodecDecode(b, CodecOOK, 400) }
func BenchmarkCodecOfdmFiDecode400B(b *testing.B) { benchmarkCodecDecode(b, CodecOfdmFi, 400) }
