package sledzig_test

import (
	"fmt"
	"log"

	"sledzig"
)

// ExampleNewEncoder shows the minimal encode → waveform → decode loop.
func ExampleNewEncoder() {
	enc, err := sledzig.NewEncoder(sledzig.Config{
		Modulation: sledzig.QAM64,
		CodeRate:   sledzig.Rate34,
		Channel:    sledzig.CH2,
	})
	if err != nil {
		log.Fatal(err)
	}
	frame, err := enc.Encode([]byte("hello"))
	if err != nil {
		log.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		log.Fatal(err)
	}
	dec, err := sledzig.NewDecoder(sledzig.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dec.Decode(wave)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s via %v, %.2f%% WiFi overhead\n", res.Payload, res.Channel, 100*enc.OverheadFraction())
	// Output: hello via CH2, 12.96% WiFi overhead
}

// ExamplePowerReductionDB reproduces the paper's section III-B numbers.
func ExamplePowerReductionDB() {
	for _, m := range []sledzig.Modulation{sledzig.QAM16, sledzig.QAM64, sledzig.QAM256} {
		fmt.Printf("%v: %.1f dB\n", m, sledzig.PowerReductionDB(m))
	}
	// Output:
	// QAM-16: 7.0 dB
	// QAM-64: 13.2 dB
	// QAM-256: 19.3 dB
}

// ExampleChannelFromNumbers maps the paper's testbed channels.
func ExampleChannelFromNumbers() {
	ch, err := sledzig.ChannelFromNumbers(26, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ch)
	// Output: CH4
}
