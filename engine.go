package sledzig

import (
	"context"
	"fmt"
	"time"

	"sledzig/internal/core"
	"sledzig/internal/engine"
)

// EngineConfig extends Config with the worker-pool geometry.
type EngineConfig struct {
	Config
	// Workers is the number of encoder goroutines; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Queue bounds the internal job queue and each Stream's output
	// channel; <= 0 selects 2*Workers. Full queues block submitters —
	// backpressure instead of unbounded buffering.
	Queue int
	// FrameTimeout bounds each frame's encode or decode wall time. A
	// frame past the deadline fails with ErrFrameDeadline while its batch
	// siblings proceed; the worker abandons the stuck computation and
	// continues on fresh state. Zero disables the deadline.
	FrameTimeout time.Duration

	// MaxQueueWait bounds how long a submission may wait for queue
	// capacity before being shed with ErrOverloaded instead of stalling.
	// Zero keeps the original blocking-backpressure contract.
	MaxQueueWait time.Duration
	// MaxInflight caps admitted-but-unfinished frames across the queue
	// and the workers; beyond it submissions shed with ErrOverloaded.
	// <= 0 disables the cap.
	MaxInflight int
	// MaxAbandonedWorkers caps concurrently timeout-abandoned frame
	// goroutines; at the cap new frames shed with ErrOverloaded rather
	// than risk spawning another. 0 selects 16*Workers; negative disables
	// the cap.
	MaxAbandonedWorkers int
	// Breaker configures the engine's circuit breaker; the zero value
	// disables it.
	Breaker BreakerConfig
}

// BreakerConfig tunes the Engine's circuit breaker; see the field docs on
// the underlying type. The zero value disables the breaker.
type BreakerConfig = engine.BreakerConfig

// Overload is the typed detail behind ErrOverloaded; recover it with
// errors.As to read the shed reason, queue depth, and wait.
type Overload = engine.Overload

// DrainReport is Engine.Drain's account of how in-flight work ended.
type DrainReport = engine.DrainReport

// EngineHealth is the Engine's coarse operating condition: EngineHealthy,
// EngineDegraded, EngineDraining or EngineClosed.
type EngineHealth = engine.HealthState

// EngineHealthReport is one engine's full health snapshot, the same
// document served per engine at /debug/health on the diagnostics mux.
type EngineHealthReport = engine.HealthSnapshot

const (
	EngineHealthy  EngineHealth = engine.Healthy
	EngineDegraded EngineHealth = engine.Degraded
	EngineDraining EngineHealth = engine.Draining
	EngineClosed   EngineHealth = engine.Closed
)

// Engine encodes frames across a pool of workers sharing one cached plan —
// the high-throughput front-end for sweeps, simulators and traffic
// generators. All methods are safe for concurrent use; Close it when done.
//
// With a tracer installed (SetDefaultTracer) every frame submitted through
// any Engine method carries a trace: queue-wait vs. service time across
// the pool, per-stage pipeline spans, and tail capture of failed, slow,
// panicked or timed-out frames in the flight recorder.
type Engine struct {
	e     *engine.Engine
	codec string
}

// NewEngine resolves the config defaults, validates it, and starts the
// worker pool for the selected codec backend. For the default SledZig
// codec the plan comes from the same process-wide cache NewEncoder uses,
// so engines and encoders with identical parameters share constraint
// state; other codecs give each worker its own backend instance.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	cfg.Config = cfg.Config.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Channel.Valid() {
		return nil, fmt.Errorf("%w: config must name a protected channel (CH1..CH4)", ErrInvalidChannel)
	}
	e, err := engine.New(engine.Config{
		Convention:   cfg.Convention,
		Mode:         cfg.mode(),
		Channel:      cfg.Channel,
		Seed:         cfg.ScramblerSeed,
		Workers:      cfg.Workers,
		Queue:        cfg.Queue,
		FrameTimeout: cfg.FrameTimeout,
		MaxQueueWait: cfg.MaxQueueWait,
		MaxInflight:  cfg.MaxInflight,
		MaxAbandoned: cfg.MaxAbandonedWorkers,
		Breaker:      cfg.Breaker,
		Resilient:    cfg.Resilient,
		WideIQ:       cfg.WideIQ,
		Codec:        cfg.Codec,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{e: e, codec: cfg.Codec}, nil
}

// frameFromProduct maps an engine product to the public Frame.
func (e *Engine) frameFromProduct(p *engine.Product) *Frame {
	if p == nil {
		return nil
	}
	if p.Generic != nil {
		return &Frame{enc: p.Generic, cdc: e.codec}
	}
	return &Frame{res: p.Core}
}

// Workers returns the resolved worker count.
func (e *Engine) Workers() int { return e.e.Workers() }

// EncodeBatch encodes every payload across the pool and returns the frames
// in input order — byte-identical to calling Encoder.Encode sequentially
// with the same Config. The first failing payload's error (wrapped in the
// public taxonomy) aborts the batch result.
func (e *Engine) EncodeBatch(ctx context.Context, payloads [][]byte) ([]*Frame, error) {
	results, err := e.e.EncodeBatch(ctx, payloads)
	if err != nil {
		return nil, wrapEncodeErr(err)
	}
	frames := make([]*Frame, len(results))
	for i, r := range results {
		frames[i] = e.frameFromProduct(r)
	}
	return frames, nil
}

// EncodeOutcome is one frame's result in a per-frame batch: exactly one of
// Frame and Err is set.
type EncodeOutcome struct {
	Frame *Frame
	Err   error
}

// EncodeEach encodes every payload across the pool and returns one outcome
// per input, in input order. Unlike EncodeBatch, a failing frame — invalid
// payload, a contained worker panic (ErrFramePanicked), a missed deadline
// (ErrFrameDeadline) — fails only its own slot; siblings complete
// normally. This is the hostile-input front-end: one bad frame never costs
// its batch.
func (e *Engine) EncodeEach(ctx context.Context, payloads [][]byte) []EncodeOutcome {
	results := e.e.EncodeEach(ctx, payloads)
	out := make([]EncodeOutcome, len(results))
	for i, r := range results {
		out[i].Err = wrapEncodeErr(r.Err)
		if r.Result != nil {
			out[i].Frame = e.frameFromProduct(r.Result)
		}
	}
	return out
}

// StreamFrame is one streamed encode outcome; Index is the payload's
// zero-based position in the input stream.
type StreamFrame struct {
	Index int
	Frame *Frame
	Err   error
}

// Stream encodes payloads from in as they arrive, delivering results on
// the returned bounded channel. Results carry the input index; with more
// than one worker the delivery order is unspecified. The channel closes
// after in closes (and all work drains) or ctx is cancelled. A stalled
// consumer backpressures the producer through the bounded queues.
func (e *Engine) Stream(ctx context.Context, in <-chan []byte) <-chan StreamFrame {
	src := e.e.Stream(ctx, in)
	out := make(chan StreamFrame)
	go func() {
		defer close(out)
		for r := range src {
			sf := StreamFrame{Index: r.Index, Err: wrapEncodeErr(r.Err)}
			if r.Result != nil {
				sf.Frame = e.frameFromProduct(r.Result)
			}
			select {
			case out <- sf:
			case <-ctx.Done():
				// Keep draining so the inner stream can finish.
			}
		}
	}()
	return out
}

// decodeResultFrom maps an engine decode result to the public type.
func decodeResultFrom(r *engine.DecodeResult) *DecodeResult {
	return &DecodeResult{
		Payload:       r.Payload,
		Channel:       Channel(r.Channel),
		Codec:         r.Codec,
		Modulation:    Modulation(r.Mode.Modulation),
		CodeRate:      CodeRate(r.Mode.CodeRate),
		ScramblerSeed: r.ScramblerSeed,
		ExtraBits:     r.ExtraBits,
		NumSymbols:    r.NumSymbols,
		SymbolEVM:     r.SymbolEVM,
	}
}

// DecodeBatch decodes every PPDU waveform across the pool and returns the
// results in input order — byte-identical to calling Decoder.DecodeDetailed
// sequentially with the same Config. Each worker recycles its demodulation
// buffers internally; the returned results are self-contained and safe to
// retain. The first failing waveform's error (wrapped in the public
// taxonomy) aborts the batch result.
func (e *Engine) DecodeBatch(ctx context.Context, waveforms [][]complex128) ([]*DecodeResult, error) {
	results, err := e.e.DecodeBatch(ctx, waveforms)
	if err != nil {
		return nil, wrapDecodeErr(err)
	}
	out := make([]*DecodeResult, len(results))
	for i, r := range results {
		out[i] = decodeResultFrom(r)
	}
	return out, nil
}

// DecodeOutcome is one frame's result in a per-frame batch: exactly one of
// Result and Err is set.
type DecodeOutcome struct {
	Result *DecodeResult
	Err    error
}

// DecodeEach decodes every waveform across the pool and returns one
// outcome per input, in input order. Unlike DecodeBatch, a hostile
// waveform — truncated, corrupted, one that panics or stalls the decoder —
// fails only its own slot with a taxonomy error; siblings decode normally.
func (e *Engine) DecodeEach(ctx context.Context, waveforms [][]complex128) []DecodeOutcome {
	results := e.e.DecodeEach(ctx, waveforms)
	out := make([]DecodeOutcome, len(results))
	for i, r := range results {
		out[i].Err = wrapDecodeErr(r.Err)
		if r.Result != nil {
			out[i].Result = decodeResultFrom(r.Result)
		}
	}
	return out
}

// DecodeStreamFrame is one streamed decode outcome; Index is the waveform's
// zero-based position in the input stream.
type DecodeStreamFrame struct {
	Index  int
	Result *DecodeResult
	Err    error
}

// DecodeStream decodes waveforms from in as they arrive, delivering results
// on the returned bounded channel. Results carry the input index; with more
// than one worker the delivery order is unspecified. The channel closes
// after in closes (and all work drains) or ctx is cancelled. A stalled
// consumer backpressures the producer through the bounded queues.
func (e *Engine) DecodeStream(ctx context.Context, in <-chan []complex128) <-chan DecodeStreamFrame {
	src := e.e.DecodeStream(ctx, in)
	out := make(chan DecodeStreamFrame)
	go func() {
		defer close(out)
		for r := range src {
			sf := DecodeStreamFrame{Index: r.Index, Err: wrapDecodeErr(r.Err)}
			if r.Result != nil {
				sf.Result = decodeResultFrom(r.Result)
			}
			select {
			case out <- sf:
			case <-ctx.Done():
				// Keep draining so the inner stream can finish.
			}
		}
	}()
	return out
}

// Close stops accepting work, waits for in-flight frames, and releases the
// workers. Safe to call more than once. Shutdown paths that need a
// deadline and per-frame accounting use Drain instead.
func (e *Engine) Close() { e.e.Close() }

// Drain stops admission and flushes in-flight work, bounded by ctx. New
// submissions fail with ErrOverloaded-distinct ErrDraining immediately; if
// every admitted frame completes before ctx expires the drain is clean,
// otherwise still-queued frames are handed back to their callers as
// ErrDraining outcomes. The engine is closed either way; the report counts
// what was flushed, shed, and abandoned. Safe to call concurrently and
// more than once.
func (e *Engine) Drain(ctx context.Context) DrainReport { return e.e.Drain(ctx) }

// Health reports the engine's coarse operating condition — the signal a
// gateway polls to steer load between backends.
func (e *Engine) Health() EngineHealth { return e.e.Health() }

// HealthReport returns the engine's full health snapshot: state, breaker,
// queue depth, inflight and abandoned counts, and per-reason shed totals.
func (e *Engine) HealthReport() EngineHealthReport { return e.e.Report() }

// PlanCacheSize reports how many (convention, mode, channel) plans the
// process-wide cache currently holds — an observability helper for tests
// and diagnostics.
func PlanCacheSize() int { return core.PlanCacheLen() }
