package iq

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := make([]complex128, 1000)
	for i := range in {
		in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 8*len(in) {
		t.Fatalf("stream is %d bytes, want %d", buf.Len(), 8*len(in))
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		// float32 quantization only.
		if math.Abs(real(out[i])-real(in[i])) > 1e-6 || math.Abs(imag(out[i])-imag(in[i])) > 1e-6 {
			t.Fatalf("sample %d: %v vs %v", i, out[i], in[i])
		}
	}
}

func TestWriteRejectsNonFinite(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []complex128{complex(math.NaN(), 0)}); err == nil {
		t.Fatal("NaN sample accepted")
	}
	if err := Write(&buf, []complex128{complex(0, math.Inf(1))}); err == nil {
		t.Fatal("Inf sample accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wave.cf32")
	in := []complex128{1, complex(0, -1), complex(0.5, 0.25)}
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d samples", len(out))
	}
}

func TestNormalizePeak(t *testing.T) {
	s := []complex128{complex(3, 4), complex(0.1, 0)}
	NormalizePeak(s, 0.8)
	if m := math.Hypot(real(s[0]), imag(s[0])); math.Abs(m-0.8) > 1e-12 {
		t.Fatalf("peak %g", m)
	}
	z := []complex128{0, 0}
	NormalizePeak(z, 1)
	if z[0] != 0 {
		t.Fatal("zero signal scaled")
	}
}
