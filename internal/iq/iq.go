// Package iq reads and writes complex baseband waveforms in the de-facto
// SDR interchange format: interleaved little-endian complex float32
// ("cf32", what GNU Radio file sinks/sources and most USRP tooling use).
// It is the bridge from this repository to real radios: a waveform written
// here can be transmitted by the same USRP N210 setup the paper used.
package iq

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Write streams samples as interleaved complex float32.
func Write(w io.Writer, samples []complex128) error {
	bw := bufio.NewWriter(w)
	var buf [8]byte
	for i, s := range samples {
		re, im := real(s), imag(s)
		if math.IsNaN(re) || math.IsNaN(im) || math.IsInf(re, 0) || math.IsInf(im, 0) {
			return fmt.Errorf("iq: sample %d is not finite (%g%+gi)", i, re, im)
		}
		binary.LittleEndian.PutUint32(buf[0:], math.Float32bits(float32(re)))
		binary.LittleEndian.PutUint32(buf[4:], math.Float32bits(float32(im)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read consumes an entire cf32 stream.
func Read(r io.Reader) ([]complex128, error) {
	br := bufio.NewReader(r)
	var out []complex128
	var buf [8]byte
	for {
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF {
			return out, nil
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("iq: truncated stream (%d bytes of a sample)", len(buf))
		}
		if err != nil {
			return nil, err
		}
		re := math.Float32frombits(binary.LittleEndian.Uint32(buf[0:]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(buf[4:]))
		out = append(out, complex(float64(re), float64(im)))
	}
}

// WriteFile writes samples to path in cf32 format.
func WriteFile(path string, samples []complex128) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, samples); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a cf32 file.
func ReadFile(path string) ([]complex128, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// NormalizePeak scales samples in place so the peak magnitude is peak
// (DAC full-scale headroom; USRP tooling usually wants <= 1.0). A zero
// signal is returned unchanged.
func NormalizePeak(samples []complex128, peak float64) []complex128 {
	var m float64
	for _, s := range samples {
		if a := math.Hypot(real(s), imag(s)); a > m {
			m = a
		}
	}
	if m == 0 {
		return samples
	}
	g := complex(peak/m, 0)
	for i := range samples {
		samples[i] *= g
	}
	return samples
}
