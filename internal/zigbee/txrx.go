package zigbee

import (
	"fmt"
)

// Transmitter renders payloads to baseband waveforms.
type Transmitter struct {
	// SamplesPerChip of the output waveform (default 10 -> 20 MS/s).
	SamplesPerChip int
}

func (t Transmitter) samplesPerChip() int {
	if t.SamplesPerChip == 0 {
		return 10
	}
	return t.SamplesPerChip
}

// Transmit builds the PPDU for payload and returns its baseband waveform
// with unit average power.
func (t Transmitter) Transmit(payload []byte) ([]complex128, error) {
	ppdu, err := BuildPPDU(payload)
	if err != nil {
		return nil, err
	}
	chips := Spread(ppdu)
	mod := Modulator{SamplesPerChip: t.samplesPerChip()}
	return mod.Modulate(chips)
}

// Receiver demodulates, despreads and validates a PPDU waveform.
type Receiver struct {
	SamplesPerChip int
}

func (r Receiver) samplesPerChip() int {
	if r.SamplesPerChip == 0 {
		return 10
	}
	return r.SamplesPerChip
}

// RxStats carries reception quality indicators alongside the payload.
type RxStats struct {
	// MinChipAgreement is the worst per-symbol correlation (out of 32);
	// low values mean the link was close to failure.
	MinChipAgreement int
	// ChipErrors counts hard chip decisions differing from the best-match
	// sequences.
	ChipErrors int
}

// LQI maps the reception quality to the 802.15.4 link quality indicator
// (0..255): 32/32 chip agreement saturates at 255, agreement at the
// decision boundary (~16/32, a coin flip) maps to 0.
func (s *RxStats) LQI() uint8 {
	if s == nil {
		return 0
	}
	v := (s.MinChipAgreement - 16) * 255 / 16
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return uint8(v)
}

// Receive recovers the payload from a waveform that begins at the first
// preamble sample (synchronization is the simulator's job). payloadLen is
// unknown to a real receiver until the PHR arrives; Receive discovers it
// the same way, reading the PHR after despreading the header.
func (r Receiver) Receive(wave []complex128) ([]byte, *RxStats, error) {
	spc := r.samplesPerChip()
	demod := Demodulator{SamplesPerChip: spc}

	headerOctets := PreambleOctets + 2 // preamble + SFD + PHR
	headerChips := headerOctets * 2 * ChipsPerSymbol
	if (headerChips+1)*spc > len(wave) {
		return nil, nil, fmt.Errorf("zigbee: waveform too short for PPDU header")
	}
	chips, _, err := demod.Demodulate(wave, headerChips)
	if err != nil {
		return nil, nil, err
	}
	header, minAgree, err := Despread(chips)
	if err != nil {
		return nil, nil, err
	}
	mpdu := int(header[headerOctets-1] & 0x7F)
	totalOctets := headerOctets + mpdu
	totalChips := totalOctets * 2 * ChipsPerSymbol
	if (totalChips+1)*spc > len(wave) {
		return nil, nil, fmt.Errorf("zigbee: waveform truncated: PHR declares %d octets", mpdu)
	}
	chips, _, err = demod.Demodulate(wave, totalChips)
	if err != nil {
		return nil, nil, err
	}
	octets, ma, err := Despread(chips)
	if err != nil {
		return nil, nil, err
	}
	if ma < minAgree {
		minAgree = ma
	}
	payload, err := ParsePPDU(octets)
	if err != nil {
		return nil, nil, err
	}
	// Chip errors relative to the ideal spreading of the decoded octets.
	ideal := Spread(octets)
	errs := 0
	for i := range ideal {
		if ideal[i] != chips[i]&1 {
			errs++
		}
	}
	return payload, &RxStats{MinChipAgreement: minAgree, ChipErrors: errs}, nil
}
