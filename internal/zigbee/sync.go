package zigbee

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Synchronizer locates the start of a PPDU inside a longer capture by
// matched-filtering against the known preamble waveform — the job a real
// receiver's correlator does continuously. It makes the waveform-level
// interference experiments honest: the receiver is not told where the
// frame begins.
type Synchronizer struct {
	SamplesPerChip int
	// SearchStep subsamples the correlation search (1 = every sample).
	// The preamble correlation peak is several chips wide, so small steps
	// only cost time; 0 selects SamplesPerChip/2.
	SearchStep int
}

// refPreamble renders the deterministic preamble waveform (the first
// PreambleOctets of zeros) used as the matched-filter template.
func (s Synchronizer) refPreamble() ([]complex128, error) {
	spc := s.SamplesPerChip
	if spc == 0 {
		spc = 10
	}
	mod := Modulator{SamplesPerChip: spc}
	return mod.Modulate(Spread(make([]byte, PreambleOctets)))
}

// Locate returns the sample offset of the best preamble match in wave and
// the normalized correlation metric (1 = perfect, 0 = uncorrelated). An
// error is returned when the capture is shorter than the preamble.
func (s Synchronizer) Locate(wave []complex128) (offset int, metric float64, err error) {
	ref, err := s.refPreamble()
	if err != nil {
		return 0, 0, err
	}
	if len(wave) < len(ref) {
		return 0, 0, fmt.Errorf("zigbee: capture of %d samples shorter than the %d-sample preamble", len(wave), len(ref))
	}
	step := s.SearchStep
	if step <= 0 {
		spc := s.SamplesPerChip
		if spc == 0 {
			spc = 10
		}
		step = spc / 2
		if step < 1 {
			step = 1
		}
	}
	spc := s.SamplesPerChip
	if spc == 0 {
		spc = 10
	}
	// Correlate in 16 us (one preamble symbol) segments and combine the
	// magnitudes non-coherently, so a carrier offset of tens of kHz —
	// which rotates several cycles across the whole 128 us preamble —
	// only costs a fraction of a cycle per segment.
	segLen := ChipsPerSymbol * spc
	score := func(off int) float64 {
		var total, refEnergy, segEnergy float64
		for segStart := 0; segStart+segLen <= len(ref); segStart += segLen {
			var corr complex128
			var re, se float64
			for i := 0; i < segLen; i++ {
				r := ref[segStart+i]
				v := wave[off+segStart+i]
				corr += v * cmplx.Conj(r)
				re += real(r)*real(r) + imag(r)*imag(r)
				se += real(v)*real(v) + imag(v)*imag(v)
			}
			total += cmplx.Abs(corr)
			refEnergy += re
			segEnergy += se
		}
		if refEnergy == 0 || segEnergy == 0 {
			return 0
		}
		return total / math.Sqrt(refEnergy*segEnergy)
	}
	best, bestScore := 0, -1.0
	for off := 0; off+len(ref) <= len(wave); off += step {
		if sc := score(off); sc > bestScore {
			bestScore = sc
			best = off
		}
	}
	// Refine around the coarse peak at single-sample resolution.
	if step > 1 {
		lo := best - step
		if lo < 0 {
			lo = 0
		}
		hi := best + step
		for off := lo; off <= hi && off+len(ref) <= len(wave); off++ {
			if sc := score(off); sc > bestScore {
				bestScore = sc
				best = off
			}
		}
	}
	return best, bestScore, nil
}

// ReceiveUnsynchronized locates the frame in a capture and decodes it.
// minMetric rejects captures without a credible preamble (0.5 is a
// reasonable floor under heavy interference; 0 accepts the best match
// unconditionally).
func (s Synchronizer) ReceiveUnsynchronized(wave []complex128, minMetric float64) ([]byte, *RxStats, error) {
	off, metric, err := s.Locate(wave)
	if err != nil {
		return nil, nil, err
	}
	if metric < minMetric {
		return nil, nil, fmt.Errorf("zigbee: no preamble found (best correlation %.2f)", metric)
	}
	spc := s.SamplesPerChip
	if spc == 0 {
		spc = 10
	}
	// Derotate by the carrier phase estimated from the preamble
	// correlation, so the demodulator's I/Q rails line up.
	ref, err := s.refPreamble()
	if err != nil {
		return nil, nil, err
	}
	var corr complex128
	for i, r := range ref {
		corr += wave[off+i] * cmplx.Conj(r)
	}
	rotated := wave[off:]
	if cmplx.Abs(corr) > 0 {
		phase := cmplx.Conj(corr / complex(cmplx.Abs(corr), 0))
		derot := make([]complex128, len(rotated))
		for i, v := range rotated {
			derot[i] = v * phase
		}
		rotated = derot
	}
	return Receiver{SamplesPerChip: spc}.Receive(rotated)
}

// EstimateCFO measures the carrier offset from the preamble's periodicity:
// the 802.15.4 preamble repeats the symbol-0 chip sequence every 32 chips
// (16 us), so the phase of the lag-32-chip autocorrelation is 2*pi*f*16us.
// Unambiguous range: +/-31.25 kHz (about +/-13 ppm at 2.4 GHz); wider
// offsets need a frequency sweep, as real receivers do in hardware.
// offset is the sample index of the frame start (from Locate).
func (s Synchronizer) EstimateCFO(wave []complex128, offset int) (float64, error) {
	spc := s.SamplesPerChip
	if spc == 0 {
		spc = 10
	}
	lag := ChipsPerSymbol * spc
	// Use the first 6 preamble symbols (leave margin before the SFD).
	span := 6 * lag
	if offset < 0 || offset+span+lag > len(wave) {
		return 0, fmt.Errorf("zigbee: capture too short for CFO estimation")
	}
	var acc complex128
	for i := 0; i < span; i++ {
		acc += wave[offset+i+lag] * cmplx.Conj(wave[offset+i])
	}
	sampleRate := ChipRate * float64(spc)
	period := float64(lag) / sampleRate // 16 us
	return cmplx.Phase(acc) / (2 * math.Pi * period), nil
}

// CorrectCFO derotates a capture by the given offset.
func CorrectCFO(wave []complex128, sampleRate, offsetHz float64) []complex128 {
	out := make([]complex128, len(wave))
	step := -2 * math.Pi * offsetHz / sampleRate
	for i, v := range wave {
		out[i] = v * cmplx.Exp(complex(0, step*float64(i)))
	}
	return out
}

// ReceiveWithCFO locates the frame, estimates and removes the carrier
// offset, and decodes.
func (s Synchronizer) ReceiveWithCFO(wave []complex128, minMetric float64) ([]byte, float64, error) {
	off, _, err := s.Locate(wave)
	if err != nil {
		return nil, 0, err
	}
	cfo, err := s.EstimateCFO(wave, off)
	if err != nil {
		return nil, 0, err
	}
	spc := s.SamplesPerChip
	if spc == 0 {
		spc = 10
	}
	corrected := CorrectCFO(wave, ChipRate*float64(spc), cfo)
	payload, _, err := s.ReceiveUnsynchronized(corrected, minMetric)
	return payload, cfo, err
}
