package zigbee

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sledzig/internal/bits"
)

func TestChipSequenceSymbolZero(t *testing.T) {
	// 802.15.4-2015 Table 12-1, data symbol 0.
	want := "11011001110000110101001000101110"
	got, err := ChipSequence(0)
	if err != nil {
		t.Fatal(err)
	}
	if bits.String(got) != want {
		t.Fatalf("symbol 0 chips\n got %s\nwant %s", bits.String(got), want)
	}
}

func TestChipSequenceSymbolSeven(t *testing.T) {
	// Symbol 7 is symbol 0 cyclically right-shifted by 28 chips.
	s0, _ := ChipSequence(0)
	s7, err := ChipSequence(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ChipsPerSymbol; i++ {
		if s7[i] != s0[(i+ChipsPerSymbol-28)%ChipsPerSymbol] {
			t.Fatalf("symbol 7 is not a 28-chip rotation of symbol 0 at chip %d", i)
		}
	}
}

func TestChipSequenceConjugation(t *testing.T) {
	for s := 0; s < 8; s++ {
		a, _ := ChipSequence(s)
		b, err := ChipSequence(s + 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ChipsPerSymbol; i++ {
			want := a[i]
			if i%2 == 1 {
				want ^= 1
			}
			if b[i] != want {
				t.Fatalf("symbol %d is not the conjugate of %d at chip %d", s+8, s, i)
			}
		}
	}
}

func TestChipSequencesDistinct(t *testing.T) {
	if d := MinSequenceDistance(); d < 12 {
		t.Fatalf("minimum pairwise chip distance %d; DSSS margin requires >= 12", d)
	}
}

func TestSpreadDespreadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		data := bits.RandomBytes(rng, int(n%100)+1)
		chips := Spread(data)
		back, agree, err := Despread(chips)
		if err != nil || agree != ChipsPerSymbol {
			return false
		}
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDespreadToleratesChipErrors(t *testing.T) {
	// With minimum sequence distance >= 12, up to 5 chip errors per symbol
	// must always despread correctly.
	rng := rand.New(rand.NewSource(2))
	data := []byte{0x3C, 0xA5}
	chips := Spread(data)
	for trial := 0; trial < 200; trial++ {
		corrupted := bits.Clone(chips)
		for s := 0; s < len(chips)/ChipsPerSymbol; s++ {
			perm := rng.Perm(ChipsPerSymbol)
			for _, p := range perm[:5] {
				corrupted[s*ChipsPerSymbol+p] ^= 1
			}
		}
		back, _, err := Despread(corrupted)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if back[i] != data[i] {
				t.Fatalf("trial %d: despread failed with 5 chip errors per symbol", trial)
			}
		}
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// ITU-T CRC16 (Kermit-style LSB-first) of "123456789" is 0x6F91 for
	// init 0xFFFF; for the 802.15.4 init-0 variant the reference value is
	// 0x2189.
	got := CRC16([]byte("123456789"))
	if got != 0x2189 {
		t.Fatalf("CRC16 = %#04x, want 0x2189", got)
	}
}

func TestBuildParsePPDU(t *testing.T) {
	payload := []byte("hello zigbee")
	ppdu, err := BuildPPDU(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(ppdu) != PreambleOctets+2+len(payload)+FCSLength {
		t.Fatalf("PPDU length %d unexpected", len(ppdu))
	}
	got, err := ParsePPDU(ppdu)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round trip: got %q", got)
	}
}

func TestParsePPDUDetectsCorruption(t *testing.T) {
	ppdu, err := BuildPPDU([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	ppdu[PreambleOctets+3] ^= 0x10 // corrupt a payload octet
	if _, err := ParsePPDU(ppdu); err == nil {
		t.Fatal("corrupted PPDU passed FCS")
	}
}

func TestBuildPPDURejectsOversize(t *testing.T) {
	if _, err := BuildPPDU(make([]byte, MaxPayload)); err == nil {
		t.Fatal("oversize payload accepted")
	}
}

func TestOQPSKChipRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	chips := bits.Random(rng, 256)
	for _, spc := range []int{4, 10} {
		mod := Modulator{SamplesPerChip: spc}
		wave, err := mod.Modulate(chips)
		if err != nil {
			t.Fatal(err)
		}
		demod := Demodulator{SamplesPerChip: spc}
		got, _, err := demod.Demodulate(wave, len(chips))
		if err != nil {
			t.Fatal(err)
		}
		if !bits.Equal(got, chips) {
			t.Fatalf("spc=%d: chip round trip failed (%d errors)", spc, bits.HammingDistance(got, chips))
		}
	}
}

func TestOQPSKUnitPower(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	chips := bits.Random(rng, 512)
	mod := Modulator{SamplesPerChip: 10}
	wave, err := mod.Modulate(chips)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range wave {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	avg := sum / float64(len(wave))
	if avg < 0.99 || avg > 1.01 {
		t.Fatalf("average waveform power %g, want ~1", avg)
	}
}

func TestTransmitReceiveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 20, 100} {
		payload := bits.RandomBytes(rng, n)
		wave, err := Transmitter{}.Transmit(payload)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := Receiver{}.Receive(wave)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if stats.ChipErrors != 0 {
			t.Fatalf("n=%d: %d chip errors on clean waveform", n, stats.ChipErrors)
		}
		for i := range payload {
			if got[i] != payload[i] {
				t.Fatalf("n=%d: payload mismatch at %d", n, i)
			}
		}
	}
}

func TestReceiveRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	wave := make([]complex128, 40000)
	for i := range wave {
		wave[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	if _, _, err := (Receiver{}).Receive(wave); err == nil {
		t.Fatal("pure noise decoded as a frame")
	}
}

func TestFrameAirtime(t *testing.T) {
	// A 100-octet payload: (4+2+100+2) octets * 2 symbols * 16 us = 3.456 ms.
	got := FrameAirtime(100)
	want := 3.456e-3
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("FrameAirtime(100) = %g, want %g", got, want)
	}
}

func TestChannelFrequency(t *testing.T) {
	cases := map[int]float64{11: 2405e6, 23: 2465e6, 26: 2480e6}
	for ch, want := range cases {
		got, err := ChannelFrequency(ch)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("ChannelFrequency(%d) = %g, want %g", ch, got, want)
		}
	}
	if _, err := ChannelFrequency(10); err == nil {
		t.Error("channel 10 accepted")
	}
	if _, err := ChannelFrequency(27); err == nil {
		t.Error("channel 27 accepted")
	}
}

func TestLQI(t *testing.T) {
	if lqi := (&RxStats{MinChipAgreement: 32}).LQI(); lqi != 255 {
		t.Fatalf("perfect reception LQI %d", lqi)
	}
	if lqi := (&RxStats{MinChipAgreement: 16}).LQI(); lqi != 0 {
		t.Fatalf("boundary LQI %d", lqi)
	}
	if lqi := (&RxStats{MinChipAgreement: 24}).LQI(); lqi != 127 {
		t.Fatalf("midpoint LQI %d", lqi)
	}
	var nilStats *RxStats
	if nilStats.LQI() != 0 {
		t.Fatal("nil stats LQI")
	}
	// A clean round trip reports a saturated LQI.
	wave, err := Transmitter{}.Transmit([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := (Receiver{}).Receive(wave)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LQI() != 255 {
		t.Fatalf("clean LQI %d", stats.LQI())
	}
}

func TestModulatorDemodulatorValidation(t *testing.T) {
	if _, err := (Modulator{SamplesPerChip: 1}).Modulate([]bits.Bit{1}); err == nil {
		t.Error("spc=1 accepted by modulator")
	}
	if _, _, err := (Demodulator{SamplesPerChip: 0}).Demodulate(nil, 4); err == nil {
		t.Error("spc=0 accepted by demodulator")
	}
	if _, _, err := (Demodulator{SamplesPerChip: 4}).Demodulate(make([]complex128, 3), 4); err == nil {
		t.Error("short waveform accepted")
	}
	if _, err := (Demodulator{SamplesPerChip: 1}).DemodulateSoft(nil, 4); err == nil {
		t.Error("spc=1 accepted by soft demodulator")
	}
}

func TestDespreadValidation(t *testing.T) {
	if _, _, err := Despread(make([]bits.Bit, 63)); err == nil {
		t.Error("non-octet chip stream accepted")
	}
	if _, _, err := DespreadSymbol(make([]bits.Bit, 31)); err == nil {
		t.Error("short symbol accepted")
	}
	if _, err := ChipSequence(16); err == nil {
		t.Error("symbol 16 accepted")
	}
	if _, err := ChipSequence(-1); err == nil {
		t.Error("symbol -1 accepted")
	}
}
