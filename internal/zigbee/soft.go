package zigbee

import (
	"fmt"
	"math"

	"sledzig/internal/bits"
)

// Soft-decision despreading: instead of slicing each chip to a hard 0/1
// and counting agreements, the receiver correlates the signed chip
// statistics against each candidate sequence. Weak (low-confidence) chips
// then contribute little, which buys a consistent margin under noise and
// partial interference.

// DemodulateSoft extracts signed per-chip correlation statistics from a
// waveform (positive favours chip 1).
func (d Demodulator) DemodulateSoft(wave []complex128, numChips int) ([]float64, error) {
	if d.SamplesPerChip < 2 {
		return nil, fmt.Errorf("zigbee: SamplesPerChip %d < 2", d.SamplesPerChip)
	}
	spc := d.SamplesPerChip
	need := (numChips + 1) * spc
	if len(wave) < need {
		return nil, fmt.Errorf("zigbee: waveform has %d samples, %d chips need %d", len(wave), numChips, need)
	}
	pulse := make([]float64, 2*spc)
	for i := range pulse {
		pulse[i] = math.Sin(math.Pi * float64(i) / float64(len(pulse)))
	}
	soft := make([]float64, numChips)
	for k := 0; k < numChips; k++ {
		start := k * spc
		var corr float64
		for i, p := range pulse {
			idx := start + i
			if idx >= len(wave) {
				break
			}
			if k%2 == 0 {
				corr += real(wave[idx]) * p
			} else {
				corr += imag(wave[idx]) * p
			}
		}
		soft[k] = corr
	}
	return soft, nil
}

// DespreadSymbolSoft correlates one 32-chip window of signed statistics
// against all 16 sequences and returns the best symbol with its
// normalized margin over the runner-up (0 = tie, larger = safer).
func DespreadSymbolSoft(soft []float64) (symbol int, margin float64, err error) {
	if len(soft) != ChipsPerSymbol {
		return 0, 0, fmt.Errorf("zigbee: despread window must be %d chips, got %d", ChipsPerSymbol, len(soft))
	}
	best, second := math.Inf(-1), math.Inf(-1)
	bestSym := 0
	for s := 0; s < 16; s++ {
		var score float64
		for i, v := range soft {
			if chipTable[s][i] == 1 {
				score += v
			} else {
				score -= v
			}
		}
		if score > best {
			second = best
			best = score
			bestSym = s
		} else if score > second {
			second = score
		}
	}
	var norm float64
	for _, v := range soft {
		norm += math.Abs(v)
	}
	if norm == 0 {
		return bestSym, 0, nil
	}
	return bestSym, (best - second) / norm, nil
}

// DespreadSoft recovers bytes from a soft chip stream (whole octets) and
// reports the worst per-symbol margin.
func DespreadSoft(soft []float64) (data []byte, minMargin float64, err error) {
	if len(soft)%(2*ChipsPerSymbol) != 0 {
		return nil, 0, fmt.Errorf("zigbee: soft stream length %d is not a whole number of octets", len(soft))
	}
	minMargin = math.Inf(1)
	data = make([]byte, 0, len(soft)/(2*ChipsPerSymbol))
	for off := 0; off < len(soft); off += 2 * ChipsPerSymbol {
		lo, m1, err := DespreadSymbolSoft(soft[off : off+ChipsPerSymbol])
		if err != nil {
			return nil, 0, err
		}
		hi, m2, err := DespreadSymbolSoft(soft[off+ChipsPerSymbol : off+2*ChipsPerSymbol])
		if err != nil {
			return nil, 0, err
		}
		minMargin = math.Min(minMargin, math.Min(m1, m2))
		data = append(data, byte(lo)|byte(hi)<<4)
	}
	return data, minMargin, nil
}

// ReceiveSoft decodes a PPDU waveform with soft-decision despreading.
func (r Receiver) ReceiveSoft(wave []complex128) ([]byte, error) {
	spc := r.samplesPerChip()
	demod := Demodulator{SamplesPerChip: spc}
	headerChips := (PreambleOctets + 2) * 2 * ChipsPerSymbol
	if (headerChips+1)*spc > len(wave) {
		return nil, fmt.Errorf("zigbee: waveform too short for PPDU header")
	}
	soft, err := demod.DemodulateSoft(wave, headerChips)
	if err != nil {
		return nil, err
	}
	header, _, err := DespreadSoft(soft)
	if err != nil {
		return nil, err
	}
	mpdu := int(header[len(header)-1] & 0x7F)
	totalChips := (PreambleOctets + 2 + mpdu) * 2 * ChipsPerSymbol
	if (totalChips+1)*spc > len(wave) {
		return nil, fmt.Errorf("zigbee: waveform truncated: PHR declares %d octets", mpdu)
	}
	soft, err = demod.DemodulateSoft(wave, totalChips)
	if err != nil {
		return nil, err
	}
	octets, _, err := DespreadSoft(soft)
	if err != nil {
		return nil, err
	}
	return ParsePPDU(octets)
}

// HardChipsFromSoft slices signed statistics to hard chips — the bridge
// between the two receiver paths (useful in tests).
func HardChipsFromSoft(soft []float64) []bits.Bit {
	out := make([]bits.Bit, len(soft))
	for i, v := range soft {
		if v >= 0 {
			out[i] = 1
		}
	}
	return out
}
