package zigbee

import "testing"

// Fuzz targets guard the parsers against panics on arbitrary input; run
// in seed-corpus mode under go test and expandable with -fuzz.

func FuzzParsePPDU(f *testing.F) {
	good, _ := BuildPPDU([]byte("seed"))
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, SFD, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ParsePPDU(data)
		if err == nil && len(payload) == 0 {
			t.Fatal("accepted PPDU with empty payload")
		}
	})
}

func FuzzParseFrame(f *testing.F) {
	df, _ := (&DataFrame{PANID: 1, Dest: 2, Source: 3, Payload: []byte{1}}).Marshal()
	f.Add(df)
	f.Add(AckFrame(7))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, frame, _, err := ParseFrame(data)
		if err == nil && kind == FrameData && frame == nil {
			t.Fatal("data frame without body")
		}
	})
}

func FuzzDespread(f *testing.F) {
	f.Add([]byte{1, 0, 1})
	f.Fuzz(func(t *testing.T, chips []byte) {
		for i := range chips {
			chips[i] &= 1
		}
		if len(chips)%(2*ChipsPerSymbol) != 0 {
			return
		}
		if _, _, err := Despread(chips); err != nil {
			t.Fatal(err)
		}
	})
}
