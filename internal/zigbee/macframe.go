package zigbee

import (
	"encoding/binary"
	"fmt"
)

// Minimal 802.15.4 MAC framing with short (16-bit) addressing: data
// frames with acknowledgment requests and the 5-octet immediate ACK
// frame. The MAC-level FCS is the PHY FCS this package already computes
// in BuildPPDU, so these helpers produce MAC payloads for the PHY layer.

// FrameType distinguishes the MAC frame kinds used here.
type FrameType int

// Frame kinds (subset of 802.15.4).
const (
	FrameData FrameType = 1
	FrameAck  FrameType = 2
)

// DataFrame is an intra-PAN data MPDU with short addressing.
type DataFrame struct {
	PANID    uint16
	Dest     uint16
	Source   uint16
	Sequence uint8
	// AckRequest asks the receiver for an immediate ACK.
	AckRequest bool
	Payload    []byte
}

const dataHeaderLen = 9 // FCF(2) + seq(1) + PAN(2) + dest(2) + src(2)

// MaxDataPayload bounds the MSDU so the MPDU (plus PHY FCS) fits 127
// octets.
const MaxDataPayload = MaxPayload - FCSLength - dataHeaderLen

// Marshal serializes the data frame (without the PHY FCS, which
// BuildPPDU appends).
func (f *DataFrame) Marshal() ([]byte, error) {
	if len(f.Payload) == 0 {
		return nil, fmt.Errorf("zigbee: empty MSDU")
	}
	if len(f.Payload) > MaxDataPayload {
		return nil, fmt.Errorf("zigbee: MSDU of %d octets exceeds %d", len(f.Payload), MaxDataPayload)
	}
	// FCF: type=data(001), security=0, pending=0, ackreq, intra-PAN=1;
	// dest addressing mode=short(10), source mode=short(10).
	fcf := uint16(0x0001) | 0x0040 | 0x0880 | 0x8000
	if f.AckRequest {
		fcf |= 0x0020
	}
	out := make([]byte, 0, dataHeaderLen+len(f.Payload))
	var hdr [dataHeaderLen]byte
	binary.LittleEndian.PutUint16(hdr[0:], fcf)
	hdr[2] = f.Sequence
	binary.LittleEndian.PutUint16(hdr[3:], f.PANID)
	binary.LittleEndian.PutUint16(hdr[5:], f.Dest)
	binary.LittleEndian.PutUint16(hdr[7:], f.Source)
	out = append(out, hdr[:]...)
	return append(out, f.Payload...), nil
}

// AckFrame builds the 3-octet immediate acknowledgment for a sequence
// number (FCF type=ack + seq; the PHY adds the FCS).
func AckFrame(sequence uint8) []byte {
	return []byte{0x02, 0x00, sequence}
}

// ParseFrame classifies and decodes a received MPDU (after the PHY has
// validated the FCS).
func ParseFrame(mpdu []byte) (FrameType, *DataFrame, uint8, error) {
	if len(mpdu) < 3 {
		return 0, nil, 0, fmt.Errorf("zigbee: MPDU of %d octets too short", len(mpdu))
	}
	fcf := binary.LittleEndian.Uint16(mpdu[0:])
	switch fcf & 0x0007 {
	case 0x0002: // ack
		return FrameAck, nil, mpdu[2], nil
	case 0x0001: // data
		if len(mpdu) < dataHeaderLen+1 {
			return 0, nil, 0, fmt.Errorf("zigbee: data MPDU of %d octets too short", len(mpdu))
		}
		f := &DataFrame{
			Sequence:   mpdu[2],
			PANID:      binary.LittleEndian.Uint16(mpdu[3:]),
			Dest:       binary.LittleEndian.Uint16(mpdu[5:]),
			Source:     binary.LittleEndian.Uint16(mpdu[7:]),
			AckRequest: fcf&0x0020 != 0,
			Payload:    append([]byte(nil), mpdu[dataHeaderLen:]...),
		}
		return FrameData, f, f.Sequence, nil
	default:
		return 0, nil, 0, fmt.Errorf("zigbee: unsupported frame type %#x", fcf&0x0007)
	}
}

// MAC timing constants for the ACK exchange (2.4 GHz O-QPSK).
const (
	// TurnaroundTime is aTurnaroundTime: 12 symbols = 192 us.
	TurnaroundTime = 12 * SymbolDuration
	// AckWaitDuration bounds how long a transmitter waits for the ACK.
	AckWaitDuration = 54 * SymbolDuration
	// AckAirtime is the on-air duration of the 5-octet ACK PPDU
	// (preamble + SFD + PHR + 3-octet MPDU + FCS).
	AckAirtime = float64(PreambleOctets+2+3+FCSLength) * 2 * SymbolDuration
)
