package zigbee

import (
	"fmt"
)

// PPDU framing constants (802.15.4-2015, 12.1).
const (
	// PreambleOctets of zeros precede the SFD; at two symbols per octet
	// this is the 8-symbol / 128 us preamble the paper's CCA analysis uses.
	PreambleOctets = 4
	// SFD is the start-of-frame delimiter.
	SFD = 0xA7
	// MaxPayload is the largest MPDU (including the 2-byte FCS).
	MaxPayload = 127
	// FCSLength is the CRC-16 trailer length.
	FCSLength = 2
)

// CRC16 computes the ITU-T CRC-16 used by the 802.15.4 FCS
// (x^16 + x^12 + x^5 + 1, initial value 0, LSB-first processing).
func CRC16(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		for i := 0; i < 8; i++ {
			bit := (b >> i) & 1
			fb := (crc & 1) ^ uint16(bit)
			crc >>= 1
			if fb == 1 {
				crc ^= 0x8408 // reversed 0x1021
			}
		}
	}
	return crc
}

// BuildPPDU assembles preamble + SFD + PHR(length) + payload + FCS as an
// octet stream ready for spreading. The payload excludes the FCS; length
// signalled in the PHR includes it.
func BuildPPDU(payload []byte) ([]byte, error) {
	mpdu := len(payload) + FCSLength
	if mpdu > MaxPayload {
		return nil, fmt.Errorf("zigbee: MPDU length %d exceeds %d octets", mpdu, MaxPayload)
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("zigbee: empty payload")
	}
	out := make([]byte, 0, PreambleOctets+2+mpdu)
	out = append(out, make([]byte, PreambleOctets)...)
	out = append(out, SFD)
	out = append(out, byte(mpdu))
	out = append(out, payload...)
	crc := CRC16(payload)
	out = append(out, byte(crc), byte(crc>>8))
	return out, nil
}

// ParsePPDU validates an octet stream produced by BuildPPDU (possibly with
// corrupted payload octets) and returns the payload. It checks preamble,
// SFD, PHR consistency and the FCS.
func ParsePPDU(octets []byte) ([]byte, error) {
	if len(octets) < PreambleOctets+2+1+FCSLength {
		return nil, fmt.Errorf("zigbee: PPDU too short (%d octets)", len(octets))
	}
	for i := 0; i < PreambleOctets; i++ {
		if octets[i] != 0 {
			return nil, fmt.Errorf("zigbee: preamble octet %d is %#x, want 0", i, octets[i])
		}
	}
	if octets[PreambleOctets] != SFD {
		return nil, fmt.Errorf("zigbee: SFD is %#x, want %#x", octets[PreambleOctets], SFD)
	}
	mpdu := int(octets[PreambleOctets+1] & 0x7F)
	start := PreambleOctets + 2
	if len(octets) < start+mpdu {
		return nil, fmt.Errorf("zigbee: PHR declares %d octets but only %d remain", mpdu, len(octets)-start)
	}
	payload := octets[start : start+mpdu-FCSLength]
	gotCRC := uint16(octets[start+mpdu-2]) | uint16(octets[start+mpdu-1])<<8
	if CRC16(payload) != gotCRC {
		return nil, fmt.Errorf("zigbee: FCS mismatch")
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

// FrameAirtime returns the on-air duration in seconds of a PPDU carrying
// payloadLen octets (plus FCS, PHR, SFD, preamble) at 250 kbit/s.
func FrameAirtime(payloadLen int) float64 {
	octets := PreambleOctets + 2 + payloadLen + FCSLength
	return float64(octets) * 2 * SymbolDuration
}
