package zigbee

import (
	"math/rand"
	"testing"

	"sledzig/internal/bits"
)

func BenchmarkSpread(b *testing.B) {
	data := bits.RandomBytes(rand.New(rand.NewSource(1)), 127)
	b.SetBytes(127)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Spread(data)
	}
}

func BenchmarkDespread(b *testing.B) {
	chips := Spread(bits.RandomBytes(rand.New(rand.NewSource(1)), 127))
	b.SetBytes(127)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Despread(chips); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOQPSKModulate(b *testing.B) {
	chips := Spread(bits.RandomBytes(rand.New(rand.NewSource(1)), 64))
	mod := Modulator{SamplesPerChip: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mod.Modulate(chips); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynchronizerLocate(b *testing.B) {
	wave, err := Transmitter{}.Transmit(bits.RandomBytes(rand.New(rand.NewSource(1)), 30))
	if err != nil {
		b.Fatal(err)
	}
	capture := make([]complex128, len(wave)+4000)
	copy(capture[2000:], wave)
	sync := Synchronizer{SamplesPerChip: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sync.Locate(capture); err != nil {
			b.Fatal(err)
		}
	}
}
