// Package zigbee implements the IEEE 802.15.4 2.4 GHz PHY used by the
// TelosB/CC2420 nodes in the SledZig paper: DSSS spreading of 4-bit symbols
// onto 32-chip pseudo-noise sequences, half-sine OQPSK modulation at
// 2 Mchip/s, PPDU framing with preamble/SFD/CRC, and a correlation
// receiver. Its DSSS redundancy is what lets ZigBee tolerate the residual
// narrowband (pilot) interference SledZig leaves in the channel.
package zigbee

import (
	"fmt"

	"sledzig/internal/bits"
)

// PHY constants of the 2.4 GHz O-QPSK PHY (802.15.4-2015, section 12).
const (
	// ChipRate is 2 Mchip/s.
	ChipRate = 2e6
	// ChipsPerSymbol spreads each 4-bit symbol to 32 chips.
	ChipsPerSymbol = 32
	// BitsPerSymbol is the dibit group size (one hex digit).
	BitsPerSymbol = 4
	// SymbolDuration is 16 us (32 chips at 2 Mchip/s).
	SymbolDuration = ChipsPerSymbol / ChipRate
	// BitRate is the 250 kbit/s PHY data rate.
	BitRate = 250e3
	// Bandwidth is the occupied channel bandwidth in Hz.
	Bandwidth = 2e6
	// ChannelSpacing between adjacent 2.4 GHz channels in Hz.
	ChannelSpacing = 5e6
	// FirstChannel and LastChannel bound the 2.4 GHz channel page.
	FirstChannel = 11
	LastChannel  = 26
)

// ChannelFrequency returns the center frequency in Hz of 2.4 GHz channel
// number ch (11..26): 2405 + 5 (ch - 11) MHz.
func ChannelFrequency(ch int) (float64, error) {
	if ch < FirstChannel || ch > LastChannel {
		return 0, fmt.Errorf("zigbee: channel %d out of range [%d, %d]", ch, FirstChannel, LastChannel)
	}
	return 2405e6 + 5e6*float64(ch-FirstChannel), nil
}

// chipSeq0 is the 32-chip PN sequence of data symbol 0
// (802.15.4-2015 Table 12-1), c0 first.
var chipSeq0 = [ChipsPerSymbol]bits.Bit{
	1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
	0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0,
}

// chipTable holds the 16 sequences: symbols 1..7 are right cyclic shifts of
// symbol 0 by 4 chips each; symbols 8..15 invert the odd-indexed chips
// (conjugation) of symbols 0..7.
var chipTable = buildChipTable()

func buildChipTable() [16][ChipsPerSymbol]bits.Bit {
	var t [16][ChipsPerSymbol]bits.Bit
	t[0] = chipSeq0
	for s := 1; s < 8; s++ {
		for i := 0; i < ChipsPerSymbol; i++ {
			t[s][i] = t[s-1][(i+ChipsPerSymbol-4)%ChipsPerSymbol]
		}
	}
	for s := 8; s < 16; s++ {
		for i := 0; i < ChipsPerSymbol; i++ {
			c := t[s-8][i]
			if i%2 == 1 {
				c ^= 1
			}
			t[s][i] = c
		}
	}
	return t
}

// ChipSequence returns a copy of the 32-chip sequence for symbol s (0..15).
func ChipSequence(s int) ([]bits.Bit, error) {
	if s < 0 || s > 15 {
		return nil, fmt.Errorf("zigbee: symbol %d out of range [0, 15]", s)
	}
	out := make([]bits.Bit, ChipsPerSymbol)
	copy(out, chipTable[s][:])
	return out, nil
}

// Spread maps a byte stream to its chip stream: each octet contributes two
// symbols, low nibble first (802.15.4 bit ordering).
func Spread(data []byte) []bits.Bit {
	out := make([]bits.Bit, 0, len(data)*2*ChipsPerSymbol)
	for _, b := range data {
		out = append(out, chipTable[b&0x0F][:]...)
		out = append(out, chipTable[b>>4][:]...)
	}
	return out
}

// DespreadSymbol correlates one 32-chip window against all 16 sequences and
// returns the best symbol and its chip agreement count (32 = perfect).
func DespreadSymbol(chips []bits.Bit) (symbol, agreement int, err error) {
	if len(chips) != ChipsPerSymbol {
		return 0, 0, fmt.Errorf("zigbee: despread window must be %d chips, got %d", ChipsPerSymbol, len(chips))
	}
	best, bestScore := 0, -1
	for s := 0; s < 16; s++ {
		score := 0
		for i, c := range chips {
			if c&1 == chipTable[s][i] {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = s, score
		}
	}
	return best, bestScore, nil
}

// Despread recovers bytes from a chip stream (length a multiple of 64
// chips, i.e. whole octets). It also reports the minimum per-symbol chip
// agreement seen, a quality indicator.
func Despread(chips []bits.Bit) (data []byte, minAgreement int, err error) {
	if len(chips)%(2*ChipsPerSymbol) != 0 {
		return nil, 0, fmt.Errorf("zigbee: chip stream length %d is not a whole number of octets", len(chips))
	}
	minAgreement = ChipsPerSymbol
	data = make([]byte, 0, len(chips)/(2*ChipsPerSymbol))
	for off := 0; off < len(chips); off += 2 * ChipsPerSymbol {
		lo, a1, err := DespreadSymbol(chips[off : off+ChipsPerSymbol])
		if err != nil {
			return nil, 0, err
		}
		hi, a2, err := DespreadSymbol(chips[off+ChipsPerSymbol : off+2*ChipsPerSymbol])
		if err != nil {
			return nil, 0, err
		}
		if a1 < minAgreement {
			minAgreement = a1
		}
		if a2 < minAgreement {
			minAgreement = a2
		}
		data = append(data, byte(lo)|byte(hi)<<4)
	}
	return data, minAgreement, nil
}

// MinSequenceDistance returns the minimum pairwise Hamming distance among
// the 16 chip sequences — the margin that makes DSSS robust to partial
// chip corruption.
func MinSequenceDistance() int {
	minD := ChipsPerSymbol
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			d := 0
			for i := 0; i < ChipsPerSymbol; i++ {
				if chipTable[a][i] != chipTable[b][i] {
					d++
				}
			}
			if d < minD {
				minD = d
			}
		}
	}
	return minD
}
