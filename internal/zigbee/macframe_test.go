package zigbee

import (
	"math"
	"testing"
)

func TestDataFrameRoundTrip(t *testing.T) {
	f := &DataFrame{
		PANID: 0x1234, Dest: 0xBEEF, Source: 0xCAFE,
		Sequence: 42, AckRequest: true,
		Payload: []byte("sensor reading 21.5C"),
	}
	mpdu, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	kind, got, seq, err := ParseFrame(mpdu)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameData || seq != 42 {
		t.Fatalf("kind=%v seq=%d", kind, seq)
	}
	if got.PANID != f.PANID || got.Dest != f.Dest || got.Source != f.Source || !got.AckRequest {
		t.Fatalf("header mismatch: %+v", got)
	}
	if string(got.Payload) != string(f.Payload) {
		t.Fatalf("payload %q", got.Payload)
	}
}

func TestDataFrameThroughPHY(t *testing.T) {
	f := &DataFrame{PANID: 1, Dest: 2, Source: 3, Sequence: 7, Payload: []byte{9, 8, 7}}
	mpdu, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wave, err := Transmitter{}.Transmit(mpdu)
	if err != nil {
		t.Fatal(err)
	}
	rxMPDU, _, err := Receiver{}.Receive(wave)
	if err != nil {
		t.Fatal(err)
	}
	kind, got, _, err := ParseFrame(rxMPDU)
	if err != nil || kind != FrameData {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	if got.Dest != 2 || len(got.Payload) != 3 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestAckFrame(t *testing.T) {
	ack := AckFrame(99)
	kind, data, seq, err := ParseFrame(ack)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameAck || data != nil || seq != 99 {
		t.Fatalf("kind=%v data=%v seq=%d", kind, data, seq)
	}
}

func TestMarshalValidation(t *testing.T) {
	if _, err := (&DataFrame{}).Marshal(); err == nil {
		t.Error("empty MSDU accepted")
	}
	if _, err := (&DataFrame{Payload: make([]byte, MaxDataPayload+1)}).Marshal(); err == nil {
		t.Error("oversize MSDU accepted")
	}
}

func TestParseFrameRejectsGarbage(t *testing.T) {
	if _, _, _, err := ParseFrame([]byte{0x07, 0x00, 1}); err == nil {
		t.Error("reserved frame type accepted")
	}
	if _, _, _, err := ParseFrame([]byte{0x01}); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestAckTiming(t *testing.T) {
	// Turnaround 192 us, ACK airtime 352 us: both well under the 864 us
	// wait bound, so a transmitter never times out on a delivered ACK.
	if math.Abs(TurnaroundTime-192e-6) > 1e-9 {
		t.Fatalf("turnaround %g", TurnaroundTime)
	}
	if math.Abs(AckAirtime-352e-6) > 1e-9 {
		t.Fatalf("ack airtime %g", AckAirtime)
	}
	if TurnaroundTime+AckAirtime >= AckWaitDuration {
		t.Fatal("ACK cannot arrive within the wait window")
	}
}
