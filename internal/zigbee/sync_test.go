package zigbee

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestSynchronizerFindsFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	payload := []byte("synchronize me")
	frame, err := Transmitter{}.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Embed the frame at a random offset in a longer noisy capture.
	offset := 1234
	capture := make([]complex128, offset+len(frame)+500)
	for i := range capture {
		capture[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * 0.01
	}
	for i, v := range frame {
		capture[offset+i] += v
	}
	sync := Synchronizer{SamplesPerChip: 10}
	got, metric, err := sync.Locate(capture)
	if err != nil {
		t.Fatal(err)
	}
	if got != offset {
		t.Fatalf("located offset %d, want %d (metric %.2f)", got, offset, metric)
	}
	if metric < 0.9 {
		t.Fatalf("correlation metric %.2f too low on a clean frame", metric)
	}
	decoded, _, err := sync.ReceiveUnsynchronized(capture, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if string(decoded) != string(payload) {
		t.Fatalf("decoded %q", decoded)
	}
}

func TestSynchronizerHandlesPhaseRotation(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	frame, err := Transmitter{}.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Rotate the whole capture by an arbitrary carrier phase.
	rot := cmplx.Exp(complex(0, 1.1))
	capture := make([]complex128, len(frame)+800)
	for i, v := range frame {
		capture[200+i] = v * rot
	}
	sync := Synchronizer{SamplesPerChip: 10}
	decoded, _, err := sync.ReceiveUnsynchronized(capture, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if decoded[i] != payload[i] {
			t.Fatalf("decoded %v", decoded)
		}
	}
}

func TestSynchronizerRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	capture := make([]complex128, 30000)
	for i := range capture {
		capture[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	if _, _, err := (Synchronizer{SamplesPerChip: 10}).ReceiveUnsynchronized(capture, 0.5); err == nil {
		t.Fatal("noise capture produced a frame")
	}
}

func TestSynchronizerShortCapture(t *testing.T) {
	if _, _, err := (Synchronizer{SamplesPerChip: 10}).Locate(make([]complex128, 100)); err == nil {
		t.Fatal("short capture accepted")
	}
}

func TestSynchronizerToleratesModerateNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	payload := []byte{0xAA, 0x55, 0xF0, 0x0F}
	frame, err := Transmitter{}.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	capture := make([]complex128, len(frame)+2000)
	sigma := math.Sqrt(0.05) // ~13 dB SNR
	for i := range capture {
		capture[i] = complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	for i, v := range frame {
		capture[700+i] += v
	}
	decoded, _, err := (Synchronizer{SamplesPerChip: 10}).ReceiveUnsynchronized(capture, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if decoded[i] != payload[i] {
			t.Fatalf("decoded %v", decoded)
		}
	}
}

func TestZigBeeCFOEstimationAndCorrection(t *testing.T) {
	payload := []byte("cfo test payload")
	frame, err := Transmitter{}.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	capture := make([]complex128, len(frame)+2000)
	copy(capture[600:], frame)
	for _, cfo := range []float64{-25e3, -8e3, 5e3, 20e3, 30e3} {
		impaired := CorrectCFO(capture, 20e6, -cfo) // apply +cfo
		got, est, err := (Synchronizer{SamplesPerChip: 10}).ReceiveWithCFO(impaired, 0.3)
		if err != nil {
			t.Fatalf("cfo %.0f Hz: %v", cfo, err)
		}
		if math.Abs(est-cfo) > 600 {
			t.Fatalf("cfo %.0f Hz estimated as %.0f", cfo, est)
		}
		if string(got) != string(payload) {
			t.Fatalf("cfo %.0f Hz: payload %q", cfo, got)
		}
	}
}

func TestZigBeeFailsWithoutCFOCorrection(t *testing.T) {
	payload := []byte{9, 9, 9, 9}
	frame, err := Transmitter{}.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	capture := make([]complex128, len(frame)+1000)
	copy(capture[300:], frame)
	impaired := CorrectCFO(capture, 20e6, -25e3)
	// Without correction the rotating constellation breaks demodulation.
	if got, _, err := (Synchronizer{SamplesPerChip: 10}).ReceiveUnsynchronized(impaired, 0.3); err == nil {
		same := len(got) == len(payload)
		for i := range payload {
			if !same || got[i] != payload[i] {
				same = false
			}
		}
		if same {
			t.Skip("receiver survived 25 kHz CFO uncorrected")
		}
	}
	// With correction it decodes (covered by the test above).
}
