package zigbee

import (
	"fmt"
	"math"

	"sledzig/internal/bits"
)

// Half-sine O-QPSK: even-indexed chips modulate the I rail and odd-indexed
// chips the Q rail, each shaped by a half-sine pulse spanning two chip
// periods, with the Q rail offset by one chip period. This is the MSK-like
// constant-envelope waveform the CC2420 transmits.

// Modulator renders chip streams to baseband samples.
type Modulator struct {
	// SamplesPerChip sets the output rate: ChipRate * SamplesPerChip
	// samples per second. 10 yields the 20 MS/s bus shared with the WiFi
	// waveforms.
	SamplesPerChip int
}

// SampleRate returns the output sample rate in Hz.
func (m Modulator) SampleRate() float64 {
	return ChipRate * float64(m.SamplesPerChip)
}

// Modulate converts a chip stream to a baseband waveform. The waveform is
// (len(chips)+1) * SamplesPerChip samples long (the trailing half-pulse of
// the last chip included).
func (m Modulator) Modulate(chips []bits.Bit) ([]complex128, error) {
	if m.SamplesPerChip < 2 {
		return nil, fmt.Errorf("zigbee: SamplesPerChip %d < 2", m.SamplesPerChip)
	}
	spc := m.SamplesPerChip
	n := (len(chips) + 1) * spc
	out := make([]complex128, n)
	// Pulse spans 2 chip periods = 2*spc samples.
	pulse := make([]float64, 2*spc)
	for i := range pulse {
		pulse[i] = math.Sin(math.Pi * float64(i) / float64(len(pulse)))
	}
	for k, c := range chips {
		v := 1.0
		if c&1 == 0 {
			v = -1.0
		}
		start := k * spc
		for i, p := range pulse {
			idx := start + i
			if idx >= n {
				break
			}
			if k%2 == 0 {
				out[idx] += complex(v*p, 0)
			} else {
				out[idx] += complex(0, v*p)
			}
		}
	}
	// Normalize to unit average power over the occupied span so transmit
	// gain calibration is waveform-independent.
	var sum float64
	for _, v := range out {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	if sum > 0 {
		scale := complex(math.Sqrt(float64(n)/sum), 0)
		for i := range out {
			out[i] *= scale
		}
	}
	return out, nil
}

// Demodulator recovers chip decisions from baseband samples by matched
// filtering each half-sine pulse.
type Demodulator struct {
	SamplesPerChip int
}

// Demodulate extracts numChips hard chip decisions from a waveform
// produced by Modulator (possibly with noise/interference added). It also
// returns the per-chip correlation magnitudes as soft quality values.
func (d Demodulator) Demodulate(wave []complex128, numChips int) ([]bits.Bit, []float64, error) {
	if d.SamplesPerChip < 2 {
		return nil, nil, fmt.Errorf("zigbee: SamplesPerChip %d < 2", d.SamplesPerChip)
	}
	spc := d.SamplesPerChip
	need := (numChips + 1) * spc
	if len(wave) < need {
		return nil, nil, fmt.Errorf("zigbee: waveform has %d samples, %d chips need %d", len(wave), numChips, need)
	}
	pulse := make([]float64, 2*spc)
	for i := range pulse {
		pulse[i] = math.Sin(math.Pi * float64(i) / float64(len(pulse)))
	}
	chips := make([]bits.Bit, numChips)
	soft := make([]float64, numChips)
	for k := 0; k < numChips; k++ {
		start := k * spc
		var corr float64
		for i, p := range pulse {
			idx := start + i
			if idx >= len(wave) {
				break
			}
			if k%2 == 0 {
				corr += real(wave[idx]) * p
			} else {
				corr += imag(wave[idx]) * p
			}
		}
		if corr >= 0 {
			chips[k] = 1
		}
		soft[k] = math.Abs(corr)
	}
	return chips, soft, nil
}
