package zigbee

import (
	"math"
	"math/rand"
	"testing"

	"sledzig/internal/bits"
)

func TestDespreadSoftCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	payload := bits.RandomBytes(rng, 40)
	wave, err := Transmitter{}.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (Receiver{}).ReceiveSoft(wave)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestSoftAgreesWithHardOnCleanChips(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	chips := bits.Random(rng, 320)
	mod := Modulator{SamplesPerChip: 10}
	wave, err := mod.Modulate(chips)
	if err != nil {
		t.Fatal(err)
	}
	demod := Demodulator{SamplesPerChip: 10}
	soft, err := demod.DemodulateSoft(wave, len(chips))
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(HardChipsFromSoft(soft), chips) {
		t.Fatal("hard slicing of soft statistics disagrees with the chips")
	}
}

// TestSoftBeatsHardUnderNoise: at an SNR where hard despreading starts to
// fail, the soft path must deliver at least as many frames.
func TestSoftBeatsHardUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const trials = 40
	payload := []byte{0xA5, 0x5A, 0x3C, 0xC3, 0x77, 0x12, 0x90, 0x0F}
	hardOK, softOK := 0, 0
	for trial := 0; trial < trials; trial++ {
		wave, err := Transmitter{}.Transmit(payload)
		if err != nil {
			t.Fatal(err)
		}
		sigma := math.Sqrt(0.56) // ~2.5 dB SNR per sample
		noisy := make([]complex128, len(wave))
		for i, v := range wave {
			noisy[i] = v + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
		if _, _, err := (Receiver{}).Receive(noisy); err == nil {
			hardOK++
		}
		if _, err := (Receiver{}).ReceiveSoft(noisy); err == nil {
			softOK++
		}
	}
	if softOK < hardOK {
		t.Fatalf("soft (%d/%d) worse than hard (%d/%d)", softOK, trials, hardOK, trials)
	}
	if softOK == 0 {
		t.Fatal("soft path decoded nothing")
	}
}

func TestDespreadSymbolSoftMargin(t *testing.T) {
	// A clean symbol has a healthy margin; an all-zeros window reports 0.
	seq, _ := ChipSequence(5)
	soft := make([]float64, ChipsPerSymbol)
	for i, c := range seq {
		if c == 1 {
			soft[i] = 1
		} else {
			soft[i] = -1
		}
	}
	sym, margin, err := DespreadSymbolSoft(soft)
	if err != nil || sym != 5 {
		t.Fatalf("sym=%d err=%v", sym, err)
	}
	if margin <= 0.1 {
		t.Fatalf("margin %g too small for a clean symbol", margin)
	}
	zero := make([]float64, ChipsPerSymbol)
	if _, m, _ := DespreadSymbolSoft(zero); m != 0 {
		t.Fatalf("zero window margin %g", m)
	}
	if _, _, err := DespreadSymbolSoft(soft[:10]); err == nil {
		t.Fatal("short window accepted")
	}
}
