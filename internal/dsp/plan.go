package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Plan holds the precomputed state of a radix-2 FFT of one size: the
// bit-reversal permutation and the twiddle factors of every butterfly
// stage. Plans are immutable after construction and safe for concurrent
// use; PlanFor caches one per size so the per-call trigonometry of the
// transform is paid once per process instead of once per symbol.
type Plan struct {
	n   int
	rev []int32 // bit-reversal permutation
	// tw holds e^{-2πik/n} for k in [0, n/2): the forward twiddles of the
	// largest stage. A stage of size s uses every (n/s)-th entry, so one
	// table serves all log2(n) stages. itw is its conjugate (the inverse
	// twiddles), stored separately to keep the hot loops branch-free.
	tw  []complex128
	itw []complex128
}

// planEntry makes plan construction single-flight, mirroring
// core.CachedPlan: concurrent first requests for one size build it once.
type planEntry struct {
	once sync.Once
	plan *Plan
	err  error
}

var planCache sync.Map // int -> *planEntry

// PlanFor returns the process-wide shared plan for power-of-two size n,
// building it on first use. Construction errors are cached alongside the
// plan (they are deterministic for a given size).
func PlanFor(n int) (*Plan, error) {
	v, ok := planCache.Load(n)
	if !ok {
		v, _ = planCache.LoadOrStore(n, new(planEntry))
	}
	e := v.(*planEntry)
	e.once.Do(func() { e.plan, e.err = newPlan(n) })
	return e.plan, e.err
}

// MustPlan is PlanFor for sizes known to be powers of two.
func MustPlan(n int) *Plan {
	p, err := PlanFor(n)
	if err != nil {
		panic(err)
	}
	return p
}

// PlanCacheLen reports how many FFT sizes the process-wide plan cache
// holds — an observability and test hook, not a capacity control (the
// sizes in use are few and bounded).
func PlanCacheLen() int {
	n := 0
	planCache.Range(func(any, any) bool { n++; return true })
	return n
}

func newPlan(n int) (*Plan, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT length %d is not a positive power of two", n)
	}
	p := &Plan{
		n:   n,
		rev: make([]int32, n),
		tw:  make([]complex128, n/2),
		itw: make([]complex128, n/2),
	}
	if n > 1 {
		shift := 64 - uint(bits.TrailingZeros(uint(n)))
		for i := range p.rev {
			p.rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
		}
	}
	for k := range p.tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.tw[k] = complex(c, s)
		p.itw[k] = complex(c, -s)
	}
	return p, nil
}

// Size returns the transform length the plan was built for.
func (p *Plan) Size() int { return p.n }

// Forward computes the DFT of x into dst. Both must have the plan's
// length; they must not alias (the bit-reversal pass reads x while
// writing dst). No allocation.
func (p *Plan) Forward(dst, x []complex128) error {
	if err := p.check(dst, x); err != nil {
		return err
	}
	p.permute(dst, x)
	p.butterflies(dst, p.tw, 0)
	return nil
}

// Inverse computes the inverse DFT of x into dst, including the 1/N
// normalization, which is folded into the final butterfly stage rather
// than paid as a separate pass. Same aliasing and length rules as Forward.
func (p *Plan) Inverse(dst, x []complex128) error {
	if err := p.check(dst, x); err != nil {
		return err
	}
	p.permute(dst, x)
	p.butterflies(dst, p.itw, 1/float64(p.n))
	return nil
}

func (p *Plan) check(dst, x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf("dsp: FFT input length %d != plan size %d", len(x), p.n)
	}
	if len(dst) != p.n {
		return fmt.Errorf("dsp: FFT destination length %d != plan size %d", len(dst), p.n)
	}
	return nil
}

func (p *Plan) permute(dst, x []complex128) {
	if p.n == 1 {
		dst[0] = x[0]
		return
	}
	for i, r := range p.rev {
		dst[r] = x[i]
	}
}

// butterflies runs the in-place decimation-in-time stages over
// bit-reversed data with the given twiddle table. A non-zero norm is
// applied inside the final stage's butterfly (the inverse transform's 1/N),
// so no separate scaling pass over the output is needed.
func (p *Plan) butterflies(out []complex128, tw []complex128, norm float64) {
	n := p.n
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		stride := n / size // twiddle table step for this stage
		if size == n && norm != 0 {
			break // final stage runs fused with the normalization below
		}
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k*stride]
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
			}
		}
	}
	if norm != 0 && n > 1 {
		half := n / 2
		scale := complex(norm, 0)
		for k := 0; k < half; k++ {
			w := tw[k]
			a := out[k]
			b := out[k+half] * w
			out[k] = (a + b) * scale
			out[k+half] = (a - b) * scale
		}
	}
}
