package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Narrow-sample (complex64) variants of the DSP primitives. The receive
// hot path works at 16-bit-effective precision anyway (constellation
// decisions tolerate far more error than float32 introduces), so carrying
// I/Q as complex64 halves the memory traffic of every FFT, equalization,
// and demap pass. Twiddle factors are computed in float64 and rounded
// once, so a narrow transform differs from the wide one only by rounding
// of the data path itself (~1e-7 relative per butterfly stage).

// Plan32 is the complex64 counterpart of Plan: the precomputed state of a
// radix-2 FFT of one size. Plans are immutable after construction and safe
// for concurrent use.
type Plan32 struct {
	n   int
	rev []int32
	tw  []complex64
	itw []complex64
}

type planEntry32 struct {
	once sync.Once
	plan *Plan32
	err  error
}

var planCache32 sync.Map // int -> *planEntry32

// PlanFor32 returns the process-wide shared complex64 plan for
// power-of-two size n, building it on first use.
func PlanFor32(n int) (*Plan32, error) {
	v, ok := planCache32.Load(n)
	if !ok {
		v, _ = planCache32.LoadOrStore(n, new(planEntry32))
	}
	e := v.(*planEntry32)
	e.once.Do(func() { e.plan, e.err = newPlan32(n) })
	return e.plan, e.err
}

// MustPlan32 is PlanFor32 for sizes known to be powers of two.
func MustPlan32(n int) *Plan32 {
	p, err := PlanFor32(n)
	if err != nil {
		panic(err)
	}
	return p
}

func newPlan32(n int) (*Plan32, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT length %d is not a positive power of two", n)
	}
	p := &Plan32{
		n:   n,
		rev: make([]int32, n),
		tw:  make([]complex64, n/2),
		itw: make([]complex64, n/2),
	}
	if n > 1 {
		shift := 64 - uint(bits.TrailingZeros(uint(n)))
		for i := range p.rev {
			p.rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
		}
	}
	for k := range p.tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.tw[k] = complex(float32(c), float32(s))
		p.itw[k] = complex(float32(c), float32(-s))
	}
	return p, nil
}

// Size returns the transform length the plan was built for.
func (p *Plan32) Size() int { return p.n }

// Forward computes the DFT of x into dst. Both must have the plan's
// length; they must not alias. No allocation.
func (p *Plan32) Forward(dst, x []complex64) error {
	if err := p.check(dst, x); err != nil {
		return err
	}
	p.permute(dst, x)
	p.butterflies(dst, p.tw, 0)
	return nil
}

// Inverse computes the inverse DFT of x into dst, including the 1/N
// normalization folded into the final butterfly stage. Same aliasing and
// length rules as Forward.
func (p *Plan32) Inverse(dst, x []complex64) error {
	if err := p.check(dst, x); err != nil {
		return err
	}
	p.permute(dst, x)
	p.butterflies(dst, p.itw, 1/float32(p.n))
	return nil
}

func (p *Plan32) check(dst, x []complex64) error {
	if len(x) != p.n {
		return fmt.Errorf("dsp: FFT input length %d != plan size %d", len(x), p.n)
	}
	if len(dst) != p.n {
		return fmt.Errorf("dsp: FFT destination length %d != plan size %d", len(dst), p.n)
	}
	return nil
}

func (p *Plan32) permute(dst, x []complex64) {
	if p.n == 1 {
		dst[0] = x[0]
		return
	}
	for i, r := range p.rev {
		dst[r] = x[i]
	}
}

func (p *Plan32) butterflies(out []complex64, tw []complex64, norm float32) {
	n := p.n
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		stride := n / size
		if size == n && norm != 0 {
			break // final stage runs fused with the normalization below
		}
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k*stride]
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
			}
		}
	}
	if norm != 0 && n > 1 {
		half := n / 2
		scale := complex(norm, 0)
		for k := 0; k < half; k++ {
			w := tw[k]
			a := out[k]
			b := out[k+half] * w
			out[k] = (a + b) * scale
			out[k+half] = (a - b) * scale
		}
	}
}

// FFTInto32 computes the DFT of x into dst (same power-of-two length, no
// aliasing). No allocation.
func FFTInto32(dst, x []complex64) error {
	p, err := PlanFor32(len(x))
	if err != nil {
		return err
	}
	return p.Forward(dst, x)
}

// IFFTInto32 computes the inverse DFT of x into dst, including the 1/N
// normalization. Same rules as FFTInto32.
func IFFTInto32(dst, x []complex64) error {
	p, err := PlanFor32(len(x))
	if err != nil {
		return err
	}
	return p.Inverse(dst, x)
}

// Narrow converts wide samples to complex64 into dst, reusing its capacity,
// and returns the resized slice. This is the single rounding step of the
// narrow receive path: everything downstream stays complex64.
func Narrow(dst []complex64, src []complex128) []complex64 {
	if cap(dst) < len(src) {
		dst = make([]complex64, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = complex(float32(real(v)), float32(imag(v)))
	}
	return dst
}

// Widen converts narrow samples back to complex128 into dst, reusing its
// capacity, and returns the resized slice. Exact (no rounding).
func Widen(dst []complex128, src []complex64) []complex128 {
	if cap(dst) < len(src) {
		dst = make([]complex128, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = complex(float64(real(v)), float64(imag(v)))
	}
	return dst
}

// FrequencyShift32 is FrequencyShift over narrow samples: a copy of x
// multiplied by exp(j*2*pi*offset*t). The oscillator phase is accumulated
// in float64 so long captures do not drift with float32 phase error.
func FrequencyShift32(x []complex64, sampleRate, offset float64) []complex64 {
	out := make([]complex64, len(x))
	step := 2 * math.Pi * offset / sampleRate
	for i, v := range x {
		phase := step * float64(i)
		s, c := math.Sincos(phase)
		out[i] = v * complex(float32(c), float32(s))
	}
	return out
}

// Downsample32 keeps every factor-th sample of x starting at offset.
func Downsample32(x []complex64, factor, offset int) ([]complex64, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: downsample factor %d < 1", factor)
	}
	if offset < 0 || (offset >= factor && factor > 1) {
		return nil, fmt.Errorf("dsp: downsample offset %d out of range [0,%d)", offset, factor)
	}
	out := make([]complex64, 0, (len(x)+factor-1)/factor)
	for i := offset; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out, nil
}

// MixInto32 adds src (scaled by gain, delayed by delay samples) into dst in
// place, dropping samples that fall outside dst.
func MixInto32(dst, src []complex64, gain float64, delay int) {
	g := complex(float32(gain), 0)
	for i, v := range src {
		j := i + delay
		if j < 0 || j >= len(dst) {
			continue
		}
		dst[j] += v * g
	}
}

// Power32 returns the mean squared magnitude of narrow samples,
// accumulated in float64.
func Power32(x []complex64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		re, im := float64(real(v)), float64(imag(v))
		sum += re*re + im*im
	}
	return sum / float64(len(x))
}

// Periodogram32 is Periodogram over narrow samples: the FFTs run in
// complex64, the PSD accumulates in float64.
func Periodogram32(x []complex64, n int) ([]float64, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: periodogram size %d is not a power of two", n)
	}
	if len(x) < n {
		return nil, fmt.Errorf("dsp: signal length %d shorter than FFT size %d", len(x), n)
	}
	plan, err := PlanFor32(n)
	if err != nil {
		return nil, err
	}
	psd := make([]float64, n)
	spec := make([]complex64, n)
	segments := 0
	for start := 0; start+n <= len(x); start += n {
		if err := plan.Forward(spec, x[start:start+n]); err != nil {
			return nil, err
		}
		for i, v := range spec {
			re, im := float64(real(v)), float64(imag(v))
			psd[i] += re*re + im*im
		}
		segments++
	}
	scale := 1 / (float64(segments) * float64(n) * float64(n))
	for i := range psd {
		psd[i] *= scale
	}
	return psd, nil
}

// BandPower32 measures the mean power of narrow samples inside [lo, hi]
// Hz, mirroring BandPower's bin mapping so the two sample widths are
// directly comparable.
func BandPower32(x []complex64, sampleRate, lo, hi float64) (float64, error) {
	if hi <= lo {
		return 0, fmt.Errorf("dsp: invalid band [%g, %g]", lo, hi)
	}
	n := 1024
	for len(x) < n && n > 8 {
		n /= 2
	}
	psd, err := Periodogram32(x, n)
	if err != nil {
		return 0, err
	}
	binWidth := sampleRate / float64(n)
	var sum float64
	for i := 0; i < n; i++ {
		f := float64(i) * binWidth
		if i >= n/2 {
			f -= sampleRate
		}
		if f >= lo && f < hi {
			sum += psd[i]
		}
	}
	return sum, nil
}
