package dsp

import (
	"fmt"
	"math"
)

// FrequencyShift returns a copy of x multiplied by exp(j*2*pi*offset*t),
// moving its spectral content up by offset Hz at the given sample rate.
func FrequencyShift(x []complex128, sampleRate, offset float64) []complex128 {
	out := make([]complex128, len(x))
	step := 2 * math.Pi * offset / sampleRate
	for i, v := range x {
		phase := step * float64(i)
		out[i] = v * complex(math.Cos(phase), math.Sin(phase))
	}
	return out
}

// Upsample inserts factor-1 interpolated samples between the samples of x
// using linear interpolation. Linear interpolation is adequate here because
// the upsampled signals (2 Mchip/s ZigBee into a 20 MS/s bus) are heavily
// oversampled relative to their bandwidth.
func Upsample(x []complex128, factor int) ([]complex128, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: upsample factor %d < 1", factor)
	}
	if factor == 1 || len(x) == 0 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out, nil
	}
	out := make([]complex128, 0, len(x)*factor)
	for i := 0; i < len(x); i++ {
		cur := x[i]
		next := cur
		if i+1 < len(x) {
			next = x[i+1]
		}
		for k := 0; k < factor; k++ {
			t := complex(float64(k)/float64(factor), 0)
			out = append(out, cur+(next-cur)*t)
		}
	}
	return out, nil
}

// Downsample keeps every factor-th sample of x starting at offset.
func Downsample(x []complex128, factor, offset int) ([]complex128, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: downsample factor %d < 1", factor)
	}
	if offset < 0 || (offset >= factor && factor > 1) {
		return nil, fmt.Errorf("dsp: downsample offset %d out of range [0,%d)", offset, factor)
	}
	out := make([]complex128, 0, (len(x)+factor-1)/factor)
	for i := offset; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out, nil
}

// MixInto adds src (scaled by gain, delayed by delay samples) into dst in
// place. Samples of src falling outside dst are dropped, matching a receiver
// that only captures its own observation window.
func MixInto(dst, src []complex128, gain float64, delay int) {
	g := complex(gain, 0)
	for i, v := range src {
		j := i + delay
		if j < 0 || j >= len(dst) {
			continue
		}
		dst[j] += v * g
	}
}
