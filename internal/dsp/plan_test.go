package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n^2) reference transform the plan is checked against.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			phase := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, phase))
		}
		if inverse {
			sum /= complex(float64(n), 0)
		}
		out[k] = sum
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestPlanMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128, 256} {
		x := randComplex(rng, n)
		p := MustPlan(n)
		fwd := make([]complex128, n)
		if err := p.Forward(fwd, x); err != nil {
			t.Fatal(err)
		}
		want := naiveDFT(x, false)
		for i := range want {
			if cmplx.Abs(fwd[i]-want[i]) > 1e-8*float64(n) {
				t.Fatalf("n=%d forward bin %d = %v, want %v", n, i, fwd[i], want[i])
			}
		}
		inv := make([]complex128, n)
		if err := p.Inverse(inv, x); err != nil {
			t.Fatal(err)
		}
		wantInv := naiveDFT(x, true)
		for i := range wantInv {
			if cmplx.Abs(inv[i]-wantInv[i]) > 1e-8 {
				t.Fatalf("n=%d inverse bin %d = %v, want %v", n, i, inv[i], wantInv[i])
			}
		}
	}
}

// TestFFTIFFTRoundTripAllSizes is the regression for folding the 1/N
// normalization into the inverse plan's final butterfly stage: FFT(IFFT(x))
// must reproduce x for every size the PHYs use (16, 64, 128).
func TestFFTIFFTRoundTripAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{16, 64, 128} {
		x := randComplex(rng, n)
		back := MustFFT(MustIFFT(x))
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d: FFT(IFFT(x))[%d] = %v, want %v", n, i, back[i], x[i])
			}
		}
		// And the other composition order.
		back = MustIFFT(MustFFT(x))
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d: IFFT(FFT(x))[%d] = %v, want %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -4, 3, 12, 100} {
		if _, err := PlanFor(n); err == nil {
			t.Fatalf("PlanFor(%d) accepted", n)
		}
	}
	p := MustPlan(64)
	if err := p.Forward(make([]complex128, 32), make([]complex128, 64)); err == nil {
		t.Fatal("short destination accepted")
	}
	if err := p.Forward(make([]complex128, 64), make([]complex128, 32)); err == nil {
		t.Fatal("short input accepted")
	}
}

func TestPlanCacheSharesInstances(t *testing.T) {
	a := MustPlan(512)
	b := MustPlan(512)
	if a != b {
		t.Fatal("PlanFor(512) returned distinct instances")
	}
	if PlanCacheLen() == 0 {
		t.Fatal("plan cache empty after use")
	}
}

func TestPlanTransformsDoNotAllocate(t *testing.T) {
	p := MustPlan(64)
	x := randComplex(rand.New(rand.NewSource(9)), 64)
	dst := make([]complex128, 64)
	if n := testing.AllocsPerRun(100, func() {
		if err := p.Forward(dst, x); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Forward allocates %v times per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := p.Inverse(dst, x); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Inverse allocates %v times per run", n)
	}
}
