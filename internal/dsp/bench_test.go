package dsp

import (
	"math/rand"
	"testing"
)

func randSignal(n int) []complex128 {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func BenchmarkFFT1024(b *testing.B) {
	x := randSignal(1024)
	b.SetBytes(1024 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustFFT(x)
	}
}

func BenchmarkBandPower(b *testing.B) {
	x := randSignal(1 << 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BandPower(x, 20e6, -1e6, 1e6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilter129Taps(b *testing.B) {
	x := randSignal(1 << 14)
	taps, err := LowPassFIR(40e6, 1.3e6, 129)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(x)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Filter(x, taps)
	}
}

func BenchmarkResampleFFT(b *testing.B) {
	x := randSignal(1 << 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ResampleFFT(x, 2); err != nil {
			b.Fatal(err)
		}
	}
}
