package dsp

import "fmt"

// ResampleFFT performs band-limited integer upsampling by zero-padding the
// spectrum: the output has factor * len(x) samples at factor times the
// sample rate, with the original spectral content preserved and no
// imaging. Used when waveforms synthesized at different rates (20 MS/s
// WiFi, ZigBee chips) must share a wider mixing bus.
func ResampleFFT(x []complex128, factor int) ([]complex128, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: resample factor %d < 1", factor)
	}
	if factor == 1 || len(x) == 0 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out, nil
	}
	// Work on a power-of-two block; pad with zeros and trim after.
	n := NextPow2(len(x))
	padded := make([]complex128, n)
	copy(padded, x)
	spec := MustFFT(padded)

	big := make([]complex128, n*factor)
	half := n / 2
	copy(big[:half], spec[:half])
	copy(big[len(big)-half:], spec[half:])
	// Samples scale by the length ratio to preserve amplitude.
	out := MustIFFT(big)
	scale := complex(float64(factor), 0)
	for i := range out {
		out[i] *= scale
	}
	return out[:len(x)*factor], nil
}
