package dsp

import (
	"fmt"
	"math"
)

// LowPassFIR designs a linear-phase windowed-sinc (Hamming) low-pass
// filter with the given cutoff frequency. taps must be odd so the filter
// delay is an integer number of samples.
func LowPassFIR(sampleRate, cutoff float64, taps int) ([]float64, error) {
	if taps < 3 || taps%2 == 0 {
		return nil, fmt.Errorf("dsp: FIR taps must be odd and >= 3, got %d", taps)
	}
	if cutoff <= 0 || cutoff >= sampleRate/2 {
		return nil, fmt.Errorf("dsp: cutoff %g outside (0, fs/2)", cutoff)
	}
	h := make([]float64, taps)
	fc := cutoff / sampleRate
	mid := taps / 2
	var sum float64
	for i := range h {
		n := float64(i - mid)
		var s float64
		if n == 0 {
			s = 2 * fc
		} else {
			s = math.Sin(2*math.Pi*fc*n) / (math.Pi * n)
		}
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = s * w
		sum += h[i]
	}
	// Normalize to unit DC gain.
	for i := range h {
		h[i] /= sum
	}
	return h, nil
}

// Filter convolves x with the FIR taps h, compensating the group delay so
// the output stays time-aligned with the input (same length; edges see
// partial filtering).
func Filter(x []complex128, h []float64) []complex128 {
	out := make([]complex128, len(x))
	mid := len(h) / 2
	for i := range x {
		var acc complex128
		for k, tap := range h {
			j := i + mid - k
			if j < 0 || j >= len(x) {
				continue
			}
			acc += x[j] * complex(tap, 0)
		}
		out[i] = acc
	}
	return out
}
