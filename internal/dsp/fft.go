// Package dsp supplies the signal-processing primitives the baseband PHYs
// are built on: radix-2 FFT/IFFT, power measurement, frequency shifting,
// and rational resampling. Everything operates on []complex128 baseband
// samples.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-order discrete Fourier transform of x, whose length
// must be a power of two. The input is not modified.
func FFT(x []complex128) ([]complex128, error) {
	return transform(x, false)
}

// IFFT computes the inverse DFT of x (length a power of two), including the
// 1/N normalization. The input is not modified.
func IFFT(x []complex128) ([]complex128, error) {
	out, err := transform(x, true)
	if err != nil {
		return nil, err
	}
	n := complex(float64(len(out)), 0)
	for i := range out {
		out[i] /= n
	}
	return out, nil
}

// MustFFT is FFT for inputs whose length is known to be a power of two.
func MustFFT(x []complex128) []complex128 {
	out, err := FFT(x)
	if err != nil {
		panic(err)
	}
	return out
}

// MustIFFT is IFFT for inputs whose length is known to be a power of two.
func MustIFFT(x []complex128) []complex128 {
	out, err := IFFT(x)
	if err != nil {
		panic(err)
	}
	return out
}

func transform(x []complex128, inverse bool) ([]complex128, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT length %d is not a positive power of two", n)
	}
	out := make([]complex128, n)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range x {
		out[bits.Reverse64(uint64(i))>>shift] = x[i]
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wBase := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
				w *= wBase
			}
		}
	}
	return out, nil
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
