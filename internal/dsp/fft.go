// Package dsp supplies the signal-processing primitives the baseband PHYs
// are built on: radix-2 FFT/IFFT, power measurement, frequency shifting,
// and rational resampling. Everything operates on []complex128 baseband
// samples.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-order discrete Fourier transform of x, whose length
// must be a power of two. The input is not modified.
func FFT(x []complex128) ([]complex128, error) {
	return transform(x, false)
}

// IFFT computes the inverse DFT of x (length a power of two), including the
// 1/N normalization. The input is not modified.
func IFFT(x []complex128) ([]complex128, error) {
	out, err := transform(x, true)
	if err != nil {
		return nil, err
	}
	n := complex(float64(len(out)), 0)
	for i := range out {
		out[i] /= n
	}
	return out, nil
}

// MustFFT is FFT for inputs whose length is known to be a power of two.
func MustFFT(x []complex128) []complex128 {
	out, err := FFT(x)
	if err != nil {
		panic(err)
	}
	return out
}

// MustIFFT is IFFT for inputs whose length is known to be a power of two.
func MustIFFT(x []complex128) []complex128 {
	out, err := IFFT(x)
	if err != nil {
		panic(err)
	}
	return out
}

// FFTInto computes the DFT of x into dst. Both must have the same
// power-of-two length and must not alias: the bit-reversal pass reads x
// while writing dst. No allocation — the scratch-free variant hot loops
// (OFDM symbol synthesis) use with pooled buffers.
func FFTInto(dst, x []complex128) error {
	return transformInto(dst, x, false)
}

// IFFTInto computes the inverse DFT of x into dst, including the 1/N
// normalization. Same aliasing and length rules as FFTInto.
func IFFTInto(dst, x []complex128) error {
	if err := transformInto(dst, x, true); err != nil {
		return err
	}
	n := complex(float64(len(dst)), 0)
	for i := range dst {
		dst[i] /= n
	}
	return nil
}

func transform(x []complex128, inverse bool) ([]complex128, error) {
	out := make([]complex128, len(x))
	if err := transformInto(out, x, inverse); err != nil {
		return nil, err
	}
	return out, nil
}

func transformInto(out, x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a positive power of two", n)
	}
	if len(out) != n {
		return fmt.Errorf("dsp: FFT destination length %d != input length %d", len(out), n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range x {
		out[bits.Reverse64(uint64(i))>>shift] = x[i]
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wBase := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
				w *= wBase
			}
		}
	}
	return nil
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
