// Package dsp supplies the signal-processing primitives the baseband PHYs
// are built on: radix-2 FFT/IFFT, power measurement, frequency shifting,
// and rational resampling. Everything operates on []complex128 baseband
// samples.
package dsp

// FFT computes the in-order discrete Fourier transform of x, whose length
// must be a power of two. The input is not modified. Twiddle factors and
// the bit-reversal permutation come from the process-wide plan cache, so
// repeated transforms of one size pay no trigonometry.
func FFT(x []complex128) ([]complex128, error) {
	p, err := PlanFor(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	if err := p.Forward(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// IFFT computes the inverse DFT of x (length a power of two), including the
// 1/N normalization. The input is not modified.
func IFFT(x []complex128) ([]complex128, error) {
	p, err := PlanFor(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	if err := p.Inverse(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// MustFFT is FFT for inputs whose length is known to be a power of two.
func MustFFT(x []complex128) []complex128 {
	out, err := FFT(x)
	if err != nil {
		panic(err)
	}
	return out
}

// MustIFFT is IFFT for inputs whose length is known to be a power of two.
func MustIFFT(x []complex128) []complex128 {
	out, err := IFFT(x)
	if err != nil {
		panic(err)
	}
	return out
}

// FFTInto computes the DFT of x into dst. Both must have the same
// power-of-two length and must not alias: the bit-reversal pass reads x
// while writing dst. No allocation — the scratch-free variant hot loops
// (OFDM symbol synthesis and demodulation) use with pooled buffers.
func FFTInto(dst, x []complex128) error {
	p, err := PlanFor(len(x))
	if err != nil {
		return err
	}
	return p.Forward(dst, x)
}

// IFFTInto computes the inverse DFT of x into dst, including the 1/N
// normalization (folded into the final butterfly stage). Same aliasing and
// length rules as FFTInto.
func IFFTInto(dst, x []complex128) error {
	p, err := PlanFor(len(x))
	if err != nil {
		return err
	}
	return p.Inverse(dst, x)
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
