package dsp

import (
	"fmt"
	"math"
)

// Power returns the mean squared magnitude of x (linear units). An empty
// slice has zero power.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	return sum / float64(len(x))
}

// Energy returns the total squared magnitude of x.
func Energy(x []complex128) float64 {
	var sum float64
	for _, v := range x {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	return sum
}

// DB converts a linear power ratio to decibels. Non-positive inputs map to
// -Inf, mirroring what a measurement device would report as "below floor".
func DB(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(p)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// AddPowersDB sums power quantities expressed in dB (e.g. dBm) and returns
// the total in the same dB units. -Inf entries contribute nothing.
func AddPowersDB(levels ...float64) float64 {
	var sum float64
	for _, l := range levels {
		if !math.IsInf(l, -1) {
			sum += FromDB(l)
		}
	}
	return DB(sum)
}

// Periodogram estimates the power spectral density of x using an N-point
// FFT with a rectangular window, averaging over consecutive segments. The
// result has length n with bin 0 at DC and negative frequencies in the
// upper half, and is normalized so that the mean over all bins equals the
// mean signal power.
func Periodogram(x []complex128, n int) ([]float64, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: periodogram size %d is not a power of two", n)
	}
	if len(x) < n {
		return nil, fmt.Errorf("dsp: signal length %d shorter than FFT size %d", len(x), n)
	}
	plan, err := PlanFor(n)
	if err != nil {
		return nil, err
	}
	psd := make([]float64, n)
	spec := make([]complex128, n)
	segments := 0
	for start := 0; start+n <= len(x); start += n {
		if err := plan.Forward(spec, x[start:start+n]); err != nil {
			return nil, err
		}
		for i, v := range spec {
			psd[i] += real(v)*real(v) + imag(v)*imag(v)
		}
		segments++
	}
	scale := 1 / (float64(segments) * float64(n) * float64(n))
	for i := range psd {
		psd[i] *= scale
	}
	return psd, nil
}

// BandPower measures the mean power of x falling inside the frequency band
// [lo, hi] (Hz, relative to baseband center; negative frequencies allowed),
// given the sample rate. It integrates a periodogram over the band, so the
// sum over disjoint bands covering [-fs/2, fs/2) equals Power(x).
func BandPower(x []complex128, sampleRate, lo, hi float64) (float64, error) {
	if hi <= lo {
		return 0, fmt.Errorf("dsp: invalid band [%g, %g]", lo, hi)
	}
	n := 1024
	for len(x) < n && n > 8 {
		n /= 2
	}
	psd, err := Periodogram(x, n)
	if err != nil {
		return 0, err
	}
	binWidth := sampleRate / float64(n)
	var sum float64
	for i := 0; i < n; i++ {
		// Map bin index to signed frequency.
		f := float64(i) * binWidth
		if i >= n/2 {
			f -= sampleRate
		}
		if f >= lo && f < hi {
			sum += psd[i]
		}
	}
	// The periodogram sums to the mean signal power across all bins, so
	// the in-band sum is directly the band's share of the power.
	return sum, nil
}

// MaxAbs returns the largest sample magnitude in x.
func MaxAbs(x []complex128) float64 {
	var m float64
	for _, v := range x {
		a := math.Hypot(real(v), imag(v))
		if a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies every sample of x by g in place and returns x.
func Scale(x []complex128, g float64) []complex128 {
	c := complex(g, 0)
	for i := range x {
		x[i] *= c
	}
	return x
}

// ScaleToPower rescales x in place so its mean power equals target (linear).
// A zero-power signal is returned unchanged.
func ScaleToPower(x []complex128, target float64) []complex128 {
	p := Power(x)
	if p <= 0 {
		return x
	}
	return Scale(x, math.Sqrt(target/p))
}
