package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownValues(t *testing.T) {
	// FFT of a unit impulse is flat ones.
	x := make([]complex128, 8)
	x[0] = 1
	spec := MustFFT(x)
	for i, v := range spec {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
	// FFT of a single complex tone concentrates in one bin.
	n := 64
	tone := make([]complex128, n)
	for i := range tone {
		phase := 2 * math.Pi * 5 * float64(i) / float64(n)
		tone[i] = cmplx.Exp(complex(0, phase))
	}
	spec = MustFFT(tone)
	for i, v := range spec {
		want := 0.0
		if i == 5 {
			want = float64(n)
		}
		if cmplx.Abs(v-complex(want, 0)) > 1e-9 {
			t.Fatalf("tone bin %d = %v", i, v)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		x := make([]complex128, 128)
		for i := range x {
			x[i] = complex(lr.NormFloat64(), lr.NormFloat64())
		}
		back := MustIFFT(MustFFT(x))
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := FFT(make([]complex128, 12)); err == nil {
		t.Fatal("length 12 accepted")
	}
	if _, err := FFT(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestParsevalTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 256)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	spec := MustFFT(x)
	timeEnergy := Energy(x)
	freqEnergy := Energy(spec) / float64(len(x))
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: %g vs %g", timeEnergy, freqEnergy)
	}
}

func TestDBConversions(t *testing.T) {
	if DB(100) != 20 {
		t.Fatal("DB(100) != 20")
	}
	if math.Abs(FromDB(-30)-0.001) > 1e-12 {
		t.Fatal("FromDB(-30) != 0.001")
	}
	if !math.IsInf(DB(0), -1) {
		t.Fatal("DB(0) not -Inf")
	}
	// -Inf entries contribute nothing to power sums.
	if math.Abs(AddPowersDB(-10, math.Inf(-1))-(-10)) > 1e-12 {
		t.Fatal("AddPowersDB mishandles -Inf")
	}
	// Two equal powers add 3 dB.
	if math.Abs(AddPowersDB(-50, -50)-(-46.99)) > 0.01 {
		t.Fatal("3 dB rule violated")
	}
}

func TestBandPowerPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	fs := 20e6
	var sum float64
	for _, band := range [][2]float64{{-10e6, -5e6}, {-5e6, 0}, {0, 5e6}, {5e6, 10e6}} {
		p, err := BandPower(x, fs, band[0], band[1])
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	total := Power(x)
	if math.Abs(sum-total) > 1e-9*total {
		t.Fatalf("band powers sum to %g, total power %g", sum, total)
	}
}

func TestBandPowerLocatesTone(t *testing.T) {
	n := 4096
	fs := 20e6
	x := make([]complex128, n)
	for i := range x {
		phase := 2 * math.Pi * 3e6 * float64(i) / fs
		x[i] = cmplx.Exp(complex(0, phase))
	}
	inBand, err := BandPower(x, fs, 2e6, 4e6)
	if err != nil {
		t.Fatal(err)
	}
	outBand, err := BandPower(x, fs, -4e6, -2e6)
	if err != nil {
		t.Fatal(err)
	}
	if inBand < 0.99 || outBand > 0.01 {
		t.Fatalf("tone power in-band %g, out-of-band %g", inBand, outBand)
	}
}

func TestFrequencyShiftMovesTone(t *testing.T) {
	n := 2048
	fs := 20e6
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1 // DC
	}
	shifted := FrequencyShift(x, fs, 5e6)
	p, err := BandPower(shifted, fs, 4e6, 6e6)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.99 {
		t.Fatalf("shifted tone has only %g power in target band", p)
	}
}

func TestUpsampleDownsample(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	up, err := Upsample(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 16 {
		t.Fatalf("upsampled length %d", len(up))
	}
	down, err := Downsample(up, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(down[i]-x[i]) > 1e-12 {
			t.Fatalf("downsample[%d] = %v, want %v", i, down[i], x[i])
		}
	}
	if _, err := Upsample(x, 0); err == nil {
		t.Error("factor 0 accepted")
	}
	if _, err := Downsample(x, 2, 3); err == nil {
		t.Error("offset >= factor accepted")
	}
}

func TestMixIntoRespectsBounds(t *testing.T) {
	dst := make([]complex128, 4)
	src := []complex128{1, 1, 1, 1}
	MixInto(dst, src, 2, -2) // first two samples fall before dst
	if dst[0] != 2 || dst[1] != 2 || dst[2] != 0 {
		t.Fatalf("MixInto result %v", dst)
	}
}

func TestScaleToPower(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]complex128, 512)
	for i := range x {
		x[i] = complex(rng.NormFloat64()*3, rng.NormFloat64()*3)
	}
	ScaleToPower(x, 0.5)
	if p := Power(x); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("power after scaling %g", p)
	}
	// Zero signal is left unchanged.
	z := make([]complex128, 4)
	ScaleToPower(z, 1)
	if Power(z) != 0 {
		t.Fatal("zero signal gained power")
	}
}

func TestMaxAbs(t *testing.T) {
	if MaxAbs([]complex128{complex(3, 4), 1}) != 5 {
		t.Fatal("MaxAbs wrong")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPeriodogramValidation(t *testing.T) {
	if _, err := Periodogram(make([]complex128, 64), 12); err == nil {
		t.Error("non-power-of-two size accepted")
	}
	if _, err := Periodogram(make([]complex128, 8), 16); err == nil {
		t.Error("short signal accepted")
	}
}

func TestResampleFFTPreservesSpectrum(t *testing.T) {
	// A 3 MHz tone at 20 MS/s upsampled x2 stays a 3 MHz tone at 40 MS/s.
	n := 2048
	x := make([]complex128, n)
	for i := range x {
		phase := 2 * math.Pi * 3e6 * float64(i) / 20e6
		x[i] = cmplx.Exp(complex(0, phase))
	}
	up, err := ResampleFFT(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 2*n {
		t.Fatalf("length %d", len(up))
	}
	inBand, err := BandPower(up, 40e6, 2e6, 4e6)
	if err != nil {
		t.Fatal(err)
	}
	imaging, err := BandPower(up, 40e6, 16e6, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	if inBand < 0.9 || imaging > 1e-3 {
		t.Fatalf("in-band %g, imaging %g", inBand, imaging)
	}
	// Power is preserved.
	if math.Abs(Power(up)-Power(x)) > 0.05 {
		t.Fatalf("power changed: %g -> %g", Power(x), Power(up))
	}
}

func TestResampleFFTValidation(t *testing.T) {
	if _, err := ResampleFFT(nil, 0); err == nil {
		t.Fatal("factor 0 accepted")
	}
	out, err := ResampleFFT([]complex128{1, 2}, 1)
	if err != nil || len(out) != 2 {
		t.Fatal("identity resample broken")
	}
}

func TestLowPassFIRRejection(t *testing.T) {
	taps, err := LowPassFIR(40e6, 1.3e6, 129)
	if err != nil {
		t.Fatal(err)
	}
	// In-band tone passes, far-out tone is strongly attenuated.
	n := 4096
	mk := func(freq float64) []complex128 {
		x := make([]complex128, n)
		for i := range x {
			phase := 2 * math.Pi * freq * float64(i) / 40e6
			x[i] = cmplx.Exp(complex(0, phase))
		}
		return x
	}
	inTone := Filter(mk(0.5e6), taps)
	outTone := Filter(mk(8e6), taps)
	if p := Power(inTone[200 : n-200]); p < 0.8 {
		t.Fatalf("in-band tone attenuated to %g", p)
	}
	if p := Power(outTone[200 : n-200]); p > 1e-3 {
		t.Fatalf("8 MHz tone only attenuated to %g", p)
	}
}

func TestLowPassFIRValidation(t *testing.T) {
	if _, err := LowPassFIR(40e6, 1e6, 128); err == nil {
		t.Fatal("even tap count accepted")
	}
	if _, err := LowPassFIR(40e6, 30e6, 129); err == nil {
		t.Fatal("cutoff above Nyquist accepted")
	}
}
