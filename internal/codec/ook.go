package codec

import (
	"fmt"

	"sledzig/internal/bits"
	"sledzig/internal/core"
	"sledzig/internal/ctc"
	"sledzig/internal/obs/trace"
	"sledzig/internal/wifi"
)

func init() {
	Register("ook-ctc", func(p Params) (Codec, error) {
		return newOOK(p)
	})
}

// ookMessageBits is the fixed OOK side-channel frame: a 2-bit 0/1
// preamble (so the frame always contains both energy levels — the RSSI
// receiver needs the contrast and the conformance suite needs at least
// one protected symbol) followed by an 8-bit CRC of the payload.
const ookMessageBits = 2 + 8

// ook promotes the internal/ctc energy-modulation channel onto the Codec
// contract (the SLEM/OfdmFi family the paper critiques in section VI).
// The payload rides as ordinary WiFi data inside the frame, while the
// in-band energy toggles between "high" (normal constellation) and "low"
// (SledZig-pinned) over 32-symbol groups, spelling an OOK side-channel a
// ZigBee radio reads with nothing but its RSSI register. The embedded
// message is a payload CRC, so the WiFi-side decode cross-checks the
// energy pattern against the recovered data.
//
// The band-power promise only holds on the "low" symbols (the Encoded
// ProtectedMask), which is exactly the paper's point: energy-modulation
// CTC cannot protect the whole frame.
type ook struct {
	params Params
	enc    ctc.Encoder
	dec    ctc.Decoder
	rxr    wifi.Receiver
	rx     wifi.RxResult
	plan   *core.Plan
	tr     *trace.Frame
}

func newOOK(p Params) (*ook, error) {
	if !p.Channel.Valid() {
		return nil, fmt.Errorf("codec: ook-ctc needs a protected channel, got %d", int(p.Channel))
	}
	mode := p.Mode
	if mode.Modulation == 0 {
		mode = wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	}
	// One frame must hold the fixed message within the PLCP LENGTH bound.
	if nBits := ookMessageBits * ctc.SymbolsPerBit * mode.DataBitsPerSymbol(); nBits > 8*wifi.MaxPSDULength+22 {
		return nil, fmt.Errorf("codec: ook-ctc message of %d bits does not fit one frame at %v", ookMessageBits, mode)
	}
	plan, err := core.CachedPlan(p.Convention, mode, p.Channel)
	if err != nil {
		return nil, err
	}
	seed := p.Seed
	if seed == 0 {
		seed = wifi.DefaultScramblerSeed
	}
	return &ook{
		params: p,
		plan:   plan,
		enc:    ctc.Encoder{Convention: p.Convention, Mode: mode, Channel: p.Channel, Seed: p.Seed},
		dec:    ctc.Decoder{Convention: p.Convention, Channel: p.Channel},
		rxr:    wifi.Receiver{Seed: seed, Convention: p.Convention, Resync: p.Resilient, WideIQ: p.WideIQ},
	}, nil
}

func (c *ook) Name() string { return "ook-ctc" }

func (c *ook) SetTrace(tr *trace.Frame) { c.tr = tr }

// ookMessage spells the fixed preamble plus the payload CRC.
func ookMessage(payload []byte) []bits.Bit {
	msg := make([]bits.Bit, 0, ookMessageBits)
	msg = append(msg, 0, 1)
	msg = append(msg, bits.FromBytes([]byte{crc8(payload)})...)
	return msg
}

// Encode backs the Contract's MaxEncodeAllocs=48: masked layouts are
// memoized per (plan, mask), so nothing here may allocate per symbol.
//
//sledzig:noalloc budget=48
func (c *ook) Encode(payload []byte) (*Encoded, error) {
	// MaxPayload is the worst-case (all-low) capacity; the actual capacity
	// varies with the CRC's bit pattern. Enforce the conservative bound so
	// MaxPayload is a hard contract rather than a payload-dependent one.
	if max := c.MaxPayload(); len(payload) > max {
		return nil, fmt.Errorf("codec: payload of %d octets beyond the %d-octet ook-ctc bound: %w",
			len(payload), max, core.ErrPayloadSize)
	}
	mk := c.tr.Begin("codec.embed")
	frame, err := c.enc.Encode(payload, ookMessage(payload))
	mk.End()
	if err != nil {
		return nil, err
	}
	frame.WiFi.Trace = c.tr
	wave, err := frame.WiFi.Waveform()
	frame.WiFi.Trace = nil
	if err != nil {
		return nil, err
	}
	return &Encoded{
		Waveform:       wave,
		NumSymbols:     frame.WiFi.NumSymbols,
		ProtectedMask:  frame.Mask,
		AirtimeSeconds: frame.WiFi.Duration(),
	}, nil
}

func (c *ook) Decode(waveform []complex128) (*Decoded, error) {
	c.rxr.Trace = c.tr
	if err := c.rxr.ReceiveInto(waveform, &c.rx); err != nil {
		return nil, err
	}
	mk := c.tr.Begin("codec.extract")
	payload, message, err := c.dec.Decode(&c.rx)
	mk.End()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrDecode, err)
	}
	if !bits.Equal(message, ookMessage(payload)) {
		return nil, fmt.Errorf("%w: OOK side-channel %s disagrees with payload CRC", ErrDecode, bits.String(message))
	}
	return &Decoded{Payload: payload, Channel: c.params.Channel}, nil
}

func (c *ook) Contract() Contract {
	// Low symbols use SledZig's exact pinning, so they inherit its 3 dB
	// band-drop floor — but only the masked symbols are protected. The
	// alloc bound holds because masked layouts are memoized per (plan,
	// mask): steady-state encodes assemble and scramble, but never re-plan
	// clusters (measured ~33 allocs/op, dominated by frame assembly).
	return Contract{MinDropDB: 3.0, WholeFrame: false, MaxEncodeAllocs: 48}
}

func (c *ook) MaxPayload() int {
	n, err := c.enc.MaxPayload(ookMessageBits)
	if err != nil {
		return 0
	}
	return n
}

func (c *ook) OverheadFraction() float64 {
	// Worst case (every OOK bit low): the full SledZig per-symbol spend.
	return c.plan.ThroughputLossFraction()
}

// crc8 is the CRC-8/ATM polynomial 0x07, the payload digest the OOK
// side-channel carries.
func crc8(data []byte) byte {
	var crc byte
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
