package codec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"sledzig/internal/core"
	"sledzig/internal/wifi"
)

// conformanceParams is the common operating point every backend must
// support: the paper's default QAM-16 rate-1/2 mode on CH2.
func conformanceParams() Params {
	return Params{
		Convention: wifi.ConventionIEEE,
		Mode:       wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12},
		Channel:    core.CH2,
	}
}

// decodeSentinels is the closed set of error roots a backend may return
// from Decode: its own typed sentinel or one of the wifi/core sentinels
// the facade taxonomy already maps. Anything else breaks errors.Is
// classification for facade callers.
var decodeSentinels = []error{
	ErrDecode,
	wifi.ErrShortWaveform,
	wifi.ErrBadSignal,
	wifi.ErrDemodFailed,
	core.ErrNoProtectedChannel,
	core.ErrExtraBitLayout,
	core.ErrConstraintUnsatisfied,
	core.ErrPayloadSize,
}

func isTypedDecodeErr(err error) bool {
	for _, s := range decodeSentinels {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

// TestCodecConformance is the shared conformance suite: every registered
// backend must round-trip payloads, honour its own band-power contract,
// keep decode failures inside the typed-error taxonomy, and hold any
// allocation bound it claims. Adding a backend to the registry opts it
// into all of this automatically.
func TestCodecConformance(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p := conformanceParams()
			c, err := New(name, p)
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}

			ct := c.Contract()
			if ct.MinDropDB <= 0 {
				t.Fatalf("contract claims no band-power drop (%.1f dB)", ct.MinDropDB)
			}
			if of := c.OverheadFraction(); of < 0 || of > 1 {
				t.Fatalf("overhead fraction %.3f outside [0, 1]", of)
			}
			maxP := c.MaxPayload()
			if maxP <= 0 {
				t.Fatalf("MaxPayload() = %d, want positive", maxP)
			}

			t.Run("round_trip", func(t *testing.T) {
				rng := rand.New(rand.NewSource(7))
				sizes := []int{1, 64, 257}
				if maxP < 1500 {
					sizes = append(sizes, maxP)
				} else {
					sizes = append(sizes, 1500)
				}
				for _, n := range sizes {
					payload := make([]byte, n)
					rng.Read(payload)
					enc, err := c.Encode(payload)
					if err != nil {
						t.Fatalf("Encode(%d octets): %v", n, err)
					}
					if enc.NumSymbols <= 0 || len(enc.Waveform) == 0 {
						t.Fatalf("Encode(%d octets): empty frame (%d symbols, %d samples)", n, enc.NumSymbols, len(enc.Waveform))
					}
					if enc.AirtimeSeconds <= 0 {
						t.Fatalf("Encode(%d octets): airtime %g", n, enc.AirtimeSeconds)
					}
					if enc.ProtectedMask != nil && len(enc.ProtectedMask) != enc.NumSymbols {
						t.Fatalf("Encode(%d octets): mask of %d entries for %d symbols", n, len(enc.ProtectedMask), enc.NumSymbols)
					}
					dec, err := c.Decode(enc.Waveform)
					if err != nil {
						t.Fatalf("Decode(%d octets): %v", n, err)
					}
					if !bytes.Equal(dec.Payload, payload) {
						t.Fatalf("round trip of %d octets: payload mismatch", n)
					}
					if dec.Channel != p.Channel {
						t.Fatalf("round trip of %d octets: channel %v, want %v", n, dec.Channel, p.Channel)
					}
					// Both sample widths must decode: the default codec
					// instance runs the narrow complex64 receive path, a
					// WideIQ instance the complex128 reference. A backend
					// whose waveform only survives complex128 precision
					// fails here.
					wideParams := p
					wideParams.WideIQ = true
					cw, err := New(name, wideParams)
					if err != nil {
						t.Fatalf("New(%q, WideIQ): %v", name, err)
					}
					decW, err := cw.Decode(enc.Waveform)
					if err != nil {
						t.Fatalf("Decode(%d octets, WideIQ): %v", n, err)
					}
					if !bytes.Equal(decW.Payload, payload) {
						t.Fatalf("wide round trip of %d octets: payload mismatch", n)
					}
				}
			})

			t.Run("payload_bound", func(t *testing.T) {
				if _, err := c.Encode(make([]byte, maxP+1)); err == nil {
					t.Fatalf("Encode(MaxPayload+1 = %d octets) succeeded", maxP+1)
				}
			})

			t.Run("band_power_contract", func(t *testing.T) {
				rng := rand.New(rand.NewSource(11))
				payload := make([]byte, 256)
				rng.Read(payload)
				drop, err := MeasureBandDrop(c, p, payload)
				if err != nil {
					t.Fatalf("MeasureBandDrop: %v", err)
				}
				if drop < ct.MinDropDB {
					t.Fatalf("protected-band drop %.2f dB below the contract's %.2f dB", drop, ct.MinDropDB)
				}
				if ct.WholeFrame {
					enc, err := c.Encode(payload)
					if err != nil {
						t.Fatalf("Encode: %v", err)
					}
					for s, prot := range enc.ProtectedMask {
						if !prot {
							t.Fatalf("whole-frame contract but symbol %d unprotected", s)
						}
					}
				}
			})

			t.Run("typed_errors", func(t *testing.T) {
				enc, err := c.Encode([]byte("typed-error probe payload"))
				if err != nil {
					t.Fatalf("Encode: %v", err)
				}
				rng := rand.New(rand.NewSource(13))
				noise := make([]complex128, 4000)
				for i := range noise {
					noise[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				cases := map[string][]complex128{
					"empty":     nil,
					"short":     make([]complex128, 100),
					"zeros":     make([]complex128, 4000),
					"noise":     noise,
					"truncated": enc.Waveform[:len(enc.Waveform)/2],
				}
				for label, wave := range cases {
					_, derr := c.Decode(wave)
					if derr == nil {
						t.Fatalf("%s: Decode succeeded on garbage", label)
					}
					if !isTypedDecodeErr(derr) {
						t.Fatalf("%s: error outside the typed taxonomy: %v", label, derr)
					}
				}
			})

			if ct.MaxEncodeAllocs > 0 {
				t.Run("alloc_bound", func(t *testing.T) {
					if raceEnabled {
						t.Skip("race instrumentation allocates; bound is checked in the non-race run")
					}
					payload := make([]byte, 800)
					if _, err := c.Encode(payload); err != nil { // warm pools
						t.Fatalf("Encode: %v", err)
					}
					avg := testing.AllocsPerRun(50, func() {
						if _, err := c.Encode(payload); err != nil {
							t.Fatalf("Encode: %v", err)
						}
					})
					if avg > float64(ct.MaxEncodeAllocs) {
						t.Fatalf("%.1f allocs/Encode exceeds the contract's %d", avg, ct.MaxEncodeAllocs)
					}
				})
			}
		})
	}
}

// TestCodecInstancesIndependent guards the one-instance-per-worker
// contract: two instances of the same backend must not share mutable
// state observable through interleaved use.
func TestCodecInstancesIndependent(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p := conformanceParams()
			a, err := New(name, p)
			if err != nil {
				t.Fatal(err)
			}
			b, err := New(name, p)
			if err != nil {
				t.Fatal(err)
			}
			pa := []byte("instance A payload")
			pb := []byte("instance B has a different length payload")
			ea, err := a.Encode(pa)
			if err != nil {
				t.Fatal(err)
			}
			eb, err := b.Encode(pb)
			if err != nil {
				t.Fatal(err)
			}
			// Decode crosswise after both encodes: recycled buffers in one
			// instance must not corrupt the other's frame.
			da, err := b.Decode(ea.Waveform)
			if err != nil {
				t.Fatalf("cross decode A: %v", err)
			}
			db, err := a.Decode(eb.Waveform)
			if err != nil {
				t.Fatalf("cross decode B: %v", err)
			}
			if !bytes.Equal(da.Payload, pa) || !bytes.Equal(db.Payload, pb) {
				t.Fatal("instances shared state: cross-decoded payloads mismatch")
			}
		})
	}
}
