//go:build race

package codec

// raceEnabled reports whether the race detector instruments this build.
// Race instrumentation adds allocations of its own, so allocation-bound
// assertions are meaningless under -race and are skipped.
const raceEnabled = true
