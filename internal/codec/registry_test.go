package codec

import (
	"errors"
	"sort"
	"strings"
	"testing"
)

func TestNamesSortedAndKnown(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"sledzig", "ook-ctc", "ofdmfi"} {
		if !Known(want) {
			t.Fatalf("backend %q not registered (have %v)", want, names)
		}
	}
	if Known("nope") {
		t.Fatal(`Known("nope") = true`)
	}
}

func TestNewUnknownWrapsSentinel(t *testing.T) {
	_, err := New("nope", conformanceParams())
	if !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("error %v does not wrap ErrUnknownCodec", err)
	}
	// The message must list the registered backends so a mistyped name is
	// self-diagnosing.
	if !strings.Contains(err.Error(), "sledzig") {
		t.Fatalf("error %v does not list registered backends", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("sledzig", func(Params) (Codec, error) { return nil, nil })
}

func TestRegisterEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register with empty name did not panic")
		}
	}()
	Register("", func(Params) (Codec, error) { return nil, nil })
}

func TestFactoryRejectsInvalidChannel(t *testing.T) {
	for _, name := range Names() {
		p := conformanceParams()
		p.Channel = 0
		if _, err := New(name, p); err == nil {
			t.Fatalf("%s: factory accepted channel 0", name)
		}
	}
}
