package codec

import (
	"sledzig/internal/core"
	"sledzig/internal/obs/trace"
	"sledzig/internal/wifi"
)

func init() {
	Register("sledzig", func(p Params) (Codec, error) {
		return newSledZig(p)
	})
}

// sledZig is the paper's mechanism promoted onto the Codec contract: every
// DATA symbol's subcarriers overlapping the protected channel are pinned
// to the lowest-power constellation points via extra payload bits, so the
// whole frame honours the band-power promise while remaining a 100%
// standard PPDU carrying the payload as ordinary (strippable) WiFi data.
//
// This is the waveform-level view of the facade's Encoder/Decoder pair;
// the facade keeps its specialized zero-allocation frame path, while this
// backend serves the registry, the conformance suite and the comparative
// experiment harness.
type sledZig struct {
	params Params
	plan   *core.Plan
	enc    core.Encoder
	res    core.EncodeResult
	rxr    wifi.Receiver
	rx     wifi.RxResult
	dec    core.Decoder
	tr     *trace.Frame
}

func newSledZig(p Params) (*sledZig, error) {
	plan, err := core.CachedPlan(p.Convention, p.Mode, p.Channel)
	if err != nil {
		return nil, err
	}
	seed := p.Seed
	if seed == 0 {
		seed = wifi.DefaultScramblerSeed
	}
	return &sledZig{
		params: p,
		plan:   plan,
		enc:    core.Encoder{Plan: plan, Seed: p.Seed},
		rxr:    wifi.Receiver{Seed: seed, Convention: p.Convention, Resync: p.Resilient, WideIQ: p.WideIQ},
		dec:    core.Decoder{Convention: p.Convention},
	}, nil
}

func (c *sledZig) Name() string { return "sledzig" }

func (c *sledZig) SetTrace(tr *trace.Frame) { c.tr = tr }

// Encode honours the Contract's MaxEncodeAllocs=64: steady-state work
// happens in the facade's pooled EncodeTo path; the per-call slack covers
// frame assembly and the waveform buffer.
//
//sledzig:noalloc budget=5
func (c *sledZig) Encode(payload []byte) (*Encoded, error) {
	c.enc.Trace = c.tr
	if err := c.enc.EncodeTo(payload, &c.res); err != nil {
		return nil, err
	}
	wave, err := c.res.Frame.Waveform()
	if err != nil {
		return nil, err
	}
	return &Encoded{
		Waveform:       wave,
		NumSymbols:     c.res.Frame.NumSymbols,
		ProtectedMask:  nil, // every symbol is pinned
		AirtimeSeconds: c.res.Frame.Duration(),
	}, nil
}

func (c *sledZig) Decode(waveform []complex128) (*Decoded, error) {
	c.rxr.Trace = c.tr
	c.dec.Trace = c.tr
	if err := c.rxr.ReceiveInto(waveform, &c.rx); err != nil {
		return nil, err
	}
	payload, ch, err := c.dec.DecodeAuto(&c.rx)
	if err != nil {
		return nil, err
	}
	return &Decoded{Payload: payload, Channel: ch}, nil
}

func (c *sledZig) Contract() Contract {
	// The per-subcarrier drop is 7.0/13.2/19.3 dB (paper III-B), but the
	// 2 MHz band-power drop is bounded by the unpinnable pilots and
	// spectral leakage from neighbouring subcarriers; the paper's Fig. 12
	// measures 4-8 dB. 3 dB is the honest floor across modes.
	return Contract{MinDropDB: 3.0, WholeFrame: true, MaxEncodeAllocs: 64}
}

func (c *sledZig) MaxPayload() int {
	nDBPS := c.plan.Mode.DataBitsPerSymbol()
	maxSym := (8*wifi.MaxPSDULength + 22) / nDBPS
	return c.enc.MaxPayload(maxSym)
}

func (c *sledZig) OverheadFraction() float64 {
	return c.plan.ThroughputLossFraction()
}
