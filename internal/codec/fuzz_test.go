package codec

import (
	"encoding/binary"
	"math"
	"testing"

	"sledzig/internal/fault"
)

// complexToBytes packs a waveform as little-endian float64 (re, im) pairs
// so fault-corrupted captures can seed the byte-oriented fuzz corpus.
func complexToBytes(wave []complex128) []byte {
	out := make([]byte, 16*len(wave))
	for i, v := range wave {
		binary.LittleEndian.PutUint64(out[16*i:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(out[16*i+8:], math.Float64bits(imag(v)))
	}
	return out
}

func bytesToComplex(data []byte) []complex128 {
	wave := make([]complex128, len(data)/16)
	for i := range wave {
		re := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i+8:]))
		wave[i] = complex(re, im)
	}
	return wave
}

// FuzzCodecRegistry drives arbitrary waveforms through every registered
// backend's Decode. The corpus is seeded with fault-injector corruptions
// of each backend's own frames — the hostile captures the paper's testbed
// produces — and the invariant is the decode contract: no panic, no hang,
// and every failure inside the typed-error taxonomy.
func FuzzCodecRegistry(f *testing.F) {
	p := conformanceParams()
	for bi, name := range Names() {
		c, err := New(name, p)
		if err != nil {
			f.Fatalf("New(%q): %v", name, err)
		}
		enc, err := c.Encode([]byte("fuzz corpus seed payload"))
		if err != nil {
			f.Fatalf("%s: Encode: %v", name, err)
		}
		f.Add(byte(bi), complexToBytes(enc.Waveform))
		for seed := int64(1); seed <= 3; seed++ {
			chain := fault.RandomChain(seed, 2)
			f.Add(byte(bi), complexToBytes(chain.Apply(enc.Waveform)))
		}
	}
	f.Add(byte(0), []byte{})
	f.Add(byte(1), make([]byte, 160))

	f.Fuzz(func(t *testing.T, which byte, data []byte) {
		if len(data) > 1<<21 { // bound memory, not coverage
			return
		}
		names := Names()
		name := names[int(which)%len(names)]
		c, err := New(name, p)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		dec, err := c.Decode(bytesToComplex(data))
		if err != nil {
			if !isTypedDecodeErr(err) {
				t.Fatalf("%s: error outside the typed taxonomy: %v", name, err)
			}
			return
		}
		if len(dec.Payload) == 0 {
			t.Fatalf("%s: Decode returned success with an empty payload", name)
		}
	})
}
