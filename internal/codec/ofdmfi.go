package codec

import (
	"fmt"
	"math/cmplx"

	"sledzig/internal/bits"
	"sledzig/internal/core"
	"sledzig/internal/dsp"
	"sledzig/internal/obs/trace"
	"sledzig/internal/wifi"
)

func init() {
	Register("ofdmfi", func(p Params) (Codec, error) {
		return newOfdmFi(p)
	})
}

const (
	// ofdmFiGroupSize data subcarriers share one message chip, giving the
	// RSSI-grade receiver 4 x 312.5 kHz = 1.25 MHz of power per chip.
	ofdmFiGroupSize = 4
	// ofdmFiLoAmp is the "low" subcarrier amplitude: power 1/16, a 12 dB
	// per-subcarrier drop before leakage.
	ofdmFiLoAmp = 0.25
	// ofdmFiMaxSymbols bounds one frame (about 16 ms of airtime), standing
	// in for the PLCP LENGTH bound a standards frame would have.
	ofdmFiMaxSymbols = 4096
	invSqrt2         = 0.7071067811865476
)

// ofdmFi is an OfdmFi-style message-embedding backend: the frame is an
// 802.11 preamble (so WiFi neighbours defer to it) followed by OFDM
// symbols whose subcarrier power pattern IS the message. The 48 data
// subcarriers split into 12 groups of 4; each unprotected group carries
// one chip per symbol (high amplitude = bit 1, low = bit 0), readable by
// narrowband RSSI sampling of the group's 1.25 MHz slice. Groups and
// pilots overlapping the protected ZigBee channel are held at the low
// amplitude for the whole frame, so the band-power promise covers every
// symbol — but, unlike SledZig, the frame carries no WiFi payload at
// all: the entire DATA field is spent on the embedded message
// (OverheadFraction 1).
//
// The embedded message is framed as a 16-bit little-endian byte length,
// the payload bytes, and a CRC-8, all LSB-first per byte.
type ofdmFi struct {
	params Params
	window map[int]bool // signed subcarrier index -> in protected band
	groups [][]int      // 12 groups of 4 data subcarriers, ascending
	msg    []int        // group indices that carry message chips
	refPil []int        // pilot subcarriers outside the protected band
	loPil  []int        // FFT bins of protected-band pilots, attenuated per symbol
	tr     *trace.Frame
}

func newOfdmFi(p Params) (*ofdmFi, error) {
	if !p.Channel.Valid() {
		return nil, fmt.Errorf("codec: ofdmfi needs a protected channel, got %d", int(p.Channel))
	}
	window := map[int]bool{}
	for _, k := range p.Channel.SubcarrierWindow() {
		window[k] = true
	}
	data := wifi.DataSubcarriers()
	c := &ofdmFi{params: p, window: window}
	for g := 0; g+ofdmFiGroupSize <= len(data); g += ofdmFiGroupSize {
		group := data[g : g+ofdmFiGroupSize]
		c.groups = append(c.groups, group)
		protected := false
		for _, k := range group {
			if window[k] {
				protected = true
				break
			}
		}
		if !protected {
			c.msg = append(c.msg, len(c.groups)-1)
		}
	}
	for _, k := range wifi.PilotSubcarriers() {
		if !window[k] {
			c.refPil = append(c.refPil, k)
		}
	}
	for _, k := range p.Channel.PilotSubcarriers() {
		c.loPil = append(c.loPil, fftBin(k))
	}
	if len(c.msg) == 0 || len(c.refPil) == 0 {
		return nil, fmt.Errorf("codec: ofdmfi has no usable groups for channel %d", int(p.Channel))
	}
	return c, nil
}

func (c *ofdmFi) Name() string { return "ofdmfi" }

func (c *ofdmFi) SetTrace(tr *trace.Frame) { c.tr = tr }

// chip returns the QPSK point for (symbol, subcarrier), decorrelating
// bins with a splitmix-style hash so the waveform is noise-like rather
// than a comb of identical tones. Power measurement ignores the phase.
func chip(sym, k int) complex128 {
	x := uint64(sym+1)*0x9E3779B97F4A7C15 ^ uint64(k+64)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 29
	re, im := invSqrt2, invSqrt2
	if x&1 != 0 {
		re = -re
	}
	if x&2 != 0 {
		im = -im
	}
	return complex(re, im)
}

// ofdmFiMessage frames the payload bits carried on the air.
func ofdmFiMessage(payload []byte) []bits.Bit {
	framed := make([]byte, 0, len(payload)+3)
	framed = append(framed, byte(len(payload)), byte(len(payload)>>8))
	framed = append(framed, payload...)
	framed = append(framed, crc8(payload))
	return bits.FromBytes(framed)
}

// Encode backs the Contract's MaxEncodeAllocs=16: buffers are sized
// before the symbol loop, which itself must not allocate per iteration.
//
//sledzig:noalloc budget=16
func (c *ofdmFi) Encode(payload []byte) (*Encoded, error) {
	if len(payload) > c.MaxPayload() {
		return nil, fmt.Errorf("%w: ofdmfi payload of %d octets exceeds %d", core.ErrPayloadSize, len(payload), c.MaxPayload())
	}
	mk := c.tr.Begin("codec.embed")
	defer mk.End()
	message := ofdmFiMessage(payload)
	perSym := len(c.msg)
	nSym := (len(message) + perSym - 1) / perSym
	wave := wifi.AppendPreamble(make([]complex128, 0, wifi.PreambleLength+nSym*wifi.SymbolLength))
	var data [wifi.NumDataSubcarriers]complex128
	freq := make([]complex128, wifi.NumSubcarriers)
	td := make([]complex128, wifi.NumSubcarriers)
	for s := 0; s < nSym; s++ {
		// Protected (and padding) groups stay low; message groups carry
		// their chip's amplitude. Group g spans data indices
		// [g*groupSize, (g+1)*groupSize) — the groups partition
		// wifi.DataSubcarriers() in order.
		next := 0
		for g, group := range c.groups {
			amp := ofdmFiLoAmp
			if next < len(c.msg) && c.msg[next] == g {
				idx := s*perSym + next
				if idx < len(message) && message[idx] == 1 {
					amp = 1
				}
				next++
			}
			for j, k := range group {
				data[g*ofdmFiGroupSize+j] = complex(amp, 0) * chip(s, k)
			}
		}
		if err := wifi.SubcarrierMapInto(freq, data[:], s+1); err != nil {
			return nil, err
		}
		// Pilots cannot be dropped (receivers track them), but the one
		// inside the protected band is attenuated like its neighbours.
		for _, b := range c.loPil {
			freq[b] *= complex(ofdmFiLoAmp, 0)
		}
		if err := dsp.IFFTInto(td, freq); err != nil {
			return nil, err
		}
		wave = append(wave, td[wifi.NumSubcarriers-wifi.CPLength:]...) //sledvet:ignore hotalloc wave is pre-sized to PreambleLength+nSym*SymbolLength before the loop, so neither append ever grows the backing array
		wave = append(wave, td...)
	}
	return &Encoded{
		Waveform:       wave,
		NumSymbols:     nSym,
		ProtectedMask:  nil, // every symbol holds the band low
		AirtimeSeconds: float64(len(wave)) / wifi.SampleRate,
	}, nil
}

func (c *ofdmFi) Decode(waveform []complex128) (*Decoded, error) {
	mk := c.tr.Begin("codec.extract")
	defer mk.End()
	body := len(waveform) - wifi.PreambleLength
	if body < wifi.SymbolLength {
		return nil, fmt.Errorf("%w: ofdmfi capture of %d samples holds no symbols", ErrDecode, len(waveform))
	}
	nSym := body / wifi.SymbolLength
	freq := make([]complex128, wifi.NumSubcarriers)
	raw := make([]bits.Bit, 0, nSym*len(c.msg))
	// Accumulated per-channel window power, to verify the protected band
	// really is the quiet one.
	var bandPower [4]float64
	for s := 0; s < nSym; s++ {
		start := wifi.PreambleLength + s*wifi.SymbolLength
		if err := wifi.FrequencyDomainInto(freq, waveform[start:start+wifi.SymbolLength]); err != nil {
			return nil, err
		}
		// Reference "high" power from the pilots outside the protected
		// band (unit amplitude at the transmitter, so they track the
		// link gain).
		var hiRef float64
		for _, k := range c.refPil {
			hiRef += binPower(freq[fftBin(k)])
		}
		hiRef /= float64(len(c.refPil))
		if hiRef <= 0 {
			return nil, fmt.Errorf("%w: ofdmfi capture has no pilot energy in symbol %d", ErrDecode, s)
		}
		threshold := hiRef * (1 + ofdmFiLoAmp*ofdmFiLoAmp) / 2
		for _, g := range c.msg {
			var p float64
			for _, k := range c.groups[g] {
				p += binPower(freq[fftBin(k)])
			}
			p /= ofdmFiGroupSize
			var b bits.Bit
			if p > threshold {
				b = 1
			}
			raw = append(raw, b)
		}
		for ch := core.CH1; ch <= core.CH4; ch++ {
			win := ch.SubcarrierWindow()
			var p float64
			for _, k := range win {
				p += binPower(freq[fftBin(k)])
			}
			bandPower[ch-core.CH1] += p / float64(len(win))
		}
	}
	for ch := core.CH1; ch <= core.CH4; ch++ {
		if ch != c.params.Channel && bandPower[ch-core.CH1] <= bandPower[c.params.Channel-core.CH1] {
			return nil, fmt.Errorf("%w: ofdmfi protected band %d is not the quietest window", ErrDecode, int(c.params.Channel))
		}
	}
	if len(raw) < 16 {
		return nil, fmt.Errorf("%w: ofdmfi message truncated at %d bits", ErrDecode, len(raw))
	}
	n := 0
	for i := 0; i < 16; i++ {
		n |= int(raw[i]) << i
	}
	total := 16 + 8*n + 8
	if len(raw) < total {
		return nil, fmt.Errorf("%w: ofdmfi header says %d octets but capture holds %d bits", ErrDecode, n, len(raw))
	}
	framed, err := bits.ToBytes(raw[:total])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	payload := framed[2 : 2+n]
	if crc8(payload) != framed[2+n] {
		return nil, fmt.Errorf("%w: ofdmfi CRC mismatch", ErrDecode)
	}
	return &Decoded{Payload: payload, Channel: c.params.Channel}, nil
}

func (c *ofdmFi) Contract() Contract {
	// Every in-band subcarrier (data and pilot) runs at amplitude 1/4
	// for the whole frame: 12 dB per subcarrier, 6 dB band floor after
	// leakage from the adjacent full-power groups. Encode synthesizes the
	// waveform append-style into one exact-capacity buffer with
	// precomputed bin indices (measured ~6 allocs/op regardless of
	// payload size).
	return Contract{MinDropDB: 6.0, WholeFrame: true, MaxEncodeAllocs: 16}
}

func (c *ofdmFi) MaxPayload() int {
	return (ofdmFiMaxSymbols*len(c.msg) - 16 - 8) / 8
}

// OverheadFraction is 1: the frame spends its entire DATA field on the
// embedded message and carries no WiFi payload — the throughput cost the
// paper's section VI holds against message-embedding CTC.
func (c *ofdmFi) OverheadFraction() float64 { return 1.0 }

// fftBin converts a signed subcarrier index to an FFT bin index.
func fftBin(k int) int {
	return ((k % wifi.NumSubcarriers) + wifi.NumSubcarriers) % wifi.NumSubcarriers
}

func binPower(v complex128) float64 {
	m := cmplx.Abs(v)
	return m * m
}
