// Package codec defines the cross-technology-coexistence codec contract
// and its registry: a Codec embeds a payload into a WiFi-band baseband
// waveform while honouring a band-power promise on one protected ZigBee
// channel, and recovers the payload from a received waveform. SledZig is
// one codec among several — the paper's section VI positions it against
// SLEM/OfdmFi-style energy modulation, and the registry makes those
// mechanisms first-class alternatives judged by the same experiment
// harness (band power in the protected channel, PRR, WiFi throughput
// loss) and served by the same engine worker pool.
package codec

import (
	"errors"

	"sledzig/internal/core"
	"sledzig/internal/obs/trace"
	"sledzig/internal/wifi"
)

// Typed sentinels of the codec layer. Every backend wraps its decode
// failures in ErrDecode (or one of the wifi/core sentinels the facade
// already maps), so registry dispatch keeps the errors.Is contract.
var (
	// ErrUnknownCodec marks a name with no registered backend.
	ErrUnknownCodec = errors.New("codec: unknown codec")
	// ErrDecode marks a waveform the backend demodulated but could not
	// frame back into a payload (sync, pattern or checksum failure).
	ErrDecode = errors.New("codec: frame undecodable")
)

// Params configures one codec instance. Every backend interprets the
// same fields so the facade and engine stay codec-agnostic; a backend
// that has no use for a field (e.g. the OfdmFi-style codec ignores the
// coding rate) documents that on its constructor.
type Params struct {
	Convention wifi.Convention
	Mode       wifi.Mode
	// Channel is the protected ZigBee channel. Required by every
	// backend: it is the band the Contract speaks about.
	Channel core.ZigBeeChannel
	// Seed is the 802.11 scrambler seed where the backend uses the
	// standard bit pipeline (0 selects the Annex G default).
	Seed uint8
	// Resilient enables the receiver's graceful-degradation ladder where
	// the backend decodes through the standard WiFi receiver.
	Resilient bool
	// WideIQ selects the complex128 reference receive pipeline where the
	// backend decodes through the standard WiFi receiver. The zero value
	// runs the narrow complex64 path.
	WideIQ bool
}

// Encoded is one encoded frame: the complete baseband PPDU at 20 MS/s
// plus the accounting the experiment harness and facade report.
type Encoded struct {
	// Waveform is the full PPDU (preamble + header + DATA), WiFi-centered
	// complex baseband. The caller owns it.
	Waveform []complex128
	// NumSymbols is the DATA-field length in OFDM symbols.
	NumSymbols int
	// ProtectedMask marks, per DATA OFDM symbol, whether the codec held
	// the protected band low during that symbol. Nil means every symbol
	// is protected (the SledZig case).
	ProtectedMask []bool
	// AirtimeSeconds is the PPDU duration on the air.
	AirtimeSeconds float64
}

// Decoded is one recovered frame.
type Decoded struct {
	// Payload is the original payload handed to Encode.
	Payload []byte
	// Channel is the protected channel the frame was decoded against
	// (detected from the air where the mechanism allows, configured
	// otherwise).
	Channel core.ZigBeeChannel
}

// Contract is the codec's band-power promise, the common currency the
// conformance suite enforces on every backend: over the DATA symbols the
// codec marks protected, the power inside the protected ZigBee channel is
// at least MinDropDB below a normal WiFi frame of the same mode.
type Contract struct {
	// MinDropDB is the guaranteed in-band power reduction (dB) on
	// protected symbols, relative to a normal frame.
	MinDropDB float64
	// WholeFrame states that every DATA symbol is protected
	// (ProtectedMask nil or all-true) — the strongest form of the
	// contract, which SledZig offers and the energy-modulation codecs
	// cannot.
	WholeFrame bool
	// MaxEncodeAllocs, when positive, bounds steady-state heap
	// allocations per Encode call; the conformance suite enforces it
	// with testing.AllocsPerRun. Zero leaves the hot path unchecked.
	MaxEncodeAllocs int
}

// Codec is the cross-technology-coexistence codec contract.
//
// A Codec instance is NOT safe for concurrent use — it may hold recycled
// demodulation state. The engine gives each worker its own instance; other
// callers construct one per goroutine through New.
type Codec interface {
	// Name returns the registry name ("sledzig", "ook-ctc", ...).
	Name() string
	// Encode embeds payload into a fresh baseband PPDU honouring the
	// Contract on the configured protected channel.
	Encode(payload []byte) (*Encoded, error)
	// Decode recovers the payload from a received waveform (aligned to
	// the PPDU start, as produced by Encode).
	Decode(waveform []complex128) (*Decoded, error)
	// Contract reports the codec's band-power promise.
	Contract() Contract
	// MaxPayload is the largest payload (octets) one frame can carry.
	MaxPayload() int
	// OverheadFraction is the fraction of the frame's standard WiFi DATA
	// throughput the mechanism costs (1 = the frame carries no ordinary
	// WiFi data at all).
	OverheadFraction() float64
}

// Traceable is implemented by codecs that can land per-stage spans on a
// frame trace; the engine threads each job's trace through it so every
// backend shows up in the flight recorder the same way.
type Traceable interface {
	SetTrace(*trace.Frame)
}
