package codec

import (
	"fmt"

	"sledzig/internal/dsp"
	"sledzig/internal/wifi"
)

// MeasureBandDrop encodes payload with c and reports the power drop (dB)
// inside the protected ZigBee channel over the codec's protected DATA
// symbols, relative to a standard 802.11 frame of the same mode carrying
// the same payload. This is the measurement behind Contract.MinDropDB:
// the conformance suite holds every backend to its own claim with it, and
// the experiment harness reports it per backend side by side.
func MeasureBandDrop(c Codec, p Params, payload []byte) (float64, error) {
	enc, err := c.Encode(payload)
	if err != nil {
		return 0, err
	}
	lo, hi := p.Channel.BandHz()

	// The DATA symbols occupy the final NumSymbols*SymbolLength samples of
	// every backend's waveform (what precedes them — preamble, SIGNAL —
	// differs per codec and is excluded from the contract).
	span := enc.NumSymbols * wifi.SymbolLength
	if span <= 0 || span > len(enc.Waveform) {
		return 0, fmt.Errorf("codec: %s frame of %d samples cannot hold %d DATA symbols", c.Name(), len(enc.Waveform), enc.NumSymbols)
	}
	// The contract is measured at both sample widths: the wide complex128
	// waveform as encoded, and the same waveform rounded to complex64 the
	// way the default receive path sees it. The reported drop is the worse
	// (smaller) of the two, so a codec cannot pass conformance on
	// complex128 precision alone while the narrow path hears more energy
	// in the protected band.
	data := enc.Waveform[len(enc.Waveform)-span:]
	data32 := dsp.Narrow(nil, data)
	var sum, sum32 float64
	n := 0
	for s := 0; s < enc.NumSymbols; s++ {
		if enc.ProtectedMask != nil && !enc.ProtectedMask[s] {
			continue
		}
		pwr, perr := dsp.BandPower(data[s*wifi.SymbolLength:(s+1)*wifi.SymbolLength], wifi.SampleRate, lo, hi)
		if perr != nil {
			return 0, perr
		}
		pwr32, perr := dsp.BandPower32(data32[s*wifi.SymbolLength:(s+1)*wifi.SymbolLength], wifi.SampleRate, lo, hi)
		if perr != nil {
			return 0, perr
		}
		sum += pwr
		sum32 += pwr32
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("codec: %s marked no protected symbols", c.Name())
	}
	protected := sum / float64(n)
	protected32 := sum32 / float64(n)

	// Baseline: the same payload through an unmodified transmitter.
	mode := p.Mode
	if mode.Modulation == 0 {
		mode = wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	}
	basePayload := payload
	if len(basePayload) == 0 {
		basePayload = []byte{0}
	}
	frame, err := wifi.Transmitter{Mode: mode, Convention: p.Convention, Seed: p.Seed}.Frame(basePayload)
	if err != nil {
		return 0, err
	}
	baseWave, err := frame.DataWaveform()
	if err != nil {
		return 0, err
	}
	var bsum float64
	bn := 0
	for s := 0; s+wifi.SymbolLength <= len(baseWave); s += wifi.SymbolLength {
		pwr, perr := dsp.BandPower(baseWave[s:s+wifi.SymbolLength], wifi.SampleRate, lo, hi)
		if perr != nil {
			return 0, perr
		}
		bsum += pwr
		bn++
	}
	if bn == 0 {
		return 0, fmt.Errorf("codec: baseline frame has no DATA symbols")
	}
	baseline := bsum / float64(bn)
	drop := dsp.DB(baseline) - dsp.DB(protected)
	if d32 := dsp.DB(baseline) - dsp.DB(protected32); d32 < drop {
		drop = d32
	}
	return drop, nil
}
