package codec

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds one codec instance. Factories validate their Params and
// return an error for unusable configurations (invalid channel, a mode
// the mechanism cannot pin, ...).
type Factory func(Params) (Codec, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register installs a backend under name. Backends register from init, so
// importing the package is enough to serve the full set; registering the
// same name twice panics — that is a wiring bug, not a runtime condition.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || f == nil {
		panic("codec: Register needs a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic("codec: duplicate Register of " + name)
	}
	registry[name] = f
}

// New builds the named codec. Unknown names wrap ErrUnknownCodec and list
// the registered backends.
func New(name string, p Params) (Codec, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownCodec, name, Names())
	}
	return f(p)
}

// Known reports whether name has a registered backend.
func Known(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names lists the registered backends, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
