package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSubmitQueueWaitSheds: with MaxQueueWait set, a submission that
// cannot enqueue within the window sheds with a typed *Overload instead of
// blocking until the caller's context dies.
func TestSubmitQueueWaitSheds(t *testing.T) {
	leakCheck(t)
	cfg := testConfig(1)
	cfg.Queue = 1
	cfg.MaxQueueWait = 20 * time.Millisecond
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	entered, release := stallHook(t)

	ctx := context.Background()
	payloads := testPayloads(3)
	var done sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[int]error{}
	deliver := func(idx int, res *Product, err error) {
		mu.Lock()
		outcomes[idx] = err
		mu.Unlock()
	}
	submit := func(i int) error {
		done.Add(1)
		j := &job{payload: payloads[i], idx: i, ctx: ctx, deliver: deliver, done: &done}
		err := e.submit(ctx, j)
		if err != nil {
			done.Done()
		}
		return err
	}

	if err := submit(0); err != nil {
		t.Fatalf("submit 0: %v", err)
	}
	<-entered // frame 0 wedged on the worker
	if err := submit(1); err != nil {
		t.Fatalf("submit 1 (queued): %v", err)
	}
	start := time.Now()
	err = submit(2)
	waited := time.Since(start)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit 2: err = %v, want ErrOverloaded", err)
	}
	var ov *Overload
	if !errors.As(err, &ov) {
		t.Fatalf("submit 2: err %v is not an *Overload", err)
	}
	if ov.Reason != OverloadQueueWait {
		t.Fatalf("reason = %q, want %q", ov.Reason, OverloadQueueWait)
	}
	if ov.QueueDepth != 1 {
		t.Fatalf("queue depth = %d, want 1", ov.QueueDepth)
	}
	if waited > 5*time.Second {
		t.Fatalf("shed took %v — submission stalled", waited)
	}
	if got := e.sheds.counts().QueueWait; got != 1 {
		t.Fatalf("shed tally queue_wait = %d, want 1", got)
	}

	close(release)
	done.Wait()
	for idx, err := range outcomes {
		if err != nil {
			t.Fatalf("frame %d: %v", idx, err)
		}
	}
}

// TestSubmitInflightCapSheds: MaxInflight rejects immediately — no
// queue-wait sleep — once that many frames are admitted and unfinished.
func TestSubmitInflightCapSheds(t *testing.T) {
	leakCheck(t)
	cfg := testConfig(1)
	cfg.Queue = 4
	cfg.MaxInflight = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	entered, release := stallHook(t)

	ctx := context.Background()
	outs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		o := e.EncodeEach(ctx, testPayloads(1))
		outs <- o[0].Err
	}()
	<-entered // one frame admitted and wedged

	o := e.EncodeEach(ctx, testPayloads(1))
	var ov *Overload
	if !errors.As(o[0].Err, &ov) || ov.Reason != OverloadInflight {
		t.Fatalf("second frame: err = %v, want *Overload(inflight)", o[0].Err)
	}
	if got := e.sheds.counts().Inflight; got == 0 {
		t.Fatal("inflight shed not tallied")
	}

	close(release)
	wg.Wait()
	if err := <-outs; err != nil {
		t.Fatalf("first frame: %v", err)
	}
}

// TestAbandonedWorkerCapSheds: after MaxAbandoned frames have been
// abandoned to their timeouts (their goroutines still running), further
// frames shed with *Overload(abandoned_workers) instead of spawning more;
// once the stuck goroutines finish, the tally returns to zero.
func TestAbandonedWorkerCapSheds(t *testing.T) {
	leakCheck(t)
	cfg := testConfig(1)
	cfg.Queue = 4
	cfg.FrameTimeout = 30 * time.Millisecond
	cfg.MaxAbandoned = 2
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	_, release := stallHook(t)

	outs := e.EncodeEach(context.Background(), testPayloads(3))
	timeouts, overloads := 0, 0
	for _, o := range outs {
		switch {
		case errors.Is(o.Err, ErrFrameTimeout):
			timeouts++
		case errors.Is(o.Err, ErrOverloaded):
			overloads++
			var ov *Overload
			if !errors.As(o.Err, &ov) || ov.Reason != OverloadAbandoned {
				t.Fatalf("overload reason: %v", o.Err)
			}
		default:
			t.Fatalf("unexpected outcome: %v", o.Err)
		}
	}
	if timeouts != 2 || overloads != 1 {
		t.Fatalf("timeouts=%d overloads=%d, want 2 and 1", timeouts, overloads)
	}
	if got := e.abandoned.Load(); got != 2 {
		t.Fatalf("abandoned tally = %d, want 2", got)
	}
	if e.Health() != Degraded {
		t.Fatalf("health with abandoned workers = %s, want degraded", e.Health())
	}

	close(release)
	waitFor(t, "abandoned workers to retire", func() bool { return e.abandoned.Load() == 0 })
}

// TestSubmitBlockingContractPreserved: without MaxQueueWait/MaxInflight
// the original backpressure semantics hold — a submission blocks until
// capacity frees rather than shedding.
func TestSubmitBlockingContractPreserved(t *testing.T) {
	leakCheck(t)
	cfg := testConfig(1)
	cfg.Queue = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	entered, release := stallHook(t)

	var outs []EncodeOutcome
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// 3 frames through a 1-worker/1-slot engine: the third submit must
		// block (not shed) until the wedge lifts.
		outs = e.EncodeEach(context.Background(), testPayloads(3))
	}()
	<-entered
	time.Sleep(50 * time.Millisecond) // give the third submit time to park
	close(release)
	wg.Wait()
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("frame %d: %v — blocking contract should never shed", i, o.Err)
		}
	}
}

// TestOverloadErrorShape: the Overload error formats its detail and
// unwraps to ErrOverloaded.
func TestOverloadErrorShape(t *testing.T) {
	ov := &Overload{Reason: OverloadQueueWait, QueueDepth: 7, Inflight: 9, Wait: 20 * time.Millisecond}
	if !errors.Is(ov, ErrOverloaded) {
		t.Fatal("Overload must unwrap to ErrOverloaded")
	}
	msg := ov.Error()
	for _, want := range []string{"queue_wait", "20ms", "7", "9"} {
		if !containsStr(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
