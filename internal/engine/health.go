package engine

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"sledzig/internal/obs"
)

// HealthState is the engine's coarse operating condition, the signal a
// gateway tier polls to steer load between backends.
type HealthState string

const (
	// Healthy: accepting work, breaker closed, no recent sheds, no
	// abandoned workers.
	Healthy HealthState = "healthy"
	// Degraded: still accepting, but the breaker is open/half-open, frames
	// were shed within the last shedDegradeWindow, or timeout-abandoned
	// workers are outstanding. Callers should prefer another backend.
	Degraded HealthState = "degraded"
	// Draining: Drain is in progress; every submission fails ErrDraining.
	Draining HealthState = "draining"
	// Closed: the engine was closed or fully drained.
	Closed HealthState = "closed"
)

// healthRank orders states worst-last for aggregation and exports the
// engine.health.state gauge encoding (healthy=0 … closed=3).
func healthRank(s HealthState) int {
	switch s {
	case Degraded:
		return 1
	case Draining:
		return 2
	case Closed:
		return 3
	default:
		return 0
	}
}

// shedDegradeWindow is how long after the most recent shed the engine keeps
// reporting Degraded. Sheds are bursty; a 5s memory gives pollers on a
// 1–2s cadence a reliable view without pinning Degraded forever.
const shedDegradeWindow = 5 * time.Second

// HealthSnapshot is one engine's health report, the JSON element served at
// /debug/health.
type HealthSnapshot struct {
	ID        uint64      `json:"id"`
	Codec     string      `json:"codec"`
	State     HealthState `json:"state"`
	Breaker   string      `json:"breaker"`
	Workers   int         `json:"workers"`
	Queue     int         `json:"queue_depth"`
	QueueCap  int         `json:"queue_cap"`
	Inflight  int         `json:"inflight"`
	Abandoned int         `json:"abandoned_workers"`
	Shed      ShedCounts  `json:"shed"`
	// DrainFlushed/DrainShed report the last Drain's disposition (zero
	// until a drain runs).
	DrainFlushed uint64 `json:"drain_flushed"`
	DrainShed    uint64 `json:"drain_shed"`
}

// codecName labels the engine for health output.
func (e *Engine) codecName() string {
	if e.cfg.generic() {
		return e.cfg.Codec
	}
	return codecSledZig
}

// Report computes the engine's current health snapshot.
func (e *Engine) Report() HealthSnapshot {
	s := HealthSnapshot{
		ID:           e.id,
		Codec:        e.codecName(),
		Breaker:      breakerStateName(e.breaker.State()),
		Workers:      e.cfg.Workers,
		Queue:        len(e.jobs),
		QueueCap:     cap(e.jobs),
		Inflight:     int(e.inflight.Load()),
		Abandoned:    int(e.abandoned.Load()),
		Shed:         e.sheds.counts(),
		DrainFlushed: e.drainFlushed.Load(),
		DrainShed:    e.drainShedN.Load(),
	}
	s.State = e.healthState()
	return s
}

// Health returns just the state; Report carries the full detail.
func (e *Engine) Health() HealthState { return e.healthState() }

func (e *Engine) healthState() HealthState {
	switch e.state.Load() {
	case admitClosed:
		return Closed
	case admitDraining:
		return Draining
	}
	if e.breaker.State() != breakerClosed {
		return Degraded
	}
	if e.abandoned.Load() > 0 {
		return Degraded
	}
	if last := e.lastShedNS.Load(); last != 0 &&
		e.now().UnixNano()-last < int64(shedDegradeWindow) {
		return Degraded
	}
	return Healthy
}

// Process-wide registry of live engines, the backing store for
// /debug/health and the engine.health.state gauge. New registers, Close
// and Drain unregister.
var (
	liveMu      sync.Mutex
	liveEngines = map[uint64]*Engine{}
	liveNextID  uint64
)

func registerEngine(e *Engine) {
	liveMu.Lock()
	liveNextID++
	e.id = liveNextID
	liveEngines[e.id] = e
	liveMu.Unlock()
	publishHealthGauge()
}

func unregisterEngine(e *Engine) {
	liveMu.Lock()
	delete(liveEngines, e.id)
	liveMu.Unlock()
	publishHealthGauge()
}

func snapshotEngines() []*Engine {
	liveMu.Lock()
	defer liveMu.Unlock()
	out := make([]*Engine, 0, len(liveEngines))
	for _, e := range liveEngines {
		out = append(out, e)
	}
	return out
}

// publishHealthGauge re-exports the worst live engine's health rank as the
// engine.health.state gauge (0 healthy, 1 degraded, 2 draining, 3 closed;
// 0 with no live engines). Called on every transition that can change the
// aggregate: register/unregister, sheds, abandonment changes, drain
// progress, breaker trips.
func publishHealthGauge() {
	worst := 0
	for _, e := range snapshotEngines() {
		if r := healthRank(e.healthState()); r > worst {
			worst = r
		}
	}
	metrics().healthState.Set(float64(worst))
}

// healthHandler serves /debug/health: a JSON document with the aggregate
// state and one snapshot per live engine, ordered by engine ID.
func healthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		engines := snapshotEngines()
		sort.Slice(engines, func(i, j int) bool { return engines[i].id < engines[j].id })
		doc := struct {
			State   HealthState      `json:"state"`
			Engines []HealthSnapshot `json:"engines"`
		}{State: Healthy, Engines: make([]HealthSnapshot, 0, len(engines))}
		for _, e := range engines {
			s := e.Report()
			if healthRank(s.State) > healthRank(doc.State) {
				doc.State = s.State
			}
			doc.Engines = append(doc.Engines, s)
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}

func init() {
	obs.RegisterDebugHandler("/debug/health", healthHandler())
}
