package engine

import (
	"context"
	"errors"
	"time"
)

// ErrDraining is returned by submissions while Drain is flushing in-flight
// work. Unlike ErrOverloaded it is terminal for this engine: the caller
// should fail over, not retry.
var ErrDraining = errors.New("engine: draining")

// Admission states, held in Engine.state. Transitions only move forward:
// accepting -> draining -> closed (Close jumps straight to closed).
const (
	admitAccepting int32 = iota
	admitDraining
	admitClosed
)

// DrainReport is Drain's account of how the in-flight work ended.
type DrainReport struct {
	// Flushed frames completed normally (delivered a result or a per-frame
	// error) between the drain starting and the engine closing.
	Flushed uint64 `json:"flushed"`
	// Shed frames were still queued at the deadline and were handed back
	// to their callers with ErrDraining instead of being run.
	Shed uint64 `json:"shed"`
	// Abandoned frames were still on a worker (or otherwise admitted and
	// unfinished) when the deadline forced the engine shut.
	Abandoned int `json:"abandoned"`
	// Clean is true when every admitted frame flushed before the deadline.
	Clean bool `json:"clean"`
}

// Drain stops admission and flushes in-flight work, bounded by ctx. New
// submissions fail immediately with ErrDraining. If every admitted frame
// completes before ctx expires the drain is clean; otherwise queued frames
// are handed back to their callers as ErrDraining outcomes and the report
// counts what was flushed, shed, and abandoned. The engine is closed either
// way — Drain replaces the all-or-nothing Close for shutdown paths that
// need per-frame accounting (a gateway backend catching SIGTERM).
//
// Safe to call concurrently and more than once: one caller performs the
// drain, the rest observe the closed state and return immediately.
func (e *Engine) Drain(ctx context.Context) DrainReport {
	if !e.state.CompareAndSwap(admitAccepting, admitDraining) {
		// Already draining or closed. Wait for the first drainer (or Close)
		// to finish flushing, then report the terminal counters.
		select {
		case <-e.drained:
		case <-ctx.Done():
		}
		e.wgWaitBounded(ctx)
		return e.drainReport()
	}
	metrics().drains.Inc()
	publishHealthGauge()

	// Admission is stopped; in-flight frames release their reservation as
	// they finish. If none were in flight the drain completes immediately.
	if e.inflight.Load() == 0 {
		e.drainOnce.Do(func() { close(e.drained) })
	}
	clean := false
	// Check the drained signal before racing it against the deadline: a
	// drain that is already complete must be clean even if ctx expired.
	select {
	case <-e.drained:
		clean = true
	default:
		select {
		case <-e.drained:
			clean = true
		case <-ctx.Done():
		}
	}
	if clean {
		// No admitted work remains: no submitter holds a reservation, so no
		// goroutine is blocked sending on e.jobs, and the plain lock in
		// closeNow cannot deadlock.
		e.closeNow()
	} else {
		// Deadline hit with work still admitted. Shed everything queued —
		// delivering ErrDraining per frame — and close the channel while
		// keeping the queue moving so blocked submitters always progress.
		e.shedQueued.Store(true)
		e.closeShedding()
	}
	e.wgWaitBounded(ctx)
	e.state.Store(admitClosed)
	unregisterEngine(e)
	return e.drainReport()
}

func (e *Engine) drainReport() DrainReport {
	shed := e.drainShedN.Load()
	abandoned := int(e.inflight.Load())
	if abandoned < 0 {
		abandoned = 0
	}
	return DrainReport{
		Flushed:   e.drainFlushed.Load(),
		Shed:      shed,
		Abandoned: abandoned,
		Clean:     shed == 0 && abandoned == 0,
	}
}

// wgWaitBounded waits for the workers to exit, giving up when ctx dies so a
// Drain deadline is honoured even with a wedged worker (its goroutine is
// then reported via Abandoned and the leak detector).
func (e *Engine) wgWaitBounded(ctx context.Context) {
	done := make(chan struct{})
	go func() { e.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// shedQueue empties whatever is currently queued, failing each job with
// ErrDraining. Non-blocking: it returns as soon as the queue reads empty.
func (e *Engine) shedQueue() {
	m := metrics()
	for {
		select {
		case j, ok := <-e.jobs:
			if !ok {
				return
			}
			m.queueDepth.Add(-1)
			e.drainShedN.Add(1)
			e.noteShed(&e.sheds.draining, m.shedDraining)
			e.breaker.Release(j.probe)
			e.failJob(j, ErrDraining)
			e.releaseInflight()
		default:
			return
		}
	}
}

// closeNow closes the job channel exactly once, under the same lock
// submitters hold while sending. Only safe when no submitter can be blocked
// mid-send (inflight == 0 after admission stopped).
func (e *Engine) closeNow() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.jobs)
	}
	e.mu.Unlock()
}

// closeShedding closes the job channel while legacy blocking submitters may
// still be parked in `e.jobs <- j` holding e.mu.RLock. A plain Lock would
// deadlock against them, so it alternates TryLock attempts with shedQueue
// sweeps: every sweep frees queue capacity, letting a parked submitter
// complete its send and drop its read lock, until the write lock is
// acquired and the channel can be closed. A final sweep sheds anything that
// squeezed in between the last sweep and the close.
func (e *Engine) closeShedding() {
	for {
		if e.mu.TryLock() {
			if !e.closed {
				e.closed = true
				close(e.jobs)
			}
			e.mu.Unlock()
			e.shedQueue()
			return
		}
		e.shedQueue()
		time.Sleep(100 * time.Microsecond)
	}
}

// failJob delivers err to the job's caller and finishes its trace.
func (e *Engine) failJob(j *job, err error) {
	j.tr.Finish(err)
	if j.deliverDec != nil {
		j.deliverDec(j.idx, nil, err)
	} else if j.deliver != nil {
		j.deliver(j.idx, nil, err)
	}
	if j.done != nil {
		j.done.Done()
	}
}

// releaseInflight returns one admission reservation; the last one out after
// admission stops signals drain completion.
func (e *Engine) releaseInflight() {
	if e.inflight.Add(-1) == 0 && e.state.Load() != admitAccepting {
		e.drainOnce.Do(func() { close(e.drained) })
	}
}
