// Package engine runs the coexistence codecs across a shared pool of
// workers: batch and streaming front-ends over the shared plan cache,
// with bounded queues for backpressure and full pipeline instrumentation.
// It exists so callers that process many frames (sweeps, simulators,
// traffic generators) saturate every core without re-deriving plans or
// re-implementing fan-out. Each worker owns one encoder and one receiver
// (or one registry codec instance) whose scratch buffers are recycled
// frame to frame.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"sledzig/internal/codec"
	"sledzig/internal/core"
	"sledzig/internal/obs"
	"sledzig/internal/obs/trace"
	"sledzig/internal/wifi"
)

// ErrClosed is returned by batch and stream submissions after Close.
var ErrClosed = errors.New("engine closed")

// ErrFramePanic marks a frame whose encode or decode panicked inside a
// worker. The panic is converted into this per-frame error — the worker,
// its pool, and every sibling frame in the batch keep running.
var ErrFramePanic = errors.New("engine: frame worker panicked")

// ErrFrameTimeout marks a frame that exceeded Config.FrameTimeout. The
// worker abandons the stuck computation (it finishes in the background on
// private state) and continues with fresh encoder/decoder state.
var ErrFrameTimeout = errors.New("engine: frame deadline exceeded")

// Config selects the frame parameters (one engine encodes one
// plan — convention, mode, channel, seed) and the pool geometry.
type Config struct {
	Convention wifi.Convention
	Mode       wifi.Mode
	Channel    core.ZigBeeChannel
	// Seed is the scrambler seed (0 selects wifi.DefaultScramblerSeed).
	Seed uint8

	// Workers is the number of encoder goroutines; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Queue bounds the job queue and each Stream's output channel;
	// <= 0 selects 2*Workers. A full queue blocks submitters — that is
	// the backpressure contract.
	Queue int

	// FrameTimeout bounds each frame's encode or decode wall time; a frame
	// past the deadline fails with ErrFrameTimeout while its batch
	// siblings proceed. Zero disables the deadline (and its small
	// per-frame goroutine cost).
	FrameTimeout time.Duration
	// Resilient enables the receivers' graceful-degradation ladder
	// (preamble resync after a failed decode at sample 0).
	Resilient bool
	// WideIQ selects the complex128 reference receive pipeline; the zero
	// value decodes on the narrow complex64 path.
	WideIQ bool

	// Codec selects a registry backend ("ook-ctc", "ofdmfi", ...). Empty
	// or "sledzig" runs the specialized zero-allocation SledZig path;
	// any other name routes every frame through codec.New instances, one
	// per worker.
	Codec string
}

const codecSledZig = "sledzig"

// generic reports whether the engine routes through the codec registry
// instead of the specialized SledZig path.
func (c Config) generic() bool {
	return c.Codec != "" && c.Codec != codecSledZig
}

// codecParams maps the engine config onto codec-layer parameters.
func (c Config) codecParams() codec.Params {
	return codec.Params{
		Convention: c.Convention,
		Mode:       c.Mode,
		Channel:    c.Channel,
		Seed:       c.Seed,
		Resilient:  c.Resilient,
		WideIQ:     c.WideIQ,
	}
}

// withDefaults resolves the pool geometry.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 2 * c.Workers
	}
	return c
}

// job is one unit of work in flight — an encode (payload set) or a decode
// (waveform set). Exactly one deliver callback is non-nil and is called
// exactly once with the outcome, then done (when set) is released.
type job struct {
	payload  []byte
	waveform []complex128
	idx      int
	// ctx is the submitting call's context; a worker dequeuing a job whose
	// context already expired fails it immediately without touching the
	// PHY — cancellation drains a full queue at channel speed.
	ctx context.Context

	deliver    func(idx int, res *Product, err error)
	deliverDec func(idx int, res *DecodeResult, err error)
	done       *sync.WaitGroup

	// tr is the frame's trace (nil when tracing is off): started at
	// submission, marked Enqueued/Dequeued around the queue hop, threaded
	// into the PHY pipelines for stage spans, and finished by the worker.
	tr *trace.Frame
}

// Engine is a fixed pool of encoder workers sharing one cached plan.
// All methods are safe for concurrent use.
type Engine struct {
	cfg  Config
	plan *core.Plan

	// now is the engine's clock seam: batch latency metrics read time
	// through it so tests (and deterministic replay harnesses) can inject
	// a fake clock. New wires it to time.Now.
	now func() time.Time

	mu     sync.RWMutex // guards closed vs. sends on jobs
	closed bool
	jobs   chan *job
	wg     sync.WaitGroup
}

// New builds the engine: resolves the plan through the process-wide plan
// cache (so engines and plain Encoders with the same parameters share
// constraint state) and starts the workers. With a generic Config.Codec
// the plan is skipped and the backend is constructed once up front to
// surface configuration errors here rather than per frame.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	var plan *core.Plan
	if cfg.generic() {
		if _, err := codec.New(cfg.Codec, cfg.codecParams()); err != nil {
			return nil, err
		}
	} else {
		var err error
		plan, err = core.CachedPlan(cfg.Convention, cfg.Mode, cfg.Channel)
		if err != nil {
			return nil, err
		}
	}
	e := &Engine{
		cfg:  cfg,
		plan: plan,
		now:  time.Now,
		jobs: make(chan *job, cfg.Queue),
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker(i)
	}
	return e, nil
}

// Workers returns the resolved worker count.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Plan exposes the engine's shared, read-only plan (nil when a generic
// codec backend is selected — those own their pinning state).
func (e *Engine) Plan() *core.Plan { return e.plan }

// workerState is one worker's mutable PHY state. It is rebuilt whenever a
// frame is abandoned to a deadline: the timed-out goroutine still owns the
// old encoder/decoder buffers (or codec instance), so the worker must
// never touch them again.
type workerState struct {
	e   *Engine
	enc *core.Encoder
	dec *decoderState
	cdc codec.Codec // non-nil iff cfg.generic()
}

func (w *workerState) reset() {
	if w.e.cfg.generic() {
		// New validated this construction; a failure here means the
		// registry changed underneath a running engine — fail loudly.
		cdc, err := codec.New(w.e.cfg.Codec, w.e.cfg.codecParams())
		if err != nil {
			panic(fmt.Sprintf("engine: codec %q vanished mid-run: %v", w.e.cfg.Codec, err))
		}
		w.cdc = cdc
		return
	}
	w.enc = &core.Encoder{Plan: w.e.plan, Seed: w.e.cfg.Seed}
	w.dec = w.e.newDecoderState()
}

// setTrace threads a frame trace into a codec instance when it supports
// tracing; it must only be called while w still owns cdc.
func setTrace(cdc codec.Codec, tr *trace.Frame) {
	if t, ok := cdc.(codec.Traceable); ok {
		t.SetTrace(tr)
	}
}

// testFrameHook, when non-nil, runs inside the guarded section before each
// frame — the seam the robustness tests use to inject panics and stalls.
var testFrameHook func(j *job)

// runProtected executes fn, converting a panic into a typed per-frame
// error carrying the stack. This is the boundary that keeps one hostile
// frame from taking down the worker pool.
func runProtected(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			metrics().panics.Inc()
			err = fmt.Errorf("%w: %v\n%s", ErrFramePanic, r, debug.Stack())
		}
	}()
	return fn()
}

// guarded runs fn under panic recovery and, when configured, the per-frame
// deadline. On deadline or context expiry the computation is abandoned to
// finish on its own (it holds only w's old state, which reset replaces)
// and a typed error is returned promptly.
func (w *workerState) guarded(ctx context.Context, fn func() error) error {
	timeout := w.e.cfg.FrameTimeout
	if timeout <= 0 {
		return runProtected(fn)
	}
	done := make(chan error, 1)
	go func() { done <- runProtected(fn) }()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	select {
	case err := <-done:
		return err
	case <-timer.C:
		metrics().timeouts.Inc()
		w.reset()
		return fmt.Errorf("%w (%v)", ErrFrameTimeout, timeout)
	case <-cancel:
		w.reset()
		return ctx.Err()
	}
}

// Product is one encoded frame from either path; exactly one field is
// set. Core carries the specialized SledZig result, Generic the registry
// codec's rendered frame.
type Product struct {
	Core    *core.EncodeResult
	Generic *codec.Encoded
}

func (w *workerState) decodeFrame(j *job) (*DecodeResult, error) {
	if w.cdc != nil {
		return w.decodeGeneric(j)
	}
	var res *DecodeResult
	dec := w.dec
	// Thread the frame trace into the receive pipeline. On a timeout the
	// abandoned goroutine keeps this dec (reset replaces it), and the
	// finished frame drops its late span writes.
	dec.rxr.Trace = j.tr
	dec.dec.Trace = j.tr
	err := w.guarded(j.ctx, func() error {
		if h := testFrameHook; h != nil {
			h(j)
		}
		r, derr := dec.decodeOne(j.waveform)
		if derr != nil {
			return derr
		}
		res = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (w *workerState) decodeGeneric(j *job) (*DecodeResult, error) {
	var res *DecodeResult
	cdc := w.cdc
	setTrace(cdc, j.tr)
	err := w.guarded(j.ctx, func() error {
		if h := testFrameHook; h != nil {
			h(j)
		}
		dec, derr := cdc.Decode(j.waveform)
		if derr != nil {
			return derr
		}
		res = &DecodeResult{Payload: dec.Payload, Channel: dec.Channel, Codec: w.e.cfg.Codec}
		return nil
	})
	// On abandonment (timeout/cancel) reset already replaced w.cdc and the
	// stuck goroutine still owns cdc — leave its trace alone.
	if cdc == w.cdc {
		setTrace(cdc, nil)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (w *workerState) encodeFrame(j *job) (*Product, error) {
	if w.cdc != nil {
		return w.encodeGeneric(j)
	}
	res := new(core.EncodeResult)
	enc := w.enc
	enc.Trace = j.tr
	err := w.guarded(j.ctx, func() error {
		if h := testFrameHook; h != nil {
			h(j)
		}
		return enc.EncodeTo(j.payload, res)
	})
	if err != nil {
		return nil, err
	}
	return &Product{Core: res}, nil
}

func (w *workerState) encodeGeneric(j *job) (*Product, error) {
	var out *codec.Encoded
	cdc := w.cdc
	setTrace(cdc, j.tr)
	err := w.guarded(j.ctx, func() error {
		if h := testFrameHook; h != nil {
			h(j)
		}
		enc, cerr := cdc.Encode(j.payload)
		if cerr != nil {
			return cerr
		}
		out = enc
		return nil
	})
	if cdc == w.cdc {
		setTrace(cdc, nil)
	}
	if err != nil {
		return nil, err
	}
	return &Product{Generic: out}, nil
}

func (e *Engine) worker(i int) {
	defer e.wg.Done()
	m := metrics()
	encStage := m.workerStage(i, "encode")
	decStage := m.workerStage(i, "decode")
	w := &workerState{e: e}
	w.reset()
	for j := range e.jobs {
		m.queueDepth.Add(-1)
		j.tr.Dequeued(i)
		// A dead context fails the frame before any PHY work: cancellation
		// drains the queue promptly instead of decoding doomed frames.
		if j.ctx != nil {
			if err := j.ctx.Err(); err != nil {
				j.tr.Finish(err)
				if j.deliverDec != nil {
					j.deliverDec(j.idx, nil, err)
				} else {
					j.deliver(j.idx, nil, err)
				}
				if j.done != nil {
					j.done.Done()
				}
				continue
			}
		}
		if j.deliverDec != nil {
			t0 := decStage.Start()
			res, err := w.decodeFrame(j)
			e.finishFrame(m.decodeFrameLatency, j, err)
			if err != nil {
				decStage.Fail(t0)
				m.decodeFailures.Inc()
				j.deliverDec(j.idx, nil, err)
			} else {
				decStage.Done(t0, len(res.Payload))
				j.deliverDec(j.idx, res, nil)
			}
			if j.done != nil {
				j.done.Done()
			}
			continue
		}
		t0 := encStage.Start()
		res, err := w.encodeFrame(j)
		e.finishFrame(m.encodeFrameLatency, j, err)
		if err != nil {
			encStage.Fail(t0)
			m.failures.Inc()
			j.deliver(j.idx, nil, err)
		} else {
			encStage.Done(t0, len(j.payload))
			j.deliver(j.idx, res, nil)
		}
		if j.done != nil {
			j.done.Done()
		}
	}
}

// finishFrame closes the frame's trace with its outcome, observes the
// per-frame latency histogram (with an exemplar naming the trace when the
// frame was traced), and triggers a flight-recorder fault dump for
// contained panics and deadline abandonments. With tracing off the only
// cost beyond the existing histogram observation is two nil checks.
func (e *Engine) finishFrame(h *obs.Histogram, j *job, err error) {
	if j.tr != nil {
		j.tr.Finish(err)
		secs := float64(j.tr.TotalNS()) / 1e9
		h.ObserveExemplar(secs, j.tr.TraceIDHex(), e.now().UnixNano())
		if errors.Is(err, ErrFramePanic) {
			trace.Fault("frame_panic")
		} else if errors.Is(err, ErrFrameTimeout) {
			trace.Fault("frame_timeout")
		}
	}
}

// submit enqueues one job, honouring cancellation and close.
func (e *Engine) submit(ctx context.Context, j *job) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	select {
	case e.jobs <- j:
		metrics().queueDepth.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// EncodeOutcome is one frame's result in a per-frame batch: exactly one of
// Result and Err is set.
type EncodeOutcome struct {
	Result *Product
	Err    error
}

// EncodeEach encodes every payload across the pool and returns one outcome
// per input, in input order. A failing frame — invalid payload, panic
// converted by the worker, deadline — fails only its own slot; siblings
// complete normally. A cancelled context fails the unsubmitted and
// undecoded remainder with the context error but still waits for frames
// already on a worker.
func (e *Engine) EncodeEach(ctx context.Context, payloads [][]byte) []EncodeOutcome {
	m := metrics()
	start := e.now()
	outcomes := make([]EncodeOutcome, len(payloads))
	var done sync.WaitGroup
	deliver := func(idx int, res *Product, err error) {
		outcomes[idx] = EncodeOutcome{Result: res, Err: err}
	}
	for i, p := range payloads {
		done.Add(1)
		j := &job{payload: p, idx: i, ctx: ctx, deliver: deliver, done: &done, tr: trace.Start("encode")}
		j.tr.Enqueued()
		if err := e.submit(ctx, j); err != nil {
			j.tr.Finish(err)
			done.Done()
			for k := i; k < len(payloads); k++ {
				outcomes[k] = EncodeOutcome{Err: err}
			}
			break
		}
	}
	done.Wait()
	m.batchLatency.ObserveDuration(e.now().Sub(start))
	m.batches.Inc()
	ok := 0
	for _, o := range outcomes {
		if o.Err == nil {
			ok++
		}
	}
	m.frames.Add(uint64(ok))
	return outcomes
}

// EncodeBatch encodes every payload across the pool and returns the
// results in input order. The first error (by input order) is returned
// after all submitted work has drained; a cancelled context abandons the
// unsubmitted remainder but still waits for in-flight frames. Callers that
// need sibling results to survive one bad frame use EncodeEach.
func (e *Engine) EncodeBatch(ctx context.Context, payloads [][]byte) ([]*Product, error) {
	outcomes := e.EncodeEach(ctx, payloads)
	results := make([]*Product, len(outcomes))
	for i, o := range outcomes {
		if o.Err != nil {
			return nil, fmt.Errorf("engine: payload %d: %w", i, o.Err)
		}
		results[i] = o.Result
	}
	return results, nil
}

// Close stops accepting work, drains the queue, and waits for the workers
// to exit. Safe to call more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.jobs)
	}
	e.mu.Unlock()
	e.wg.Wait()
}
