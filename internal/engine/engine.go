// Package engine runs the coexistence codecs across a shared pool of
// workers: batch and streaming front-ends over the shared plan cache,
// with bounded queues for backpressure and full pipeline instrumentation.
// It exists so callers that process many frames (sweeps, simulators,
// traffic generators) saturate every core without re-deriving plans or
// re-implementing fan-out. Each worker owns one encoder and one receiver
// (or one registry codec instance) whose scratch buffers are recycled
// frame to frame.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sledzig/internal/codec"
	"sledzig/internal/core"
	"sledzig/internal/obs"
	"sledzig/internal/obs/trace"
	"sledzig/internal/wifi"
)

// ErrClosed is returned by batch and stream submissions after Close.
var ErrClosed = errors.New("engine closed")

// ErrFramePanic marks a frame whose encode or decode panicked inside a
// worker. The panic is converted into this per-frame error — the worker,
// its pool, and every sibling frame in the batch keep running.
var ErrFramePanic = errors.New("engine: frame worker panicked")

// ErrFrameTimeout marks a frame that exceeded Config.FrameTimeout. The
// worker abandons the stuck computation (it finishes in the background on
// private state) and continues with fresh encoder/decoder state.
var ErrFrameTimeout = errors.New("engine: frame deadline exceeded")

// Config selects the frame parameters (one engine encodes one
// plan — convention, mode, channel, seed) and the pool geometry.
type Config struct {
	Convention wifi.Convention
	Mode       wifi.Mode
	Channel    core.ZigBeeChannel
	// Seed is the scrambler seed (0 selects wifi.DefaultScramblerSeed).
	Seed uint8

	// Workers is the number of encoder goroutines; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Queue bounds the job queue and each Stream's output channel;
	// <= 0 selects 2*Workers. A full queue blocks submitters — that is
	// the backpressure contract.
	Queue int

	// FrameTimeout bounds each frame's encode or decode wall time; a frame
	// past the deadline fails with ErrFrameTimeout while its batch
	// siblings proceed. Zero disables the deadline (and its small
	// per-frame goroutine cost).
	FrameTimeout time.Duration

	// MaxQueueWait bounds how long a submission may wait for queue
	// capacity before being shed with a typed *Overload (ErrOverloaded).
	// Zero keeps the original blocking-backpressure contract: wait until
	// a worker frees capacity or the caller's context dies.
	MaxQueueWait time.Duration
	// MaxInflight caps admitted-but-unfinished frames across the queue
	// and the workers; beyond it submissions shed with ErrOverloaded.
	// <= 0 disables the cap.
	MaxInflight int
	// MaxAbandoned caps concurrently timeout-abandoned frame goroutines;
	// at the cap new frames shed with ErrOverloaded rather than risk
	// spawning another. 0 selects 16*Workers; negative disables the cap.
	MaxAbandoned int
	// Breaker configures the engine's circuit breaker; the zero value
	// disables it (see BreakerConfig).
	Breaker BreakerConfig
	// Resilient enables the receivers' graceful-degradation ladder
	// (preamble resync after a failed decode at sample 0).
	Resilient bool
	// WideIQ selects the complex128 reference receive pipeline; the zero
	// value decodes on the narrow complex64 path.
	WideIQ bool

	// Codec selects a registry backend ("ook-ctc", "ofdmfi", ...). Empty
	// or "sledzig" runs the specialized zero-allocation SledZig path;
	// any other name routes every frame through codec.New instances, one
	// per worker.
	Codec string
}

const codecSledZig = "sledzig"

// generic reports whether the engine routes through the codec registry
// instead of the specialized SledZig path.
func (c Config) generic() bool {
	return c.Codec != "" && c.Codec != codecSledZig
}

// codecParams maps the engine config onto codec-layer parameters.
func (c Config) codecParams() codec.Params {
	return codec.Params{
		Convention: c.Convention,
		Mode:       c.Mode,
		Channel:    c.Channel,
		Seed:       c.Seed,
		Resilient:  c.Resilient,
		WideIQ:     c.WideIQ,
	}
}

// withDefaults resolves the pool geometry.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 2 * c.Workers
	}
	return c
}

// job is one unit of work in flight — an encode (payload set) or a decode
// (waveform set). Exactly one deliver callback is non-nil and is called
// exactly once with the outcome, then done (when set) is released.
type job struct {
	payload  []byte
	waveform []complex128
	idx      int
	// ctx is the submitting call's context; a worker dequeuing a job whose
	// context already expired fails it immediately without touching the
	// PHY — cancellation drains a full queue at channel speed.
	ctx context.Context

	deliver    func(idx int, res *Product, err error)
	deliverDec func(idx int, res *DecodeResult, err error)
	done       *sync.WaitGroup

	// probe marks a frame admitted as a half-open circuit-breaker trial;
	// its outcome (or shed) must hand the probe slot back.
	probe bool

	// tr is the frame's trace (nil when tracing is off): started at
	// submission, marked Enqueued/Dequeued around the queue hop, threaded
	// into the PHY pipelines for stage spans, and finished by the worker.
	tr *trace.Frame
}

// Engine is a fixed pool of encoder workers sharing one cached plan.
// All methods are safe for concurrent use.
type Engine struct {
	cfg  Config
	plan *core.Plan
	// id is the engine's slot in the live-engine health registry.
	id uint64

	// now is the engine's clock seam: batch latency metrics, breaker
	// cooldowns, and health recency all read time through it so tests
	// (and deterministic replay harnesses) can inject a fake clock. New
	// wires it to time.Now.
	now func() time.Time

	// breaker is nil unless Config.Breaker enables it.
	breaker *breaker

	// state is the admission gate (accepting/draining/closed); inflight
	// counts admitted-but-unfinished frames (each submission reserves
	// before enqueueing, each outcome — delivered, shed, or skipped —
	// releases); abandoned counts live timeout-abandoned frame
	// goroutines; lastShedNS stamps the most recent shed decision for
	// health recency.
	state      atomic.Int32
	inflight   atomic.Int64
	abandoned  atomic.Int64
	lastShedNS atomic.Int64
	sheds      shedTally

	// drained closes (via drainOnce) when admission has stopped and the
	// inflight count reaches zero. shedQueued flips the workers into
	// shedding mode at a drain deadline; drainFlushed/drainShedN account
	// the drain's per-frame disposition.
	drained      chan struct{}
	drainOnce    sync.Once
	shedQueued   atomic.Bool
	drainFlushed atomic.Uint64
	drainShedN   atomic.Uint64

	mu     sync.RWMutex // guards closed vs. sends on jobs
	closed bool
	jobs   chan *job
	wg     sync.WaitGroup
}

// New builds the engine: resolves the plan through the process-wide plan
// cache (so engines and plain Encoders with the same parameters share
// constraint state) and starts the workers. With a generic Config.Codec
// the plan is skipped and the backend is constructed once up front to
// surface configuration errors here rather than per frame.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	var plan *core.Plan
	if cfg.generic() {
		if _, err := codec.New(cfg.Codec, cfg.codecParams()); err != nil {
			return nil, err
		}
	} else {
		var err error
		plan, err = core.CachedPlan(cfg.Convention, cfg.Mode, cfg.Channel)
		if err != nil {
			return nil, err
		}
	}
	e := &Engine{
		cfg:     cfg,
		plan:    plan,
		now:     time.Now,
		breaker: newBreaker(cfg.Breaker),
		drained: make(chan struct{}),
		jobs:    make(chan *job, cfg.Queue),
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker(i)
	}
	registerEngine(e)
	return e, nil
}

// Workers returns the resolved worker count.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Plan exposes the engine's shared, read-only plan (nil when a generic
// codec backend is selected — those own their pinning state).
func (e *Engine) Plan() *core.Plan { return e.plan }

// workerState is one worker's mutable PHY state. It is rebuilt whenever a
// frame is abandoned to a deadline: the timed-out goroutine still owns the
// old encoder/decoder buffers (or codec instance), so the worker must
// never touch them again.
type workerState struct {
	e   *Engine
	enc *core.Encoder
	dec *decoderState
	cdc codec.Codec // non-nil iff cfg.generic()
}

func (w *workerState) reset() {
	if w.e.cfg.generic() {
		// New validated this construction; a failure here means the
		// registry changed underneath a running engine — fail loudly.
		cdc, err := codec.New(w.e.cfg.Codec, w.e.cfg.codecParams())
		if err != nil {
			panic(fmt.Sprintf("engine: codec %q vanished mid-run: %v", w.e.cfg.Codec, err))
		}
		w.cdc = cdc
		return
	}
	w.enc = &core.Encoder{Plan: w.e.plan, Seed: w.e.cfg.Seed}
	w.dec = w.e.newDecoderState()
}

// setTrace threads a frame trace into a codec instance when it supports
// tracing; it must only be called while w still owns cdc.
func setTrace(cdc codec.Codec, tr *trace.Frame) {
	if t, ok := cdc.(codec.Traceable); ok {
		t.SetTrace(tr)
	}
}

// testFrameHook, when non-nil, runs inside the guarded section before each
// frame — the seam the robustness tests use to inject panics and stalls.
var testFrameHook func(j *job)

// FrameHookInfo describes the frame about to run when a process-wide
// frame hook (SetFrameHook) is installed.
type FrameHookInfo struct {
	// Codec is the engine's backend name ("sledzig", "ofdmfi", ...).
	Codec string
	// Decode is true for decode frames, false for encode.
	Decode bool
	// Index is the frame's slot in its batch.
	Index int
}

// frameHook is the process-wide fault-injection hook; atomic so harnesses
// can install and remove it while engines run.
var frameHook atomic.Pointer[func(FrameHookInfo)]

// SetFrameHook installs (nil removes) a process-wide hook that runs inside
// every frame's containment boundary, before the PHY work. It exists for
// fault-injection harnesses (cmd/chaos -overload) that need to drive panic
// and stall storms through the same recovery, timeout, breaker, and
// admission machinery real failures exercise. Not a production seam.
func SetFrameHook(h func(FrameHookInfo)) {
	if h == nil {
		frameHook.Store(nil)
		return
	}
	frameHook.Store(&h)
}

// strike runs the frame hooks for one frame; called inside the guarded
// section so an injected panic or stall is contained like a real one.
func (e *Engine) strike(j *job, decode bool) {
	if h := testFrameHook; h != nil {
		h(j)
	}
	if hp := frameHook.Load(); hp != nil {
		(*hp)(FrameHookInfo{Codec: e.codecName(), Decode: decode, Index: j.idx})
	}
}

// runProtected executes fn, converting a panic into a typed per-frame
// error carrying the stack. This is the boundary that keeps one hostile
// frame from taking down the worker pool.
func runProtected(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			metrics().panics.Inc()
			err = fmt.Errorf("%w: %v\n%s", ErrFramePanic, r, debug.Stack())
		}
	}()
	return fn()
}

// guarded runs fn under panic recovery and, when configured, the per-frame
// deadline. On deadline or context expiry the computation is abandoned to
// finish on its own (it holds only w's old state, which reset replaces)
// and a typed error is returned promptly. Abandoned goroutines are counted
// in the abandoned_workers gauge and capped by Config.MaxAbandoned: at the
// cap a new frame sheds with ErrOverloaded instead of risking yet another
// background goroutine.
func (w *workerState) guarded(ctx context.Context, fn func() error) error {
	e := w.e
	timeout := e.cfg.FrameTimeout
	if timeout <= 0 {
		return runProtected(fn)
	}
	if limit := e.abandonedCap(); limit > 0 && int(e.abandoned.Load()) >= limit {
		e.noteShed(&e.sheds.abandoned, metrics().shedAbandoned)
		return e.overload(OverloadAbandoned, 0)
	}
	// fate arbitrates the race between the frame finishing and the worker
	// abandoning it: whichever side loses its CAS settles the abandoned
	// tally, and a frame that finishes at the buzzer still wins — the
	// worker takes its real result instead of reporting a timeout.
	var fate atomic.Int32
	done := make(chan error, 1)
	go func() {
		err := runProtected(fn)
		if !fate.CompareAndSwap(frameRunning, frameFinished) {
			// The worker abandoned this frame; this goroutine was the
			// tallied abandoned worker and has now retired.
			e.abandonedDone()
		}
		done <- err
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	select {
	case err := <-done:
		return err
	case <-timer.C:
		if !e.abandonFrame(&fate) {
			return <-done
		}
		metrics().timeouts.Inc()
		w.reset()
		return fmt.Errorf("%w (%v)", ErrFrameTimeout, timeout)
	case <-cancel:
		if !e.abandonFrame(&fate) {
			return <-done
		}
		w.reset()
		return ctx.Err()
	}
}

// Product is one encoded frame from either path; exactly one field is
// set. Core carries the specialized SledZig result, Generic the registry
// codec's rendered frame.
type Product struct {
	Core    *core.EncodeResult
	Generic *codec.Encoded
}

func (w *workerState) decodeFrame(j *job) (*DecodeResult, error) {
	if w.cdc != nil {
		return w.decodeGeneric(j)
	}
	var res *DecodeResult
	dec := w.dec
	// Thread the frame trace into the receive pipeline. On a timeout the
	// abandoned goroutine keeps this dec (reset replaces it), and the
	// finished frame drops its late span writes.
	dec.rxr.Trace = j.tr
	dec.dec.Trace = j.tr
	err := w.guarded(j.ctx, func() error {
		w.e.strike(j, true)
		r, derr := dec.decodeOne(j.waveform)
		if derr != nil {
			return derr
		}
		res = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (w *workerState) decodeGeneric(j *job) (*DecodeResult, error) {
	var res *DecodeResult
	cdc := w.cdc
	setTrace(cdc, j.tr)
	err := w.guarded(j.ctx, func() error {
		w.e.strike(j, true)
		dec, derr := cdc.Decode(j.waveform)
		if derr != nil {
			return derr
		}
		res = &DecodeResult{Payload: dec.Payload, Channel: dec.Channel, Codec: w.e.cfg.Codec}
		return nil
	})
	// On abandonment (timeout/cancel) reset already replaced w.cdc and the
	// stuck goroutine still owns cdc — leave its trace alone.
	if cdc == w.cdc {
		setTrace(cdc, nil)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (w *workerState) encodeFrame(j *job) (*Product, error) {
	if w.cdc != nil {
		return w.encodeGeneric(j)
	}
	res := new(core.EncodeResult)
	enc := w.enc
	enc.Trace = j.tr
	err := w.guarded(j.ctx, func() error {
		w.e.strike(j, false)
		return enc.EncodeTo(j.payload, res)
	})
	if err != nil {
		return nil, err
	}
	return &Product{Core: res}, nil
}

func (w *workerState) encodeGeneric(j *job) (*Product, error) {
	var out *codec.Encoded
	cdc := w.cdc
	setTrace(cdc, j.tr)
	err := w.guarded(j.ctx, func() error {
		w.e.strike(j, false)
		enc, cerr := cdc.Encode(j.payload)
		if cerr != nil {
			return cerr
		}
		out = enc
		return nil
	})
	if cdc == w.cdc {
		setTrace(cdc, nil)
	}
	if err != nil {
		return nil, err
	}
	return &Product{Generic: out}, nil
}

func (e *Engine) worker(i int) {
	defer e.wg.Done()
	m := metrics()
	encStage := m.workerStage(i, "encode")
	decStage := m.workerStage(i, "decode")
	w := &workerState{e: e}
	w.reset()
	for j := range e.jobs {
		m.queueDepth.Add(-1)
		// At a drain deadline the workers stop running frames and hand
		// everything still queued back to its callers as ErrDraining.
		if e.shedQueued.Load() {
			e.drainShedN.Add(1)
			e.noteShed(&e.sheds.draining, m.shedDraining)
			e.breaker.Release(j.probe)
			e.failJob(j, ErrDraining)
			e.releaseInflight()
			continue
		}
		j.tr.Dequeued(i)
		// A dead context fails the frame before any PHY work: cancellation
		// drains the queue promptly instead of decoding doomed frames.
		if j.ctx != nil {
			if err := j.ctx.Err(); err != nil {
				e.breaker.Release(j.probe)
				e.failJob(j, err)
				e.releaseInflight()
				continue
			}
		}
		if j.deliverDec != nil {
			t0 := decStage.Start()
			res, err := w.decodeFrame(j)
			e.finishFrame(m.decodeFrameLatency, j, err)
			if err != nil {
				decStage.Fail(t0)
				m.decodeFailures.Inc()
				j.deliverDec(j.idx, nil, err)
			} else {
				decStage.Done(t0, len(res.Payload))
				j.deliverDec(j.idx, res, nil)
			}
			if j.done != nil {
				j.done.Done()
			}
			e.frameDone(j, err)
			continue
		}
		t0 := encStage.Start()
		res, err := w.encodeFrame(j)
		e.finishFrame(m.encodeFrameLatency, j, err)
		if err != nil {
			encStage.Fail(t0)
			m.failures.Inc()
			j.deliver(j.idx, nil, err)
		} else {
			encStage.Done(t0, len(j.payload))
			j.deliver(j.idx, res, nil)
		}
		if j.done != nil {
			j.done.Done()
		}
		e.frameDone(j, err)
	}
}

// frameDone settles one completed frame's reliability accounting: the
// breaker outcome, the drain flush tally, and the inflight reservation.
func (e *Engine) frameDone(j *job, err error) {
	if e.breaker.Record(e.now(), j.probe, err != nil) {
		publishHealthGauge()
	}
	if e.state.Load() == admitDraining {
		e.drainFlushed.Add(1)
	}
	e.releaseInflight()
}

// finishFrame closes the frame's trace with its outcome, observes the
// per-frame latency histogram (with an exemplar naming the trace when the
// frame was traced), and triggers a flight-recorder fault dump for
// contained panics and deadline abandonments. With tracing off the only
// cost beyond the existing histogram observation is two nil checks.
func (e *Engine) finishFrame(h *obs.Histogram, j *job, err error) {
	if j.tr != nil {
		j.tr.Finish(err)
		secs := float64(j.tr.TotalNS()) / 1e9
		h.ObserveExemplar(secs, j.tr.TraceIDHex(), e.now().UnixNano())
		if errors.Is(err, ErrFramePanic) {
			trace.Fault("frame_panic")
		} else if errors.Is(err, ErrFrameTimeout) {
			trace.Fault("frame_timeout")
		}
	}
}

// submit admits and enqueues one job. Admission runs the whole reliability
// ladder in order: closed/draining state, the abandoned-worker cap, the
// circuit breaker, the inflight cap, then the bounded queue wait — each
// stage sheds with its own typed error rather than stalling the caller.
func (e *Engine) submit(ctx context.Context, j *job) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	m := metrics()
	switch e.state.Load() {
	case admitClosed:
		return ErrClosed
	case admitDraining:
		e.noteShed(&e.sheds.draining, m.shedDraining)
		return ErrDraining
	}
	if limit := e.abandonedCap(); limit > 0 && int(e.abandoned.Load()) >= limit {
		e.noteShed(&e.sheds.abandoned, m.shedAbandoned)
		return e.overload(OverloadAbandoned, 0)
	}
	admit, probe := e.breaker.Allow(e.now())
	if !admit {
		e.noteShed(&e.sheds.circuit, m.shedCircuit)
		return fmt.Errorf("%w: codec %q failing fast", ErrCircuitOpen, e.codecName())
	}
	j.probe = probe
	// Reserve the inflight slot before the send: a worker finishing the
	// job must never release a reservation that was not yet taken, or the
	// drain-complete signal could fire with work still admitted.
	if limit := e.cfg.MaxInflight; limit > 0 {
		if nv := e.inflight.Add(1); int(nv) > limit {
			e.releaseInflight()
			e.breaker.Release(probe)
			e.noteShed(&e.sheds.inflight, m.shedInflight)
			return e.overload(OverloadInflight, 0)
		}
	} else {
		e.inflight.Add(1)
	}
	select {
	case e.jobs <- j:
		m.queueDepth.Add(1)
		return nil
	default:
	}
	if e.cfg.MaxQueueWait <= 0 {
		// Original backpressure contract: block until a worker frees
		// capacity or the caller's context dies.
		select {
		case e.jobs <- j:
			m.queueDepth.Add(1)
			return nil
		case <-ctx.Done():
			e.releaseInflight()
			e.breaker.Release(probe)
			return ctx.Err()
		}
	}
	start := e.now()
	timer := time.NewTimer(e.cfg.MaxQueueWait)
	defer timer.Stop()
	select {
	case e.jobs <- j:
		m.queueDepth.Add(1)
		return nil
	case <-timer.C:
		e.releaseInflight()
		e.breaker.Release(probe)
		e.noteShed(&e.sheds.queueWait, m.shedQueueWait)
		return e.overload(OverloadQueueWait, e.now().Sub(start))
	case <-ctx.Done():
		e.releaseInflight()
		e.breaker.Release(probe)
		return ctx.Err()
	}
}

// EncodeOutcome is one frame's result in a per-frame batch: exactly one of
// Result and Err is set.
type EncodeOutcome struct {
	Result *Product
	Err    error
}

// EncodeEach encodes every payload across the pool and returns one outcome
// per input, in input order. A failing frame — invalid payload, panic
// converted by the worker, deadline — fails only its own slot; siblings
// complete normally. A cancelled context fails the unsubmitted and
// undecoded remainder with the context error but still waits for frames
// already on a worker.
func (e *Engine) EncodeEach(ctx context.Context, payloads [][]byte) []EncodeOutcome {
	m := metrics()
	start := e.now()
	outcomes := make([]EncodeOutcome, len(payloads))
	var done sync.WaitGroup
	deliver := func(idx int, res *Product, err error) {
		outcomes[idx] = EncodeOutcome{Result: res, Err: err}
	}
	for i, p := range payloads {
		done.Add(1)
		j := &job{payload: p, idx: i, ctx: ctx, deliver: deliver, done: &done, tr: trace.Start("encode")}
		j.tr.Enqueued()
		if err := e.submit(ctx, j); err != nil {
			j.tr.Finish(err)
			done.Done()
			for k := i; k < len(payloads); k++ {
				outcomes[k] = EncodeOutcome{Err: err}
			}
			break
		}
	}
	done.Wait()
	m.batchLatency.ObserveDuration(e.now().Sub(start))
	m.batches.Inc()
	ok := 0
	for _, o := range outcomes {
		if o.Err == nil {
			ok++
		}
	}
	m.frames.Add(uint64(ok))
	return outcomes
}

// EncodeBatch encodes every payload across the pool and returns the
// results in input order. The first error (by input order) is returned
// after all submitted work has drained; a cancelled context abandons the
// unsubmitted remainder but still waits for in-flight frames. Callers that
// need sibling results to survive one bad frame use EncodeEach.
func (e *Engine) EncodeBatch(ctx context.Context, payloads [][]byte) ([]*Product, error) {
	outcomes := e.EncodeEach(ctx, payloads)
	results := make([]*Product, len(outcomes))
	for i, o := range outcomes {
		if o.Err != nil {
			return nil, fmt.Errorf("engine: payload %d: %w", i, o.Err)
		}
		results[i] = o.Result
	}
	return results, nil
}

// Close stops accepting work, runs everything already queued, and waits
// for the workers to exit. Safe to call more than once, and safe to mix
// with Drain (whichever wins shuts the engine; the other observes it).
// Shutdown paths that need a deadline and per-frame accounting use Drain.
func (e *Engine) Close() {
	e.closeNow()
	e.wg.Wait()
	e.state.Store(admitClosed)
	e.drainOnce.Do(func() { close(e.drained) })
	unregisterEngine(e)
}
