// Package engine runs the SledZig encoder and decoder across a shared pool
// of workers: batch and streaming front-ends over the shared plan cache,
// with bounded queues for backpressure and full pipeline instrumentation.
// It exists so callers that process many frames (sweeps, simulators,
// traffic generators) saturate every core without re-deriving plans or
// re-implementing fan-out. Each worker owns one encoder and one receiver
// whose scratch buffers are recycled frame to frame.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sledzig/internal/core"
	"sledzig/internal/wifi"
)

// ErrClosed is returned by batch and stream submissions after Close.
var ErrClosed = errors.New("engine closed")

// Config selects the frame parameters (one engine encodes one
// plan — convention, mode, channel, seed) and the pool geometry.
type Config struct {
	Convention wifi.Convention
	Mode       wifi.Mode
	Channel    core.ZigBeeChannel
	// Seed is the scrambler seed (0 selects wifi.DefaultScramblerSeed).
	Seed uint8

	// Workers is the number of encoder goroutines; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Queue bounds the job queue and each Stream's output channel;
	// <= 0 selects 2*Workers. A full queue blocks submitters — that is
	// the backpressure contract.
	Queue int
}

// withDefaults resolves the pool geometry.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 2 * c.Workers
	}
	return c
}

// job is one unit of work in flight — an encode (payload set) or a decode
// (waveform set). Exactly one deliver callback is non-nil and is called
// exactly once with the outcome, then done (when set) is released.
type job struct {
	payload  []byte
	waveform []complex128
	idx      int

	deliver    func(idx int, res *core.EncodeResult, err error)
	deliverDec func(idx int, res *DecodeResult, err error)
	done       *sync.WaitGroup
}

// Engine is a fixed pool of encoder workers sharing one cached plan.
// All methods are safe for concurrent use.
type Engine struct {
	cfg  Config
	plan *core.Plan

	mu     sync.RWMutex // guards closed vs. sends on jobs
	closed bool
	jobs   chan *job
	wg     sync.WaitGroup
}

// New builds the engine: resolves the plan through the process-wide plan
// cache (so engines and plain Encoders with the same parameters share
// constraint state) and starts the workers.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	plan, err := core.CachedPlan(cfg.Convention, cfg.Mode, cfg.Channel)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:  cfg,
		plan: plan,
		jobs: make(chan *job, cfg.Queue),
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker(i)
	}
	return e, nil
}

// Workers returns the resolved worker count.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Plan exposes the engine's shared, read-only plan.
func (e *Engine) Plan() *core.Plan { return e.plan }

func (e *Engine) worker(i int) {
	defer e.wg.Done()
	m := metrics()
	encStage := m.workerStage(i, "encode")
	decStage := m.workerStage(i, "decode")
	enc := &core.Encoder{Plan: e.plan, Seed: e.cfg.Seed}
	dec := e.newDecoderState()
	for j := range e.jobs {
		m.queueDepth.Add(-1)
		if j.deliverDec != nil {
			t0 := decStage.Start()
			res, err := dec.decodeOne(j.waveform)
			if err != nil {
				decStage.Fail(t0)
				m.decodeFailures.Inc()
				j.deliverDec(j.idx, nil, err)
			} else {
				decStage.Done(t0, len(res.Payload))
				j.deliverDec(j.idx, res, nil)
			}
			if j.done != nil {
				j.done.Done()
			}
			continue
		}
		t0 := encStage.Start()
		res := new(core.EncodeResult)
		err := enc.EncodeTo(j.payload, res)
		if err != nil {
			encStage.Fail(t0)
			m.failures.Inc()
			j.deliver(j.idx, nil, err)
		} else {
			encStage.Done(t0, len(j.payload))
			j.deliver(j.idx, res, nil)
		}
		if j.done != nil {
			j.done.Done()
		}
	}
}

// submit enqueues one job, honouring cancellation and close.
func (e *Engine) submit(ctx context.Context, j *job) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	select {
	case e.jobs <- j:
		metrics().queueDepth.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// EncodeBatch encodes every payload across the pool and returns the
// results in input order. The first error (by input order) is returned
// after all submitted work has drained; a cancelled context abandons the
// unsubmitted remainder but still waits for in-flight frames.
func (e *Engine) EncodeBatch(ctx context.Context, payloads [][]byte) ([]*core.EncodeResult, error) {
	m := metrics()
	start := time.Now()
	results := make([]*core.EncodeResult, len(payloads))
	errs := make([]error, len(payloads))
	var done sync.WaitGroup
	deliver := func(idx int, res *core.EncodeResult, err error) {
		results[idx] = res
		errs[idx] = err
	}
	var submitErr error
	for i, p := range payloads {
		done.Add(1)
		j := &job{payload: p, idx: i, deliver: deliver, done: &done}
		if err := e.submit(ctx, j); err != nil {
			done.Done()
			submitErr = err
			break
		}
	}
	done.Wait()
	m.batchLatency.ObserveDuration(time.Since(start))
	m.batches.Inc()
	if submitErr != nil {
		return nil, submitErr
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: payload %d: %w", i, err)
		}
	}
	m.frames.Add(uint64(len(payloads)))
	return results, nil
}

// Close stops accepting work, drains the queue, and waits for the workers
// to exit. Safe to call more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.jobs)
	}
	e.mu.Unlock()
	e.wg.Wait()
}
