package engine

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sledzig/internal/obs"
	"sledzig/internal/obs/trace"
)

// installTestTracer installs a retain-everything tracer for the test and
// restores the previous default at cleanup.
func installTestTracer(t *testing.T, cfg trace.Config) *trace.Tracer {
	t.Helper()
	old := trace.Default()
	tr := trace.New(cfg)
	trace.SetDefault(tr)
	t.Cleanup(func() { trace.SetDefault(old) })
	return tr
}

// spanNames flattens a snapshot's spans into a name set.
func spanNames(s *trace.Snapshot) map[string]bool {
	names := make(map[string]bool, len(s.Spans))
	for _, sp := range s.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestEngineTracePropagation runs encode and decode batches through the pool
// with tracing on and verifies every frame's trace made it through the
// worker boundary: queue-wait vs. service attribution, the worker index,
// and the pipeline stage spans recorded by the wifi and core layers.
func TestEngineTracePropagation(t *testing.T) {
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	// Waveforms are rendered before the tracer is installed so the retained
	// ring holds exactly the frames this test submits.
	payloads, waves := testWaveforms(t, e, 6)

	tr := installTestTracer(t, trace.Config{SampleEvery: 1, RetainedSize: 64})

	for i, o := range e.EncodeEach(context.Background(), payloads) {
		if o.Err != nil {
			t.Fatalf("EncodeEach frame %d: %v", i, o.Err)
		}
	}
	for i, o := range e.DecodeEach(context.Background(), waves) {
		if o.Err != nil {
			t.Fatalf("DecodeEach frame %d: %v", i, o.Err)
		}
	}

	snaps := tr.Retained()
	if len(snaps) != 2*len(payloads) {
		t.Fatalf("retained %d traces, want %d", len(snaps), 2*len(payloads))
	}
	var encodes, decodes int
	for _, s := range snaps {
		switch s.Kind {
		case "encode":
			encodes++
		case "decode":
			decodes++
		default:
			t.Fatalf("unexpected trace kind %q", s.Kind)
		}
		if s.TraceID == "" {
			t.Fatal("retained trace has empty trace ID")
		}
		if s.Retained != "head" {
			t.Fatalf("trace %s: retained reason %q, want \"head\"", s.TraceID, s.Retained)
		}
		if s.Worker < 0 || s.Worker >= e.Workers() {
			t.Fatalf("trace %s: worker %d outside pool of %d", s.TraceID, s.Worker, e.Workers())
		}
		if s.QueueWaitNS < 0 {
			t.Fatalf("trace %s: negative queue wait %d", s.TraceID, s.QueueWaitNS)
		}
		if s.ServiceNS <= 0 {
			t.Fatalf("trace %s: service time %d, want > 0", s.TraceID, s.ServiceNS)
		}
		if s.TotalNS < s.ServiceNS {
			t.Fatalf("trace %s: total %d < service %d", s.TraceID, s.TotalNS, s.ServiceNS)
		}
		names := spanNames(s)
		var want []string
		if s.Kind == "encode" {
			// The pool encodes to the codeword; waveform rendering (tx.*
			// spans) happens in the facade under its own "waveform" root.
			want = []string{"core.layout", "core.scramble", "core.solve", "core.verify"}
		} else {
			want = []string{"rx.signal", "rx.equalize", "rx.viterbi", "rx.descramble", "core.detect", "core.strip"}
		}
		for _, n := range want {
			if !names[n] {
				t.Fatalf("%s trace %s missing span %q (have %v)", s.Kind, s.TraceID, n, names)
			}
		}
	}
	if encodes != len(payloads) || decodes != len(waves) {
		t.Fatalf("retained %d encodes and %d decodes, want %d each", encodes, decodes, len(payloads))
	}

	// Per-symbol stages accumulate: the equalize span of a multi-symbol
	// frame must carry a count matching its occurrences.
	for _, s := range snaps {
		if s.Kind != "decode" {
			continue
		}
		for _, sp := range s.Spans {
			if sp.Name == "rx.equalize" && sp.Count < 1 {
				t.Fatalf("rx.equalize span has count %d", sp.Count)
			}
		}
	}
}

// TestEngineTraceExemplarsLinkLatencyHistograms checks the frame-latency
// histograms observe traced frames with exemplars carrying the trace ID.
func TestEngineTraceExemplarsLinkLatencyHistograms(t *testing.T) {
	installTestTracer(t, trace.Config{SampleEvery: 1})
	oldReg := obs.Default()
	reg := obs.New()
	obs.SetDefault(reg)
	t.Cleanup(func() { obs.SetDefault(oldReg) })

	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	payloads, waves := testWaveforms(t, e, 4)
	if _, err := e.EncodeBatch(context.Background(), payloads); err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	if _, err := e.DecodeBatch(context.Background(), waves); err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}

	snap := reg.Snapshot()
	for _, name := range []string{"engine.frame.encode.latency_seconds", "engine.frame.decode.latency_seconds"} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Fatalf("histogram %q missing from registry snapshot", name)
		}
		if h.Count == 0 {
			t.Fatalf("histogram %q observed no traced frames", name)
		}
		var exemplars int
		for _, b := range h.Buckets {
			if b.Exemplar != nil {
				if len(b.Exemplar.TraceID) != 16 {
					t.Fatalf("%s exemplar trace ID %q is not 16 hex digits", name, b.Exemplar.TraceID)
				}
				exemplars++
			}
		}
		if exemplars == 0 {
			t.Fatalf("histogram %q has no bucket exemplars", name)
		}
	}
}

// TestEngineTraceFaultDumpOnPanic injects a worker panic into one frame and
// verifies the victim's trace is retained with the error and the flight
// recorder dumped to the configured fault path.
func TestEngineTraceFaultDumpOnPanic(t *testing.T) {
	leakCheck(t)
	dumpPath := filepath.Join(t.TempDir(), "fault.json")
	tr := installTestTracer(t, trace.Config{FaultDumpPath: dumpPath})

	const victim = 3
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	_, waves := testWaveforms(t, e, 6)

	testFrameHook = func(j *job) {
		if j.idx == victim {
			panic("injected frame panic")
		}
	}
	defer func() { testFrameHook = nil }()

	outcomes := e.DecodeEach(context.Background(), waves)
	if !errors.Is(outcomes[victim].Err, ErrFramePanic) {
		t.Fatalf("victim frame: got %v, want ErrFramePanic", outcomes[victim].Err)
	}

	var victimSnap *trace.Snapshot
	for _, s := range tr.Retained() {
		if s.Error != "" {
			victimSnap = s
		}
	}
	if victimSnap == nil {
		t.Fatal("panicked frame was not retained")
	}
	if victimSnap.Retained != "error" {
		t.Fatalf("victim retained reason %q, want \"error\"", victimSnap.Retained)
	}
	if victimSnap.Kind != "decode" {
		t.Fatalf("victim trace kind %q, want decode", victimSnap.Kind)
	}

	raw, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatalf("fault dump not written: %v", err)
	}
	var dump trace.Dump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("fault dump is not valid JSON: %v", err)
	}
	if dump.Reason != "frame_panic" {
		t.Fatalf("dump reason %q, want frame_panic", dump.Reason)
	}
	if len(dump.Frames) == 0 {
		t.Fatal("fault dump carries no frames")
	}
}

// TestEngineTraceFaultDumpOnTimeout stalls one frame past the deadline and
// verifies the timeout is traced and dumped.
func TestEngineTraceFaultDumpOnTimeout(t *testing.T) {
	leakCheck(t)
	dumpPath := filepath.Join(t.TempDir(), "fault.json")
	tr := installTestTracer(t, trace.Config{FaultDumpPath: dumpPath})

	const victim = 2
	release := make(chan struct{})
	testFrameHook = func(j *job) {
		if j.idx == victim && j.deliverDec != nil {
			<-release
		}
	}
	defer func() { testFrameHook = nil }()

	cfg := testConfig(2)
	cfg.FrameTimeout = 150 * time.Millisecond
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	_, waves := testWaveforms(t, e, 4)

	outcomes := e.DecodeEach(context.Background(), waves)
	close(release)
	if !errors.Is(outcomes[victim].Err, ErrFrameTimeout) {
		t.Fatalf("stuck frame: got %v, want ErrFrameTimeout", outcomes[victim].Err)
	}

	var timedOut *trace.Snapshot
	for _, s := range tr.Retained() {
		if s.Error != "" {
			timedOut = s
		}
	}
	if timedOut == nil {
		t.Fatal("timed-out frame was not retained")
	}
	if time.Duration(timedOut.TotalNS) < cfg.FrameTimeout {
		t.Fatalf("timed-out frame total %v shorter than the %v deadline", time.Duration(timedOut.TotalNS), cfg.FrameTimeout)
	}

	raw, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatalf("fault dump not written: %v", err)
	}
	var dump trace.Dump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("fault dump is not valid JSON: %v", err)
	}
	if dump.Reason != "frame_timeout" {
		t.Fatalf("dump reason %q, want frame_timeout", dump.Reason)
	}
}

// TestEngineUntracedPathUnchanged runs batches with tracing off and checks
// the pool still works and records nothing — the disabled path must stay a
// nil check.
func TestEngineUntracedPathUnchanged(t *testing.T) {
	if trace.Default() != nil {
		t.Fatal("test requires tracing off at entry")
	}
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	payloads, waves := testWaveforms(t, e, 3)
	res, err := e.DecodeBatch(context.Background(), waves)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	for i, r := range res {
		if string(r.Payload) != string(payloads[i]) {
			t.Fatalf("frame %d decoded wrong payload", i)
		}
	}
}
