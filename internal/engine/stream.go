package engine

import (
	"context"
	"sync"

	"sledzig/internal/obs/trace"
)

// StreamResult is one streamed encode outcome. Index is the zero-based
// position of the payload in the input stream.
type StreamResult struct {
	Index  int
	Result *Product
	Err    error
}

// Stream encodes payloads read from in across the pool, delivering results
// on the returned channel (buffered to Config.Queue). Results carry the
// input index; with more than one worker the delivery order is
// unspecified. The output channel is closed once every accepted input has
// been delivered, after in closes or ctx is cancelled. Both queues are
// bounded: a stalled consumer blocks the workers, a full job queue blocks
// the reader — backpressure propagates to the producer instead of
// buffering unboundedly.
func (e *Engine) Stream(ctx context.Context, in <-chan []byte) <-chan StreamResult {
	out := make(chan StreamResult, e.cfg.Queue)
	go func() {
		defer close(out)
		var inflight sync.WaitGroup
		deliver := func(idx int, res *Product, err error) {
			select {
			case out <- StreamResult{Index: idx, Result: res, Err: err}:
			case <-ctx.Done():
			}
			inflight.Done()
		}
		idx := 0
	feed:
		for {
			select {
			case <-ctx.Done():
				break feed
			case p, ok := <-in:
				if !ok {
					break feed
				}
				inflight.Add(1)
				j := &job{payload: p, idx: idx, ctx: ctx, deliver: deliver, tr: trace.Start("encode")}
				j.tr.Enqueued()
				if err := e.submit(ctx, j); err != nil {
					j.tr.Finish(err)
					inflight.Done()
					select {
					case out <- StreamResult{Index: idx, Err: err}:
					case <-ctx.Done():
					}
					break feed
				}
				idx++
			}
		}
		inflight.Wait()
	}()
	return out
}
