package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// leakCheck records the goroutine count and, at cleanup, waits for it to
// settle back. Engine goroutines exit on Close; anything still alive after
// the grace period is a leak.
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d > %d at start\n%s", runtime.NumGoroutine(), base, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// TestStreamCancelExitsPromptly cancels an encode stream whose producer
// never closes its channel: the output must still close and no goroutine
// may outlive the engine.
func TestStreamCancelExitsPromptly(t *testing.T) {
	leakCheck(t)
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan []byte) // never closed by the producer
	payloads := testPayloads(4)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return
			case in <- payloads[i%len(payloads)]:
			}
		}
	}()
	out := e.Stream(ctx, in)
	// Take a couple of results, then cancel mid-flight.
	for i := 0; i < 2; i++ {
		if _, ok := <-out; !ok {
			t.Fatal("stream closed before cancellation")
		}
	}
	cancel()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				return // closed promptly — success
			}
		case <-deadline:
			t.Fatal("stream did not close after cancellation")
		}
	}
}

// TestDecodeStreamCancelUnderFullBackpressure cancels a decode stream
// whose consumer never reads a single result: every queue in the pipeline
// is saturated, and cancellation must still unwind producer, feeder and
// workers without deadlock.
func TestDecodeStreamCancelUnderFullBackpressure(t *testing.T) {
	leakCheck(t)
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	_, waves := testWaveforms(t, e, 2)

	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan []complex128)
	producerDone := make(chan struct{})
	go func() {
		defer close(producerDone)
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return
			case in <- waves[i%len(waves)]:
			}
		}
	}()
	out := e.DecodeStream(ctx, in)
	// Let the queues fill: nobody reads out.
	time.Sleep(200 * time.Millisecond)
	cancel()

	select {
	case <-producerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("producer still blocked after cancellation")
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("decode stream did not close after cancellation")
		}
	}
}

// TestBatchCancellationFailsQueuedFramesPromptly cancels a large decode
// batch mid-flight on a single worker: the batch must return the context
// error (queued frames fail without being decoded) and the engine must
// stay serviceable.
func TestBatchCancellationFailsQueuedFramesPromptly(t *testing.T) {
	leakCheck(t)
	e, err := New(testConfig(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	payloads, waves := testWaveforms(t, e, 2)

	big := make([][]complex128, 200)
	for i := range big {
		big[i] = waves[i%len(waves)]
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	outcomes := e.DecodeEach(ctx, big)
	cancelled := 0
	for _, o := range outcomes {
		if errors.Is(o.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Skip("batch finished before cancellation landed; timing too fast to observe")
	}
	// The engine must still decode cleanly after the cancelled batch.
	res, err := e.DecodeBatch(context.Background(), waves)
	if err != nil {
		t.Fatalf("engine unusable after cancelled batch: %v", err)
	}
	if string(res[0].Payload) != string(payloads[0]) {
		t.Fatal("post-cancellation decode returned wrong payload")
	}
}

// TestWorkerPanicFailsOnlyItsFrame injects a panic into exactly one frame
// of a batch: that frame must fail with ErrFramePanic, every sibling must
// decode, and the pool must survive for the next batch.
func TestWorkerPanicFailsOnlyItsFrame(t *testing.T) {
	leakCheck(t)
	const victim = 3
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	payloads, waves := testWaveforms(t, e, 8)

	testFrameHook = func(j *job) {
		if j.idx == victim {
			panic("injected frame panic")
		}
	}
	defer func() { testFrameHook = nil }()

	outcomes := e.DecodeEach(context.Background(), waves)
	for i, o := range outcomes {
		if i == victim {
			if !errors.Is(o.Err, ErrFramePanic) {
				t.Fatalf("victim frame: got %v, want ErrFramePanic", o.Err)
			}
			continue
		}
		if o.Err != nil {
			t.Fatalf("sibling frame %d failed: %v", i, o.Err)
		}
		if string(o.Result.Payload) != string(payloads[i]) {
			t.Fatalf("sibling frame %d decoded wrong payload", i)
		}
	}
	// Encode path gets the same guarantee.
	encOutcomes := e.EncodeEach(context.Background(), payloads)
	for i, o := range encOutcomes {
		if i == victim {
			if !errors.Is(o.Err, ErrFramePanic) {
				t.Fatalf("encode victim: got %v, want ErrFramePanic", o.Err)
			}
			continue
		}
		if o.Err != nil {
			t.Fatalf("encode sibling %d failed: %v", i, o.Err)
		}
	}
}

// TestFrameTimeoutAbandonsStuckFrame stalls one frame well past the
// configured deadline: it must fail with ErrFrameTimeout while siblings
// decode, and the worker must continue on fresh state.
func TestFrameTimeoutAbandonsStuckFrame(t *testing.T) {
	leakCheck(t)
	const victim = 2
	release := make(chan struct{})
	testFrameHook = func(j *job) {
		if j.idx == victim && j.deliverDec != nil {
			<-release
		}
	}
	defer func() { testFrameHook = nil }()

	cfg := testConfig(2)
	cfg.FrameTimeout = 150 * time.Millisecond
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	payloads, waves := testWaveforms(t, e, 6)

	outcomes := e.DecodeEach(context.Background(), waves)
	close(release) // let the abandoned goroutine finish before leak check
	for i, o := range outcomes {
		if i == victim {
			if !errors.Is(o.Err, ErrFrameTimeout) {
				t.Fatalf("stuck frame: got %v, want ErrFrameTimeout", o.Err)
			}
			continue
		}
		if o.Err != nil {
			t.Fatalf("sibling frame %d failed: %v", i, o.Err)
		}
		if string(o.Result.Payload) != string(payloads[i]) {
			t.Fatalf("sibling frame %d decoded wrong payload", i)
		}
	}
}
