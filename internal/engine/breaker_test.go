package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// bclock is a manually advanced clock for driving breaker transitions.
type bclock struct {
	base time.Time
	off  atomic.Int64
}

func newBClock() *bclock { return &bclock{base: time.Unix(1_700_000_000, 0)} }

func (c *bclock) now() time.Time { return c.base.Add(time.Duration(c.off.Load())) }

func (c *bclock) advance(d time.Duration) { c.off.Add(int64(d)) }

func testBreakerConfig() BreakerConfig {
	return BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Second, Probes: 2}
}

// TestBreakerTripsAtFailureRate: the breaker stays closed below
// MinSamples, then opens as soon as the windowed failure rate reaches the
// threshold.
func TestBreakerTripsAtFailureRate(t *testing.T) {
	clk := newBClock()
	b := newBreaker(testBreakerConfig())
	if admit, _ := b.Allow(clk.now()); !admit {
		t.Fatal("closed breaker must admit")
	}
	b.Record(clk.now(), false, true) // 1 failure, below MinSamples
	if b.State() != breakerClosed {
		t.Fatalf("state after 1 sample = %s, want closed", breakerStateName(b.State()))
	}
	b.Record(clk.now(), false, true) // 2/2 failed >= 0.5
	if b.State() != breakerOpen {
		t.Fatalf("state after 2 failures = %s, want open", breakerStateName(b.State()))
	}
	if admit, _ := b.Allow(clk.now()); admit {
		t.Fatal("open breaker must not admit inside cooldown")
	}
}

// TestBreakerSuccessesKeepItClosed: a window dominated by successes never
// trips even past MinSamples.
func TestBreakerSuccessesKeepItClosed(t *testing.T) {
	clk := newBClock()
	b := newBreaker(testBreakerConfig())
	for i := 0; i < 10; i++ {
		b.Record(clk.now(), false, i%4 == 3) // 25% failure rate < 0.5
		if b.State() != breakerClosed {
			t.Fatalf("tripped at sample %d with 25%% failures", i)
		}
	}
}

// TestBreakerHalfOpenProbesAndReclose walks the full recovery arc:
// open -> (cooldown) -> half-open with a bounded probe quota -> closed
// after Probes consecutive successes, with the window reset.
func TestBreakerHalfOpenProbesAndReclose(t *testing.T) {
	clk := newBClock()
	b := newBreaker(testBreakerConfig())
	b.Record(clk.now(), false, true)
	b.Record(clk.now(), false, true)
	if b.State() != breakerOpen {
		t.Fatal("breaker should be open")
	}
	clk.advance(time.Second + time.Millisecond)
	admit1, probe1 := b.Allow(clk.now())
	if !admit1 || !probe1 {
		t.Fatalf("first post-cooldown Allow = (%v, %v), want probe admit", admit1, probe1)
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state = %s, want half-open", breakerStateName(b.State()))
	}
	admit2, probe2 := b.Allow(clk.now())
	if !admit2 || !probe2 {
		t.Fatal("second probe should be admitted (Probes=2)")
	}
	if admit3, _ := b.Allow(clk.now()); admit3 {
		t.Fatal("third concurrent probe must be rejected")
	}
	b.Record(clk.now(), true, false)
	if b.State() != breakerHalfOpen {
		t.Fatal("one good probe of two must not re-close yet")
	}
	if !b.Record(clk.now(), true, false) {
		t.Fatal("re-close transition should report a state change")
	}
	if b.State() != breakerClosed {
		t.Fatalf("state = %s, want closed after %d good probes", breakerStateName(b.State()), 2)
	}
	// The window was reset: one new failure must not re-trip instantly.
	b.Record(clk.now(), false, true)
	if b.State() != breakerClosed {
		t.Fatal("window must reset on re-close")
	}
}

// TestBreakerHalfOpenProbeFailureReopens: one failed probe re-opens the
// breaker and restarts the cooldown from that moment.
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newBClock()
	b := newBreaker(testBreakerConfig())
	b.Record(clk.now(), false, true)
	b.Record(clk.now(), false, true)
	clk.advance(time.Second + time.Millisecond)
	if admit, probe := b.Allow(clk.now()); !admit || !probe {
		t.Fatal("expected a half-open probe")
	}
	b.Record(clk.now(), true, true)
	if b.State() != breakerOpen {
		t.Fatalf("state = %s, want open after failed probe", breakerStateName(b.State()))
	}
	if admit, _ := b.Allow(clk.now()); admit {
		t.Fatal("cooldown must restart after a failed probe")
	}
	clk.advance(time.Second + time.Millisecond)
	if admit, probe := b.Allow(clk.now()); !admit || !probe {
		t.Fatal("second cooldown must admit a new probe")
	}
}

// TestBreakerIgnoresLateNonProbeResults: outcomes of frames admitted
// before a trip say nothing about recovery and must not move the state.
func TestBreakerIgnoresLateNonProbeResults(t *testing.T) {
	clk := newBClock()
	b := newBreaker(testBreakerConfig())
	b.Record(clk.now(), false, true)
	b.Record(clk.now(), false, true)
	clk.advance(time.Second + time.Millisecond)
	b.Allow(clk.now()) // half-open with one probe out
	b.Record(clk.now(), false, true)
	b.Record(clk.now(), false, false)
	if b.State() != breakerHalfOpen {
		t.Fatalf("late non-probe results moved the state to %s", breakerStateName(b.State()))
	}
}

// TestBreakerReleaseReturnsProbeSlot: a probe admitted but shed later in
// the admission chain frees its slot for the next submission.
func TestBreakerReleaseReturnsProbeSlot(t *testing.T) {
	clk := newBClock()
	cfg := testBreakerConfig()
	cfg.Probes = 1
	b := newBreaker(cfg)
	b.Record(clk.now(), false, true)
	b.Record(clk.now(), false, true)
	clk.advance(time.Second + time.Millisecond)
	if admit, probe := b.Allow(clk.now()); !admit || !probe {
		t.Fatal("expected probe admit")
	}
	if admit, _ := b.Allow(clk.now()); admit {
		t.Fatal("probe quota should be exhausted")
	}
	b.Release(true)
	if admit, probe := b.Allow(clk.now()); !admit || !probe {
		t.Fatal("released slot should admit a new probe")
	}
}

// TestBreakerDisabledByZeroConfig: the zero BreakerConfig yields a nil
// breaker whose every operation is a permissive no-op.
func TestBreakerDisabledByZeroConfig(t *testing.T) {
	b := newBreaker(BreakerConfig{})
	if b != nil {
		t.Fatal("zero config must disable the breaker")
	}
	if admit, probe := b.Allow(time.Time{}); !admit || probe {
		t.Fatal("nil breaker must admit everything")
	}
	b.Record(time.Time{}, false, true)
	b.Release(true)
	if b.State() != breakerClosed {
		t.Fatal("nil breaker reports closed")
	}
}

// TestEngineBreakerFailsFastAndRecovers drives the breaker through a live
// engine: a panic storm trips it, submissions fail fast with
// ErrCircuitOpen, and after the cooldown (advanced on the clock seam)
// healthy probes re-close it.
func TestEngineBreakerFailsFastAndRecovers(t *testing.T) {
	leakCheck(t)
	cfg := testConfig(1)
	cfg.Breaker = BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Minute, Probes: 1}
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	clk := newBClock()
	e.now = clk.now

	testFrameHook = func(j *job) { panic("poisoned backend") }
	ctx := context.Background()
	outs := e.EncodeEach(ctx, testPayloads(3))
	for i, o := range outs {
		if !errors.Is(o.Err, ErrFramePanic) {
			t.Fatalf("frame %d: err = %v, want ErrFramePanic", i, o.Err)
		}
	}
	// Outcome recording happens just after delivery; wait for the trip.
	waitFor(t, "breaker open", func() bool { return e.breaker.State() == breakerOpen })
	testFrameHook = nil

	outs = e.EncodeEach(ctx, testPayloads(1))
	if !errors.Is(outs[0].Err, ErrCircuitOpen) {
		t.Fatalf("submission while open: err = %v, want ErrCircuitOpen", outs[0].Err)
	}
	if e.Health() != Degraded {
		t.Fatalf("health while open = %s, want degraded", e.Health())
	}

	clk.advance(time.Minute + time.Second)
	waitFor(t, "breaker re-close", func() bool {
		o := e.EncodeEach(ctx, testPayloads(1))
		return o[0].Err == nil && e.breaker.State() == breakerClosed
	})
	if outs = e.EncodeEach(ctx, testPayloads(1)); outs[0].Err != nil {
		t.Fatalf("post-recovery encode: %v", outs[0].Err)
	}
}

// waitFor polls cond with a generous deadline, failing the test on expiry.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
