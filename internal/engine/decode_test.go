package engine

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"sledzig/internal/core"
	"sledzig/internal/wifi"
)

// testWaveforms encodes n payloads with the engine's own configuration and
// renders their waveforms. Returns the payloads for round-trip checks.
func testWaveforms(t *testing.T, e *Engine, n int) ([][]byte, [][]complex128) {
	t.Helper()
	payloads := testPayloads(n)
	frames, err := e.EncodeBatch(context.Background(), payloads)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	waves := make([][]complex128, len(frames))
	for i, f := range frames {
		w, err := f.Core.Frame.Waveform()
		if err != nil {
			t.Fatalf("Waveform %d: %v", i, err)
		}
		waves[i] = w
	}
	return payloads, waves
}

// TestDecodeBatchMatchesSequentialDecode demands the pooled multi-worker
// decode path produce results identical to a fresh sequential receiver and
// decoder per frame — payload bytes, detected channel, mode, layout
// accounting and per-symbol EVM.
func TestDecodeBatchMatchesSequentialDecode(t *testing.T) {
	e, err := New(testConfig(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	payloads, waves := testWaveforms(t, e, 12)
	got, err := e.DecodeBatch(context.Background(), waves)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != len(waves) {
		t.Fatalf("got %d results for %d waveforms", len(got), len(waves))
	}

	rxr := wifi.Receiver{Seed: wifi.DefaultScramblerSeed, Convention: wifi.ConventionIEEE}
	dec := core.Decoder{Convention: wifi.ConventionIEEE}
	for i, w := range waves {
		rx, err := rxr.Receive(w)
		if err != nil {
			t.Fatalf("sequential Receive %d: %v", i, err)
		}
		payload, ch, err := dec.DecodeAuto(rx)
		if err != nil {
			t.Fatalf("sequential DecodeAuto %d: %v", i, err)
		}
		r := got[i]
		if r == nil {
			t.Fatalf("result %d is nil", i)
		}
		if !bytes.Equal(r.Payload, payload) {
			t.Fatalf("waveform %d: payload differs from sequential decode", i)
		}
		if !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("waveform %d: payload does not round-trip", i)
		}
		if r.Channel != ch {
			t.Fatalf("waveform %d: channel %v != %v", i, r.Channel, ch)
		}
		if r.Mode != rx.Mode {
			t.Fatalf("waveform %d: mode %v != %v", i, r.Mode, rx.Mode)
		}
		if r.NumSymbols != len(rx.DataPoints) {
			t.Fatalf("waveform %d: %d symbols != %d", i, r.NumSymbols, len(rx.DataPoints))
		}
		wantEVM := wifi.SymbolEVM(rx.Mode.Modulation, rx.DataPoints)
		if len(r.SymbolEVM) != len(wantEVM) {
			t.Fatalf("waveform %d: EVM length %d != %d", i, len(r.SymbolEVM), len(wantEVM))
		}
		for s := range wantEVM {
			if r.SymbolEVM[s] != wantEVM[s] {
				t.Fatalf("waveform %d: EVM[%d] %g != %g", i, s, r.SymbolEVM[s], wantEVM[s])
			}
		}
		plan, err := core.CachedPlan(wifi.ConventionIEEE, rx.Mode, ch)
		if err != nil {
			t.Fatalf("CachedPlan: %v", err)
		}
		layout, err := plan.FrameLayout(len(rx.DataPoints))
		if err != nil {
			t.Fatalf("FrameLayout: %v", err)
		}
		if r.ExtraBits != len(layout.Positions) {
			t.Fatalf("waveform %d: ExtraBits %d != %d", i, r.ExtraBits, len(layout.Positions))
		}
	}
}

// TestDecodeBatchResultsAreSelfContained decodes the same waveform set
// twice and verifies the first batch's results survive the second batch
// unchanged — the per-worker recycled buffers must never alias results.
func TestDecodeBatchResultsAreSelfContained(t *testing.T) {
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	payloads, waves := testWaveforms(t, e, 6)
	first, err := e.DecodeBatch(context.Background(), waves)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	snapshots := make([][]byte, len(first))
	for i, r := range first {
		snapshots[i] = append([]byte(nil), r.Payload...)
	}
	// Decode a different ordering to force buffer reuse in every worker.
	shuffled := make([][]complex128, len(waves))
	for i := range waves {
		shuffled[i] = waves[len(waves)-1-i]
	}
	if _, err := e.DecodeBatch(context.Background(), shuffled); err != nil {
		t.Fatalf("second DecodeBatch: %v", err)
	}
	for i, r := range first {
		if !bytes.Equal(r.Payload, snapshots[i]) {
			t.Fatalf("result %d mutated by a later batch", i)
		}
		if !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("result %d no longer matches its payload", i)
		}
	}
}

// TestDecodeBatchConcurrentWithEncode mixes encode and decode batches on
// one pool from several goroutines — exercises the shared job queue under
// the race detector.
func TestDecodeBatchConcurrentWithEncode(t *testing.T) {
	e, err := New(testConfig(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	payloads, waves := testWaveforms(t, e, 6)
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			res, err := e.DecodeBatch(context.Background(), waves)
			if err != nil {
				t.Errorf("DecodeBatch: %v", err)
				return
			}
			for i, r := range res {
				if !bytes.Equal(r.Payload, payloads[i]) {
					t.Errorf("decode result %d wrong", i)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := e.EncodeBatch(context.Background(), payloads); err != nil {
				t.Errorf("EncodeBatch: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestDecodeBatchPropagatesDecodeError feeds one garbage waveform and
// expects the batch to fail with a receive error naming its index.
func TestDecodeBatchPropagatesDecodeError(t *testing.T) {
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	_, waves := testWaveforms(t, e, 3)
	waves[1] = make([]complex128, 100) // far too short for a PPDU
	_, err = e.DecodeBatch(context.Background(), waves)
	if err == nil {
		t.Fatal("expected error for garbage waveform")
	}
}

// TestDecodeStreamDeliversEverything mirrors the encode stream test.
func TestDecodeStreamDeliversEverything(t *testing.T) {
	e, err := New(testConfig(3))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	payloads, waves := testWaveforms(t, e, 15)
	in := make(chan []complex128)
	go func() {
		defer close(in)
		for _, w := range waves {
			in <- w
		}
	}()
	seen := make(map[int]bool)
	for r := range e.DecodeStream(context.Background(), in) {
		if r.Err != nil {
			t.Fatalf("stream result %d: %v", r.Index, r.Err)
		}
		if seen[r.Index] {
			t.Fatalf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
		if !bytes.Equal(r.Result.Payload, payloads[r.Index]) {
			t.Fatalf("index %d: payload mismatch", r.Index)
		}
	}
	if len(seen) != len(waves) {
		t.Fatalf("delivered %d of %d results", len(seen), len(waves))
	}
}

// TestDecodeBatchClosedEngine verifies decode work is rejected after Close.
func TestDecodeBatchClosedEngine(t *testing.T) {
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, waves := testWaveforms(t, e, 2)
	e.Close()
	_, err = e.DecodeBatch(context.Background(), waves)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}
