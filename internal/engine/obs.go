package engine

import (
	"fmt"
	"sync"

	"sledzig/internal/obs"
)

// Metric handles for the engine, resolved lazily against the process-wide
// obs registry (nil handles, and therefore no-ops, when observability is
// off).
type engineMetrics struct {
	queueDepth   *obs.Gauge     // jobs enqueued but not yet picked up
	batchLatency *obs.Histogram // EncodeBatch wall time, seconds
	batches      *obs.Counter
	frames       *obs.Counter
	failures     *obs.Counter

	r      *obs.Registry
	stages sync.Map // worker index -> *obs.Stage
}

var engineLazy obs.Lazy[*engineMetrics]

var engineNil = &engineMetrics{}

func metrics() *engineMetrics {
	return engineLazy.Get(func(r *obs.Registry) *engineMetrics {
		if r == nil {
			return engineNil
		}
		return &engineMetrics{
			queueDepth:   r.Gauge("engine.queue_depth"),
			batchLatency: r.Histogram("engine.batch.latency_seconds"),
			batches:      r.Counter("engine.batches"),
			frames:       r.Counter("engine.frames"),
			failures:     r.Counter("engine.failures"),
			r:            r,
		}
	})
}

// workerStage resolves the per-worker encode stage bundle
// (engine.worker<i>.encode.{seconds,calls,bytes,errors}), cached per index.
func (m *engineMetrics) workerStage(i int) *obs.Stage {
	if m.r == nil {
		return nil
	}
	if s, ok := m.stages.Load(i); ok {
		return s.(*obs.Stage)
	}
	s := m.r.Scope(fmt.Sprintf("engine.worker%d", i)).Stage("encode")
	actual, _ := m.stages.LoadOrStore(i, s)
	return actual.(*obs.Stage)
}
