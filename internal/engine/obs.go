package engine

import (
	"fmt"
	"sync"

	"sledzig/internal/obs"
)

// Metric handles for the engine, resolved lazily against the process-wide
// obs registry (nil handles, and therefore no-ops, when observability is
// off).
type engineMetrics struct {
	queueDepth   *obs.Gauge     // jobs enqueued but not yet picked up
	batchLatency *obs.Histogram // EncodeBatch wall time, seconds
	batches      *obs.Counter
	frames       *obs.Counter
	failures     *obs.Counter

	decodeBatchLatency *obs.Histogram // DecodeBatch wall time, seconds
	decodeBatches      *obs.Counter
	decodeFrames       *obs.Counter
	decodeFailures     *obs.Counter

	panics   *obs.Counter // frames whose worker panicked (recovered)
	timeouts *obs.Counter // frames abandoned to FrameTimeout

	// Load-shed decisions by reason (see admit.go / drain.go), plus the
	// live count of abandoned frame goroutines.
	shedQueueWait    *obs.Counter
	shedInflight     *obs.Counter
	shedAbandoned    *obs.Counter
	shedCircuit      *obs.Counter
	shedDraining     *obs.Counter
	abandonedWorkers *obs.Gauge

	// Circuit-breaker transitions and current state (0 closed, 1 open,
	// 2 half-open).
	breakerOpened   *obs.Counter
	breakerReclosed *obs.Counter
	breakerProbes   *obs.Counter // open -> half-open transitions
	breakerState    *obs.Gauge

	// Worst live engine's health rank (0 healthy, 1 degraded, 2 draining,
	// 3 closed) and the number of Drain calls that took effect.
	healthState *obs.Gauge
	drains      *obs.Counter

	// Per-frame end-to-end latency (queue wait + service), fed by traced
	// frames only so every p99 bucket carries an exemplar naming the frame
	// trace behind it. Aggregate per-worker stage histograms cover all
	// frames regardless of tracing.
	encodeFrameLatency *obs.Histogram
	decodeFrameLatency *obs.Histogram

	r      *obs.Registry
	stages sync.Map // "<worker index>/<kind>" -> *obs.Stage
}

var engineLazy obs.Lazy[*engineMetrics]

var engineNil = &engineMetrics{}

func metrics() *engineMetrics {
	return engineLazy.Get(func(r *obs.Registry) *engineMetrics {
		if r == nil {
			return engineNil
		}
		return &engineMetrics{
			queueDepth:   r.Gauge("engine.queue_depth"),
			batchLatency: r.Histogram("engine.batch.latency_seconds"),
			batches:      r.Counter("engine.batches"),
			frames:       r.Counter("engine.frames"),
			failures:     r.Counter("engine.failures"),

			decodeBatchLatency: r.Histogram("engine.decode.batch.latency_seconds"),
			decodeBatches:      r.Counter("engine.decode.batches"),
			decodeFrames:       r.Counter("engine.decode.frames"),
			decodeFailures:     r.Counter("engine.decode.failures"),

			panics:   r.Counter("engine.frame_panics"),
			timeouts: r.Counter("engine.frame_timeouts"),

			shedQueueWait:    r.Counter("engine.shed.queue_wait"),
			shedInflight:     r.Counter("engine.shed.inflight"),
			shedAbandoned:    r.Counter("engine.shed.abandoned_workers"),
			shedCircuit:      r.Counter("engine.shed.circuit_open"),
			shedDraining:     r.Counter("engine.shed.draining"),
			abandonedWorkers: r.Gauge("engine.abandoned_workers"),

			breakerOpened:   r.Counter("engine.breaker.opened"),
			breakerReclosed: r.Counter("engine.breaker.reclosed"),
			breakerProbes:   r.Counter("engine.breaker.half_open_probes"),
			breakerState:    r.Gauge("engine.breaker.state"),

			healthState: r.Gauge("engine.health.state"),
			drains:      r.Counter("engine.drains"),

			encodeFrameLatency: r.Histogram("engine.frame.encode.latency_seconds"),
			decodeFrameLatency: r.Histogram("engine.frame.decode.latency_seconds"),

			r: r,
		}
	})
}

// workerStage resolves a per-worker stage bundle
// (engine.worker<i>.<kind>.{seconds,calls,bytes,errors}), cached per
// (index, kind). kind is "encode" or "decode".
func (m *engineMetrics) workerStage(i int, kind string) *obs.Stage {
	if m.r == nil {
		return nil
	}
	key := fmt.Sprintf("%d/%s", i, kind)
	if s, ok := m.stages.Load(key); ok {
		return s.(*obs.Stage)
	}
	//sledvet:ignore metriclit per-worker scope names are bounded by Config.Workers and kind is one of two literals
	s := m.r.Scope(fmt.Sprintf("engine.worker%d", i)).Stage(kind)
	actual, _ := m.stages.LoadOrStore(key, s)
	return actual.(*obs.Stage)
}
