package engine

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// TestHealthLifecycle: healthy -> degraded (abandoned worker) -> healthy
// again -> draining -> closed, with the live registry tracking the engine.
func TestHealthLifecycle(t *testing.T) {
	leakCheck(t)
	cfg := testConfig(1)
	cfg.FrameTimeout = 30 * time.Millisecond
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if e.Health() != Healthy {
		t.Fatalf("fresh engine health = %s, want healthy", e.Health())
	}
	rep := e.Report()
	if rep.Codec != codecSledZig || rep.Workers != 1 || rep.ID == 0 {
		t.Fatalf("report = %+v", rep)
	}

	_, release := stallHook(t)
	outs := e.EncodeEach(context.Background(), testPayloads(1))
	if outs[0].Err == nil {
		t.Fatal("wedged frame should have timed out")
	}
	if e.Health() != Degraded {
		t.Fatalf("health with abandoned worker = %s, want degraded", e.Health())
	}
	if rep := e.Report(); rep.Abandoned != 1 {
		t.Fatalf("report abandoned = %d, want 1", rep.Abandoned)
	}
	close(release)
	waitFor(t, "degraded to clear", func() bool { return e.Health() == Healthy })

	if rep := e.Drain(context.Background()); !rep.Clean {
		t.Fatalf("drain: %+v", rep)
	}
	if e.Health() != Closed {
		t.Fatalf("health after drain = %s, want closed", e.Health())
	}
}

// TestRecentShedDegrades: a shed marks the engine degraded for
// shedDegradeWindow on the engine's own clock, then clears.
func TestRecentShedDegrades(t *testing.T) {
	leakCheck(t)
	cfg := testConfig(1)
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	clk := newBClock()
	e.now = clk.now

	e.noteShed(&e.sheds.inflight, metrics().shedInflight)
	if e.Health() != Degraded {
		t.Fatalf("health right after shed = %s, want degraded", e.Health())
	}
	clk.advance(shedDegradeWindow + time.Second)
	if e.Health() != Healthy {
		t.Fatalf("health after window = %s, want healthy", e.Health())
	}
}

// TestDebugHealthEndpoint: /debug/health serves a JSON document whose
// engines array carries this engine's snapshot.
func TestDebugHealthEndpoint(t *testing.T) {
	leakCheck(t)
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()

	rr := httptest.NewRecorder()
	healthHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/health", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	var doc struct {
		State   HealthState      `json:"state"`
		Engines []HealthSnapshot `json:"engines"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal /debug/health: %v\n%s", err, rr.Body.String())
	}
	found := false
	for _, s := range doc.Engines {
		if s.ID == e.id {
			found = true
			if s.Codec != codecSledZig || s.Workers != 2 || s.State != Healthy {
				t.Fatalf("snapshot = %+v", s)
			}
		}
	}
	if !found {
		t.Fatalf("engine %d missing from /debug/health: %s", e.id, rr.Body.String())
	}
}

// TestCloseUnregisters: Close removes the engine from the live registry so
// /debug/health and the aggregate gauge stop reporting it.
func TestCloseUnregisters(t *testing.T) {
	e, err := New(testConfig(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	id := e.id
	e.Close()
	for _, live := range snapshotEngines() {
		if live.id == id {
			t.Fatal("closed engine still registered")
		}
	}
}
