package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCircuitOpen is returned by submissions while the engine's circuit
// breaker is open: the backend codec has been failing at a rate above
// BreakerConfig.FailureRate, and the engine fails fast instead of burning
// workers on frames that are overwhelmingly likely to panic, time out, or
// decode to garbage. The breaker re-probes after BreakerConfig.Cooldown.
var ErrCircuitOpen = errors.New("engine: circuit open")

// BreakerConfig tunes the engine's circuit breaker. The zero value
// disables the breaker entirely (Window <= 0), which keeps existing
// configurations byte-for-byte compatible: breakers are opt-in because a
// decode engine fed deliberately hostile waveforms (the chaos soak's
// mismatched-seed scenarios) fails constantly by design.
type BreakerConfig struct {
	// Window is the sliding sample window (frame outcomes) the failure
	// rate is computed over. <= 0 disables the breaker.
	Window int
	// MinSamples is the minimum number of recorded outcomes before the
	// breaker may trip. 0 selects Window/2.
	MinSamples int
	// FailureRate in (0, 1]; the breaker opens when failures/samples
	// reaches it. 0 selects 0.5.
	FailureRate float64
	// Cooldown is how long the breaker stays open before allowing
	// half-open probes. 0 selects 1s.
	Cooldown time.Duration
	// Probes is how many concurrent trial frames the half-open state
	// admits; that many consecutive successes re-close the breaker and a
	// single failure re-opens it. 0 selects 3.
	Probes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		return BreakerConfig{}
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 2
		if c.MinSamples < 1 {
			c.MinSamples = 1
		}
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 3
	}
	return c
}

// Breaker state values, mirrored into an atomic so State() and the health
// reporter never contend with the admission path's mutex.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateName maps a state value to its /debug/health label.
func breakerStateName(s int32) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a count-based sliding-window circuit breaker. All transitions
// are driven by the timestamps the engine's clock seam hands in, never by
// the wall clock directly, so tests (and sledvet's seededrand analyzer)
// stay deterministic.
type breaker struct {
	cfg BreakerConfig

	mu sync.Mutex
	// ring holds the last cfg.Window outcomes (true = failure).
	ring   []bool
	next   int
	filled int
	fails  int
	// openedAt stamps the most recent closed/half-open -> open transition.
	openedAt time.Time
	// probes is the number of half-open trial frames currently in flight;
	// probeOK counts consecutive successful probes.
	probes  int
	probeOK int

	// state mirrors the mutex-guarded state for lock-free readers.
	state atomic.Int32
}

func newBreaker(cfg BreakerConfig) *breaker {
	cfg = cfg.withDefaults()
	if cfg.Window <= 0 {
		return nil
	}
	return &breaker{cfg: cfg, ring: make([]bool, cfg.Window)}
}

// State reports the current breaker state without taking the mutex.
func (b *breaker) State() int32 {
	if b == nil {
		return breakerClosed
	}
	return b.state.Load()
}

// Allow decides whether a frame may enter the engine. probe is true when
// the frame was admitted as a half-open trial; the caller must hand that
// flag back through Record (or Release if the frame never runs) so the
// probe slot is returned.
func (b *breaker) Allow(now time.Time) (admit, probe bool) {
	if b == nil {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state.Load() {
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return false, false
		}
		b.toHalfOpen()
		fallthrough
	case breakerHalfOpen:
		if b.probes >= b.cfg.Probes {
			return false, false
		}
		b.probes++
		return true, true
	default:
		return true, false
	}
}

// Release returns a probe slot for a frame that was admitted by Allow but
// never produced an outcome (shed later in the admission chain, or skipped
// because its context died on the queue).
func (b *breaker) Release(probe bool) {
	if b == nil || !probe {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probes > 0 {
		b.probes--
	}
}

// Record feeds one frame outcome into the window and drives transitions.
// It reports whether the breaker changed state so the engine can publish
// health exactly when something moved.
func (b *breaker) Record(now time.Time, probe, failed bool) (changed bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state.Load() {
	case breakerHalfOpen:
		if !probe {
			// A frame admitted before the trip finished late; its outcome
			// says nothing about the backend's recovery.
			return false
		}
		if b.probes > 0 {
			b.probes--
		}
		if failed {
			b.toOpen(now)
			return true
		}
		b.probeOK++
		if b.probeOK >= b.cfg.Probes {
			b.toClosed()
			return true
		}
		return false
	case breakerOpen:
		// Late result from before the trip; the cooldown clock governs.
		if probe && b.probes > 0 {
			b.probes--
		}
		return false
	default:
		b.push(failed)
		if b.filled >= b.cfg.MinSamples &&
			float64(b.fails) >= b.cfg.FailureRate*float64(b.filled) {
			b.toOpen(now)
			return true
		}
		return false
	}
}

func (b *breaker) push(failed bool) {
	if b.filled == len(b.ring) {
		if b.ring[b.next] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.ring[b.next] = failed
	if failed {
		b.fails++
	}
	b.next = (b.next + 1) % len(b.ring)
}

func (b *breaker) resetWindow() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.next, b.filled, b.fails = 0, 0, 0
}

func (b *breaker) toOpen(now time.Time) {
	b.state.Store(breakerOpen)
	b.openedAt = now
	b.probes, b.probeOK = 0, 0
	m := metrics()
	m.breakerOpened.Inc()
	m.breakerState.Set(float64(breakerOpen))
}

func (b *breaker) toHalfOpen() {
	b.state.Store(breakerHalfOpen)
	b.probes, b.probeOK = 0, 0
	m := metrics()
	m.breakerProbes.Inc()
	m.breakerState.Set(float64(breakerHalfOpen))
}

func (b *breaker) toClosed() {
	b.state.Store(breakerClosed)
	b.resetWindow()
	b.probes, b.probeOK = 0, 0
	m := metrics()
	m.breakerReclosed.Inc()
	m.breakerState.Set(float64(breakerClosed))
}
