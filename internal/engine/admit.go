package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"sledzig/internal/obs"
)

// ErrOverloaded marks a frame shed by admission control: the engine judged
// that accepting it would stall the caller or grow unbounded state, and
// rejected it promptly instead. The concrete error is an *Overload whose
// fields (recoverable with errors.As) say which limit tripped and how deep
// the backlog was — the measurable backoff signal a gateway needs to
// spread load across backends.
var ErrOverloaded = errors.New("engine: overloaded")

// Shed reasons carried by Overload.Reason; each has its own
// engine.shed.<reason> counter in obs.
const (
	// OverloadQueueWait: the job queue stayed full for the whole
	// Config.MaxQueueWait window.
	OverloadQueueWait = "queue_wait"
	// OverloadInflight: Config.MaxInflight frames were already admitted
	// and undelivered.
	OverloadInflight = "inflight"
	// OverloadAbandoned: Config.MaxAbandoned timeout-abandoned workers
	// were still running; accepting the frame could spawn another.
	OverloadAbandoned = "abandoned_workers"
)

// Overload is the typed detail behind ErrOverloaded.
//
//	var ov *engine.Overload
//	if errors.As(err, &ov) { log.Printf("shed on %s, queue %d", ov.Reason, ov.QueueDepth) }
type Overload struct {
	// Reason names the limit that shed the frame: OverloadQueueWait,
	// OverloadInflight or OverloadAbandoned.
	Reason string
	// QueueDepth is the engine's queued-job count at the shed decision.
	QueueDepth int
	// Inflight is the admitted-but-undelivered frame count at the shed
	// decision.
	Inflight int
	// Wait is how long the submission waited before being shed (zero for
	// the fail-fast reasons).
	Wait time.Duration
}

func (o *Overload) Error() string {
	if o.Wait > 0 {
		return fmt.Sprintf("engine: overloaded (%s after %v): queue depth %d, inflight %d",
			o.Reason, o.Wait, o.QueueDepth, o.Inflight)
	}
	return fmt.Sprintf("engine: overloaded (%s): queue depth %d, inflight %d",
		o.Reason, o.QueueDepth, o.Inflight)
}

// Unwrap ties every Overload to the ErrOverloaded sentinel so errors.Is
// classification works alongside errors.As detail recovery.
func (o *Overload) Unwrap() error { return ErrOverloaded }

// overload builds the shed error for the current engine state.
func (e *Engine) overload(reason string, wait time.Duration) error {
	return &Overload{
		Reason:     reason,
		QueueDepth: len(e.jobs),
		Inflight:   int(e.inflight.Load()),
		Wait:       wait,
	}
}

// shedTally is the per-engine record of shed decisions by reason, kept
// alongside the process-wide obs counters so /debug/health can attribute
// sheds to one engine when several share the registry.
type shedTally struct {
	queueWait atomic.Uint64
	inflight  atomic.Uint64
	abandoned atomic.Uint64
	circuit   atomic.Uint64
	draining  atomic.Uint64
}

// ShedCounts is the JSON-friendly snapshot of a shedTally.
type ShedCounts struct {
	QueueWait        uint64 `json:"queue_wait"`
	Inflight         uint64 `json:"inflight"`
	AbandonedWorkers uint64 `json:"abandoned_workers"`
	CircuitOpen      uint64 `json:"circuit_open"`
	Draining         uint64 `json:"draining"`
}

func (s *shedTally) counts() ShedCounts {
	return ShedCounts{
		QueueWait:        s.queueWait.Load(),
		Inflight:         s.inflight.Load(),
		AbandonedWorkers: s.abandoned.Load(),
		CircuitOpen:      s.circuit.Load(),
		Draining:         s.draining.Load(),
	}
}

// Total sums the shed decisions across every reason.
func (s ShedCounts) Total() uint64 {
	return s.QueueWait + s.Inflight + s.AbandonedWorkers + s.CircuitOpen + s.Draining
}

// noteShed records one shed decision in the per-engine tally, the
// process-wide counter, and the recency mark the health state machine
// reads.
func (e *Engine) noteShed(tally *atomic.Uint64, c *obs.Counter) {
	tally.Add(1)
	c.Inc()
	e.lastShedNS.Store(e.now().UnixNano())
	publishHealthGauge()
}

// abandonedCap resolves Config.MaxAbandoned: 0 selects 16x the worker
// count, negative disables the cap.
func (e *Engine) abandonedCap() int {
	switch {
	case e.cfg.MaxAbandoned > 0:
		return e.cfg.MaxAbandoned
	case e.cfg.MaxAbandoned < 0:
		return 0
	default:
		return 16 * e.cfg.Workers
	}
}

// abandonedTake/abandonedDone bracket one abandoned frame goroutine's
// lifetime in the engine tally and the process gauge.
func (e *Engine) abandonedTake() {
	e.abandoned.Add(1)
	metrics().abandonedWorkers.Add(1)
	publishHealthGauge()
}

func (e *Engine) abandonedDone() {
	e.abandoned.Add(-1)
	metrics().abandonedWorkers.Add(-1)
	publishHealthGauge()
}

// abandonFrame marks one guarded frame as abandoned. It returns false when
// the frame finished concurrently (the worker should take the real result
// instead); the optimistic tally is rolled back by the frame goroutine's
// CAS failure path in that case.
func (e *Engine) abandonFrame(fate *atomic.Int32) bool {
	e.abandonedTake()
	if fate.CompareAndSwap(frameRunning, frameAbandoned) {
		return true
	}
	e.abandonedDone()
	return false
}

// fates of a guarded frame goroutine.
const (
	frameRunning int32 = iota
	frameFinished
	frameAbandoned
)
