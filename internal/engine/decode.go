package engine

import (
	"context"
	"fmt"
	"sync"

	"sledzig/internal/core"
	"sledzig/internal/obs/trace"
	"sledzig/internal/wifi"
)

// DecodeResult is one demodulated and payload-stripped frame. Every slice
// is freshly allocated per frame — the worker's pooled receive buffers
// never leak into results, so callers may retain them indefinitely.
// Generic codec backends fill Payload, Channel and Codec only.
type DecodeResult struct {
	// Payload is the recovered original payload.
	Payload []byte
	// Channel is the protected ZigBee channel detected from the
	// constellation (configured, for fixed-channel codec backends).
	Channel core.ZigBeeChannel
	// Codec names the backend that decoded the frame.
	Codec string
	// Mode is the modulation and code rate signalled in the PLCP header.
	Mode wifi.Mode
	// ScramblerSeed is the seed the descrambler used.
	ScramblerSeed uint8
	// ExtraBits is how many extra bits the frame spent on the
	// constellation constraints.
	ExtraBits int
	// NumSymbols is the DATA-field length in OFDM symbols.
	NumSymbols int
	// SymbolEVM is the per-DATA-symbol RMS error-vector magnitude of the
	// equalized points against the nearest ideal points.
	SymbolEVM []float64
}

// decoderState is the per-worker receive pipeline: a receiver whose
// RxResult buffers are recycled across frames, and the stripping decoder.
type decoderState struct {
	rxr wifi.Receiver
	dec core.Decoder
	rx  wifi.RxResult
}

func (e *Engine) newDecoderState() *decoderState {
	seed := e.cfg.Seed
	if seed == 0 {
		seed = wifi.DefaultScramblerSeed
	}
	return &decoderState{
		rxr: wifi.Receiver{Seed: seed, Convention: e.cfg.Convention, Resync: e.cfg.Resilient, WideIQ: e.cfg.WideIQ},
		dec: core.Decoder{Convention: e.cfg.Convention},
	}
}

// decodeOne demodulates one waveform with the worker's recycled buffers
// and builds a self-contained result.
func (d *decoderState) decodeOne(waveform []complex128) (*DecodeResult, error) {
	if err := d.rxr.ReceiveInto(waveform, &d.rx); err != nil {
		return nil, err
	}
	payload, ch, err := d.dec.DecodeAuto(&d.rx)
	if err != nil {
		return nil, err
	}
	res := &DecodeResult{
		Payload:       payload,
		Channel:       ch,
		Codec:         codecSledZig,
		Mode:          d.rx.Mode,
		ScramblerSeed: d.rxr.Seed,
		NumSymbols:    len(d.rx.DataPoints),
		SymbolEVM:     wifi.SymbolEVM(d.rx.Mode.Modulation, d.rx.DataPoints),
	}
	// The extra-bit count follows from the detected plan's layout; both the
	// plan and its per-length layouts are cached process-wide.
	if plan, perr := core.CachedPlan(d.dec.Convention, d.rx.Mode, ch); perr == nil {
		if layout, lerr := plan.FrameLayout(len(d.rx.DataPoints)); lerr == nil {
			res.ExtraBits = len(layout.Positions)
		}
	}
	return res, nil
}

// DecodeOutcome is one frame's result in a per-frame batch: exactly one of
// Result and Err is set.
type DecodeOutcome struct {
	Result *DecodeResult
	Err    error
}

// DecodeEach decodes every waveform across the pool and returns one
// outcome per input, in input order. A hostile waveform — truncated, bit
// garbage, one that panics or stalls the decoder — fails only its own
// slot; siblings decode normally. A cancelled context fails the remainder
// with the context error but still waits for frames already on a worker.
func (e *Engine) DecodeEach(ctx context.Context, waveforms [][]complex128) []DecodeOutcome {
	m := metrics()
	start := e.now()
	outcomes := make([]DecodeOutcome, len(waveforms))
	var done sync.WaitGroup
	deliver := func(idx int, res *DecodeResult, err error) {
		outcomes[idx] = DecodeOutcome{Result: res, Err: err}
	}
	for i, w := range waveforms {
		done.Add(1)
		j := &job{waveform: w, idx: i, ctx: ctx, deliverDec: deliver, done: &done, tr: trace.Start("decode")}
		j.tr.Enqueued()
		if err := e.submit(ctx, j); err != nil {
			j.tr.Finish(err)
			done.Done()
			for k := i; k < len(waveforms); k++ {
				outcomes[k] = DecodeOutcome{Err: err}
			}
			break
		}
	}
	done.Wait()
	m.decodeBatchLatency.ObserveDuration(e.now().Sub(start))
	m.decodeBatches.Inc()
	ok := 0
	for _, o := range outcomes {
		if o.Err == nil {
			ok++
		}
	}
	m.decodeFrames.Add(uint64(ok))
	return outcomes
}

// DecodeBatch decodes every waveform across the pool and returns the
// results in input order — byte-identical to a sequential receiver with the
// same configuration. The first error (by input order) is returned after
// all submitted work has drained; a cancelled context abandons the
// unsubmitted remainder but still waits for in-flight frames. Callers that
// need sibling results to survive one bad frame use DecodeEach.
func (e *Engine) DecodeBatch(ctx context.Context, waveforms [][]complex128) ([]*DecodeResult, error) {
	outcomes := e.DecodeEach(ctx, waveforms)
	results := make([]*DecodeResult, len(outcomes))
	for i, o := range outcomes {
		if o.Err != nil {
			return nil, fmt.Errorf("engine: waveform %d: %w", i, o.Err)
		}
		results[i] = o.Result
	}
	return results, nil
}

// DecodeStreamResult is one streamed decode outcome. Index is the
// zero-based position of the waveform in the input stream.
type DecodeStreamResult struct {
	Index  int
	Result *DecodeResult
	Err    error
}

// DecodeStream decodes waveforms read from in across the pool, delivering
// results on the returned channel (buffered to Config.Queue). Results carry
// the input index; with more than one worker the delivery order is
// unspecified. The output channel is closed once every accepted input has
// been delivered, after in closes or ctx is cancelled. Both queues are
// bounded, so a stalled consumer backpressures the producer.
func (e *Engine) DecodeStream(ctx context.Context, in <-chan []complex128) <-chan DecodeStreamResult {
	out := make(chan DecodeStreamResult, e.cfg.Queue)
	go func() {
		defer close(out)
		var inflight sync.WaitGroup
		deliver := func(idx int, res *DecodeResult, err error) {
			select {
			case out <- DecodeStreamResult{Index: idx, Result: res, Err: err}:
			case <-ctx.Done():
			}
			inflight.Done()
		}
		idx := 0
	feed:
		for {
			select {
			case <-ctx.Done():
				break feed
			case w, ok := <-in:
				if !ok {
					break feed
				}
				inflight.Add(1)
				j := &job{waveform: w, idx: idx, ctx: ctx, deliverDec: deliver, tr: trace.Start("decode")}
				j.tr.Enqueued()
				if err := e.submit(ctx, j); err != nil {
					j.tr.Finish(err)
					inflight.Done()
					select {
					case out <- DecodeStreamResult{Index: idx, Err: err}:
					case <-ctx.Done():
					}
					break feed
				}
				idx++
			}
		}
		inflight.Wait()
	}()
	return out
}
