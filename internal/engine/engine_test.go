package engine

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"sledzig/internal/core"
	"sledzig/internal/wifi"
)

func testConfig(workers int) Config {
	return Config{
		Convention: wifi.ConventionIEEE,
		Mode:       wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12},
		Channel:    core.CH2,
		Workers:    workers,
	}
}

func testPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, 40+13*i)
		for j := range p {
			p[j] = byte(i + j*3)
		}
		out[i] = p
	}
	return out
}

func TestEncodeBatchMatchesSequentialEncode(t *testing.T) {
	e, err := New(testConfig(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	payloads := testPayloads(12)
	got, err := e.EncodeBatch(context.Background(), payloads)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("got %d results for %d payloads", len(got), len(payloads))
	}

	plan, err := core.NewPlan(wifi.ConventionIEEE, wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}, core.CH2)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	enc := &core.Encoder{Plan: plan}
	for i, p := range payloads {
		want, err := enc.Encode(p)
		if err != nil {
			t.Fatalf("sequential Encode %d: %v", i, err)
		}
		if got[i] == nil {
			t.Fatalf("result %d is nil", i)
		}
		// Byte-identical: compare the full waveforms, which cover the
		// scrambled stream, SIGNAL field and OFDM assembly end to end.
		wantWave, err := want.Frame.Waveform()
		if err != nil {
			t.Fatalf("sequential Waveform %d: %v", i, err)
		}
		gotWave, err := got[i].Core.Frame.Waveform()
		if err != nil {
			t.Fatalf("batch Waveform %d: %v", i, err)
		}
		if len(wantWave) != len(gotWave) {
			t.Fatalf("payload %d: waveform length %d != %d", i, len(gotWave), len(wantWave))
		}
		for s := range wantWave {
			if wantWave[s] != gotWave[s] {
				t.Fatalf("payload %d: waveform diverges at sample %d", i, s)
			}
		}
		for b := range want.TransmitBits {
			if got[i].Core.TransmitBits[b] != want.TransmitBits[b] {
				t.Fatalf("payload %d: transmit bits diverge at %d", i, b)
			}
		}
	}
}

func TestEngineSharesCachedPlan(t *testing.T) {
	e1, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e1.Close()
	e2, err := New(testConfig(3))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e2.Close()
	if e1.Plan() != e2.Plan() {
		t.Fatal("engines with identical parameters built distinct plans")
	}
	p, err := core.CachedPlan(wifi.ConventionIEEE, wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}, core.CH2)
	if err != nil {
		t.Fatalf("CachedPlan: %v", err)
	}
	if e1.Plan() != p {
		t.Fatal("engine plan is not the process-wide cached plan")
	}
}

func TestEncodeBatchConcurrentCallers(t *testing.T) {
	e, err := New(testConfig(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			payloads := testPayloads(6)
			res, err := e.EncodeBatch(context.Background(), payloads)
			if err != nil {
				t.Errorf("caller %d: %v", c, err)
				return
			}
			for i, r := range res {
				if r == nil || r.Core.PayloadLength != len(payloads[i]) {
					t.Errorf("caller %d: bad result %d", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestEncodeBatchPropagatesEncodeError(t *testing.T) {
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	payloads := testPayloads(3)
	payloads[1] = nil // empty payload is invalid
	_, err = e.EncodeBatch(context.Background(), payloads)
	if err == nil {
		t.Fatal("expected error for empty payload")
	}
	if !errors.Is(err, core.ErrPayloadSize) {
		t.Fatalf("error %v does not unwrap to core.ErrPayloadSize", err)
	}
}

func TestEncodeBatchContextCancel(t *testing.T) {
	e, err := New(Config{
		Convention: wifi.ConventionIEEE,
		Mode:       wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12},
		Channel:    core.CH2,
		Workers:    1,
		Queue:      1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = e.EncodeBatch(ctx, testPayloads(64))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

func TestStreamDeliversEverything(t *testing.T) {
	e, err := New(testConfig(3))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	payloads := testPayloads(20)
	in := make(chan []byte)
	go func() {
		defer close(in)
		for _, p := range payloads {
			in <- p
		}
	}()
	seen := make(map[int]bool)
	for r := range e.Stream(context.Background(), in) {
		if r.Err != nil {
			t.Fatalf("stream result %d: %v", r.Index, r.Err)
		}
		if seen[r.Index] {
			t.Fatalf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
		if r.Result.Core.PayloadLength != len(payloads[r.Index]) {
			t.Fatalf("index %d: payload length %d != %d", r.Index, r.Result.Core.PayloadLength, len(payloads[r.Index]))
		}
	}
	if len(seen) != len(payloads) {
		t.Fatalf("delivered %d of %d results", len(seen), len(payloads))
	}
}

func TestStreamContextCancelCloses(t *testing.T) {
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan []byte)
	out := e.Stream(ctx, in)
	in <- bytes.Repeat([]byte{0xA5}, 50)
	cancel()
	// The channel must close even though in never closes.
	for range out {
	}
}

func TestEngineClosedRejectsWork(t *testing.T) {
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e.Close()
	e.Close() // idempotent
	_, err = e.EncodeBatch(context.Background(), testPayloads(2))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}

func TestNewRejectsInvalidChannel(t *testing.T) {
	cfg := testConfig(1)
	cfg.Channel = 42
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for invalid channel")
	}
}
