package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// stallHook installs a frame hook that parks every frame on a release
// channel, signalling arrivals on entered. Closing the returned release
// channel lets all current and future frames through.
func stallHook(t *testing.T) (entered chan struct{}, release chan struct{}) {
	t.Helper()
	entered = make(chan struct{}, 64)
	release = make(chan struct{})
	testFrameHook = func(j *job) {
		entered <- struct{}{}
		<-release
	}
	t.Cleanup(func() { testFrameHook = nil })
	return entered, release
}

// TestDrainFlushesCleanly: Drain with in-flight frames and no deadline
// pressure completes them all, reports Clean, and closes the engine.
func TestDrainFlushesCleanly(t *testing.T) {
	leakCheck(t)
	cfg := testConfig(2)
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	entered, release := stallHook(t)

	var outs []EncodeOutcome
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		outs = e.EncodeEach(context.Background(), testPayloads(2))
	}()
	<-entered
	<-entered // both frames on a worker

	drainDone := make(chan DrainReport, 1)
	go func() { drainDone <- e.Drain(context.Background()) }()
	waitFor(t, "draining state", func() bool { return e.Health() == Draining })
	close(release)
	rep := <-drainDone
	wg.Wait()

	if !rep.Clean || rep.Shed != 0 || rep.Abandoned != 0 {
		t.Fatalf("report = %+v, want clean", rep)
	}
	if rep.Flushed != 2 {
		t.Fatalf("flushed = %d, want 2", rep.Flushed)
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("frame %d failed during clean drain: %v", i, o.Err)
		}
	}
	if e.Health() != Closed {
		t.Fatalf("health after drain = %s, want closed", e.Health())
	}
	post := e.EncodeEach(context.Background(), testPayloads(1))
	if !errors.Is(post[0].Err, ErrClosed) {
		t.Fatalf("post-drain submit: err = %v, want ErrClosed", post[0].Err)
	}
}

// TestDrainDeadlineShedsQueued: a drain whose context expires while one
// frame is wedged hands every queued frame back as ErrDraining and reports
// the wedged frame as abandoned. Releasing the wedge afterwards lets the
// engine exit with no goroutine leak.
func TestDrainDeadlineShedsQueued(t *testing.T) {
	leakCheck(t)
	cfg := testConfig(1)
	cfg.Queue = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	entered, release := stallHook(t)

	var outs []EncodeOutcome
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		outs = e.EncodeEach(context.Background(), testPayloads(4))
	}()
	<-entered // frame 0 wedged on the only worker; 1..3 queued

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep := e.Drain(ctx)
	if rep.Clean {
		t.Fatalf("report = %+v, want dirty", rep)
	}
	if rep.Shed != 3 {
		t.Fatalf("shed = %d, want 3", rep.Shed)
	}
	if rep.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", rep.Abandoned)
	}

	close(release)
	wg.Wait()
	if outs[0].Err != nil {
		t.Fatalf("wedged frame should still complete after release: %v", outs[0].Err)
	}
	for i := 1; i < 4; i++ {
		if !errors.Is(outs[i].Err, ErrDraining) {
			t.Fatalf("queued frame %d: err = %v, want ErrDraining", i, outs[i].Err)
		}
	}
}

// TestDrainWithExpiredContextIdleEngine: an idle engine drains cleanly
// even when the caller's context is already dead — there is nothing to
// wait for, so the deadline must not matter.
func TestDrainWithExpiredContextIdleEngine(t *testing.T) {
	leakCheck(t)
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := e.Drain(ctx)
	if !rep.Clean || rep.Shed != 0 || rep.Abandoned != 0 {
		t.Fatalf("report = %+v, want clean", rep)
	}
}

// TestDoubleDrain: concurrent and repeated Drain calls are safe; exactly
// one performs the shutdown, all return consistent terminal reports.
func TestDoubleDrain(t *testing.T) {
	leakCheck(t)
	e, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if outs := e.EncodeEach(context.Background(), testPayloads(2)); outs[0].Err != nil {
		t.Fatalf("warmup encode: %v", outs[0].Err)
	}
	const n = 4
	reports := make([]DrainReport, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i] = e.Drain(context.Background())
		}(i)
	}
	wg.Wait()
	for i, rep := range reports {
		if !rep.Clean {
			t.Fatalf("drain %d: report = %+v, want clean", i, rep)
		}
	}
	// Drain after drain, and Close after Drain, stay safe.
	if rep := e.Drain(context.Background()); !rep.Clean {
		t.Fatalf("repeat drain: %+v", rep)
	}
	e.Close()
}

// TestDrainMidStream: draining while a stream is feeding terminates the
// stream with typed errors only, and the output channel still closes.
func TestDrainMidStream(t *testing.T) {
	leakCheck(t)
	cfg := testConfig(2)
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan []byte)
	payloads := testPayloads(4)
	go func() {
		defer close(in)
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return
			case in <- payloads[i%len(payloads)]:
			}
		}
	}()
	out := e.Stream(ctx, in)
	for i := 0; i < 3; i++ {
		if r, ok := <-out; !ok || r.Err != nil {
			t.Fatalf("pre-drain stream result %d: ok=%v err=%v", i, ok, r.Err)
		}
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer dcancel()
	rep := e.Drain(dctx)
	cancel() // stop the producer; the stream sees ErrDraining/ErrClosed
	for r := range out {
		if r.Err != nil && !errors.Is(r.Err, ErrDraining) && !errors.Is(r.Err, ErrClosed) &&
			!errors.Is(r.Err, context.Canceled) {
			t.Fatalf("stream error not typed: %v", r.Err)
		}
	}
	if e.Health() != Closed {
		t.Fatalf("health = %s, want closed (report %+v)", e.Health(), rep)
	}
}
