package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRetryStopsBeforeContextDeadline: a backoff that cannot finish before
// the context deadline is never slept — Do returns promptly with the
// deadline error wrapping the last cause.
func TestRetryStopsBeforeContextDeadline(t *testing.T) {
	cause := errors.New("transient")
	slept := 0
	p := RetryPolicy{
		Attempts:  5,
		BaseDelay: time.Second,
		Jitter:    -1,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept++
			return nil
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.Do(ctx, func() error { return cause })
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("Do took %v — waited out a dead deadline", took)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v must keep the last cause", err)
	}
	if slept != 0 {
		t.Fatalf("slept %d times; the crossing backoff must not be slept", slept)
	}
}

// TestRetryMaxElapsedBudget: the total-time budget stops the loop before a
// backoff that would cross it, wrapping the last cause.
func TestRetryMaxElapsedBudget(t *testing.T) {
	cause := errors.New("transient")
	now := time.Unix(1_700_000_000, 0)
	slept := 0
	p := RetryPolicy{
		Attempts:   10,
		BaseDelay:  40 * time.Millisecond,
		Jitter:     -1,
		MaxElapsed: 50 * time.Millisecond,
		Clock:      func() time.Time { return now },
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept++
			now = now.Add(d)
			return nil
		},
	}
	err := p.Do(context.Background(), func() error { return cause })
	if err == nil {
		t.Fatal("Do succeeded; want budget exhaustion")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v must keep the last cause", err)
	}
	if slept != 1 {
		t.Fatalf("slept %d times, want 1 (40ms fits, 80ms crosses the 50ms budget)", slept)
	}
}

// TestRetryMaxElapsedZeroMeansUnlimited: the zero value keeps the old
// attempts-only contract.
func TestRetryMaxElapsedZeroMeansUnlimited(t *testing.T) {
	calls := 0
	p := RetryPolicy{
		Attempts:  4,
		BaseDelay: time.Hour,
		Jitter:    -1,
		Sleep:     func(ctx context.Context, d time.Duration) error { return nil },
	}
	err := p.Do(context.Background(), func() error { calls++; return errors.New("x") })
	if calls != 4 {
		t.Fatalf("calls = %d, want all 4 attempts with no budget", calls)
	}
	if err == nil {
		t.Fatal("want exhaustion error")
	}
}
