package transport

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// makeFrag builds a raw fragment header + one payload octet, enough to be
// accepted by Feed without ever completing a message.
func makeFrag(id uint8, index, count int) []byte {
	return []byte{id, uint8(index), uint8(count), 0, 0xAA}
}

// TestPendingCountBounded: feeding first fragments of more distinct
// messages than MaxPending must evict the oldest partials instead of
// growing without bound, and the survivors must be the newest ones.
func TestPendingCountBounded(t *testing.T) {
	f := &Fragmenter{FragmentSize: 16}
	msgs := make([][]byte, 20)
	frags := make([][][]byte, 20)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
		fs, err := f.Split(msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(fs) < 2 {
			t.Fatalf("message %d: need >= 2 fragments, got %d", i, len(fs))
		}
		frags[i] = fs
	}
	r := Reassembler{MaxPending: 4}
	for i := range frags {
		if _, err := r.Feed(frags[i][0]); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
	}
	if got := r.PendingMessages(); got != 4 {
		t.Fatalf("pending = %d, want 4", got)
	}
	// The newest four (16..19) survived: their remaining fragments must
	// complete them.
	for i := 16; i < 20; i++ {
		var got []byte
		for _, frag := range frags[i][1:] {
			out, err := r.Feed(frag)
			if err != nil {
				t.Fatalf("message %d: %v", i, err)
			}
			if out != nil {
				got = out
			}
		}
		if string(got) != string(msgs[i]) {
			t.Fatalf("message %d did not survive eviction pressure", i)
		}
	}
	// Message 0 was evicted: its tail fragments alone cannot complete it.
	for _, frag := range frags[0][1:] {
		if out, err := r.Feed(frag); err != nil || out != nil {
			t.Fatalf("evicted message completed from tail fragments (out=%v err=%v)", out, err)
		}
	}
}

func TestPendingDefaultBound(t *testing.T) {
	var r Reassembler
	for id := 0; id < 256; id++ {
		if _, err := r.Feed(makeFrag(uint8(id), 0, 2)); err != nil {
			t.Fatalf("id %d: %v", id, err)
		}
	}
	if got := r.PendingMessages(); got != DefaultMaxPending {
		t.Fatalf("pending = %d, want DefaultMaxPending (%d)", got, DefaultMaxPending)
	}
}

func TestPendingAgeEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	r := Reassembler{
		MaxAge: time.Second,
		Clock:  func() time.Time { return now },
	}
	if _, err := r.Feed(makeFrag(1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(500 * time.Millisecond)
	if _, err := r.Feed(makeFrag(2, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if got := r.PendingMessages(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	// Advance past id 1's deadline but not id 2's.
	now = now.Add(700 * time.Millisecond)
	if _, err := r.Feed(makeFrag(3, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if got := r.PendingMessages(); got != 2 {
		t.Fatalf("after age eviction: pending = %d, want 2 (ids 2 and 3)", got)
	}
	// A fragment for an aged-out message restarts it rather than resuming
	// half-forgotten state.
	now = now.Add(10 * time.Second)
	if _, err := r.Feed(makeFrag(2, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := r.PendingMessages(); got != 1 {
		t.Fatalf("restart after aging: pending = %d, want 1", got)
	}
}

// TestEvictedMessageCompletesAfterRetransmit: an evicted partial message
// reassembles fine when all its fragments are simply sent again — eviction
// loses progress, not correctness.
func TestEvictedMessageCompletesAfterRetransmit(t *testing.T) {
	f := &Fragmenter{FragmentSize: 16}
	frags, err := f.Split([]byte("evict me, then retry"))
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 2 {
		t.Fatalf("need a multi-fragment message, got %d", len(frags))
	}
	r := Reassembler{MaxPending: 1}
	if _, err := r.Feed(frags[0]); err != nil {
		t.Fatal(err)
	}
	// A newer message pushes the partial out.
	if _, err := r.Feed(makeFrag(200, 0, 2)); err != nil {
		t.Fatal(err)
	}
	// Full retransmission completes it.
	var got []byte
	for _, frag := range frags {
		out, err := r.Feed(frag)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			got = out
		}
	}
	if string(got) != "evict me, then retry" {
		t.Fatalf("got %q", got)
	}
}

func TestFeedErrorsAreTyped(t *testing.T) {
	var r Reassembler
	if _, err := r.Feed([]byte{1, 2}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short fragment: %v", err)
	}
	if _, err := r.Feed(makeFrag(1, 5, 3)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("index >= count: %v", err)
	}
	f := &Fragmenter{FragmentSize: 16}
	frags, err := f.Split([]byte("typed errors or bust"))
	if err != nil {
		t.Fatal(err)
	}
	frags[0][headerLen] ^= 0xFF
	var lastErr error
	for _, frag := range frags {
		if _, ferr := r.Feed(frag); ferr != nil {
			lastErr = ferr
		}
	}
	if !errors.Is(lastErr, ErrChecksum) {
		t.Fatalf("corrupted payload: %v", lastErr)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var sleeps []time.Duration
	p := RetryPolicy{
		Attempts: 5,
		Rng:      rand.New(rand.NewSource(7)),
		Sleep: func(ctx context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			return nil
		},
	}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %d, want 2", len(sleeps))
	}
	// Backoff grows (jitter is at most half the doubled delay, so the
	// second wait always exceeds half the first base step).
	if sleeps[1] <= sleeps[0]/2 {
		t.Fatalf("backoff not growing: %v then %v", sleeps[0], sleeps[1])
	}
}

func TestRetryExhaustionKeepsCause(t *testing.T) {
	cause := errors.New("decode failed")
	p := RetryPolicy{
		Attempts: 3,
		Sleep:    func(context.Context, time.Duration) error { return nil },
	}
	calls := 0
	err := p.Do(context.Background(), func() error { calls++; return cause })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("exhaustion error lost its cause: %v", err)
	}
}

func TestRetryNonRetryableStopsImmediately(t *testing.T) {
	fatal := errors.New("bad layout")
	p := RetryPolicy{
		Attempts:  5,
		Retryable: func(err error) bool { return !errors.Is(err, fatal) },
		Sleep:     func(context.Context, time.Duration) error { return nil },
	}
	calls := 0
	err := p.Do(context.Background(), func() error { calls++; return fatal })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, fatal) {
		t.Fatalf("got %v", err)
	}
}

func TestRetryHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{Attempts: 100}
	calls := 0
	err := p.Do(ctx, func() error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errors.New("keep trying")
	})
	if calls > 3 {
		t.Fatalf("retried %d times after cancellation", calls)
	}
	if err == nil {
		t.Fatal("cancelled retry returned nil")
	}
}

func TestRetryJitterIsBounded(t *testing.T) {
	p := RetryPolicy{
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  time.Second,
		Jitter:    0.5,
		Rng:       rand.New(rand.NewSource(9)),
	}
	for attempt := 0; attempt < 8; attempt++ {
		want := 100 * time.Millisecond << uint(attempt)
		if want > time.Second {
			want = time.Second
		}
		for trial := 0; trial < 50; trial++ {
			d := p.delay(attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}
