// Package transport adapts arbitrary-length messages onto SledZig frames:
// fragmentation with a 4-octet header (message id, fragment index, count),
// reassembly with out-of-order tolerance, and a checksum over the whole
// message. It is the piece a downstream user writes first, so the library
// ships it: sending a 100 kB firmware image over 4095-octet-bounded PPDUs
// becomes a one-call operation on each side.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"sledzig/internal/obs"
)

// ErrMalformed marks fragments that violate the header contract (too
// short, index out of range, fragment count changing mid-message) and
// reassembled bodies too short to carry a checksum.
var ErrMalformed = errors.New("transport: malformed fragment")

// ErrChecksum marks a fully reassembled message whose CRC-32 does not
// match its trailer.
var ErrChecksum = errors.New("transport: message checksum mismatch")

// transportMetrics holds the fragment/reassembly counters, resolved
// lazily against the process-wide registry.
type transportMetrics struct {
	fragmentsSplit    *obs.Counter
	messagesSplit     *obs.Counter
	fragmentsReceived *obs.Counter
	fragmentsDup      *obs.Counter
	messagesDone      *obs.Counter
	failMalformed     *obs.Counter
	failChecksum      *obs.Counter
	evictedAge        *obs.Counter
	evictedOverflow   *obs.Counter
	retries           *obs.Counter
	retryGiveups      *obs.Counter
}

var transportLazy obs.Lazy[*transportMetrics]

var transportNil = &transportMetrics{}

func metrics() *transportMetrics {
	return transportLazy.Get(func(r *obs.Registry) *transportMetrics {
		if r == nil {
			return transportNil
		}
		s := r.Scope("transport")
		return &transportMetrics{
			fragmentsSplit:    s.Counter("fragments_split"),
			messagesSplit:     s.Counter("messages_split"),
			fragmentsReceived: s.Counter("fragments_received"),
			fragmentsDup:      s.Counter("fragments_duplicate"),
			messagesDone:      s.Counter("messages_reassembled"),
			failMalformed:     s.Counter("fail.malformed"),
			failChecksum:      s.Counter("fail.checksum"),
			evictedAge:        s.Counter("evicted.age"),
			evictedOverflow:   s.Counter("evicted.overflow"),
			retries:           s.Counter("retry.attempts"),
			retryGiveups:      s.Counter("retry.giveups"),
		}
	})
}

// Fragment header layout: id(1) | index(1) | count(1) | flags(1), followed
// by the fragment payload. The final fragment carries the message CRC-32
// in its last four octets.
const (
	headerLen = 4
	crcLen    = 4
	// flagLast marks the final fragment.
	flagLast = 0x01
)

// MaxFragmentPayload computes the usable payload per fragment for a given
// frame capacity (octets).
func MaxFragmentPayload(frameCapacity int) int {
	return frameCapacity - headerLen
}

// Fragmenter splits messages.
type Fragmenter struct {
	// FragmentSize is the per-frame payload budget in octets (the frame
	// capacity handed to the PHY encoder).
	FragmentSize int
	nextID       uint8
}

// Split fragments one message. Each returned slice fits FragmentSize.
func (f *Fragmenter) Split(message []byte) ([][]byte, error) {
	if len(message) == 0 {
		return nil, fmt.Errorf("transport: empty message")
	}
	if f.FragmentSize < headerLen+crcLen+1 {
		return nil, fmt.Errorf("transport: fragment size %d too small", f.FragmentSize)
	}
	payloadPer := f.FragmentSize - headerLen
	// Reserve room for the trailing CRC in the last fragment.
	total := len(message) + crcLen
	count := (total + payloadPer - 1) / payloadPer
	if count > 255 {
		return nil, fmt.Errorf("transport: message of %d octets needs %d fragments (max 255)", len(message), count)
	}
	id := f.nextID
	f.nextID++

	crc := crc32.ChecksumIEEE(message)
	var trailer [crcLen]byte
	binary.LittleEndian.PutUint32(trailer[:], crc)
	body := append(append([]byte(nil), message...), trailer[:]...)

	out := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		lo := i * payloadPer
		hi := lo + payloadPer
		if hi > len(body) {
			hi = len(body)
		}
		frag := make([]byte, headerLen, headerLen+hi-lo)
		frag[0] = id
		frag[1] = uint8(i)
		frag[2] = uint8(count)
		if i == count-1 {
			frag[3] = flagLast
		}
		frag = append(frag, body[lo:hi]...)
		out = append(out, frag)
	}
	m := metrics()
	m.messagesSplit.Inc()
	m.fragmentsSplit.Add(uint64(len(out)))
	return out, nil
}

// DefaultMaxPending is the partial-message bound a zero-value Reassembler
// enforces. The id space is 8-bit, so 256 is the natural ceiling; the
// default stays well under it so a lossy link cannot pin 256 maximal
// messages worth of fragments.
const DefaultMaxPending = 64

// Reassembler collects fragments (possibly out of order, possibly from
// interleaved messages) and emits completed messages. Its pending state is
// bounded: when a new message would exceed MaxPending the oldest partial
// message is evicted, and partial messages older than MaxAge are dropped
// on every Feed. Lost fragments therefore cost bounded memory instead of
// accumulating forever.
type Reassembler struct {
	// MaxPending bounds concurrently held partial messages. Zero selects
	// DefaultMaxPending; negative disables the count bound.
	MaxPending int
	// MaxAge evicts partial messages whose first fragment arrived more
	// than this long ago. Zero disables age eviction.
	MaxAge time.Duration
	// Clock overrides the time source (for tests). Nil selects time.Now.
	Clock func() time.Time

	pending map[uint8]*pendingMessage
	seq     uint64 // arrival order, for oldest-first eviction
}

type pendingMessage struct {
	count     int
	received  int
	parts     [][]byte
	firstSeen time.Time
	seq       uint64
}

func (r *Reassembler) now() time.Time {
	if r.Clock != nil {
		return r.Clock()
	}
	return time.Now()
}

// evict applies the age and count bounds. Called with the new fragment's
// id already inserted, so the newest message is never the eviction victim
// unless it is also the only one.
func (r *Reassembler) evict(now time.Time) {
	m := metrics()
	if r.MaxAge > 0 {
		for id, pm := range r.pending {
			if now.Sub(pm.firstSeen) > r.MaxAge {
				delete(r.pending, id)
				m.evictedAge.Inc()
			}
		}
	}
	limit := r.MaxPending
	if limit == 0 {
		limit = DefaultMaxPending
	}
	if limit < 0 {
		return
	}
	for len(r.pending) > limit {
		oldestID, oldestSeq := uint8(0), ^uint64(0)
		for id, pm := range r.pending {
			if pm.seq < oldestSeq {
				oldestID, oldestSeq = id, pm.seq
			}
		}
		delete(r.pending, oldestID)
		m.evictedOverflow.Inc()
	}
}

// Feed ingests one fragment. When it completes a message, the message is
// returned (otherwise nil). Corrupt or inconsistent fragments error.
func (r *Reassembler) Feed(frag []byte) ([]byte, error) {
	m := metrics()
	if len(frag) < headerLen+1 {
		m.failMalformed.Inc()
		return nil, fmt.Errorf("%w: fragment of %d octets too short", ErrMalformed, len(frag))
	}
	id, index, count := frag[0], int(frag[1]), int(frag[2])
	if count == 0 || index >= count {
		m.failMalformed.Inc()
		return nil, fmt.Errorf("%w: fragment %d/%d", ErrMalformed, index, count)
	}
	if r.pending == nil {
		r.pending = make(map[uint8]*pendingMessage)
	}
	now := r.now()
	pm := r.pending[id]
	if pm == nil {
		r.seq++
		pm = &pendingMessage{count: count, parts: make([][]byte, count), firstSeen: now, seq: r.seq}
		r.pending[id] = pm
		r.evict(now)
	} else {
		r.evict(now)
		if r.pending[id] == nil {
			// The fragment's own message just aged out; restart it.
			r.seq++
			pm = &pendingMessage{count: count, parts: make([][]byte, count), firstSeen: now, seq: r.seq}
			r.pending[id] = pm
		}
	}
	if pm.count != count {
		m.failMalformed.Inc()
		return nil, fmt.Errorf("%w: fragment count changed mid-message (%d vs %d)", ErrMalformed, count, pm.count)
	}
	if pm.parts[index] == nil {
		pm.parts[index] = append([]byte(nil), frag[headerLen:]...)
		pm.received++
		m.fragmentsReceived.Inc()
	} else {
		m.fragmentsDup.Inc()
	}
	if pm.received < pm.count {
		return nil, nil
	}
	delete(r.pending, id)
	var body []byte
	for _, p := range pm.parts {
		body = append(body, p...)
	}
	if len(body) < crcLen+1 {
		m.failMalformed.Inc()
		return nil, fmt.Errorf("%w: reassembled body too short", ErrMalformed)
	}
	message := body[:len(body)-crcLen]
	want := binary.LittleEndian.Uint32(body[len(body)-crcLen:])
	if crc32.ChecksumIEEE(message) != want {
		m.failChecksum.Inc()
		return nil, ErrChecksum
	}
	m.messagesDone.Inc()
	return message, nil
}

// PendingMessages reports how many partially received messages are held.
func (r *Reassembler) PendingMessages() int { return len(r.pending) }
