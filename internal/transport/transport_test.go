package transport

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"sledzig/internal/bits"
	"sledzig/internal/core"
	"sledzig/internal/wifi"
)

func TestSplitFeedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := &Fragmenter{FragmentSize: 64}
	var r Reassembler
	for trial := 0; trial < 20; trial++ {
		msg := bits.RandomBytes(rng, 1+rng.Intn(2000))
		frags, err := f.Split(msg)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		for _, frag := range frags {
			if len(frag) > 64 {
				t.Fatalf("fragment of %d octets exceeds budget", len(frag))
			}
			out, err := r.Feed(frag)
			if err != nil {
				t.Fatal(err)
			}
			if out != nil {
				got = out
			}
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("trial %d: message mismatch (%d vs %d octets)", trial, len(got), len(msg))
		}
	}
	if r.PendingMessages() != 0 {
		t.Fatalf("%d messages stuck pending", r.PendingMessages())
	}
}

func TestOutOfOrderAndInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := &Fragmenter{FragmentSize: 32}
	a := bits.RandomBytes(rng, 300)
	b := bits.RandomBytes(rng, 200)
	fa, err := f.Split(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := f.Split(b)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave and shuffle within each message.
	all := append(append([][]byte(nil), fa...), fb...)
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	var r Reassembler
	done := map[int]bool{}
	for _, frag := range all {
		out, err := r.Feed(frag)
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			continue
		}
		switch {
		case bytes.Equal(out, a):
			done[0] = true
		case bytes.Equal(out, b):
			done[1] = true
		default:
			t.Fatal("reassembled an unknown message")
		}
	}
	if !done[0] || !done[1] {
		t.Fatalf("messages completed: %v", done)
	}
}

func TestDuplicateFragmentsIgnored(t *testing.T) {
	f := &Fragmenter{FragmentSize: 16}
	frags, err := f.Split([]byte("duplicate me, go on"))
	if err != nil {
		t.Fatal(err)
	}
	var r Reassembler
	var got []byte
	for _, frag := range frags {
		for rep := 0; rep < 3; rep++ {
			out, err := r.Feed(frag)
			if err != nil {
				t.Fatal(err)
			}
			if out != nil {
				got = out
			}
		}
	}
	if string(got) != "duplicate me, go on" {
		t.Fatalf("got %q", got)
	}
}

func TestCorruptionDetected(t *testing.T) {
	f := &Fragmenter{FragmentSize: 16}
	frags, err := f.Split([]byte("integrity matters here"))
	if err != nil {
		t.Fatal(err)
	}
	frags[1][headerLen] ^= 0x40
	var r Reassembler
	var lastErr error
	for _, frag := range frags {
		if _, err := r.Feed(frag); err != nil {
			lastErr = err
		}
	}
	if lastErr == nil {
		t.Fatal("corrupted message reassembled silently")
	}
}

func TestValidation(t *testing.T) {
	f := &Fragmenter{FragmentSize: 4}
	if _, err := f.Split([]byte("too small budget")); err == nil {
		t.Error("tiny fragment size accepted")
	}
	f = &Fragmenter{FragmentSize: 16}
	if _, err := f.Split(nil); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := f.Split(make([]byte, 16*300)); err == nil {
		t.Error("over-255-fragment message accepted")
	}
	var r Reassembler
	if _, err := r.Feed([]byte{1, 2}); err == nil {
		t.Error("short fragment accepted")
	}
	if _, err := r.Feed([]byte{1, 5, 3, 0, 9}); err == nil {
		t.Error("index >= count accepted")
	}
}

func TestPropertyAnySizeRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prop := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		size := 1 + lr.Intn(5000)
		budget := 12 + lr.Intn(200)
		msg := bits.RandomBytes(lr, size)
		f := &Fragmenter{FragmentSize: budget}
		frags, err := f.Split(msg)
		if err != nil {
			// Over-long messages for tiny budgets are allowed to fail.
			return (size+4+budget-5)/(budget-4) > 255
		}
		var r Reassembler
		for i, frag := range frags {
			out, err := r.Feed(frag)
			if err != nil {
				return false
			}
			if i == len(frags)-1 {
				return bytes.Equal(out, msg)
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestOverSledZigFrames carries a multi-fragment message through actual
// SledZig encode/decode round trips — the full stack.
func TestOverSledZigFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	message := bits.RandomBytes(rng, 2500)
	f := &Fragmenter{FragmentSize: 400}
	frags, err := f.Split(message)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewPlan(wifi.ConventionPaper, wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate34}, core.CH2)
	if err != nil {
		t.Fatal(err)
	}
	enc := core.Encoder{Plan: plan}
	dec := core.Decoder{Convention: wifi.ConventionPaper}
	var r Reassembler
	var got []byte
	for _, frag := range frags {
		res, err := enc.Encode(frag)
		if err != nil {
			t.Fatal(err)
		}
		wave, err := res.Frame.Waveform()
		if err != nil {
			t.Fatal(err)
		}
		rx, err := wifi.Receiver{Convention: wifi.ConventionPaper}.Receive(wave)
		if err != nil {
			t.Fatal(err)
		}
		rxFrag, _, err := dec.DecodeAuto(rx)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Feed(rxFrag)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			got = out
		}
	}
	if !bytes.Equal(got, message) {
		t.Fatal("message did not survive the full stack")
	}
}

func TestFragmentIDWraparound(t *testing.T) {
	// 300 sequential messages reuse the 8-bit id space; completed
	// messages must not collide with later ones sharing their id.
	f := &Fragmenter{FragmentSize: 32}
	var r Reassembler
	for i := 0; i < 300; i++ {
		msg := []byte{byte(i), byte(i >> 8), 7, 7, 7}
		frags, err := f.Split(msg)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		for _, frag := range frags {
			out, err := r.Feed(frag)
			if err != nil {
				t.Fatalf("message %d: %v", i, err)
			}
			if out != nil {
				got = out
			}
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}
