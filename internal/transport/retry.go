package transport

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy runs an operation with jittered exponential backoff. The
// zero value is usable: three attempts, 10ms base delay doubling to a 1s
// cap, half the delay randomized. It is the send-side companion to the
// Reassembler's loss tolerance — a fragment whose frame failed to decode
// is retransmitted a bounded number of times before the message is given
// up on.
type RetryPolicy struct {
	// Attempts is the total number of tries (first call included).
	// Zero selects 3; values below 1 are clamped to 1.
	Attempts int
	// BaseDelay is the wait before the second attempt; it doubles each
	// retry. Zero selects 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the un-jittered backoff. Zero selects 1s.
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized: the actual
	// wait is delay*(1-Jitter) + rand*delay*Jitter. Zero selects 0.5;
	// negative disables jitter. Values above 1 are clamped to 1.
	Jitter float64
	// Rng drives the jitter. Nil uses the shared math/rand source; supply
	// a seeded one for reproducible schedules.
	Rng *rand.Rand
	// MaxElapsed caps the total wall time spent inside Do — attempts and
	// backoff sleeps together. When the next backoff would cross the
	// budget Do gives up promptly with the last error instead of sleeping
	// first and failing later. Zero means no total budget (the attempt
	// count alone bounds the retry loop).
	MaxElapsed time.Duration
	// Retryable classifies errors; returning false stops immediately with
	// that error. Nil retries every non-nil error except context
	// cancellation (which always stops).
	Retryable func(error) bool
	// Sleep overrides the backoff wait (for tests). Nil waits on a timer,
	// returning early with ctx.Err() on cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// Clock overrides the wall clock the MaxElapsed and context-deadline
	// checks read (for tests). Nil uses time.Now.
	Clock func() time.Time
}

func (p RetryPolicy) attempts() int {
	if p.Attempts == 0 {
		return 3
	}
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

func (p RetryPolicy) delay(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	ceil := p.MaxDelay
	if ceil <= 0 {
		ceil = time.Second
	}
	d := base << uint(attempt)
	if d > ceil || d <= 0 { // d <= 0 guards shift overflow
		d = ceil
	}
	j := p.Jitter
	switch {
	case j == 0:
		j = 0.5
	case j < 0:
		j = 0
	case j > 1:
		j = 1
	}
	if j == 0 {
		return d
	}
	var u float64
	if p.Rng != nil {
		u = p.Rng.Float64()
	} else {
		u = rand.Float64()
	}
	return time.Duration(float64(d)*(1-j) + u*float64(d)*j)
}

func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p RetryPolicy) clock() time.Time {
	if p.Clock != nil {
		return p.Clock()
	}
	return time.Now()
}

// Do runs op until it succeeds, exhausts the attempt budget (Attempts or
// MaxElapsed), hits a non-retryable error, or ctx is cancelled. A backoff
// that cannot complete before the context deadline or the MaxElapsed
// budget is never slept: Do returns promptly with the deadline (or budget)
// error wrapping the last op error. Every give-up path wraps the last op
// error, so errors.Is classification against the underlying failure keeps
// working.
func (p RetryPolicy) Do(ctx context.Context, op func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	m := metrics()
	n := p.attempts()
	start := p.clock()
	var err error
	for attempt := 0; attempt < n; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = op(); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		if p.Retryable != nil && !p.Retryable(err) {
			return err
		}
		if attempt == n-1 {
			break
		}
		d := p.delay(attempt)
		now := p.clock()
		if p.MaxElapsed > 0 && now.Add(d).Sub(start) > p.MaxElapsed {
			m.retryGiveups.Inc()
			return fmt.Errorf("transport: retry budget %v exhausted after %d attempts: %w",
				p.MaxElapsed, attempt+1, err)
		}
		if deadline, ok := ctx.Deadline(); ok && now.Add(d).After(deadline) {
			m.retryGiveups.Inc()
			return fmt.Errorf("transport: backoff %v crosses context deadline: %w: %w",
				d, context.DeadlineExceeded, err)
		}
		m.retries.Inc()
		if serr := p.sleep(ctx, d); serr != nil {
			return err
		}
	}
	m.retryGiveups.Inc()
	return fmt.Errorf("transport: %d attempts exhausted: %w", n, err)
}
