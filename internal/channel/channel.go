package channel

import (
	"fmt"
	"math"
	"math/rand"

	"sledzig/internal/dsp"
	"sledzig/internal/obs"
)

// Link applies a radio link to baseband waveforms: a target receive power,
// optional log-normal shadowing, and AWGN at the noise floor. Waveform
// sample power is interpreted directly in milliwatts, so dsp band-power
// measurements convert to dBm with 10*log10.
type Link struct {
	// RxPowerDBm is the mean receive power of the signal.
	RxPowerDBm float64
	// ShadowingSigmaDB adds per-realization log-normal shadowing; the
	// paper reports 1-3 dB RSSI variation between repeated measurements.
	ShadowingSigmaDB float64
	// NoiseFloorDBm is the noise power in NoiseBandwidthHz; defaults to
	// the paper's -91 dBm in 2 MHz when zero.
	NoiseFloorDBm float64
	// NoiseBandwidthHz is the bandwidth the noise floor refers to
	// (default 2 MHz).
	NoiseBandwidthHz float64
	// SampleRateHz of the waveforms (default 20 MHz).
	SampleRateHz float64
	// Rng drives the shadowing draws and the AWGN samples. Nil disables
	// shadowing (Apply returns the mean power exactly) and makes AddNoise
	// an error — a forgotten Rng fails loudly instead of silently
	// producing a noiseless run. For a deliberate noiseless run, set
	// NoiseFree.
	Rng *rand.Rand
	// NoiseFree makes AddNoise a documented no-op: the waveform is left
	// untouched and no Rng is required. This is the explicit opt-in for
	// noise-free analyses (constellation geometry, layout validation).
	NoiseFree bool
}

func (l Link) noiseFloor() float64 {
	if l.NoiseFloorDBm == 0 {
		return NoiseFloorDBm
	}
	return l.NoiseFloorDBm
}

func (l Link) noiseBandwidth() float64 {
	if l.NoiseBandwidthHz == 0 {
		return 2e6
	}
	return l.NoiseBandwidthHz
}

func (l Link) sampleRate() float64 {
	if l.SampleRateHz == 0 {
		return 20e6
	}
	return l.SampleRateHz
}

// Apply scales a unit-power waveform to the link's receive power (with a
// shadowing draw if configured) and returns the scaled copy together with
// the realized power in dBm. It does not add noise; use AddNoise on the
// composite signal at the receiver.
func (l Link) Apply(wave []complex128) ([]complex128, float64) {
	p := l.RxPowerDBm
	if l.Rng != nil && l.ShadowingSigmaDB > 0 {
		p += l.Rng.NormFloat64() * l.ShadowingSigmaDB
	}
	out := make([]complex128, len(wave))
	copy(out, wave)
	dsp.ScaleToPower(out, dsp.FromDB(p))
	return out, p
}

// AddNoise adds complex AWGN to wave in place at the link's noise floor,
// scaled to the full sample-rate bandwidth. Requires Rng unless NoiseFree
// is set, in which case the waveform is returned untouched.
func (l Link) AddNoise(wave []complex128) error {
	if l.NoiseFree {
		return nil
	}
	if l.Rng == nil {
		return fmt.Errorf("channel: AddNoise requires an Rng (or NoiseFree)")
	}
	total := dsp.FromDB(l.noiseFloor()) * l.sampleRate() / l.noiseBandwidth()
	sigma := math.Sqrt(total / 2)
	for i := range wave {
		wave[i] += complex(l.Rng.NormFloat64()*sigma, l.Rng.NormFloat64()*sigma)
	}
	obs.Default().Counter("channel.impairments.awgn").Inc()
	return nil
}

// NoisePowerDBm returns the noise power within bw Hz at the paper's noise
// floor density.
func NoisePowerDBm(bw float64) float64 {
	return NoiseFloorDBm + 10*math.Log10(bw/2e6)
}

// MeasureBandDBm returns the power of wave inside [lo, hi] Hz (relative to
// the waveform's center frequency) in dBm, treating sample power as mW.
func MeasureBandDBm(wave []complex128, sampleRate, lo, hi float64) (float64, error) {
	p, err := dsp.BandPower(wave, sampleRate, lo, hi)
	if err != nil {
		return 0, err
	}
	return dsp.DB(p), nil
}

// RSSIDBm measures total waveform power in dBm.
func RSSIDBm(wave []complex128) float64 {
	return dsp.DB(dsp.Power(wave))
}

// OffsetHz returns the frequency offset of a ZigBee channel center from a
// WiFi channel center, both given as absolute center frequencies in Hz.
func OffsetHz(zigbeeCenter, wifiCenter float64) float64 {
	return zigbeeCenter - wifiCenter
}

// WiFiChannelFrequency returns the center frequency in Hz of 2.4 GHz WiFi
// channel ch (1..13): 2407 + 5 ch MHz.
func WiFiChannelFrequency(ch int) (float64, error) {
	if ch < 1 || ch > 13 {
		return 0, fmt.Errorf("channel: WiFi channel %d out of range [1, 13]", ch)
	}
	return 2407e6 + 5e6*float64(ch), nil
}
