// Package channel models the radio environment of the paper's 10 m x 15 m
// office testbed: log-distance path loss anchored to the paper's own RSSI
// measurements, AWGN at the measured noise floor, log-normal shadowing
// matching the reported 1-3 dB RSSI variation, and sample-level mixing of
// WiFi and ZigBee baseband waveforms onto a shared 20 MS/s bus.
//
// Every constant is traceable to a measurement in section V of the paper;
// see the comments on each anchor.
package channel

import (
	"fmt"
	"math"
)

// Measurement anchors from the paper (section V).
const (
	// NoiseFloorDBm is the background noise the paper measured in the
	// ZigBee 2 MHz bandwidth ("The background noise is tested to be
	// -91dB").
	NoiseFloorDBm = -91.0

	// PathLossExponent for the open-space office. The paper's crossover
	// geometry (normal-WiFi CCA range ~8.5 m from a -60 dBm @1 m anchor
	// against a -77 dBm CCA threshold) implies an exponent close to
	// free-space.
	PathLossExponent = 2.0

	// WiFiBandRSSIAt1mDBm is the RSSI a TelosB collects in one of the
	// pilot-bearing ZigBee channels (CH1-CH3) at 1 m from the WiFi Tx at
	// gain 15 ("SledZig can decrease RSSI from about -60dB...").
	WiFiBandRSSIAt1mDBm = -60.0

	// wifiBandShareDB converts a 2 MHz pilot-bearing band measurement to
	// the full 52-subcarrier WiFi power: 8 of 52 occupied subcarriers fall
	// in the window, so the total is 10*log10(52/8) = 8.13 dB above it.
	wifiBandShareDB = 8.13

	// WiFiTotalRxAt1mDBm is the full-band WiFi receive power at 1 m for
	// gain 15, derived from the band anchor above.
	WiFiTotalRxAt1mDBm = WiFiBandRSSIAt1mDBm + wifiBandShareDB

	// WiFiReferenceGain is the transmit gain the anchors were measured at.
	WiFiReferenceGain = 15

	// ZigBeeRSSIAt0p5mDBm is the ZigBee link RSSI the paper measured at
	// d_Z = 0.5 m with Tx gain 31 (Fig. 13).
	ZigBeeRSSIAt0p5mDBm = -75.0

	// ZigBeeWidebandPenaltyDB is the drop when a 20 MHz receiver measures
	// the 2 MHz ZigBee signal ("about 10dB lower than that in the 2MHz
	// channel", Fig. 17).
	ZigBeeWidebandPenaltyDB = 10.0

	// WiFiAtWiFiRxAt0p5mDBm is the WiFi RSSI the paper's WiFi receiver
	// collects at 0.5 m (Fig. 17). USRP and TelosB RSSI scales carry
	// different front-end offsets, so this anchor is independent of the
	// TelosB-side anchors.
	WiFiAtWiFiRxAt0p5mDBm = -55.0

	// ZigBeeCCAThresholdDBm is the energy-detect threshold of the CC2420
	// (its documented default, consistent with the paper's ~8.5 m
	// carrier-sense crossover).
	ZigBeeCCAThresholdDBm = -77.0

	// WiFiCCAThresholdDBm is the 802.11 energy-detect threshold for
	// non-WiFi signals (-62 dBm in 20 MHz).
	WiFiCCAThresholdDBm = -62.0

	// WiFiRxNoiseFloorDBm is the effective noise level on the WiFi
	// receiver's RSSI scale. The paper's USRP RSSI anchor (-55 dBm at
	// 0.5 m) is a front-end-specific scale, not commensurate with the
	// TelosB readings; the paper's QAM-256 links decode at meter-range
	// distances, which pins the USRP-scale noise near -98.
	WiFiRxNoiseFloorDBm = -98.0
)

// PathLossDB returns the extra attenuation in dB of distance d relative to
// reference distance ref (both in meters).
func PathLossDB(d, ref float64) float64 {
	if d <= 0 || ref <= 0 {
		return math.Inf(1)
	}
	return 10 * PathLossExponent * math.Log10(d/ref)
}

// WiFiTotalRxDBm returns the total (20 MHz) WiFi receive power at a TelosB
// placed d meters from a WiFi transmitter using the given transmit gain
// (USRP gain steps, 1 dB each, anchored at gain 15).
func WiFiTotalRxDBm(d float64, txGain int) float64 {
	return WiFiTotalRxAt1mDBm + float64(txGain-WiFiReferenceGain) - PathLossDB(d, 1)
}

// cc2420TxPower maps TelosB/CC2420 PA_LEVEL settings to transmit power in
// dBm (CC2420 datasheet Table 9; intermediate levels interpolated).
var cc2420TxPower = map[int]float64{
	31: 0, 27: -1, 23: -3, 19: -5, 15: -7, 11: -10, 7: -15, 3: -25,
}

// ZigBeeTxPowerDBm returns the CC2420 output power for Tx gain (PA_LEVEL)
// g in [0, 31], interpolating between datasheet points.
func ZigBeeTxPowerDBm(g int) (float64, error) {
	if g < 0 || g > 31 {
		return 0, fmt.Errorf("channel: ZigBee Tx gain %d out of range [0, 31]", g)
	}
	if p, ok := cc2420TxPower[g]; ok {
		return p, nil
	}
	// Linear interpolation between the nearest datasheet levels.
	lo, hi := 3, 31
	for k := range cc2420TxPower {
		if k <= g && k > lo {
			lo = k
		}
		if k >= g && k < hi {
			hi = k
		}
	}
	if g < 3 {
		// Extrapolate below the lowest documented level.
		return -25 + float64(g-3)*2.5, nil
	}
	pl, ph := cc2420TxPower[lo], cc2420TxPower[hi]
	if hi == lo {
		return pl, nil
	}
	return pl + (ph-pl)*float64(g-lo)/float64(hi-lo), nil
}

// ZigBeeRxDBm returns the ZigBee receive power (in its own 2 MHz band) at
// distance d meters for CC2420 Tx gain g, anchored at the paper's
// 0.5 m / gain-31 measurement.
func ZigBeeRxDBm(d float64, g int) (float64, error) {
	p, err := ZigBeeTxPowerDBm(g)
	if err != nil {
		return 0, err
	}
	return ZigBeeRSSIAt0p5mDBm + p - PathLossDB(d, 0.5), nil
}

// WiFiAtWiFiRxDBm returns the WiFi receive power at the paper's WiFi
// receiver (USRP scale) at distance d for the reference transmit gain.
func WiFiAtWiFiRxDBm(d float64) float64 {
	return WiFiAtWiFiRxAt0p5mDBm - PathLossDB(d, 0.5)
}

// ZigBeeAtWiFiRxDBm returns the ZigBee signal level a 20 MHz WiFi receiver
// observes at distance d (gain-31 transmitter): the 2 MHz power diluted
// across the 20 MHz measurement bandwidth (Fig. 17).
func ZigBeeAtWiFiRxDBm(d float64) (float64, error) {
	p, err := ZigBeeRxDBm(d, 31)
	if err != nil {
		return 0, err
	}
	return p - ZigBeeWidebandPenaltyDB, nil
}
