package channel

import (
	"math"
	"math/rand"
	"testing"

	"sledzig/internal/dsp"
)

func TestPathLossAnchors(t *testing.T) {
	if PathLossDB(1, 1) != 0 {
		t.Fatal("path loss at the reference distance must be 0")
	}
	// Exponent 2: doubling distance costs ~6 dB.
	if math.Abs(PathLossDB(2, 1)-6.02) > 0.01 {
		t.Fatalf("PathLossDB(2,1) = %g", PathLossDB(2, 1))
	}
	if !math.IsInf(PathLossDB(0, 1), 1) {
		t.Fatal("zero distance should be infinite loss")
	}
}

func TestWiFiRxAnchor(t *testing.T) {
	// At the calibration point the full-band power is the -60 dBm in-band
	// anchor plus the 52/8 subcarrier share.
	got := WiFiTotalRxDBm(1, WiFiReferenceGain)
	if math.Abs(got-(-51.87)) > 0.1 {
		t.Fatalf("WiFi total rx at 1 m = %g dBm", got)
	}
	// Gain steps are 1 dB.
	if diff := WiFiTotalRxDBm(1, 20) - got; math.Abs(diff-5) > 1e-9 {
		t.Fatalf("gain step %g dB", diff)
	}
}

func TestZigBeeTxPowerTable(t *testing.T) {
	for g, want := range map[int]float64{31: 0, 27: -1, 23: -3, 19: -5, 15: -7, 11: -10, 7: -15, 3: -25} {
		got, err := ZigBeeTxPowerDBm(g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("gain %d: %g dBm, want %g", g, got, want)
		}
	}
	// Interpolation between documented levels is monotone.
	prev := -100.0
	for g := 0; g <= 31; g++ {
		p, err := ZigBeeTxPowerDBm(g)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Fatalf("Tx power not monotone at gain %d", g)
		}
		prev = p
	}
	if _, err := ZigBeeTxPowerDBm(32); err == nil {
		t.Error("gain 32 accepted")
	}
}

func TestZigBeeRxAnchor(t *testing.T) {
	// Paper Fig. 13: -75 dBm at 0.5 m, gain 31.
	got, err := ZigBeeRxDBm(0.5, 31)
	if err != nil {
		t.Fatal(err)
	}
	if got != ZigBeeRSSIAt0p5mDBm {
		t.Fatalf("ZigBee rx at anchor = %g", got)
	}
	// At 1 m and low gain the signal sinks under the -91 dBm floor.
	low, err := ZigBeeRxDBm(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if low > NoiseFloorDBm {
		t.Fatalf("gain 7 at 1 m is %g dBm, expected below the noise floor", low)
	}
}

func TestFig17Asymmetry(t *testing.T) {
	// Paper: at 0.5 m the ZigBee signal at the WiFi receiver is ~-85 dBm,
	// about 30 dB below the WiFi signal.
	zb, err := ZigBeeAtWiFiRxDBm(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zb-(-85)) > 0.5 {
		t.Fatalf("ZigBee at WiFi Rx (0.5 m) = %g dBm, want ~-85", zb)
	}
	wifi := WiFiAtWiFiRxDBm(0.5)
	if asym := wifi - zb; asym < 25 || asym > 35 {
		t.Fatalf("asymmetry %g dB, want ~30", asym)
	}
}

func TestLinkApplySetsPower(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	wave := make([]complex128, 2048)
	for i := range wave {
		wave[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	link := Link{RxPowerDBm: -50}
	out, realized := link.Apply(wave)
	if realized != -50 {
		t.Fatalf("realized power %g without shadowing", realized)
	}
	if got := RSSIDBm(out); math.Abs(got-(-50)) > 0.01 {
		t.Fatalf("measured power %g dBm", got)
	}
	// The original waveform is untouched.
	if math.Abs(dsp.Power(wave)-2) > 0.2 {
		t.Fatal("input waveform modified")
	}
}

func TestLinkShadowingSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	link := Link{RxPowerDBm: -60, ShadowingSigmaDB: 2, Rng: rng}
	wave := make([]complex128, 256)
	for i := range wave {
		wave[i] = 1
	}
	var min, max float64 = 0, -200
	for i := 0; i < 50; i++ {
		_, p := link.Apply(wave)
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if max-min < 1 {
		t.Fatalf("shadowing spread %g dB too small", max-min)
	}
}

func TestAddNoiseLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	link := Link{Rng: rng}
	wave := make([]complex128, 1<<14)
	if err := link.AddNoise(wave); err != nil {
		t.Fatal(err)
	}
	// Noise power over the full 20 MHz should be the floor + 10 dB.
	got := RSSIDBm(wave)
	want := NoiseFloorDBm + 10
	if math.Abs(got-want) > 0.5 {
		t.Fatalf("noise power %g dBm, want %g", got, want)
	}
	if err := (Link{}).AddNoise(wave); err == nil {
		t.Fatal("AddNoise without Rng accepted")
	}
}

func TestAddNoiseNoiseFree(t *testing.T) {
	wave := make([]complex128, 256)
	for i := range wave {
		wave[i] = complex(float64(i), -float64(i))
	}
	before := append([]complex128(nil), wave...)
	// Explicit noise-free mode needs no Rng and must not touch the wave.
	if err := (Link{NoiseFree: true}).AddNoise(wave); err != nil {
		t.Fatal(err)
	}
	for i := range wave {
		if wave[i] != before[i] {
			t.Fatalf("sample %d modified in noise-free mode", i)
		}
	}
	// NoiseFree wins even when an Rng is present.
	link := Link{NoiseFree: true, Rng: rand.New(rand.NewSource(5))}
	if err := link.AddNoise(wave); err != nil {
		t.Fatal(err)
	}
	for i := range wave {
		if wave[i] != before[i] {
			t.Fatalf("sample %d modified in noise-free mode with Rng", i)
		}
	}
}

func TestNoisePowerBandwidthScaling(t *testing.T) {
	if math.Abs(NoisePowerDBm(2e6)-NoiseFloorDBm) > 1e-9 {
		t.Fatal("2 MHz noise power must equal the floor")
	}
	if math.Abs(NoisePowerDBm(20e6)-(NoiseFloorDBm+10)) > 1e-9 {
		t.Fatal("20 MHz noise power must be floor + 10 dB")
	}
}

func TestWiFiChannelFrequency(t *testing.T) {
	got, err := WiFiChannelFrequency(13)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2472e6 {
		t.Fatalf("channel 13 = %g Hz", got)
	}
	if _, err := WiFiChannelFrequency(14); err == nil {
		t.Error("channel 14 accepted")
	}
}

func TestMeasureBandDBm(t *testing.T) {
	// A flat complex tone at +3 MHz scaled to -40 dBm measures -40 dBm in
	// its band.
	n := 4096
	wave := make([]complex128, n)
	for i := range wave {
		phase := 2 * math.Pi * 3e6 * float64(i) / 20e6
		wave[i] = complex(math.Cos(phase), math.Sin(phase))
	}
	dsp.ScaleToPower(wave, dsp.FromDB(-40))
	got, err := MeasureBandDBm(wave, 20e6, 2e6, 4e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(-40)) > 0.1 {
		t.Fatalf("band measurement %g dBm, want -40", got)
	}
}

func TestApplyCFORotates(t *testing.T) {
	wave := make([]complex128, 100)
	for i := range wave {
		wave[i] = 1
	}
	out := ApplyCFO(wave, 20e6, 5e6)
	// At fs/4 offset, sample 1 is rotated by 90 degrees.
	if math.Abs(real(out[1])) > 1e-9 || math.Abs(imag(out[1])-1) > 1e-9 {
		t.Fatalf("sample 1 = %v, want i", out[1])
	}
}

func TestMultipathApply(t *testing.T) {
	m := Multipath{Taps: []complex128{1, 0.5}, Delays: []int{0, 2}}
	wave := []complex128{1, 0, 0, 0}
	out, err := m.Apply(wave)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{1, 0, 0.5, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
	if _, err := (Multipath{Taps: []complex128{1}, Delays: []int{0, 1}}).Apply(wave); err == nil {
		t.Fatal("mismatched taps accepted")
	}
	if _, err := (Multipath{Taps: []complex128{1}, Delays: []int{-1}}).Apply(wave); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestTwoRayProfile(t *testing.T) {
	m := TwoRay(6, 5)
	if len(m.Taps) != 2 || m.Delays[1] != 5 {
		t.Fatalf("profile %+v", m)
	}
	// Echo magnitude ~ -6 dB.
	mag := real(m.Taps[1])*real(m.Taps[1]) + imag(m.Taps[1])*imag(m.Taps[1])
	if math.Abs(10*math.Log10(mag)-(-6)) > 0.3 {
		t.Fatalf("echo power %.1f dB", 10*math.Log10(mag))
	}
}
