package channel

import (
	"fmt"
	"math"
	"math/cmplx"

	"sledzig/internal/obs"
)

// Impairments beyond path loss: carrier frequency offset (free-running
// oscillators) and multipath (a tapped delay line). The paper's USRP/
// TelosB testbed exhibits both; the receiver chains are validated against
// them in the impairment tests.

// ApplyCFO rotates the waveform by a carrier offset of offsetHz at the
// given sample rate, as a mismatch between transmit and receive
// oscillators would.
func ApplyCFO(wave []complex128, sampleRate, offsetHz float64) []complex128 {
	out := make([]complex128, len(wave))
	step := 2 * math.Pi * offsetHz / sampleRate
	for i, v := range wave {
		out[i] = v * cmplx.Exp(complex(0, step*float64(i)))
	}
	if r := obs.Default(); r != nil {
		r.Counter("channel.impairments.cfo").Inc()
		if bus := r.Bus(); bus.Active() {
			bus.Publish(obs.Event{Source: "channel", Kind: "impairment.cfo", Node: -1,
				Detail: fmt.Sprintf("offset_hz=%g", offsetHz)})
		}
	}
	return out
}

// Multipath is a static tapped-delay-line channel. Taps[0] is the direct
// path; Delays are in samples.
type Multipath struct {
	Taps   []complex128
	Delays []int
}

// TwoRay builds the common two-path office profile: a direct path and one
// reflection echoDB below it arriving delaySamples later.
func TwoRay(echoDB float64, delaySamples int) Multipath {
	amp := math.Pow(10, -echoDB/20)
	return Multipath{
		Taps:   []complex128{1, complex(amp*0.7, amp*0.71)},
		Delays: []int{0, delaySamples},
	}
}

// Apply convolves the waveform with the channel. The output has the same
// length; echo tails beyond it are dropped.
func (m Multipath) Apply(wave []complex128) ([]complex128, error) {
	if len(m.Taps) != len(m.Delays) {
		return nil, fmt.Errorf("channel: %d taps but %d delays", len(m.Taps), len(m.Delays))
	}
	out := make([]complex128, len(wave))
	for t, tap := range m.Taps {
		d := m.Delays[t]
		if d < 0 {
			return nil, fmt.Errorf("channel: negative delay %d", d)
		}
		for i, v := range wave {
			j := i + d
			if j >= len(out) {
				break
			}
			out[j] += v * tap
		}
	}
	if r := obs.Default(); r != nil {
		r.Counter("channel.impairments.multipath").Inc()
		if bus := r.Bus(); bus.Active() {
			bus.Publish(obs.Event{Source: "channel", Kind: "impairment.multipath", Node: -1,
				Detail: fmt.Sprintf("taps=%d", len(m.Taps))})
		}
	}
	return out, nil
}
