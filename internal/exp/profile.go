package exp

import (
	"fmt"
	"math"
	"math/rand"

	"sledzig/internal/bits"
	"sledzig/internal/channel"
	"sledzig/internal/codec"
	"sledzig/internal/core"
	"sledzig/internal/dsp"
	"sledzig/internal/mac"
	"sledzig/internal/wifi"
)

// Variant identifies a WiFi transmitter behaviour in the sweeps.
type Variant struct {
	Name string
	// Mode is the WiFi PHY mode; SledZig is false for the normal-WiFi
	// baseline.
	Mode    wifi.Mode
	SledZig bool
	// Codec selects a non-default registry backend for the protected
	// variant ("" keeps the plain SledZig encoder). Only read when SledZig
	// is true.
	Codec string
}

// PaperVariants returns the four curves the paper sweeps in Figs. 14-16:
// normal WiFi and SledZig under the three QAM modulations.
func PaperVariants() []Variant {
	return []Variant{
		{Name: "Normal", Mode: wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}, SledZig: false},
		{Name: "QAM-16", Mode: wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}, SledZig: true},
		{Name: "QAM-64", Mode: wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}, SledZig: true},
		{Name: "QAM-256", Mode: wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}, SledZig: true},
	}
}

// bandShareDB measures how much of a waveform's total power falls inside
// the 2 MHz window of ch, in dB (negative).
func bandShareDB(wave []complex128, ch core.ZigBeeChannel) (float64, error) {
	lo, hi := ch.BandHz()
	band, err := dsp.BandPower(wave, wifi.SampleRate, lo, hi)
	if err != nil {
		return 0, err
	}
	total := dsp.Power(wave)
	if total <= 0 {
		return 0, fmt.Errorf("exp: waveform has no power")
	}
	return dsp.DB(band / total), nil
}

// payloadWave renders the DATA-field waveform of a variant for profile
// measurement.
func payloadWave(conv wifi.Convention, v Variant, ch core.ZigBeeChannel, rng *rand.Rand) ([]complex128, error) {
	payload := bits.RandomBytes(rng, 600)
	if !v.SledZig {
		frame, err := wifi.Transmitter{Mode: v.Mode, Convention: conv}.Frame(payload)
		if err != nil {
			return nil, err
		}
		return frame.DataWaveform()
	}
	if v.Codec != "" && v.Codec != "sledzig" {
		cdc, err := codec.New(v.Codec, codec.Params{Convention: conv, Mode: v.Mode, Channel: ch})
		if err != nil {
			return nil, err
		}
		if mp := cdc.MaxPayload(); len(payload) > mp {
			payload = payload[:mp]
		}
		enc, err := cdc.Encode(payload)
		if err != nil {
			return nil, err
		}
		// The DATA symbols are the final NumSymbols*SymbolLength samples
		// regardless of the backend's framing.
		return enc.Waveform[len(enc.Waveform)-enc.NumSymbols*wifi.SymbolLength:], nil
	}
	plan, err := core.NewPlan(conv, v.Mode, ch)
	if err != nil {
		return nil, err
	}
	res, err := (&core.Encoder{Plan: plan}).Encode(payload)
	if err != nil {
		return nil, err
	}
	return res.Frame.DataWaveform()
}

// preambleShareDB measures the in-band share of the preamble + SIGNAL
// segment (which SledZig cannot suppress).
func preambleShareDB(mode wifi.Mode, ch core.ZigBeeChannel) (float64, error) {
	wave := wifi.Preamble()
	sigPts, err := wifi.EncodeSignalSymbol(mode, 100)
	if err != nil {
		return 0, err
	}
	sig, err := wifi.AssembleSymbol(sigPts, 0)
	if err != nil {
		return 0, err
	}
	wave = append(wave, sig...)
	return bandShareDB(wave, ch)
}

// DeriveProfile measures the in-band WiFi profile of a variant on a
// channel from actual PHY waveforms, anchored to the paper's received
// power calibration. The pilot component is computed analytically (one
// unit-power subcarrier out of the 52 active ones).
func DeriveProfile(conv wifi.Convention, v Variant, ch core.ZigBeeChannel, seed int64) (mac.WiFiProfile, error) {
	rng := rand.New(rand.NewSource(seed))
	wave, err := payloadWave(conv, v, ch, rng)
	if err != nil {
		return mac.WiFiProfile{}, err
	}
	share, err := bandShareDB(wave, ch)
	if err != nil {
		return mac.WiFiProfile{}, err
	}
	preShare, err := preambleShareDB(v.Mode, ch)
	if err != nil {
		return mac.WiFiProfile{}, err
	}
	total := channel.WiFiTotalRxAt1mDBm
	inBand := total + share
	profile := mac.WiFiProfile{
		PreambleDBm: total + preShare,
		PilotDBm:    math.Inf(-1),
	}
	if v.SledZig && (v.Codec == "" || v.Codec == "sledzig") && len(ch.PilotSubcarriers()) > 0 {
		// Pilot tone: one of the 52 active subcarriers at unit power.
		pilot := total + dsp.DB(float64(len(ch.PilotSubcarriers()))/52.0)
		profile.PilotDBm = pilot
		rem := dsp.FromDB(inBand) - dsp.FromDB(pilot)
		if rem <= 0 {
			// Measurement jitter: the pilot accounts for (nearly) all the
			// in-band power; keep a small wideband residue.
			rem = dsp.FromDB(inBand) * 0.05
		}
		profile.DataDBm = dsp.DB(rem)
	} else {
		profile.DataDBm = inBand
	}
	return profile, nil
}

// InBandRSSIDBm returns the RSSI a TelosB at distance d (meters) collects
// from the profile's payload, including the noise floor (what Figs. 11-12
// plot).
func InBandRSSIDBm(p mac.WiFiProfile, d float64, txGainDelta int) float64 {
	pl := channel.PathLossDB(d, 1) - float64(txGainDelta)
	return dsp.AddPowersDB(p.TotalPayloadDBm()-pl, channel.NoiseFloorDBm)
}
