package exp

import (
	"math"
	"math/rand"

	"sledzig/internal/bits"
	"sledzig/internal/wifi"
)

// MinSNRRow compares the paper's Table IV minimum-SNR column against this
// PHY's measured requirement (hard-decision Viterbi; expect ~1-2 dB above
// textbook soft-decision figures).
type MinSNRRow struct {
	Mode       wifi.Mode
	PaperDB    float64
	MeasuredDB float64 // hard-decision chain; NaN if never reached
	SoftDB     float64 // soft-decision chain; NaN if never reached
}

// MinSNRSweep measures each paper mode's required SNR by decoding frames
// through the full waveform chain under AWGN. frames controls the per-
// point accuracy (10 gives a coarse but fast estimate). The modes are
// measured in parallel across GOMAXPROCS workers, each with its own rng
// derived from seed and the mode index, so results are deterministic for a
// given seed regardless of the worker count.
func MinSNRSweep(conv wifi.Convention, seed int64, frames int) ([]MinSNRRow, error) {
	if frames <= 0 {
		frames = 10
	}
	modes := wifi.PaperModes()
	rows := make([]MinSNRRow, len(modes))
	err := parallelFor(len(modes), func(i int) error {
		mode := modes[i]
		rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		paper := paperMinSNR(mode)
		row := MinSNRRow{Mode: mode, PaperDB: paper, MeasuredDB: math.NaN(), SoftDB: math.NaN()}
		for snr := paper - 6; snr <= paper+8; snr += 2 {
			per, err := measurePER(conv, mode, snr, frames, false, rng)
			if err != nil {
				return err
			}
			if per <= 0.1 {
				row.MeasuredDB = snr
				break
			}
		}
		for snr := paper - 8; snr <= paper+8; snr += 2 {
			per, err := measurePER(conv, mode, snr, frames, true, rng)
			if err != nil {
				return err
			}
			if per <= 0.1 {
				row.SoftDB = snr
				break
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func paperMinSNR(m wifi.Mode) float64 {
	switch m {
	case wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}:
		return 11
	case wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate34}:
		return 15
	case wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}:
		return 18
	case wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate34}:
		return 20
	case wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate56}:
		return 25
	case wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}:
		return 29
	case wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate56}:
		return 31
	}
	return 0
}

// measurePER sends frames through AWGN at the given SNR (signal power over
// noise power within the occupied bandwidth) and counts decode failures.
func measurePER(conv wifi.Convention, mode wifi.Mode, snrDB float64, frames int, soft bool, rng *rand.Rand) (float64, error) {
	tx := wifi.Transmitter{Mode: mode, Convention: conv}
	rx := wifi.Receiver{Convention: conv, Soft: soft}
	failures := 0
	for f := 0; f < frames; f++ {
		payload := bits.RandomBytes(rng, 100)
		frame, err := tx.Frame(payload)
		if err != nil {
			return 0, err
		}
		wave, err := frame.Waveform()
		if err != nil {
			return 0, err
		}
		// Signal power measured over the occupied samples; noise sized so
		// in-band SNR hits the target (52 of 64 subcarriers are occupied,
		// so the full-rate noise is scaled up by 64/52).
		var sig float64
		for _, v := range wave {
			sig += real(v)*real(v) + imag(v)*imag(v)
		}
		sig /= float64(len(wave))
		noise := sig / math.Pow(10, snrDB/10) * 64.0 / 52.0
		sigma := math.Sqrt(noise / 2)
		noisy := make([]complex128, len(wave))
		for i, v := range wave {
			noisy[i] = v + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
		res, err := rx.Receive(noisy)
		if err != nil {
			failures++
			continue
		}
		if len(res.PSDU) != len(payload) {
			failures++
			continue
		}
		for i := range payload {
			if res.PSDU[i] != payload[i] {
				failures++
				break
			}
		}
	}
	return float64(failures) / float64(frames), nil
}
