package exp

import (
	"math"
	"testing"

	"sledzig/internal/core"
	"sledzig/internal/wifi"
)

func TestTheoreticalReductionsMatchPaper(t *testing.T) {
	for _, r := range TheoreticalReductions() {
		if math.Abs(r.ComputedDB-r.PaperDB) > 0.05 {
			t.Errorf("%v: computed %.2f dB vs paper %.1f dB", r.Modulation, r.ComputedDB, r.PaperDB)
		}
	}
}

func TestTableIIExactMatch(t *testing.T) {
	got, want, err := TableII(wifi.ConventionPaper)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d positions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestDeriveProfileAnchors(t *testing.T) {
	// Normal WiFi on a pilot-bearing channel must land near the paper's
	// -60 dBm anchor; on CH4 a few dB lower.
	normal := Variant{Name: "n", Mode: wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}}
	p13, err := DeriveProfile(wifi.ConventionPaper, normal, core.CH2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v := p13.TotalPayloadDBm(); v < -62.5 || v > -59 {
		t.Fatalf("normal CH2 in-band %g dBm, want ~-60", v)
	}
	p4, err := DeriveProfile(wifi.ConventionPaper, normal, core.CH4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if diff := p13.TotalPayloadDBm() - p4.TotalPayloadDBm(); diff < 0.5 || diff > 5 {
		t.Fatalf("CH4 should sit a few dB below CH2; diff %g dB", diff)
	}
	// SledZig QAM-256 on CH4 drops by >= 11 dB relative to normal.
	sled := Variant{Name: "s", Mode: wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}, SledZig: true}
	ps, err := DeriveProfile(wifi.ConventionPaper, sled, core.CH4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if drop := p4.TotalPayloadDBm() - ps.TotalPayloadDBm(); drop < 11 {
		t.Fatalf("QAM-256 CH4 drop %g dB, want >= 11", drop)
	}
	// Pilot-bearing channels carry a pilot component; CH4 does not.
	ps13, err := DeriveProfile(wifi.ConventionPaper, sled, core.CH1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(ps13.PilotDBm, -1) {
		t.Fatal("CH1 SledZig profile lost its pilot component")
	}
	if !math.IsInf(ps.PilotDBm, -1) {
		t.Fatal("CH4 SledZig profile has a pilot component")
	}
}

func TestFig12MatchesPaperWithinTolerance(t *testing.T) {
	fig, err := Fig12(wifi.ConventionPaper, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper values per channel (CH1..CH4) per series.
	paper := map[string][4]float64{
		"Normal":  {-60, -60, -60, -64},
		"QAM-16":  {-64, -64, -64, -70},
		"QAM-64":  {-66, -66, -66, -75},
		"QAM-256": {-68, -68, -68, -78},
	}
	for _, s := range fig.Series {
		want := paper[s.Name]
		for i := 0; i < 4; i++ {
			if math.Abs(s.Y[i]-want[i]) > 2.5 {
				t.Errorf("%s CH%d: %.1f dBm vs paper %.0f (tolerance 2.5 dB)", s.Name, i+1, s.Y[i], want[i])
			}
		}
	}
}

func TestFig11SevenSubcarriersSaturate(t *testing.T) {
	fig, err := Fig11(wifi.ConventionPaper, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if s.Name == "CH4" {
			// 5 subcarriers within ~1.5 dB of 6.
			if math.Abs(s.At(5)-s.At(6)) > 1.5 {
				t.Errorf("CH4: 5 vs 6 subcarriers differ by %.1f dB", math.Abs(s.At(5)-s.At(6)))
			}
			continue
		}
		// Adding the 8th subcarrier must not help more than the repeat
		// variation (the paper: flat from 7 to 8).
		if s.At(7)-s.At(8) > 2 {
			t.Errorf("%s: 8 subcarriers still improve by %.1f dB over 7", s.Name, s.At(7)-s.At(8))
		}
		// But 6 -> full window must show a real improvement vs 4.
		if s.At(4)-s.At(7) < 1 {
			t.Errorf("%s: pinning 7 vs 4 subcarriers only buys %.1f dB", s.Name, s.At(4)-s.At(7))
		}
	}
}

func TestFig13Anchors(t *testing.T) {
	fig := Fig13()
	// Series 0 is dZ=0.5m: -75 dBm at gain 31.
	if v := fig.Series[0].At(31); math.Abs(v-(-74.9)) > 0.5 {
		t.Fatalf("0.5 m gain 31: %.1f dBm", v)
	}
	// dZ=3m at gain 25 within 3 dB of the floor.
	if v := fig.Series[3].At(25); v < -91 || v > -88 {
		t.Fatalf("3 m gain 25: %.1f dBm, want near the floor", v)
	}
}

func TestFig17Asymmetry(t *testing.T) {
	fig := Fig17()
	w := fig.Series[0].At(0.5)
	z := fig.Series[1].At(0.5)
	if a := w - z; a < 25 || a > 35 {
		t.Fatalf("asymmetry at 0.5 m: %.1f dB", a)
	}
}

func TestFig5bNotchDepth(t *testing.T) {
	for _, tc := range []struct {
		mod     wifi.Modulation
		rate    wifi.CodeRate
		ch      core.ZigBeeChannel
		minDrop float64
	}{
		{wifi.QAM16, wifi.Rate12, core.CH2, 3.5},
		{wifi.QAM256, wifi.Rate34, core.CH4, 12},
	} {
		spec, err := Fig5b(wifi.ConventionPaper, wifi.Mode{Modulation: tc.mod, CodeRate: tc.rate}, tc.ch, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d := spec.BandDropDB(); d < tc.minDrop {
			t.Errorf("%v %v: band drop %.1f dB < %.1f", tc.mod, tc.ch, d, tc.minDrop)
		}
		// Out-of-channel spectrum is untouched (within measurement noise):
		// the mean per-bin PSD difference away from the notch stays small.
		lo, hi := tc.ch.BandHz()
		var diff float64
		var n int
		for i, f := range spec.FreqMHz {
			hz := f * 1e6
			if hz >= -8e6 && hz <= 8e6 && (hz < lo-1e6 || hz > hi+1e6) {
				diff += spec.NormalDB[i] - spec.SledZigDB[i]
				n++
			}
		}
		if avg := diff / float64(n); math.Abs(avg) > 0.6 {
			t.Errorf("%v %v: out-of-channel PSD moved by %.2f dB on average", tc.mod, tc.ch, avg)
		}
	}
}

func TestFig14Ordering(t *testing.T) {
	opts := ThroughputOptions{Seed: 1, Duration: 3}
	fig, err := Fig14(core.CH3, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseline := 63.0
	var cross [4]float64
	for i, s := range fig.Series {
		cross[i] = s.CrossoverX(0.8 * baseline)
	}
	// Normal must recover much later than every SledZig variant.
	for i := 1; i < 4; i++ {
		if !(cross[i] < cross[0]) {
			t.Fatalf("series %d crossover %.1f m not before normal's %.1f m", i, cross[i], cross[0])
		}
	}
	// Higher QAM never recovers later than lower QAM.
	if cross[3] > cross[1] || cross[2] > cross[1] {
		t.Fatalf("crossover ordering violated: %v", cross)
	}
}

func TestFig16Ordering(t *testing.T) {
	pts, err := Fig16(ThroughputOptions{Seed: 1, Duration: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	means := map[string]map[float64]float64{}
	for _, p := range pts {
		if means[p.Variant] == nil {
			means[p.Variant] = map[float64]float64{}
		}
		means[p.Variant][p.DutyRatio] = p.Stats.Mean
	}
	// At 70% duty: QAM-256 and QAM-64 far above normal.
	if !(means["QAM-256"][0.7] > means["Normal"][0.7]+20) {
		t.Fatalf("QAM-256 at 70%%: %.1f vs normal %.1f", means["QAM-256"][0.7], means["Normal"][0.7])
	}
	if !(means["QAM-64"][0.7] > means["Normal"][0.7]+20) {
		t.Fatalf("QAM-64 at 70%%: %.1f vs normal %.1f", means["QAM-64"][0.7], means["Normal"][0.7])
	}
	// Normal decays monotonically (within noise) and collapses at 90%.
	if means["Normal"][0.9] > 5 {
		t.Fatalf("normal WiFi at 90%% duty still gives %.1f kbit/s", means["Normal"][0.9])
	}
}

func TestBoxStats(t *testing.T) {
	s := NewBoxStats([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("stats %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles %+v", s)
	}
	if z := NewBoxStats(nil); z.Max != 0 {
		t.Fatal("empty stats not zero")
	}
}

func TestSeriesHelpers(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(3, 30)
	if s.At(2) != 20 || s.At(99) != 30 {
		t.Fatal("At lookup wrong")
	}
	if s.CrossoverX(15) != 2 {
		t.Fatal("CrossoverX wrong")
	}
	if !math.IsNaN(s.CrossoverX(99)) {
		t.Fatal("unreachable crossover should be NaN")
	}
}

func TestFigureString(t *testing.T) {
	fig := &Figure{ID: "T", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{2}}}}
	out := fig.String()
	if len(out) == 0 {
		t.Fatal("empty render")
	}
}

// TestPhyLevelMixing is the repository's strongest validation: real WiFi
// waveforms mixed onto a real ZigBee frame at sample level. Under normal
// WiFi at 1.2 m every frame dies; under the SledZig waveform the
// unsynchronized receiver decodes essentially everything.
func TestPhyLevelMixing(t *testing.T) {
	res, err := RunPhyLevel(PhyLevelConfig{Seed: 1, Trials: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.NormalPER < 0.9 {
		t.Fatalf("normal WiFi PER %.2f, expected ~1 at SINR %.1f dB", res.NormalPER, res.NormalSINRDB)
	}
	if res.SledZigPER > 0.25 {
		t.Fatalf("SledZig PER %.2f, expected ~0 at SINR %.1f dB", res.SledZigPER, res.SledZigSINRDB)
	}
	if res.NormalInBandDBm-res.SledZigInBandDBm < 11 {
		t.Fatalf("in-band drop %.1f dB too small", res.NormalInBandDBm-res.SledZigInBandDBm)
	}
}

// TestPhyLevelPilotChannel repeats the mixing experiment on a
// pilot-bearing channel at a geometry where the smaller (pilot-limited)
// reduction still flips the outcome.
func TestPhyLevelPilotChannel(t *testing.T) {
	res, err := RunPhyLevel(PhyLevelConfig{
		Seed:        2,
		Trials:      8,
		Channel:     core.CH2,
		Mode:        wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34},
		ZigBeeRxDBm: -72,
		DWZ:         2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NormalPER < 0.7 {
		t.Fatalf("normal WiFi PER %.2f at SINR %.1f dB", res.NormalPER, res.NormalSINRDB)
	}
	if res.SledZigPER > 0.4 {
		t.Fatalf("SledZig PER %.2f at SINR %.1f dB", res.SledZigPER, res.SledZigSINRDB)
	}
}

func TestMinSNRWithinHardDecisionMargin(t *testing.T) {
	rows, err := MinSNRSweep(wifi.ConventionPaper, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.IsNaN(r.MeasuredDB) {
			t.Errorf("%v: never reached PER <= 0.1", r.Mode)
			continue
		}
		diff := r.MeasuredDB - r.PaperDB
		if diff < -2 || diff > 6 {
			t.Errorf("%v: measured %0.f dB vs paper %0.f dB (hard-decision margin exceeded)",
				r.Mode, r.MeasuredDB, r.PaperDB)
		}
	}
	// Higher-order modes need monotonically more SNR.
	for i := 1; i < len(rows); i++ {
		if rows[i].MeasuredDB < rows[i-1].MeasuredDB-2 {
			t.Errorf("min SNR not roughly monotone: %v", rows)
		}
	}
}

func TestFleetSweepScalesWithSledZig(t *testing.T) {
	pts, err := FleetSweep(ThroughputOptions{Seed: 1, Duration: 4})
	if err != nil {
		t.Fatal(err)
	}
	tput := map[bool]map[int]float64{false: {}, true: {}}
	for _, p := range pts {
		tput[p.SledZig][p.Nodes] = p.Throughput
	}
	// Stock AP at 3 m silences the fleet regardless of size.
	for n, v := range tput[false] {
		if v > 5 {
			t.Errorf("stock AP: %d nodes reach %.1f kbit/s, expected ~0", n, v)
		}
	}
	// SledZig aggregate grows with node count.
	if !(tput[true][8] > tput[true][1]) {
		t.Fatalf("fleet throughput does not scale: %v", tput[true])
	}
}

func TestCCAModeAblationShape(t *testing.T) {
	rows, err := RunCCAModeAblation(ThroughputOptions{Seed: 1, Duration: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Carrier-only CCA can never reduce throughput below energy-CCA:
		// it strictly removes a reason to defer.
		if r.CarrierKbps+1 < r.EnergyKbps {
			t.Fatalf("%s at %.0f m: carrier-only %.1f below energy %.1f",
				r.Variant, r.DWZ, r.CarrierKbps, r.EnergyKbps)
		}
	}
	// At 8 m both modes converge to the baseline for both variants.
	for _, r := range rows {
		if r.DWZ == 8 && (r.EnergyKbps < 55 || r.CarrierKbps < 55) {
			t.Fatalf("%s at 8 m should reach baseline: %+v", r.Variant, r)
		}
	}
}

func TestPERCurveWaterfall(t *testing.T) {
	fig, err := PERCurve(wifi.ConventionPaper,
		wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate34}, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	hard, soft := fig.Series[0], fig.Series[1]
	// Both waterfalls start near 1 and end near 0.
	for _, s := range []Series{hard, soft} {
		if s.Y[0] < 0.8 {
			t.Fatalf("%s: PER %.2f at the lowest SNR, want ~1", s.Name, s.Y[0])
		}
		if s.Y[len(s.Y)-1] > 0.2 {
			t.Fatalf("%s: PER %.2f at the highest SNR, want ~0", s.Name, s.Y[len(s.Y)-1])
		}
	}
	// The soft chain is at least as good at every point, within sampling
	// noise.
	for i := range hard.X {
		if soft.Y[i] > hard.Y[i]+0.25 {
			t.Fatalf("soft PER %.2f above hard %.2f at %g dB", soft.Y[i], hard.Y[i], hard.X[i])
		}
	}
	if g := SoftGainDB(fig); g < 0 {
		t.Fatalf("soft gain %g dB negative", g)
	}
}

func TestFig15NormalCollapsesFirst(t *testing.T) {
	fig, err := Fig15(ThroughputOptions{Seed: 1, Duration: 3})
	if err != nil {
		t.Fatal(err)
	}
	normal := fig.Series[0]
	q256 := fig.Series[3]
	// Normal WiFi near-baseline at d_Z = 1 m, collapsed by 2 m.
	if normal.At(1) < 50 {
		t.Fatalf("normal at 1 m: %.1f kbit/s", normal.At(1))
	}
	if normal.At(2) > 10 {
		t.Fatalf("normal at 2 m: %.1f kbit/s, expected collapse", normal.At(2))
	}
	// SledZig QAM-256 outlives normal at every stretched distance.
	for i := range normal.X {
		if q256.Y[i]+5 < normal.Y[i] {
			t.Fatalf("QAM-256 (%.1f) below normal (%.1f) at %.1f m", q256.Y[i], normal.Y[i], normal.X[i])
		}
	}
}
