package exp

import (
	"fmt"
	"strings"

	"sledzig/internal/core"
	"sledzig/internal/wifi"
)

// TheoryRow pairs the closed-form power reduction with the paper's value.
type TheoryRow struct {
	Modulation wifi.Modulation
	ComputedDB float64
	PaperDB    float64
}

// TheoreticalReductions reproduces the section III-B numbers: P_avg/P_low
// = 7.0 / 13.2 / 19.3 dB.
func TheoreticalReductions() []TheoryRow {
	return []TheoryRow{
		{wifi.QAM16, wifi.PowerReductionDB(wifi.QAM16), 7.0},
		{wifi.QAM64, wifi.PowerReductionDB(wifi.QAM64), 13.2},
		{wifi.QAM256, wifi.PowerReductionDB(wifi.QAM256), 19.3},
	}
}

// TableII returns the significant-bit positions of the first OFDM symbol
// (QAM-16, rate 1/2, CH2) in the paper's 1-based numbering, alongside the
// published row.
func TableII(conv wifi.Convention) (got, want []int, err error) {
	mode := wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	cs, err := core.SymbolConstraints(conv, mode, core.CH2.DataSubcarriers())
	if err != nil {
		return nil, nil, err
	}
	for _, c := range cs {
		got = append(got, c.PaperPosition())
	}
	want = []int{29, 30, 41, 42, 77, 78, 89, 90, 125, 138, 172, 173, 183, 186}
	return got, want, nil
}

// FormatOverheadTable renders Tables III and IV side by side with the
// paper's printed values.
func FormatOverheadTable(conv wifi.Convention) (string, error) {
	rows, err := core.OverheadTable(conv)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tables III & IV — extra bits per OFDM symbol and WiFi throughput loss (%v convention)\n", conv)
	fmt.Fprintf(&b, "%-18s%8s | %14s%14s | %16s%16s | %9s\n",
		"mode", "N_DBPS", "extra CH1-3", "extra CH4", "loss CH1-3", "loss CH4", "min SNR")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s%8d | %6d (p:%3d)%6d (p:%3d) | %6.2f%% (p:%5.2f%%)%6.2f%% (p:%5.2f%%) | %6.0f dB\n",
			r.Mode, r.BitsPerSymbol,
			r.ExtraBitsCH13, r.PaperExtraCH13,
			r.ExtraBitsCH4, r.PaperExtraCH4,
			100*r.LossCH13, r.PaperLossCH13Pct,
			100*r.LossCH4, r.PaperLossCH4Pct,
			r.MinSNRDB)
	}
	b.WriteString("(p: value printed in the paper; deviations documented in EXPERIMENTS.md)\n")
	return b.String(), nil
}
