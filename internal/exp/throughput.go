package exp

import (
	"fmt"

	"sledzig/internal/core"
	"sledzig/internal/mac"
	"sledzig/internal/wifi"
)

// ThroughputOptions tune the MAC sweeps; the zero value reproduces the
// paper's settings with durations long enough for stable statistics.
type ThroughputOptions struct {
	Convention wifi.Convention
	Seed       int64
	Duration   float64 // simulated seconds per point (default 10)
	// WiFiBurstAirtime is the per-emission airtime of the USRP streamer.
	// Zero selects a per-figure default (20 ms for the Fig. 14 distance
	// sweeps, 6 ms for the Fig. 16 duty sweep — the burst length is the
	// one USRP traffic parameter the paper does not report, and it sets
	// how often the unsuppressable preamble appears).
	WiFiBurstAirtime float64
}

func (o ThroughputOptions) withDefaults(defaultBurst float64) ThroughputOptions {
	if o.Duration == 0 {
		o.Duration = 10
	}
	if o.WiFiBurstAirtime == 0 {
		o.WiFiBurstAirtime = defaultBurst
	}
	return o
}

// Fig14 reproduces "ZigBee throughput in terms of d_WZ under continuous
// WiFi transmission": sub-figure (a) uses a pilot-bearing channel (CH3 as
// in the paper), sub-figure (b) uses CH4. The carrier-sense mechanism
// (energy-detect CCA) drives the crossovers.
func Fig14(ch core.ZigBeeChannel, opts ThroughputOptions) (*Figure, error) {
	opts = opts.withDefaults(20e-3)
	sub := "(a)"
	if ch == core.CH4 {
		sub = "(b)"
	}
	fig := &Figure{
		ID:     "Fig. 14" + sub,
		Title:  fmt.Sprintf("ZigBee throughput vs d_WZ, continuous WiFi, %v, d_Z = 1 m", ch),
		XLabel: "d_WZ (m)",
		YLabel: "throughput (kbit/s)",
	}
	distances := []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5, 6, 7, 8, 8.5, 9, 10}
	variants := PaperVariants()
	results := make([][]float64, len(variants))
	profiles := make([]mac.WiFiProfile, len(variants))
	for i, v := range variants {
		p, err := DeriveProfile(opts.Convention, v, ch, opts.Seed)
		if err != nil {
			return nil, err
		}
		profiles[i] = p
		results[i] = make([]float64, len(distances))
	}
	err := parallelFor(len(variants)*len(distances), func(idx int) error {
		vi, di := idx/len(distances), idx%len(distances)
		res, err := mac.Run(mac.Config{
			Seed:             opts.Seed + int64(distances[di]*100),
			Duration:         opts.Duration,
			DWZ:              distances[di],
			DZ:               1,
			Profile:          profiles[vi],
			WiFiMode:         variants[vi].Mode,
			WiFiFrameAirtime: opts.WiFiBurstAirtime,
			DutyRatio:        1,
			CCAMode:          mac.CCAEnergy,
		})
		if err != nil {
			return err
		}
		results[vi][di] = res.ZigBeeThroughputBps / 1e3
		return nil
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		s := Series{Name: v.Name}
		for di, d := range distances {
			s.Add(d, results[vi][di])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig15 reproduces "ZigBee throughput in terms of d_Z under continuous
// WiFi transmission": CH4, d_WZ = 6 m, the ZigBee link stretched until its
// SINR collapses. Standard-length WiFi frames (1500-byte PPDUs) expose the
// WiFi-preamble effect the paper highlights here.
func Fig15(opts ThroughputOptions) (*Figure, error) {
	opts = opts.withDefaults(0) // unused: Fig. 15 sends standard PPDUs
	fig := &Figure{
		ID:     "Fig. 15",
		Title:  "ZigBee throughput vs d_Z, continuous WiFi, CH4, d_WZ = 6 m",
		XLabel: "d_Z (m)",
		YLabel: "throughput (kbit/s)",
	}
	for _, v := range PaperVariants() {
		profile, err := DeriveProfile(opts.Convention, v, core.CH4, opts.Seed)
		if err != nil {
			return nil, err
		}
		s := Series{Name: v.Name}
		for dz := 1.0; dz <= 2.01; dz += 0.2 {
			res, err := mac.Run(mac.Config{
				Seed:      opts.Seed + int64(dz*1000),
				Duration:  opts.Duration,
				DWZ:       6,
				DZ:        dz,
				Profile:   profile,
				WiFiMode:  v.Mode,
				DutyRatio: 1,
				// Standard 1500-byte PPDUs: preamble every frame.
				WiFiPayload: 1500,
				CCAMode:     mac.CCAEnergy,
			})
			if err != nil {
				return nil, err
			}
			s.Add(dz, res.ZigBeeThroughputBps/1e3)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig16Point is one box of the Fig. 16 box plot.
type Fig16Point struct {
	Variant   string
	DutyRatio float64
	Stats     BoxStats
}

// Fig16 reproduces "ZigBee throughput under different WiFi data traffic":
// CH3, d_WZ = 1 m, d_Z = 0.5 m, sweeping the WiFi duty ratio with repeated
// runs per point. At this distance the paper's own data implies the
// TelosB CCA ignores WiFi energy (concurrent transmissions happen), so the
// runs use CCACarrierOnly; survival is then decided purely by the per-chip
// SINR — which is where SledZig's payload suppression pays off.
func Fig16(opts ThroughputOptions, runsPerPoint int) ([]Fig16Point, error) {
	opts = opts.withDefaults(6e-3)
	if runsPerPoint <= 0 {
		runsPerPoint = 10
	}
	variants := PaperVariants()
	duties := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	profiles := make([]mac.WiFiProfile, len(variants))
	for i, v := range variants {
		p, err := DeriveProfile(opts.Convention, v, core.CH3, opts.Seed)
		if err != nil {
			return nil, err
		}
		profiles[i] = p
	}
	samples := make([][]float64, len(variants)*len(duties))
	for i := range samples {
		samples[i] = make([]float64, runsPerPoint)
	}
	err := parallelFor(len(samples)*runsPerPoint, func(idx int) error {
		point, r := idx/runsPerPoint, idx%runsPerPoint
		vi, di := point/len(duties), point%len(duties)
		res, err := mac.Run(mac.Config{
			Seed:             opts.Seed + int64(duties[di]*100)*1000 + int64(r),
			Duration:         opts.Duration,
			DWZ:              1,
			DZ:               0.5,
			Profile:          profiles[vi],
			WiFiMode:         variants[vi].Mode,
			WiFiFrameAirtime: opts.WiFiBurstAirtime,
			DutyRatio:        duties[di],
			CCAMode:          mac.CCACarrierOnly,
		})
		if err != nil {
			return err
		}
		samples[point][r] = res.ZigBeeThroughputBps / 1e3
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig16Point, 0, len(samples))
	for vi, v := range variants {
		for di, duty := range duties {
			out = append(out, Fig16Point{
				Variant:   v.Name,
				DutyRatio: duty,
				Stats:     NewBoxStats(samples[vi*len(duties)+di]),
			})
		}
	}
	return out, nil
}
