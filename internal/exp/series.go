// Package exp regenerates every table and figure of the SledZig paper's
// evaluation section from the substrates in this repository: PHY waveforms
// for the RSSI/spectrum figures, the calibrated radio model for the link
// budgets, and the MAC simulator for the throughput figures. Each
// experiment returns plain data structures; cmd/experiments renders them
// next to the paper's reported values.
package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named curve: y(x) samples in ascending x order.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a sample.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// At returns y at the first x >= want (or the last sample).
func (s *Series) At(want float64) float64 {
	for i, x := range s.X {
		if x >= want {
			return s.Y[i]
		}
	}
	if len(s.Y) == 0 {
		return math.NaN()
	}
	return s.Y[len(s.Y)-1]
}

// CrossoverX returns the smallest x at which y reaches level (useful for
// "ZigBee recovers its baseline at distance d" readings). NaN when the
// series never reaches it.
func (s *Series) CrossoverX(level float64) float64 {
	for i, y := range s.Y {
		if y >= level {
			return s.X[i]
		}
	}
	return math.NaN()
}

// Figure is a set of series with axis labels, ready to print.
type Figure struct {
	ID     string // e.g. "Fig. 14(a)"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// String renders the figure as an aligned text table, one row per x value.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%14s", s.Name)
	}
	b.WriteByte('\n')
	// Collect the union of x values.
	xsSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12.3g", x)
		for _, s := range f.Series {
			y := math.NaN()
			for i := range s.X {
				if s.X[i] == x {
					y = s.Y[i]
					break
				}
			}
			if math.IsNaN(y) {
				fmt.Fprintf(&b, "%14s", "-")
			} else {
				fmt.Fprintf(&b, "%14.2f", y)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(y axis: %s)\n", f.YLabel)
	return b.String()
}

// BoxStats summarizes a sample distribution the way the paper's box plots
// do.
type BoxStats struct {
	Min, Q1, Median, Q3, Max, Mean float64
}

// NewBoxStats computes quartiles (linear interpolation) over samples.
func NewBoxStats(samples []float64) BoxStats {
	if len(samples) == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	quantile := func(q float64) float64 {
		pos := q * float64(len(s)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return s[lo]
		}
		frac := pos - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	var mean float64
	for _, v := range s {
		mean += v
	}
	return BoxStats{
		Min:    s[0],
		Q1:     quantile(0.25),
		Median: quantile(0.5),
		Q3:     quantile(0.75),
		Max:    s[len(s)-1],
		Mean:   mean / float64(len(s)),
	}
}
