package exp

import (
	"math/rand"

	"sledzig/internal/wifi"
)

// PERCurve measures the frame error waterfall of one WiFi mode over AWGN
// through the full waveform chain, for both receiver flavours — the
// companion figure to the Table IV min-SNR validation.
func PERCurve(conv wifi.Convention, mode wifi.Mode, seed int64, frames int) (*Figure, error) {
	if frames <= 0 {
		frames = 20
	}
	paper := paperMinSNR(mode)
	fig := &Figure{
		ID:     "PER curve",
		Title:  "Frame error rate vs SNR, " + mode.String(),
		XLabel: "SNR (dB)",
		YLabel: "PER",
	}
	hard := Series{Name: "hard"}
	soft := Series{Name: "soft"}
	rng := rand.New(rand.NewSource(seed))
	for snr := paper - 8; snr <= paper+6; snr += 2 {
		perHard, err := measurePER(conv, mode, snr, frames, false, rng)
		if err != nil {
			return nil, err
		}
		perSoft, err := measurePER(conv, mode, snr, frames, true, rng)
		if err != nil {
			return nil, err
		}
		hard.Add(snr, perHard)
		soft.Add(snr, perSoft)
	}
	fig.Series = []Series{hard, soft}
	return fig, nil
}

// SoftGainDB estimates the horizontal gap between the two waterfalls at
// the PER = 0.5 level.
func SoftGainDB(fig *Figure) float64 {
	cross := func(s Series) float64 {
		for i := len(s.Y) - 1; i >= 0; i-- {
			if s.Y[i] >= 0.5 {
				return s.X[i]
			}
		}
		if len(s.X) > 0 {
			return s.X[0]
		}
		return 0
	}
	return cross(fig.Series[0]) - cross(fig.Series[1])
}
