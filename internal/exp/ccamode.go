package exp

import (
	"sledzig/internal/core"
	"sledzig/internal/mac"
)

// CCAModeAblation quantifies the one modeling decision the paper's own
// data leaves ambiguous (see EXPERIMENTS.md): whether the TelosB CCA
// reacts to WiFi energy. It reruns the Fig. 14 geometry at key distances
// under both behaviours, for normal WiFi and SledZig QAM-256 on CH3.
type CCAModeRow struct {
	Variant     string
	DWZ         float64
	EnergyKbps  float64 // throughput with energy-detect CCA
	CarrierKbps float64 // throughput with carrier-only CCA
}

// RunCCAModeAblation executes the ablation.
func RunCCAModeAblation(opts ThroughputOptions) ([]CCAModeRow, error) {
	opts = opts.withDefaults(20e-3)
	variants := []Variant{PaperVariants()[0], PaperVariants()[3]} // Normal, QAM-256
	distances := []float64{1, 2, 4, 6, 8}
	var rows []CCAModeRow
	for _, v := range variants {
		profile, err := DeriveProfile(opts.Convention, v, core.CH3, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, d := range distances {
			row := CCAModeRow{Variant: v.Name, DWZ: d}
			for _, mode := range []mac.CCAMode{mac.CCAEnergy, mac.CCACarrierOnly} {
				res, err := mac.Run(mac.Config{
					Seed:             opts.Seed + int64(d*10),
					Duration:         opts.Duration,
					DWZ:              d,
					DZ:               1,
					Profile:          profile,
					WiFiMode:         v.Mode,
					WiFiFrameAirtime: opts.WiFiBurstAirtime,
					DutyRatio:        1,
					CCAMode:          mode,
				})
				if err != nil {
					return nil, err
				}
				if mode == mac.CCAEnergy {
					row.EnergyKbps = res.ZigBeeThroughputBps / 1e3
				} else {
					row.CarrierKbps = res.ZigBeeThroughputBps / 1e3
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
