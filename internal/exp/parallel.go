package exp

import (
	"runtime"
	"sync"
)

// parallelFor runs fn(0..n-1) across GOMAXPROCS workers and returns the
// first error. The MAC sweeps are embarrassingly parallel (every point is
// an independent seeded simulation), so the figure regenerations scale
// with cores.
func parallelFor(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		err  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if err != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if e := fn(i); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return err
}
