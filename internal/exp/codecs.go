package exp

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"sledzig/internal/bits"
	"sledzig/internal/codec"
	"sledzig/internal/core"
	"sledzig/internal/wifi"
)

// CodecCompareOptions configures the three-backend coexistence
// comparison. Zero values select the paper's defaults: QAM-16 rate 1/2 on
// CH2, 100-octet payloads, 20 frames per backend at 15 dB in-band SNR.
type CodecCompareOptions struct {
	Convention wifi.Convention
	Mode       wifi.Mode
	Channel    core.ZigBeeChannel
	Seed       int64
	// Frames is the number of AWGN round-trip trials behind each PRR.
	Frames int
	// SNRdB is the in-band SNR of the AWGN trials.
	SNRdB float64
	// PayloadLen is the per-frame payload size in octets.
	PayloadLen int
	// Only restricts the sweep to one backend name ("" runs all).
	Only string
}

func (o CodecCompareOptions) withDefaults() CodecCompareOptions {
	if o.Mode.Modulation == 0 {
		o.Mode = wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	}
	if o.Channel == 0 {
		o.Channel = core.CH2
	}
	if o.Frames <= 0 {
		o.Frames = 20
	}
	if o.SNRdB == 0 {
		o.SNRdB = 15
	}
	if o.PayloadLen <= 0 {
		o.PayloadLen = 100
	}
	return o
}

// CodecRow is one backend's line in the comparison: the measured
// protected-band drop next to the contract it claims, packet reception
// ratio under AWGN, and what the mechanism costs WiFi.
type CodecRow struct {
	// Codec is the registry name of the backend.
	Codec string `json:"codec"`
	// BandDropDB is the measured power drop in the protected ZigBee band
	// over the backend's protected DATA symbols, relative to a standard
	// frame (see codec.MeasureBandDrop).
	BandDropDB float64 `json:"band_drop_db"`
	// ContractMinDropDB is the floor the backend's Contract promises.
	ContractMinDropDB float64 `json:"contract_min_drop_db"`
	// WholeFrame reports whether the drop holds on every DATA symbol.
	WholeFrame bool `json:"whole_frame"`
	// PRR is the fraction of AWGN trials whose payload round-tripped
	// exactly.
	PRR float64 `json:"prr"`
	// ThroughputLossFraction is the share of the frame's standard WiFi
	// data throughput the mechanism costs (1 = carries no WiFi data).
	ThroughputLossFraction float64 `json:"throughput_loss_fraction"`
	// AirtimeMicros is the PPDU airtime for one PayloadLen-octet frame.
	AirtimeMicros float64 `json:"airtime_micros"`
	// MaxPayload is the backend's single-frame payload bound in octets.
	MaxPayload int `json:"max_payload"`
}

// CompareCodecs runs every registered backend (or opts.Only) through the
// same three measurements the paper uses to position SledZig against the
// related work: protected-band power drop, PRR under AWGN, and WiFi
// throughput cost. All trials are deterministic under opts.Seed.
func CompareCodecs(opts CodecCompareOptions) ([]CodecRow, error) {
	opts = opts.withDefaults()
	params := codec.Params{
		Convention: opts.Convention,
		Mode:       opts.Mode,
		Channel:    opts.Channel,
	}
	var rows []CodecRow
	for _, name := range codec.Names() {
		if opts.Only != "" && opts.Only != name {
			continue
		}
		c, err := codec.New(name, params)
		if err != nil {
			return nil, fmt.Errorf("exp: codec %s: %w", name, err)
		}
		rng := rand.New(rand.NewSource(opts.Seed))
		probe := bits.RandomBytes(rng, opts.PayloadLen)
		drop, err := codec.MeasureBandDrop(c, params, probe)
		if err != nil {
			return nil, fmt.Errorf("exp: codec %s: band drop: %w", name, err)
		}
		enc, err := c.Encode(probe)
		if err != nil {
			return nil, fmt.Errorf("exp: codec %s: %w", name, err)
		}
		ct := c.Contract()
		row := CodecRow{
			Codec:                  name,
			BandDropDB:             drop,
			ContractMinDropDB:      ct.MinDropDB,
			WholeFrame:             ct.WholeFrame,
			ThroughputLossFraction: c.OverheadFraction(),
			AirtimeMicros:          enc.AirtimeSeconds * 1e6,
			MaxPayload:             c.MaxPayload(),
		}
		ok := 0
		for f := 0; f < opts.Frames; f++ {
			payload := bits.RandomBytes(rng, opts.PayloadLen)
			enc, err := c.Encode(payload)
			if err != nil {
				return nil, fmt.Errorf("exp: codec %s: %w", name, err)
			}
			noisy := addAWGN(rng, enc.Waveform, opts.SNRdB)
			dec, err := c.Decode(noisy)
			if err == nil && bytes.Equal(dec.Payload, payload) {
				ok++
			}
		}
		row.PRR = float64(ok) / float64(opts.Frames)
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("exp: no codec matches %q (registered: %v)", opts.Only, codec.Names())
	}
	return rows, nil
}

// addAWGN returns wave plus white noise sized for the target in-band SNR
// (52 of 64 subcarriers occupied, as in measurePER).
func addAWGN(rng *rand.Rand, wave []complex128, snrDB float64) []complex128 {
	var sig float64
	for _, v := range wave {
		sig += real(v)*real(v) + imag(v)*imag(v)
	}
	sig /= float64(len(wave))
	noise := sig / math.Pow(10, snrDB/10) * 64.0 / 52.0
	sigma := math.Sqrt(noise / 2)
	noisy := make([]complex128, len(wave))
	for i, v := range wave {
		noisy[i] = v + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return noisy
}

// FormatCodecTable renders the comparison as the aligned text table the
// experiments command prints.
func FormatCodecTable(rows []CodecRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-10s%12s%12s%8s%8s%12s%14s%12s\n",
		"codec", "drop (dB)", "contract", "whole", "PRR", "WiFi cost", "airtime (us)", "max (B)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s%12.1f%12.1f%8v%8.2f%11.1f%%%14.1f%12d\n",
			r.Codec, r.BandDropDB, r.ContractMinDropDB, r.WholeFrame, r.PRR,
			100*r.ThroughputLossFraction, r.AirtimeMicros, r.MaxPayload)
	}
	return b.String()
}
