package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"sledzig/internal/bits"
	"sledzig/internal/core"
	"sledzig/internal/dsp"
	"sledzig/internal/wifi"
)

// Spectrum holds a power spectral density across the 20 MHz WiFi channel
// (Fig. 5b).
type Spectrum struct {
	// FreqMHz are bin centers relative to the WiFi channel center.
	FreqMHz []float64
	// NormalDB and SledZigDB are PSDs (dB, relative to the flat normal
	// level).
	NormalDB  []float64
	SledZigDB []float64
	Channel   core.ZigBeeChannel
}

// Fig5b renders the WiFi spectrum with all subcarriers overlapping ch
// pinned to the lowest constellation points, next to a normal frame.
func Fig5b(conv wifi.Convention, mode wifi.Mode, ch core.ZigBeeChannel, seed int64) (*Spectrum, error) {
	rng := rand.New(rand.NewSource(seed))
	payload := bits.RandomBytes(rng, 800)

	normalFrame, err := wifi.Transmitter{Mode: mode, Convention: conv}.Frame(payload)
	if err != nil {
		return nil, err
	}
	normalWave, err := normalFrame.DataWaveform()
	if err != nil {
		return nil, err
	}
	plan, err := core.NewPlan(conv, mode, ch)
	if err != nil {
		return nil, err
	}
	res, err := (&core.Encoder{Plan: plan}).Encode(payload)
	if err != nil {
		return nil, err
	}
	sledWave, err := res.Frame.DataWaveform()
	if err != nil {
		return nil, err
	}

	const nBins = 256
	psdN, err := dsp.Periodogram(normalWave, nBins)
	if err != nil {
		return nil, err
	}
	psdS, err := dsp.Periodogram(sledWave, nBins)
	if err != nil {
		return nil, err
	}
	// Reference level: the median normal in-channel PSD.
	ref := 0.0
	cnt := 0
	for i := range psdN {
		if psdN[i] > 0 {
			ref += psdN[i]
			cnt++
		}
	}
	ref /= float64(cnt)

	out := &Spectrum{Channel: ch}
	for i := 0; i < nBins; i++ {
		f := float64(i) * wifi.SampleRate / nBins
		if i >= nBins/2 {
			f -= wifi.SampleRate
		}
		out.FreqMHz = append(out.FreqMHz, f/1e6)
		out.NormalDB = append(out.NormalDB, dsp.DB(psdN[i]/ref))
		out.SledZigDB = append(out.SledZigDB, dsp.DB(psdS[i]/ref))
	}
	// Sort by frequency for plotting.
	for i := 0; i < nBins; i++ {
		for j := i + 1; j < nBins; j++ {
			if out.FreqMHz[j] < out.FreqMHz[i] {
				out.FreqMHz[i], out.FreqMHz[j] = out.FreqMHz[j], out.FreqMHz[i]
				out.NormalDB[i], out.NormalDB[j] = out.NormalDB[j], out.NormalDB[i]
				out.SledZigDB[i], out.SledZigDB[j] = out.SledZigDB[j], out.SledZigDB[i]
			}
		}
	}
	return out, nil
}

// String renders a coarse ASCII view: mean level per 1 MHz bucket.
func (s *Spectrum) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5b — WiFi spectrum with %v pinned (dB rel. normal in-channel level)\n", s.Channel)
	fmt.Fprintf(&b, "%8s%12s%12s\n", "MHz", "normal", "sledzig")
	for bucket := -10; bucket < 10; bucket++ {
		lo, hi := float64(bucket), float64(bucket+1)
		var n, sumN, sumS float64
		for i, f := range s.FreqMHz {
			if f >= lo && f < hi {
				sumN += dsp.FromDB(s.NormalDB[i])
				sumS += dsp.FromDB(s.SledZigDB[i])
				n++
			}
		}
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, "%8.1f%12.1f%12.1f\n", (lo+hi)/2, dsp.DB(sumN/n), dsp.DB(sumS/n))
	}
	return b.String()
}

// BandDropDB returns the SledZig band-power drop inside the protected
// channel, the Fig. 5b headline number.
func (s *Spectrum) BandDropDB() float64 {
	lo, hi := s.Channel.BandHz()
	var sumN, sumS float64
	for i, f := range s.FreqMHz {
		hz := f * 1e6
		if hz >= lo && hz < hi {
			sumN += dsp.FromDB(s.NormalDB[i])
			sumS += dsp.FromDB(s.SledZigDB[i])
		}
	}
	return dsp.DB(sumN) - dsp.DB(sumS)
}
