package exp

import (
	"sledzig/internal/core"
	"sledzig/internal/mac"
	"sledzig/internal/wifi"
)

// FleetPoint is one (node count, AP mode) measurement of the multi-node
// extension experiment.
type FleetPoint struct {
	Nodes      int
	SledZig    bool
	Throughput float64 // aggregate kbit/s
	Delivered  int
	Collisions int
	Retries    int
}

// FleetSweep measures aggregate acknowledged ZigBee throughput as the
// number of contending nodes grows, under a saturated WiFi AP three
// meters away — stock vs SledZig (QAM-256, CH3). This extends the paper's
// single-link evaluation to the dense-network setting its introduction
// motivates.
func FleetSweep(opts ThroughputOptions) ([]FleetPoint, error) {
	opts = opts.withDefaults(20e-3)
	var out []FleetPoint
	for _, sled := range []bool{false, true} {
		v := Variant{Name: "QAM-256", Mode: wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}, SledZig: sled}
		profile, err := DeriveProfile(opts.Convention, v, core.CH3, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, n := range []int{1, 2, 4, 8} {
			res, err := mac.Run(mac.Config{
				Seed:             opts.Seed + int64(n),
				Duration:         opts.Duration,
				DWZ:              3,
				DZ:               1,
				Profile:          profile,
				WiFiMode:         v.Mode,
				WiFiFrameAirtime: opts.WiFiBurstAirtime,
				DutyRatio:        1,
				CCAMode:          mac.CCAEnergy,
				ZigBeeNodes:      n,
				UseAcks:          true,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, FleetPoint{
				Nodes:      n,
				SledZig:    sled,
				Throughput: res.ZigBeeThroughputBps / 1e3,
				Delivered:  res.ZigBeeDelivered,
				Collisions: res.ZigBeeCollisions,
				Retries:    res.ZigBeeRetries,
			})
		}
	}
	return out, nil
}
