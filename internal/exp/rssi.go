package exp

import (
	"fmt"
	"math/rand"

	"sledzig/internal/bits"
	"sledzig/internal/channel"
	"sledzig/internal/core"
	"sledzig/internal/dsp"
	"sledzig/internal/wifi"
)

// Fig11 reproduces "Impact of the number of data subcarriers on RSSI at
// ZigBee": QAM-64, WiFi Tx 1 m from the ZigBee receiver, sweeping how many
// data subcarriers are pinned. One series per overlapped channel.
func Fig11(conv wifi.Convention, seed int64) (*Figure, error) {
	mode := wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}
	rng := rand.New(rand.NewSource(seed))
	fig := &Figure{
		ID:     "Fig. 11",
		Title:  "RSSI at ZigBee vs number of pinned data subcarriers (QAM-64, 1 m)",
		XLabel: "subcarriers",
		YLabel: "RSSI (dBm)",
	}
	for _, ch := range core.AllChannels() {
		counts := []int{4, 5, 6, 7, 8}
		if ch == core.CH4 {
			counts = []int{3, 4, 5, 6}
		}
		s := Series{Name: ch.String()}
		for _, n := range counts {
			subs, err := ch.DataSubcarrierSubset(n)
			if err != nil {
				return nil, err
			}
			plan, err := core.NewPlanForSubcarriers(conv, mode, subs)
			if err != nil {
				return nil, err
			}
			res, err := (&core.Encoder{Plan: plan}).Encode(bits.RandomBytes(rng, 600))
			if err != nil {
				return nil, err
			}
			wave, err := res.Frame.DataWaveform()
			if err != nil {
				return nil, err
			}
			share, err := bandShareDB(wave, ch)
			if err != nil {
				return nil, err
			}
			rssi := dsp.AddPowersDB(channel.WiFiTotalRxAt1mDBm+share, channel.NoiseFloorDBm)
			// The testbed reports 1-3 dB variation between repeats.
			rssi += rng.NormFloat64() * 0.5
			s.Add(float64(n), rssi)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig12 reproduces "RSSI at ZigBee under different QAM modulations":
// normal WiFi vs SledZig per channel, 1 m. The paper reports
// CH1-CH3: -60 -> -64 / -66 / -68 dBm and CH4: -64 -> -70 / -75 / -78 dBm.
func Fig12(conv wifi.Convention, seed int64) (*Figure, error) {
	fig := &Figure{
		ID:     "Fig. 12",
		Title:  "RSSI at ZigBee: normal WiFi vs SledZig (1 m)",
		XLabel: "channel",
		YLabel: "RSSI (dBm)",
	}
	variants := []Variant{
		{Name: "Normal", Mode: wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}, SledZig: false},
		{Name: "QAM-16", Mode: wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}, SledZig: true},
		{Name: "QAM-64", Mode: wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}, SledZig: true},
		{Name: "QAM-256", Mode: wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}, SledZig: true},
	}
	for _, v := range variants {
		s := Series{Name: v.Name}
		for _, ch := range core.AllChannels() {
			p, err := DeriveProfile(conv, v, ch, seed)
			if err != nil {
				return nil, fmt.Errorf("exp: profile %s %v: %w", v.Name, ch, err)
			}
			s.Add(float64(ch), InBandRSSIDBm(p, 1, 0))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig13 reproduces "RSSI in terms of ZigBee link distance d_Z and Tx
// gain": the pure ZigBee link budget with the noise floor clamp.
func Fig13() *Figure {
	fig := &Figure{
		ID:     "Fig. 13",
		Title:  "ZigBee RSSI vs link distance and Tx gain (no WiFi)",
		XLabel: "tx gain",
		YLabel: "RSSI (dBm)",
	}
	for _, d := range []float64{0.5, 1, 2, 3} {
		s := Series{Name: fmt.Sprintf("dZ=%.1fm", d)}
		for g := 0; g <= 31; g++ {
			rx, err := channel.ZigBeeRxDBm(d, g)
			if err != nil {
				continue
			}
			s.Add(float64(g), dsp.AddPowersDB(rx, channel.NoiseFloorDBm))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig17 reproduces "The collected RSSI at the WiFi receiver with WiFi and
// ZigBee signals": the ~30 dB asymmetry that makes ZigBee harmless to
// WiFi.
func Fig17() *Figure {
	fig := &Figure{
		ID:     "Fig. 17",
		Title:  "RSSI at the WiFi receiver vs transmitter distance",
		XLabel: "distance (m)",
		YLabel: "RSSI (dBm)",
	}
	wifiS := Series{Name: "WiFi Tx"}
	zbS := Series{Name: "ZigBee Tx"}
	for _, d := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		wifiS.Add(d, dsp.AddPowersDB(channel.WiFiAtWiFiRxDBm(d), channel.NoiseFloorDBm))
		zb, err := channel.ZigBeeAtWiFiRxDBm(d)
		if err == nil {
			zbS.Add(d, dsp.AddPowersDB(zb, channel.NoiseFloorDBm))
		}
	}
	fig.Series = []Series{wifiS, zbS}
	return fig
}
