package exp

import (
	"fmt"
	"math"
	"math/rand"

	"sledzig/internal/bits"
	"sledzig/internal/channel"
	"sledzig/internal/core"
	"sledzig/internal/dsp"
	"sledzig/internal/wifi"
	"sledzig/internal/zigbee"
)

// The PHY-level experiment is the repository's strongest validation: no
// abstraction sits between SledZig and the ZigBee receiver. Real WiFi
// waveforms (normal or SledZig-encoded) are frequency-shifted onto a real
// O-QPSK ZigBee frame on a 40 MS/s bus with AWGN at the measured floor,
// and an unsynchronized correlation receiver has to find and decode the
// frame. The only model left is the channel gain.

// PhyLevelConfig parameterizes the waveform-mixing experiment.
type PhyLevelConfig struct {
	Convention wifi.Convention
	Mode       wifi.Mode
	Channel    core.ZigBeeChannel
	// ZigBeeRxDBm is the ZigBee signal level at its receiver.
	ZigBeeRxDBm float64
	// DWZ is the WiFi transmitter's distance from the ZigBee receiver.
	DWZ float64
	// Trials per variant.
	Trials int
	Seed   int64
	// PayloadLen of each ZigBee frame in octets.
	PayloadLen int
}

func (c PhyLevelConfig) withDefaults() PhyLevelConfig {
	if c.Mode.Modulation == 0 {
		c.Mode = wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}
	}
	if !c.Channel.Valid() {
		c.Channel = core.CH4
	}
	if c.ZigBeeRxDBm == 0 {
		c.ZigBeeRxDBm = channel.ZigBeeRSSIAt0p5mDBm
	}
	if c.DWZ == 0 {
		c.DWZ = 1.2
	}
	if c.Trials == 0 {
		c.Trials = 10
	}
	if c.PayloadLen == 0 {
		c.PayloadLen = 24
	}
	return c
}

// PhyLevelResult reports packet error rates decoded from mixed waveforms.
type PhyLevelResult struct {
	Config PhyLevelConfig
	// PER under a normal WiFi payload stream vs a SledZig one.
	NormalPER, SledZigPER float64
	// Measured in-band WiFi power at the ZigBee receiver (dBm).
	NormalInBandDBm, SledZigInBandDBm float64
	// Resulting in-band SINRs (dB).
	NormalSINRDB, SledZigSINRDB float64
}

// busRate is the mixing sample rate: 40 MS/s so a WiFi channel shifted by
// up to 8 MHz stays alias-free.
const busRate = 40e6

// RunPhyLevel executes the experiment.
func RunPhyLevel(cfg PhyLevelConfig) (*PhyLevelResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &PhyLevelResult{Config: cfg}

	for _, sled := range []bool{false, true} {
		wifiWave, err := phyWiFiStream(cfg, sled, rng)
		if err != nil {
			return nil, err
		}
		// Scale the WiFi stream to the calibrated total receive power and
		// shift it so the ZigBee channel center becomes baseband DC.
		total := channel.WiFiTotalRxDBm(cfg.DWZ, channel.WiFiReferenceGain)
		dsp.ScaleToPower(wifiWave, dsp.FromDB(total))
		shifted := dsp.FrequencyShift(wifiWave, busRate, -cfg.Channel.OffsetHz())

		inBand, err := dsp.BandPower(shifted, busRate, -1e6, 1e6)
		if err != nil {
			return nil, err
		}
		inBandDBm := dsp.DB(inBand)
		sinr := cfg.ZigBeeRxDBm - dsp.AddPowersDB(inBandDBm, channel.NoiseFloorDBm)

		failures := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			payload := bits.RandomBytes(rng, cfg.PayloadLen)
			if !phyTrial(cfg, payload, shifted, rng) {
				failures++
			}
		}
		per := float64(failures) / float64(cfg.Trials)
		if sled {
			res.SledZigPER, res.SledZigInBandDBm, res.SledZigSINRDB = per, inBandDBm, sinr
		} else {
			res.NormalPER, res.NormalInBandDBm, res.NormalSINRDB = per, inBandDBm, sinr
		}
	}
	return res, nil
}

// phyWiFiStream renders a continuous WiFi payload stream (several frames'
// worth of DATA symbols, no preambles — the USRP streaming shape) on the
// 40 MS/s bus.
func phyWiFiStream(cfg PhyLevelConfig, sled bool, rng *rand.Rand) ([]complex128, error) {
	payload := bits.RandomBytes(rng, 1200)
	var wave []complex128
	if sled {
		plan, err := core.NewPlan(cfg.Convention, cfg.Mode, cfg.Channel)
		if err != nil {
			return nil, err
		}
		enc := core.Encoder{Plan: plan}
		r, err := enc.Encode(payload)
		if err != nil {
			return nil, err
		}
		wave, err = r.Frame.DataWaveform()
		if err != nil {
			return nil, err
		}
	} else {
		frame, err := wifi.Transmitter{Mode: cfg.Mode, Convention: cfg.Convention}.Frame(payload)
		if err != nil {
			return nil, err
		}
		var err2 error
		wave, err2 = frame.DataWaveform()
		if err2 != nil {
			return nil, err2
		}
	}
	return dsp.ResampleFFT(wave, int(busRate/wifi.SampleRate))
}

// phyTrial mixes one ZigBee frame into the WiFi stream at a random
// alignment, adds noise, and decodes with the unsynchronized receiver.
func phyTrial(cfg PhyLevelConfig, payload []byte, wifiShifted []complex128, rng *rand.Rand) bool {
	spc := int(busRate / zigbee.ChipRate)
	zbWave, err := zigbee.Transmitter{SamplesPerChip: spc}.Transmit(payload)
	if err != nil {
		return false
	}
	dsp.ScaleToPower(zbWave, dsp.FromDB(cfg.ZigBeeRxDBm))

	// Capture window: guard + frame + guard, carved from the WiFi stream
	// at a random phase (the stream loops).
	guard := 4000
	capture := make([]complex128, len(zbWave)+2*guard)
	start := rng.Intn(len(wifiShifted))
	for i := range capture {
		capture[i] = wifiShifted[(start+i)%len(wifiShifted)]
	}
	dsp.MixInto(capture, zbWave, 1, guard)

	// AWGN at the measured floor, scaled to the bus bandwidth.
	noiseTotal := dsp.FromDB(channel.NoiseFloorDBm) * busRate / 2e6
	sigma := math.Sqrt(noiseTotal / 2)
	for i := range capture {
		capture[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}

	// Channel-select filter: a real 802.15.4 front end band-limits to
	// ~2 MHz before despreading; without it the chip matched filter alone
	// would let the strong out-of-channel WiFi subcarriers through.
	taps, err := dsp.LowPassFIR(busRate, 1.3e6, 129)
	if err != nil {
		return false
	}
	filtered := dsp.Filter(capture, taps)

	// Oscillator offsets are assumed pre-corrected here: the one-shot
	// preamble CFO estimator (validated at link SNRs in the zigbee sync
	// tests) is not accurate enough at interference-limited SINRs to
	// leave sub-100 Hz residuals over a millisecond frame; real O-QPSK
	// receivers track phase continuously, which is out of scope.
	sync := zigbee.Synchronizer{SamplesPerChip: spc}
	got, _, err := sync.ReceiveUnsynchronized(filtered, 0.2)
	if err != nil || len(got) != len(payload) {
		return false
	}
	for i := range payload {
		if got[i] != payload[i] {
			return false
		}
	}
	return true
}

// FormatPhyLevel renders the result for cmd/experiments.
func FormatPhyLevel(r *PhyLevelResult) string {
	return fmt.Sprintf(
		"waveform-level mixing (%v on %v, ZigBee at %.0f dBm, WiFi at %.1f m, %d trials/variant):\n"+
			"  normal WiFi : in-band %6.1f dBm  SINR %6.1f dB  ZigBee PER %.2f\n"+
			"  SledZig     : in-band %6.1f dBm  SINR %6.1f dB  ZigBee PER %.2f\n",
		r.Config.Mode, r.Config.Channel, r.Config.ZigBeeRxDBm, r.Config.DWZ, r.Config.Trials,
		r.NormalInBandDBm, r.NormalSINRDB, r.NormalPER,
		r.SledZigInBandDBm, r.SledZigSINRDB, r.SledZigPER)
}
