package exp

import (
	"encoding/json"
	"testing"
)

func TestCompareCodecsAllBackends(t *testing.T) {
	rows, err := CompareCodecs(CodecCompareOptions{Seed: 1, Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("only %d backends compared", len(rows))
	}
	for _, r := range rows {
		if r.BandDropDB < r.ContractMinDropDB {
			t.Errorf("%s: measured drop %.1f dB below its %.1f dB contract", r.Codec, r.BandDropDB, r.ContractMinDropDB)
		}
		if r.PRR < 1 {
			t.Errorf("%s: PRR %.2f on a clean 15 dB AWGN link", r.Codec, r.PRR)
		}
		if r.AirtimeMicros <= 0 || r.MaxPayload <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Codec, r)
		}
	}
	// The rows are the CI manifest artifact; they must serialize.
	if _, err := json.Marshal(rows); err != nil {
		t.Fatal(err)
	}
	if FormatCodecTable(rows) == "" {
		t.Fatal("empty table")
	}
}

func TestCompareCodecsOnly(t *testing.T) {
	rows, err := CompareCodecs(CodecCompareOptions{Seed: 1, Frames: 2, Only: "sledzig"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Codec != "sledzig" {
		t.Fatalf("Only filter returned %+v", rows)
	}
	if _, err := CompareCodecs(CodecCompareOptions{Frames: 2, Only: "nope"}); err == nil {
		t.Fatal("unknown Only name did not error")
	}
}
