package wifi

import "math"

// NearestIdealPoint returns the constellation point of m nearest to p.
// Both conventions share the same square lattice (they differ only in bit
// labels), so a hard demap followed by a remap reduces to quantizing each
// axis to the nearest odd level — no table walk, no allocation.
func NearestIdealPoint(m Modulation, p complex128) complex128 {
	k := NormFactor(m)
	if m == BPSK {
		if real(p) >= 0 {
			return complex(k, 0)
		}
		return complex(-k, 0)
	}
	n := axisBits(m)
	maxLevel := (1 << n) - 1
	quant := func(v float64) float64 {
		l := int(math.Round((v/k-1)/2))*2 + 1
		if l > maxLevel {
			l = maxLevel
		}
		if l < -maxLevel {
			l = -maxLevel
		}
		return float64(l)
	}
	return complex(quant(real(p))*k, quant(imag(p))*k)
}

// SymbolEVM computes the per-symbol RMS error-vector magnitude of equalized
// constellation points against the nearest ideal points. The constellations
// are normalized to unit average power, so the figure is directly the
// relative EVM. The result slice is the only allocation.
func SymbolEVM(m Modulation, dataPoints [][]complex128) []float64 {
	out := make([]float64, len(dataPoints))
	if !m.Valid() {
		return out
	}
	for s, pts := range dataPoints {
		var sum float64
		for _, p := range pts {
			d := p - NearestIdealPoint(m, p)
			sum += real(d)*real(d) + imag(d)*imag(d)
		}
		if len(pts) > 0 {
			out[s] = math.Sqrt(sum / float64(len(pts)))
		}
	}
	return out
}
