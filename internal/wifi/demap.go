package wifi

import (
	"fmt"
	"math"
	"sync"

	"sledzig/internal/bits"
)

// Allocation-free hard demapping. Both conventions quantize each axis to
// the nearest odd level independently and emit a deterministic bit pattern
// per level, so the whole demap reduces to two table lookups per point.
// The per-axis level->bits tables are built once per (convention,
// modulation) from the same primitives the allocating demappers use, which
// keeps the two paths identical by construction.

// hardDemapTable caches, per (convention, modulation), the per-axis bit
// patterns of every quantization level plus the convention's placement of
// axis bits within the subcarrier group.
type hardDemapTable struct {
	n     int     // bits per axis
	norm  float64 // constellation normalization factor
	paper bool    // interleaved I/Q placement (ConventionPaper)
	// axis[l] holds the n axis bits of level index l (level = 2l - (2^n-1)).
	axis [][]bits.Bit
}

var hardDemapCache sync.Map // map[struct{Convention; Modulation}]*hardDemapTable

func hardDemap(c Convention, m Modulation) (*hardDemapTable, error) {
	type key struct {
		c Convention
		m Modulation
	}
	if v, ok := hardDemapCache.Load(key{c, m}); ok {
		return v.(*hardDemapTable), nil
	}
	if !m.Valid() {
		return nil, fmt.Errorf("wifi: invalid modulation %d", int(m))
	}
	n := axisBits(m)
	t := &hardDemapTable{
		n:     n,
		norm:  NormFactor(m),
		paper: c == ConventionPaper && m != BPSK,
		axis:  make([][]bits.Bit, 1<<n),
	}
	for idx := range t.axis {
		level := 2*idx - ((1 << n) - 1)
		if t.paper {
			// Sign bit then LTE amplitude bits.
			ab := make([]bits.Bit, 0, n)
			l := level
			if l < 0 {
				ab = append(ab, 1)
				l = -l
			} else {
				ab = append(ab, 0)
			}
			t.axis[idx] = append(ab, lteAmplitudeBits(l, n-1)...)
		} else {
			t.axis[idx] = axisBitsFor(level, n)
		}
	}
	hardDemapCache.Store(key{c, m}, t)
	return t, nil
}

// levelIndex quantizes one axis value to its level index in [0, 2^n).
func (t *hardDemapTable) levelIndex(v float64) int {
	maxLevel := (1 << t.n) - 1
	l := int(math.Round((v/t.norm-1)/2))*2 + 1
	if l > maxLevel {
		l = maxLevel
	}
	if l < -maxLevel {
		l = -maxLevel
	}
	return (l + maxLevel) / 2
}

// DemapSymbolCInto hard-demaps one received point into dst, which must
// hold m.BitsPerSubcarrier() bits. It produces exactly the bits of
// DemapSymbolC without allocating.
func (c Convention) DemapSymbolCInto(dst []bits.Bit, m Modulation, p complex128) error {
	if m == BPSK {
		if len(dst) != 1 {
			return fmt.Errorf("wifi: %v expects 1 bit per point, got %d", m, len(dst))
		}
		if real(p) >= 0 {
			dst[0] = 1
		} else {
			dst[0] = 0
		}
		return nil
	}
	t, err := hardDemap(c, m)
	if err != nil {
		return err
	}
	if len(dst) != 2*t.n {
		return fmt.Errorf("wifi: %v expects %d bits per point, got %d", m, 2*t.n, len(dst))
	}
	iAxis := t.axis[t.levelIndex(real(p))]
	qAxis := t.axis[t.levelIndex(imag(p))]
	if t.paper {
		for k := 0; k < t.n; k++ {
			dst[2*k] = iAxis[k]
			dst[2*k+1] = qAxis[k]
		}
		return nil
	}
	copy(dst[:t.n], iAxis)
	copy(dst[t.n:], qAxis)
	return nil
}

// DemapAllCInto hard-demaps a point sequence into dst as a flat bit
// stream; dst must hold len(pts)*m.BitsPerSubcarrier() bits. No allocation.
func (c Convention) DemapAllCInto(dst []bits.Bit, m Modulation, pts []complex128) error {
	bpsc := m.BitsPerSubcarrier()
	if bpsc == 0 {
		return fmt.Errorf("wifi: invalid modulation %d", int(m))
	}
	if len(dst) != len(pts)*bpsc {
		return fmt.Errorf("wifi: demap destination length %d != %d points x %d bits", len(dst), len(pts), bpsc)
	}
	for i, p := range pts {
		if err := c.DemapSymbolCInto(dst[i*bpsc:(i+1)*bpsc], m, p); err != nil {
			return err
		}
	}
	return nil
}

// DeinterleaveCInto inverts the per-symbol interleaver into out (length
// N_CBPS). in and out must not alias. No allocation.
func (c Convention) DeinterleaveCInto(out, in []bits.Bit, m Modulation) error {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	if len(in) != nCBPS {
		return fmt.Errorf("wifi: deinterleave input length %d != N_CBPS %d for %v", len(in), nCBPS, m)
	}
	if len(out) != nCBPS {
		return fmt.Errorf("wifi: deinterleave output length %d != N_CBPS %d for %v", len(out), nCBPS, m)
	}
	for j, b := range in {
		out[c.DeinterleaveIndexC(m, j)] = b
	}
	return nil
}
