package wifi

import (
	"fmt"
	"math"
	"math/cmplx"

	"sledzig/internal/dsp"
)

// Frame synchronization for captures that do not begin at the PPDU's
// first sample: the classic two-stage scheme. Stage one detects the
// short-training plateau with a lag-16 autocorrelation (Schmidl&Cox
// style); stage two pins the exact symbol boundary by cross-correlating
// against the known long training symbol.

// Synchronizer locates PPDUs in a capture.
type Synchronizer struct {
	// PlateauThreshold is the normalized autocorrelation level that
	// counts as "inside the STS" (default 0.8).
	PlateauThreshold float64
	// MinPlateau is how many consecutive samples must exceed the
	// threshold before a detection is declared (default 64).
	MinPlateau int
}

func (s Synchronizer) threshold() float64 {
	if s.PlateauThreshold == 0 {
		return 0.8
	}
	return s.PlateauThreshold
}

func (s Synchronizer) minPlateau() int {
	if s.MinPlateau == 0 {
		return 64
	}
	return s.MinPlateau
}

// Detect returns the sample index of the PPDU start (first STS sample).
// It errors when no plateau is found.
func (s Synchronizer) Detect(capture []complex128) (int, error) {
	if len(capture) < PreambleLength+SymbolLength {
		return 0, fmt.Errorf("wifi: capture of %d samples too short", len(capture))
	}
	coarse, err := s.detectCoarse(capture)
	if err != nil {
		return 0, err
	}
	return s.refineWithLTS(capture, coarse)
}

// detectCoarse finds the start of the lag-16 autocorrelation plateau.
func (s Synchronizer) detectCoarse(capture []complex128) (int, error) {
	const lag = 16
	win := 48 // correlation window inside the plateau
	need := s.minPlateau()
	run := 0
	for n := 0; n+win+lag < len(capture); n++ {
		var corr complex128
		var energy float64
		for i := 0; i < win; i++ {
			a := capture[n+i]
			b := capture[n+i+lag]
			corr += a * cmplx.Conj(b)
			energy += real(b)*real(b) + imag(b)*imag(b)
		}
		metric := 0.0
		if energy > 0 {
			metric = cmplx.Abs(corr) / energy
		}
		if metric > s.threshold() && energy > 0 {
			run++
			if run >= need {
				return n - run + 1, nil
			}
		} else {
			run = 0
		}
	}
	return 0, fmt.Errorf("wifi: no STS plateau found")
}

// refineWithLTS cross-correlates the known LTS around the coarse estimate
// and back-computes the PPDU start.
func (s Synchronizer) refineWithLTS(capture []complex128, coarse int) (int, error) {
	ref := dsp.MustIFFT(ltsFreq())
	var refEnergy float64
	for _, v := range ref {
		refEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	// The first LTS period begins 192 samples after the PPDU start; probe
	// a window around the coarse guess.
	bestOff, bestScore := -1, 0.0
	lo := coarse + 192 - 40
	if lo < 0 {
		lo = 0
	}
	hi := coarse + 192 + 40
	for off := lo; off <= hi && off+len(ref) <= len(capture); off++ {
		var corr complex128
		var segEnergy float64
		for i, r := range ref {
			v := capture[off+i]
			corr += v * cmplx.Conj(r)
			segEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		if segEnergy == 0 {
			continue
		}
		score := cmplx.Abs(corr) / math.Sqrt(refEnergy*segEnergy)
		if score > bestScore {
			bestScore = score
			bestOff = off
		}
	}
	if bestOff < 0 || bestScore < 0.5 {
		return 0, fmt.Errorf("wifi: LTS correlation failed (best %.2f)", bestScore)
	}
	// Two candidates (the LTS repeats at +64); pick the earlier period and
	// derive the PPDU start.
	start := bestOff - 192
	if start < 0 {
		// The peak matched the second LTS period.
		start = bestOff - 192 - 64
	}
	if start < 0 {
		return 0, fmt.Errorf("wifi: LTS peak precedes capture start")
	}
	return start, nil
}

// ReceiveUnsynchronized detects the PPDU in a capture, corrects its
// carrier offset, and decodes it.
func (s Synchronizer) ReceiveUnsynchronized(r Receiver, capture []complex128) (*RxResult, int, error) {
	start, err := s.Detect(capture)
	if err != nil {
		return nil, 0, err
	}
	res, _, err := r.ReceiveWithCFO(capture[start:])
	if err != nil {
		return nil, start, err
	}
	return res, start, nil
}
