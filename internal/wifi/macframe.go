package wifi

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Minimal 802.11 MAC framing, so PSDUs carried by this PHY are real data
// MPDUs: frame control, duration, three addresses, sequence control,
// payload, and the FCS (CRC-32). SledZig is payload-agnostic — it encodes
// whatever MPDU the MAC hands down — but a realistic MPDU makes the
// examples and integration tests honest about the full stack.

// MACAddress is a 48-bit IEEE MAC address.
type MACAddress [6]byte

// String renders the address in colon notation.
func (a MACAddress) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// MACFrame is an 802.11 data MPDU (ToDS=0, FromDS=0 for simplicity).
type MACFrame struct {
	// Receiver, transmitter and BSSID addresses.
	Addr1, Addr2, Addr3 MACAddress
	// Sequence number (0..4095); the fragment number is always 0.
	Sequence uint16
	// Payload is the MSDU.
	Payload []byte
}

const (
	macHeaderLen = 24
	macFCSLen    = 4
	// frameControlData marks a data frame, protocol version 0.
	frameControlData = 0x0008
)

// MaxMSDU bounds the payload so the MPDU fits the PHY's 4095-octet limit.
const MaxMSDU = maxPSDULength - macHeaderLen - macFCSLen

// Marshal serializes the MPDU including its FCS.
func (f *MACFrame) Marshal() ([]byte, error) {
	if len(f.Payload) == 0 {
		return nil, fmt.Errorf("wifi: empty MSDU")
	}
	if len(f.Payload) > MaxMSDU {
		return nil, fmt.Errorf("wifi: MSDU of %d octets exceeds %d", len(f.Payload), MaxMSDU)
	}
	if f.Sequence > 0x0FFF {
		return nil, fmt.Errorf("wifi: sequence %d exceeds 4095", f.Sequence)
	}
	out := make([]byte, 0, macHeaderLen+len(f.Payload)+macFCSLen)
	var hdr [macHeaderLen]byte
	binary.LittleEndian.PutUint16(hdr[0:], frameControlData)
	// Duration left zero (no NAV modeling).
	copy(hdr[4:], f.Addr1[:])
	copy(hdr[10:], f.Addr2[:])
	copy(hdr[16:], f.Addr3[:])
	binary.LittleEndian.PutUint16(hdr[22:], f.Sequence<<4)
	out = append(out, hdr[:]...)
	out = append(out, f.Payload...)
	fcs := crc32.ChecksumIEEE(out)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], fcs)
	return append(out, tail[:]...), nil
}

// ParseMACFrame validates and decodes an MPDU produced by Marshal,
// checking the FCS.
func ParseMACFrame(mpdu []byte) (*MACFrame, error) {
	if len(mpdu) < macHeaderLen+1+macFCSLen {
		return nil, fmt.Errorf("wifi: MPDU of %d octets too short", len(mpdu))
	}
	body := mpdu[:len(mpdu)-macFCSLen]
	wantFCS := binary.LittleEndian.Uint32(mpdu[len(mpdu)-macFCSLen:])
	if crc32.ChecksumIEEE(body) != wantFCS {
		return nil, fmt.Errorf("wifi: FCS mismatch")
	}
	fc := binary.LittleEndian.Uint16(body[0:])
	if fc != frameControlData {
		return nil, fmt.Errorf("wifi: unsupported frame control %#04x", fc)
	}
	f := &MACFrame{
		Sequence: binary.LittleEndian.Uint16(body[22:]) >> 4,
		Payload:  append([]byte(nil), body[macHeaderLen:]...),
	}
	copy(f.Addr1[:], body[4:])
	copy(f.Addr2[:], body[10:])
	copy(f.Addr3[:], body[16:])
	return f, nil
}
