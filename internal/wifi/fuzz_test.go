package wifi

import "testing"

func FuzzParseMACFrame(f *testing.F) {
	good, _ := (&MACFrame{Sequence: 1, Payload: []byte("x")}).Marshal()
	f.Add(good)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := ParseMACFrame(data)
		if err == nil && len(frame.Payload) == 0 {
			t.Fatal("accepted MPDU without payload")
		}
	})
}

func FuzzParseSignalField(f *testing.F) {
	good, _ := SignalField(Mode{QAM16, Rate12}, 100)
	f.Add([]byte(good))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) != 24 {
			return
		}
		for i := range data {
			data[i] &= 1
		}
		mode, length, err := ParseSignalField(data)
		if err == nil {
			if !mode.Modulation.Valid() || !mode.CodeRate.Valid() || length < 1 {
				t.Fatalf("parse accepted invalid SIGNAL: %v %d", mode, length)
			}
		}
	})
}

func FuzzViterbiDecode(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, coded []byte) {
		for i := range coded {
			coded[i] &= 1
		}
		if len(coded)%2 != 0 {
			return
		}
		if _, err := ViterbiDecode(coded, nil, false); err != nil {
			t.Fatal(err)
		}
	})
}
