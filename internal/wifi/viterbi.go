package wifi

import (
	"fmt"
	"sync"

	"sledzig/internal/bits"
)

// Table-driven Viterbi decoder for the rate-1/2, constraint-7 mother code.
//
// The trellis is precomputed once per process: for destination state ns the
// two predecessors are fixed (ns>>1 and ns>>1|32, both consuming input bit
// ns&1), and each transition's coded output pair is a 2-bit index into a
// per-step table of the four possible branch metrics. Path metrics live in
// fixed-size arrays pointer-swapped between steps, and survivor decisions
// are bit-packed
// — one uint64 word per trellis step (64 states, one decision bit each) —
// so a 1500-byte frame's survivor memory is ~100 KiB smaller than the
// struct-matrix representation and is recycled through a sync.Pool.
//
// The add-compare-select forward pass itself lives behind a small kernel
// seam (see viterbi_acs.go): the default "word" kernel computes all 64
// states with branch-free, word-parallel arithmetic (eight byte lanes per
// uint64 for hard decisions, sign-bit selects for soft), and the
// "reference" kernel keeps the straightforward paired-butterfly loops the
// word kernel is tested byte-identical against.

const (
	viterbiStates = 64 // 2^(K-1)
	viterbiInfI32 = int32(1) << 30
)

// trellis holds the per-destination branch-output indices: for destination
// state ns, out0[ns]/out1[ns] are y0<<1|y1 of the transition from
// predecessor ns>>1 resp. ns>>1|32 under input ns&1.
type trellis struct {
	out0 [viterbiStates]uint8
	out1 [viterbiStates]uint8
	// hardBM0/hardBM1 are the word-parallel branch-metric tables: for
	// received-pair/erasure combo k (r0 | r1<<1 | e0<<2 | e1<<3) and
	// destination word w, byte lane i of hardBM0[k][w] holds the Hamming
	// branch metric of the transition into state 8w+i from its low
	// predecessor ((8w+i)>>1), and hardBM1 from its high predecessor
	// ((8w+i)>>1 | 32). See viterbi_acs.go.
	hardBM0 [16][viterbiStates / 8]uint64
	hardBM1 [16][viterbiStates / 8]uint64
}

var (
	trellisOnce sync.Once
	trellisTab  trellis
)

// viterbiTrellis returns the process-wide precomputed trellis tables.
func viterbiTrellis() *trellis {
	trellisOnce.Do(func() {
		pair := func(s, in int) uint8 {
			window := (uint32(s)<<1 | uint32(in)) & 0x7F
			y0, y1 := EncodeStep(window)
			return uint8(y0)<<1 | uint8(y1)
		}
		for ns := 0; ns < viterbiStates; ns++ {
			in := ns & 1
			trellisTab.out0[ns] = pair(ns>>1, in)
			trellisTab.out1[ns] = pair(ns>>1|32, in)
		}
		for combo := 0; combo < 16; combo++ {
			r0 := int32(combo & 1)
			r1 := int32(combo >> 1 & 1)
			e0 := int32(combo >> 2 & 1)
			e1 := int32(combo >> 3 & 1)
			var bmv [4]uint64
			for y := 0; y < 4; y++ {
				y0, y1 := int32(y>>1), int32(y&1)
				d0, d1 := r0^y0, r1^y1
				bmv[y] = uint64(e0*d0 + e1*d1)
			}
			for ns := 0; ns < viterbiStates; ns++ {
				w, lane := ns/8, uint(ns%8)
				trellisTab.hardBM0[combo][w] |= bmv[trellisTab.out0[ns]&3] << (8 * lane)
				trellisTab.hardBM1[combo][w] |= bmv[trellisTab.out1[ns]&3] << (8 * lane)
			}
		}
	})
	return &trellisTab
}

// viterbiScratch is the recycled working state of one decode: fixed-size
// metric arrays (float for soft, int32 for hard — pointer-swapped between
// steps, and sized by a constant so the hot loop needs no bounds checks),
// the byte-lane metric words of the word-parallel hard kernel, and the
// bit-packed survivor words, grown to the longest frame seen.
type viterbiScratch struct {
	m0, m1    [viterbiStates]float64
	h0, h1    [viterbiStates]int32
	w0, w1    [viterbiStates / 8]uint64
	decisions []uint64
}

var viterbiPool = sync.Pool{New: func() any { return new(viterbiScratch) }}

func (s *viterbiScratch) grow(steps int) {
	if cap(s.decisions) < steps {
		s.decisions = make([]uint64, steps)
	}
	s.decisions = s.decisions[:steps]
}

// growBits returns dst resized to n elements, reusing its capacity.
func growBits(dst []bits.Bit, n int) []bits.Bit {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]bits.Bit, n)
}

// ViterbiDecodeSoftInto is ViterbiDecodeSoft decoding into dst (reusing its
// capacity) and returning the resized slice. llrs holds one value per
// mother-coded bit (positive favours 0), zeros acting as erasures.
//
//sledzig:noalloc
func ViterbiDecodeSoftInto(dst []bits.Bit, llrs []float64, terminated bool) ([]bits.Bit, error) {
	if len(llrs)%2 != 0 {
		return dst, fmt.Errorf("wifi: LLR stream length %d is odd", len(llrs))
	}
	steps := len(llrs) / 2
	if steps == 0 {
		return dst[:0], nil
	}
	s := viterbiPool.Get().(*viterbiScratch)
	defer viterbiPool.Put(s)
	s.grow(steps)

	metric := currentACS().soft(s, llrs, steps)

	best := 0
	if !terminated {
		for st := 1; st < viterbiStates; st++ {
			if metric[st] < metric[best] {
				best = st
			}
		}
	}
	dst = growBits(dst, steps)
	traceback(dst, s.decisions, best)
	return dst, nil
}

// ViterbiDecodeInto is ViterbiDecode decoding into dst (reusing its
// capacity) and returning the resized slice.
//
//sledzig:noalloc
func ViterbiDecodeInto(dst []bits.Bit, coded []bits.Bit, erased []bool, terminated bool) ([]bits.Bit, error) {
	if len(coded)%2 != 0 {
		return dst, fmt.Errorf("wifi: coded length %d is odd", len(coded))
	}
	if erased != nil && len(erased) != len(coded) {
		return dst, fmt.Errorf("wifi: erasure mask length %d != coded length %d", len(erased), len(coded))
	}
	steps := len(coded) / 2
	if steps == 0 {
		return dst[:0], nil
	}
	s := viterbiPool.Get().(*viterbiScratch)
	defer viterbiPool.Put(s)
	s.grow(steps)

	metric := currentACS().hard(s, coded, erased, steps)

	best := 0
	if !terminated {
		for st := 1; st < viterbiStates; st++ {
			if metric[st] < metric[best] {
				best = st
			}
		}
	}
	dst = growBits(dst, steps)
	traceback(dst, s.decisions, best)
	return dst, nil
}

// traceback walks the bit-packed survivor words from the chosen end state,
// writing the decoded input bits into dst (len(dst) == len(decisions)).
// Destination state ns encodes its own input bit at bit 0, and the stored
// decision says whether the winning predecessor was ns>>1 | 32.
func traceback(dst []bits.Bit, decisions []uint64, best int) {
	state := best
	for t := len(decisions) - 1; t >= 0; t-- {
		dst[t] = bits.Bit(state & 1)
		d := int(decisions[t]>>uint(state)) & 1
		state = state>>1 | d<<5
	}
}
