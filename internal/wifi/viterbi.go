package wifi

import (
	"fmt"
	"math"
	"sync"

	"sledzig/internal/bits"
)

// Table-driven Viterbi decoder for the rate-1/2, constraint-7 mother code.
//
// The trellis is precomputed once per process: for destination state ns the
// two predecessors are fixed (ns>>1 and ns>>1|32, both consuming input bit
// ns&1), and each transition's coded output pair is a 2-bit index into a
// per-step table of the four possible branch metrics. Path metrics live in
// fixed-size arrays pointer-swapped between steps, and survivor decisions
// are bit-packed
// — one uint64 word per trellis step (64 states, one decision bit each) —
// so a 1500-byte frame's survivor memory is ~100 KiB smaller than the
// struct-matrix representation and is recycled through a sync.Pool.

const (
	viterbiStates = 64 // 2^(K-1)
	viterbiInfI32 = int32(1) << 30
)

// trellis holds the per-destination branch-output indices: for destination
// state ns, out0[ns]/out1[ns] are y0<<1|y1 of the transition from
// predecessor ns>>1 resp. ns>>1|32 under input ns&1.
type trellis struct {
	out0 [viterbiStates]uint8
	out1 [viterbiStates]uint8
}

var (
	trellisOnce sync.Once
	trellisTab  trellis
)

// viterbiTrellis returns the process-wide precomputed trellis tables.
func viterbiTrellis() *trellis {
	trellisOnce.Do(func() {
		pair := func(s, in int) uint8 {
			window := (uint32(s)<<1 | uint32(in)) & 0x7F
			y0, y1 := EncodeStep(window)
			return uint8(y0)<<1 | uint8(y1)
		}
		for ns := 0; ns < viterbiStates; ns++ {
			in := ns & 1
			trellisTab.out0[ns] = pair(ns>>1, in)
			trellisTab.out1[ns] = pair(ns>>1|32, in)
		}
	})
	return &trellisTab
}

// viterbiScratch is the recycled working state of one decode: fixed-size
// metric arrays (float for soft, int32 for hard — pointer-swapped between
// steps, and sized by a constant so the hot loop needs no bounds checks)
// and the bit-packed survivor words, grown to the longest frame seen.
type viterbiScratch struct {
	m0, m1    [viterbiStates]float64
	h0, h1    [viterbiStates]int32
	decisions []uint64
}

var viterbiPool = sync.Pool{New: func() any { return new(viterbiScratch) }}

func (s *viterbiScratch) grow(steps int) {
	if cap(s.decisions) < steps {
		s.decisions = make([]uint64, steps)
	}
	s.decisions = s.decisions[:steps]
}

// growBits returns dst resized to n elements, reusing its capacity.
func growBits(dst []bits.Bit, n int) []bits.Bit {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]bits.Bit, n)
}

// ViterbiDecodeSoftInto is ViterbiDecodeSoft decoding into dst (reusing its
// capacity) and returning the resized slice. llrs holds one value per
// mother-coded bit (positive favours 0), zeros acting as erasures.
func ViterbiDecodeSoftInto(dst []bits.Bit, llrs []float64, terminated bool) ([]bits.Bit, error) {
	if len(llrs)%2 != 0 {
		return dst, fmt.Errorf("wifi: LLR stream length %d is odd", len(llrs))
	}
	steps := len(llrs) / 2
	if steps == 0 {
		return dst[:0], nil
	}
	tr := viterbiTrellis()
	s := viterbiPool.Get().(*viterbiScratch)
	defer viterbiPool.Put(s)
	s.grow(steps)

	metric, next := &s.m0, &s.m1
	inf := math.Inf(1)
	for i := range metric {
		metric[i] = inf
	}
	metric[0] = 0

	var bmv [4]float64
	for t := 0; t < steps; t++ {
		// Cost of asserting bit value b against LLR l (l = log P(0)/P(1)):
		// add l when the branch outputs 1, -l when it outputs 0; constant
		// offsets cancel. Only four branch metrics exist per step, indexed
		// by the output pair y0<<1|y1.
		l0, l1 := llrs[2*t], llrs[2*t+1]
		bmv[0] = -l0 - l1
		bmv[1] = -l0 + l1
		bmv[2] = l0 - l1
		bmv[3] = l0 + l1
		var word uint64
		// Destination states 2p and 2p+1 share the predecessor pair
		// (p, p+32); walking pairs halves the path-metric loads.
		for p := 0; p < viterbiStates/2; p++ {
			m0, m1 := metric[p], metric[p+32]
			ns := 2 * p
			c0 := m0 + bmv[tr.out0[ns]&3]
			c1 := m1 + bmv[tr.out1[ns]&3]
			if c1 < c0 {
				next[ns] = c1
				word |= 1 << uint(ns)
			} else {
				next[ns] = c0
			}
			ns++
			c0 = m0 + bmv[tr.out0[ns]&3]
			c1 = m1 + bmv[tr.out1[ns]&3]
			if c1 < c0 {
				next[ns] = c1
				word |= 1 << uint(ns)
			} else {
				next[ns] = c0
			}
		}
		s.decisions[t] = word
		metric, next = next, metric
	}

	best := 0
	if !terminated {
		for st := 1; st < viterbiStates; st++ {
			if metric[st] < metric[best] {
				best = st
			}
		}
	}
	dst = growBits(dst, steps)
	traceback(dst, s.decisions, best)
	return dst, nil
}

// ViterbiDecodeInto is ViterbiDecode decoding into dst (reusing its
// capacity) and returning the resized slice.
func ViterbiDecodeInto(dst []bits.Bit, coded []bits.Bit, erased []bool, terminated bool) ([]bits.Bit, error) {
	if len(coded)%2 != 0 {
		return dst, fmt.Errorf("wifi: coded length %d is odd", len(coded))
	}
	if erased != nil && len(erased) != len(coded) {
		return dst, fmt.Errorf("wifi: erasure mask length %d != coded length %d", len(erased), len(coded))
	}
	steps := len(coded) / 2
	if steps == 0 {
		return dst[:0], nil
	}
	tr := viterbiTrellis()
	s := viterbiPool.Get().(*viterbiScratch)
	defer viterbiPool.Put(s)
	s.grow(steps)

	metric, next := &s.h0, &s.h1
	for i := range metric {
		metric[i] = viterbiInfI32
	}
	metric[0] = 0

	var bmv [4]int32
	for t := 0; t < steps; t++ {
		// Hamming branch metrics against the received pair, with erased
		// positions contributing nothing; four values indexed by y0<<1|y1.
		r0, r1 := int32(coded[2*t]&1), int32(coded[2*t+1]&1)
		e0, e1 := int32(1), int32(1)
		if erased != nil {
			if erased[2*t] {
				e0 = 0
			}
			if erased[2*t+1] {
				e1 = 0
			}
		}
		bmv[0] = e0*r0 + e1*r1         // outputs (0,0)
		bmv[1] = e0*r0 + e1*(1-r1)     // outputs (0,1)
		bmv[2] = e0*(1-r0) + e1*r1     // outputs (1,0)
		bmv[3] = e0*(1-r0) + e1*(1-r1) // outputs (1,1)
		var word uint64
		for p := 0; p < viterbiStates/2; p++ {
			m0, m1 := metric[p], metric[p+32]
			ns := 2 * p
			c0 := m0 + bmv[tr.out0[ns]&3]
			c1 := m1 + bmv[tr.out1[ns]&3]
			if c1 < c0 {
				next[ns] = c1
				word |= 1 << uint(ns)
			} else {
				next[ns] = c0
			}
			ns++
			c0 = m0 + bmv[tr.out0[ns]&3]
			c1 = m1 + bmv[tr.out1[ns]&3]
			if c1 < c0 {
				next[ns] = c1
				word |= 1 << uint(ns)
			} else {
				next[ns] = c0
			}
		}
		s.decisions[t] = word
		metric, next = next, metric
	}

	best := 0
	if !terminated {
		for st := 1; st < viterbiStates; st++ {
			if metric[st] < metric[best] {
				best = st
			}
		}
	}
	dst = growBits(dst, steps)
	traceback(dst, s.decisions, best)
	return dst, nil
}

// traceback walks the bit-packed survivor words from the chosen end state,
// writing the decoded input bits into dst (len(dst) == len(decisions)).
// Destination state ns encodes its own input bit at bit 0, and the stored
// decision says whether the winning predecessor was ns>>1 | 32.
func traceback(dst []bits.Bit, decisions []uint64, best int) {
	state := best
	for t := len(decisions) - 1; t >= 0; t-- {
		dst[t] = bits.Bit(state & 1)
		d := int(decisions[t]>>uint(state)) & 1
		state = state>>1 | d<<5
	}
}
