package wifi

import (
	"math/rand"
	"testing"

	"sledzig/internal/bits"
)

var demapConventions = []Convention{ConventionIEEE, ConventionPaper}
var demapModulations = []Modulation{BPSK, QPSK, QAM16, QAM64, QAM256}

// TestDemapSymbolCIntoMatchesDemapSymbolC checks the table-driven hard
// demapper against the original on noisy points, for every convention and
// modulation.
func TestDemapSymbolCIntoMatchesDemapSymbolC(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, c := range demapConventions {
		for _, m := range demapModulations {
			n := m.BitsPerSubcarrier()
			dst := make([]bits.Bit, n)
			for trial := 0; trial < 500; trial++ {
				p := complex(rng.NormFloat64(), rng.NormFloat64())
				want, err := c.DemapSymbolC(m, p)
				if err != nil {
					t.Fatal(err)
				}
				if err := c.DemapSymbolCInto(dst, m, p); err != nil {
					t.Fatal(err)
				}
				if !bits.Equal(dst, want) {
					t.Fatalf("%v %v point %v: got %v want %v", c, m, p, dst, want)
				}
			}
		}
	}
}

// TestDemapAllCIntoMatchesDemapAllC covers the sequence form.
func TestDemapAllCIntoMatchesDemapAllC(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, c := range demapConventions {
		for _, m := range demapModulations {
			pts := make([]complex128, NumDataSubcarriers)
			for i := range pts {
				pts[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			want, err := c.DemapAllC(m, pts)
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]bits.Bit, len(pts)*m.BitsPerSubcarrier())
			if err := c.DemapAllCInto(dst, m, pts); err != nil {
				t.Fatal(err)
			}
			if !bits.Equal(dst, want) {
				t.Fatalf("%v %v: sequence demap differs", c, m)
			}
		}
	}
}

// TestDeinterleaveCIntoMatches checks the Into deinterleaver against the
// allocating one.
func TestDeinterleaveCIntoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, c := range demapConventions {
		for _, m := range demapModulations {
			nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
			in := bits.Random(rng, nCBPS)
			want, err := c.DeinterleaveC(m, in)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]bits.Bit, nCBPS)
			if err := c.DeinterleaveCInto(out, in, m); err != nil {
				t.Fatal(err)
			}
			if !bits.Equal(out, want) {
				t.Fatalf("%v %v: deinterleave differs", c, m)
			}
		}
	}
}

// TestHardDemapPathDoesNotAllocate verifies the per-symbol hard receive
// primitives are allocation-free once their tables are built.
func TestHardDemapPathDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := make([]complex128, NumDataSubcarriers)
	for i := range pts {
		pts[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for _, c := range demapConventions {
		for _, m := range demapModulations {
			nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
			demapped := make([]bits.Bit, nCBPS)
			deinter := make([]bits.Bit, nCBPS)
			if err := c.DemapAllCInto(demapped, m, pts); err != nil {
				t.Fatal(err)
			}
			if avg := testing.AllocsPerRun(20, func() {
				if err := c.DemapAllCInto(demapped, m, pts); err != nil {
					t.Fatal(err)
				}
				if err := c.DeinterleaveCInto(deinter, demapped, m); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("%v %v: demap+deinterleave allocates %.1f times per run, want 0", c, m, avg)
			}
		}
	}
}

// TestNearestIdealPointMatchesDemapRemap checks the EVM quantizer against
// the demap->remap round trip it replaces, under both conventions.
func TestNearestIdealPointMatchesDemapRemap(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, c := range demapConventions {
		for _, m := range demapModulations {
			for trial := 0; trial < 300; trial++ {
				p := complex(rng.NormFloat64(), rng.NormFloat64())
				b, err := c.DemapSymbolC(m, p)
				if err != nil {
					t.Fatal(err)
				}
				want, err := c.MapSymbolC(m, b)
				if err != nil {
					t.Fatal(err)
				}
				if got := NearestIdealPoint(m, p); got != want {
					t.Fatalf("%v %v point %v: nearest %v, demap+remap %v", c, m, p, got, want)
				}
			}
		}
	}
}

// TestScramblerSequenceCacheMatchesLFSR checks the periodic-sequence fast
// path against stepping the LFSR bit by bit, over several periods and
// every seed.
func TestScramblerSequenceCacheMatchesLFSR(t *testing.T) {
	in := make([]bits.Bit, 3*scramblerPeriod+17)
	rng := rand.New(rand.NewSource(53))
	for i := range in {
		in[i] = bits.Bit(rng.Intn(2))
	}
	out := make([]bits.Bit, len(in))
	for seed := uint8(1); seed <= 0x7F; seed++ {
		s, err := NewScrambler(seed)
		if err != nil {
			t.Fatal(err)
		}
		want := s.Scramble(in)
		if err := ScrambleWithSeedInto(out, in, seed); err != nil {
			t.Fatal(err)
		}
		if !bits.Equal(out, want) {
			t.Fatalf("seed %#x: periodic scramble differs from LFSR", seed)
		}
	}
}

// TestReceiveIntoMatchesReceive runs one frame through both entry points
// and demands identical results, then checks the second ReceiveInto on a
// warm result stays within the per-frame allocation budget.
func TestReceiveIntoMatchesReceive(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for _, soft := range []bool{false, true} {
		for _, mode := range []Mode{
			{Modulation: QAM16, CodeRate: Rate12},
			{Modulation: QAM64, CodeRate: Rate34},
			{Modulation: QAM256, CodeRate: Rate56},
		} {
			tx := Transmitter{Mode: mode}
			frame, err := tx.Frame(bits.RandomBytes(rng, 300))
			if err != nil {
				t.Fatal(err)
			}
			wave, err := frame.Waveform()
			if err != nil {
				t.Fatal(err)
			}
			rx := Receiver{Soft: soft}
			want, err := rx.Receive(wave)
			if err != nil {
				t.Fatal(err)
			}
			var res RxResult
			if err := rx.ReceiveInto(wave, &res); err != nil {
				t.Fatal(err)
			}
			if res.Mode != want.Mode || res.PSDULength != want.PSDULength {
				t.Fatalf("soft=%v %v: header mismatch", soft, mode)
			}
			if !bits.Equal(res.DataBits, want.DataBits) {
				t.Fatalf("soft=%v %v: DataBits differ", soft, mode)
			}
			if string(res.PSDU) != string(want.PSDU) {
				t.Fatalf("soft=%v %v: PSDU differs", soft, mode)
			}
			if len(res.DataPoints) != len(want.DataPoints) {
				t.Fatalf("soft=%v %v: symbol count differs", soft, mode)
			}
			for s := range res.DataPoints {
				for i := range res.DataPoints[s] {
					if res.DataPoints[s][i] != want.DataPoints[s][i] {
						t.Fatalf("soft=%v %v: DataPoints[%d][%d] differ", soft, mode, s, i)
					}
				}
			}
		}
	}
}
