package wifi

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"sledzig/internal/bits"
	"sledzig/internal/dsp"
)

// Golden tests for the narrow (complex64) receive path: the narrow and
// wide pipelines must recover identical payloads over realistic channels,
// and the narrow pipeline's equalized constellation points must stay
// within a float32-rounding-scale distance of the wide reference.

// narrowWideChannels builds the impairment menu both pipelines are
// compared under: clean, AWGN, a flat complex gain, and a mild two-tap
// multipath channel.
func narrowWideChannels(rng *rand.Rand, wave []complex128) map[string][]complex128 {
	awgn := make([]complex128, len(wave))
	for i, v := range wave {
		awgn[i] = v + complex(rng.NormFloat64(), rng.NormFloat64())*0.003
	}
	flat := make([]complex128, len(wave))
	gain := cmplx.Rect(0.8, 0.6)
	for i, v := range wave {
		flat[i] = v * gain
	}
	multi := make([]complex128, len(wave))
	for i, v := range wave {
		multi[i] = v
		if i >= 3 {
			multi[i] += wave[i-3] * complex(0.08, -0.05)
		}
		multi[i] += complex(rng.NormFloat64(), rng.NormFloat64()) * 0.002
	}
	return map[string][]complex128{
		"clean":     wave,
		"awgn":      awgn,
		"flat":      flat,
		"multipath": multi,
	}
}

// TestNarrowWideParity demodulates every transmittable mode through both
// sample widths, hard and soft, over each impairment, and requires the
// recovered PSDUs to be identical and the equalized points to agree to
// float32 rounding scale.
func TestNarrowWideParity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, mod := range []Modulation{BPSK, QPSK, QAM16, QAM64, QAM256} {
		for _, rate := range []CodeRate{Rate12, Rate23, Rate34, Rate56} {
			mode := Mode{mod, rate}
			if _, err := rateCode(mode); err != nil {
				continue
			}
			psdu := bits.RandomBytes(rng, 240)
			frame, err := Transmitter{Mode: mode}.Frame(psdu)
			if err != nil {
				t.Fatal(err)
			}
			wave, err := frame.Waveform()
			if err != nil {
				t.Fatal(err)
			}
			for name, ch := range narrowWideChannels(rng, wave) {
				for _, soft := range []bool{false, true} {
					desc := fmt.Sprintf("%v %s soft=%v", mode, name, soft)
					wide, err := (Receiver{Soft: soft, WideIQ: true}).Receive(ch)
					if err != nil {
						t.Fatalf("%s: wide: %v", desc, err)
					}
					narrow, err := (Receiver{Soft: soft}).Receive(ch)
					if err != nil {
						t.Fatalf("%s: narrow: %v", desc, err)
					}
					if string(narrow.PSDU) != string(wide.PSDU) {
						t.Fatalf("%s: narrow PSDU differs from wide", desc)
					}
					if narrow.Mode != wide.Mode {
						t.Fatalf("%s: mode %v vs %v", desc, narrow.Mode, wide.Mode)
					}
					// Precision: equalized points must agree to a scale set
					// by float32 rounding of unit-power symbols, far below
					// the minimum decision distance of QAM-256 (~0.077).
					const tol = 2e-4
					for s := range wide.DataPoints {
						for i := range wide.DataPoints[s] {
							d := cmplx.Abs(narrow.DataPoints[s][i] - wide.DataPoints[s][i])
							if d > tol {
								t.Fatalf("%s: symbol %d point %d: |narrow-wide| = %g > %g",
									desc, s, i, d, tol)
							}
						}
					}
				}
			}
		}
	}
}

// TestNarrowEVMFloor pins the narrow path's clean-channel error floor: the
// float32 data path must keep EVM below 1e-6 — five orders of magnitude
// under the EVM of a barely-decodable capture.
func TestNarrowEVMFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	psdu := bits.RandomBytes(rng, 400)
	frame, err := Transmitter{Mode: Mode{QAM64, Rate34}}.Frame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	res, err := (Receiver{}).Receive(wave)
	if err != nil {
		t.Fatal(err)
	}
	for s, evm := range SymbolEVM(QAM64, res.DataPoints) {
		if evm > 1e-6 {
			t.Fatalf("symbol %d: narrow clean-channel EVM %g > 1e-6", s, evm)
		}
		if math.IsNaN(evm) {
			t.Fatalf("symbol %d: EVM is NaN", s)
		}
	}
}

// TestNarrowZeroGainChannel exercises the narrow path's degenerate-channel
// error: a zeroed LTS must fail channel estimation, not divide by zero.
func TestNarrowZeroGainChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	psdu := bits.RandomBytes(rng, 50)
	frame, err := Transmitter{Mode: Mode{QPSK, Rate12}}.Frame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	for i := 160; i < PreambleLength; i++ {
		wave[i] = 0
	}
	if _, err := (Receiver{}).Receive(wave); err == nil {
		t.Fatal("narrow receive succeeded on a zeroed LTS")
	}
}

// TestDemap64MatchesWide pins the exactness property the narrow hard
// demapper relies on: converting a complex64 point to complex128 is exact,
// so narrow and wide hard demaps agree bit for bit on every input.
func TestDemap64MatchesWide(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, c := range []Convention{ConventionIEEE, ConventionPaper} {
		for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64, QAM256} {
			bpsc := m.BitsPerSubcarrier()
			pts32 := make([]complex64, NumDataSubcarriers)
			pts64 := make([]complex128, NumDataSubcarriers)
			for trial := 0; trial < 50; trial++ {
				for i := range pts32 {
					pts32[i] = complex(float32(rng.NormFloat64()*0.8), float32(rng.NormFloat64()*0.8))
					pts64[i] = complex128(pts32[i])
				}
				got := make([]bits.Bit, len(pts32)*bpsc)
				want := make([]bits.Bit, len(pts32)*bpsc)
				if err := c.DemapAll64Into(got, m, pts32); err != nil {
					t.Fatal(err)
				}
				if err := c.DemapAllCInto(want, m, pts64); err != nil {
					t.Fatal(err)
				}
				if !bits.Equal(got, want) {
					t.Fatalf("%v %v: narrow hard demap differs from wide", c, m)
				}
			}
		}
	}
}

// FuzzDemap64RoundTrip drives both demappers with arbitrary point
// coordinates: the hard demaps must agree exactly, the soft LLRs to
// float32 rounding scale.
func FuzzDemap64RoundTrip(f *testing.F) {
	f.Add(float32(0.3), float32(-0.9), uint8(2), uint8(0))
	f.Add(float32(-1.1), float32(1.1), uint8(4), uint8(1))
	f.Add(float32(0), float32(0), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, re, im float32, modSel, convSel uint8) {
		mods := []Modulation{BPSK, QPSK, QAM16, QAM64, QAM256}
		m := mods[int(modSel)%len(mods)]
		c := Convention(convSel % 2)
		if math.IsNaN(float64(re)) || math.IsNaN(float64(im)) ||
			math.IsInf(float64(re), 0) || math.IsInf(float64(im), 0) {
			t.Skip()
		}
		if math.Abs(float64(re)) > 8 || math.Abs(float64(im)) > 8 {
			t.Skip()
		}
		p32 := []complex64{complex(re, im)}
		p64 := []complex128{complex128(p32[0])}
		bpsc := m.BitsPerSubcarrier()

		got := make([]bits.Bit, bpsc)
		want := make([]bits.Bit, bpsc)
		if err := c.DemapAll64Into(got, m, p32); err != nil {
			t.Fatal(err)
		}
		if err := c.DemapAllCInto(want, m, p64); err != nil {
			t.Fatal(err)
		}
		if !bits.Equal(got, want) {
			t.Fatalf("%v %v (%g,%g): hard demap narrow %v != wide %v", c, m, re, im, got, want)
		}

		gotL := make([]float64, bpsc)
		wantL := make([]float64, bpsc)
		if err := c.SoftDemapAll64Into(gotL, m, p32); err != nil {
			t.Fatal(err)
		}
		if err := c.SoftDemapAllInto(wantL, m, p64); err != nil {
			t.Fatal(err)
		}
		// Squared distances grow with |p|^2; scale the tolerance with the
		// largest distance in play.
		scale := (float64(re)*float64(re) + float64(im)*float64(im) + 4) * 1e-5
		for b := range gotL {
			if math.Abs(gotL[b]-wantL[b]) > scale {
				t.Fatalf("%v %v (%g,%g): LLR bit %d narrow %g vs wide %g (tol %g)",
					c, m, re, im, b, gotL[b], wantL[b], scale)
			}
		}
	})
}

// TestNarrowEqualizeAgainstWide compares the two equalizers symbol by
// symbol through a frequency-selective channel, bounding the narrow
// pipeline's added EVM directly (not just the decision outcomes).
func TestNarrowEqualizeAgainstWide(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	psdu := bits.RandomBytes(rng, 300)
	frame, err := Transmitter{Mode: Mode{QAM256, Rate56}}.Frame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	ch := make([]complex128, len(wave))
	for i, v := range wave {
		ch[i] = v * cmplx.Rect(1.1, -0.4)
		if i >= 2 {
			ch[i] += wave[i-2] * complex(-0.06, 0.09)
		}
	}
	wide, err := (Receiver{WideIQ: true}).Receive(ch)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := (Receiver{}).Receive(ch)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for s := range wide.DataPoints {
		for i := range wide.DataPoints[s] {
			if d := cmplx.Abs(narrow.DataPoints[s][i] - wide.DataPoints[s][i]); d > worst {
				worst = d
			}
		}
	}
	// QAM-256's decision distance is ~0.077; the float32 path must sit
	// hundreds of times below it even through a selective channel.
	if worst > 5e-4 {
		t.Fatalf("worst narrow-vs-wide point distance %g > 5e-4", worst)
	}
}

// TestNarrowScratchReuse decodes many frames through one receiver and pool
// to catch stale narrow-scratch state leaking between frames of different
// lengths and modes.
func TestNarrowScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	res := &RxResult{}
	r := Receiver{}
	for trial := 0; trial < 12; trial++ {
		mode := Mode{QPSK, Rate12}
		if trial%3 == 1 {
			mode = Mode{QAM64, Rate23}
		} else if trial%3 == 2 {
			mode = Mode{QAM256, Rate34}
		}
		n := 40 + rng.Intn(500)
		psdu := bits.RandomBytes(rng, n)
		frame, err := Transmitter{Mode: mode}.Frame(psdu)
		if err != nil {
			t.Fatal(err)
		}
		wave, err := frame.Waveform()
		if err != nil {
			t.Fatal(err)
		}
		if err := r.ReceiveInto(wave, res); err != nil {
			t.Fatalf("trial %d (%v, %d B): %v", trial, mode, n, err)
		}
		if string(res.PSDU) != string(psdu) {
			t.Fatalf("trial %d: payload mismatch", trial)
		}
	}
}

// TestNarrowDSPPrimitives pins the dsp complex64 kernels against their
// wide counterparts on receiver-shaped data.
func TestNarrowDSPPrimitives(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	x64 := make([]complex128, NumSubcarriers)
	for i := range x64 {
		x64[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	x32 := dsp.Narrow(nil, x64)

	fwide := make([]complex128, NumSubcarriers)
	fnarrow := make([]complex64, NumSubcarriers)
	if err := dsp.FFTInto(fwide, x64); err != nil {
		t.Fatal(err)
	}
	if err := dsp.FFTInto32(fnarrow, x32); err != nil {
		t.Fatal(err)
	}
	for i := range fwide {
		if d := cmplx.Abs(complex128(fnarrow[i]) - fwide[i]); d > 1e-4 {
			t.Fatalf("FFT bin %d: |narrow-wide| = %g", i, d)
		}
	}

	back := make([]complex64, NumSubcarriers)
	if err := dsp.IFFTInto32(back, fnarrow); err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if d := cmplx.Abs(complex128(back[i]) - x64[i]); d > 1e-5 {
			t.Fatalf("IFFT(FFT) sample %d: round-trip error %g", i, d)
		}
	}

	widened := dsp.Widen(nil, x32)
	for i := range widened {
		if widened[i] != complex128(x32[i]) {
			t.Fatalf("Widen sample %d not exact", i)
		}
	}

	pw, pn := dsp.Power(x64), dsp.Power32(x32)
	if math.Abs(pw-pn) > 1e-5*pw {
		t.Fatalf("Power %g vs Power32 %g", pw, pn)
	}
}
