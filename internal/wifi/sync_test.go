package wifi

import (
	"math"
	"math/rand"
	"testing"

	"sledzig/internal/bits"
)

func embedFrame(t *testing.T, rng *rand.Rand, offset int, noiseSigma float64, psdu []byte, mode Mode) []complex128 {
	t.Helper()
	frame, err := Transmitter{Mode: mode}.Frame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	capture := make([]complex128, offset+len(wave)+600)
	for i := range capture {
		capture[i] = complex(rng.NormFloat64()*noiseSigma, rng.NormFloat64()*noiseSigma)
	}
	for i, v := range wave {
		capture[offset+i] += v
	}
	return capture
}

func TestSynchronizerFindsPPDU(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	psdu := bits.RandomBytes(rng, 200)
	for _, offset := range []int{0, 333, 4096} {
		capture := embedFrame(t, rng, offset, 1e-4, psdu, Mode{QAM16, Rate12})
		got, err := (Synchronizer{}).Detect(capture)
		if err != nil {
			t.Fatalf("offset %d: %v", offset, err)
		}
		if got != offset {
			t.Fatalf("detected %d, want %d", got, offset)
		}
	}
}

func TestReceiveUnsynchronizedDecodes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	psdu := bits.RandomBytes(rng, 150)
	capture := embedFrame(t, rng, 777, 1e-4, psdu, Mode{QAM64, Rate34})
	// Add a moderate CFO on top.
	capture = CorrectCFO(capture, -18e3)
	res, start, err := (Synchronizer{}).ReceiveUnsynchronized(Receiver{Soft: true}, capture)
	if err != nil {
		t.Fatal(err)
	}
	if start != 777 {
		t.Fatalf("start %d", start)
	}
	for i := range psdu {
		if res.PSDU[i] != psdu[i] {
			t.Fatalf("PSDU mismatch at %d", i)
		}
	}
}

func TestSynchronizerUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	psdu := bits.RandomBytes(rng, 100)
	// SNR around 15 dB: signal power of the preamble is ~0.0127 per
	// sample; sigma^2*2 = 0.0127/30.
	sigma := math.Sqrt(0.0127 / 30 / 2)
	capture := embedFrame(t, rng, 1500, sigma, psdu, Mode{QAM16, Rate12})
	got, err := (Synchronizer{}).Detect(capture)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1500 {
		t.Fatalf("detected %d, want 1500", got)
	}
}

func TestSynchronizerRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	capture := make([]complex128, 8000)
	for i := range capture {
		capture[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	if start, err := (Synchronizer{}).Detect(capture); err == nil {
		t.Fatalf("pure noise detected as a PPDU at %d", start)
	}
}

func TestSynchronizerShortCapture(t *testing.T) {
	if _, err := (Synchronizer{}).Detect(make([]complex128, 100)); err == nil {
		t.Fatal("short capture accepted")
	}
}
