package wifi

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sledzig/internal/bits"
)

// refViterbiDecode is the seed repository's hard-decision decoder
// (source-state iteration, struct-matrix survivors), kept verbatim as the
// byte-identity reference for the table-driven rewrite.
func refViterbiDecode(coded []bits.Bit, erased []bool, terminated bool) ([]bits.Bit, error) {
	if len(coded)%2 != 0 {
		return nil, fmt.Errorf("wifi: coded length %d is odd", len(coded))
	}
	if erased != nil && len(erased) != len(coded) {
		return nil, fmt.Errorf("wifi: erasure mask length %d != coded length %d", len(erased), len(coded))
	}
	steps := len(coded) / 2
	if steps == 0 {
		return nil, nil
	}

	const numStates = 64
	const inf = int32(1) << 30

	var outBits [numStates][2][2]bits.Bit
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			window := (uint32(s)<<1 | uint32(in)) & 0x7F
			y0, y1 := EncodeStep(window)
			outBits[s][in] = [2]bits.Bit{y0, y1}
		}
	}

	metric := make([]int32, numStates)
	next := make([]int32, numStates)
	for i := range metric {
		metric[i] = inf
	}
	metric[0] = 0

	type survivor struct {
		prev uint8
		in   uint8
	}
	surv := make([][numStates]survivor, steps)

	for t := 0; t < steps; t++ {
		for i := range next {
			next[i] = inf
		}
		r0, r1 := coded[2*t]&1, coded[2*t+1]&1
		e0, e1 := false, false
		if erased != nil {
			e0, e1 = erased[2*t], erased[2*t+1]
		}
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if m >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				var cost int32
				ob := outBits[s][in]
				if !e0 && ob[0] != r0 {
					cost++
				}
				if !e1 && ob[1] != r1 {
					cost++
				}
				ns := ((s << 1) | in) & 0x3F
				if nm := m + cost; nm < next[ns] {
					next[ns] = nm
					surv[t][ns] = survivor{prev: uint8(s), in: uint8(in)}
				}
			}
		}
		metric, next = next, metric
	}

	best := 0
	if !terminated {
		for s := 1; s < numStates; s++ {
			if metric[s] < metric[best] {
				best = s
			}
		}
	}
	decoded := make([]bits.Bit, steps)
	state := uint8(best)
	for t := steps - 1; t >= 0; t-- {
		sv := surv[t][state]
		decoded[t] = bits.Bit(sv.in)
		state = sv.prev
	}
	return decoded, nil
}

// refViterbiDecodeSoft is the seed repository's soft decoder, kept verbatim
// as the byte-identity reference.
func refViterbiDecodeSoft(llrs []float64, terminated bool) ([]bits.Bit, error) {
	if len(llrs)%2 != 0 {
		return nil, fmt.Errorf("wifi: LLR stream length %d is odd", len(llrs))
	}
	steps := len(llrs) / 2
	if steps == 0 {
		return nil, nil
	}
	const numStates = 64
	inf := math.Inf(1)

	var outBits [numStates][2][2]bits.Bit
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			w := (uint32(s)<<1 | uint32(in)) & 0x7F
			y0, y1 := EncodeStep(w)
			outBits[s][in] = [2]bits.Bit{y0, y1}
		}
	}

	metric := make([]float64, numStates)
	next := make([]float64, numStates)
	for i := range metric {
		metric[i] = inf
	}
	metric[0] = 0

	type survivor struct {
		prev uint8
		in   uint8
	}
	surv := make([][numStates]survivor, steps)

	for t := 0; t < steps; t++ {
		for i := range next {
			next[i] = inf
		}
		l0, l1 := llrs[2*t], llrs[2*t+1]
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if math.IsInf(m, 1) {
				continue
			}
			for in := 0; in < 2; in++ {
				cost := m
				ob := outBits[s][in]
				if ob[0] == 1 {
					cost += l0
				} else {
					cost -= l0
				}
				if ob[1] == 1 {
					cost += l1
				} else {
					cost -= l1
				}
				ns := ((s << 1) | in) & 0x3F
				if cost < next[ns] {
					next[ns] = cost
					surv[t][ns] = survivor{prev: uint8(s), in: uint8(in)}
				}
			}
		}
		metric, next = next, metric
	}

	best := 0
	if !terminated {
		for s := 1; s < numStates; s++ {
			if metric[s] < metric[best] {
				best = s
			}
		}
	}
	decoded := make([]bits.Bit, steps)
	state := uint8(best)
	for t := steps - 1; t >= 0; t-- {
		sv := surv[t][state]
		decoded[t] = bits.Bit(sv.in)
		state = sv.prev
	}
	return decoded, nil
}

var identityRates = []CodeRate{Rate12, Rate23, Rate34, Rate56}

// TestViterbiHardMatchesSeedDecoder drives both decoders over noisy
// punctured streams of every rate and demands bit-exact agreement,
// terminated and not.
func TestViterbiHardMatchesSeedDecoder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, r := range identityRates {
		for _, terminated := range []bool{false, true} {
			for trial := 0; trial < 25; trial++ {
				n := 1 + rng.Intn(300)
				in := bits.Random(rng, n)
				if terminated {
					// Zero tail drives the encoder back to state 0.
					in = append(in[:max(0, n-6)], 0, 0, 0, 0, 0, 0)
				}
				tx, err := EncodeAndPuncture(in, r)
				if err != nil {
					t.Fatal(err)
				}
				for i := range tx {
					if rng.Float64() < 0.03 {
						tx[i] ^= 1
					}
				}
				mother, erased, err := Depuncture(tx, r)
				if err != nil {
					t.Fatal(err)
				}
				want, err := refViterbiDecode(mother, erased, terminated)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ViterbiDecode(mother, erased, terminated)
				if err != nil {
					t.Fatal(err)
				}
				if !bits.Equal(got, want) {
					t.Fatalf("rate %v terminated=%v trial %d: decoders disagree", r, terminated, trial)
				}
			}
		}
	}
}

// TestViterbiSoftMatchesSeedDecoder feeds random LLR streams (with zero
// erasures mixed in) to both soft decoders.
func TestViterbiSoftMatchesSeedDecoder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		steps := 1 + rng.Intn(400)
		llrs := make([]float64, 2*steps)
		for i := range llrs {
			switch rng.Intn(10) {
			case 0:
				llrs[i] = 0 // erasure
			default:
				llrs[i] = rng.NormFloat64()
			}
		}
		terminated := trial%2 == 0
		want, err := refViterbiDecodeSoft(llrs, terminated)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ViterbiDecodeSoft(llrs, terminated)
		if err != nil {
			t.Fatal(err)
		}
		if !bits.Equal(got, want) {
			t.Fatalf("trial %d (terminated=%v): soft decoders disagree", trial, terminated)
		}
	}
}

// TestViterbiIntoReusesCapacityAndMatches checks the Into variants return
// identical bits while reusing the destination's backing array.
func TestViterbiIntoReusesCapacityAndMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := bits.Random(rng, 250)
	tx, err := EncodeAndPuncture(in, Rate34)
	if err != nil {
		t.Fatal(err)
	}
	mother, erased, err := Depuncture(tx, Rate34)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ViterbiDecode(mother, erased, false)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]bits.Bit, 0, 4096)
	got, err := ViterbiDecodeInto(dst, mother, erased, false)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[:1][0] {
		t.Error("ViterbiDecodeInto did not reuse the destination's backing array")
	}
	if !bits.Equal(got, want) {
		t.Error("ViterbiDecodeInto result differs from ViterbiDecode")
	}

	llrs := make([]float64, len(mother))
	for i, b := range mother {
		if erased[i] {
			continue
		}
		llrs[i] = 1 - 2*float64(b)
	}
	wantSoft, err := ViterbiDecodeSoft(llrs, false)
	if err != nil {
		t.Fatal(err)
	}
	gotSoft, err := ViterbiDecodeSoftInto(dst[:0], llrs, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(gotSoft, wantSoft) {
		t.Error("ViterbiDecodeSoftInto result differs from ViterbiDecodeSoft")
	}
}

// TestViterbiIntoDoesNotAllocate verifies the pooled decoders are
// allocation-free once the pool and destination are warm.
func TestViterbiIntoDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := bits.Random(rng, 500)
	coded := ConvolutionalEncode(in)
	llrs := make([]float64, len(coded))
	for i, b := range coded {
		llrs[i] = 1 - 2*float64(b)
	}
	dst := make([]bits.Bit, 0, len(in))
	// Warm the scratch pool.
	if _, err := ViterbiDecodeInto(dst, coded, nil, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ViterbiDecodeSoftInto(dst, llrs, false); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := ViterbiDecodeInto(dst, coded, nil, false); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("ViterbiDecodeInto allocates %.1f times per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := ViterbiDecodeSoftInto(dst, llrs, false); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("ViterbiDecodeSoftInto allocates %.1f times per run, want 0", avg)
	}
}

// FuzzDepunctureRoundTrip checks Depuncture exactly inverts Puncture at
// every rate, including streams that end mid-pattern.
func FuzzDepunctureRoundTrip(f *testing.F) {
	f.Add(int64(1), 10, 0)
	f.Add(int64(2), 123, 1)
	f.Add(int64(3), 1, 2)
	f.Add(int64(4), 997, 3)
	f.Fuzz(func(t *testing.T, seed int64, n int, rateIdx int) {
		if n < 1 || n > 5000 {
			t.Skip()
		}
		r := identityRates[((rateIdx%len(identityRates))+len(identityRates))%len(identityRates)]
		rng := rand.New(rand.NewSource(seed))
		coded := ConvolutionalEncode(bits.Random(rng, n))
		punctured, err := Puncture(coded, r)
		if err != nil {
			t.Fatal(err)
		}
		mother, erased, err := Depuncture(punctured, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(mother)%2 != 0 {
			t.Fatalf("mother length %d is odd", len(mother))
		}
		if len(mother) < len(coded) {
			t.Fatalf("mother length %d < coded length %d", len(mother), len(coded))
		}
		// Every non-erased slot must hold the transmitted bit, and the
		// erasure mask must mark exactly the punctured (and pad) slots.
		pat, err := puncturePattern(r)
		if err != nil {
			t.Fatal(err)
		}
		j := 0
		for i := range mother {
			kept := i < len(coded) && pat[i%len(pat)] && j < len(punctured)
			if kept {
				if erased[i] {
					t.Fatalf("slot %d kept but marked erased", i)
				}
				if mother[i] != punctured[j] {
					t.Fatalf("slot %d: got %d want %d", i, mother[i], punctured[j])
				}
				j++
			} else if !erased[i] {
				t.Fatalf("slot %d punctured but not marked erased", i)
			}
		}
		if j != len(punctured) {
			t.Fatalf("consumed %d of %d punctured bits", j, len(punctured))
		}
		// The decoder must recover the exact input on a clean channel.
		decoded, err := ViterbiDecode(mother, erased, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(decoded) < n {
			t.Fatalf("decoded %d bits, want at least %d", len(decoded), n)
		}
	})
}

// TestDepunctureIntoMatches checks the pooled variant against Depuncture.
func TestDepunctureIntoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var data []bits.Bit
	var erased []bool
	for _, r := range identityRates {
		for trial := 0; trial < 20; trial++ {
			rx := bits.Random(rng, 1+rng.Intn(700))
			wantData, wantErased, err := Depuncture(rx, r)
			if err != nil {
				t.Fatal(err)
			}
			data, erased, err = DepunctureInto(data, erased, rx, r)
			if err != nil {
				t.Fatal(err)
			}
			if !bits.Equal(data, wantData) {
				t.Fatalf("rate %v: DepunctureInto data differs", r)
			}
			if len(erased) != len(wantErased) {
				t.Fatalf("rate %v: erased length %d != %d", r, len(erased), len(wantErased))
			}
			for i := range erased {
				if erased[i] != wantErased[i] {
					t.Fatalf("rate %v: erased[%d] differs", r, i)
				}
			}
		}
	}
}
