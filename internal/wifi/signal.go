package wifi

import (
	"fmt"

	"sledzig/internal/bits"
)

// The SIGNAL field (PLCP header) is one BPSK rate-1/2 OFDM symbol carrying
// RATE (4 bits), a reserved bit, LENGTH (12 bits, LSB first), even parity,
// and six tail bits. It is convolutionally coded and interleaved but not
// scrambled. The SledZig receiver reads modulation and coding rate from
// here (paper section IV-G).

// rateCode returns the 4-bit RATE field for a mode. The 802.11a codes cover
// BPSK through QAM-64 3/4; the remaining combinations the paper evaluates
// (QAM-64 5/6, QAM-256 3/4 and 5/6) are assigned to code points unused by
// the standard so that the full paper sweep is self-describing on the air.
func rateCode(m Mode) (uint8, error) {
	switch m {
	case Mode{BPSK, Rate12}:
		return 0b1101, nil
	case Mode{BPSK, Rate34}:
		return 0b1111, nil
	case Mode{QPSK, Rate12}:
		return 0b0101, nil
	case Mode{QPSK, Rate34}:
		return 0b0111, nil
	case Mode{QAM16, Rate12}:
		return 0b1001, nil
	case Mode{QAM16, Rate34}:
		return 0b1011, nil
	case Mode{QAM64, Rate23}:
		return 0b0001, nil
	case Mode{QAM64, Rate34}:
		return 0b0011, nil
	// Extensions beyond 802.11a (see doc comment).
	case Mode{QAM64, Rate56}:
		return 0b0010, nil
	case Mode{QAM256, Rate34}:
		return 0b0100, nil
	case Mode{QAM256, Rate56}:
		return 0b0110, nil
	case Mode{QAM16, Rate23}:
		return 0b1000, nil
	case Mode{QAM256, Rate23}:
		return 0b1010, nil
	}
	return 0, fmt.Errorf("wifi: no RATE code for mode %v", m)
}

// modeByRateCode inverts rateCode as a lookup table, built once at init —
// the receiver consults it on every frame's SIGNAL field.
var modeByRateCode = func() (t [16]struct {
	mode Mode
	ok   bool
}) {
	for _, m := range allModes() {
		if c, err := rateCode(m); err == nil && !t[c].ok {
			t[c].mode, t[c].ok = m, true
		}
	}
	return
}()

// modeFromRateCode inverts rateCode.
func modeFromRateCode(code uint8) (Mode, error) {
	if int(code) < len(modeByRateCode) && modeByRateCode[code].ok {
		return modeByRateCode[code].mode, nil
	}
	return Mode{}, fmt.Errorf("wifi: unknown RATE code %#04b", code)
}

func allModes() []Mode {
	mods := []Modulation{BPSK, QPSK, QAM16, QAM64, QAM256}
	rates := []CodeRate{Rate12, Rate23, Rate34, Rate56}
	out := make([]Mode, 0, len(mods)*len(rates))
	for _, m := range mods {
		for _, r := range rates {
			out = append(out, Mode{m, r})
		}
	}
	return out
}

// maxPSDULength is the largest LENGTH value the 12-bit field can carry.
const maxPSDULength = 4095

// MaxPSDULength is the largest PSDU LENGTH the SIGNAL field can signal —
// the upper bound on any single frame's payload.
const MaxPSDULength = maxPSDULength

// SignalField encodes the 24 SIGNAL bits for a mode and PSDU length in
// bytes.
func SignalField(m Mode, length int) ([]bits.Bit, error) {
	if length < 1 || length > maxPSDULength {
		return nil, fmt.Errorf("wifi: PSDU length %d out of range [1, %d]", length, maxPSDULength)
	}
	code, err := rateCode(m)
	if err != nil {
		return nil, err
	}
	out := make([]bits.Bit, 0, 24)
	out = append(out, bits.FromUint(uint64(code), 4)...) // RATE, MSB first (R1..R4)
	out = append(out, 0)                                 // reserved
	for i := 0; i < 12; i++ {                            // LENGTH, LSB first
		out = append(out, bits.Bit((length>>i)&1))
	}
	out = append(out, bits.Parity(out)) // even parity over bits 0..16
	out = append(out, 0, 0, 0, 0, 0, 0) // tail
	return out, nil
}

// ParseSignalField decodes a 24-bit SIGNAL field, validating parity.
func ParseSignalField(b []bits.Bit) (Mode, int, error) {
	if len(b) != 24 {
		return Mode{}, 0, fmt.Errorf("wifi: SIGNAL field must be 24 bits, got %d", len(b))
	}
	if bits.Parity(b[:18]) != 0 {
		return Mode{}, 0, fmt.Errorf("wifi: SIGNAL parity check failed")
	}
	mode, err := modeFromRateCode(uint8(bits.ToUint(b[:4])))
	if err != nil {
		return Mode{}, 0, err
	}
	length := 0
	for i := 0; i < 12; i++ {
		length |= int(b[5+i]&1) << i
	}
	if length == 0 {
		return Mode{}, 0, fmt.Errorf("wifi: SIGNAL declares zero-length PSDU")
	}
	return mode, length, nil
}

// signalMode is the fixed BPSK rate-1/2 transmission mode of the SIGNAL
// symbol.
var signalMode = Mode{BPSK, Rate12}

// EncodeSignalSymbol produces the 48 constellation points of the SIGNAL
// OFDM symbol.
func EncodeSignalSymbol(m Mode, length int) ([]complex128, error) {
	field, err := SignalField(m, length)
	if err != nil {
		return nil, err
	}
	coded, err := EncodeAndPuncture(field, signalMode.CodeRate)
	if err != nil {
		return nil, err
	}
	inter, err := Interleave(signalMode.Modulation, coded)
	if err != nil {
		return nil, err
	}
	return MapAll(signalMode.Modulation, inter)
}

// DecodeSignalSymbol inverts EncodeSignalSymbol from received points.
func DecodeSignalSymbol(pts []complex128) (Mode, int, error) {
	rx, err := DemapAll(signalMode.Modulation, pts)
	if err != nil {
		return Mode{}, 0, err
	}
	deinter, err := Deinterleave(signalMode.Modulation, rx)
	if err != nil {
		return Mode{}, 0, err
	}
	field, err := DepunctureAndDecode(deinter, signalMode.CodeRate, true)
	if err != nil {
		return Mode{}, 0, err
	}
	return ParseSignalField(field)
}
