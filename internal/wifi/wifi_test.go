package wifi

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"sledzig/internal/bits"
)

func TestScramblerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed uint8) bool {
		seed = seed%0x7F + 1
		data := bits.Random(rng, 403)
		s1, err := ScrambleWithSeed(data, seed)
		if err != nil {
			return false
		}
		s2, err := ScrambleWithSeed(s1, seed)
		if err != nil {
			return false
		}
		return bits.Equal(data, s2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScramblerPeriod127(t *testing.T) {
	s, err := NewScrambler(DefaultScramblerSeed)
	if err != nil {
		t.Fatal(err)
	}
	seq := s.Sequence(254)
	if !bits.Equal(seq[:127], seq[127:]) {
		t.Fatal("scrambler sequence does not repeat with period 127")
	}
	// Maximal-length: all 127 nonzero states appear, so the sequence has 64
	// ones and 63 zeros.
	ones := 0
	for _, b := range seq[:127] {
		ones += int(b)
	}
	if ones != 64 {
		t.Fatalf("scrambler period has %d ones, want 64", ones)
	}
}

func TestScramblerRejectsBadSeed(t *testing.T) {
	for _, seed := range []uint8{0, 0x80, 0xFF} {
		if _, err := NewScrambler(seed); err == nil {
			t.Errorf("NewScrambler(%#x) accepted invalid seed", seed)
		}
	}
}

// 802.11-2012 17.3.5.5: with the all-ones initial state the scrambler's
// 127-bit sequence begins 00001110 11110010 11001001.
func TestScramblerAllOnesSequence(t *testing.T) {
	s, err := NewScrambler(0x7F)
	if err != nil {
		t.Fatal(err)
	}
	want := []bits.Bit{
		0, 0, 0, 0, 1, 1, 1, 0,
		1, 1, 1, 1, 0, 0, 1, 0,
		1, 1, 0, 0, 1, 0, 0, 1,
	}
	got := s.Sequence(len(want))
	if !bits.Equal(got, want) {
		t.Fatalf("scrambler sequence mismatch:\n got %s\nwant %s", bits.String(got), bits.String(want))
	}
}

func TestConvolutionalKnownVector(t *testing.T) {
	// The all-zeros input yields all-zeros output; an impulse yields the
	// generator taps read off over the following six steps.
	imp := make([]bits.Bit, 8)
	imp[0] = 1
	coded := ConvolutionalEncode(imp)
	// Step n sees window with the 1 at delay n-1.
	wantG0 := []bits.Bit{1, 0, 1, 1, 0, 1, 1, 0} // taps {0,2,3,5,6}
	wantG1 := []bits.Bit{1, 1, 1, 1, 0, 0, 1, 0} // taps {0,1,2,3,6}
	for n := 0; n < 8; n++ {
		if coded[2*n] != wantG0[n] || coded[2*n+1] != wantG1[n] {
			t.Fatalf("impulse response step %d = (%d,%d), want (%d,%d)",
				n, coded[2*n], coded[2*n+1], wantG0[n], wantG1[n])
		}
	}
}

func TestViterbiRoundTripNoErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, r := range []CodeRate{Rate12, Rate23, Rate34, Rate56} {
		// Length divisible by every puncturing period's input count.
		data := bits.Random(rng, 120)
		// Terminate with 6 zeros.
		data = append(data, make([]bits.Bit, 6)...)
		coded, err := EncodeAndPuncture(data, r)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DepunctureAndDecode(coded, r, true)
		if err != nil {
			t.Fatal(err)
		}
		if !bits.Equal(decoded, data) {
			t.Fatalf("rate %v: Viterbi round trip failed", r)
		}
	}
}

func TestViterbiCorrectsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := bits.Random(rng, 200)
	data = append(data, make([]bits.Bit, 6)...)
	coded := ConvolutionalEncode(data)
	// Flip isolated bits, spaced beyond the constraint length's reach.
	for _, pos := range []int{10, 60, 111, 200, 333} {
		coded[pos] ^= 1
	}
	decoded, err := ViterbiDecode(coded, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(decoded, data) {
		t.Fatal("Viterbi failed to correct isolated bit errors")
	}
}

func TestViterbiPropertyRandomNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		data := bits.Random(lr, 96)
		data = append(data, make([]bits.Bit, 6)...)
		coded := ConvolutionalEncode(data)
		// 3 random isolated flips at least 14 positions apart.
		positions := []int{20 + lr.Intn(10), 80 + lr.Intn(10), 150 + lr.Intn(10)}
		for _, p := range positions {
			coded[p] ^= 1
		}
		decoded, err := ViterbiDecode(coded, nil, true)
		if err != nil {
			return false
		}
		return bits.Equal(decoded, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestPunctureDepunctureShape(t *testing.T) {
	for _, tc := range []struct {
		r       CodeRate
		in, out int
	}{
		{Rate12, 48, 96},
		{Rate23, 48, 72},
		{Rate34, 48, 64},
		{Rate56, 50, 60},
	} {
		data := make([]bits.Bit, tc.in)
		coded, err := EncodeAndPuncture(data, tc.r)
		if err != nil {
			t.Fatal(err)
		}
		if len(coded) != tc.out {
			t.Errorf("rate %v: %d input bits -> %d coded bits, want %d", tc.r, tc.in, len(coded), tc.out)
		}
	}
}

func TestMotherIndices(t *testing.T) {
	idx, err := MotherIndices(6, Rate34)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 5, 6, 7}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("MotherIndices(3/4) = %v, want %v", idx, want)
		}
	}
}

func TestInterleaverBijection(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64, QAM256} {
		n := NumDataSubcarriers * m.BitsPerSubcarrier()
		seen := make([]bool, n)
		for k := 0; k < n; k++ {
			j := InterleaveIndex(m, k)
			if j < 0 || j >= n {
				t.Fatalf("%v: InterleaveIndex(%d) = %d out of range", m, k, j)
			}
			if seen[j] {
				t.Fatalf("%v: InterleaveIndex not injective at %d", m, k)
			}
			seen[j] = true
			if back := DeinterleaveIndex(m, j); back != k {
				t.Fatalf("%v: DeinterleaveIndex(%d) = %d, want %d", m, j, back, k)
			}
		}
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range []Modulation{QAM16, QAM64, QAM256} {
		data := bits.Random(rng, 3*NumDataSubcarriers*m.BitsPerSubcarrier())
		inter, err := InterleaveAll(m, data)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DeinterleaveAll(m, inter)
		if err != nil {
			t.Fatal(err)
		}
		if !bits.Equal(back, data) {
			t.Fatalf("%v: interleave round trip failed", m)
		}
	}
}

func TestQAMGrayMapping16(t *testing.T) {
	// 802.11 Table 18-10: b0b1 -> I in {-3,-1,1,3} as 00,01,11,10.
	k := NormFactor(QAM16)
	cases := map[[4]bits.Bit]complex128{
		{0, 0, 0, 0}: complex(-3*k, -3*k),
		{0, 1, 0, 1}: complex(-1*k, -1*k),
		{1, 1, 1, 1}: complex(1*k, 1*k),
		{1, 0, 1, 0}: complex(3*k, 3*k),
		{1, 1, 0, 0}: complex(1*k, -3*k),
	}
	for in, want := range cases {
		got, err := MapSymbol(QAM16, in[:])
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(got-want) > 1e-12 {
			t.Errorf("MapSymbol(QAM16, %v) = %v, want %v", in, got, want)
		}
	}
}

func TestQAMRoundTripAllPoints(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64, QAM256} {
		n := m.BitsPerSubcarrier()
		for v := 0; v < 1<<n; v++ {
			in := bits.FromUint(uint64(v), n)
			p, err := MapSymbol(m, in)
			if err != nil {
				t.Fatal(err)
			}
			out, err := DemapSymbol(m, p)
			if err != nil {
				t.Fatal(err)
			}
			if !bits.Equal(in, out) {
				t.Fatalf("%v: point %s demapped to %s", m, bits.String(in), bits.String(out))
			}
		}
	}
}

func TestQAMUnitAveragePower(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64, QAM256} {
		n := m.BitsPerSubcarrier()
		var sum float64
		for v := 0; v < 1<<n; v++ {
			p, err := MapSymbol(m, bits.FromUint(uint64(v), n))
			if err != nil {
				t.Fatal(err)
			}
			sum += real(p)*real(p) + imag(p)*imag(p)
		}
		avg := sum / float64(int(1)<<n)
		if math.Abs(avg-1) > 1e-12 {
			t.Errorf("%v: average constellation power %g, want 1", m, avg)
		}
	}
}

func TestTheoreticalPowerReduction(t *testing.T) {
	// Paper section III-B: 7.0, 13.2, 19.3 dB.
	cases := []struct {
		m    Modulation
		want float64
	}{
		{QAM16, 7.0},
		{QAM64, 13.2},
		{QAM256, 19.3},
	}
	for _, tc := range cases {
		got := PowerReductionDB(tc.m)
		if math.Abs(got-tc.want) > 0.05 {
			t.Errorf("PowerReductionDB(%v) = %.2f dB, want %.1f dB", tc.m, got, tc.want)
		}
	}
}

func TestSignificantOffsetsForceLowestRing(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, m := range []Modulation{QAM16, QAM64, QAM256} {
		offsets, values := SignificantOffsets(m)
		wantCount := map[Modulation]int{QAM16: 2, QAM64: 4, QAM256: 6}[m]
		if len(offsets) != wantCount {
			t.Fatalf("%v: %d significant bits, want %d (Table I)", m, len(offsets), wantCount)
		}
		// Any point with the significant bits pinned must land on the
		// lowest-power ring, whatever the free bits hold.
		for trial := 0; trial < 64; trial++ {
			b := bits.Random(rng, m.BitsPerSubcarrier())
			for i, off := range offsets {
				b[off] = values[i]
			}
			p, err := MapSymbol(m, b)
			if err != nil {
				t.Fatal(err)
			}
			power := (real(p)*real(p) + imag(p)*imag(p)) / (NormFactor(m) * NormFactor(m))
			if math.Abs(power-2) > 1e-9 {
				t.Fatalf("%v: pinned point %v has unnormalized power %g, want 2", m, p, power)
			}
		}
	}
}

func TestModeTables(t *testing.T) {
	cases := []struct {
		mode         Mode
		nCBPS, nDBPS int
	}{
		{Mode{QAM16, Rate12}, 192, 96},
		{Mode{QAM16, Rate34}, 192, 144},
		{Mode{QAM64, Rate23}, 288, 192},
		{Mode{QAM64, Rate34}, 288, 216},
		{Mode{QAM64, Rate56}, 288, 240},
		{Mode{QAM256, Rate34}, 384, 288},
		{Mode{QAM256, Rate56}, 384, 320},
	}
	for _, tc := range cases {
		if got := tc.mode.CodedBitsPerSymbol(); got != tc.nCBPS {
			t.Errorf("%v: N_CBPS = %d, want %d", tc.mode, got, tc.nCBPS)
		}
		if got := tc.mode.DataBitsPerSymbol(); got != tc.nDBPS {
			t.Errorf("%v: N_DBPS = %d, want %d", tc.mode, got, tc.nDBPS)
		}
	}
}

func TestSubcarrierSets(t *testing.T) {
	ds := DataSubcarriers()
	if len(ds) != 48 {
		t.Fatalf("%d data subcarriers, want 48", len(ds))
	}
	for _, k := range ds {
		if IsPilot(k) || IsNull(k) {
			t.Errorf("data subcarrier %d overlaps pilot/null", k)
		}
	}
	if got := PilotSubcarriers(); len(got) != 4 {
		t.Fatalf("%d pilots, want 4", len(got))
	}
}

func TestSignalFieldRoundTrip(t *testing.T) {
	for _, m := range PaperModes() {
		for _, length := range []int{1, 100, 1500, 4095} {
			b, err := SignalField(m, length)
			if err != nil {
				t.Fatal(err)
			}
			gotMode, gotLen, err := ParseSignalField(b)
			if err != nil {
				t.Fatal(err)
			}
			if gotMode != m || gotLen != length {
				t.Errorf("SIGNAL round trip: got (%v, %d), want (%v, %d)", gotMode, gotLen, m, length)
			}
		}
	}
}

func TestSignalSymbolRoundTrip(t *testing.T) {
	pts, err := EncodeSignalSymbol(Mode{QAM64, Rate34}, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != NumDataSubcarriers {
		t.Fatalf("SIGNAL symbol has %d points, want %d", len(pts), NumDataSubcarriers)
	}
	mode, length, err := DecodeSignalSymbol(pts)
	if err != nil {
		t.Fatal(err)
	}
	if mode != (Mode{QAM64, Rate34}) || length != 1234 {
		t.Fatalf("SIGNAL symbol round trip: got (%v, %d)", mode, length)
	}
}

func TestSignalParityDetectsCorruption(t *testing.T) {
	b, err := SignalField(Mode{QAM16, Rate12}, 42)
	if err != nil {
		t.Fatal(err)
	}
	b[7] ^= 1
	if _, _, err := ParseSignalField(b); err == nil {
		t.Fatal("corrupted SIGNAL field passed parity")
	}
}

func TestPreambleStructure(t *testing.T) {
	p := Preamble()
	if len(p) != PreambleLength {
		t.Fatalf("preamble length %d, want %d", len(p), PreambleLength)
	}
	// Short training symbol repeats with period 16 over the first 160
	// samples.
	for i := 16; i < 160; i++ {
		if cmplx.Abs(p[i]-p[i-16]) > 1e-12 {
			t.Fatalf("STS not periodic at sample %d", i)
		}
	}
	// The two LTS periods are identical.
	for i := 0; i < 64; i++ {
		if cmplx.Abs(p[192+i]-p[256+i]) > 1e-12 {
			t.Fatalf("LTS repetitions differ at sample %d", i)
		}
	}
}

func TestFrameWaveformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, mode := range []Mode{{QAM16, Rate12}, {QAM64, Rate23}, {QAM256, Rate56}} {
		psdu := bits.RandomBytes(rng, 300)
		tx := Transmitter{Mode: mode}
		frame, err := tx.Frame(psdu)
		if err != nil {
			t.Fatal(err)
		}
		wave, err := frame.Waveform()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Receiver{}.Receive(wave)
		if err != nil {
			t.Fatalf("%v: receive: %v", mode, err)
		}
		if res.Mode != mode {
			t.Fatalf("%v: decoded mode %v", mode, res.Mode)
		}
		if len(res.PSDU) != len(psdu) {
			t.Fatalf("%v: decoded %d bytes, want %d", mode, len(res.PSDU), len(psdu))
		}
		for i := range psdu {
			if res.PSDU[i] != psdu[i] {
				t.Fatalf("%v: PSDU differs at byte %d", mode, i)
			}
		}
	}
}

func TestOFDMSymbolRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := make([]complex128, NumDataSubcarriers)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	sym, err := AssembleSymbol(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sym) != SymbolLength {
		t.Fatalf("symbol length %d, want %d", len(sym), SymbolLength)
	}
	// Cyclic prefix equals the tail of the symbol.
	for i := 0; i < CPLength; i++ {
		if cmplx.Abs(sym[i]-sym[NumSubcarriers+i]) > 1e-12 {
			t.Fatalf("cyclic prefix mismatch at %d", i)
		}
	}
	freq, err := FrequencyDomain(sym)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExtractSubcarriers(freq)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if cmplx.Abs(got[i]-data[i]) > 1e-9 {
			t.Fatalf("subcarrier %d: got %v want %v", i, got[i], data[i])
		}
	}
}

func TestPPDUDuration(t *testing.T) {
	// QAM-16 r=1/2 (24 Mbit/s equivalent... 96 bits/symbol): 1500-byte PSDU
	// needs ceil((16+12000+6)/96) = 126 symbols -> 20us + 126*4us = 524us.
	d := PPDUDuration(Mode{QAM16, Rate12}, 1500)
	if math.Abs(d-524e-6) > 1e-9 {
		t.Fatalf("PPDUDuration = %g, want 524us", d)
	}
}
