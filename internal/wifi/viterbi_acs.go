package wifi

import (
	"fmt"
	"math"
	"sync/atomic"

	"sledzig/internal/bits"
)

// Add-compare-select kernels behind the Viterbi dispatch seam.
//
// The forward pass is the decoder's whole cost, so it is isolated behind a
// tiny kernel interface with two interchangeable implementations:
//
//   - "word" (default): branch-free. The hard pass packs the 64 path
//     metrics into eight uint64 words of eight byte lanes each and runs
//     the whole add-compare-select step with SIMD-within-a-register
//     arithmetic — no data-dependent branches, eight states per
//     instruction stream. The soft pass keeps float64 metrics but replaces
//     the compare branch with a sign-bit select, and exploits the
//     generator structure (both 802.11 polynomials tap delays 0 and 6) to
//     load one branch metric per predecessor pair instead of four.
//   - "reference": the straightforward paired-butterfly loops. Kept as the
//     oracle the word kernels are tested byte-identical against, and as a
//     fallback selectable at runtime.
//
// Byte-lane representation of the hard kernel. Metrics are unsigned bytes
// ≤ hardLaneInf, so every SWAR compare precondition (lane values < 128)
// holds throughout:
//
//   - unreached states carry hardLaneInf (125). A lane can grow by at most
//     2 per step, and results are clamped back to 125, so lanes never
//     exceed 127 and additions never carry across lanes.
//   - every state is reachable from every state within K-1 = 6 steps of
//     cost ≤ 2 each, so once t ≥ 6 all lanes are finite and the metric
//     spread is ≤ 12. Subtracting the running minimum every
//     hardNormEvery = 32 steps therefore bounds finite lanes by
//     12 + 2*32 = 76 < 125: the clamp never binds a finite lane and byte
//     metrics stay exactly (reference metric − common constant), which
//     preserves every compare and tie-break of the reference kernel.
//   - decisions can differ from the reference only on states whose both
//     candidates are unreached ("infinite"), and traceback provably never
//     visits such a state: the traced path starts at a finite-metric state
//     and every stored decision on it chose a finite-metric predecessor.
//
// The decoded output is therefore byte-identical to the reference kernel
// for any input (viterbi_acs_test.go checks this across every code rate ×
// modulation combination, hard and soft).

// viterbiACS is one add-compare-select implementation: each kernel runs
// the full forward pass, filling s.decisions and returning the final
// path-metric array for the best-state scan.
type viterbiACS struct {
	name string
	hard func(s *viterbiScratch, coded []bits.Bit, erased []bool, steps int) *[viterbiStates]int32
	soft func(s *viterbiScratch, llrs []float64, steps int) *[viterbiStates]float64
}

var (
	wordKernel      = &viterbiACS{name: "word", hard: wordHardACS, soft: wordSoftACS}
	referenceKernel = &viterbiACS{name: "reference", hard: refHardACS, soft: refSoftACS}

	// acsKernel is the selected kernel; nil selects the default (word).
	acsKernel atomic.Pointer[viterbiACS]
)

// currentACS returns the kernel every decode dispatches through.
func currentACS() *viterbiACS {
	if k := acsKernel.Load(); k != nil {
		return k
	}
	return wordKernel
}

// SetViterbiKernel selects the add-compare-select implementation by name
// ("word" or "reference"). The default is "word"; "reference" restores the
// scalar loops the word kernel is verified byte-identical against. Safe
// for concurrent use; in-flight decodes finish on the kernel they started
// with.
func SetViterbiKernel(name string) error {
	switch name {
	case "word":
		acsKernel.Store(wordKernel)
	case "reference":
		acsKernel.Store(referenceKernel)
	default:
		return fmt.Errorf("wifi: unknown Viterbi kernel %q (want \"word\" or \"reference\")", name)
	}
	return nil
}

// ViterbiKernel reports the name of the selected kernel.
func ViterbiKernel() string { return currentACS().name }

// SWAR constants: per-lane LSB/MSB masks, the decision-gather multiplier,
// and the byte-lane "infinity".
const (
	swarLSB       uint64 = 0x0101010101010101
	swarMSB       uint64 = 0x8080808080808080
	swarGatherMul uint64 = 0x0102040810204080
	hardLaneInf          = 125
	hardNormEvery        = 32

	swarInfLanes    = swarLSB * hardLaneInf  // hardLaneInf in every lane
	swarClampBiased = swarInfLanes | swarMSB // (hardLaneInf | 0x80) per lane
)

// swarDup4 duplicates each byte of the low 32 bits into a byte pair:
// lanes b0,b1,b2,b3 become b0,b0,b1,b1,b2,b2,b3,b3. This is the
// predecessor-metric expansion: destination states 2p and 2p+1 share
// predecessor p, so four predecessor lanes feed eight destination lanes.
func swarDup4(x uint64) uint64 {
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	return x | x<<8
}

// swarGE returns 0xFF in every lane where a ≥ b and 0x00 elsewhere.
// Precondition: all lanes of a and b are ≤ 127.
func swarGE(a, b uint64) uint64 {
	ge := ((a | swarMSB) - b) & swarMSB
	return (ge << 1) - (ge >> 7)
}

// swarMin returns the lane-wise minimum. Precondition: lanes ≤ 127.
func swarMin(a, b uint64) uint64 {
	full := swarGE(a, b)
	return (b & full) | (a &^ full)
}

// swarSelectMin resolves one add-compare-select word: it returns the
// lane-wise min(c0, c1) and a word with bit 0 of each lane set where
// c1 < c0 (the survivor decision, matching the reference kernel's strict
// compare: ties keep the low predecessor). Precondition: lanes ≤ 127.
func swarSelectMin(c0, c1 uint64) (min, dec uint64) {
	full := swarGE(c1, c0) // 0xFF where c1 ≥ c0 → keep c0
	return (c0 & full) | (c1 &^ full), ^full & swarLSB
}

// swarClampInf clamps every lane to hardLaneInf. Precondition: lanes ≤ 127.
func swarClampInf(c uint64) uint64 {
	ge := (swarClampBiased - c) & swarMSB // lane MSB set iff hardLaneInf ≥ c
	full := (ge << 1) - (ge >> 7)
	return (c & full) | (swarInfLanes &^ full)
}

// swarGatherDec compresses the per-lane decision bits (bit 0 of each lane)
// into the low eight bits, lane i → bit i. The multiply routes lane i's
// bit to position 56+i with no two products colliding (8i+7j+7 = 56+k has
// the unique solution j = 7-i, k = i within lane range), so no carries
// reach the gathered byte.
func swarGatherDec(dec uint64) uint64 {
	return dec * swarGatherMul >> 56
}

// wordHardACS is the branch-free hard-decision forward pass: eight byte
// lanes per word, eight words for the 64 states, compare/select/clamp done
// with mask arithmetic. Fills s.decisions and returns the final metrics
// widened to int32 (byte lanes are reference metrics minus a common
// constant, so the best-state scan is unchanged).
func wordHardACS(s *viterbiScratch, coded []bits.Bit, erased []bool, steps int) *[viterbiStates]int32 {
	tr := viterbiTrellis()
	cur, nxt := &s.w0, &s.w1
	cur[0] = swarInfLanes &^ 0xFF // state 0 starts at 0, the rest unreached
	for w := 1; w < viterbiStates/8; w++ {
		cur[w] = swarInfLanes
	}
	for t := 0; t < steps; t++ {
		combo := int(coded[2*t]&1) | int(coded[2*t+1]&1)<<1 | 3<<2
		if erased != nil {
			if erased[2*t] {
				combo &^= 1 << 2
			}
			if erased[2*t+1] {
				combo &^= 1 << 3
			}
		}
		bm0, bm1 := &tr.hardBM0[combo], &tr.hardBM1[combo]
		var word uint64
		for w := 0; w < viterbiStates/8; w++ {
			// Destination word w draws its eight predecessors from four
			// lanes of word w>>1 (low predecessors) and word w>>1 | 4
			// (high predecessors), low or high half by w's parity.
			half := uint(w&1) * 32
			p0 := swarDup4(cur[w>>1] >> half & 0xFFFFFFFF)
			p1 := swarDup4(cur[w>>1|4] >> half & 0xFFFFFFFF)
			m, dec := swarSelectMin(p0+bm0[w], p1+bm1[w])
			nxt[w] = swarClampInf(m)
			word |= swarGatherDec(dec) << (8 * uint(w))
		}
		s.decisions[t] = word
		cur, nxt = nxt, cur
		if t&(hardNormEvery-1) == hardNormEvery-1 {
			// All lanes are finite by now; fold out the minimum and
			// subtract it everywhere (vacated fold lanes are filled with
			// 0x7F > any metric so they never win).
			m := cur[0]
			for w := 1; w < viterbiStates/8; w++ {
				m = swarMin(m, cur[w])
			}
			m = swarMin(m, m>>32|0x7F7F7F7F00000000)
			m = swarMin(m, m>>16|0x7F7F000000000000)
			m = swarMin(m, m>>8|0x7F00000000000000)
			sub := (m & 0xFF) * swarLSB
			for w := 0; w < viterbiStates/8; w++ {
				cur[w] -= sub
			}
		}
	}
	for st := 0; st < viterbiStates; st++ {
		s.h0[st] = int32(cur[st>>3] >> (8 * uint(st&7)) & 0xFF)
	}
	return &s.h0
}

// wordSoftACS is the branch-free soft forward pass. Both 802.11 generators
// tap delays 0 and 6, so flipping either the input bit (odd destination)
// or the predecessor's oldest bit (high predecessor) flips both coded
// outputs — the four branch metrics of one predecessor pair are ±b of a
// single table load. The compare is a sign-bit extraction and the select a
// mask blend, so the loop carries no data-dependent branches.
func wordSoftACS(s *viterbiScratch, llrs []float64, steps int) *[viterbiStates]float64 {
	tr := viterbiTrellis()
	metric, next := &s.m0, &s.m1
	inf := math.Inf(1)
	for i := range metric {
		metric[i] = inf
	}
	metric[0] = 0

	var bmv [4]float64
	for t := 0; t < steps; t++ {
		l0, l1 := llrs[2*t], llrs[2*t+1]
		bmv[0] = -l0 - l1
		bmv[1] = -l0 + l1
		bmv[2] = l0 - l1
		bmv[3] = l0 + l1
		var word uint64
		for p := 0; p < viterbiStates/2; p++ {
			m0, m1 := metric[p], metric[p+32]
			ns := 2 * p
			b := bmv[tr.out0[ns]&3]
			c0, c1 := m0+b, m1-b
			sel := math.Float64bits(c1-c0) >> 63 // 1 iff c1 < c0; ties keep c0
			u0, u1 := math.Float64bits(c0), math.Float64bits(c1)
			next[ns] = math.Float64frombits(u0 ^ (u0^u1)&-sel)
			word |= sel << uint(ns)
			c0, c1 = m0-b, m1+b
			sel = math.Float64bits(c1-c0) >> 63
			u0, u1 = math.Float64bits(c0), math.Float64bits(c1)
			next[ns+1] = math.Float64frombits(u0 ^ (u0^u1)&-sel)
			word |= sel << uint(ns+1)
		}
		s.decisions[t] = word
		metric, next = next, metric
	}
	return metric
}

// refHardACS is the scalar paired-butterfly hard pass — the oracle the
// word kernel is tested byte-identical against.
func refHardACS(s *viterbiScratch, coded []bits.Bit, erased []bool, steps int) *[viterbiStates]int32 {
	tr := viterbiTrellis()
	metric, next := &s.h0, &s.h1
	for i := range metric {
		metric[i] = viterbiInfI32
	}
	metric[0] = 0

	var bmv [4]int32
	for t := 0; t < steps; t++ {
		// Hamming branch metrics against the received pair, with erased
		// positions contributing nothing; four values indexed by y0<<1|y1.
		r0, r1 := int32(coded[2*t]&1), int32(coded[2*t+1]&1)
		e0, e1 := int32(1), int32(1)
		if erased != nil {
			if erased[2*t] {
				e0 = 0
			}
			if erased[2*t+1] {
				e1 = 0
			}
		}
		bmv[0] = e0*r0 + e1*r1         // outputs (0,0)
		bmv[1] = e0*r0 + e1*(1-r1)     // outputs (0,1)
		bmv[2] = e0*(1-r0) + e1*r1     // outputs (1,0)
		bmv[3] = e0*(1-r0) + e1*(1-r1) // outputs (1,1)
		var word uint64
		for p := 0; p < viterbiStates/2; p++ {
			m0, m1 := metric[p], metric[p+32]
			ns := 2 * p
			c0 := m0 + bmv[tr.out0[ns]&3]
			c1 := m1 + bmv[tr.out1[ns]&3]
			if c1 < c0 {
				next[ns] = c1
				word |= 1 << uint(ns)
			} else {
				next[ns] = c0
			}
			ns++
			c0 = m0 + bmv[tr.out0[ns]&3]
			c1 = m1 + bmv[tr.out1[ns]&3]
			if c1 < c0 {
				next[ns] = c1
				word |= 1 << uint(ns)
			} else {
				next[ns] = c0
			}
		}
		s.decisions[t] = word
		metric, next = next, metric
	}
	return metric
}

// refSoftACS is the scalar paired-butterfly soft pass (see refHardACS).
func refSoftACS(s *viterbiScratch, llrs []float64, steps int) *[viterbiStates]float64 {
	tr := viterbiTrellis()
	metric, next := &s.m0, &s.m1
	inf := math.Inf(1)
	for i := range metric {
		metric[i] = inf
	}
	metric[0] = 0

	var bmv [4]float64
	for t := 0; t < steps; t++ {
		// Cost of asserting bit value b against LLR l (l = log P(0)/P(1)):
		// add l when the branch outputs 1, -l when it outputs 0; constant
		// offsets cancel. Only four branch metrics exist per step, indexed
		// by the output pair y0<<1|y1.
		l0, l1 := llrs[2*t], llrs[2*t+1]
		bmv[0] = -l0 - l1
		bmv[1] = -l0 + l1
		bmv[2] = l0 - l1
		bmv[3] = l0 + l1
		var word uint64
		// Destination states 2p and 2p+1 share the predecessor pair
		// (p, p+32); walking pairs halves the path-metric loads.
		for p := 0; p < viterbiStates/2; p++ {
			m0, m1 := metric[p], metric[p+32]
			ns := 2 * p
			c0 := m0 + bmv[tr.out0[ns]&3]
			c1 := m1 + bmv[tr.out1[ns]&3]
			if c1 < c0 {
				next[ns] = c1
				word |= 1 << uint(ns)
			} else {
				next[ns] = c0
			}
			ns++
			c0 = m0 + bmv[tr.out0[ns]&3]
			c1 = m1 + bmv[tr.out1[ns]&3]
			if c1 < c0 {
				next[ns] = c1
				word |= 1 << uint(ns)
			} else {
				next[ns] = c0
			}
		}
		s.decisions[t] = word
		metric, next = next, metric
	}
	return metric
}
