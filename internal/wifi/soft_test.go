package wifi

import (
	"math"
	"math/rand"
	"testing"

	"sledzig/internal/bits"
)

func TestSoftDemapSignsMatchHardDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, conv := range []Convention{ConventionIEEE, ConventionPaper} {
		for _, m := range []Modulation{QPSK, QAM16, QAM64, QAM256} {
			for trial := 0; trial < 50; trial++ {
				p := complex(rng.NormFloat64(), rng.NormFloat64())
				hard, err := conv.DemapSymbolC(m, p)
				if err != nil {
					t.Fatal(err)
				}
				soft, err := conv.SoftDemapSymbol(m, p)
				if err != nil {
					t.Fatal(err)
				}
				for b := range hard {
					wantNeg := hard[b] == 1 // bit 1 => LLR <= 0
					if soft[b] != 0 && (soft[b] < 0) != wantNeg {
						t.Fatalf("%v %v: bit %d hard=%d but LLR=%g (point %v)",
							conv, m, b, hard[b], soft[b], p)
					}
				}
			}
		}
	}
}

func TestSoftDemapCleanPointsAreConfident(t *testing.T) {
	for _, m := range []Modulation{QAM16, QAM64} {
		n := m.BitsPerSubcarrier()
		for v := 0; v < 1<<n; v++ {
			label := bits.FromUint(uint64(v), n)
			p, err := ConventionIEEE.MapSymbolC(m, label)
			if err != nil {
				t.Fatal(err)
			}
			llrs, err := ConventionIEEE.SoftDemapSymbol(m, p)
			if err != nil {
				t.Fatal(err)
			}
			for b, l := range llrs {
				if label[b] == 0 && l <= 0 {
					t.Fatalf("%v point %d bit %d: LLR %g should be positive", m, v, b, l)
				}
				if label[b] == 1 && l >= 0 {
					t.Fatalf("%v point %d bit %d: LLR %g should be negative", m, v, b, l)
				}
			}
		}
	}
}

func TestViterbiSoftMatchesHardOnCleanData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := bits.Random(rng, 300)
	data = append(data, make([]bits.Bit, 6)...)
	coded := ConvolutionalEncode(data)
	llrs := make([]float64, len(coded))
	for i, b := range coded {
		if b == 0 {
			llrs[i] = 4
		} else {
			llrs[i] = -4
		}
	}
	decoded, err := ViterbiDecodeSoft(llrs, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(decoded, data) {
		t.Fatal("soft Viterbi failed on clean LLRs")
	}
}

func TestViterbiSoftExploitsConfidence(t *testing.T) {
	// Flip several bits but mark them low-confidence: soft decoding must
	// recover where the flips cluster closer than hard decisions allow.
	rng := rand.New(rand.NewSource(3))
	data := bits.Random(rng, 200)
	data = append(data, make([]bits.Bit, 6)...)
	coded := ConvolutionalEncode(data)
	llrs := make([]float64, len(coded))
	for i, b := range coded {
		if b == 0 {
			llrs[i] = 4
		} else {
			llrs[i] = -4
		}
	}
	// Dense cluster of weak wrong bits.
	for _, pos := range []int{100, 102, 104, 106} {
		llrs[pos] = -llrs[pos] * 0.1
	}
	decoded, err := ViterbiDecodeSoft(llrs, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(decoded, data) {
		t.Fatal("soft Viterbi failed to exploit confidence")
	}
}

func TestSoftReceiverRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, conv := range []Convention{ConventionIEEE, ConventionPaper} {
		mode := Mode{Modulation: QAM64, CodeRate: Rate34}
		psdu := bits.RandomBytes(rng, 256)
		frame, err := Transmitter{Mode: mode, Convention: conv}.Frame(psdu)
		if err != nil {
			t.Fatal(err)
		}
		wave, err := frame.Waveform()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Receiver{Convention: conv, Soft: true}.Receive(wave)
		if err != nil {
			t.Fatalf("%v: %v", conv, err)
		}
		for i := range psdu {
			if res.PSDU[i] != psdu[i] {
				t.Fatalf("%v: PSDU mismatch at %d", conv, i)
			}
		}
	}
}

// TestSoftBeatsHardUnderNoise measures frame success at an SNR where the
// hard-decision chain struggles: the soft chain must do at least as well,
// and strictly better in aggregate.
func TestSoftBeatsHardUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mode := Mode{Modulation: QAM64, CodeRate: Rate34}
	const trials = 30
	snrDB := 18.0 // between soft and hard thresholds for this mode
	hardOK, softOK := 0, 0
	for trial := 0; trial < trials; trial++ {
		psdu := bits.RandomBytes(rng, 100)
		frame, err := Transmitter{Mode: mode}.Frame(psdu)
		if err != nil {
			t.Fatal(err)
		}
		wave, err := frame.Waveform()
		if err != nil {
			t.Fatal(err)
		}
		var sig float64
		for _, v := range wave {
			sig += real(v)*real(v) + imag(v)*imag(v)
		}
		sig /= float64(len(wave))
		sigma := math.Sqrt(sig / math.Pow(10, snrDB/10) * 64 / 52 / 2)
		noisy := make([]complex128, len(wave))
		for i, v := range wave {
			noisy[i] = v + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
		check := func(soft bool) bool {
			res, err := Receiver{Soft: soft}.Receive(noisy)
			if err != nil || len(res.PSDU) != len(psdu) {
				return false
			}
			for i := range psdu {
				if res.PSDU[i] != psdu[i] {
					return false
				}
			}
			return true
		}
		if check(false) {
			hardOK++
		}
		if check(true) {
			softOK++
		}
	}
	if softOK < hardOK {
		t.Fatalf("soft (%d/%d) worse than hard (%d/%d)", softOK, trials, hardOK, trials)
	}
	if softOK == 0 {
		t.Fatalf("soft chain decoded nothing at %g dB", snrDB)
	}
}

func TestDepunctureFloats(t *testing.T) {
	in := []float64{1, 2, 3, 4, 5, 6}
	out, err := DepunctureFloats(in, Rate34)
	if err != nil {
		t.Fatal(err)
	}
	// The stream ends at the last kept position; trailing punctured slots
	// of an unfinished period are not emitted (real streams always end on
	// a keep boundary).
	want := []float64{1, 2, 3, 0, 0, 4, 5, 6}
	if len(out) != len(want) {
		t.Fatalf("length %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], want[i])
		}
	}
}
