package wifi

import (
	"fmt"
	"math"

	"sledzig/internal/bits"
)

// 802.11 QAM constellations are square Gray mappings: each axis of a
// 2^(2m)-QAM carries m bits, with the bit pattern for ascending amplitude
// level i (levels -(2^m-1), ..., -1, 1, ..., 2^m-1) equal to the binary-
// reflected Gray code of i read MSB first. BPSK maps its single bit to the
// I axis only.

// grayCode returns the binary-reflected Gray code of i.
func grayCode(i int) int { return i ^ (i >> 1) }

// axisBits returns the number of bits per axis for the modulation (0 for
// BPSK's Q axis handled separately).
func axisBits(m Modulation) int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 1
	case QAM16:
		return 2
	case QAM64:
		return 3
	case QAM256:
		return 4
	default:
		return 0
	}
}

// NormFactor returns K_mod, the amplitude normalization making the average
// constellation power 1 (1, 1/sqrt2, 1/sqrt10, 1/sqrt42, 1/sqrt170).
func NormFactor(m Modulation) float64 {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 1 / math.Sqrt2
	case QAM16:
		return 1 / math.Sqrt(10)
	case QAM64:
		return 1 / math.Sqrt(42)
	case QAM256:
		return 1 / math.Sqrt(170)
	default:
		return 0
	}
}

// axisLevel maps n Gray-coded bits (MSB first) to the unnormalized
// amplitude level.
func axisLevel(b []bits.Bit) int {
	g := int(bits.ToUint(b))
	// Invert Gray code to recover the level index.
	i := g
	for shift := 1; shift < len(b); shift <<= 1 {
		i ^= i >> shift
	}
	return 2*i - ((1 << len(b)) - 1)
}

// axisBitsFor returns the Gray-coded bits (MSB first) for an unnormalized
// level on an axis with n bits.
func axisBitsFor(level, n int) []bits.Bit {
	i := (level + (1 << n) - 1) / 2
	return bits.FromUint(uint64(grayCode(i)), n)
}

// MapSymbol maps one subcarrier's worth of bits (N_BPSC of them) to a
// normalized constellation point.
func MapSymbol(m Modulation, b []bits.Bit) (complex128, error) {
	if len(b) != m.BitsPerSubcarrier() {
		return 0, fmt.Errorf("wifi: %v expects %d bits per point, got %d", m, m.BitsPerSubcarrier(), len(b))
	}
	k := NormFactor(m)
	if m == BPSK {
		return complex(float64(axisLevel(b))*k, 0), nil
	}
	n := axisBits(m)
	i := axisLevel(b[:n])
	q := axisLevel(b[n:])
	return complex(float64(i)*k, float64(q)*k), nil
}

// DemapSymbol performs a hard decision on a received point, returning the
// nearest constellation point's bits.
func DemapSymbol(m Modulation, p complex128) ([]bits.Bit, error) {
	if !m.Valid() {
		return nil, fmt.Errorf("wifi: invalid modulation %d", int(m))
	}
	k := NormFactor(m)
	if m == BPSK {
		if real(p) >= 0 {
			return []bits.Bit{1}, nil
		}
		return []bits.Bit{0}, nil
	}
	n := axisBits(m)
	maxLevel := (1 << n) - 1
	quant := func(v float64) int {
		// Round to the nearest odd level in [-maxLevel, maxLevel].
		l := int(math.Round((v/k-1)/2))*2 + 1
		if l > maxLevel {
			l = maxLevel
		}
		if l < -maxLevel {
			l = -maxLevel
		}
		return l
	}
	out := make([]bits.Bit, 0, 2*n)
	out = append(out, axisBitsFor(quant(real(p)), n)...)
	out = append(out, axisBitsFor(quant(imag(p)), n)...)
	return out, nil
}

// MapAll maps a whole interleaved bit stream (length a multiple of N_BPSC)
// to constellation points.
func MapAll(m Modulation, in []bits.Bit) ([]complex128, error) {
	bpsc := m.BitsPerSubcarrier()
	if len(in)%bpsc != 0 {
		return nil, fmt.Errorf("wifi: bit stream length %d not a multiple of N_BPSC %d", len(in), bpsc)
	}
	out := make([]complex128, 0, len(in)/bpsc)
	for off := 0; off < len(in); off += bpsc {
		p, err := MapSymbol(m, in[off:off+bpsc])
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// DemapAll hard-demaps a sequence of received points.
func DemapAll(m Modulation, pts []complex128) ([]bits.Bit, error) {
	out := make([]bits.Bit, 0, len(pts)*m.BitsPerSubcarrier())
	for _, p := range pts {
		b, err := DemapSymbol(m, p)
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out, nil
}

// AveragePower returns the mean unnormalized constellation power
// (10 for QAM-16, 42 for QAM-64, 170 for QAM-256).
func AveragePower(m Modulation) float64 {
	n := axisBits(m)
	var axis float64
	for i := 0; i < 1<<n; i++ {
		l := float64(2*i - ((1 << n) - 1))
		axis += l * l
	}
	axis /= float64(int(1) << n)
	if m == BPSK {
		return axis
	}
	return 2 * axis
}

// LowestPower returns the unnormalized power of the four lowest points
// (+/-1 +/-1j), i.e. 2, for QAM modulations.
func LowestPower(m Modulation) float64 {
	if m == BPSK {
		return 1
	}
	return 2
}

// PowerReductionDB returns the theoretical per-subcarrier power decrease
// P_avg / P_low in dB obtained by pinning points to the lowest ring:
// 7.0 dB (QAM-16), 13.2 dB (QAM-64), 19.3 dB (QAM-256).
func PowerReductionDB(m Modulation) float64 {
	return 10 * math.Log10(AveragePower(m)/LowestPower(m))
}

// SignificantOffsets returns, for one constellation point of m, the bit
// offsets within the N_BPSC-bit group that must be pinned to force the
// point onto the lowest-power ring (|I| = |Q| = 1), together with the
// required values. The first bit of each axis (the sign bit) stays free,
// which is what lets SledZig keep carrying payload on pinned subcarriers.
//
// For the Gray mapping, levels -1 and +1 share the axis suffix
// "1 0 ... 0"; so for QAM-16 one bit per axis is pinned to 1, for QAM-64
// two bits per axis are pinned to (1, 0), for QAM-256 three bits per axis
// to (1, 0, 0) — matching the paper's Table I counts of 2/4/6.
func SignificantOffsets(m Modulation) (offsets []int, values []bits.Bit) {
	n := axisBits(m)
	if m == BPSK || n < 2 {
		return nil, nil // every point already has |I| = 1
	}
	// Verify the suffix claim against the Gray mapping rather than assuming
	// it: compute the common suffix of levels -1 and +1.
	low := axisBitsFor(-1, n)
	high := axisBitsFor(1, n)
	for off := 1; off < n; off++ {
		if low[off] != high[off] {
			panic("wifi: Gray mapping violated inner-ring suffix invariant")
		}
	}
	for axis := 0; axis < 2; axis++ {
		for off := 1; off < n; off++ {
			offsets = append(offsets, axis*n+off)
			values = append(values, low[off])
		}
	}
	return offsets, values
}
