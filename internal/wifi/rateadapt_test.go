package wifi

import "testing"

func TestAdaptRatePicksFastestFeasible(t *testing.T) {
	cases := []struct {
		sinr   float64
		margin float64
		want   Mode
		ok     bool
	}{
		{40, 3, Mode{QAM256, Rate56}, true},
		{31, 0, Mode{QAM256, Rate56}, true},
		{30, 0, Mode{QAM256, Rate34}, true},
		{24, 3, Mode{QAM64, Rate34}, true},
		{12, 0, Mode{QAM16, Rate12}, true},
		{10, 0, Mode{}, false},
	}
	for _, tc := range cases {
		got, ok := AdaptRate(tc.sinr, tc.margin)
		if ok != tc.ok || got != tc.want {
			t.Errorf("AdaptRate(%g, %g) = (%v, %v), want (%v, %v)",
				tc.sinr, tc.margin, got, ok, tc.want, tc.ok)
		}
	}
}

func TestAdaptRateMonotone(t *testing.T) {
	prev := 0.0
	for sinr := 8.0; sinr <= 40; sinr++ {
		m, ok := AdaptRate(sinr, 0)
		if !ok {
			continue
		}
		if r := m.DataRate(); r < prev {
			t.Fatalf("rate decreased at %g dB", sinr)
		} else {
			prev = r
		}
	}
}

func TestMinSNRForMode(t *testing.T) {
	if v, err := MinSNRForMode(Mode{QAM64, Rate56}); err != nil || v != 25 {
		t.Fatalf("got %g, %v", v, err)
	}
	if _, err := MinSNRForMode(Mode{BPSK, Rate12}); err == nil {
		t.Fatal("non-table mode accepted")
	}
}

func TestAdaptRateNegativeMargin(t *testing.T) {
	// A negative margin (aggressive policy) admits faster modes earlier.
	aggressive, ok1 := AdaptRate(29, -2)
	conservative, ok2 := AdaptRate(29, 2)
	if !ok1 || !ok2 {
		t.Fatal("both policies should find a mode at 29 dB")
	}
	if aggressive.DataRate() <= conservative.DataRate() {
		t.Fatalf("aggressive %v not faster than conservative %v", aggressive, conservative)
	}
}
