package wifi

import (
	"fmt"
	"math"

	"sledzig/internal/dsp"
)

// The 802.11 20 MHz transmit spectral mask (17.3.9.3): 0 dBr inside
// +/-9 MHz, then -20 dBr at 11 MHz, -28 dBr at 20 MHz, -40 dBr beyond
// 30 MHz, linearly interpolated in between. SledZig only moves energy
// between constellation points, so its frames must stay mask-compliant —
// checked constructively in tests.

// maskLimitDBr returns the mask limit at |f| Hz relative to the carrier.
func maskLimitDBr(f float64) float64 {
	a := math.Abs(f)
	switch {
	case a <= 9e6:
		return 0
	case a <= 11e6:
		return -20 * (a - 9e6) / 2e6
	case a <= 20e6:
		return -20 - 8*(a-11e6)/9e6
	case a <= 30e6:
		return -28 - 12*(a-20e6)/10e6
	default:
		return -40
	}
}

// MaskViolation describes one offending PSD bin.
type MaskViolation struct {
	FreqHz   float64
	LevelDBr float64
	LimitDBr float64
}

// CheckSpectralMask measures a waveform's PSD against the 20 MHz transmit
// mask and returns any violations. sampleRate must cover the mask region
// of interest (the 20 MS/s baseband checks the in-band +/-10 MHz part;
// a 40 MS/s capture extends to the first stop-band).
//
// The reference (0 dBr) level is the mean PSD over the central +/-8 MHz.
// A small tolerance absorbs periodogram variance on short frames.
func CheckSpectralMask(wave []complex128, sampleRate, toleranceDB float64) ([]MaskViolation, error) {
	if len(wave) < 1024 {
		return nil, fmt.Errorf("wifi: waveform of %d samples too short for a mask check", len(wave))
	}
	const nBins = 512
	raw, err := dsp.Periodogram(wave, nBins)
	if err != nil {
		return nil, err
	}
	// Smooth with a moving average (~200 kHz at 20 MS/s), the equivalent
	// of a spectrum analyzer's resolution bandwidth; single periodogram
	// bins of QAM data fluctuate by several dB.
	const half = 2
	psd := make([]float64, nBins)
	for i := range psd {
		for k := -half; k <= half; k++ {
			psd[i] += raw[(i+k+nBins)%nBins]
		}
		psd[i] /= 2*half + 1
	}
	freq := func(i int) float64 {
		f := float64(i) * sampleRate / nBins
		if i >= nBins/2 {
			f -= sampleRate
		}
		return f
	}
	// Reference level over the central band.
	var ref float64
	var n int
	for i := 0; i < nBins; i++ {
		if math.Abs(freq(i)) <= 8e6 {
			ref += psd[i]
			n++
		}
	}
	if n == 0 || ref == 0 {
		return nil, fmt.Errorf("wifi: no in-band energy to reference the mask against")
	}
	ref /= float64(n)

	var out []MaskViolation
	for i := 0; i < nBins; i++ {
		f := freq(i)
		level := dsp.DB(psd[i] / ref)
		limit := maskLimitDBr(f)
		if level > limit+toleranceDB {
			out = append(out, MaskViolation{FreqHz: f, LevelDBr: level, LimitDBr: limit})
		}
	}
	return out, nil
}

// bandPowerForTest is a thin indirection kept next to the mask logic so
// the package tests can measure shoulders without importing dsp twice.
func bandPowerForTest(w []complex128, lo, hi float64) (float64, error) {
	return dsp.BandPower(w, SampleRate, lo, hi)
}
