package wifi

import (
	"fmt"

	"sledzig/internal/bits"
)

// The 802.11 block interleaver operates on one OFDM symbol of N_CBPS coded
// bits with two permutations (17.3.5.7). The first ensures adjacent coded
// bits land on nonadjacent subcarriers; the second alternates adjacent bits
// between more- and less-significant constellation positions.

// InterleaveIndex maps a coded-bit index k (0-based, within one OFDM
// symbol) to its post-interleaving position for the given modulation.
func InterleaveIndex(m Modulation, k int) int {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	s := m.BitsPerSubcarrier() / 2
	if s < 1 {
		s = 1
	}
	i := (nCBPS/16)*(k%16) + k/16
	j := s*(i/s) + (i+nCBPS-(16*i)/nCBPS)%s
	return j
}

// DeinterleaveIndex maps a post-interleaving position j back to the coded-
// bit index that produced it — the inverse of InterleaveIndex.
func DeinterleaveIndex(m Modulation, j int) int {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	s := m.BitsPerSubcarrier() / 2
	if s < 1 {
		s = 1
	}
	i := s*(j/s) + (j+(16*j)/nCBPS)%s
	k := 16*i - (nCBPS-1)*((16*i)/nCBPS)
	return k
}

// Interleave permutes one OFDM symbol's worth of coded bits. The input
// length must equal N_CBPS for the modulation.
func Interleave(m Modulation, in []bits.Bit) ([]bits.Bit, error) {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	if len(in) != nCBPS {
		return nil, fmt.Errorf("wifi: interleave input length %d != N_CBPS %d for %v", len(in), nCBPS, m)
	}
	out := make([]bits.Bit, nCBPS)
	for k, b := range in {
		out[InterleaveIndex(m, k)] = b
	}
	return out, nil
}

// Deinterleave inverts Interleave.
func Deinterleave(m Modulation, in []bits.Bit) ([]bits.Bit, error) {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	if len(in) != nCBPS {
		return nil, fmt.Errorf("wifi: deinterleave input length %d != N_CBPS %d for %v", len(in), nCBPS, m)
	}
	out := make([]bits.Bit, nCBPS)
	for j, b := range in {
		out[DeinterleaveIndex(m, j)] = b
	}
	return out, nil
}

// InterleaveAll applies the per-symbol interleaver across a multi-symbol
// coded stream whose length must be a multiple of N_CBPS.
func InterleaveAll(m Modulation, in []bits.Bit) ([]bits.Bit, error) {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	if len(in)%nCBPS != 0 {
		return nil, fmt.Errorf("wifi: coded stream length %d not a multiple of N_CBPS %d", len(in), nCBPS)
	}
	out := make([]bits.Bit, 0, len(in))
	for off := 0; off < len(in); off += nCBPS {
		sym, err := Interleave(m, in[off:off+nCBPS])
		if err != nil {
			return nil, err
		}
		out = append(out, sym...)
	}
	return out, nil
}

// DeinterleaveAll inverts InterleaveAll.
func DeinterleaveAll(m Modulation, in []bits.Bit) ([]bits.Bit, error) {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	if len(in)%nCBPS != 0 {
		return nil, fmt.Errorf("wifi: coded stream length %d not a multiple of N_CBPS %d", len(in), nCBPS)
	}
	out := make([]bits.Bit, 0, len(in))
	for off := 0; off < len(in); off += nCBPS {
		sym, err := Deinterleave(m, in[off:off+nCBPS])
		if err != nil {
			return nil, err
		}
		out = append(out, sym...)
	}
	return out, nil
}
