package wifi

import (
	"fmt"
	"math"

	"sledzig/internal/bits"
)

// Convention selects between two self-consistent bit-to-constellation
// pipelines:
//
//   - ConventionIEEE follows 802.11 to the letter: the standard's
//     interleaver permutation direction and its axis-split Gray labeling
//     (first half of each bit group on I, second half on Q).
//   - ConventionPaper reproduces the SledZig authors' USRP implementation,
//     reverse-engineered from the paper's Table II: the interleaver
//     permutations applied in the inverse direction, and LTE-style QAM
//     labeling (I/Q bits interleaved, sign bits first, amplitude bits
//     after), which puts the significant bits at group offsets {2,3,...}.
//
// Both conventions are valid transceiver designs; SledZig works
// identically under either. Table II of the paper is reproduced exactly
// under ConventionPaper.
type Convention int

// The two supported conventions.
const (
	ConventionIEEE Convention = iota
	ConventionPaper
)

// String names the convention.
func (c Convention) String() string {
	switch c {
	case ConventionIEEE:
		return "IEEE"
	case ConventionPaper:
		return "Paper"
	default:
		return fmt.Sprintf("Convention(%d)", int(c))
	}
}

// InterleaveIndexC maps a coded-bit index to its post-interleaving
// position under the convention.
func (c Convention) InterleaveIndexC(m Modulation, k int) int {
	if c == ConventionPaper {
		return DeinterleaveIndex(m, k)
	}
	return InterleaveIndex(m, k)
}

// DeinterleaveIndexC inverts InterleaveIndexC.
func (c Convention) DeinterleaveIndexC(m Modulation, j int) int {
	if c == ConventionPaper {
		return InterleaveIndex(m, j)
	}
	return DeinterleaveIndex(m, j)
}

// InterleaveC permutes one OFDM symbol of coded bits under the convention.
func (c Convention) InterleaveC(m Modulation, in []bits.Bit) ([]bits.Bit, error) {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	if len(in) != nCBPS {
		return nil, fmt.Errorf("wifi: interleave input length %d != N_CBPS %d for %v", len(in), nCBPS, m)
	}
	out := make([]bits.Bit, nCBPS)
	for k, b := range in {
		out[c.InterleaveIndexC(m, k)] = b
	}
	return out, nil
}

// DeinterleaveC inverts InterleaveC.
func (c Convention) DeinterleaveC(m Modulation, in []bits.Bit) ([]bits.Bit, error) {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	if len(in) != nCBPS {
		return nil, fmt.Errorf("wifi: deinterleave input length %d != N_CBPS %d for %v", len(in), nCBPS, m)
	}
	out := make([]bits.Bit, nCBPS)
	for j, b := range in {
		out[c.DeinterleaveIndexC(m, j)] = b
	}
	return out, nil
}

// lteAmplitude maps amplitude bits (after the sign bit) to the positive
// level via the LTE recursion P_k = 2^k - (1-2 a_1) P_{k-1}, P_0 = 1.
func lteAmplitude(amp []bits.Bit) int {
	if len(amp) == 0 {
		return 1
	}
	sign := 1 - 2*int(amp[0]&1)
	return 1<<len(amp) - sign*lteAmplitude(amp[1:])
}

// lteAmplitudeBits inverts lteAmplitude for a positive odd level.
func lteAmplitudeBits(level, n int) []bits.Bit {
	out := make([]bits.Bit, 0, n)
	for k := n; k >= 1; k-- {
		half := 1 << k
		if level > half {
			out = append(out, 1)
			level -= half
		} else {
			out = append(out, 0)
			level = half - level
		}
	}
	return out
}

// MapSymbolC maps one subcarrier's bit group to a normalized point under
// the convention.
func (c Convention) MapSymbolC(m Modulation, b []bits.Bit) (complex128, error) {
	if c == ConventionIEEE || m == BPSK {
		return MapSymbol(m, b)
	}
	if len(b) != m.BitsPerSubcarrier() {
		return 0, fmt.Errorf("wifi: %v expects %d bits per point, got %d", m, m.BitsPerSubcarrier(), len(b))
	}
	// LTE-style: even-offset bits belong to I, odd-offset bits to Q; bit 0
	// and 1 are the signs.
	n := axisBits(m)
	iBits := make([]bits.Bit, 0, n)
	qBits := make([]bits.Bit, 0, n)
	for off, bit := range b {
		if off%2 == 0 {
			iBits = append(iBits, bit&1)
		} else {
			qBits = append(qBits, bit&1)
		}
	}
	k := NormFactor(m)
	i := float64(1-2*int(iBits[0])) * float64(lteAmplitude(iBits[1:]))
	q := float64(1-2*int(qBits[0])) * float64(lteAmplitude(qBits[1:]))
	return complex(i*k, q*k), nil
}

// DemapSymbolC hard-demaps a received point under the convention.
func (c Convention) DemapSymbolC(m Modulation, p complex128) ([]bits.Bit, error) {
	if c == ConventionIEEE || m == BPSK {
		return DemapSymbol(m, p)
	}
	if !m.Valid() {
		return nil, fmt.Errorf("wifi: invalid modulation %d", int(m))
	}
	n := axisBits(m)
	kf := NormFactor(m)
	maxLevel := (1 << n) - 1
	quant := func(v float64) int {
		l := int(math.Round((v/kf-1)/2))*2 + 1
		if l > maxLevel {
			l = maxLevel
		}
		if l < -maxLevel {
			l = -maxLevel
		}
		return l
	}
	axis := func(v float64) []bits.Bit {
		l := quant(v)
		out := make([]bits.Bit, 0, n)
		if l < 0 {
			out = append(out, 1)
			l = -l
		} else {
			out = append(out, 0)
		}
		return append(out, lteAmplitudeBits(l, n-1)...)
	}
	iBits := axis(real(p))
	qBits := axis(imag(p))
	out := make([]bits.Bit, 2*n)
	for k := 0; k < n; k++ {
		out[2*k] = iBits[k]
		out[2*k+1] = qBits[k]
	}
	return out, nil
}

// MapAllC maps a whole interleaved bit stream under the convention.
func (c Convention) MapAllC(m Modulation, in []bits.Bit) ([]complex128, error) {
	bpsc := m.BitsPerSubcarrier()
	if len(in)%bpsc != 0 {
		return nil, fmt.Errorf("wifi: bit stream length %d not a multiple of N_BPSC %d", len(in), bpsc)
	}
	out := make([]complex128, len(in)/bpsc)
	if err := c.MapAllCInto(m, in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MapAllCInto is MapAllC writing into dst (len == len(in)/N_BPSC): the
// allocation-free variant for pooled transmit paths.
func (c Convention) MapAllCInto(m Modulation, in []bits.Bit, dst []complex128) error {
	bpsc := m.BitsPerSubcarrier()
	if len(in)%bpsc != 0 {
		return fmt.Errorf("wifi: bit stream length %d not a multiple of N_BPSC %d", len(in), bpsc)
	}
	if len(dst) != len(in)/bpsc {
		return fmt.Errorf("wifi: map destination length %d != %d points", len(dst), len(in)/bpsc)
	}
	for i := range dst {
		p, err := c.MapSymbolC(m, in[i*bpsc:(i+1)*bpsc])
		if err != nil {
			return err
		}
		dst[i] = p
	}
	return nil
}

// DemapAllC hard-demaps a point sequence under the convention.
func (c Convention) DemapAllC(m Modulation, pts []complex128) ([]bits.Bit, error) {
	out := make([]bits.Bit, 0, len(pts)*m.BitsPerSubcarrier())
	for _, p := range pts {
		b, err := c.DemapSymbolC(m, p)
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out, nil
}

// SignificantOffsetsC returns the bit offsets within one constellation
// point's group that pin it to the lowest-power ring, with the required
// values, under the convention.
func (c Convention) SignificantOffsetsC(m Modulation) (offsets []int, values []bits.Bit) {
	if c == ConventionIEEE {
		return SignificantOffsets(m)
	}
	n := axisBits(m)
	if m == BPSK || n < 2 {
		return nil, nil
	}
	// LTE labeling: amplitude bits live at offsets 2..2n-1; the required
	// values for level 1 come from lteAmplitudeBits.
	amp := lteAmplitudeBits(1, n-1)
	for k := 1; k < n; k++ {
		offsets = append(offsets, 2*k)
		values = append(values, amp[k-1])
		offsets = append(offsets, 2*k+1)
		values = append(values, amp[k-1])
	}
	// Keep offsets sorted for deterministic derived tables.
	for i := 1; i < len(offsets); i++ {
		for j := i; j > 0 && offsets[j] < offsets[j-1]; j-- {
			offsets[j], offsets[j-1] = offsets[j-1], offsets[j]
			values[j], values[j-1] = values[j-1], values[j]
		}
	}
	return offsets, values
}

// InterleaveAllC applies the per-symbol interleaver across a multi-symbol
// stream under the convention.
func (c Convention) InterleaveAllC(m Modulation, in []bits.Bit) ([]bits.Bit, error) {
	out := make([]bits.Bit, len(in))
	if err := c.InterleaveAllCInto(m, in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// InterleaveAllCInto is InterleaveAllC writing into dst (len == len(in)):
// the allocation-free variant for pooled transmit paths. dst must not
// alias in.
func (c Convention) InterleaveAllCInto(m Modulation, in, dst []bits.Bit) error {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	if len(in)%nCBPS != 0 {
		return fmt.Errorf("wifi: coded stream length %d not a multiple of N_CBPS %d", len(in), nCBPS)
	}
	if len(dst) != len(in) {
		return fmt.Errorf("wifi: interleave destination length %d != input length %d", len(dst), len(in))
	}
	for off := 0; off < len(in); off += nCBPS {
		sym := in[off : off+nCBPS]
		out := dst[off : off+nCBPS]
		for k, b := range sym {
			out[c.InterleaveIndexC(m, k)] = b
		}
	}
	return nil
}

// DeinterleaveAllC inverts InterleaveAllC.
func (c Convention) DeinterleaveAllC(m Modulation, in []bits.Bit) ([]bits.Bit, error) {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	if len(in)%nCBPS != 0 {
		return nil, fmt.Errorf("wifi: coded stream length %d not a multiple of N_CBPS %d", len(in), nCBPS)
	}
	out := make([]bits.Bit, 0, len(in))
	for off := 0; off < len(in); off += nCBPS {
		sym, err := c.DeinterleaveC(m, in[off:off+nCBPS])
		if err != nil {
			return nil, err
		}
		out = append(out, sym...)
	}
	return out, nil
}
