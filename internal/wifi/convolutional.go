package wifi

import (
	"fmt"

	"sledzig/internal/bits"
)

// Generator polynomials of the 802.11 rate-1/2 mother code (constraint
// length 7): g0 = 133 octal, g1 = 171 octal. The masks are expressed with
// the coefficient of x_{n-i} at bit position i, so that pushing the newest
// input bit into bit 0 of a shift register lets the coded bits be computed
// as GF(2) dot products.
const (
	ConstraintLength = 7
	// G0Mask has taps at delays {0, 2, 3, 5, 6}.
	G0Mask uint32 = 0x6D
	// G1Mask has taps at delays {0, 1, 2, 3, 6}.
	G1Mask uint32 = 0x4F
)

// EncodeStep computes the coded pair (y0, y1) for a 7-bit window
// [x_n, x_{n-1}, ..., x_{n-6}] packed with x_n at bit 0. It is the
// primitive the SledZig extra-bit solver inverts.
func EncodeStep(window uint32) (y0, y1 bits.Bit) {
	return bits.DotGF2(G0Mask, window), bits.DotGF2(G1Mask, window)
}

// ConvolutionalEncode runs the rate-1/2 mother code over in (register
// initialized to zero) and returns the 2*len(in) coded bits, ordered
// y1, y2, ... with y_{2n-1} = g0 output and y_{2n} = g1 output of step n.
func ConvolutionalEncode(in []bits.Bit) []bits.Bit {
	out := make([]bits.Bit, 0, 2*len(in))
	var reg uint32
	for _, x := range in {
		reg = ((reg << 1) | uint32(x&1)) & 0x7F
		y0, y1 := EncodeStep(reg)
		out = append(out, y0, y1)
	}
	return out
}

// punctureInfo is the cached per-rate puncturing state: the keep-mask over
// one period plus the derived bookkeeping the depuncturers need to size
// their outputs without walking the pattern bit by bit.
type punctureInfo struct {
	pattern []bool
	keeps   int // kept bits per period
	// keepPrefix[j] is how many pattern slots the first j kept bits span
	// (keepPrefix[0] = 0): the closed form of "walk the pattern until j
	// bits were kept".
	keepPrefix []int
}

// punctureTable holds one immutable entry per CodeRate; entries are read
// concurrently and must never be mutated.
var punctureTable = buildPunctureTable()

func buildPunctureTable() [Rate56 + 1]*punctureInfo {
	var tab [Rate56 + 1]*punctureInfo
	patterns := map[CodeRate][]bool{
		Rate12: {true, true},
		Rate23: {true, true, true, false},
		Rate34: {true, true, true, false, false, true},
		Rate56: {true, true, true, false, false, true, true, false, false, true},
	}
	for r, pat := range patterns {
		info := &punctureInfo{pattern: pat}
		info.keepPrefix = append(info.keepPrefix, 0)
		for i, keep := range pat {
			if keep {
				info.keeps++
				info.keepPrefix = append(info.keepPrefix, i+1)
			}
		}
		tab[r] = info
	}
	return tab
}

// punctureRate returns the cached puncturing state for r. The result is
// shared and immutable.
func punctureRate(r CodeRate) (*punctureInfo, error) {
	if r < Rate12 || r > Rate56 || punctureTable[r] == nil {
		return nil, fmt.Errorf("wifi: unsupported code rate %v", r)
	}
	return punctureTable[r], nil
}

// puncturePattern returns the keep-mask over one puncturing period of
// mother-coded bits for rate r. Rate 1/2 keeps everything. The returned
// slice is a shared cached instance; callers must not modify it.
func puncturePattern(r CodeRate) ([]bool, error) {
	info, err := punctureRate(r)
	if err != nil {
		return nil, err
	}
	return info.pattern, nil
}

// motherLen returns how many mother-stream slots a received rate-r stream
// of n bits spans: the index just past the n-th kept pattern position.
func (p *punctureInfo) motherLen(n int) int {
	if n == 0 {
		return 0
	}
	full := (n - 1) / p.keeps
	rem := (n-1)%p.keeps + 1
	return full*len(p.pattern) + p.keepPrefix[rem]
}

// Puncture removes the coded bits a rate-r puncturer drops from the
// rate-1/2 stream coded.
func Puncture(coded []bits.Bit, r CodeRate) ([]bits.Bit, error) {
	info, err := punctureRate(r)
	if err != nil {
		return nil, err
	}
	pat := info.pattern
	out := make([]bits.Bit, 0, len(coded)*r.Numerator()/r.Denominator()+2)
	for i, b := range coded {
		if pat[i%len(pat)] {
			out = append(out, b)
		}
	}
	return out, nil
}

// MotherIndices returns, for a rate-r punctured stream of length n, the
// index in the rate-1/2 mother stream of each transmitted bit. It is the
// inverse bookkeeping of Puncture and is used by the SledZig significant-
// bit derivation (a transmitted bit's encoder constraint applies at its
// mother position).
func MotherIndices(n int, r CodeRate) ([]int, error) {
	pat, err := puncturePattern(r)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, n)
	for mother := 0; len(out) < n; mother++ {
		if pat[mother%len(pat)] {
			out = append(out, mother)
		}
	}
	return out, nil
}

// Depuncture expands a received rate-r stream back to mother-code length,
// marking punctured positions as erasures. Erasures carry no branch metric
// in the Viterbi decoder. Partial trailing periods are allowed (the encoder
// may stop mid-pattern when the input length is not a multiple of the
// period), and a dangling half-step is padded with an erasure so the
// decoder always consumes whole pairs. The output length is computed from
// the pattern up front, so both slices are allocated exactly once.
func Depuncture(rx []bits.Bit, r CodeRate) (data []bits.Bit, erased []bool, err error) {
	info, err := punctureRate(r)
	if err != nil {
		return nil, nil, err
	}
	n := info.motherLen(len(rx))
	padded := n + n%2
	data = make([]bits.Bit, padded)
	erased = make([]bool, padded)
	fillDepunctured(data, erased, rx, info)
	return data, erased, nil
}

// DepunctureInto is Depuncture reusing the capacity of the provided
// slices; it returns them resized to the mother-code length (padded to
// whole decoder pairs).
func DepunctureInto(data []bits.Bit, erased []bool, rx []bits.Bit, r CodeRate) ([]bits.Bit, []bool, error) {
	info, err := punctureRate(r)
	if err != nil {
		return data, erased, err
	}
	n := info.motherLen(len(rx))
	padded := n + n%2
	data = growBits(data, padded)
	if cap(erased) >= padded {
		erased = erased[:padded]
	} else {
		erased = make([]bool, padded)
	}
	fillDepunctured(data, erased, rx, info)
	return data, erased, nil
}

func fillDepunctured(data []bits.Bit, erased []bool, rx []bits.Bit, info *punctureInfo) {
	pat := info.pattern
	j := 0
	for i := range data {
		if j < len(rx) && pat[i%len(pat)] {
			data[i] = rx[j]
			erased[i] = false
			j++
		} else {
			data[i] = 0
			erased[i] = true
		}
	}
}

// ViterbiDecode performs hard-decision maximum-likelihood decoding of the
// rate-1/2 mother code. coded holds the pairs (y_{2n-1}, y_{2n}) per input
// bit; erased marks positions to ignore (from depuncturing) and may be nil.
// The encoder is assumed to start in the zero state; when terminated is
// true the decoder also assumes six zero tail bits returned it to the zero
// state, as the 802.11 DATA field guarantees.
func ViterbiDecode(coded []bits.Bit, erased []bool, terminated bool) ([]bits.Bit, error) {
	return ViterbiDecodeInto(nil, coded, erased, terminated)
}

// EncodeAndPuncture is the full transmit-side coder: rate-1/2 encode then
// puncture to rate r.
func EncodeAndPuncture(in []bits.Bit, r CodeRate) ([]bits.Bit, error) {
	return Puncture(ConvolutionalEncode(in), r)
}

// DepunctureAndDecode is the full receive-side decoder: depuncture to the
// mother rate, then Viterbi decode.
func DepunctureAndDecode(rx []bits.Bit, r CodeRate, terminated bool) ([]bits.Bit, error) {
	mother, erased, err := Depuncture(rx, r)
	if err != nil {
		return nil, err
	}
	return ViterbiDecode(mother, erased, terminated)
}
