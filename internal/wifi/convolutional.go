package wifi

import (
	"fmt"

	"sledzig/internal/bits"
)

// Generator polynomials of the 802.11 rate-1/2 mother code (constraint
// length 7): g0 = 133 octal, g1 = 171 octal. The masks are expressed with
// the coefficient of x_{n-i} at bit position i, so that pushing the newest
// input bit into bit 0 of a shift register lets the coded bits be computed
// as GF(2) dot products.
const (
	ConstraintLength = 7
	// G0Mask has taps at delays {0, 2, 3, 5, 6}.
	G0Mask uint32 = 0x6D
	// G1Mask has taps at delays {0, 1, 2, 3, 6}.
	G1Mask uint32 = 0x4F
)

// EncodeStep computes the coded pair (y0, y1) for a 7-bit window
// [x_n, x_{n-1}, ..., x_{n-6}] packed with x_n at bit 0. It is the
// primitive the SledZig extra-bit solver inverts.
func EncodeStep(window uint32) (y0, y1 bits.Bit) {
	return bits.DotGF2(G0Mask, window), bits.DotGF2(G1Mask, window)
}

// ConvolutionalEncode runs the rate-1/2 mother code over in (register
// initialized to zero) and returns the 2*len(in) coded bits, ordered
// y1, y2, ... with y_{2n-1} = g0 output and y_{2n} = g1 output of step n.
func ConvolutionalEncode(in []bits.Bit) []bits.Bit {
	out := make([]bits.Bit, 0, 2*len(in))
	var reg uint32
	for _, x := range in {
		reg = ((reg << 1) | uint32(x&1)) & 0x7F
		y0, y1 := EncodeStep(reg)
		out = append(out, y0, y1)
	}
	return out
}

// puncturePattern returns the keep-mask over one puncturing period of
// mother-coded bits for rate r. Rate 1/2 keeps everything.
func puncturePattern(r CodeRate) ([]bool, error) {
	switch r {
	case Rate12:
		return []bool{true, true}, nil
	case Rate23:
		return []bool{true, true, true, false}, nil
	case Rate34:
		return []bool{true, true, true, false, false, true}, nil
	case Rate56:
		return []bool{true, true, true, false, false, true, true, false, false, true}, nil
	default:
		return nil, fmt.Errorf("wifi: unsupported code rate %v", r)
	}
}

// Puncture removes the coded bits a rate-r puncturer drops from the
// rate-1/2 stream coded.
func Puncture(coded []bits.Bit, r CodeRate) ([]bits.Bit, error) {
	pat, err := puncturePattern(r)
	if err != nil {
		return nil, err
	}
	out := make([]bits.Bit, 0, len(coded)*r.Numerator()/r.Denominator()+2)
	for i, b := range coded {
		if pat[i%len(pat)] {
			out = append(out, b)
		}
	}
	return out, nil
}

// MotherIndices returns, for a rate-r punctured stream of length n, the
// index in the rate-1/2 mother stream of each transmitted bit. It is the
// inverse bookkeeping of Puncture and is used by the SledZig significant-
// bit derivation (a transmitted bit's encoder constraint applies at its
// mother position).
func MotherIndices(n int, r CodeRate) ([]int, error) {
	pat, err := puncturePattern(r)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, n)
	for mother := 0; len(out) < n; mother++ {
		if pat[mother%len(pat)] {
			out = append(out, mother)
		}
	}
	return out, nil
}

// Depuncture expands a received rate-r stream back to mother-code length,
// marking punctured positions as erasures. Erasures carry no branch metric
// in the Viterbi decoder.
func Depuncture(rx []bits.Bit, r CodeRate) (data []bits.Bit, erased []bool, err error) {
	pat, err := puncturePattern(r)
	if err != nil {
		return nil, nil, err
	}
	// Walk the keep-pattern until every received bit has a mother slot;
	// partial trailing periods are allowed (the encoder may stop mid-
	// pattern when the input length is not a multiple of the period).
	j := 0
	for i := 0; j < len(rx); i++ {
		if pat[i%len(pat)] {
			j++
		}
		data = append(data, 0)
		erased = append(erased, !pat[i%len(pat)])
	}
	// Fill the placed bits.
	j = 0
	for i := range data {
		if !erased[i] {
			data[i] = rx[j]
			j++
		}
	}
	// The Viterbi decoder consumes pairs; pad a dangling half-step with an
	// erasure.
	if len(data)%2 != 0 {
		data = append(data, 0)
		erased = append(erased, true)
	}
	return data, erased, nil
}

// ViterbiDecode performs hard-decision maximum-likelihood decoding of the
// rate-1/2 mother code. coded holds the pairs (y_{2n-1}, y_{2n}) per input
// bit; erased marks positions to ignore (from depuncturing) and may be nil.
// The encoder is assumed to start in the zero state; when terminated is
// true the decoder also assumes six zero tail bits returned it to the zero
// state, as the 802.11 DATA field guarantees.
func ViterbiDecode(coded []bits.Bit, erased []bool, terminated bool) ([]bits.Bit, error) {
	if len(coded)%2 != 0 {
		return nil, fmt.Errorf("wifi: coded length %d is odd", len(coded))
	}
	if erased != nil && len(erased) != len(coded) {
		return nil, fmt.Errorf("wifi: erasure mask length %d != coded length %d", len(erased), len(coded))
	}
	steps := len(coded) / 2
	if steps == 0 {
		return nil, nil
	}

	const numStates = 64 // 2^(K-1)
	const inf = int32(1) << 30

	// Branch outputs per (state, input). The state packs the six most
	// recent input bits with the newest at bit 0.
	var outBits [numStates][2][2]bits.Bit
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			window := (uint32(s)<<1 | uint32(in)) & 0x7F
			y0, y1 := EncodeStep(window)
			outBits[s][in] = [2]bits.Bit{y0, y1}
		}
	}

	metric := make([]int32, numStates)
	next := make([]int32, numStates)
	for i := range metric {
		metric[i] = inf
	}
	metric[0] = 0

	type survivor struct {
		prev uint8
		in   uint8
	}
	surv := make([][numStates]survivor, steps)

	for t := 0; t < steps; t++ {
		for i := range next {
			next[i] = inf
		}
		r0, r1 := coded[2*t]&1, coded[2*t+1]&1
		e0, e1 := false, false
		if erased != nil {
			e0, e1 = erased[2*t], erased[2*t+1]
		}
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if m >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				var cost int32
				ob := outBits[s][in]
				if !e0 && ob[0] != r0 {
					cost++
				}
				if !e1 && ob[1] != r1 {
					cost++
				}
				ns := ((s << 1) | in) & 0x3F
				if nm := m + cost; nm < next[ns] {
					next[ns] = nm
					surv[t][ns] = survivor{prev: uint8(s), in: uint8(in)}
				}
			}
		}
		metric, next = next, metric
	}

	best := 0
	if !terminated {
		for s := 1; s < numStates; s++ {
			if metric[s] < metric[best] {
				best = s
			}
		}
	}

	decoded := make([]bits.Bit, steps)
	state := uint8(best)
	for t := steps - 1; t >= 0; t-- {
		sv := surv[t][state]
		decoded[t] = bits.Bit(sv.in)
		state = sv.prev
	}
	return decoded, nil
}

// EncodeAndPuncture is the full transmit-side coder: rate-1/2 encode then
// puncture to rate r.
func EncodeAndPuncture(in []bits.Bit, r CodeRate) ([]bits.Bit, error) {
	return Puncture(ConvolutionalEncode(in), r)
}

// DepunctureAndDecode is the full receive-side decoder: depuncture to the
// mother rate, then Viterbi decode.
func DepunctureAndDecode(rx []bits.Bit, r CodeRate, terminated bool) ([]bits.Bit, error) {
	mother, erased, err := Depuncture(rx, r)
	if err != nil {
		return nil, err
	}
	return ViterbiDecode(mother, erased, terminated)
}
