package wifi

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sledzig/internal/bits"
)

// degradeTestWaveform renders one standard PPDU.
func degradeTestWaveform(t *testing.T, mode Mode) []complex128 {
	t.Helper()
	payload := bits.RandomBytes(rand.New(rand.NewSource(9)), 300)
	frame, err := Transmitter{Mode: mode}.Frame(payload)
	if err != nil {
		t.Fatalf("Frame: %v", err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatalf("Waveform: %v", err)
	}
	return wave
}

// TestResyncRecoversLeadingGarbage prepends non-frame samples to a valid
// PPDU: plain decode must fail (the capture no longer starts at the
// preamble), the Resync rung must find the true start and recover.
func TestResyncRecoversLeadingGarbage(t *testing.T) {
	wave := degradeTestWaveform(t, Mode{QAM16, Rate12})
	rng := rand.New(rand.NewSource(4))
	lead := make([]complex128, 480)
	for i := range lead {
		lead[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-3
	}
	capture := append(lead, wave...)

	if _, err := (Receiver{}).Receive(capture); err == nil {
		t.Fatal("decode with leading garbage unexpectedly succeeded at offset 0")
	}
	res, err := (Receiver{Resync: true}).Receive(capture)
	if err != nil {
		t.Fatalf("Resync receiver failed: %v", err)
	}
	if len(res.PSDU) == 0 {
		t.Fatal("Resync receiver returned empty PSDU")
	}
}

// TestHardFallbackRecoversSoftFailure forces the soft Viterbi to fail and
// verifies the fallback rung re-decodes the frame with hard decisions.
func TestHardFallbackRecoversSoftFailure(t *testing.T) {
	orig := softViterbiInto
	softViterbiInto = func(dst []bits.Bit, llrs []float64, tailed bool) ([]bits.Bit, error) {
		return nil, fmt.Errorf("forced soft-path failure")
	}
	defer func() { softViterbiInto = orig }()

	wave := degradeTestWaveform(t, Mode{QAM64, Rate34})

	_, err := (Receiver{Soft: true}).Receive(wave)
	if !errors.Is(err, ErrDemodFailed) {
		t.Fatalf("soft receiver without fallback: got %v, want ErrDemodFailed", err)
	}
	res, err := (Receiver{Soft: true, HardFallback: true}).Receive(wave)
	if err != nil {
		t.Fatalf("fallback receiver failed: %v", err)
	}
	if len(res.PSDU) == 0 {
		t.Fatal("fallback receiver returned empty PSDU")
	}
}

// TestNonFiniteLLRsAreTypedError feeds the soft chain a waveform with a
// NaN sample mid-DATA; the error must be classifiable, never a panic or
// silent garbage.
func TestNonFiniteLLRsAreTypedError(t *testing.T) {
	wave := degradeTestWaveform(t, Mode{QAM16, Rate12})
	nan := complex(0/zero(), 0)
	for i := PreambleLength + SymbolLength; i < PreambleLength+2*SymbolLength; i++ {
		wave[i] = nan
	}
	_, err := (Receiver{Soft: true}).Receive(wave)
	if err == nil {
		t.Skip("NaN DATA symbol still decoded; nothing to classify")
	}
	if !errors.Is(err, ErrDemodFailed) {
		t.Fatalf("NaN waveform error is untyped: %v", err)
	}
}

// zero exists so the compiler cannot fold 0/0 into a constant error.
func zero() float64 { return 0 }

// TestReceiveFailuresAreTyped sweeps structured corruptions and asserts
// every failure matches the wifi sentinel taxonomy.
func TestReceiveFailuresAreTyped(t *testing.T) {
	wave := degradeTestWaveform(t, Mode{QAM16, Rate12})
	cases := map[string][]complex128{
		"empty":        nil,
		"tiny":         wave[:50],
		"preambleOnly": wave[:PreambleLength],
		"truncated":    wave[:PreambleLength+3*SymbolLength/2],
		"zeros":        make([]complex128, len(wave)),
	}
	for name, c := range cases {
		_, err := (Receiver{}).Receive(c)
		if err == nil {
			t.Fatalf("%s: expected failure", name)
		}
		if !errors.Is(err, ErrShortWaveform) && !errors.Is(err, ErrBadSignal) && !errors.Is(err, ErrDemodFailed) {
			t.Fatalf("%s: untyped receive error: %v", name, err)
		}
	}
}
