package wifi

import (
	"math"
	"sync"

	"sledzig/internal/dsp"
)

// PreambleLength is the legacy preamble duration in samples: 10 short
// training symbols (160 samples, 8 us) plus a double guard interval and two
// long training symbols (160 samples, 8 us) — 16 us total, the figure the
// paper's interference analysis (section IV-F) relies on.
const PreambleLength = 320

// stsFreq returns the frequency-domain short-training sequence S_{-26..26}
// placed into 64 bins (18.3.3, scaled by sqrt(13/6)).
func stsFreq() []complex128 {
	scale := complex(math.Sqrt(13.0/6.0), 0)
	pp := scale * complex(1, 1)
	mm := scale * complex(-1, -1)
	vals := map[int]complex128{
		-24: pp, -20: mm, -16: pp, -12: mm, -8: mm, -4: pp,
		4: mm, 8: mm, 12: pp, 16: pp, 20: pp, 24: pp,
	}
	freq := make([]complex128, NumSubcarriers)
	for k, v := range vals {
		freq[bin(k)] = v
	}
	return freq
}

// ltsSequence is L_{-26..26} (18.3.3), indexed from k = -26.
var ltsSequence = [53]int8{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1,
	-1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 0, 1, -1, -1, 1, 1,
	-1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1,
	-1, 1, 1, 1, 1,
}

// ltsFreq returns the frequency-domain long-training sequence in 64 bins.
func ltsFreq() []complex128 {
	freq := make([]complex128, NumSubcarriers)
	for i, v := range ltsSequence {
		k := i - 26
		freq[bin(k)] = complex(float64(v), 0)
	}
	return freq
}

// LTSReference returns the known LTS values on the 48 data subcarriers in
// ascending order, used for channel estimation.
func LTSReference() []complex128 {
	freq := ltsFreq()
	out := make([]complex128, 0, NumDataSubcarriers)
	for _, k := range DataSubcarriers() {
		out = append(out, freq[bin(k)])
	}
	return out
}

// The preamble is identical for every frame, so it is synthesized once and
// served from a read-only master copy afterwards.
var (
	preambleOnce   sync.Once
	preambleMaster []complex128
)

func preamble() []complex128 {
	preambleOnce.Do(func() {
		out := make([]complex128, 0, PreambleLength)

		// Short part: the IFFT of S has period 16; take 160 samples.
		short := dsp.MustIFFT(stsFreq())
		for i := 0; i < 160; i++ {
			out = append(out, short[i%NumSubcarriers])
		}

		// Long part: double-length CP then two LTS periods.
		long := dsp.MustIFFT(ltsFreq())
		out = append(out, long[NumSubcarriers-32:]...)
		out = append(out, long...)
		out = append(out, long...)
		preambleMaster = out
	})
	return preambleMaster
}

// Preamble generates the 320-sample legacy preamble: ten repetitions of the
// 16-sample short training symbol followed by a 32-sample guard interval
// and two 64-sample long training symbols. The returned slice is a fresh
// copy the caller may modify.
func Preamble() []complex128 {
	out := make([]complex128, PreambleLength)
	copy(out, preamble())
	return out
}

// AppendPreamble appends the 320-sample legacy preamble to dst without
// recomputing or copying beyond the append itself.
func AppendPreamble(dst []complex128) []complex128 {
	return append(dst, preamble()...)
}
