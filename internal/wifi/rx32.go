package wifi

import (
	"fmt"
	"math/cmplx"

	"sledzig/internal/bits"
	"sledzig/internal/dsp"
)

// Narrow (complex64) receive pipeline — the default demodulation path.
//
// The capture is rounded to complex64 once on entry; channel estimation,
// per-symbol FFTs, equalization, and demapping then run entirely on
// 8-byte samples, halving the memory bandwidth of the per-symbol hot
// loop. Two further instruction-level changes ride on the width change:
//
//   - equalization multiplies by precomputed reciprocal gains (1/h,
//     computed once per frame in float64 and rounded) instead of dividing
//     per point — complex division is by far the slowest primitive in the
//     loop, and the wide path keeps it only to preserve its historical
//     bit-exact outputs;
//   - the max-log soft demapper accumulates its distance search in
//     float32 (see demap32.go), which the LLR subtraction then widens.
//
// Precision: one float32 rounding per input sample plus ~6 butterfly
// stages and one multiply leaves the equalized constellation points
// within ~1e-5 relative of the wide pipeline — orders of magnitude below
// the decision distance of QAM-256 — and the golden tests in rx32_test.go
// bound the end-to-end EVM gap. Results (RxResult.DataPoints) are widened
// back to complex128, so downstream consumers (channel detection,
// EVM measurement) are width-agnostic.

// growC64 returns s resized to n elements, reusing capacity.
func growC64(s []complex64, n int) []complex64 {
	if cap(s) < n {
		return make([]complex64, n)
	}
	return s[:n]
}

// receiveOnceNarrow mirrors receiveOnceWide stage for stage on complex64
// samples.
func (r Receiver) receiveOnceNarrow(waveform []complex128, res *RxResult, soft bool) error {
	m := phy()
	if len(waveform) < PreambleLength+SymbolLength {
		err := fmt.Errorf("wifi: %w (%d samples) for preamble and SIGNAL", ErrShortWaveform, len(waveform))
		m.rxFail(m.rxFailShort, "short_waveform", err)
		return err
	}

	s := rxScratchPool.Get().(*rxScratch)
	defer rxScratchPool.Put(s)
	s.wave32 = dsp.Narrow(s.wave32, waveform)

	t0 := m.rxSync.Start()
	mk := r.Trace.Begin("rx.channel_estimate")
	if err := estimateChannelInto32(s, s.wave32); err != nil {
		mk.End()
		err = fmt.Errorf("wifi: %w: channel estimate: %w", ErrDemodFailed, err)
		m.rxSync.Fail(t0)
		m.rxFail(m.rxFailChanEst, "channel_estimate", err)
		return err
	}
	mk.End()
	m.rxSync.Done(t0, 0)

	// SIGNAL symbol.
	t0 = m.rxSignal.Start()
	mk = r.Trace.Begin("rx.signal")
	sigStart := PreambleLength
	if err := equalizeSymbolInto32(s.pts32, s, s.wave32[sigStart:sigStart+SymbolLength], 0); err != nil {
		mk.End()
		err = fmt.Errorf("wifi: %w: SIGNAL equalize: %w", ErrDemodFailed, err)
		m.rxSignal.Fail(t0)
		m.rxFail(m.rxFailSignal, "signal", err)
		return err
	}
	mode, length, err := decodeSignalSymbolInto32(s)
	mk.End()
	if err != nil {
		err = fmt.Errorf("wifi: SIGNAL decode: %w: %w", ErrBadSignal, err)
		m.rxSignal.Fail(t0)
		m.rxFail(m.rxFailSignal, "signal", err)
		return err
	}
	m.rxSignal.Done(t0, 0)

	nSym := NumDataSymbols(mode, length)
	need := PreambleLength + (1+nSym)*SymbolLength
	if len(s.wave32) < need {
		err := fmt.Errorf("wifi: %w: waveform has %d samples, PPDU needs %d", ErrShortWaveform, len(s.wave32), need)
		m.rxFail(m.rxFailTrunc, "truncated", err)
		return err
	}

	// DATA symbols: equalized points land in the pooled narrow scratch and
	// are widened into the result's recycled DataPoints matrix.
	if cap(res.DataPoints) < nSym {
		old := res.DataPoints
		res.DataPoints = make([][]complex128, nSym)
		copy(res.DataPoints, old[:cap(old)])
	}
	res.DataPoints = res.DataPoints[:nSym]
	nCBPS := mode.CodedBitsPerSymbol()
	if soft {
		s.rxLLRs = growF64(s.rxLLRs, nSym*nCBPS)
		s.symLLRs = growF64(s.symLLRs, nCBPS)
	} else {
		s.rxBits = growBits(s.rxBits, nSym*nCBPS)
		s.symBits = growBits(s.symBits, nCBPS)
	}
	for sym := 0; sym < nSym; sym++ {
		if cap(res.DataPoints[sym]) < NumDataSubcarriers {
			res.DataPoints[sym] = make([]complex128, NumDataSubcarriers)
		}
		pts := res.DataPoints[sym][:NumDataSubcarriers]
		res.DataPoints[sym] = pts

		start := PreambleLength + (1+sym)*SymbolLength
		t0 = m.rxEqualize.Start()
		mk = r.Trace.Begin("rx.equalize")
		if err := equalizeSymbolInto32(s.pts32, s, s.wave32[start:start+SymbolLength], sym+1); err != nil {
			mk.End()
			m.rxEqualize.Fail(t0)
			return fmt.Errorf("wifi: %w: equalize symbol %d: %w", ErrDemodFailed, sym, err)
		}
		for i, v := range s.pts32 {
			pts[i] = complex128(v)
		}
		mk.End()
		m.rxEqualize.Done(t0, 0)

		off := sym * nCBPS
		if soft {
			t0 = m.rxDemap.Start()
			mk = r.Trace.Begin("rx.demap")
			if err := r.Convention.SoftDemapAll64Into(s.symLLRs, mode.Modulation, s.pts32); err != nil {
				mk.End()
				m.rxDemap.Fail(t0)
				return fmt.Errorf("wifi: %w: soft demap: %w", ErrDemodFailed, err)
			}
			mk.End()
			m.rxDemap.Done(t0, 0)
			t0 = m.rxDeinterlv.Start()
			mk = r.Trace.Begin("rx.deinterleave")
			if err := r.Convention.DeinterleaveFloatsInto(s.rxLLRs[off:off+nCBPS], s.symLLRs, mode.Modulation); err != nil {
				mk.End()
				m.rxDeinterlv.Fail(t0)
				return fmt.Errorf("wifi: %w: deinterleave: %w", ErrDemodFailed, err)
			}
			mk.End()
			m.rxDeinterlv.Done(t0, 0)
			continue
		}
		t0 = m.rxDemap.Start()
		mk = r.Trace.Begin("rx.demap")
		if err := r.Convention.DemapAll64Into(s.symBits, mode.Modulation, s.pts32); err != nil {
			mk.End()
			m.rxDemap.Fail(t0)
			return fmt.Errorf("wifi: %w: demap: %w", ErrDemodFailed, err)
		}
		mk.End()
		m.rxDemap.Done(t0, 0)
		t0 = m.rxDeinterlv.Start()
		mk = r.Trace.Begin("rx.deinterleave")
		if err := r.Convention.DeinterleaveCInto(s.rxBits[off:off+nCBPS], s.symBits, mode.Modulation); err != nil {
			mk.End()
			m.rxDeinterlv.Fail(t0)
			return fmt.Errorf("wifi: %w: deinterleave: %w", ErrDemodFailed, err)
		}
		mk.End()
		m.rxDeinterlv.Done(t0, 0)
	}

	// Viterbi over the whole DATA field. Termination state is unknown in
	// general (pad bits keep shifting the register), so decode untailed.
	t0 = m.rxViterbi.Start()
	mk = r.Trace.Begin("rx.viterbi")
	if soft {
		err = checkFiniteLLRs(s.rxLLRs)
		if err == nil {
			s.motherLLRs, err = DepunctureFloatsInto(s.motherLLRs, s.rxLLRs, mode.CodeRate)
		}
		if err == nil {
			s.scrambled, err = softViterbiInto(s.scrambled, s.motherLLRs, false)
		}
	} else {
		s.mother, s.motherErased, err = DepunctureInto(s.mother, s.motherErased, s.rxBits, mode.CodeRate)
		if err == nil {
			s.scrambled, err = ViterbiDecodeInto(s.scrambled, s.mother, s.motherErased, false)
		}
	}
	mk.End()
	if err != nil {
		err = fmt.Errorf("wifi: %w: viterbi: %w", ErrDemodFailed, err)
		m.rxViterbi.Fail(t0)
		m.rxFail(m.rxFailDecode, "viterbi", err)
		return err
	}
	m.rxViterbi.Done(t0, len(s.scrambled)/8)

	seed := r.Seed
	if seed == 0 {
		seed = DefaultScramblerSeed
	}
	t0 = m.rxDescramble.Start()
	mk = r.Trace.Begin("rx.descramble")
	res.DataBits = growBits(res.DataBits, len(s.scrambled))
	if err := ScrambleWithSeedInto(res.DataBits, s.scrambled, seed); err != nil {
		mk.End()
		err = fmt.Errorf("wifi: %w: descramble: %w", ErrDemodFailed, err)
		m.rxDescramble.Fail(t0)
		m.rxFail(m.rxFailDecode, "descramble", err)
		return err
	}
	mk.End()
	m.rxDescramble.Done(t0, 0)

	if need := serviceBits + 8*length; len(res.DataBits) < need {
		err := fmt.Errorf("wifi: %w: %d decoded bits cannot hold a %d-octet PSDU", ErrDemodFailed, len(res.DataBits), length)
		m.rxFail(m.rxFailDecode, "psdu", err)
		return err
	}
	psduBits := res.DataBits[serviceBits : serviceBits+8*length]
	if cap(res.PSDU) < length {
		res.PSDU = make([]byte, length)
	}
	res.PSDU = res.PSDU[:length]
	if err := bits.ToBytesInto(res.PSDU, psduBits); err != nil {
		err = fmt.Errorf("wifi: %w: PSDU extract: %w", ErrDemodFailed, err)
		m.rxFail(m.rxFailDecode, "psdu", err)
		return err
	}
	res.Mode = mode
	res.PSDULength = length
	m.rxFrames.Inc()
	return nil
}

// decodeSignalSymbolInto32 BPSK-demaps the narrow SIGNAL points in s.pts32
// and hands off to the shared SIGNAL tail.
func decodeSignalSymbolInto32(s *rxScratch) (Mode, int, error) {
	s.symBits = growBits(s.symBits, NumDataSubcarriers)
	for i, p := range s.pts32 {
		if real(p) >= 0 {
			s.symBits[i] = 1
		} else {
			s.symBits[i] = 0
		}
	}
	return signalFromSymBits(s)
}

// equalizeSymbolInto32 is equalizeSymbolInto on narrow samples, with the
// per-point complex division replaced by a multiply with the reciprocal
// gains prepared by estimateChannelInto32. The 48 equalized data points
// are written into pts; s.freq32 is clobbered.
func equalizeSymbolInto32(pts []complex64, s *rxScratch, sym []complex64, symbolIndex int) error {
	if len(sym) != SymbolLength {
		return fmt.Errorf("wifi: symbol length %d != %d", len(sym), SymbolLength)
	}
	if err := dsp.FFTInto32(s.freq32, sym[CPLength:]); err != nil {
		return err
	}
	if err := extractSubcarriersInto32(pts, s.freq32); err != nil {
		return err
	}
	for i := range pts {
		pts[i] *= s.hInv32[i]
	}
	// Common phase error from the four pilots; the reciprocal pilot gains
	// make this multiplies only. The tiny 4-term sum and the unit-modulus
	// normalization run in float64 — they are per symbol, not per point.
	var cpe complex128
	pol := PilotPolarity(symbolIndex)
	for i, k := range pilotSubcarriers {
		expected := pol
		if k == 21 {
			expected = -pol
		}
		cpe += complex128(s.freq32[bin(k)]*s.hPilot32[i]) * complex(expected, 0)
	}
	if cpe != 0 {
		rot := cmplx.Conj(cpe / complex(cmplx.Abs(cpe), 0))
		rot32 := complex(float32(real(rot)), float32(imag(rot)))
		for i := range pts {
			pts[i] *= rot32
		}
	}
	return nil
}

// extractSubcarriersInto32 is ExtractSubcarriersInto on narrow bins.
func extractSubcarriersInto32(dst, freq []complex64) error {
	if len(freq) != NumSubcarriers {
		return fmt.Errorf("wifi: need %d bins, got %d", NumSubcarriers, len(freq))
	}
	if len(dst) != NumDataSubcarriers {
		return fmt.Errorf("wifi: need %d data points, got %d", NumDataSubcarriers, len(dst))
	}
	for i, b := range dataBins {
		dst[i] = freq[b]
	}
	return nil
}

// estimateChannelInto32 derives the channel estimate from the two long
// training symbols like estimateChannelInto, but stores reciprocal gains
// (1/h, and 1/h on the pilots) so equalization multiplies instead of
// divides. The 52 reciprocals are computed in float64 once per frame and
// rounded to complex64. s.freq32 and s.pts32 are clobbered.
func estimateChannelInto32(s *rxScratch, waveform []complex64) error {
	ref, ltsf := ltsCached()
	var h [NumDataSubcarriers]complex128
	var hPilot [NumPilotSubcarriers]complex128
	for rep := 0; rep < 2; rep++ {
		// The LTS repetitions are contiguous, so the 64-sample FFT window
		// can be taken directly — no cyclic prefix to strip.
		start := 160 + 32 + rep*NumSubcarriers
		if err := dsp.FFTInto32(s.freq32, waveform[start:start+NumSubcarriers]); err != nil {
			return err
		}
		if err := extractSubcarriersInto32(s.pts32, s.freq32); err != nil {
			return err
		}
		for i := range h {
			h[i] += complex128(s.pts32[i]) / ref[i]
		}
		for i, k := range pilotSubcarriers {
			hPilot[i] += complex128(s.freq32[bin(k)]) / ltsf[bin(k)]
		}
	}
	for i := range h {
		h[i] /= 2
		if h[i] == 0 {
			return fmt.Errorf("wifi: channel estimate is zero on data subcarrier %d", i)
		}
		inv := 1 / h[i]
		s.hInv32[i] = complex(float32(real(inv)), float32(imag(inv)))
	}
	for i := range hPilot {
		hPilot[i] /= 2
		if hPilot[i] == 0 {
			return fmt.Errorf("wifi: channel estimate is zero on pilot %d", i)
		}
		inv := 1 / hPilot[i]
		s.hPilot32[i] = complex(float32(real(inv)), float32(imag(inv)))
	}
	return nil
}
