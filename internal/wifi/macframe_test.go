package wifi

import (
	"math/rand"
	"testing"

	"sledzig/internal/bits"
)

func TestMACFrameRoundTrip(t *testing.T) {
	f := &MACFrame{
		Addr1:    MACAddress{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF},
		Addr2:    MACAddress{1, 2, 3, 4, 5, 6},
		Addr3:    MACAddress{6, 5, 4, 3, 2, 1},
		Sequence: 123,
		Payload:  []byte("ip packet bytes go here"),
	}
	mpdu, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMACFrame(mpdu)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr1 != f.Addr1 || got.Addr2 != f.Addr2 || got.Addr3 != f.Addr3 {
		t.Fatalf("addresses mismatch: %+v", got)
	}
	if got.Sequence != 123 || string(got.Payload) != string(f.Payload) {
		t.Fatalf("decoded %+v", got)
	}
}

func TestMACFrameFCSDetectsCorruption(t *testing.T) {
	f := &MACFrame{Sequence: 1, Payload: []byte{1, 2, 3}}
	mpdu, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	mpdu[5] ^= 0x80
	if _, err := ParseMACFrame(mpdu); err == nil {
		t.Fatal("corrupted MPDU passed FCS")
	}
}

func TestMACFrameValidation(t *testing.T) {
	if _, err := (&MACFrame{}).Marshal(); err == nil {
		t.Error("empty MSDU accepted")
	}
	if _, err := (&MACFrame{Sequence: 5000, Payload: []byte{1}}).Marshal(); err == nil {
		t.Error("sequence overflow accepted")
	}
	if _, err := (&MACFrame{Payload: make([]byte, MaxMSDU+1)}).Marshal(); err == nil {
		t.Error("oversize MSDU accepted")
	}
	if _, err := ParseMACFrame([]byte{1, 2, 3}); err == nil {
		t.Error("short MPDU accepted")
	}
}

// TestMACFrameThroughSledZig carries a real MPDU through the SledZig PHY
// pipeline end-to-end.
func TestMACFrameThroughSledZig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := &MACFrame{Sequence: 9, Payload: bits.RandomBytes(rng, 400)}
	mpdu, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	frame, err := Transmitter{Mode: Mode{QAM64, Rate34}}.Frame(mpdu)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Receiver{}.Receive(wave)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMACFrame(res.PSDU)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sequence != 9 || len(got.Payload) != 400 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestMACAddressString(t *testing.T) {
	a := MACAddress{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}
	if a.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("got %s", a.String())
	}
}
