package wifi

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Carrier-frequency-offset estimation from the legacy preamble, the
// standard two-stage scheme: a coarse estimate from the 16-sample
// periodicity of the short training symbols and a fine estimate from the
// 64-sample periodicity of the long training symbols. The coarse stage
// resolves up to +/-625 kHz, the fine stage refines within +/-156 kHz.

// EstimateCFO returns the carrier frequency offset (Hz) observed on a
// PPDU waveform that starts at sample 0.
func EstimateCFO(waveform []complex128) (float64, error) {
	if len(waveform) < PreambleLength {
		return 0, fmt.Errorf("wifi: waveform too short (%d samples) for CFO estimation", len(waveform))
	}
	// Coarse: autocorrelation at lag 16 over the STS (samples 16..144,
	// avoiding the AGC-settling start and the LTS boundary).
	coarse := autocorrPhase(waveform[16:144], 16)
	fCoarse := -coarse / (2 * math.Pi * 16 / SampleRate)

	// Derotate and refine with the LTS (lag 64 over samples 192..320).
	derot := make([]complex128, 128)
	for i := range derot {
		n := 192 + i
		phase := -2 * math.Pi * fCoarse * float64(n) / SampleRate
		derot[i] = waveform[n] * cmplx.Exp(complex(0, phase))
	}
	fine := autocorrPhase(derot, 64)
	fFine := -fine / (2 * math.Pi * 64 / SampleRate)
	return fCoarse + fFine, nil
}

// autocorrPhase returns the phase of sum x[n] * conj(x[n+lag]).
func autocorrPhase(x []complex128, lag int) float64 {
	var acc complex128
	for n := 0; n+lag < len(x); n++ {
		acc += x[n] * cmplx.Conj(x[n+lag])
	}
	return cmplx.Phase(acc)
}

// CorrectCFO returns a copy of the waveform derotated by the given offset.
func CorrectCFO(waveform []complex128, offsetHz float64) []complex128 {
	out := make([]complex128, len(waveform))
	step := -2 * math.Pi * offsetHz / SampleRate
	for i, v := range waveform {
		out[i] = v * cmplx.Exp(complex(0, step*float64(i)))
	}
	return out
}

// ReceiveWithCFO estimates and corrects the carrier offset before running
// the normal receive chain — the entry point for captures from
// free-running oscillators (802.11 tolerates +/-20 ppm, i.e. +/-48 kHz at
// 2.4 GHz).
func (r Receiver) ReceiveWithCFO(waveform []complex128) (*RxResult, float64, error) {
	cfo, err := EstimateCFO(waveform)
	if err != nil {
		return nil, 0, err
	}
	res, err := r.Receive(CorrectCFO(waveform, cfo))
	return res, cfo, err
}
