package wifi

import "errors"

// Sentinel errors of the receive chain, exposed so callers (and the public
// facade) can classify failures with errors.Is without parsing messages.
var (
	// ErrShortWaveform marks a waveform too short to hold the preamble and
	// SIGNAL symbol, or truncated before the PPDU the SIGNAL field declares.
	ErrShortWaveform = errors.New("waveform too short")
	// ErrBadSignal marks an undecodable or inconsistent SIGNAL field
	// (parity failure, reserved bit set, unknown RATE, zero length).
	ErrBadSignal = errors.New("SIGNAL field invalid")
	// ErrDemodFailed marks a failure inside the demodulation chain after a
	// plausible SIGNAL field: unusable channel estimate, equalizer or
	// demapper failure, Viterbi/descrambler length mismatch, non-finite
	// soft metrics. It is the catch-all that keeps every receive failure
	// errors.Is-classifiable.
	ErrDemodFailed = errors.New("demodulation failed")
)
