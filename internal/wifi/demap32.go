package wifi

import (
	"fmt"
	"math"
	"sync"

	"sledzig/internal/bits"
)

// Narrow (complex64) demapping for the rx32 pipeline. Hard decisions reuse
// the per-axis level tables of demap.go — quantization happens on a single
// widened float64, so narrow and wide hard demaps agree whenever the point
// is not within float32 rounding of a decision boundary. The soft demapper
// keeps a complex64 shadow of the constellation cache and runs its
// distance search in float32: the max-log minimum only needs ~7 bits of
// relative precision to pick the same nearest points, and the final LLR
// subtraction widens back to float64 for the Viterbi.

// DemapAll64Into hard-demaps a narrow point sequence into dst as a flat
// bit stream; dst must hold len(pts)*m.BitsPerSubcarrier() bits. No
// allocation.
func (c Convention) DemapAll64Into(dst []bits.Bit, m Modulation, pts []complex64) error {
	bpsc := m.BitsPerSubcarrier()
	if bpsc == 0 {
		return fmt.Errorf("wifi: invalid modulation %d", int(m))
	}
	if len(dst) != len(pts)*bpsc {
		return fmt.Errorf("wifi: demap destination length %d != %d points x %d bits", len(dst), len(pts), bpsc)
	}
	if m == BPSK {
		for i, p := range pts {
			if real(p) >= 0 {
				dst[i] = 1
			} else {
				dst[i] = 0
			}
		}
		return nil
	}
	t, err := hardDemap(c, m)
	if err != nil {
		return err
	}
	for i, p := range pts {
		out := dst[i*bpsc : (i+1)*bpsc]
		iAxis := t.axis[t.levelIndex(float64(real(p)))]
		qAxis := t.axis[t.levelIndex(float64(imag(p)))]
		if t.paper {
			for k := 0; k < t.n; k++ {
				out[2*k] = iAxis[k]
				out[2*k+1] = qAxis[k]
			}
			continue
		}
		copy(out[:t.n], iAxis)
		copy(out[t.n:], qAxis)
	}
	return nil
}

// constellationTable32 is the narrow shadow of constellationTable: the
// same points rounded to complex64 once, sharing the packed bit labels.
type constellationTable32 struct {
	points []complex64
	packed []uint16
}

var constellationCache32 sync.Map // map[struct{Convention; Modulation}]*constellationTable32

func constellation32(c Convention, m Modulation) (*constellationTable32, error) {
	type key struct {
		c Convention
		m Modulation
	}
	if v, ok := constellationCache32.Load(key{c, m}); ok {
		return v.(*constellationTable32), nil
	}
	wide, err := constellation(c, m)
	if err != nil {
		return nil, err
	}
	t := &constellationTable32{
		points: make([]complex64, len(wide.points)),
		packed: wide.packed,
	}
	for i, p := range wide.points {
		t.points[i] = complex(float32(real(p)), float32(imag(p)))
	}
	constellationCache32.Store(key{c, m}, t)
	return t, nil
}

// SoftDemapAll64Into demaps a narrow point sequence into dst as a flat
// LLR stream; dst must hold len(pts)*m.BitsPerSubcarrier() values. The
// distance search runs in float32; LLRs widen to float64. No allocation.
func (c Convention) SoftDemapAll64Into(dst []float64, m Modulation, pts []complex64) error {
	n := m.BitsPerSubcarrier()
	if n == 0 {
		return fmt.Errorf("wifi: invalid modulation %d", int(m))
	}
	if len(dst) != len(pts)*n {
		return fmt.Errorf("wifi: LLR destination length %d != %d points x %d bits", len(dst), len(pts), n)
	}
	tbl, err := constellation32(c, m)
	if err != nil {
		return err
	}
	inf := float32(math.Inf(1))
	for i, p := range pts {
		var best0, best1 [maxBitsPerSubcarrier]float32
		for b := 0; b < n; b++ {
			best0[b] = inf
			best1[b] = inf
		}
		pr, pi := real(p), imag(p)
		for j, pt := range tbl.points {
			dre := pr - real(pt)
			dim := pi - imag(pt)
			d := dre*dre + dim*dim
			lab := tbl.packed[j]
			for b := 0; b < n; b++ {
				if lab>>uint(b)&1 == 0 {
					if d < best0[b] {
						best0[b] = d
					}
				} else if d < best1[b] {
					best1[b] = d
				}
			}
		}
		llr := dst[i*n : (i+1)*n]
		for b := 0; b < n; b++ {
			llr[b] = float64(best1[b]) - float64(best0[b])
		}
	}
	return nil
}
