package wifi

import (
	"math"
	"math/rand"
	"testing"

	"sledzig/internal/bits"
)

// applyCFO mirrors channel.ApplyCFO locally (the channel package imports
// nothing from wifi, and these tests exercise the receiver side).
func applyCFO(wave []complex128, offsetHz float64) []complex128 {
	return CorrectCFO(wave, -offsetHz)
}

func TestEstimateCFOAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	frame, err := Transmitter{Mode: Mode{QAM16, Rate12}}.Frame(bits.RandomBytes(rng, 100))
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfo := range []float64{-48e3, -10e3, 5e3, 20e3, 48e3, 200e3} {
		impaired := applyCFO(wave, cfo)
		got, err := EstimateCFO(impaired)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-cfo) > 500 {
			t.Errorf("CFO %.0f Hz estimated as %.0f Hz", cfo, got)
		}
	}
}

func TestReceiveFailsUnderCFOWithoutCorrection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	psdu := bits.RandomBytes(rng, 200)
	frame, err := Transmitter{Mode: Mode{QAM64, Rate23}}.Frame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	impaired := applyCFO(wave, 30e3) // ~12 ppm at 2.4 GHz
	if res, err := (Receiver{}).Receive(impaired); err == nil {
		same := len(res.PSDU) == len(psdu)
		for i := range psdu {
			if !same || res.PSDU[i] != psdu[i] {
				same = false
				break
			}
		}
		if same {
			t.Skip("receiver survived 30 kHz CFO uncorrected; correction untestable at this offset")
		}
	}
	// With estimation + correction the frame decodes.
	res, cfo, err := (Receiver{}).ReceiveWithCFO(impaired)
	if err != nil {
		t.Fatalf("ReceiveWithCFO: %v", err)
	}
	if math.Abs(cfo-30e3) > 500 {
		t.Fatalf("estimated CFO %.0f Hz", cfo)
	}
	for i := range psdu {
		if res.PSDU[i] != psdu[i] {
			t.Fatalf("PSDU mismatch at %d after CFO correction", i)
		}
	}
}

func TestReceiverEqualizesMultipath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	psdu := bits.RandomBytes(rng, 300)
	frame, err := Transmitter{Mode: Mode{QAM64, Rate34}}.Frame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	// Two-ray channel: echo 8 dB down, 6 samples late (within the 16-
	// sample cyclic prefix).
	echo := math.Pow(10, -8.0/20)
	impaired := make([]complex128, len(wave))
	for i, v := range wave {
		impaired[i] += v
		if i+6 < len(impaired) {
			impaired[i+6] += v * complex(echo*0.7, echo*0.71)
		}
	}
	res, err := (Receiver{}).Receive(impaired)
	if err != nil {
		t.Fatalf("receive under multipath: %v", err)
	}
	for i := range psdu {
		if res.PSDU[i] != psdu[i] {
			t.Fatalf("PSDU mismatch at %d under multipath", i)
		}
	}
}

func TestReceiverSoftUnderMultipathAndCFO(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	psdu := bits.RandomBytes(rng, 150)
	frame, err := Transmitter{Mode: Mode{QAM16, Rate12}}.Frame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	echo := math.Pow(10, -10.0/20)
	impaired := make([]complex128, len(wave))
	for i, v := range wave {
		impaired[i] += v
		if i+4 < len(impaired) {
			impaired[i+4] += v * complex(0, echo)
		}
	}
	impaired = applyCFO(impaired, -22e3)
	res, _, err := (Receiver{Soft: true}).ReceiveWithCFO(impaired)
	if err != nil {
		t.Fatal(err)
	}
	for i := range psdu {
		if res.PSDU[i] != psdu[i] {
			t.Fatalf("PSDU mismatch at %d", i)
		}
	}
}

// TestPilotTrackingSurvivesResidualCFO: a small residual offset (below
// what the preamble estimator resolves) rotates the constellation across
// a long frame; the per-symbol pilot phase tracking must absorb it.
func TestPilotTrackingSurvivesResidualCFO(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	psdu := bits.RandomBytes(rng, 1200) // ~58 symbols at QAM-64 r=3/4
	frame, err := Transmitter{Mode: Mode{QAM64, Rate34}}.Frame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	// 400 Hz residual: ~0.6 deg/symbol, ~35 deg by the frame's end.
	impaired := applyCFO(wave, 400)
	res, err := (Receiver{}).Receive(impaired)
	if err != nil {
		t.Fatal(err)
	}
	for i := range psdu {
		if res.PSDU[i] != psdu[i] {
			t.Fatalf("PSDU mismatch at %d under 400 Hz residual CFO", i)
		}
	}
}
