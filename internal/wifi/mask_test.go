package wifi

import (
	"math"
	"math/rand"
	"testing"

	"sledzig/internal/bits"
)

func TestNormalFrameMeetsMask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	frame, err := Transmitter{Mode: Mode{QAM64, Rate23}}.Frame(bits.RandomBytes(rng, 2500))
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.DataWaveform()
	if err != nil {
		t.Fatal(err)
	}
	// The rectangular-windowed OFDM spectrum decays slowly near the band
	// edge; allow the textbook 3 dB of periodogram slack.
	violations, err := CheckSpectralMask(wave, SampleRate, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 2 {
		t.Fatalf("%d mask violations on a normal frame: %+v", len(violations), violations[:2])
	}
}

func TestMaskLimitShape(t *testing.T) {
	cases := map[float64]float64{
		0: 0, 9e6: 0, 10e6: -10, 11e6: -20, 20e6: -28, 30e6: -40, 50e6: -40,
	}
	for f, want := range cases {
		if got := maskLimitDBr(f); got != want {
			t.Errorf("mask at %.0f MHz = %g dBr, want %g", f/1e6, got, want)
		}
		if got := maskLimitDBr(-f); got != want {
			t.Errorf("mask not symmetric at %.0f MHz", f/1e6)
		}
	}
}

func TestMaskCheckValidation(t *testing.T) {
	if _, err := CheckSpectralMask(make([]complex128, 10), SampleRate, 0); err == nil {
		t.Fatal("short waveform accepted")
	}
	if _, err := CheckSpectralMask(make([]complex128, 4096), SampleRate, 0); err == nil {
		t.Fatal("zero-energy waveform accepted")
	}
}

func TestMaskDetectsOutOfBandSpur(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	frame, err := Transmitter{Mode: Mode{QAM16, Rate12}}.Frame(bits.RandomBytes(rng, 400))
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.DataWaveform()
	if err != nil {
		t.Fatal(err)
	}
	// Upsample to 40 MS/s and inject a strong spur at +15 MHz, where the
	// mask allows at most about -24 dBr.
	up := make([]complex128, 2*len(wave))
	for i, v := range wave {
		up[2*i] = v
		up[2*i+1] = v
	}
	for i := range up {
		phase := 2 * 3.141592653589793 * 15e6 * float64(i) / 40e6
		up[i] += complex(0.02*cos(phase), 0.02*sin(phase))
	}
	violations, err := CheckSpectralMask(up, 40e6, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range violations {
		if v.FreqHz > 13e6 && v.FreqHz < 17e6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("spur not flagged; violations: %+v", violations)
	}
}

func cos(x float64) float64 { return math.Cos(x) }
func sin(x float64) float64 { return math.Sin(x) }

// TestEdgeWindowReducesLeakage: raised-cosine symbol transitions lower
// the out-of-band shoulders without breaking decodability.
func TestEdgeWindowReducesLeakage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	psdu := bits.RandomBytes(rng, 1500)
	frame, err := Transmitter{Mode: Mode{QAM64, Rate23}}.Frame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.DataWaveform()
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := ApplyEdgeWindow(wave, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Compare shoulder power at 9.0-9.8 MHz (inside the 20 MS/s capture).
	shoulder := func(w []complex128) float64 {
		p, err := dspBandPower(w, 9.0e6, 9.8e6)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if !(shoulder(windowed) < shoulder(wave)) {
		t.Fatalf("windowing did not reduce the shoulder (%.3g vs %.3g)",
			shoulder(windowed), shoulder(wave))
	}
	if _, err := ApplyEdgeWindow(wave, 0); err == nil {
		t.Fatal("zero ramp accepted")
	}
	if _, err := ApplyEdgeWindow(wave[:10], 4); err == nil {
		t.Fatal("partial symbol accepted")
	}
}

// TestEdgeWindowedFrameStillDecodes: the faded samples live in the cyclic
// prefix and symbol tail, so the receive chain is untouched... except the
// tail fade clips the FFT window's last samples; verify decodability at a
// conservative ramp.
func TestEdgeWindowedFrameStillDecodes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	psdu := bits.RandomBytes(rng, 300)
	frame, err := Transmitter{Mode: Mode{QAM16, Rate12}}.Frame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	// Window only the DATA region (preamble must stay intact for channel
	// estimation); keep the preamble + SIGNAL prefix as-is.
	prefix := PreambleLength + SymbolLength
	data, err := ApplyEdgeWindow(wave[prefix:], 2)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([]complex128(nil), wave[:prefix]...), data...)
	res, err := (Receiver{Soft: true}).Receive(full)
	if err != nil {
		t.Fatal(err)
	}
	for i := range psdu {
		if res.PSDU[i] != psdu[i] {
			t.Fatalf("PSDU mismatch at %d with edge windowing", i)
		}
	}
}

func dspBandPower(w []complex128, lo, hi float64) (float64, error) {
	return bandPowerForTest(w, lo, hi)
}
