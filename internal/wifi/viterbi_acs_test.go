package wifi

import (
	"fmt"
	"math/rand"
	"testing"

	"sledzig/internal/bits"
)

// scalar oracles for the SWAR helpers.

func lanes(x uint64) [8]uint8 {
	var l [8]uint8
	for i := range l {
		l[i] = uint8(x >> (8 * uint(i)))
	}
	return l
}

func fromLanes(l [8]uint8) uint64 {
	var x uint64
	for i, b := range l {
		x |= uint64(b) << (8 * uint(i))
	}
	return x
}

func randLanes(rng *rand.Rand, max int) uint64 {
	var l [8]uint8
	for i := range l {
		l[i] = uint8(rng.Intn(max + 1))
	}
	return fromLanes(l)
}

func TestSwarDup4(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 1000; trial++ {
		x := rng.Uint64() & 0xFFFFFFFF
		got := lanes(swarDup4(x))
		for i := 0; i < 8; i++ {
			want := uint8(x >> (8 * uint(i/2)))
			if got[i] != want {
				t.Fatalf("swarDup4(%#x) lane %d = %#x, want %#x", x, i, got[i], want)
			}
		}
	}
}

func TestSwarCompareSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 2000; trial++ {
		a, b := randLanes(rng, 127), randLanes(rng, 127)
		la, lb := lanes(a), lanes(b)

		ge := lanes(swarGE(a, b))
		min := lanes(swarMin(a, b))
		sm, dec := swarSelectMin(a, b)
		lsm, ldec := lanes(sm), lanes(dec)
		cl := lanes(swarClampInf(a))
		for i := 0; i < 8; i++ {
			wantGE := uint8(0)
			if la[i] >= lb[i] {
				wantGE = 0xFF
			}
			if ge[i] != wantGE {
				t.Fatalf("swarGE lane %d: %d vs %d -> %#x, want %#x", i, la[i], lb[i], ge[i], wantGE)
			}
			wantMin := la[i]
			if lb[i] < la[i] {
				wantMin = lb[i]
			}
			if min[i] != wantMin {
				t.Fatalf("swarMin lane %d: min(%d,%d) = %d, want %d", i, la[i], lb[i], min[i], wantMin)
			}
			// swarSelectMin(c0=a, c1=b): decision 1 iff c1 < c0, ties keep c0.
			wantDec := uint8(0)
			if lb[i] < la[i] {
				wantDec = 1
			}
			if lsm[i] != wantMin || ldec[i] != wantDec {
				t.Fatalf("swarSelectMin lane %d: (%d,%d) -> (%d,%d), want (%d,%d)",
					i, la[i], lb[i], lsm[i], ldec[i], wantMin, wantDec)
			}
			wantClamp := la[i]
			if wantClamp > hardLaneInf {
				wantClamp = hardLaneInf
			}
			if cl[i] != wantClamp {
				t.Fatalf("swarClampInf lane %d: %d -> %d, want %d", i, la[i], cl[i], wantClamp)
			}
		}
	}
}

func TestSwarGatherDec(t *testing.T) {
	for pattern := 0; pattern < 256; pattern++ {
		var dec uint64
		for i := 0; i < 8; i++ {
			dec |= uint64(pattern>>uint(i)&1) << (8 * uint(i))
		}
		if got := swarGatherDec(dec); got != uint64(pattern) {
			t.Fatalf("swarGatherDec(%#x) = %#x, want %#x", dec, got, pattern)
		}
	}
}

// TestTrellisGeneratorStructure pins the property the soft word kernel
// exploits: both generator polynomials tap delays 0 and 6, so flipping the
// input bit (odd destination) or the predecessor's oldest bit (high
// predecessor) flips both coded outputs.
func TestTrellisGeneratorStructure(t *testing.T) {
	tr := viterbiTrellis()
	for ns := 0; ns < viterbiStates; ns++ {
		if tr.out1[ns] != tr.out0[ns]^3 {
			t.Fatalf("state %d: out1 = %#b, want out0^3 = %#b", ns, tr.out1[ns], tr.out0[ns]^3)
		}
	}
	for p := 0; p < viterbiStates/2; p++ {
		if tr.out0[2*p+1] != tr.out0[2*p]^3 {
			t.Fatalf("pair %d: out0[odd] = %#b, want out0[even]^3 = %#b", p, tr.out0[2*p+1], tr.out0[2*p]^3)
		}
	}
}

func TestSetViterbiKernel(t *testing.T) {
	defer func() {
		if err := SetViterbiKernel("word"); err != nil {
			t.Fatal(err)
		}
	}()
	if got := ViterbiKernel(); got != "word" {
		t.Fatalf("default kernel = %q, want word", got)
	}
	if err := SetViterbiKernel("reference"); err != nil {
		t.Fatal(err)
	}
	if got := ViterbiKernel(); got != "reference" {
		t.Fatalf("kernel after select = %q, want reference", got)
	}
	if err := SetViterbiKernel("simd-ha"); err == nil {
		t.Fatal("unknown kernel name accepted")
	}
}

// decodeBothKernels runs one decode under each kernel and requires
// bit-identical output.
func decodeBothKernels(t *testing.T, desc string, run func() []bits.Bit) {
	t.Helper()
	if err := SetViterbiKernel("reference"); err != nil {
		t.Fatal(err)
	}
	want := append([]bits.Bit(nil), run()...)
	if err := SetViterbiKernel("word"); err != nil {
		t.Fatal(err)
	}
	got := run()
	if !bits.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("%s: word kernel diverges from reference at bit %d (lengths %d vs %d)",
			desc, i, len(got), len(want))
	}
}

// TestViterbiKernelIdentityStreams drives both kernels over randomized
// punctured streams at every code rate — clean, noisy, erasure-laden, and
// tie-heavy — and requires byte-identical decodes, terminated or not.
func TestViterbiKernelIdentityStreams(t *testing.T) {
	defer func() {
		if err := SetViterbiKernel("word"); err != nil {
			t.Fatal(err)
		}
	}()
	rng := rand.New(rand.NewSource(77))
	rates := []CodeRate{Rate12, Rate23, Rate34, Rate56}
	// Lengths straddle the warm-up window (6 steps) and several
	// normalization periods (32 steps) of the word kernel.
	lengths := []int{1, 5, 6, 7, 31, 32, 33, 64, 100, 257, 1000}
	for _, rate := range rates {
		for _, n := range lengths {
			for trial := 0; trial < 4; trial++ {
				data := make([]bits.Bit, n)
				for i := range data {
					data[i] = bits.Bit(rng.Intn(2))
				}
				punctured, err := EncodeAndPuncture(data, rate)
				if err != nil {
					t.Fatal(err)
				}
				// Flip a noise-dependent share of the received bits.
				for i := range punctured {
					if rng.Float64() < 0.04*float64(trial) {
						punctured[i] ^= 1
					}
				}
				coded, erased, err := Depuncture(punctured, rate)
				if err != nil {
					t.Fatal(err)
				}
				terminated := trial%2 == 0
				desc := fmt.Sprintf("hard rate %v len %d trial %d", rate, n, trial)
				decodeBothKernels(t, desc, func() []bits.Bit {
					out, err := ViterbiDecodeInto(nil, coded, erased, terminated)
					if err != nil {
						t.Fatal(err)
					}
					return out
				})

				// Soft: LLR per mother bit, zeros on erasures. Trial 3
				// draws from {-1, 0, +1} to force metric ties.
				llrs := make([]float64, len(coded))
				for i := range llrs {
					if erased[i] {
						continue
					}
					sign := 1.0
					if coded[i] == 1 {
						sign = -1.0
					}
					if trial == 3 {
						llrs[i] = float64(rng.Intn(3) - 1)
					} else {
						llrs[i] = sign * (0.25 + rng.Float64()) * (1 - 0.3*float64(trial)*rng.Float64())
					}
				}
				desc = fmt.Sprintf("soft rate %v len %d trial %d", rate, n, trial)
				decodeBothKernels(t, desc, func() []bits.Bit {
					out, err := ViterbiDecodeSoftInto(nil, llrs, terminated)
					if err != nil {
						t.Fatal(err)
					}
					return out
				})
			}
		}
	}
}

// TestViterbiKernelIdentityModes runs the full transmit→receive pipeline
// at every code rate × modulation combination under both kernels, hard and
// soft, over a noisy channel, and requires byte-identical recovered PSDUs.
func TestViterbiKernelIdentityModes(t *testing.T) {
	defer func() {
		if err := SetViterbiKernel("word"); err != nil {
			t.Fatal(err)
		}
	}()
	rng := rand.New(rand.NewSource(78))
	for _, mod := range []Modulation{QAM16, QAM64, QAM256} {
		for _, rate := range []CodeRate{Rate12, Rate23, Rate34, Rate56} {
			mode := Mode{mod, rate}
			if _, err := rateCode(mode); err != nil {
				// Combination has no SIGNAL RATE code (not a transmittable
				// 802.11 mode); the stream-level identity test still covers
				// this code rate directly.
				continue
			}
			psdu := bits.RandomBytes(rng, 300)
			frame, err := Transmitter{Mode: mode}.Frame(psdu)
			if err != nil {
				t.Fatal(err)
			}
			wave, err := frame.Waveform()
			if err != nil {
				t.Fatal(err)
			}
			// Mild AWGN: enough to make branch decisions non-trivial while
			// every mode still decodes.
			noisy := make([]complex128, len(wave))
			for i, v := range wave {
				noisy[i] = v + complex(rng.NormFloat64(), rng.NormFloat64())*0.002
			}
			for _, soft := range []bool{false, true} {
				desc := fmt.Sprintf("%v soft=%v", mode, soft)
				decodeBothKernels(t, desc, func() []bits.Bit {
					res, err := (Receiver{Soft: soft}).Receive(noisy)
					if err != nil {
						t.Fatalf("%s: %v", desc, err)
					}
					return bits.FromBytes(res.PSDU)
				})
			}
		}
	}
}
