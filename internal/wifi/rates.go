// Package wifi implements a bit-exact IEEE 802.11 (a/g-style, 20 MHz) OFDM
// baseband PHY: scrambling, convolutional coding with puncturing, block
// interleaving, QAM mapping up to QAM-256, OFDM symbol assembly with pilots
// and cyclic prefix, preamble generation, and the corresponding receiver
// chain with a hard-decision Viterbi decoder.
//
// The package substitutes for the USRP N210 + GNU Radio 802.11 stack used
// in the SledZig paper: SledZig manipulates the bit -> constellation
// pipeline, and this package reproduces that pipeline exactly as the
// standard specifies it.
package wifi

import "fmt"

// Modulation identifies the subcarrier modulation of the DATA field.
type Modulation int

// Supported subcarrier modulations. QAM-256 is borrowed from 802.11ac
// (VHT) as the paper does; on the 48-data-subcarrier 20 MHz format it
// simply extends the bits-per-subcarrier table.
const (
	BPSK Modulation = iota + 1
	QPSK
	QAM16
	QAM64
	QAM256
)

// String returns the conventional name of the modulation.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "QAM-16"
	case QAM64:
		return "QAM-64"
	case QAM256:
		return "QAM-256"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// BitsPerSubcarrier returns N_BPSC for the modulation.
func (m Modulation) BitsPerSubcarrier() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	case QAM256:
		return 8
	default:
		return 0
	}
}

// Valid reports whether m is one of the supported modulations.
func (m Modulation) Valid() bool {
	return m >= BPSK && m <= QAM256
}

// CodeRate identifies the convolutional coding rate of the DATA field.
// All rates are derived from the rate-1/2 mother code by puncturing.
type CodeRate int

// Supported coding rates.
const (
	Rate12 CodeRate = iota + 1
	Rate23
	Rate34
	Rate56
)

// String returns the conventional name of the rate.
func (r CodeRate) String() string {
	switch r {
	case Rate12:
		return "1/2"
	case Rate23:
		return "2/3"
	case Rate34:
		return "3/4"
	case Rate56:
		return "5/6"
	default:
		return fmt.Sprintf("CodeRate(%d)", int(r))
	}
}

// Valid reports whether r is one of the supported rates.
func (r CodeRate) Valid() bool {
	return r >= Rate12 && r <= Rate56
}

// Numerator and Denominator give the rate as a fraction.
func (r CodeRate) Numerator() int {
	switch r {
	case Rate12:
		return 1
	case Rate23:
		return 2
	case Rate34:
		return 3
	case Rate56:
		return 5
	default:
		return 0
	}
}

// Denominator returns the denominator of the rate fraction.
func (r CodeRate) Denominator() int {
	switch r {
	case Rate12:
		return 2
	case Rate23:
		return 3
	case Rate34:
		return 4
	case Rate56:
		return 6
	default:
		return 0
	}
}

// OFDM numerology for the 20 MHz 802.11a/g format.
const (
	// NumSubcarriers is the IFFT size of a 20 MHz channel.
	NumSubcarriers = 64
	// NumDataSubcarriers carry coded payload bits.
	NumDataSubcarriers = 48
	// NumPilotSubcarriers carry the fixed pilot tones.
	NumPilotSubcarriers = 4
	// CPLength is the cyclic-prefix length in samples.
	CPLength = 16
	// SymbolLength is the full OFDM symbol length in samples (CP + FFT).
	SymbolLength = NumSubcarriers + CPLength
	// SampleRate is the complex baseband sample rate in Hz.
	SampleRate = 20e6
	// SubcarrierSpacing in Hz (20 MHz / 64).
	SubcarrierSpacing = SampleRate / NumSubcarriers
	// SymbolDuration is the OFDM symbol duration in seconds (4 us).
	SymbolDuration = float64(SymbolLength) / SampleRate
)

// PilotSubcarriers lists the pilot subcarrier indices (signed, DC = 0).
var pilotSubcarriers = [NumPilotSubcarriers]int{-21, -7, 7, 21}

// PilotSubcarriers returns the pilot subcarrier indices in ascending order.
func PilotSubcarriers() []int {
	out := make([]int, NumPilotSubcarriers)
	copy(out, pilotSubcarriers[:])
	return out
}

// dataSubcarriers is the precomputed ascending list of the 48 data
// subcarrier indices: -26..-1 and 1..26 with 0, +/-7 and +/-21 excluded.
var dataSubcarriers = func() [NumDataSubcarriers]int {
	var out [NumDataSubcarriers]int
	i := 0
	for k := -26; k <= 26; k++ {
		switch k {
		case 0, -21, -7, 7, 21:
			continue
		}
		out[i] = k
		i++
	}
	return out
}()

// dataBins is the FFT bin index of each data subcarrier, in the same
// order as dataSubcarriers — the hot-path form of bin(DataSubcarriers()).
var dataBins = func() [NumDataSubcarriers]int {
	var out [NumDataSubcarriers]int
	for i, k := range dataSubcarriers {
		out[i] = ((k % NumSubcarriers) + NumSubcarriers) % NumSubcarriers
	}
	return out
}()

// DataSubcarriers returns the 48 data subcarrier indices in ascending
// frequency order: -26..-1 and 1..26 with 0, +/-7 and +/-21 excluded.
func DataSubcarriers() []int {
	out := make([]int, NumDataSubcarriers)
	copy(out, dataSubcarriers[:])
	return out
}

// IsPilot reports whether signed subcarrier index k is a pilot.
func IsPilot(k int) bool {
	return k == -21 || k == -7 || k == 7 || k == 21
}

// IsNull reports whether signed subcarrier index k carries no energy
// (DC or guard band) in the 20 MHz format.
func IsNull(k int) bool {
	return k == 0 || k < -26 || k > 26
}

// Mode is a (modulation, coding rate) pair — the knobs the SledZig paper
// sweeps. Zero value is invalid; construct with the fields set.
type Mode struct {
	Modulation Modulation
	CodeRate   CodeRate
}

// String renders the mode as e.g. "QAM-64 r=3/4".
func (m Mode) String() string {
	return fmt.Sprintf("%s r=%s", m.Modulation, m.CodeRate)
}

// Validate returns an error when the pair is not a supported combination.
func (m Mode) Validate() error {
	if !m.Modulation.Valid() {
		return fmt.Errorf("wifi: invalid modulation %d", int(m.Modulation))
	}
	if !m.CodeRate.Valid() {
		return fmt.Errorf("wifi: invalid code rate %d", int(m.CodeRate))
	}
	return nil
}

// CodedBitsPerSymbol returns N_CBPS: coded bits carried by one OFDM symbol.
func (m Mode) CodedBitsPerSymbol() int {
	return NumDataSubcarriers * m.Modulation.BitsPerSubcarrier()
}

// DataBitsPerSymbol returns N_DBPS: information bits per OFDM symbol.
func (m Mode) DataBitsPerSymbol() int {
	return m.CodedBitsPerSymbol() * m.CodeRate.Numerator() / m.CodeRate.Denominator()
}

// DataRate returns the PHY information rate in bits/s.
func (m Mode) DataRate() float64 {
	return float64(m.DataBitsPerSymbol()) / SymbolDuration
}

// PaperModes lists the (modulation, rate) combinations evaluated in the
// SledZig paper's Tables III and IV, in table order.
//
// Note: the paper labels the second QAM-16 row "2/3", but its own
// bits-per-symbol figure (144) and throughput-loss figure (9.72 %) match
// rate 3/4 on the 20 MHz format (N_CBPS = 192). We therefore implement the
// row as 3/4; EXPERIMENTS.md records the discrepancy.
func PaperModes() []Mode {
	return []Mode{
		{QAM16, Rate12},
		{QAM16, Rate34},
		{QAM64, Rate23},
		{QAM64, Rate34},
		{QAM64, Rate56},
		{QAM256, Rate34},
		{QAM256, Rate56},
	}
}
