package wifi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sledzig/internal/bits"
)

func TestConventionQAMRoundTripAllPoints(t *testing.T) {
	for _, conv := range []Convention{ConventionIEEE, ConventionPaper} {
		for _, m := range []Modulation{QPSK, QAM16, QAM64, QAM256} {
			n := m.BitsPerSubcarrier()
			for v := 0; v < 1<<n; v++ {
				in := bits.FromUint(uint64(v), n)
				p, err := conv.MapSymbolC(m, in)
				if err != nil {
					t.Fatal(err)
				}
				out, err := conv.DemapSymbolC(m, p)
				if err != nil {
					t.Fatal(err)
				}
				if !bits.Equal(in, out) {
					t.Fatalf("%v %v: %s -> %v -> %s", conv, m, bits.String(in), p, bits.String(out))
				}
			}
		}
	}
}

func TestConventionConstellationsSharePoints(t *testing.T) {
	// Both labelings use the same physical constellation; only bit labels
	// differ. The multiset of points must match.
	for _, m := range []Modulation{QAM16, QAM64, QAM256} {
		n := m.BitsPerSubcarrier()
		count := map[complex128]int{}
		for v := 0; v < 1<<n; v++ {
			pI, err := ConventionIEEE.MapSymbolC(m, bits.FromUint(uint64(v), n))
			if err != nil {
				t.Fatal(err)
			}
			pP, err := ConventionPaper.MapSymbolC(m, bits.FromUint(uint64(v), n))
			if err != nil {
				t.Fatal(err)
			}
			count[pI]++
			count[pP]--
		}
		for pt, c := range count {
			if c != 0 {
				t.Fatalf("%v: point %v unbalanced (%d)", m, pt, c)
			}
		}
	}
}

func TestConventionInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		for _, conv := range []Convention{ConventionIEEE, ConventionPaper} {
			for _, m := range []Modulation{QAM16, QAM64, QAM256} {
				n := NumDataSubcarriers * m.BitsPerSubcarrier()
				data := bits.Random(lr, n)
				inter, err := conv.InterleaveC(m, data)
				if err != nil {
					return false
				}
				back, err := conv.DeinterleaveC(m, inter)
				if err != nil {
					return false
				}
				if !bits.Equal(back, data) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestConventionSignificantOffsetsPinBothLabelings(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, conv := range []Convention{ConventionIEEE, ConventionPaper} {
		for _, m := range []Modulation{QAM16, QAM64, QAM256} {
			offsets, values := conv.SignificantOffsetsC(m)
			for trial := 0; trial < 32; trial++ {
				b := bits.Random(rng, m.BitsPerSubcarrier())
				for i, off := range offsets {
					b[off] = values[i]
				}
				p, err := conv.MapSymbolC(m, b)
				if err != nil {
					t.Fatal(err)
				}
				k := NormFactor(m)
				power := (real(p)*real(p) + imag(p)*imag(p)) / (k * k)
				if power < 1.99 || power > 2.01 {
					t.Fatalf("%v %v: pinned point power %g", conv, m, power)
				}
			}
		}
	}
}
