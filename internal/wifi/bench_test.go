package wifi

import (
	"math/rand"
	"testing"

	"sledzig/internal/bits"
)

func BenchmarkScramble(b *testing.B) {
	data := bits.Random(rand.New(rand.NewSource(1)), 12000)
	b.SetBytes(12000 / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScrambleWithSeed(data, DefaultScramblerSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvolutionalEncode(b *testing.B) {
	data := bits.Random(rand.New(rand.NewSource(1)), 12000)
	b.SetBytes(12000 / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvolutionalEncode(data)
	}
}

func BenchmarkViterbiSoft(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := bits.Random(rng, 1000)
	coded := ConvolutionalEncode(data)
	llrs := make([]float64, len(coded))
	for i, bit := range coded {
		if bit == 0 {
			llrs[i] = 4
		} else {
			llrs[i] = -4
		}
	}
	b.SetBytes(1000 / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ViterbiDecodeSoft(llrs, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOFDMSymbol(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]complex128, NumDataSubcarriers)
	for i := range pts {
		pts[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AssembleSymbol(pts, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoftDemapQAM256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]complex128, NumDataSubcarriers)
	for i := range pts {
		pts[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ConventionIEEE.SoftDemapAll(QAM256, pts); err != nil {
			b.Fatal(err)
		}
	}
}
