package wifi

import (
	"fmt"
	"sync"

	"sledzig/internal/bits"
)

// DefaultScramblerSeed is the 7-bit initial scrambler state used when the
// caller does not choose one. It is the value used in the 802.11 Annex G
// example frame (1011101b).
const DefaultScramblerSeed = 0x5D

// Scrambler is the 802.11 frame-synchronous data scrambler, the LFSR with
// polynomial S(x) = x^7 + x^4 + 1. The same structure scrambles and
// descrambles: the sequence it generates is XORed onto the data bits.
type Scrambler struct {
	state uint8 // 7-bit LFSR state, bit 0 = x^1 stage
}

// NewScrambler returns a scrambler initialized with the given 7-bit seed.
// Seed 0 would generate the all-zero sequence and is rejected.
func NewScrambler(seed uint8) (*Scrambler, error) {
	if seed == 0 || seed > 0x7F {
		return nil, fmt.Errorf("wifi: scrambler seed %#x out of range [1, 0x7f]", seed)
	}
	return &Scrambler{state: seed}, nil
}

// NextBit advances the LFSR one step and returns the generated sequence bit.
func (s *Scrambler) NextBit() bits.Bit {
	// Feedback taps at x^7 and x^4: bits 6 and 3 of the state register.
	fb := ((s.state >> 6) ^ (s.state >> 3)) & 1
	s.state = ((s.state << 1) | fb) & 0x7F
	return fb
}

// Scramble XORs the scrambler sequence onto in and returns the result.
// Applying it again with a scrambler in the same initial state restores the
// original bits.
func (s *Scrambler) Scramble(in []bits.Bit) []bits.Bit {
	out := make([]bits.Bit, len(in))
	for i, b := range in {
		out[i] = (b ^ s.NextBit()) & 1
	}
	return out
}

// Sequence returns the next n scrambler sequence bits without data.
func (s *Scrambler) Sequence(n int) []bits.Bit {
	out := make([]bits.Bit, n)
	for i := range out {
		out[i] = s.NextBit()
	}
	return out
}

// ScrambleWithSeed is a convenience wrapper that scrambles in with a fresh
// scrambler seeded by seed.
func ScrambleWithSeed(in []bits.Bit, seed uint8) ([]bits.Bit, error) {
	s, err := NewScrambler(seed)
	if err != nil {
		return nil, err
	}
	return s.Scramble(in), nil
}

// The scrambler polynomial is primitive, so every nonzero seed generates
// the same maximal-length sequence with period 127 at a different phase.
// Cache one period per seed and scrambling becomes a periodic XOR instead
// of 7 LFSR steps per bit.
const scramblerPeriod = 127

var (
	scramSeqOnce [128]sync.Once
	scramSeq     [128][scramblerPeriod]bits.Bit
)

// scramblerSequence returns the cached 127-bit sequence for a valid seed.
func scramblerSequence(seed uint8) *[scramblerPeriod]bits.Bit {
	scramSeqOnce[seed].Do(func() {
		s := Scrambler{state: seed}
		for i := range scramSeq[seed] {
			scramSeq[seed][i] = s.NextBit()
		}
	})
	return &scramSeq[seed]
}

// ScrambleWithSeedInto scrambles in with a fresh scrambler seeded by seed,
// writing the result into dst (which must be len(in) elements). dst and in
// may be the same slice — the scrambler reads each element before writing
// it. This is the allocation-free variant the pooled encode and decode
// paths use.
func ScrambleWithSeedInto(dst, in []bits.Bit, seed uint8) error {
	if len(dst) != len(in) {
		return fmt.Errorf("wifi: scramble destination of %d bits does not match source of %d", len(dst), len(in))
	}
	if seed == 0 || seed > 0x7F {
		return fmt.Errorf("wifi: scrambler seed %#x out of range [1, 0x7f]", seed)
	}
	seq := scramblerSequence(seed)
	j := 0
	for i, b := range in {
		dst[i] = (b ^ seq[j]) & 1
		j++
		if j == scramblerPeriod {
			j = 0
		}
	}
	return nil
}
