package wifi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"sledzig/internal/bits"
)

// Golden frame: pins the entire transmit chain (scrambler, coder,
// interleaver, mapper) for one reference frame per convention, so any
// refactor that changes a single transmitted bit is caught. Regenerate
// with UPDATE_GOLDEN=1.
type goldenFrame struct {
	Convention string   `json:"convention"`
	Mode       string   `json:"mode"`
	PSDUHash   string   `json:"psduSeed"`
	Scrambled  string   `json:"scrambledBits"` // first 256 bits
	FirstSym   []string `json:"firstSymbolPoints"`
}

func TestGoldenFrame(t *testing.T) {
	var got []goldenFrame
	for _, conv := range []Convention{ConventionIEEE, ConventionPaper} {
		psdu := bits.RandomBytes(rand.New(rand.NewSource(99)), 120)
		frame, err := Transmitter{Mode: Mode{QAM64, Rate34}, Convention: conv}.Frame(psdu)
		if err != nil {
			t.Fatal(err)
		}
		pts, err := frame.DataPoints()
		if err != nil {
			t.Fatal(err)
		}
		g := goldenFrame{
			Convention: conv.String(),
			Mode:       frame.Mode.String(),
			PSDUHash:   "seed99/120B",
			Scrambled:  bits.String(frame.ScrambledBits[:256]),
		}
		for _, p := range pts[0][:12] {
			g.FirstSym = append(g.FirstSym, fmt.Sprintf("%+.4f%+.4fi", real(p), imag(p)))
		}
		got = append(got, g)
	}
	encoded, err := json.MarshalIndent(got, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	encoded = append(encoded, '\n')
	path := filepath.Join("testdata", "golden_frame.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, encoded, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(encoded, want) {
		t.Fatalf("transmit chain output diverges from %s", path)
	}
}
