package wifi

import (
	"fmt"
	"math"
	"sync"

	"sledzig/internal/bits"
)

// Soft-decision receive path: a max-log LLR demapper over the exact
// constellation of either convention, and a Viterbi decoder with additive
// float branch metrics. Soft decoding recovers the ~2 dB that hard
// decisions give away, bringing the measured minimum-SNR table onto the
// paper's (soft-decision) figures.

// constellationTable caches, per (convention, modulation), every
// constellation point alongside its bit label.
type constellationTable struct {
	points []complex128
	labels [][]bits.Bit
}

var constellationCache sync.Map // map[struct{Convention; Modulation}]*constellationTable

func constellation(c Convention, m Modulation) (*constellationTable, error) {
	type key struct {
		c Convention
		m Modulation
	}
	if v, ok := constellationCache.Load(key{c, m}); ok {
		return v.(*constellationTable), nil
	}
	n := m.BitsPerSubcarrier()
	if n == 0 {
		return nil, fmt.Errorf("wifi: invalid modulation %d", int(m))
	}
	t := &constellationTable{
		points: make([]complex128, 0, 1<<n),
		labels: make([][]bits.Bit, 0, 1<<n),
	}
	for v := 0; v < 1<<n; v++ {
		label := bits.FromUint(uint64(v), n)
		p, err := c.MapSymbolC(m, label)
		if err != nil {
			return nil, err
		}
		t.points = append(t.points, p)
		t.labels = append(t.labels, label)
	}
	constellationCache.Store(key{c, m}, t)
	return t, nil
}

// SoftDemapSymbol returns per-bit log-likelihood ratios (positive = bit 0
// more likely) for one received point under a max-log approximation. The
// noise variance only scales the LLRs, which the Viterbi minimization is
// invariant to, so it is fixed at 1.
func (c Convention) SoftDemapSymbol(m Modulation, p complex128) ([]float64, error) {
	tbl, err := constellation(c, m)
	if err != nil {
		return nil, err
	}
	n := m.BitsPerSubcarrier()
	best0 := make([]float64, n)
	best1 := make([]float64, n)
	for i := range best0 {
		best0[i] = math.Inf(1)
		best1[i] = math.Inf(1)
	}
	for i, pt := range tbl.points {
		dre := real(p) - real(pt)
		dim := imag(p) - imag(pt)
		d := dre*dre + dim*dim
		for b, bit := range tbl.labels[i] {
			if bit == 0 {
				if d < best0[b] {
					best0[b] = d
				}
			} else if d < best1[b] {
				best1[b] = d
			}
		}
	}
	llr := make([]float64, n)
	for b := range llr {
		llr[b] = best1[b] - best0[b]
	}
	return llr, nil
}

// SoftDemapAll demaps a point sequence to a flat LLR stream.
func (c Convention) SoftDemapAll(m Modulation, pts []complex128) ([]float64, error) {
	out := make([]float64, 0, len(pts)*m.BitsPerSubcarrier())
	for _, p := range pts {
		l, err := c.SoftDemapSymbol(m, p)
		if err != nil {
			return nil, err
		}
		out = append(out, l...)
	}
	return out, nil
}

// DeinterleaveFloats inverts the per-symbol interleaver on an LLR block.
func (c Convention) DeinterleaveFloats(m Modulation, in []float64) ([]float64, error) {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	if len(in) != nCBPS {
		return nil, fmt.Errorf("wifi: deinterleave input length %d != N_CBPS %d for %v", len(in), nCBPS, m)
	}
	out := make([]float64, nCBPS)
	for j, v := range in {
		out[c.DeinterleaveIndexC(m, j)] = v
	}
	return out, nil
}

// DepunctureFloats expands a rate-r LLR stream to mother-code length,
// inserting zero LLRs (erasures) at punctured positions.
func DepunctureFloats(rx []float64, r CodeRate) ([]float64, error) {
	pat, err := puncturePattern(r)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(rx)*2)
	j := 0
	for i := 0; j < len(rx); i++ {
		if pat[i%len(pat)] {
			out = append(out, rx[j])
			j++
		} else {
			out = append(out, 0)
		}
	}
	if len(out)%2 != 0 {
		out = append(out, 0)
	}
	return out, nil
}

// ViterbiDecodeSoft is the soft-metric counterpart of ViterbiDecode: llrs
// holds one value per mother-coded bit (positive favours 0), zeros acting
// as erasures.
func ViterbiDecodeSoft(llrs []float64, terminated bool) ([]bits.Bit, error) {
	if len(llrs)%2 != 0 {
		return nil, fmt.Errorf("wifi: LLR stream length %d is odd", len(llrs))
	}
	steps := len(llrs) / 2
	if steps == 0 {
		return nil, nil
	}
	const numStates = 64
	inf := math.Inf(1)

	var outBits [numStates][2][2]bits.Bit
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			w := (uint32(s)<<1 | uint32(in)) & 0x7F
			y0, y1 := EncodeStep(w)
			outBits[s][in] = [2]bits.Bit{y0, y1}
		}
	}

	metric := make([]float64, numStates)
	next := make([]float64, numStates)
	for i := range metric {
		metric[i] = inf
	}
	metric[0] = 0

	type survivor struct {
		prev uint8
		in   uint8
	}
	surv := make([][numStates]survivor, steps)

	for t := 0; t < steps; t++ {
		for i := range next {
			next[i] = inf
		}
		l0, l1 := llrs[2*t], llrs[2*t+1]
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if math.IsInf(m, 1) {
				continue
			}
			for in := 0; in < 2; in++ {
				cost := m
				ob := outBits[s][in]
				// Cost of asserting bit value b against LLR l
				// (l = log P(0)/P(1)): add l when the branch outputs 1,
				// -l when it outputs 0; constant offsets cancel.
				if ob[0] == 1 {
					cost += l0
				} else {
					cost -= l0
				}
				if ob[1] == 1 {
					cost += l1
				} else {
					cost -= l1
				}
				ns := ((s << 1) | in) & 0x3F
				if cost < next[ns] {
					next[ns] = cost
					surv[t][ns] = survivor{prev: uint8(s), in: uint8(in)}
				}
			}
		}
		metric, next = next, metric
	}

	best := 0
	if !terminated {
		for s := 1; s < numStates; s++ {
			if metric[s] < metric[best] {
				best = s
			}
		}
	}
	decoded := make([]bits.Bit, steps)
	state := uint8(best)
	for t := steps - 1; t >= 0; t-- {
		sv := surv[t][state]
		decoded[t] = bits.Bit(sv.in)
		state = sv.prev
	}
	return decoded, nil
}
