package wifi

import (
	"fmt"
	"math"
	"sync"

	"sledzig/internal/bits"
)

// Soft-decision receive path: a max-log LLR demapper over the exact
// constellation of either convention, and a Viterbi decoder with additive
// float branch metrics. Soft decoding recovers the ~2 dB that hard
// decisions give away, bringing the measured minimum-SNR table onto the
// paper's (soft-decision) figures.

// constellationTable caches, per (convention, modulation), every
// constellation point alongside its bit label, both as bit slices and as
// packed words (bit b of packed[i] is labels[i][b]) so the demapper's hot
// loop stays free of slice-of-slice indirection.
type constellationTable struct {
	points []complex128
	labels [][]bits.Bit
	packed []uint16
}

var constellationCache sync.Map // map[struct{Convention; Modulation}]*constellationTable

func constellation(c Convention, m Modulation) (*constellationTable, error) {
	type key struct {
		c Convention
		m Modulation
	}
	if v, ok := constellationCache.Load(key{c, m}); ok {
		return v.(*constellationTable), nil
	}
	n := m.BitsPerSubcarrier()
	if n == 0 {
		return nil, fmt.Errorf("wifi: invalid modulation %d", int(m))
	}
	t := &constellationTable{
		points: make([]complex128, 0, 1<<n),
		labels: make([][]bits.Bit, 0, 1<<n),
		packed: make([]uint16, 0, 1<<n),
	}
	for v := 0; v < 1<<n; v++ {
		label := bits.FromUint(uint64(v), n)
		p, err := c.MapSymbolC(m, label)
		if err != nil {
			return nil, err
		}
		var pack uint16
		for b, bit := range label {
			pack |= uint16(bit&1) << uint(b)
		}
		t.points = append(t.points, p)
		t.labels = append(t.labels, label)
		t.packed = append(t.packed, pack)
	}
	constellationCache.Store(key{c, m}, t)
	return t, nil
}

// maxBitsPerSubcarrier bounds the demapper's fixed-size work arrays
// (QAM-256 labels 8 bits per subcarrier).
const maxBitsPerSubcarrier = 8

// SoftDemapSymbolInto writes per-bit log-likelihood ratios (positive =
// bit 0 more likely) for one received point into llr, which must hold
// m.BitsPerSubcarrier() values. It allocates nothing.
func (c Convention) SoftDemapSymbolInto(llr []float64, m Modulation, p complex128) error {
	tbl, err := constellation(c, m)
	if err != nil {
		return err
	}
	n := m.BitsPerSubcarrier()
	if len(llr) != n {
		return fmt.Errorf("wifi: LLR destination length %d != %d bits for %v", len(llr), n, m)
	}
	var best0, best1 [maxBitsPerSubcarrier]float64
	inf := math.Inf(1)
	for b := 0; b < n; b++ {
		best0[b] = inf
		best1[b] = inf
	}
	pr, pi := real(p), imag(p)
	for i, pt := range tbl.points {
		dre := pr - real(pt)
		dim := pi - imag(pt)
		d := dre*dre + dim*dim
		lab := tbl.packed[i]
		for b := 0; b < n; b++ {
			if lab>>uint(b)&1 == 0 {
				if d < best0[b] {
					best0[b] = d
				}
			} else if d < best1[b] {
				best1[b] = d
			}
		}
	}
	for b := 0; b < n; b++ {
		llr[b] = best1[b] - best0[b]
	}
	return nil
}

// SoftDemapSymbol returns per-bit log-likelihood ratios (positive = bit 0
// more likely) for one received point under a max-log approximation. The
// noise variance only scales the LLRs, which the Viterbi minimization is
// invariant to, so it is fixed at 1.
func (c Convention) SoftDemapSymbol(m Modulation, p complex128) ([]float64, error) {
	llr := make([]float64, m.BitsPerSubcarrier())
	if err := c.SoftDemapSymbolInto(llr, m, p); err != nil {
		return nil, err
	}
	return llr, nil
}

// SoftDemapAllInto demaps a point sequence into dst as a flat LLR stream;
// dst must hold len(pts)*m.BitsPerSubcarrier() values. No allocation.
func (c Convention) SoftDemapAllInto(dst []float64, m Modulation, pts []complex128) error {
	n := m.BitsPerSubcarrier()
	if len(dst) != len(pts)*n {
		return fmt.Errorf("wifi: LLR destination length %d != %d points x %d bits", len(dst), len(pts), n)
	}
	for i, p := range pts {
		if err := c.SoftDemapSymbolInto(dst[i*n:(i+1)*n], m, p); err != nil {
			return err
		}
	}
	return nil
}

// SoftDemapAll demaps a point sequence to a flat LLR stream.
func (c Convention) SoftDemapAll(m Modulation, pts []complex128) ([]float64, error) {
	out := make([]float64, len(pts)*m.BitsPerSubcarrier())
	if err := c.SoftDemapAllInto(out, m, pts); err != nil {
		return nil, err
	}
	return out, nil
}

// DeinterleaveFloatsInto inverts the per-symbol interleaver on an LLR
// block, writing into out (length N_CBPS). in and out must not alias.
func (c Convention) DeinterleaveFloatsInto(out, in []float64, m Modulation) error {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	if len(in) != nCBPS {
		return fmt.Errorf("wifi: deinterleave input length %d != N_CBPS %d for %v", len(in), nCBPS, m)
	}
	if len(out) != nCBPS {
		return fmt.Errorf("wifi: deinterleave output length %d != N_CBPS %d for %v", len(out), nCBPS, m)
	}
	for j, v := range in {
		out[c.DeinterleaveIndexC(m, j)] = v
	}
	return nil
}

// DeinterleaveFloats inverts the per-symbol interleaver on an LLR block.
func (c Convention) DeinterleaveFloats(m Modulation, in []float64) ([]float64, error) {
	out := make([]float64, NumDataSubcarriers*m.BitsPerSubcarrier())
	if err := c.DeinterleaveFloatsInto(out, in, m); err != nil {
		return nil, err
	}
	return out, nil
}

// DepunctureFloatsInto expands a rate-r LLR stream to mother-code length
// into dst (reusing its capacity), inserting zero LLRs (erasures) at
// punctured positions and padding a dangling half-step. It returns the
// resized slice.
func DepunctureFloatsInto(dst []float64, rx []float64, r CodeRate) ([]float64, error) {
	info, err := punctureRate(r)
	if err != nil {
		return dst, err
	}
	n := info.motherLen(len(rx))
	padded := n + n%2
	if cap(dst) >= padded {
		dst = dst[:padded]
	} else {
		dst = make([]float64, padded)
	}
	pat := info.pattern
	j := 0
	for i := range dst {
		if j < len(rx) && pat[i%len(pat)] {
			dst[i] = rx[j]
			j++
		} else {
			dst[i] = 0
		}
	}
	return dst, nil
}

// DepunctureFloats expands a received rate-r LLR stream back to
// mother-code length, inserting zero LLRs (erasures) at punctured
// positions. The output length is computed from the pattern up front, so
// the slice is allocated exactly once.
func DepunctureFloats(rx []float64, r CodeRate) ([]float64, error) {
	return DepunctureFloatsInto(nil, rx, r)
}

// ViterbiDecodeSoft is the soft-metric counterpart of ViterbiDecode: llrs
// holds one value per mother-coded bit (positive favours 0), zeros acting
// as erasures.
func ViterbiDecodeSoft(llrs []float64, terminated bool) ([]bits.Bit, error) {
	return ViterbiDecodeSoftInto(nil, llrs, terminated)
}
