package wifi

import "sledzig/internal/obs"

// Metric handles for the PHY chains, resolved lazily against the
// process-wide obs registry. When no registry is installed every handle
// is nil and the instrumented call sites reduce to nil checks.
type phyMetrics struct {
	// Tx chain stages.
	txScramble   *obs.Stage
	txEncode     *obs.Stage // convolutional encode + puncture
	txInterleave *obs.Stage
	txMap        *obs.Stage // QAM constellation mapping
	txIFFT       *obs.Stage // subcarrier assembly + IFFT + CP
	txFrames     *obs.Counter
	txSymbols    *obs.Counter

	// Rx chain stages (the Tx mirror).
	rxSync        *obs.Stage // channel estimation from the LTS
	rxSignal      *obs.Stage // SIGNAL symbol decode
	rxEqualize    *obs.Stage
	rxDemap       *obs.Stage
	rxDeinterlv   *obs.Stage
	rxViterbi     *obs.Stage
	rxDescramble  *obs.Stage
	rxFrames      *obs.Counter
	rxFailShort   *obs.Counter // waveform shorter than preamble+SIGNAL (sync loss)
	rxFailChanEst *obs.Counter // unusable LTS channel estimate
	rxFailSignal  *obs.Counter // SIGNAL field decode/parity failure
	rxFailTrunc   *obs.Counter // PPDU truncated mid-DATA
	rxFailDecode  *obs.Counter // Viterbi/descramble output unusable

	// Degradation-ladder accounting: attempts and recoveries per rung.
	rxFallbacks  *obs.Counter // soft→hard retries attempted
	rxFallbackOK *obs.Counter // ... that recovered the frame
	rxResyncs    *obs.Counter // preamble-scan retries attempted
	rxResyncOK   *obs.Counter // ... that recovered the frame

	bus *obs.Bus
}

var phyLazy obs.Lazy[*phyMetrics]

var phyNil = &phyMetrics{}

func phy() *phyMetrics {
	return phyLazy.Get(func(r *obs.Registry) *phyMetrics {
		if r == nil {
			return phyNil
		}
		tx := r.Scope("wifi.tx")
		rx := r.Scope("wifi.rx")
		return &phyMetrics{
			txScramble:   tx.Stage("scramble"),
			txEncode:     tx.Stage("encode"),
			txInterleave: tx.Stage("interleave"),
			txMap:        tx.Stage("map"),
			txIFFT:       tx.Stage("ifft"),
			txFrames:     tx.Counter("frames"),
			txSymbols:    tx.Counter("symbols"),

			rxSync:        rx.Stage("sync"),
			rxSignal:      rx.Stage("signal"),
			rxEqualize:    rx.Stage("equalize"),
			rxDemap:       rx.Stage("demap"),
			rxDeinterlv:   rx.Stage("deinterleave"),
			rxViterbi:     rx.Stage("viterbi"),
			rxDescramble:  rx.Stage("descramble"),
			rxFrames:      rx.Counter("frames"),
			rxFailShort:   rx.Counter("fail.short_waveform"),
			rxFailChanEst: rx.Counter("fail.channel_estimate"),
			rxFailSignal:  rx.Counter("fail.signal"),
			rxFailTrunc:   rx.Counter("fail.truncated"),
			rxFailDecode:  rx.Counter("fail.decode"),

			rxFallbacks:  rx.Counter("degrade.fallback"),
			rxFallbackOK: rx.Counter("degrade.fallback_recovered"),
			rxResyncs:    rx.Counter("degrade.resync"),
			rxResyncOK:   rx.Counter("degrade.resync_recovered"),

			bus: r.Bus(),
		}
	})
}

// rxFail counts one receive failure and mirrors it on the event bus.
func (m *phyMetrics) rxFail(c *obs.Counter, kind string, err error) {
	c.Inc()
	if m.bus.Active() {
		detail := ""
		if err != nil {
			detail = err.Error()
		}
		m.bus.Publish(obs.Event{Source: "wifi.rx", Kind: "decode_fail." + kind, Node: -1, Detail: detail})
	}
}
