package wifi

import "fmt"

// Rate adaptation, the escape hatch the paper mentions in section V-D2:
// "In extreme cases when ZigBee may interfere with the WiFi transmission,
// the WiFi link can adapt to the settings with lower SNR threshold."
// AdaptRate implements that policy over the paper's Table IV mode set.

// minSNRByMode mirrors the Table IV minimum-SNR column (dB).
var minSNRByMode = map[Mode]float64{
	{QAM16, Rate12}:  11,
	{QAM16, Rate34}:  15,
	{QAM64, Rate23}:  18,
	{QAM64, Rate34}:  20,
	{QAM64, Rate56}:  25,
	{QAM256, Rate34}: 29,
	{QAM256, Rate56}: 31,
}

// MinSNRForMode returns the Table IV threshold for one of the paper's
// modes.
func MinSNRForMode(m Mode) (float64, error) {
	v, ok := minSNRByMode[m]
	if !ok {
		return 0, fmt.Errorf("wifi: mode %v not in the Table IV set", m)
	}
	return v, nil
}

// AdaptRate picks the fastest paper mode whose SNR requirement (plus the
// margin) fits the link budget. ok is false when even the most robust
// mode does not fit.
func AdaptRate(sinrDB, marginDB float64) (Mode, bool) {
	best := Mode{}
	bestRate := 0.0
	for _, m := range PaperModes() {
		need := minSNRByMode[m] + marginDB
		if sinrDB >= need && m.DataRate() > bestRate {
			best = m
			bestRate = m.DataRate()
		}
	}
	return best, bestRate > 0
}
