package wifi

import (
	"fmt"
	"sync"

	"sledzig/internal/bits"
	"sledzig/internal/obs/trace"
)

// serviceBits is the length of the SERVICE field that precedes the PSDU in
// the DATA field; tailBits terminate the convolutional coder.
const (
	serviceBits = 16
	tailBits    = 6
)

// Frame is a fully assembled DATA field ready for OFDM modulation: the
// scrambled encoder-input bits plus the bookkeeping needed to modulate and
// to analyze per-subcarrier behaviour.
type Frame struct {
	Mode       Mode
	Convention Convention
	PSDULength int  // LENGTH value signalled in the PLCP header (octets)
	Terminated bool // scrambled tail zeroed (standard) or left intact (SledZig)

	// ScrambledBits is the encoder input: N_sym * N_DBPS bits.
	ScrambledBits []bits.Bit
	// NumSymbols is the number of DATA OFDM symbols.
	NumSymbols int

	// Trace, when non-nil, receives one child span per synthesis stage
	// (tx.encode → tx.interleave → tx.map → tx.ifft) when the frame is
	// rendered. A nil Trace costs one nil check per stage.
	Trace *trace.Frame
}

// Transmitter assembles standard 802.11 frames. The zero value is not
// usable; construct with a valid Mode. Seed 0 selects
// DefaultScramblerSeed.
type Transmitter struct {
	Mode Mode
	Seed uint8
	// Convention selects the interleaver/labeling pipeline (see
	// Convention); the zero value is the IEEE-standard chain.
	Convention Convention
}

// NumDataSymbols returns how many OFDM symbols a PSDU of length octets
// occupies in mode m.
func NumDataSymbols(m Mode, length int) int {
	nDBPS := m.DataBitsPerSymbol()
	total := serviceBits + 8*length + tailBits
	return (total + nDBPS - 1) / nDBPS
}

// Frame scrambles SERVICE + PSDU + tail + pad and zeroes the scrambled
// tail, producing the standard encoder input.
func (t Transmitter) Frame(psdu []byte) (*Frame, error) {
	if err := t.Mode.Validate(); err != nil {
		return nil, err
	}
	if len(psdu) < 1 || len(psdu) > maxPSDULength {
		return nil, fmt.Errorf("wifi: PSDU length %d out of range [1, %d]", len(psdu), maxPSDULength)
	}
	seed := t.Seed
	if seed == 0 {
		seed = DefaultScramblerSeed
	}
	nSym := NumDataSymbols(t.Mode, len(psdu))
	total := nSym * t.Mode.DataBitsPerSymbol()

	logical := make([]bits.Bit, total) // zeros: SERVICE, tail, pad prefilled
	copy(logical[serviceBits:], bits.FromBytes(psdu))

	m := phy()
	t0 := m.txScramble.Start()
	scrambled, err := ScrambleWithSeed(logical, seed)
	if err != nil {
		return nil, err
	}
	m.txScramble.Done(t0, len(psdu))
	// Zero the scrambled tail so the trellis terminates (17.3.5.3).
	tailStart := serviceBits + 8*len(psdu)
	for i := tailStart; i < tailStart+tailBits; i++ {
		scrambled[i] = 0
	}
	return &Frame{
		Mode:          t.Mode,
		Convention:    t.Convention,
		PSDULength:    len(psdu),
		Terminated:    true,
		ScrambledBits: scrambled,
		NumSymbols:    nSym,
	}, nil
}

// FrameFromScrambled wraps an externally produced scrambled encoder-input
// stream (the SledZig path: the core package controls these bits directly).
// signalledLength is the octet LENGTH to advertise in the PLCP header.
func (t Transmitter) FrameFromScrambled(scrambled []bits.Bit, signalledLength int) (*Frame, error) {
	if err := t.Mode.Validate(); err != nil {
		return nil, err
	}
	nDBPS := t.Mode.DataBitsPerSymbol()
	if len(scrambled) == 0 || len(scrambled)%nDBPS != 0 {
		return nil, fmt.Errorf("wifi: scrambled stream length %d not a positive multiple of N_DBPS %d", len(scrambled), nDBPS)
	}
	if signalledLength < 1 || signalledLength > maxPSDULength {
		return nil, fmt.Errorf("wifi: signalled length %d out of range [1, %d]", signalledLength, maxPSDULength)
	}
	return &Frame{
		Mode:          t.Mode,
		Convention:    t.Convention,
		PSDULength:    signalledLength,
		Terminated:    false,
		ScrambledBits: bits.Clone(scrambled),
		NumSymbols:    len(scrambled) / nDBPS,
	}, nil
}

// DataPoints returns the constellation points of every DATA symbol:
// NumSymbols slices of 48 points each, in ascending subcarrier order.
func (f *Frame) DataPoints() ([][]complex128, error) {
	m := phy()
	t0 := m.txEncode.Start()
	coded, err := EncodeAndPuncture(f.ScrambledBits, f.Mode.CodeRate)
	if err != nil {
		return nil, err
	}
	m.txEncode.Done(t0, len(f.ScrambledBits)/8)
	t0 = m.txInterleave.Start()
	inter, err := f.Convention.InterleaveAllC(f.Mode.Modulation, coded)
	if err != nil {
		return nil, err
	}
	m.txInterleave.Done(t0, len(coded)/8)
	t0 = m.txMap.Start()
	pts, err := f.Convention.MapAllC(f.Mode.Modulation, inter)
	if err != nil {
		return nil, err
	}
	m.txMap.Done(t0, len(inter)/8)
	out := make([][]complex128, f.NumSymbols)
	for s := 0; s < f.NumSymbols; s++ {
		out[s] = pts[s*NumDataSubcarriers : (s+1)*NumDataSubcarriers]
	}
	return out, nil
}

// Waveform renders the complete PPDU baseband waveform: preamble, SIGNAL
// symbol, and all DATA symbols at 20 MS/s.
func (f *Frame) Waveform() ([]complex128, error) {
	out := make([]complex128, 0, PreambleLength+(1+f.NumSymbols)*SymbolLength)
	return f.AppendWaveform(out)
}

// txScratch holds the per-frame intermediate buffers of waveform
// synthesis — the interleaved coded stream and the constellation points —
// pooled so steady-state rendering reuses them across frames.
type txScratch struct {
	inter []bits.Bit
	pts   []complex128
}

var txScratchPool = sync.Pool{New: func() any { return new(txScratch) }}

// AppendWaveform is Waveform in append form: it renders the complete PPDU
// into dst and returns the extended slice, producing samples identical to
// Waveform. Intermediate buffers come from internal pools, so a caller
// that recycles dst's capacity renders frames with a near-constant number
// of allocations regardless of frame size. On error dst may have been
// partially extended; discard it.
func (f *Frame) AppendWaveform(dst []complex128) ([]complex128, error) {
	sigPts, err := EncodeSignalSymbol(f.Mode, f.PSDULength)
	if err != nil {
		return dst, err
	}
	m := phy()
	t0 := m.txEncode.Start()
	mk := f.Trace.Begin("tx.encode")
	coded, err := EncodeAndPuncture(f.ScrambledBits, f.Mode.CodeRate)
	mk.End()
	if err != nil {
		return dst, err
	}
	m.txEncode.Done(t0, len(f.ScrambledBits)/8)

	s := txScratchPool.Get().(*txScratch)
	defer txScratchPool.Put(s)
	t0 = m.txInterleave.Start()
	mk = f.Trace.Begin("tx.interleave")
	s.inter = bits.Grow(s.inter, len(coded))
	if err := f.Convention.InterleaveAllCInto(f.Mode.Modulation, coded, s.inter); err != nil {
		mk.End()
		return dst, err
	}
	mk.End()
	m.txInterleave.Done(t0, len(coded)/8)

	t0 = m.txMap.Start()
	mk = f.Trace.Begin("tx.map")
	nPts := len(s.inter) / f.Mode.Modulation.BitsPerSubcarrier()
	if cap(s.pts) < nPts {
		s.pts = make([]complex128, nPts)
	}
	s.pts = s.pts[:nPts]
	if err := f.Convention.MapAllCInto(f.Mode.Modulation, s.inter, s.pts); err != nil {
		mk.End()
		return dst, err
	}
	mk.End()
	m.txMap.Done(t0, len(s.inter)/8)

	t0 = m.txIFFT.Start()
	mk = f.Trace.Begin("tx.ifft")
	dst = AppendPreamble(dst)
	dst, err = AppendSymbol(dst, sigPts, 0)
	if err != nil {
		mk.End()
		return dst, err
	}
	for sym := 0; sym < f.NumSymbols; sym++ {
		dst, err = AppendSymbol(dst, s.pts[sym*NumDataSubcarriers:(sym+1)*NumDataSubcarriers], sym+1)
		if err != nil {
			mk.End()
			return dst, err
		}
	}
	mk.End()
	m.txIFFT.Done(t0, 0)
	m.txFrames.Inc()
	m.txSymbols.Add(uint64(1 + f.NumSymbols))
	return dst, nil
}

// DataWaveform renders only the DATA portion (no preamble, no SIGNAL) —
// what the paper's RSSI experiments measure, since a ZigBee RSSI sample
// integrates over many payload symbols.
func (f *Frame) DataWaveform() ([]complex128, error) {
	dataPts, err := f.DataPoints()
	if err != nil {
		return nil, err
	}
	m := phy()
	t0 := m.txIFFT.Start()
	out := make([]complex128, 0, f.NumSymbols*SymbolLength)
	for s, pts := range dataPts {
		out, err = AppendSymbol(out, pts, s+1)
		if err != nil {
			return nil, err
		}
	}
	m.txIFFT.Done(t0, 0)
	m.txSymbols.Add(uint64(f.NumSymbols))
	return out, nil
}

// Duration returns the full PPDU airtime in seconds.
func (f *Frame) Duration() float64 {
	samples := PreambleLength + (1+f.NumSymbols)*SymbolLength
	return float64(samples) / SampleRate
}

// PPDUDuration computes the airtime of a PPDU carrying length octets in
// mode m without building the frame.
func PPDUDuration(m Mode, length int) float64 {
	samples := PreambleLength + (1+NumDataSymbols(m, length))*SymbolLength
	return float64(samples) / SampleRate
}
