package wifi

import (
	"fmt"
	"math"
	"sync"

	"sledzig/internal/dsp"
)

// pilotPolarity is the 127-element pilot polarity sequence p_n of
// 802.11-2012 (18.3.5.10); symbol n uses p_{n mod 127}.
var pilotPolarity = [127]int8{
	1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1,
	-1, -1, 1, 1, -1, 1, 1, -1, 1, 1, 1, 1, 1, 1, -1, 1,
	1, 1, -1, 1, 1, -1, -1, 1, 1, 1, -1, 1, -1, -1, -1, 1,
	-1, 1, -1, -1, 1, -1, -1, 1, 1, 1, 1, 1, -1, -1, 1, 1,
	-1, -1, 1, -1, 1, -1, 1, 1, -1, -1, -1, 1, 1, -1, -1, -1,
	-1, 1, -1, -1, 1, -1, 1, 1, 1, 1, -1, 1, -1, 1, -1, 1,
	-1, -1, -1, -1, -1, 1, -1, 1, 1, -1, 1, -1, 1, 1, 1, -1,
	-1, 1, -1, -1, -1, 1, 1, 1, -1, -1, -1, -1, -1, -1, -1,
}

// PilotPolarity returns p_n for OFDM symbol index n (SIGNAL symbol is
// n = 0, first DATA symbol is n = 1).
func PilotPolarity(n int) float64 {
	return float64(pilotPolarity[n%len(pilotPolarity)])
}

// AssembleSymbol builds the 64-entry frequency-domain vector for one OFDM
// symbol from 48 data points (ascending subcarrier order) and the symbol
// index (for pilot polarity), then returns the 80-sample time-domain symbol
// (16-sample cyclic prefix + 64-sample IFFT output).
func AssembleSymbol(data []complex128, symbolIndex int) ([]complex128, error) {
	freq, err := SubcarrierMap(data, symbolIndex)
	if err != nil {
		return nil, err
	}
	return TimeDomain(freq), nil
}

// symbolScratch holds the frequency- and time-domain work vectors of one
// OFDM symbol synthesis; AppendSymbol pools these so steady-state waveform
// rendering does not allocate per symbol.
type symbolScratch struct {
	freq []complex128
	td   []complex128
}

var symbolScratchPool = sync.Pool{New: func() any {
	return &symbolScratch{
		freq: make([]complex128, NumSubcarriers),
		td:   make([]complex128, NumSubcarriers),
	}
}}

// AppendSymbol is AssembleSymbol in append form: it appends the 80-sample
// cyclic-prefixed time-domain symbol to dst and returns the extended
// slice. All intermediate buffers come from an internal pool, so a caller
// that reuses dst's capacity renders symbols allocation-free.
func AppendSymbol(dst []complex128, data []complex128, symbolIndex int) ([]complex128, error) {
	s := symbolScratchPool.Get().(*symbolScratch)
	defer symbolScratchPool.Put(s)
	if err := SubcarrierMapInto(s.freq, data, symbolIndex); err != nil {
		return dst, err
	}
	if err := dsp.IFFTInto(s.td, s.freq); err != nil {
		return dst, err
	}
	dst = append(dst, s.td[NumSubcarriers-CPLength:]...)
	dst = append(dst, s.td...)
	return dst, nil
}

// SubcarrierMap places 48 data points and the 4 pilots into the 64-bin
// frequency-domain vector (bin k mod 64 for signed subcarrier k).
func SubcarrierMap(data []complex128, symbolIndex int) ([]complex128, error) {
	freq := make([]complex128, NumSubcarriers)
	if err := SubcarrierMapInto(freq, data, symbolIndex); err != nil {
		return nil, err
	}
	return freq, nil
}

// SubcarrierMapInto is SubcarrierMap writing into a caller-provided 64-bin
// vector, which is cleared first.
func SubcarrierMapInto(freq, data []complex128, symbolIndex int) error {
	if len(data) != NumDataSubcarriers {
		return fmt.Errorf("wifi: need %d data points, got %d", NumDataSubcarriers, len(data))
	}
	if len(freq) != NumSubcarriers {
		return fmt.Errorf("wifi: need %d bins, got %d", NumSubcarriers, len(freq))
	}
	clear(freq)
	for i, b := range dataBins {
		freq[b] = data[i]
	}
	p := complex(PilotPolarity(symbolIndex), 0)
	freq[bin(-21)] = p
	freq[bin(-7)] = p
	freq[bin(7)] = p
	freq[bin(21)] = -p
	return nil
}

// ExtractSubcarriers inverts SubcarrierMap for the data bins: given the
// 64-bin frequency vector of a received symbol it returns the 48 data
// points in ascending subcarrier order.
func ExtractSubcarriers(freq []complex128) ([]complex128, error) {
	out := make([]complex128, NumDataSubcarriers)
	if err := ExtractSubcarriersInto(out, freq); err != nil {
		return nil, err
	}
	return out, nil
}

// ExtractSubcarriersInto is ExtractSubcarriers writing the 48 data points
// into a caller-provided slice. No allocation.
func ExtractSubcarriersInto(dst, freq []complex128) error {
	if len(freq) != NumSubcarriers {
		return fmt.Errorf("wifi: need %d bins, got %d", NumSubcarriers, len(freq))
	}
	if len(dst) != NumDataSubcarriers {
		return fmt.Errorf("wifi: need %d data points, got %d", NumDataSubcarriers, len(dst))
	}
	for i, b := range dataBins {
		dst[i] = freq[b]
	}
	return nil
}

// bin converts a signed subcarrier index to an FFT bin index.
func bin(k int) int {
	return ((k % NumSubcarriers) + NumSubcarriers) % NumSubcarriers
}

// TimeDomain converts a 64-bin frequency vector to the 80-sample
// cyclic-prefixed time-domain symbol.
func TimeDomain(freq []complex128) []complex128 {
	td := dsp.MustIFFT(freq)
	out := make([]complex128, 0, SymbolLength)
	out = append(out, td[NumSubcarriers-CPLength:]...)
	out = append(out, td...)
	return out
}

// FrequencyDomain strips the cyclic prefix from an 80-sample symbol and
// returns its 64-bin FFT.
func FrequencyDomain(sym []complex128) ([]complex128, error) {
	out := make([]complex128, NumSubcarriers)
	if err := FrequencyDomainInto(out, sym); err != nil {
		return nil, err
	}
	return out, nil
}

// FrequencyDomainInto is FrequencyDomain computing the 64-bin FFT into a
// caller-provided vector (which must not alias sym). No allocation — the
// receiver's per-symbol hot loop uses it with pooled buffers.
func FrequencyDomainInto(dst, sym []complex128) error {
	if len(sym) != SymbolLength {
		return fmt.Errorf("wifi: symbol length %d != %d", len(sym), SymbolLength)
	}
	return dsp.FFTInto(dst, sym[CPLength:])
}

// ApplyEdgeWindow smooths the transitions between consecutive OFDM
// symbols with a raised-cosine ramp of rampLen samples (17.3.2.5's
// windowing function). It reduces out-of-band emissions — and the
// spectral leakage into the protected ZigBee channel — at no cost to the
// receiver, which only reads the CP-protected FFT window. The waveform
// must be whole 80-sample symbols.
func ApplyEdgeWindow(wave []complex128, rampLen int) ([]complex128, error) {
	if rampLen < 1 || rampLen > CPLength/2 {
		return nil, fmt.Errorf("wifi: ramp length %d out of range [1, %d]", rampLen, CPLength/2)
	}
	if len(wave)%SymbolLength != 0 {
		return nil, fmt.Errorf("wifi: waveform of %d samples is not whole symbols", len(wave))
	}
	out := make([]complex128, len(wave))
	copy(out, wave)
	ramp := make([]float64, rampLen)
	for i := range ramp {
		ramp[i] = 0.5 * (1 - math.Cos(math.Pi*(float64(i)+0.5)/float64(rampLen)))
	}
	for symStart := 0; symStart < len(out); symStart += SymbolLength {
		for i := 0; i < rampLen; i++ {
			// Fade in at the symbol head and out at its tail. The faded
			// head samples sit inside the cyclic prefix, ahead of the
			// receiver's FFT window.
			out[symStart+i] *= complex(ramp[i], 0)
			out[symStart+SymbolLength-1-i] *= complex(ramp[i], 0)
		}
	}
	return out, nil
}
