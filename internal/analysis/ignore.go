package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// A Directive is a parsed //sledvet:ignore suppression comment.
//
// Grammar:
//
//	//sledvet:ignore <name>[,<name>...] <reason>
//
// The directive silences diagnostics from the named analyzers on the same
// source line as the comment, or — when the comment stands on a line of its
// own — on the line immediately below it. The reason is mandatory: a
// suppression without a recorded justification is itself reported.
type Directive struct {
	File   string
	Line   int
	Names  []string // analyzer names this directive silences
	Reason string
	Pos    token.Pos
}

const ignorePrefix = "//sledvet:ignore"

// Directives extracts every //sledvet:ignore comment from files. Malformed
// directives (missing analyzer list or missing reason) are returned as
// diagnostics so drivers surface them instead of silently ignoring them.
func Directives(fset *token.FileSet, files []*ast.File) (ds []Directive, malformed []Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //sledvet:ignoreXXX — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed //sledvet:ignore: need analyzer name(s) and a reason, e.g. //sledvet:ignore metriclit per-injector counters are validated at registration",
					})
					continue
				}
				posn := fset.Position(c.Pos())
				ds = append(ds, Directive{
					File:   posn.Filename,
					Line:   posn.Line,
					Names:  strings.Split(fields[0], ","),
					Reason: strings.Join(fields[1:], " "),
					Pos:    c.Pos(),
				})
			}
		}
	}
	return ds, malformed
}

// UnknownNames reports directives that name analyzers absent from known:
// such a directive silences nothing — usually a typo ("lockbalence") or a
// stale name after a rename — and silently keeping it around would let the
// author believe the finding is suppressed. One diagnostic per unknown
// name, anchored at the directive.
func UnknownNames(ds []Directive, known []*Analyzer) []Diagnostic {
	names := make(map[string]bool, len(known))
	for _, a := range known {
		names[a.Name] = true
	}
	var out []Diagnostic
	for _, d := range ds {
		for _, n := range d.Names {
			if !names[n] {
				out = append(out, Diagnostic{
					Pos:     d.Pos,
					Message: "//sledvet:ignore names unknown analyzer " + strconv.Quote(n) + ": the directive suppresses nothing (check for typos or a renamed analyzer)",
				})
			}
		}
	}
	return out
}

// covers reports whether d silences analyzer name at file:line.
func (d Directive) covers(name, file string, line int) bool {
	if d.File != file || (line != d.Line && line != d.Line+1) {
		return false
	}
	for _, n := range d.Names {
		if n == name {
			return true
		}
	}
	return false
}

// Suppress drops diagnostics of the named analyzer that are covered by a
// directive, returning the survivors.
func Suppress(fset *token.FileSet, name string, ds []Directive, diags []Diagnostic) []Diagnostic {
	if len(ds) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, diag := range diags {
		posn := fset.Position(diag.Pos)
		covered := false
		for _, d := range ds {
			if d.covers(name, posn.Filename, posn.Line) {
				covered = true
				break
			}
		}
		if !covered {
			kept = append(kept, diag)
		}
	}
	return kept
}
