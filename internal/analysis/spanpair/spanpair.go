// Package spanpair proves that every trace span opened in a function is
// closed on every non-crash path. It is the dataflow complement to
// spanlit (which checks span *names*): an unclosed span here means a
// latency histogram that silently under-counts the exact code path that
// was slow — the failure mode the flight recorder exists to catch.
//
// Obligations are created when a call's result is bound to a local:
//
//	mk := e.Trace.Begin("core.layout")  // Mark    → needs mk.End()
//	tr := trace.Start("decode")         // *Frame  → needs tr.Finish(err)
//
// and discharged by the matching close on every path, or by a deferred
// close (directly or inside a deferred function literal). Both types are
// matched structurally — a named type Mark, or pointer to Frame, declared
// in a package named "trace" — so the fixture corpus and the real
// internal/obs/trace both bind.
//
// A span value that escapes the frame — stored in a struct or composite
// literal (the engine's `&job{tr: trace.Start("decode")}`), passed to a
// call, returned, sent on a channel, captured by a non-deferred literal,
// or aliased — transfers the obligation to the receiver and is dropped
// here: the analysis stays intraprocedural and errs toward silence.
// Three things are reported:
//
//   - a span open (may-held) at a return or the function end with no
//     deferred close covering it;
//   - a span result discarded outright (`f.Begin("x")` as a statement, or
//     bound to _), which can never be closed;
//   - a live span overwritten by reassignment, which orphans the first
//     span's End.
//
// Like all sledvet dataflow checks, crash edges (panic/os.Exit) do not
// bind, and intentional protocols need //sledvet:ignore with a reason.
package spanpair

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"sledzig/internal/analysis"
	"sledzig/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "spanpair",
	Doc:  "trace spans (Begin/Start) must be closed (End/Finish) on every non-crash path",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFrame(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
					checkFrame(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// spanKind describes which close discharges an obligation.
type spanKind int

const (
	kindNone  spanKind = iota
	kindMark           // trace.Mark   → End()
	kindFrame          // *trace.Frame → Finish(err)
)

func (k spanKind) closer() string {
	if k == kindMark {
		return "End"
	}
	return "Finish"
}

// classify reports whether t is one of the two span value types.
func classify(t types.Type) spanKind {
	if t == nil {
		return kindNone
	}
	if p, ok := t.(*types.Pointer); ok {
		if isTraceNamed(p.Elem(), "Frame") {
			return kindFrame
		}
		return kindNone
	}
	if isTraceNamed(t, "Mark") {
		return kindMark
	}
	return kindNone
}

func isTraceNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == "trace"
}

// site is one span-creating assignment.
type site struct {
	obj  types.Object
	kind spanKind
	pos  token.Pos
	name string // variable name, for messages
}

func (s *site) key() string { return fmt.Sprintf("span %s@%d", s.name, s.obj.Pos()) }

func checkFrame(pass *analysis.Pass, body *ast.BlockStmt) {
	// Pass A1: find span-creating assignments and discarded span results.
	sites := map[types.Object]*site{}
	eachNodeSkippingFuncLits(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if k := classify(pass.TypeOf(call)); k != kindNone {
					pass.Reportf(call.Pos(),
						"span result discarded: %s can never be called; bind the result", k.closer())
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				k := classify(pass.TypeOf(call))
				if k == kindNone {
					continue
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue // stored into a field/element: escape, owner closes
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(),
						"span result discarded: %s can never be called; bind the result", k.closer())
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				if _, tracked := sites[obj]; !tracked {
					sites[obj] = &site{obj: obj, kind: k, pos: call.Pos(), name: id.Name}
				}
			}
		}
	})
	if len(sites) == 0 {
		return
	}

	// Pass A2: drop any span that escapes the frame — its obligation
	// transfers to whoever received it.
	for obj := range sites {
		if escapes(pass, body, obj, sites[obj].kind) {
			delete(sites, obj)
		}
	}
	if len(sites) == 0 {
		return
	}

	// Pass B: dataflow. Open sets the site key; close clears it; a
	// deferred close sets a coverage key honored at exits.
	g := cfg.New(body)
	reporting := false
	transfer := func(b *cfg.Block, in cfg.State) cfg.State {
		for _, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.DeferStmt:
					if st := closeTarget(pass, sites, s.Call); st != nil {
						in.Set("defer "+st.key(), cfg.May|cfg.Must)
						return false
					}
					if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
						ast.Inspect(lit.Body, func(m ast.Node) bool {
							if c, ok := m.(*ast.CallExpr); ok {
								if st := closeTarget(pass, sites, c); st != nil {
									in.Set("defer "+st.key(), cfg.May|cfg.Must)
								}
							}
							return true
						})
					}
					return false
				case *ast.AssignStmt:
					for i, rhs := range s.Rhs {
						if i >= len(s.Lhs) {
							break
						}
						call, ok := ast.Unparen(rhs).(*ast.CallExpr)
						if !ok || classify(pass.TypeOf(call)) == kindNone {
							continue
						}
						id, ok := s.Lhs[i].(*ast.Ident)
						if !ok {
							continue
						}
						obj := pass.TypesInfo.Defs[id]
						if obj == nil {
							obj = pass.TypesInfo.Uses[id]
						}
						st := sites[obj]
						if st == nil {
							continue
						}
						if reporting && in.Get(st.key())&cfg.May != 0 {
							pass.Reportf(s.Pos(),
								"span %q (opened at line %d) may still be open when reassigned; call %s first",
								st.name, line(pass, st.pos), st.kind.closer())
						}
						// The new span replaces the old obligation; its
						// own opening position is folded into the same
						// key, which stays precise enough for exits.
						in.Set(st.key(), cfg.May|cfg.Must)
					}
				case *ast.CallExpr:
					if st := closeTarget(pass, sites, s); st != nil {
						in.Set(st.key(), 0)
					}
				}
				return true
			})
		}
		return in
	}
	in, out := cfg.Forward(g, cfg.State{}, transfer)

	reporting = true
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		st := in[b]
		if st == nil {
			st = cfg.State{}
		}
		transfer(b, st.Clone())
	}

	reported := map[string]bool{}
	for _, b := range g.ExitBlocks() {
		st := out[b]
		for _, s := range sites {
			if st.Get(s.key())&cfg.May == 0 || st.Get("defer "+s.key())&cfg.May != 0 {
				continue
			}
			at := body.Rbrace
			what := "function end"
			if b.Returns {
				if last := b.Last(); last != nil {
					at = last.Pos()
				}
				what = "return"
			}
			k := fmt.Sprintf("%s@%d", s.key(), at)
			if reported[k] {
				continue
			}
			reported[k] = true
			pass.Reportf(at,
				"span %q (opened at line %d) may reach this %s without %s; close it on every path or defer the close",
				s.name, line(pass, s.pos), what, s.kind.closer())
		}
	}
}

// closeTarget reports whether call is `v.End()` or `v.Finish(...)` for a
// tracked span v, returning its site.
func closeTarget(pass *analysis.Pass, sites map[types.Object]*site, call *ast.CallExpr) *site {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	st := sites[obj]
	if st == nil || sel.Sel.Name != st.kind.closer() {
		return nil
	}
	return st
}

// escapes reports whether obj leaves the frame in any way that hands off
// the close obligation: passed to a call (other than its own close),
// returned, stored into a non-ident lvalue or composite literal, sent on
// a channel, address-taken, aliased to another variable, or captured by a
// non-deferred function literal.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, kind spanKind) bool {
	esc := false
	uses := func(n ast.Node) bool { return n != nil && usesObject(pass, n, obj) }

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if esc {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			if uses(s.Body) {
				esc = true
			}
			return false
		case *ast.DeferStmt:
			// A deferred direct close, or a deferred literal that only
			// closes, is the blessed pattern, not an escape.
			if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok &&
					pass.TypesInfo.Uses[id] == obj && sel.Sel.Name == closerName(kind) {
					for _, a := range s.Call.Args {
						if uses(a) {
							esc = true
						}
					}
					return false
				}
			}
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
						if !isCloseReceiver(pass, lit.Body, id, obj, kind) {
							esc = true
						}
					}
					return true
				})
				return false
			}
			if uses(s.Call) {
				esc = true
			}
			return false
		case *ast.GoStmt:
			if uses(s.Call) {
				esc = true
			}
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					// A method call on the span itself: fine. Its args may
					// still leak the object.
					for _, a := range s.Args {
						if uses(a) {
							esc = true
						}
					}
					return !esc
				}
			}
			for _, a := range s.Args {
				if uses(a) {
					esc = true
				}
			}
			return !esc
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if uses(r) {
					esc = true
				}
			}
			return !esc
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if classify(pass.TypeOf(call)) != kindNone {
						continue // the creating call itself
					}
				}
				if uses(rhs) {
					esc = true // alias or computed store: owner changed
				}
			}
			for _, lhs := range s.Lhs {
				if _, ok := lhs.(*ast.Ident); !ok && uses(lhs) {
					esc = true
				}
			}
			return !esc
		case *ast.SendStmt:
			if uses(s.Value) {
				esc = true
			}
			return !esc
		case *ast.CompositeLit:
			if uses(s) {
				esc = true
			}
			return false
		case *ast.UnaryExpr:
			if s.Op == token.AND && uses(s.X) {
				esc = true
			}
			return !esc
		}
		return true
	}
	ast.Inspect(body, walk)
	return esc
}

func closerName(k spanKind) string { return k.closer() }

// isCloseReceiver reports whether id (resolving to obj) appears as the
// receiver of the close call inside root.
func isCloseReceiver(pass *analysis.Pass, root ast.Node, id *ast.Ident, obj types.Object, kind spanKind) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != closerName(kind) {
			return true
		}
		if rid, ok := ast.Unparen(sel.X).(*ast.Ident); ok && rid == id {
			found = true
			return false
		}
		return true
	})
	return found
}

// eachNodeSkippingFuncLits visits body without descending into nested
// function literals (separate frames).
func eachNodeSkippingFuncLits(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

func usesObject(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func line(pass *analysis.Pass, pos token.Pos) int {
	return pass.Fset.Position(pos).Line
}
