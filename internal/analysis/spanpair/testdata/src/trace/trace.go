// Package trace is a slim stand-in for sledzig/internal/obs/trace: spanpair
// matches span types by (package name, type name), so the fixture only
// needs the same shape.
package trace

type Frame struct{}

func Start(kind string) *Frame { return &Frame{} }

func (f *Frame) Begin(name string) Mark { return Mark{} }

func (f *Frame) Finish(err error) {}

type Mark struct{}

func (m Mark) End() {}
