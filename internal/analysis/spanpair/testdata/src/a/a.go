// Fixture for the spanpair analyzer: spans close on every path.
package a

import "trace"

type job struct {
	tr *trace.Frame
}

func cond() bool { return true }

func register(m trace.Mark)   {}
func adopt(f *trace.Frame)    {}
func sink(ch chan trace.Mark) {}

// Closed on the single path: fine.
func simple(f *trace.Frame) {
	mk := f.Begin("a.simple")
	work()
	mk.End()
}

// Deferred close covers all exits.
func deferred(f *trace.Frame) int {
	mk := f.Begin("a.deferred")
	defer mk.End()
	if cond() {
		return 1
	}
	return 2
}

// Frame from Start, deferred Finish.
func rooted() error {
	tr := trace.Start("decode")
	defer tr.Finish(nil)
	return nil
}

// Early close on the error path, close again on the main path: fine.
func branches(f *trace.Frame) error {
	mk := f.Begin("a.branches")
	if cond() {
		mk.End()
		return errFixed
	}
	work()
	mk.End()
	return nil
}

// Leak: the early return skips End.
func leaky(f *trace.Frame) error {
	mk := f.Begin("a.leaky")
	if cond() {
		return errFixed // want `span "mk" \(opened at line 54\) may reach this return without End`
	}
	mk.End()
	return nil
}

// Leak at fall-off.
func leakyEnd(f *trace.Frame) {
	mk := f.Begin("a.leakyend")
	if cond() {
		mk.End()
		return
	}
	work()
} // want `span "mk" \(opened at line 64\) may reach this function end without End`

// A frame without Finish on one path.
func frameLeak() error {
	tr := trace.Start("encode")
	if cond() {
		return errFixed // want `span "tr" \(opened at line 74\) may reach this return without Finish`
	}
	tr.Finish(nil)
	return nil
}

// Discarded results can never be closed.
func discarded(f *trace.Frame) {
	f.Begin("a.discarded") // want `span result discarded: End can never be called`
	_ = f.Begin("a.blank") // want `span result discarded: End can never be called`
}

// Overwriting a live span orphans its End.
func overwrite(f *trace.Frame) {
	mk := f.Begin("a.first")
	mk = f.Begin("a.second") // want `span "mk" \(opened at line 90\) may still be open when reassigned`
	mk.End()
}

// Escapes hand the obligation to the receiver: all fine here.
func escapes(f *trace.Frame) *job {
	j := &job{tr: trace.Start("decode")} // composite literal owns it
	mk := f.Begin("a.handoff")
	register(mk) // passed along
	tr := trace.Start("waveform")
	adopt(tr) // passed along
	return j
}

// Returning the span transfers the obligation to the caller.
func opener(f *trace.Frame) trace.Mark {
	mk := f.Begin("a.opener")
	return mk
}

// A deferred closure close counts as coverage.
func deferredClosure(f *trace.Frame) int {
	mk := f.Begin("a.closure")
	defer func() {
		work()
		mk.End()
	}()
	if cond() {
		return 1
	}
	return 2
}

// Crash edges do not bind.
func panics(f *trace.Frame) {
	mk := f.Begin("a.panics")
	if !cond() {
		panic("impossible")
	}
	mk.End()
}

// Intentional leaks need a written justification.
func justified(f *trace.Frame) {
	mk := f.Begin("a.justified")
	if cond() {
		mk.End()
	}
	//sledvet:ignore spanpair the non-flushed path is closed by the shutdown hook
} // covered by the directive above

var errFixed = errorString("fixed")

type errorString string

func (e errorString) Error() string { return string(e) }

func work() {}
