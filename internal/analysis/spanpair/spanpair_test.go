package spanpair_test

import (
	"testing"

	"sledzig/internal/analysis/analysistest"
	"sledzig/internal/analysis/spanpair"
)

func TestSpanpair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), spanpair.Analyzer, "a")
}
