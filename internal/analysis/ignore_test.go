package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestDirectivesParse(t *testing.T) {
	fset, files := parseOne(t, `package p

//sledvet:ignore metriclit counters validated at registration
var a int

func f() {
	_ = a //sledvet:ignore floateq,seededrand deterministic test vector
}
`)
	ds, malformed := Directives(fset, files)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", malformed)
	}
	if len(ds) != 2 {
		t.Fatalf("got %d directives, want 2", len(ds))
	}
	if got := ds[0].Names; len(got) != 1 || got[0] != "metriclit" {
		t.Errorf("directive 0 names = %v, want [metriclit]", got)
	}
	if ds[0].Reason != "counters validated at registration" {
		t.Errorf("directive 0 reason = %q", ds[0].Reason)
	}
	if got := ds[1].Names; len(got) != 2 || got[0] != "floateq" || got[1] != "seededrand" {
		t.Errorf("directive 1 names = %v, want [floateq seededrand]", got)
	}
}

func TestDirectivesMalformed(t *testing.T) {
	fset, files := parseOne(t, `package p

//sledvet:ignore metriclit
var a int

//sledvet:ignore
var b int

//sledvet:ignoreme not a directive at all
var c int
`)
	ds, malformed := Directives(fset, files)
	if len(ds) != 0 {
		t.Fatalf("unexpected directives: %v", ds)
	}
	// The name-only and empty forms are malformed; the ignoreXXX typo is
	// not recognized as a directive at all.
	if len(malformed) != 2 {
		t.Fatalf("got %d malformed, want 2: %v", len(malformed), malformed)
	}
	for _, d := range malformed {
		if !strings.Contains(d.Message, "malformed //sledvet:ignore") {
			t.Errorf("message %q lacks malformed marker", d.Message)
		}
	}
}

func TestUnknownNames(t *testing.T) {
	fset, files := parseOne(t, `package p

//sledvet:ignore lockbalence caller unlocks
var a int

//sledvet:ignore lockbalance,spanpear both misspelled halves
var b int

//sledvet:ignore lockbalance caller unlocks
var c int
`)
	ds, malformed := Directives(fset, files)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed: %v", malformed)
	}
	known := []*Analyzer{{Name: "lockbalance"}, {Name: "spanpair"}}
	got := UnknownNames(ds, known)
	if len(got) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(got), got)
	}
	if !strings.Contains(got[0].Message, `"lockbalence"`) {
		t.Errorf("diagnostic 0 = %q, want mention of lockbalence", got[0].Message)
	}
	if !strings.Contains(got[1].Message, `"spanpear"`) {
		t.Errorf("diagnostic 1 = %q, want mention of spanpear", got[1].Message)
	}
	// Positions should anchor at the offending directives (lines 3 and 6).
	if l := fset.Position(got[0].Pos).Line; l != 3 {
		t.Errorf("diagnostic 0 at line %d, want 3", l)
	}
	if l := fset.Position(got[1].Pos).Line; l != 6 {
		t.Errorf("diagnostic 1 at line %d, want 6", l)
	}
}

func TestSuppressCoversSameLineAndNextLine(t *testing.T) {
	fset, files := parseOne(t, `package p

//sledvet:ignore demo reason one
var a int

var b int //sledvet:ignore demo reason two

var c int
`)
	ds, _ := Directives(fset, files)
	mk := func(line int) Diagnostic {
		// Fabricate a position on the requested line of a.go.
		f := fset.File(files[0].Pos())
		return Diagnostic{Pos: f.LineStart(line), Message: "x"}
	}
	diags := []Diagnostic{mk(4), mk(6), mk(8)}
	kept := Suppress(fset, "demo", ds, diags)
	if len(kept) != 1 {
		t.Fatalf("kept %d diagnostics, want 1 (only line 8): %v", len(kept), kept)
	}
	if l := fset.Position(kept[0].Pos).Line; l != 8 {
		t.Errorf("survivor at line %d, want 8", l)
	}
	// A different analyzer name is not covered.
	kept = Suppress(fset, "other", ds, []Diagnostic{mk(4)})
	if len(kept) != 1 {
		t.Errorf("directive for demo suppressed analyzer other")
	}
}
