package analysis

import (
	"regexp"
	"strings"
)

// modulePrefix is the import-path prefix of this repository's own packages.
// Scoped analyzers restrict themselves to a sub-tree of the module but must
// still run over analysistest fixtures (whose package paths are bare names
// like "a") and any foreign module they are pointed at.
const modulePrefix = "sledzig/"

// InScope reports whether pass's package should be analyzed by an analyzer
// scoped to the packages matching re. Packages outside this module are
// always in scope; module packages are in scope only when re matches their
// import path.
func InScope(p *Pass, re *regexp.Regexp) bool {
	path := p.Pkg.Path()
	if !strings.HasPrefix(path, modulePrefix) {
		return true
	}
	return re.MatchString(path)
}
