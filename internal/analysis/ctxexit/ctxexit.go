// Package ctxexit proves that every goroutine spawned in the engine and
// transport layers can terminate: its body's control-flow graph must reach
// the function exit through at least one non-crash path. A goroutine whose
// only shape is
//
//	go func() {
//		for {
//			job := <-queue
//			process(job)
//		}
//	}()
//
// can never return — no break, no return, no `case <-ctx.Done()`, no
// range-over-channel (whose close ends the loop). Each engine restart then
// leaks one more of them; under the ROADMAP's networked sledzigd tier the
// leak multiplies per connection. The fix is always structural (add a
// cancellation arm or range the channel), which is exactly what a
// reachability query over the CFG can enforce.
//
// For `go f(...)` the analyzer resolves f to its declaration when it lives
// in the same package (function literals are checked directly). Cross-
// package spawn targets are outside the intraprocedural horizon and are
// skipped — spawning a leaky helper from another package is caught when
// that package is analyzed, provided it is in scope.
//
// The check is deliberately "can exit", not "does exit": a path to the
// exit suffices, since termination in general is undecidable. Blocking
// forever in `select {}` or a no-exit loop is precisely what it rejects.
// Scope: internal/engine and internal/transport (flag -ctxexit.scope).
package ctxexit

import (
	"go/ast"
	"go/types"
	"regexp"

	"sledzig/internal/analysis"
	"sledzig/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxexit",
	Doc:  "goroutines spawned in engine/transport must have a reachable exit (ctx.Done, channel close, break)",
	Run:  run,
}

var scope = regexp.MustCompile(`^sledzig/internal/(engine|transport)(/|$)`)

func init() {
	Analyzer.Flags.Func("scope", "regexp of module package paths to analyze", func(s string) error {
		re, err := regexp.Compile(s)
		if err != nil {
			return err
		}
		scope = re
		return nil
	})
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.InScope(pass, scope) {
		return nil, nil
	}

	// Index this package's function declarations by their object so
	// `go e.worker(i)` and `go drain(q)` resolve to bodies.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, name := spawnedBody(pass, decls, gs)
			if body == nil {
				return true // cross-package or dynamic target
			}
			g := cfg.New(body)
			if !g.ExitReachable() {
				pass.Reportf(gs.Pos(),
					"goroutine %s has no reachable exit: every path loops or blocks forever; add a ctx.Done()/close-signal arm or range over the channel",
					name)
			}
			return true
		})
	}
	return nil, nil
}

// spawnedBody returns the body of the function started by gs, when it is
// statically known and declared in this package, along with a display name.
func spawnedBody(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, gs *ast.GoStmt) (*ast.BlockStmt, string) {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, "literal"
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fun]; obj != nil {
			if fn := decls[obj]; fn != nil {
				return fn.Body, fun.Name
			}
		}
	case *ast.SelectorExpr:
		var obj types.Object
		if selection, ok := pass.TypesInfo.Selections[fun]; ok {
			obj = selection.Obj()
		} else if o := pass.TypesInfo.Uses[fun.Sel]; o != nil {
			obj = o // package-qualified call
		}
		if obj != nil {
			if fn := decls[obj]; fn != nil {
				return fn.Body, obj.Name()
			}
		}
	}
	return nil, ""
}
