// Fixture for the ctxexit analyzer: spawned goroutines must be able to exit.
package a

import "context"

type engine struct {
	jobs chan int
	quit chan struct{}
}

func use(int) {}

// A plain worker that finishes is fine.
func (e *engine) runOnce() {
	go func() {
		use(<-e.jobs)
	}()
}

// Range over a channel exits when the channel is closed.
func (e *engine) worker() {
	for j := range e.jobs {
		use(j)
	}
}

func (e *engine) spawnWorker() {
	go e.worker()
}

// A cancellation arm makes the exit reachable.
func (e *engine) cancellable(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-e.jobs:
				use(j)
			}
		}
	}()
}

// Labeled break out of the feed loop is an exit.
func (e *engine) feeder() {
	go func() {
	feed:
		for {
			select {
			case <-e.quit:
				break feed
			case j, ok := <-e.jobs:
				if !ok {
					break feed
				}
				use(j)
			}
		}
	}()
}

// No arm ever leaves the loop: the goroutine can only leak.
func (e *engine) leakyLiteral() {
	go func() { // want `goroutine literal has no reachable exit`
		for {
			use(<-e.jobs)
		}
	}()
}

// Same defect through a declared function.
func pump(ch chan int) {
	for {
		use(<-ch)
	}
}

func (e *engine) spawnPump() {
	go pump(e.jobs) // want `goroutine pump has no reachable exit`
}

// And through a method value.
func (e *engine) spin() {
	for {
		select {
		case j := <-e.jobs:
			use(j)
		case <-e.quit:
			// drains but never leaves
		}
	}
}

func (e *engine) spawnSpin() {
	go e.spin() // want `goroutine spin has no reachable exit`
}

// A goroutine that only panics out is still a leak-or-crash shape.
func (e *engine) crashOnly() {
	go func() { // want `goroutine literal has no reachable exit`
		for {
			if <-e.jobs < 0 {
				panic("negative job")
			}
		}
	}()
}

// Dynamic targets cannot be resolved and are skipped.
func spawnDynamic(fns []func()) {
	go fns[0]()
}

// Intentional run-forever daemons need a written justification.
func (e *engine) daemon() {
	//sledvet:ignore ctxexit metrics flusher runs for process lifetime by design
	go func() {
		for {
			use(<-e.jobs)
		}
	}()
}
