package ctxexit_test

import (
	"testing"

	"sledzig/internal/analysis/analysistest"
	"sledzig/internal/analysis/ctxexit"
)

func TestCtxexit(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxexit.Analyzer, "a")
}
