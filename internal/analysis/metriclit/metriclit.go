// Package metriclit enforces the PR 1 metric-naming convention: names
// passed to obs registration methods must be compile-time constants in
// lowercase dotted form.
//
// Every call to the Counter, Gauge, Histogram, Stage or Scope methods of
// the obs registry (matched by the receiver's defining package being named
// "obs") is checked:
//
//   - the name argument must have a constant string value (literal, const,
//     or concatenation of those) — dynamic names defeat grep, dashboards
//     and the exposition sort order, and can explode cardinality;
//   - the value must match ^[a-z0-9_]+(\.[a-z0-9_]+)*$ — the convention
//     every existing metric follows ("engine.batch.latency_seconds");
//   - a name must not be registered as two different instrument kinds in
//     the same package (Counter("x") and Gauge("x") cannot coexist in one
//     registry). Re-registering the same kind is fine: the registry is
//     get-or-create by design, and hot paths re-fetch counters.
//
// The obs package itself is exempt — its Scope methods assemble prefixed
// names dynamically by construction.
package metriclit

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"sledzig/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "metriclit",
	Doc:  "obs metric names must be lowercase-dotted compile-time constants, one kind per name",
	Run:  run,
}

var nameRE = regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)*$`)

// registration methods and whether they create an instrument whose kind
// must be unique per name (Scope and Stage only derive names).
var methods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Stage":     false,
	"Scope":     false,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "obs" {
		return nil, nil // the registry implementation composes names
	}
	type reg struct {
		kind string
		pos  ast.Node
	}
	seen := map[string]reg{} // full-name registrations on the Registry

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kindUnique, isReg := methods[sel.Sel.Name]
			if !isReg {
				return true
			}
			recv, onRegistry := obsReceiver(pass, sel)
			if !onRegistry && recv == "" {
				return true
			}

			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"obs %s name must be a compile-time constant string (dynamic names defeat dashboards and can explode cardinality)",
					sel.Sel.Name)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !nameRE.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"obs %s name %q must be lowercase dotted ([a-z0-9_] segments separated by '.')",
					sel.Sel.Name, name)
				return true
			}
			// Kind conflicts are only decidable for Registry-level
			// registrations, where the literal is the full metric name
			// (Scope methods prepend a prefix unknown here).
			if kindUnique && onRegistry {
				if prev, dup := seen[name]; dup && prev.kind != sel.Sel.Name {
					pass.Reportf(arg.Pos(),
						"metric %q already registered as %s at %s; one instrument kind per name",
						name, prev.kind, pass.Fset.Position(prev.pos.Pos()))
				} else if !dup {
					seen[name] = reg{kind: sel.Sel.Name, pos: arg}
				}
			}
			return true
		})
	}
	return nil, nil
}

// obsReceiver resolves whether sel's receiver is a type defined in a
// package named "obs". It returns the receiver type name and whether it is
// the Registry itself (as opposed to a Scope).
func obsReceiver(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "obs" {
		return "", false
	}
	return obj.Name(), obj.Name() == "Registry"
}
