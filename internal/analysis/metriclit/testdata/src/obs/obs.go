// Package obs is a slim stand-in for sledzig/internal/obs: the analyzer
// matches registration methods by the receiver's package name, so the
// fixture only needs the same shape.
package obs

type Counter struct{ v uint64 }

func (c *Counter) Inc() { c.v++ }

type Gauge struct{ v float64 }

type Histogram struct{ n uint64 }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }
func (r *Registry) Scope(prefix string) *Scope       { return &Scope{} }

type Scope struct{}

func (s *Scope) Counter(name string) *Counter { return &Counter{} }
func (s *Scope) Gauge(name string) *Gauge     { return &Gauge{} }
func (s *Scope) Stage(name string) *Stage     { return &Stage{} }

type Stage struct{}

func Default() *Registry { return &Registry{} }
