// Fixture for the metriclit analyzer: metric naming discipline.
package a

import "obs"

const good = "pipeline.frames"
const prefix = "pipeline"

func Literals(r *obs.Registry, name string) {
	r.Counter("decode.frames").Inc()            // allowed: literal, lowercase dotted
	r.Gauge("engine.queue_depth")               // allowed
	r.Histogram("engine.batch.latency_seconds") // allowed
	r.Counter(good).Inc()                       // allowed: constant
	r.Counter(prefix + ".drops").Inc()          // allowed: constant concatenation

	r.Counter(name).Inc()            // want `compile-time constant`
	r.Counter("Decode.Frames").Inc() // want `lowercase dotted`
	r.Gauge("queue depth")           // want `lowercase dotted`
	r.Histogram("latency-seconds")   // want `lowercase dotted`
	r.Counter("trailing.").Inc()     // want `lowercase dotted`
	r.Counter(".leading").Inc()      // want `lowercase dotted`
}

func Scoped(r *obs.Registry, suffix string) {
	s := r.Scope("wifi.tx")
	s.Counter("frames").Inc() // allowed
	s.Stage("encode")         // allowed
	s.Counter("a" + suffix)   // want `compile-time constant`
	r.Scope("Wifi")           // want `lowercase dotted`
}

func KindConflict(r *obs.Registry) {
	r.Counter("fault.chains").Inc()
	r.Counter("fault.chains").Inc() // allowed: get-or-create re-fetch
	r.Gauge("fault.chains")         // want `already registered as Counter`
}

func Suppressed(r *obs.Registry, injector string) {
	//sledvet:ignore metriclit per-injector counters, names validated by the injector catalog
	r.Counter("fault.injected." + injector).Inc()
}

// NotObs proves unrelated Counter methods are left alone.
type other struct{}

func (other) Counter(name string) int { return 0 }

func Unrelated(o other, dyn string) {
	o.Counter(dyn) // allowed: not the obs registry
}
