package metriclit_test

import (
	"testing"

	"sledzig/internal/analysis/analysistest"
	"sledzig/internal/analysis/metriclit"
)

func TestMetriclit(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), metriclit.Analyzer, "a")
}
