// Fixture for the floateq analyzer: no exact float comparison in DSP code.
package a

type sample struct{ v float64 }

// Compare flags equality on computed floats.
func Compare(a, b float64, c, d complex128, f32 float32) bool {
	if a == b { // want `floating-point == is brittle`
		return true
	}
	if a != b { // want `floating-point != is brittle`
		return true
	}
	if c == d { // want `floating-point == is brittle`
		return true
	}
	if f32 != 1.5 { // want `floating-point != is brittle`
		return true
	}
	return false
}

// Fields and named types are seen through to the underlying float.
type dB float64

func Named(x, y dB, s sample) bool {
	return x == y || s.v == 2.0 // want `floating-point == is brittle` `floating-point == is brittle`
}

// ZeroSentinel is the allowed unset/disabled idiom.
func ZeroSentinel(snr float64, gain complex128) bool {
	return snr == 0 || gain != 0 // allowed: exact-zero sentinel
}

// Ints are not the analyzer's business.
func Ints(a, b int) bool {
	return a == b
}

// Constants fold at compile time — exact by definition.
func Constants() bool {
	const eps = 1e-9
	return eps == 1e-9
}

// sameBits is on the approved helper allowlist (-floateq.funcs=sameBits).
func sameBits(a, b float64) bool {
	return a == b // allowed: approved exact-comparison helper
}

// Suppressed documents the inline escape hatch.
func Suppressed(a, b float64) bool {
	//sledvet:ignore floateq quantizer outputs are exact table entries
	return a == b
}
