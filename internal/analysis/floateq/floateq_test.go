package floateq_test

import (
	"testing"

	"sledzig/internal/analysis/analysistest"
	"sledzig/internal/analysis/floateq"
)

func TestFloateq(t *testing.T) {
	for flag, val := range map[string]string{
		"packages": "^a$",
		"funcs":    "sameBits",
	} {
		if err := floateq.Analyzer.Flags.Set(flag, val); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		floateq.Analyzer.Flags.Set("packages", `^sledzig/internal/(dsp|wifi|core)$`)
		floateq.Analyzer.Flags.Set("funcs", "")
	}()
	analysistest.Run(t, analysistest.TestData(), floateq.Analyzer, "a")
}
