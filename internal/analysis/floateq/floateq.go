// Package floateq forbids float/complex equality comparison in the DSP
// packages, where rounding makes == and != silently unreliable.
//
// SledZig's correctness story is bit-exact determinism of the *bit*
// pipeline; the sample pipeline, by contrast, is floating point end to
// end, and exact comparison of two computed floats is almost always a
// latent bug (FFT round-trips, EVM scores and LLRs are never exactly
// equal). Within the configured packages the analyzer flags == and !=
// where either operand is a float or complex type, with two escapes:
//
//   - comparison against an exact-zero constant is allowed by default
//     (-floateq.allowzero=false to forbid): zero is a common explicit
//     "unset/disabled" sentinel (e.g. SNRdB == 0, gain != 0) and is
//     representable exactly;
//   - functions named in -floateq.funcs (comma-separated) are exempt
//     wholesale — the allowlist of approved exact-comparison helpers
//     (bit-pattern tests, interpolation-table guards).
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"sledzig/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on float or complex operands in DSP packages outside approved helpers",
	Run:  run,
}

var (
	packages   string
	allowZero  bool
	allowFuncs string
)

func init() {
	Analyzer.Flags.StringVar(&packages, "packages",
		`^sledzig/internal/(dsp|wifi|core)$`,
		"regexp of package paths the invariant applies to")
	Analyzer.Flags.BoolVar(&allowZero, "allowzero", true,
		"permit comparison against an exact-zero constant")
	Analyzer.Flags.StringVar(&allowFuncs, "funcs", "",
		"comma-separated names of approved exact-comparison helper functions")
}

func run(pass *analysis.Pass) (any, error) {
	re, err := regexp.Compile(packages)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	approved := map[string]bool{}
	for _, name := range strings.Split(allowFuncs, ",") {
		if name = strings.TrimSpace(name); name != "" {
			approved[name] = true
		}
	}

	for _, file := range pass.Files {
		// funcStack tracks the named function enclosing each node so the
		// helper allowlist can exempt whole functions.
		var funcStack []string
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncDecl:
				funcStack = append(funcStack, s.Name.Name)
				if s.Body != nil {
					ast.Inspect(s.Body, visit)
				}
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.BinaryExpr:
				if s.Op != token.EQL && s.Op != token.NEQ {
					return true
				}
				if len(funcStack) > 0 && approved[funcStack[len(funcStack)-1]] {
					return true
				}
				if !floatOperand(pass, s.X) && !floatOperand(pass, s.Y) {
					return true
				}
				if bothConstant(pass, s.X, s.Y) {
					return true // compile-time comparison, exact by definition
				}
				if allowZero && (isZeroConst(pass, s.X) || isZeroConst(pass, s.Y)) {
					return true
				}
				pass.Reportf(s.OpPos,
					"floating-point %s is brittle under rounding; compare with a tolerance, or add the helper to -floateq.funcs if exact comparison is intended",
					s.Op)
			}
			return true
		}
		ast.Inspect(file, visit)
	}
	return nil, nil
}

func floatOperand(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func bothConstant(pass *analysis.Pass, x, y ast.Expr) bool {
	tx, okx := pass.TypesInfo.Types[x]
	ty, oky := pass.TypesInfo.Types[y]
	return okx && oky && tx.Value != nil && ty.Value != nil
}

func isZeroConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		return v == 0
	case constant.Complex:
		re, _ := constant.Float64Val(constant.Real(tv.Value))
		im, _ := constant.Float64Val(constant.Imag(tv.Value))
		return re == 0 && im == 0
	}
	return false
}
