// Package seededrand enforces the PR 4 determinism seam: fault replay and
// channel simulation must be reproducible from an explicit seed, so the
// packages that implement them may not reach for ambient randomness or
// wall-clock time.
//
// Inside the configured packages the analyzer flags calls to:
//
//   - package-level functions of math/rand and math/rand/v2 (rand.Int,
//     rand.Float64, rand.Shuffle, …), which draw from the unseeded global
//     source; constructors that accept an explicit source or seed
//     (rand.New, rand.NewSource, rand.NewZipf, rand.NewPCG,
//     rand.NewChaCha8) and methods on an injected *rand.Rand are allowed;
//   - time.Now and time.Since, which must flow through the injected
//     Clock/now seam (assigning `now: time.Now` as a default when wiring
//     the seam is fine — only call sites are flagged).
package seededrand

import (
	"go/ast"
	"go/types"
	"regexp"

	"sledzig/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "deterministic packages must use injected seeds and clocks, not ambient rand/time",
	Run:  run,
}

var packages string

func init() {
	Analyzer.Flags.StringVar(&packages, "packages",
		`^sledzig/internal/(fault|channel|engine)$`,
		"regexp of package paths the invariant applies to")
}

// constructors that take an explicit seed or source.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	re, err := regexp.Compile(packages)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods (e.g. on an injected *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(call.Pos(),
						"%s.%s draws from the ambient source and breaks seeded replay; thread an injected *rand.Rand through the config",
						fn.Pkg().Name(), fn.Name())
				}
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" {
					pass.Reportf(call.Pos(),
						"time.%s is nondeterministic here; call through the injected clock seam (a `now func() time.Time` field defaulted to time.Now)",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

func calledFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
