package seededrand_test

import (
	"testing"

	"sledzig/internal/analysis/analysistest"
	"sledzig/internal/analysis/seededrand"
)

func TestSeededrand(t *testing.T) {
	if err := seededrand.Analyzer.Flags.Set("packages", "^a$"); err != nil {
		t.Fatal(err)
	}
	defer seededrand.Analyzer.Flags.Set("packages", `^sledzig/internal/(fault|channel|engine)$`)
	analysistest.Run(t, analysistest.TestData(), seededrand.Analyzer, "a")
}
