// Fixture for the seededrand analyzer: the determinism seam.
package a

import (
	"math/rand"
	"time"
)

type thing struct {
	rng *rand.Rand
	now func() time.Time
}

// Seeded builds its own source from an explicit seed — allowed.
func Seeded(seed int64) *thing {
	return &thing{
		rng: rand.New(rand.NewSource(seed)), // allowed: explicit seed
		now: time.Now,                       // allowed: value, not a call — the seam default
	}
}

// Injected draws from the injected source — allowed.
func (t *thing) Injected() float64 {
	return t.rng.Float64()
}

// Clocked reads time through the seam — allowed.
func (t *thing) Clocked() time.Time {
	return t.now()
}

// Globals draw from the ambient source.
func Globals() (int, float64) {
	a := rand.Int()                    // want `ambient source`
	b := rand.Float64()                // want `ambient source`
	rand.Shuffle(1, func(i, j int) {}) // want `ambient source`
	return a, b
}

// WallClock reads the real clock directly.
func WallClock() int64 {
	start := time.Now()   // want `time.Now is nondeterministic`
	_ = time.Since(start) // want `time.Since is nondeterministic`
	return start.UnixNano()
}

// SeedFromClock is the classic replay-breaking pattern: both halves flag.
func SeedFromClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time.Now is nondeterministic`
}

// Suppressed documents the audited escape hatch.
func Suppressed() time.Time {
	//sledvet:ignore seededrand startup banner timestamp, not part of replay
	return time.Now()
}
