package typederr_test

import (
	"testing"

	"sledzig/internal/analysis/analysistest"
	"sledzig/internal/analysis/typederr"
)

func TestTypederr(t *testing.T) {
	if err := typederr.Analyzer.Flags.Set("packages", "^a$"); err != nil {
		t.Fatal(err)
	}
	defer typederr.Analyzer.Flags.Set("packages", `^sledzig$|^sledzig/internal/engine$`)
	analysistest.Run(t, analysistest.TestData(), typederr.Analyzer, "a")
}

// TestSkipsUnmatchedPackages ensures the package filter really gates the
// analyzer: the same fixture must produce no findings when the filter
// excludes it (the driver runs every analyzer over every package).
func TestSkipsUnmatchedPackages(t *testing.T) {
	if err := typederr.Analyzer.Flags.Set("packages", "^never-matches$"); err != nil {
		t.Fatal(err)
	}
	defer typederr.Analyzer.Flags.Set("packages", `^sledzig$|^sledzig/internal/engine$`)
	analysistest.Run(t, analysistest.TestData(), typederr.Analyzer, "b")
}
