// Fixture for the typederr analyzer: facade-package error discipline.
package a

import (
	"errors"
	"fmt"
)

// ErrBad is the package's declared sentinel.
var ErrBad = errors.New("a: bad")

// Inline constructs a fresh untyped error at the return site.
func Inline() error {
	return errors.New("boom") // want `ad-hoc errors.New`
}

// InlineErrorf drops the chain: no %w verb.
func InlineErrorf(n int) error {
	return fmt.Errorf("bad value %d", n) // want `fmt.Errorf without %w`
}

// DynamicFormat cannot be proven to wrap.
func DynamicFormat(format string) error {
	return fmt.Errorf(format, 1) // want `non-constant format`
}

// MultiResult flags the error position of a multi-valued return.
func MultiResult() (int, error) {
	return 0, errors.New("boom") // want `ad-hoc errors.New`
}

// Wrapped keeps the sentinel chain intact — allowed.
func Wrapped(n int) error {
	return fmt.Errorf("%w: value %d", ErrBad, n)
}

// Sentinel returns the declared sentinel directly — allowed.
func Sentinel() error {
	return ErrBad
}

// Propagated returns an error variable — allowed (construction site is
// elsewhere).
func Propagated() error {
	err := helper()
	return err
}

// ViaHelper propagates a helper call — allowed.
func ViaHelper() (int, error) {
	return 0, helper()
}

// Nil returns no error — allowed.
func Nil() error {
	return nil
}

// helper is unexported: the invariant binds the exported API only.
func helper() error {
	return errors.New("internal detail")
}

// Closure returns inside a function literal do not belong to the exported
// function — allowed.
func Closure() error {
	f := func() error { return errors.New("local") }
	return f()
}

// T is an exported type with an exported method.
type T struct{}

// Check is an exported method: same rule applies.
func (T) Check() error {
	return errors.New("boom") // want `ad-hoc errors.New`
}

// hidden is unexported, so its exported-looking method is out of scope.
type hidden struct{}

func (hidden) Check() error {
	return errors.New("fine")
}

// Ignored demonstrates an audited suppression.
func Ignored() error {
	//sledvet:ignore typederr fixture demonstrates an audited escape hatch
	return errors.New("audited")
}
