// Fixture b: identical violations to package a, but loaded with a package
// filter that does not match — nothing may be reported.
package b

import "errors"

func Inline() error {
	return errors.New("boom") // no want: the package filter excludes b
}
