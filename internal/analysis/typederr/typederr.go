// Package typederr enforces the facade error taxonomy: exported functions
// of the public packages must not return ad-hoc errors.
//
// PR 2 introduced typed sentinels (sledzig.ErrInvalidChannel, …) so callers
// classify failures with errors.Is, and PR 4's chaos soak fails on any
// untyped error escaping the facade. This analyzer moves that invariant
// into the compiler loop: inside the configured packages, a `return` in an
// exported function (or exported method on an exported type) must not
// construct an anonymous error on the spot:
//
//   - `return errors.New("...")` is always flagged — declare a sentinel.
//   - `return fmt.Errorf("...")` is flagged unless the constant format
//     string contains %w, i.e. the error wraps (and thus preserves) a
//     sentinel chain.
//
// Propagated error variables, sentinel identifiers, named error types and
// helper calls are accepted: the analyzer polices construction sites, not
// the full data flow (the chaos soak still covers the dynamic remainder).
package typederr

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"sledzig/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc:  "exported functions of facade packages must return declared sentinels, not ad-hoc errors",
	Run:  run,
}

var packages string

func init() {
	Analyzer.Flags.StringVar(&packages, "packages", `^sledzig$|^sledzig/internal/engine$`,
		"regexp of package paths the invariant applies to")
}

func run(pass *analysis.Pass) (any, error) {
	re, err := regexp.Compile(packages)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	errType := types.Universe.Lookup("error").Type()

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !exportedFunc(fn) {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			errIdx := errorResultIndexes(sig, errType)
			if len(errIdx) == 0 {
				continue
			}
			checkBody(pass, fn.Body, sig, errIdx)
		}
	}
	return nil, nil
}

// exportedFunc reports whether fn is part of the package's exported API:
// an exported top-level function, or an exported method whose receiver's
// base type is exported.
func exportedFunc(fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() {
		return false
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr: // generic receiver
			t = u.X
		case *ast.Ident:
			return u.IsExported()
		default:
			return false
		}
	}
}

func errorResultIndexes(sig *types.Signature, errType types.Type) []int {
	var idx []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			idx = append(idx, i)
		}
	}
	return idx
}

// checkBody inspects the return statements that belong to this function
// (not to nested function literals).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, sig *types.Signature, errIdx []int) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // its returns are not ours
		case *ast.ReturnStmt:
			if len(s.Results) != sig.Results().Len() {
				// Naked return or a propagated multi-value call —
				// nothing constructed here.
				return true
			}
			for _, i := range errIdx {
				checkReturnedError(pass, s.Results[i])
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

func checkReturnedError(pass *analysis.Pass, expr ast.Expr) {
	expr = ast.Unparen(expr)
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return // nil, sentinel identifier, propagated variable, named type…
	}
	fn := calledFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch {
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		pass.Reportf(call.Pos(),
			"exported function returns an ad-hoc errors.New error; declare a package sentinel (var Err… = errors.New) and return or wrap it")
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		if len(call.Args) == 0 {
			return
		}
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(call.Pos(),
				"exported function returns fmt.Errorf with a non-constant format; use a constant format that wraps a sentinel with %%w")
			return
		}
		if !strings.Contains(constant.StringVal(tv.Value), "%w") {
			pass.Reportf(call.Pos(),
				"exported function returns fmt.Errorf without %%w; wrap a declared Err… sentinel so errors.Is keeps working")
		}
	}
}

// calledFunc resolves the called function object, if statically known.
func calledFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
