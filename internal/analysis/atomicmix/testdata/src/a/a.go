// Fixture for the atomicmix analyzer: no mixed atomic/plain access.
package a

import "sync/atomic"

type counter struct {
	n     int64
	other int64
}

// Atomic accesses bless the field.
func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) cas() bool {
	return atomic.CompareAndSwapInt64(&c.n, 0, 1)
}

// Plain reads and writes of a blessed field are mixes.
func (c *counter) badRead() int64 {
	return c.n // want `n is accessed with sync/atomic \(first at line 13\) but used plainly here`
}

func (c *counter) badWrite() {
	c.n = 0 // want `n is accessed with sync/atomic .* used plainly here`
}

// Taking the address for a non-atomic callee leaks plain access too.
func scribble(p *int64) { *p = 7 }

func (c *counter) badAddr() {
	scribble(&c.n) // want `n is accessed with sync/atomic .* used plainly here`
}

// A field never touched atomically is free.
func (c *counter) okOther() int64 {
	c.other++
	return c.other
}

// Composite-literal initialization happens before the value is shared.
func newCounter() *counter {
	return &counter{n: 42}
}

// Package-level variables are covered as well.
var total int64

func addTotal(d int64) {
	atomic.AddInt64(&total, d)
}

func badTotal() int64 {
	return total // want `total is accessed with sync/atomic \(first at line 55\) but used plainly here`
}

// Pre-publication plain access needs the reason written down.
func (c *counter) reset() {
	//sledvet:ignore atomicmix called only from the constructor before the counter escapes
	c.n = 0
}
