package atomicmix_test

import (
	"testing"

	"sledzig/internal/analysis/analysistest"
	"sledzig/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicmix.Analyzer, "a")
}
