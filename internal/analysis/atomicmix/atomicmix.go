// Package atomicmix flags variables that are accessed through sync/atomic
// in one place and plainly in another. Mixed access is how torn reads and
// lost updates enter a codebase late: the atomic call sites advertise
// "this is shared", but nothing stops a later edit from writing `c.n = 0`
// — the race detector only notices if a test happens to race the two, and
// the engine's fate-CAS/kernel-dispatch seams are exactly where such an
// edit would be made under pressure.
//
// Per package, the analyzer first collects every object whose address is
// passed to a sync/atomic function (`atomic.AddInt64(&c.n, 1)` blesses
// c.n), then reports any other plain use of those objects: direct reads,
// direct writes, or taking the address for a non-atomic callee.
//
// Two contexts stay exempt:
//
//   - the blessed atomic call sites themselves;
//   - composite-literal keys (`counter{n: 0}`): initialization before the
//     value is shared is the standard construction pattern.
//
// The repo's own code prefers the typed atomics (atomic.Int64 and
// friends), which make mixing impossible — this check guards the
// function-style seams where that protection does not exist. Intentional
// pre-publication plain access takes //sledvet:ignore atomicmix with the
// reason spelled out.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"sledzig/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "a variable accessed via sync/atomic must not be read or written plainly elsewhere",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	// Phase 1: bless objects whose address feeds a sync/atomic function,
	// remembering the identifier positions of those sanctioned uses.
	blessed := map[types.Object]token.Pos{} // first atomic site, for messages
	allowed := map[token.Pos]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				obj, id := addressedObject(pass, un.X)
				if obj == nil {
					continue
				}
				if _, seen := blessed[obj]; !seen {
					blessed[obj] = id.Pos()
				}
				// Every ident inside the addressed expression is part of
				// the sanctioned access path.
				ast.Inspect(un.X, func(m ast.Node) bool {
					if mid, ok := m.(*ast.Ident); ok {
						allowed[mid.Pos()] = true
					}
					return true
				})
			}
			return true
		})
	}
	if len(blessed) == 0 {
		return nil, nil
	}

	// Phase 2: any other use of a blessed object is a mix.
	for _, file := range pass.Files {
		exempt := map[token.Pos]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			if cl, ok := n.(*ast.CompositeLit); ok {
				for _, el := range cl.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							exempt[id.Pos()] = true
						}
					}
				}
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			first, ok := blessed[obj]
			if !ok || allowed[id.Pos()] || exempt[id.Pos()] {
				return true
			}
			pass.Reportf(id.Pos(),
				"%s is accessed with sync/atomic (first at line %d) but used plainly here: mixed access tears; use sync/atomic or an atomic.Int64-style type everywhere",
				id.Name, pass.Fset.Position(first).Line)
			return true
		})
	}
	return nil, nil
}

// isAtomicCall reports whether call invokes a function from sync/atomic
// (package-qualified: atomic.AddInt64, atomic.LoadUint32, ...).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
	if !ok {
		return false
	}
	return pkg.Imported().Path() == "sync/atomic"
}

// addressedObject resolves &X to the variable object being addressed: the
// field of a selector chain, or a plain identifier. It returns the ident
// naming the object so its position can be sanctioned.
func addressedObject(pass *analysis.Pass, e ast.Expr) (types.Object, *ast.Ident) {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[v]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				return obj, v
			}
		}
	case *ast.SelectorExpr:
		if selection, ok := pass.TypesInfo.Selections[v]; ok {
			if obj, isVar := selection.Obj().(*types.Var); isVar {
				return obj, v.Sel
			}
		}
	case *ast.IndexExpr:
		// &xs[i]: element accesses have no per-element object; skip.
	}
	return nil, nil
}
