// Package spanlit enforces the trace span-naming convention, the sibling
// of metriclit for the per-frame tracing layer: names passed to trace
// registration points must be compile-time constants in lowercase dotted
// form.
//
// Every call to Frame.Begin (a pipeline stage span), Tracer.Start and the
// package-level trace.Start (a frame root kind) — matched by the callee's
// defining package being named "trace" — is checked:
//
//   - the name argument must have a constant string value (literal, const,
//     or concatenation of those) — dynamic span names defeat the Chrome
//     trace timeline grouping, the flight-recorder diffing workflow, and
//     can grow a frame past its fixed span table;
//   - the value must match ^[a-z0-9_]+(\.[a-z0-9_]+)*$ — the convention
//     every existing span follows ("rx.viterbi", "core.solve", "encode").
//
// The trace package itself is exempt — its tests exercise the span-table
// overflow path with generated names by design.
package spanlit

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"sledzig/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "spanlit",
	Doc:  "trace span and frame-kind names must be lowercase-dotted compile-time constants",
	Run:  run,
}

var nameRE = regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)*$`)

// methods are the name-taking entry points on trace types: Frame.Begin
// opens a stage span, Tracer.Start roots a frame trace.
var methods = map[string]bool{
	"Begin": true,
	"Start": true,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "trace" {
		return nil, nil // the tracer's own tests generate overflow names
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !methods[sel.Sel.Name] || !traceCallee(pass, sel) {
				return true
			}

			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"trace %s name must be a compile-time constant string (dynamic span names defeat timeline grouping and can overflow the frame span table)",
					sel.Sel.Name)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !nameRE.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"trace %s name %q must be lowercase dotted ([a-z0-9_] segments separated by '.')",
					sel.Sel.Name, name)
			}
			return true
		})
	}
	return nil, nil
}

// traceCallee resolves whether sel names a function or method defined in a
// package named "trace": Frame.Begin / Tracer.Start (method selections) or
// the package-level trace.Start.
func traceCallee(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if selection, ok := pass.TypesInfo.Selections[sel]; ok {
		fn, ok := selection.Obj().(*types.Func)
		if !ok {
			return false
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return false
		}
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Name() == "trace"
	}
	// Not a method selection: a qualified identifier like trace.Start.
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Name() == "trace"
}
