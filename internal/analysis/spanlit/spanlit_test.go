package spanlit_test

import (
	"testing"

	"sledzig/internal/analysis/analysistest"
	"sledzig/internal/analysis/spanlit"
)

func TestSpanlit(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), spanlit.Analyzer, "a")
}
