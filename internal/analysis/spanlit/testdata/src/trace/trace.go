// Package trace is a slim stand-in for sledzig/internal/obs/trace: the
// analyzer matches callees by the defining package's name, so the fixture
// only needs the same shape.
package trace

type Tracer struct{}

func (t *Tracer) Start(kind string) *Frame { return &Frame{} }

func Start(kind string) *Frame { return nil }

type Frame struct{}

type Mark struct{}

func (f *Frame) Begin(name string) Mark { return Mark{} }

func (m Mark) End() {}
