// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface that sledvet's analyzers use.
//
// The real x/tools module cannot be vendored into this repository (the build
// environment is offline and the module has no other dependencies), but the
// Go distribution itself proves the API shape is stable: cmd/vet ships a
// vendored copy of the same interfaces. Analyzers written against this
// package use the identical {Analyzer, Pass, Diagnostic} vocabulary, so they
// can be ported to the upstream framework by changing one import path if the
// dependency ever becomes available.
//
// Two drivers execute analyzers:
//
//   - internal/analysis/driver loads whole package patterns via
//     `go list -deps -export -json` (standalone `sledvet ./...` mode) and
//     also speaks the `go vet -vettool` single-unit JSON protocol.
//   - internal/analysis/analysistest type-checks small fixture packages under
//     testdata/src and diffs diagnostics against `// want "regexp"` comments.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check. The fields mirror
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line flags
	// (-<name>.<flag>) and //sledvet:ignore directives. It must be a valid
	// Go identifier.
	Name string

	// Doc is the help text: first line is a one-sentence summary.
	Doc string

	// Flags holds analyzer-specific flags. Drivers expose them prefixed
	// with the analyzer name.
	Flags flag.FlagSet

	// Run applies the analyzer to a single package and reports diagnostics
	// through pass.Report. The result value is unused by sledvet's drivers
	// but kept for API compatibility.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with the type-checked syntax of a single
// package, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if not found.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.TypesInfo.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// A Diagnostic is a message associated with a source location.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional
	Category string    // optional
	Message  string
}

// NewInfo returns a types.Info with every map populated, as both drivers
// and analysistest need full use/def/selection resolution.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
