package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses `src` as the body of one function and returns its CFG.
func parseBody(t testing.TB, src string) *CFG {
	t.Helper()
	g, err := buildBody(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return g
}

// buildBody wraps src in a function, parses it, and builds the CFG. Shared
// with FuzzCFGBuild, which cannot call t.Fatal on parse errors.
func buildBody(src string) (*CFG, error) {
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "body.go", file, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return New(fn.Body), nil
}

func TestStraightLine(t *testing.T) {
	g := parseBody(t, `x := 1; y := x; _ = y; return`)
	if s := g.Sanity(); s != "" {
		t.Fatal(s)
	}
	if !g.ExitReachable() {
		t.Fatal("straight-line function must reach exit")
	}
	if len(g.ReturnBlocks()) != 1 {
		t.Fatalf("want 1 return block, got %d", len(g.ReturnBlocks()))
	}
}

func TestIfElseBothPathsMerge(t *testing.T) {
	g := parseBody(t, `
if cond() {
	a()
} else {
	b()
}
c()`)
	if s := g.Sanity(); s != "" {
		t.Fatal(s)
	}
	// The merged block holding c() must be reachable from both branches.
	var cBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "c" {
						cBlock = b
					}
				}
			}
		}
	}
	if cBlock == nil {
		t.Fatal("no block holds c()")
	}
	if len(cBlock.Preds) != 2 {
		t.Fatalf("merge block should have 2 preds, got %d\n%s", len(cBlock.Preds), g.Dump())
	}
}

func TestUnconditionalLoopHasNoExit(t *testing.T) {
	g := parseBody(t, `for { work() }`)
	if g.ExitReachable() {
		t.Fatalf("for {} must not reach exit\n%s", g.Dump())
	}
}

func TestLoopWithBreakReachesExit(t *testing.T) {
	g := parseBody(t, `for { if done() { break }; work() }`)
	if !g.ExitReachable() {
		t.Fatalf("break must make exit reachable\n%s", g.Dump())
	}
}

func TestLabeledBreakFromSelect(t *testing.T) {
	// The engine's Stream feed loop: for + select + labeled break.
	g := parseBody(t, `
feed:
for {
	select {
	case <-a:
		break feed
	case v, ok := <-b:
		if !ok {
			break feed
		}
		use(v)
	}
}
done()`)
	if s := g.Sanity(); s != "" {
		t.Fatal(s)
	}
	if !g.ExitReachable() {
		t.Fatalf("labeled break must make exit reachable\n%s", g.Dump())
	}
}

func TestSelectWithoutCasesBlocksForever(t *testing.T) {
	g := parseBody(t, `select {}`)
	if g.ExitReachable() {
		t.Fatalf("select{} must not reach exit\n%s", g.Dump())
	}
}

func TestRangeOverChannelReachesExit(t *testing.T) {
	g := parseBody(t, `for v := range ch { use(v) }`)
	if !g.ExitReachable() {
		t.Fatal("range loop has a natural exit edge")
	}
}

func TestInfiniteLoopWithOnlyContinue(t *testing.T) {
	g := parseBody(t, `for { if x() { continue }; work() }`)
	if g.ExitReachable() {
		t.Fatalf("continue does not leave the loop\n%s", g.Dump())
	}
}

func TestPanicTerminatesBlock(t *testing.T) {
	g := parseBody(t, `if bad() { panic("boom") }; ok()`)
	var panics int
	for _, b := range g.Blocks {
		if b.Panics {
			panics++
		}
	}
	if panics != 1 {
		t.Fatalf("want exactly one panicking block, got %d\n%s", panics, g.Dump())
	}
	// The crash edge must not count as normal termination on its own.
	g2 := parseBody(t, `for { panic("always") }`)
	if g2.ExitReachable() {
		t.Fatal("a loop that only panics must not count as terminating")
	}
}

func TestOsExitTerminates(t *testing.T) {
	g := parseBody(t, `for { os.Exit(1) }`)
	if g.ExitReachable() {
		t.Fatal("os.Exit is a crash edge, not a normal exit")
	}
	found := false
	for _, b := range g.Blocks {
		if b.Panics {
			found = true
		}
	}
	if !found {
		t.Fatal("os.Exit must mark its block as panicking")
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g := parseBody(t, `
	i := 0
loop:
	i++
	if i < 10 {
		goto loop
	}
	if i > 100 {
		goto end
	}
	work()
end:
	return`)
	if s := g.Sanity(); s != "" {
		t.Fatal(s)
	}
	if !g.ExitReachable() {
		t.Fatalf("goto-built loop terminates\n%s", g.Dump())
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g := parseBody(t, `
switch x {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	c()
}
after()`)
	if s := g.Sanity(); s != "" {
		t.Fatal(s)
	}
	if !g.ExitReachable() {
		t.Fatal("switch must fall through to after()")
	}
	// With a default present there must be no direct head→done edge: the
	// only way past the switch is through a clause body.
	var aBlock, bBlock *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "a":
							aBlock = blk
						case "b":
							bBlock = blk
						}
					}
				}
				return true
			})
		}
	}
	if aBlock == nil || bBlock == nil {
		t.Fatal("case bodies not found")
	}
	// fallthrough: a's block must have an edge to b's block.
	found := false
	for _, s := range aBlock.Succs {
		if s == bBlock {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallthrough edge a→b missing\n%s", g.Dump())
	}
}

func TestReturnMakesRestDead(t *testing.T) {
	g := parseBody(t, `return
unreachable()`)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if strings.Contains(exprText(es.X), "unreachable") && b.Live {
					t.Fatal("code after return must be in a dead block")
				}
			}
		}
	}
}

func exprText(e ast.Expr) string {
	if call, ok := e.(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

func TestDeferAppearsAsNode(t *testing.T) {
	g := parseBody(t, `mu.Lock()
defer mu.Unlock()
work()`)
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("defer statement must appear as a block node")
	}
}

func TestForwardFixpointMayMust(t *testing.T) {
	// held on one branch only → May without Must at the merge.
	g := parseBody(t, `
if c() {
	acquire()
}
use()`)
	transfer := func(b *Block, in State) State {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "acquire" {
						in.Set("lock", May|Must)
					}
				}
				return true
			})
		}
		return in
	}
	_, out := Forward(g, State{}, transfer)
	var useBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && exprText(es.X) == "use" {
				useBlock = b
			}
		}
	}
	if useBlock == nil {
		t.Fatal("use() block not found")
	}
	st := out[useBlock]
	if st.Get("lock")&May == 0 {
		t.Fatalf("lock must be may-held at the merge, state %v", st)
	}
	if st.Get("lock")&Must != 0 {
		t.Fatalf("lock must not be must-held at the merge, state %v", st)
	}
}

func TestForwardLoopFixpointTerminates(t *testing.T) {
	g := parseBody(t, `
for i := 0; i < 10; i++ {
	if c() {
		acquire()
	} else {
		release()
	}
}
done()`)
	calls := 0
	transfer := func(b *Block, in State) State {
		calls++
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "acquire":
							in.Set("lock", May|Must)
						case "release":
							in.Set("lock", 0)
						}
					}
				}
				return true
			})
		}
		return in
	}
	Forward(g, State{}, transfer)
	if calls == 0 || calls > 10*len(g.Blocks) {
		t.Fatalf("fixpoint ran %d transfers over %d blocks", calls, len(g.Blocks))
	}
}
