package cfg

import "testing"

// FuzzCFGBuild feeds arbitrary function bodies to the builder and checks
// the two structural invariants everything downstream relies on: the
// builder never panics, and the graph passes Sanity (every edge is
// bidirectional, every live block is reachable from entry, dead blocks
// are marked dead rather than silently floating).
func FuzzCFGBuild(f *testing.F) {
	seeds := []string{
		"",
		"return",
		"x := 1; _ = x",
		"for {}",
		"for { break }",
		"for i := 0; i < 10; i++ { work() }",
		"for k, v := range m { use(k, v) }",
		"if a { b() } else { c() }",
		"switch x {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\ndefault:\n\tc()\n}",
		"select {}",
		"select {\ncase <-ch:\n\treturn\ndefault:\n}",
		"L:\nfor {\n\tselect {\n\tcase <-done:\n\t\tbreak L\n\t}\n}",
		"goto end\nend:",
		"defer f()\npanic(\"x\")",
		"go func() { for {} }()",
		"x := func() { return }\nx()",
		"switch v := y.(type) {\ncase int:\n\tuse(v)\n}",
		"for {\n\tif p() {\n\t\tcontinue\n\t}\n\tgoto out\n}\nout:",
		"os.Exit(1)\nunreachable()",
		"{\n\t{\n\t\treturn\n\t}\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		g, err := buildBody(body)
		if err != nil {
			t.Skip() // not parseable as a function body
		}
		if s := g.Sanity(); s != "" {
			t.Fatalf("Sanity violated for body %q: %s\n%s", body, s, g.Dump())
		}
	})
}
