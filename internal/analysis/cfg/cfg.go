// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and runs forward-dataflow fixpoints over them. It is the
// substrate of sledvet's dataflow analyzers (lockbalance, ctxexit,
// hotalloc, spanpair): where the original six analyzers match syntax, these
// prove path properties — "the lock is released on every return", "the
// goroutine can terminate", "no allocation reaches a successful return".
//
// The design follows golang.org/x/tools/go/cfg, specialized to what the
// analyzers need and implemented on the standard library alone:
//
//   - A CFG is a list of basic blocks. Block 0 is the entry; a single
//     virtual Exit block (no nodes) collects every way out of the function
//     — explicit returns, falling off the end, and calls that never return
//     (panic, os.Exit, log.Fatal*, runtime.Goexit). Edges into Exit from a
//     panicking block are distinguishable via Block.Panics, because most
//     invariants ("unlock before return") deliberately do not bind
//     crash paths.
//   - Every statement and control expression lands in exactly one block,
//     in source order, so a transfer function can walk Block.Nodes with
//     ast.Inspect and see operations in execution order (within the
//     usual single-expression evaluation-order caveats).
//   - if/for/range/switch/type-switch/select, labeled break/continue,
//     goto, fallthrough and defer are modeled structurally. Defer
//     statements appear as ordinary *ast.DeferStmt nodes; analyzers that
//     are defer-aware (lockbalance, spanpair) collect them themselves,
//     since the semantics they assign to a deferred call are their own.
//
// The companion flow.go provides the fixpoint engine: a keyed may/must bit
// lattice with a worklist solver, plus reachability helpers.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every basic block; Blocks[0] is Entry. Order is the
	// builder's creation order, which is close to (but not guaranteed to
	// be) source order.
	Blocks []*Block
	Entry  *Block
	// Exit is the virtual sink every terminating path reaches. It carries
	// no nodes and has no successors.
	Exit *Block
}

// A Block is a maximal straight-line sequence of AST nodes with a single
// entry point and a set of successor blocks.
type Block struct {
	Index int
	// Kind describes the block's structural role ("entry", "if.then",
	// "for.body", "select.case", ...). Diagnostic aid only.
	Kind string
	// Nodes are the statements and control expressions executed in this
	// block, in source order.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Live is true when the block is reachable from Entry.
	Live bool
	// Returns is true when the block ends in an explicit return statement.
	Returns bool
	// Panics is true when the block terminates by panicking or calling a
	// function that never returns; its edge to Exit is a crash edge.
	Panics bool
}

// Pos returns a position to anchor diagnostics about b: the first node's
// position, or NoPos for node-less blocks.
func (b *Block) Pos() token.Pos {
	if len(b.Nodes) > 0 {
		return b.Nodes[0].Pos()
	}
	return token.NoPos
}

// Last returns the final node of b, or nil.
func (b *Block) Last() ast.Node {
	if n := len(b.Nodes); n > 0 {
		return b.Nodes[n-1]
	}
	return nil
}

func (b *Block) String() string {
	return fmt.Sprintf("block %d (%s)", b.Index, b.Kind)
}

// lblock tracks the three kinds of jump target a label can name.
type lblock struct {
	goto_     *Block
	break_    *Block
	continue_ *Block
}

// targets is the stack of break/continue/fallthrough destinations
// established by enclosing for/range/switch/select statements.
type targets struct {
	tail         *targets
	break_       *Block
	continue_    *Block
	fallthrough_ *Block
}

type builder struct {
	g       *CFG
	current *Block
	targets *targets
	labels  map[string]*lblock
	// label is the pending label of a LabeledStmt whose statement is a
	// loop/switch/select, consumed by that statement to bind its
	// break/continue targets.
	label *lblock
}

// New builds the CFG of one function body. body may be any *ast.BlockStmt
// (a FuncDecl body or a FuncLit body). New never modifies the AST and is
// total: any parseable body yields a graph.
func New(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &builder{g: g, labels: make(map[string]*lblock)}
	b.current = b.newBlock("entry")
	g.Entry = g.Blocks[0]
	g.Exit = b.newBlock("exit")
	b.stmt(body)
	// Falling off the end of the body is an implicit return.
	b.jump(g.Exit)
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	markLive(g)
	return g
}

func markLive(g *CFG) {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	seen[g.Entry.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blk.Live = true
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// link adds the edge from → to once.
func link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an unconditional edge to target and
// continues building in a fresh (unreachable unless linked) block.
func (b *builder) jump(target *Block) {
	link(b.current, target)
	b.current = b.newBlock("unreachable")
}

func (b *builder) add(n ast.Node) {
	b.current.Nodes = append(b.current.Nodes, n)
}

// labeledBlock returns (creating on first use) the target record for name.
func (b *builder) labeledBlock(name string) *lblock {
	lb := b.labels[name]
	if lb == nil {
		lb = &lblock{}
		b.labels[name] = lb
	}
	return lb
}

func (b *builder) stmt(s ast.Stmt) {
	// Any statement other than a labeled loop/switch/select consumes a
	// pending label (its break/continue cannot bind).
	label := b.label
	b.label = nil

	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		// nothing

	case *ast.BlockStmt:
		for _, t := range s.List {
			b.stmt(t)
		}

	case *ast.LabeledStmt:
		lb := b.labeledBlock(s.Label.Name)
		if lb.goto_ == nil {
			lb.goto_ = b.newBlock("label." + s.Label.Name)
		}
		link(b.current, lb.goto_)
		b.current = lb.goto_
		b.label = lb
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		els := done
		if s.Else != nil {
			els = b.newBlock("if.else")
		}
		link(b.current, then)
		link(b.current, els)
		b.current = then
		b.stmt(s.Body)
		b.jump(done)
		if s.Else != nil {
			b.current = els
			b.stmt(s.Else)
			b.jump(done)
		}
		b.current = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		loop := b.newBlock("for.loop")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		post := loop
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		if label != nil {
			label.break_ = done
			label.continue_ = post
		}
		b.jump(loop)
		b.current = loop
		if s.Cond != nil {
			b.add(s.Cond)
			link(loop, body)
			link(loop, done)
		} else {
			// `for { ... }`: the only exits are break/return inside.
			link(loop, body)
		}
		b.targets = &targets{tail: b.targets, break_: done, continue_: post}
		b.current = body
		b.stmt(s.Body)
		b.jump(post)
		if s.Post != nil {
			b.current = post
			b.add(s.Post)
			b.jump(loop)
		}
		b.targets = b.targets.tail
		b.current = done

	case *ast.RangeStmt:
		b.add(s.X)
		loop := b.newBlock("range.loop")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		if label != nil {
			label.break_ = done
			label.continue_ = loop
		}
		b.jump(loop)
		b.current = loop
		// The iteration variables bind per step. Only Key/Value are added
		// (not the whole RangeStmt) so analyzers walking Block.Nodes never
		// see the loop body's nodes twice.
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		link(loop, body)
		link(loop, done)
		b.targets = &targets{tail: b.targets, break_: done, continue_: loop}
		b.current = body
		b.stmt(s.Body)
		b.jump(loop)
		b.targets = b.targets.tail
		b.current = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, false)

	case *ast.SelectStmt:
		entry := b.current
		done := b.newBlock("select.done")
		if label != nil {
			label.break_ = done
		}
		b.targets = &targets{tail: b.targets, break_: done}
		for _, cc := range s.Body.List {
			cc := cc.(*ast.CommClause)
			body := b.newBlock("select.case")
			link(entry, body)
			b.current = body
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			for _, t := range cc.Body {
				b.stmt(t)
			}
			b.jump(done)
		}
		b.targets = b.targets.tail
		// `select {}` blocks forever: entry keeps no successors here.
		b.current = done

	case *ast.BranchStmt:
		b.add(s)
		var target *Block
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				target = b.labeledBlock(s.Label.Name).break_
			} else if b.targets != nil {
				target = b.targets.break_
			}
		case token.CONTINUE:
			if s.Label != nil {
				target = b.labeledBlock(s.Label.Name).continue_
			} else if b.targets != nil {
				for t := b.targets; t != nil; t = t.tail {
					if t.continue_ != nil {
						target = t.continue_
						break
					}
				}
			}
		case token.GOTO:
			lb := b.labeledBlock(s.Label.Name)
			if lb.goto_ == nil {
				lb.goto_ = b.newBlock("label." + s.Label.Name)
			}
			target = lb.goto_
		case token.FALLTHROUGH:
			for t := b.targets; t != nil; t = t.tail {
				if t.fallthrough_ != nil {
					target = t.fallthrough_
					break
				}
			}
		}
		if target == nil {
			// Ill-formed (break outside loop, unknown label): treat as a
			// terminating statement rather than panicking — the type
			// checker rejects such code anyway, but the fuzzer feeds it.
			target = b.g.Exit
		}
		b.jump(target)

	case *ast.ReturnStmt:
		b.add(s)
		b.current.Returns = true
		b.jump(b.g.Exit)

	case *ast.ExprStmt:
		b.add(s)
		if isNoReturnCall(s.X) {
			b.current.Panics = true
			b.jump(b.g.Exit)
		}

	default:
		// Decl, assignment, inc/dec, send, go, defer: straight-line.
		b.add(s)
	}
}

// switchBody builds the clause structure shared by switch and type switch.
func (b *builder) switchBody(label *lblock, body *ast.BlockStmt, allowFallthrough bool) {
	entry := b.current
	done := b.newBlock("switch.done")
	if label != nil {
		label.break_ = done
	}
	var clauses []*ast.CaseClause
	for _, cc := range body.List {
		clauses = append(clauses, cc.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		bodies[i] = b.newBlock("switch.body")
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		// Conservatively, any clause may be selected from the head.
		link(entry, bodies[i])
		var ft *Block
		if allowFallthrough && i+1 < len(bodies) {
			ft = bodies[i+1]
		}
		b.targets = &targets{tail: b.targets, break_: done, fallthrough_: ft}
		b.current = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		for _, t := range cc.Body {
			b.stmt(t)
		}
		b.jump(done)
		b.targets = b.targets.tail
	}
	if !hasDefault {
		link(entry, done)
	}
	b.current = done
}

// noReturnFuncs names package-qualified calls that never return. The match
// is syntactic (identifier.selector), which covers the conventional import
// names; a renamed import merely loses the edge-precision, never soundness
// of reachability (the block keeps a fall-through successor).
var noReturnFuncs = map[string]bool{
	"os.Exit":        true,
	"log.Fatal":      true,
	"log.Fatalf":     true,
	"log.Fatalln":    true,
	"runtime.Goexit": true,
}

// isNoReturnCall reports whether e is a call that terminates the goroutine
// or process: the panic builtin or a known no-return function.
func isNoReturnCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return noReturnFuncs[x.Name+"."+fn.Sel.Name]
		}
	}
	return false
}

// Sanity checks the structural invariants FuzzCFGBuild asserts: the graph
// has entry and exit, the exit has no successors, predecessor lists agree
// with successor lists, and every edge endpoint is a block of this graph.
// It returns a description of the first violation, or "".
func (g *CFG) Sanity() string {
	if len(g.Blocks) == 0 || g.Entry == nil || g.Exit == nil {
		return "missing entry or exit"
	}
	if len(g.Exit.Succs) != 0 {
		return "exit block has successors"
	}
	index := make(map[*Block]bool, len(g.Blocks))
	for i, blk := range g.Blocks {
		if blk.Index != i {
			return fmt.Sprintf("block %d misindexed", i)
		}
		index[blk] = true
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if !index[s] {
				return fmt.Sprintf("%v has foreign successor", blk)
			}
			found := false
			for _, p := range s.Preds {
				if p == blk {
					found = true
					break
				}
			}
			if !found {
				return fmt.Sprintf("edge %v->%v missing from preds", blk, s)
			}
		}
	}
	return ""
}

// Dump renders the graph for debugging and golden tests.
func (g *CFG) Dump() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		if !blk.Live && len(blk.Nodes) == 0 && len(blk.Succs) == 0 {
			continue // builder residue
		}
		fmt.Fprintf(&sb, "%d[%s]", blk.Index, blk.Kind)
		if !blk.Live {
			sb.WriteString(" dead")
		}
		sb.WriteString(" ->")
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
