package cfg

// The forward-dataflow fixpoint engine. Facts are keyed by string (a lock
// expression, a span variable, ...) and carry two bits:
//
//   - May:  the fact holds on at least one path reaching this point.
//   - Must: the fact holds on every path reaching this point.
//
// Join is the natural lattice operation — May ors, Must ands — so a
// "may-held lock at exit" query is path-sensitive in the way that matters
// for leak checks, while "must-held" supports double-acquire checks. The
// lattice has finite height (two bits per key, finitely many keys per
// function), so any monotone transfer function reaches a fixpoint; the
// solver additionally bounds iteration defensively.

// Bits is the per-key dataflow value.
type Bits uint8

const (
	// May is set when the fact holds on some path.
	May Bits = 1 << iota
	// Must is set when the fact holds on every path.
	Must
)

// State maps fact keys to their dataflow bits. Keys absent from the map
// have the bottom value 0 ("does not hold on any path").
type State map[string]Bits

// Clone returns an independent copy of s.
func (s State) Clone() State {
	c := make(State, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Get returns the bits for key (0 when absent).
func (s State) Get(key string) Bits {
	return s[key]
}

// Set records bits for key, deleting the key at bottom.
func (s State) Set(key string, v Bits) {
	if v == 0 {
		delete(s, key)
		return
	}
	s[key] = v
}

// join merges two predecessor out-states: May ors, Must ands (a key
// missing from either side has Must unset).
func join(a, b State) State {
	out := make(State, len(a)+len(b))
	for k, va := range a {
		vb := b[k]
		v := (va | vb) & May
		if va&Must != 0 && vb&Must != 0 {
			v |= Must
		}
		out.Set(k, v)
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			out.Set(k, vb&May)
		}
	}
	return out
}

func statesEqual(a, b State) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Forward runs transfer over g to fixpoint and returns the in- and
// out-state of every live block. entry seeds the entry block's in-state;
// transfer must be monotone over the May/Must lattice (the usual shape —
// set bits on generating operations, clear on killing ones — is monotone).
// Dead blocks keep nil states.
func Forward(g *CFG, entry State, transfer func(b *Block, in State) State) (in, out map[*Block]State) {
	in = make(map[*Block]State, len(g.Blocks))
	out = make(map[*Block]State, len(g.Blocks))
	in[g.Entry] = entry.Clone()

	// Worklist over live blocks in creation order (≈ reverse post-order
	// for the structured graphs the builder emits).
	inList := make([]bool, len(g.Blocks))
	var list []*Block
	push := func(b *Block) {
		if b.Live && !inList[b.Index] {
			inList[b.Index] = true
			list = append(list, b)
		}
	}
	push(g.Entry)

	// Defensive bound: each block can be reprocessed at most once per bit
	// of lattice height per key; far below blocks² × 4 in practice.
	budget := (len(g.Blocks) + 1) * (len(g.Blocks) + 4) * 4
	for len(list) > 0 && budget > 0 {
		budget--
		b := list[0]
		list = list[1:]
		inList[b.Index] = false

		st := in[b]
		if st == nil {
			st = State{}
		}
		o := transfer(b, st.Clone())
		if prev, ok := out[b]; ok && statesEqual(prev, o) {
			continue
		}
		out[b] = o
		for _, s := range b.Succs {
			merged := o
			if cur, ok := in[s]; ok {
				merged = join(cur, o)
				if statesEqual(cur, merged) {
					continue
				}
			}
			in[s] = merged.Clone()
			push(s)
		}
	}
	return in, out
}

// CanReach reports whether a path exists from b (inclusive) to some block
// satisfying ok, following only Succs edges.
func (g *CFG) CanReach(b *Block, ok func(*Block) bool) bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{b}
	seen[b.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if ok(blk) {
			return true
		}
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// ExitReachable reports whether the function can terminate at all: some
// path from entry reaches Exit through a non-crash edge (a return, or
// falling off the end). A goroutine whose body fails this check can only
// leak or crash — the ctxexit invariant.
func (g *CFG) ExitReachable() bool {
	for _, p := range g.Exit.Preds {
		if p.Live && !p.Panics {
			return true
		}
	}
	return false
}

// ReturnBlocks returns the live predecessors of Exit that end in an
// explicit return statement.
func (g *CFG) ReturnBlocks() []*Block {
	var outBlocks []*Block
	for _, p := range g.Exit.Preds {
		if p.Live && p.Returns {
			outBlocks = append(outBlocks, p)
		}
	}
	return outBlocks
}

// ExitBlocks returns the live predecessors of Exit that terminate
// normally — explicit returns and the fall-off-the-end block — excluding
// crash edges.
func (g *CFG) ExitBlocks() []*Block {
	var outBlocks []*Block
	for _, p := range g.Exit.Preds {
		if p.Live && !p.Panics {
			outBlocks = append(outBlocks, p)
		}
	}
	return outBlocks
}
