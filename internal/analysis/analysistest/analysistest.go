// Package analysistest runs a sledvet analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixtures,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. A line that should
// be flagged carries a trailing comment of the form
//
//	x := rand.Int() // want `math/rand global`
//
// with one Go-quoted regular expression per expected diagnostic on that
// line. Lines without a want comment must produce no diagnostics. Fixture
// packages may import each other (resolved under testdata/src) and the
// standard library (resolved from compiler export data via `go list`).
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"sledzig/internal/analysis"
)

// TestData returns the testdata directory of the caller's package.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// Run loads each fixture package, applies the analyzer, filters
// //sledvet:ignore suppressions, and reports any mismatch between the
// diagnostics and the // want expectations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(testdata)
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			t.Errorf("loading fixture %q: %v", path, err)
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      l.fset,
			Files:     pkg.files,
			Pkg:       pkg.types,
			TypesInfo: pkg.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Errorf("analyzer %s on %q: %v", a.Name, path, err)
			continue
		}
		directives, malformed := analysis.Directives(l.fset, pkg.files)
		for _, d := range malformed {
			diags = append(diags, d)
		}
		diags = analysis.Suppress(l.fset, a.Name, directives, diags)
		checkWants(t, l.fset, pkg.files, diags)
	}
}

// checkWants matches diagnostics against // want comments by file:line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type want struct {
		re      *regexp.Regexp
		matched bool
		posn    token.Position
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				res, err := parseWant(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Errorf("%s: bad want comment: %v", posn, err)
					continue
				}
				key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
				for _, re := range res {
					wants[key] = append(wants[key], &want{re: re, posn: posn})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched pattern %q", w.posn, w.re)
			}
		}
	}
}

// parseWant tokenizes the payload of a want comment into compiled regexps.
// Both interpreted and raw Go string literals are accepted.
func parseWant(s string) ([]*regexp.Regexp, error) {
	var (
		sc   scanner.Scanner
		fset = token.NewFileSet()
		file = fset.AddFile("want", -1, len(s))
		res  []*regexp.Regexp
	)
	var scanErr error
	sc.Init(file, []byte(s), func(_ token.Position, msg string) { scanErr = fmt.Errorf("%s", msg) }, 0)
	for {
		_, tok, lit := sc.Scan()
		if scanErr != nil {
			return nil, scanErr
		}
		if tok == token.EOF || tok == token.SEMICOLON {
			break
		}
		if tok != token.STRING {
			return nil, fmt.Errorf("expected string literal, got %s", tok)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			return nil, err
		}
		res = append(res, re)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no patterns in want comment")
	}
	return res, nil
}

// ---- fixture loading ----

type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type loader struct {
	testdata string
	fset     *token.FileSet
	fixtures map[string]*fixturePkg
	loading  map[string]bool
	stdFiles map[string]string // package path -> export data file
	stdImp   types.Importer
}

func newLoader(testdata string) *loader {
	l := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		fixtures: make(map[string]*fixturePkg),
		loading:  make(map[string]bool),
		stdFiles: make(map[string]string),
	}
	l.stdImp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.stdFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return l
}

func (l *loader) fixtureDir(path string) string {
	return filepath.Join(l.testdata, "src", filepath.FromSlash(path))
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if p, ok := l.fixtures[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through fixture %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.fixtureDir(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var stdImports []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			ipath, _ := strconv.Unquote(spec.Path.Value)
			if _, err := os.Stat(l.fixtureDir(ipath)); err == nil {
				if _, err := l.load(ipath); err != nil {
					return nil, err
				}
			} else if ipath != "unsafe" {
				stdImports = append(stdImports, ipath)
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	if err := l.resolveStd(stdImports); err != nil {
		return nil, err
	}

	conf := &types.Config{
		Importer: importerFunc(l.importPkg),
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %v", path, err)
	}
	p := &fixturePkg{files: files, types: tpkg, info: info}
	l.fixtures[path] = p
	return p, nil
}

func (l *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.fixtures[path]; ok {
		return p.types, nil
	}
	return l.stdImp.Import(path)
}

// resolveStd locates export data for the given standard-library packages
// (and, via -deps, their transitive dependencies) with one go list call.
func (l *loader) resolveStd(paths []string) error {
	var missing []string
	for _, p := range paths {
		if _, ok := l.stdFiles[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, missing...)
	cmd := exec.Command("go", args...)
	out, err := cmd.Output()
	if err != nil {
		msg := ""
		if ee, ok := err.(*exec.ExitError); ok {
			msg = string(ee.Stderr)
		}
		return fmt.Errorf("go list %s: %v\n%s", strings.Join(missing, " "), err, msg)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err != nil {
			return fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			l.stdFiles[p.ImportPath] = p.Export
		}
	}
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
