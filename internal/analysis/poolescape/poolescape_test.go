package poolescape_test

import (
	"testing"

	"sledzig/internal/analysis/analysistest"
	"sledzig/internal/analysis/poolescape"
)

func TestPoolescape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poolescape.Analyzer, "a")
}
