// Package poolescape enforces the PR 3 scratch-pooling contract: a value
// obtained from a sync.Pool must stay inside the function frame that
// borrowed it and must be handed back.
//
// For every `x := pool.Get()` (with or without a type assertion) the
// analyzer checks, within the enclosing function:
//
//   - a matching `pool.Put(x)` exists — ideally `defer pool.Put(x)`;
//     without a deferred Put, every return statement after the Get must be
//     preceded by a Put (a position-based approximation of "Put on every
//     path");
//   - x is not returned;
//   - x is not stored into a struct field, map/slice element, package-level
//     variable, or sent on a channel;
//   - x is not captured by a function literal other than one invoked
//     immediately or via defer (an escaping closure or `go` statement may
//     outlive the frame).
//
// Aliases created with `y := x` inherit x's obligations. The analysis is
// intentionally function-local: a pool whose value legitimately crosses a
// function boundary needs a //sledvet:ignore with a reason.
package poolescape

import (
	"go/ast"
	"go/types"

	"sledzig/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc:  "sync.Pool values must be Put back in the borrowing function and must not escape it",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Analyze the declared function and every nested literal as
			// independent frames: each owns the Gets it performs.
			for _, frame := range frames(fn.Body) {
				analyzeFrame(pass, frame)
			}
		}
	}
	return nil, nil
}

// frames returns body plus the bodies of all function literals within it.
func frames(body *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

// isPoolMethod reports whether call invokes method name on a sync.Pool
// (or a type embedding one), resolved through the type checker.
func isPoolMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

type getSite struct {
	pos  ast.Node
	expr string // pool expression, for messages
}

type putSite struct {
	pos      ast.Node
	deferred bool
}

// analyzeFrame runs the whole check for one function body, not descending
// into nested literals except to classify captures and find deferred Puts.
func analyzeFrame(pass *analysis.Pass, body *ast.BlockStmt) {
	derived := map[types.Object]*getSite{} // borrowed values and their aliases
	puts := map[types.Object][]putSite{}
	var returns []*ast.ReturnStmt
	var escapes []func() // reported after collection, in source order

	// getCall returns the *ast.CallExpr of a pool Get, unwrapping a
	// surrounding type assertion, or nil.
	getCall := func(e ast.Expr) *ast.CallExpr {
		e = ast.Unparen(e)
		if ta, ok := e.(*ast.TypeAssertExpr); ok {
			e = ast.Unparen(ta.X)
		}
		call, ok := e.(*ast.CallExpr)
		if !ok || !isPoolMethod(pass, call, "Get") {
			return nil
		}
		return call
	}

	isDerived := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return nil
		}
		if _, ok := derived[obj]; ok {
			return obj
		}
		return nil
	}

	// recordPut registers pool.Put(x) calls found in call, optionally
	// inside a deferred closure.
	recordPut := func(call *ast.CallExpr, deferred bool) bool {
		if !isPoolMethod(pass, call, "Put") || len(call.Args) != 1 {
			return false
		}
		if obj := isDerived(call.Args[0]); obj != nil {
			puts[obj] = append(puts[obj], putSite{pos: call, deferred: deferred})
			return true
		}
		return false
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			// A literal is its own frame for Gets; here we only decide
			// whether it captures a borrowed value.
			for obj := range derived {
				obj := obj
				if usesObject(pass, s.Body, obj) {
					lit := s
					escapes = append(escapes, func() {
						pass.Reportf(lit.Pos(),
							"pooled %s.Get value %q is captured by a function literal that may outlive the frame; Put it here and let the closure borrow its own",
							derived[obj].expr, obj.Name())
					})
				}
			}
			return false

		case *ast.DeferStmt:
			// defer pool.Put(x)
			if recordPut(s.Call, true) {
				return false
			}
			// defer func() { ...; pool.Put(x); ... }()
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						recordPut(c, true)
					}
					return true
				})
				return false
			}
			return false

		case *ast.GoStmt:
			for _, arg := range s.Call.Args {
				if obj := isDerived(arg); obj != nil {
					pass.Reportf(s.Pos(),
						"pooled %s.Get value %q passed to a goroutine escapes the borrowing frame",
						derived[obj].expr, obj.Name())
				}
			}
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				for obj := range derived {
					if usesObject(pass, lit.Body, obj) {
						pass.Reportf(s.Pos(),
							"pooled %s.Get value %q is captured by a goroutine and escapes the borrowing frame",
							derived[obj].expr, obj.Name())
					}
				}
			}
			return false

		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) {
					break
				}
				lhs := s.Lhs[i]
				if call := getCall(rhs); call != nil {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							derived[obj] = &getSite{pos: call, expr: exprString(pass, call)}
						} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
							derived[obj] = &getSite{pos: call, expr: exprString(pass, call)}
						}
					} else {
						pass.Reportf(call.Pos(),
							"sync.Pool Get result must be bound to a local variable so its Put can be verified")
					}
					continue
				}
				if obj := isDerived(rhs); obj != nil {
					switch l := lhs.(type) {
					case *ast.Ident:
						if l.Name == "_" {
							continue
						}
						if def := pass.TypesInfo.Defs[l]; def != nil {
							derived[def] = derived[obj] // alias
						} else if use := pass.TypesInfo.Uses[l]; use != nil {
							if use.Parent() == pass.Pkg.Scope() {
								pass.Reportf(s.Pos(),
									"pooled %s.Get value %q stored in package-level variable %s escapes the borrowing frame",
									derived[obj].expr, obj.Name(), l.Name)
							} else {
								derived[use] = derived[obj]
							}
						}
					case *ast.SelectorExpr:
						pass.Reportf(s.Pos(),
							"pooled %s.Get value %q stored in field %s outlives the borrowing frame",
							derived[obj].expr, obj.Name(), exprString(pass, l))
					case *ast.IndexExpr:
						pass.Reportf(s.Pos(),
							"pooled %s.Get value %q stored in a container element outlives the borrowing frame",
							derived[obj].expr, obj.Name())
					}
				}
			}
			return true

		case *ast.SendStmt:
			if obj := isDerived(s.Value); obj != nil {
				pass.Reportf(s.Pos(),
					"pooled %s.Get value %q sent on a channel escapes the borrowing frame",
					derived[obj].expr, obj.Name())
			}
			return true

		case *ast.ReturnStmt:
			returns = append(returns, s)
			for _, res := range s.Results {
				if obj := isDerived(res); obj != nil {
					pass.Reportf(s.Pos(),
						"pooled %s.Get value %q is returned and escapes the borrowing frame",
						derived[obj].expr, obj.Name())
				}
			}
			return true

		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if recordPut(call, false) {
					return false
				}
				if c := getCall(s.X); c != nil {
					pass.Reportf(c.Pos(),
						"sync.Pool Get result must be bound to a local variable so its Put can be verified")
					return false
				}
			}
			return true

		case *ast.CallExpr:
			// An immediately-invoked literal runs synchronously inside the
			// frame — using a borrowed value there is not a capture.
			if _, ok := ast.Unparen(s.Fun).(*ast.FuncLit); ok {
				for _, arg := range s.Args {
					ast.Inspect(arg, walk)
				}
				return false
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)

	for _, report := range escapes {
		report()
	}

	// Put coverage per borrowed value (aliases share a getSite and any of
	// them satisfies the obligation).
	type obligation struct {
		site    *getSite
		objs    []types.Object
		puts    []putSite
		someput bool
	}
	bySite := map[*getSite]*obligation{}
	var order []*obligation
	for obj, site := range derived {
		ob := bySite[site]
		if ob == nil {
			ob = &obligation{site: site}
			bySite[site] = ob
			order = append(order, ob)
		}
		ob.objs = append(ob.objs, obj)
		if ps, ok := puts[obj]; ok {
			ob.puts = append(ob.puts, ps...)
			ob.someput = true
		}
	}
	for _, ob := range order {
		if !ob.someput {
			pass.Reportf(ob.site.pos.Pos(),
				"result of %s is never Put back in this function; defer the Put right after Get (or //sledvet:ignore with the cross-function ownership story)",
				ob.site.expr)
			continue
		}
		deferred := false
		for _, p := range ob.puts {
			if p.deferred {
				deferred = true
			}
		}
		if deferred {
			continue
		}
		// No deferred Put: every return after the Get needs a Put
		// positioned between them.
		getPos := ob.site.pos.Pos()
		for _, ret := range returns {
			if ret.Pos() <= getPos {
				continue
			}
			covered := false
			for _, p := range ob.puts {
				if p.pos.Pos() > getPos && p.pos.End() <= ret.Pos() {
					covered = true
					break
				}
			}
			if !covered {
				pass.Reportf(ret.Pos(),
					"return may leak the value borrowed from %s at line %d; use `defer Put` or Put before every return",
					ob.site.expr, pass.Fset.Position(getPos).Line)
			}
		}
	}
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// exprString renders the receiver of a Get/Put call for diagnostics.
func exprString(pass *analysis.Pass, e ast.Expr) string {
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return exprString(pass, sel.X)
		}
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(pass, v.X) + "." + v.Sel.Name
	default:
		return "pool"
	}
}
