// Fixture for the poolescape analyzer: the scratch-pooling contract.
package a

import "sync"

type scratch struct{ buf []byte }

var pool = sync.Pool{New: func() any { return new(scratch) }}

var global *scratch

// DeferPut is the canonical pattern used across the codebase — allowed.
func DeferPut() int {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	return len(s.buf)
}

// DeferClosurePut releases through a deferred closure — allowed.
func DeferClosurePut() int {
	s := pool.Get().(*scratch)
	defer func() { pool.Put(s) }()
	return len(s.buf)
}

// PutEveryPath puts before each return without defer — allowed.
func PutEveryPath(n int) int {
	s := pool.Get().(*scratch)
	if n < 0 {
		pool.Put(s)
		return 0
	}
	pool.Put(s)
	return len(s.buf)
}

// NeverPut borrows and forgets.
func NeverPut() int {
	s := pool.Get().(*scratch) // want `never Put back`
	return len(s.buf)
}

// EarlyReturnLeak puts on the happy path only.
func EarlyReturnLeak(n int) int {
	s := pool.Get().(*scratch)
	if n < 0 {
		return 0 // want `may leak the value borrowed`
	}
	pool.Put(s)
	return 1
}

// Returned hands the borrowed value to the caller.
func Returned() *scratch {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	return s // want `is returned and escapes`
}

// StoredInGlobal parks the value beyond the frame.
func StoredInGlobal() {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	global = s // want `stored in package-level variable`
}

type holder struct{ s *scratch }

// StoredInField outlives the frame through a struct.
func StoredInField(h *holder) {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	h.s = s // want `stored in field`
}

// SentOnChannel escapes to another goroutine.
func SentOnChannel(ch chan *scratch) {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	ch <- s // want `sent on a channel`
}

// Captured leaks through a closure that outlives the frame.
func Captured() func() int {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	return func() int { return len(s.buf) } // want `captured by a function literal`
}

// GoCaptured leaks into a goroutine.
func GoCaptured() {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	go func() { _ = len(s.buf) }() // want `captured by a goroutine`
}

// Unbound cannot be verified at all.
func Unbound() {
	pool.Get() // want `must be bound to a local variable`
}

// AliasPut releases through an alias — allowed.
func AliasPut() {
	s := pool.Get().(*scratch)
	alias := s
	defer pool.Put(alias)
	_ = s.buf
}

// AliasLeak returns through an alias.
func AliasLeak() *scratch {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	alias := s
	return alias // want `is returned and escapes`
}

// IIFE uses the value in an immediately-invoked literal — allowed.
func IIFE() int {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	n := 0
	func() { n = len(s.buf) }()
	return n
}

// CrossFunction documents the audited escape hatch for ownership transfer.
func CrossFunction() *scratch {
	//sledvet:ignore poolescape ownership transfers to the caller, released in Close
	s := pool.Get().(*scratch)
	return s // want `is returned and escapes`
}
