package driver

// Machine-readable diagnostic output. Two formats:
//
//   - JSON: sledvet's own schema (documented in docs/static-analysis.md,
//     validated by ValidateJSON — CI runs `sledvet -check-json` over the
//     artifact it just produced so the schema and the emitter cannot
//     drift apart silently).
//   - SARIF 2.1.0: the minimal subset code-scanning UIs need to annotate
//     pull requests (tool + rules + results with physical locations).

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"sledzig/internal/analysis"
)

// JSONReport is the top-level object `sledvet -json` emits.
//
// Schema (version 1): every diagnostic carries the analyzer name, a file
// path (relative to the working directory when possible), 1-based line
// and column, and the message text. Consumers must reject reports whose
// version they do not know.
type JSONReport struct {
	Version     int        `json:"version"`
	Diagnostics []JSONDiag `json:"diagnostics"`
}

// JSONDiag is one diagnostic in a JSONReport.
type JSONDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonVersion is the current JSONReport schema version.
const jsonVersion = 1

// Report converts driver diagnostics into the JSON schema. The
// Diagnostics field is always non-nil so a clean run serializes as
// `"diagnostics": []`, not `null`.
func Report(diags []Diag) JSONReport {
	r := JSONReport{Version: jsonVersion, Diagnostics: []JSONDiag{}}
	for _, d := range diags {
		r.Diagnostics = append(r.Diagnostics, JSONDiag{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	return r
}

// WriteJSON emits the version-1 JSON report for diags.
func WriteJSON(w io.Writer, diags []Diag) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(Report(diags))
}

// ValidateJSON strictly decodes a JSON report and checks the version-1
// schema invariants. It returns the number of diagnostics and the first
// violation found.
func ValidateJSON(r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rep JSONReport
	if err := dec.Decode(&rep); err != nil {
		return 0, fmt.Errorf("not a sledvet JSON report: %v", err)
	}
	if rep.Version != jsonVersion {
		return 0, fmt.Errorf("unsupported report version %d (want %d)", rep.Version, jsonVersion)
	}
	if rep.Diagnostics == nil {
		return 0, fmt.Errorf("diagnostics must be an array, not null")
	}
	for i, d := range rep.Diagnostics {
		switch {
		case d.Analyzer == "":
			return 0, fmt.Errorf("diagnostics[%d]: missing analyzer", i)
		case d.File == "":
			return 0, fmt.Errorf("diagnostics[%d]: missing file", i)
		case d.Line < 1:
			return 0, fmt.Errorf("diagnostics[%d]: line %d is not 1-based", i, d.Line)
		case d.Column < 1:
			return 0, fmt.Errorf("diagnostics[%d]: column %d is not 1-based", i, d.Column)
		case d.Message == "":
			return 0, fmt.Errorf("diagnostics[%d]: missing message", i)
		}
	}
	// Trailing garbage after the report object is also a malformed artifact.
	if _, err := dec.Token(); err != io.EOF {
		return 0, fmt.Errorf("trailing data after report object")
	}
	return len(rep.Diagnostics), nil
}

// SARIF 2.1.0 skeleton — only the fields PR-annotation consumers read.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits diags as a single-run SARIF 2.1.0 log. analyzers
// populates the rule table (one rule per analyzer, described by the first
// line of its Doc); the pseudo-rule "sledvet" covers driver-level
// diagnostics such as malformed ignore directives.
func WriteSARIF(w io.Writer, diags []Diag, analyzers []*analysis.Analyzer) error {
	rules := []sarifRule{{
		ID:               "sledvet",
		ShortDescription: sarifText{Text: "sledvet driver diagnostics (directive hygiene)"},
	}}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: strings.SplitN(a.Doc, "\n", 2)[0]},
		})
	}
	results := []sarifResult{}
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: toURI(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "sledvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}

// toURI normalizes a file path for SARIF's artifactLocation.uri field.
func toURI(path string) string {
	return strings.ReplaceAll(path, "\\", "/")
}
