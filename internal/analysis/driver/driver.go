// Package driver executes sledvet analyzers over Go packages.
//
// Two modes share the same execution core:
//
//   - Load/Run: standalone mode. Packages are enumerated with
//     `go list -deps -export -json`, dependencies are imported from compiler
//     export data (so only the target packages are type-checked from source),
//     and every analyzer runs over every target package.
//   - RunUnit (unit.go): the `go vet -vettool` protocol, one compilation
//     unit per invocation, configured by the JSON .cfg file the go command
//     writes.
//
// Neither mode needs the network or anything beyond the Go toolchain that
// built the tree.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"sledzig/internal/analysis"
)

// A Package is one type-checked target package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	GoFiles    []string
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Load enumerates patterns with the go tool and type-checks every matched
// (non-dependency) package from source, importing dependencies from export
// data. dir is the working directory for the go invocation ("" = cwd).
func Load(dir string, patterns []string) ([]*Package, error) {
	// -e keeps go list's exit status 0 for broken packages and reports
	// them through each package's Error field instead, so the caller gets
	// one clear "cannot analyze <pkg>: <why>" rather than a raw stderr
	// dump (and never a silent empty run).
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	byPath := make(map[string]*listPkg)
	var order []*listPkg
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		byPath[p.ImportPath] = p
		order = append(order, p)
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		p, ok := byPath[path]
		if !ok || p.Export == "" {
			return "", false
		}
		return p.Export, true
	})

	var pkgs []*Package
	for _, p := range order {
		if p.DepOnly {
			continue
		}
		// A broken target surfaces its error BEFORE the shape checks: a
		// package that failed to load often has no Name/GoFiles, and
		// skipping it on shape would silently shrink the run to nothing.
		if p.Error != nil {
			return nil, fmt.Errorf("cannot analyze %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Name == "" || len(p.GoFiles) == 0 {
			continue // test-only or empty directory listed as a pattern
		}
		pkg, err := check(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		// `go list` exits 0 when a wildcard matches nothing (it only
		// warns on stderr), so an explicit error here is the difference
		// between "clean tree" and "analyzed nothing".
		return nil, fmt.Errorf("no Go packages matched %s: nothing was analyzed", strings.Join(patterns, " "))
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer that reads compiler export data,
// locating the file for each package path through lookup.
func exportImporter(fset *token.FileSet, lookup func(string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// check parses and type-checks one listed package from source.
func check(fset *token.FileSet, imp types.Importer, p *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	if p.Module != nil && p.Module.GoVersion != "" {
		conf.GoVersion = "go" + p.Module.GoVersion
	}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return &Package{
		Path:  p.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// A Diag is one positioned diagnostic produced by Run.
type Diag struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Run executes every analyzer over every package, applies //sledvet:ignore
// suppression, and returns the surviving diagnostics in stable order.
// Analyzer runtime errors are returned, not panicked.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diag, error) {
	var out []Diag
	for _, pkg := range pkgs {
		directives, malformed := analysis.Directives(pkg.Fset, pkg.Files)
		for _, d := range malformed {
			out = append(out, Diag{Analyzer: "sledvet", Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
		}
		for _, d := range analysis.UnknownNames(directives, analyzers) {
			posn := pkg.Fset.Position(d.Pos)
			if strings.HasSuffix(posn.Filename, "_test.go") {
				continue
			}
			out = append(out, Diag{Analyzer: "sledvet", Pos: posn, Message: d.Message})
		}
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
			diags = analysis.Suppress(pkg.Fset, a.Name, directives, diags)
			for _, d := range diags {
				posn := pkg.Fset.Position(d.Pos)
				// The invariants bind production code: tests may compare
				// floats exactly, read the wall clock for deadlines, and
				// improvise metric names. (Standalone mode never parses
				// test files; the go vet protocol hands them to us.)
				if strings.HasSuffix(posn.Filename, "_test.go") {
					continue
				}
				out = append(out, Diag{Analyzer: a.Name, Pos: posn, Message: d.Message})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Relativize rewrites absolute diagnostic paths below base into relative
// ones for stable, readable output.
func Relativize(diags []Diag, base string) {
	for i := range diags {
		if rel, err := filepath.Rel(base, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
}
