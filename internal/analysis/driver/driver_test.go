package driver

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sledzig/internal/analysis"
)

// writeModule materializes a throwaway module so Load can be pointed at
// deliberately broken targets without touching the real tree.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadErrorsWhenNothingMatches(t *testing.T) {
	// A wildcard over an existing directory containing no Go files: go list
	// exits 0 with only a stderr warning, which is exactly the silent-empty-
	// run trap Load must convert into an error.
	dir := writeModule(t, map[string]string{
		"go.mod":      "module example.test/empty\n\ngo 1.21\n",
		"sub/KEEP.md": "no Go code here\n",
	})
	_, err := Load(dir, []string{"./sub/..."})
	if err == nil {
		t.Fatal("Load succeeded on a pattern matching no packages; want an explicit error, not a silent empty run")
	}
	if !strings.Contains(err.Error(), "nothing was analyzed") {
		t.Errorf("error %q does not explain that nothing was analyzed", err)
	}
}

func TestLoadErrorsOnNonexistentPath(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.test/empty\n\ngo 1.21\n",
	})
	_, err := Load(dir, []string{"./nosuchdir/..."})
	if err == nil {
		t.Fatal("Load succeeded on a nonexistent path; want a clear error")
	}
	if !strings.Contains(err.Error(), "cannot analyze") && !strings.Contains(err.Error(), "nothing was analyzed") {
		t.Errorf("error %q does not identify the bad pattern", err)
	}
}

func TestLoadErrorsOnTypeErrorPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module example.test/broken\n\ngo 1.21\n",
		"main.go": "package main\n\nfunc main() {\n\tvar s string = 42\n\t_ = s\n}\n",
	})
	_, err := Load(dir, []string{"./..."})
	if err == nil {
		t.Fatal("Load succeeded on a package with a type error; want a clear failure")
	}
	// Whether go list's -export build or our own typecheck catches it first,
	// the error must name the problem rather than panic or return nothing.
	msg := err.Error()
	if !strings.Contains(msg, "example.test/broken") && !strings.Contains(msg, "cannot use 42") {
		t.Errorf("error %q does not identify the broken package", err)
	}
}

func TestLoadErrorsOnSyntaxErrorPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module example.test/syntax\n\ngo 1.21\n",
		"main.go": "package main\n\nfunc main() {\n", // unclosed body
	})
	_, err := Load(dir, []string{"./..."})
	if err == nil {
		t.Fatal("Load succeeded on a package with a syntax error; want a clear failure")
	}
}

// checkSource type-checks one in-memory file into a driver Package, the
// same shape Load produces, so Run can be exercised hermetically.
func checkSource(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewInfo()
	conf := &types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

func TestRunReportsUnknownIgnoreNames(t *testing.T) {
	pkg := checkSource(t, `package p

//sledvet:ignore lockbalence caller unlocks later
var A int
`)
	dummy := &analysis.Analyzer{
		Name: "lockbalance",
		Doc:  "dummy",
		Run:  func(*analysis.Pass) (any, error) { return nil, nil },
	}
	diags, err := Run([]*Package{pkg}, []*analysis.Analyzer{dummy})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "sledvet" {
		t.Errorf("diagnostic attributed to %q, want sledvet", d.Analyzer)
	}
	if !strings.Contains(d.Message, `"lockbalence"`) {
		t.Errorf("message %q does not name the unknown analyzer", d.Message)
	}
	if d.Pos.Line != 3 {
		t.Errorf("diagnostic at line %d, want 3 (the directive)", d.Pos.Line)
	}
}

func TestRunSuppressesWithDirective(t *testing.T) {
	pkg := checkSource(t, `package p

//sledvet:ignore noisy fixture exercises the directive path
var A int

var B int
`)
	noisy := &analysis.Analyzer{
		Name: "noisy",
		Doc:  "flags every package-level var",
		Run: func(pass *analysis.Pass) (any, error) {
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					pass.Reportf(decl.Pos(), "var declared")
				}
			}
			return nil, nil
		},
	}
	diags, err := Run([]*Package{pkg}, []*analysis.Analyzer{noisy})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (A suppressed, B kept): %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 6 {
		t.Errorf("survivor at line %d, want 6", diags[0].Pos.Line)
	}
}
