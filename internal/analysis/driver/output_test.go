package driver

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"sledzig/internal/analysis"
)

func sampleDiags() []Diag {
	return []Diag{
		{
			Analyzer: "lockbalance",
			Pos:      token.Position{Filename: "internal/engine/engine.go", Line: 42, Column: 2},
			Message:  "mu may still be held",
		},
		{
			Analyzer: "sledvet",
			Pos:      token.Position{Filename: "internal/obs/obs.go", Line: 7, Column: 1},
			Message:  `//sledvet:ignore names unknown analyzer "nope"`,
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleDiags()); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("emitter produced an invalid report: %v\n%s", err, buf.String())
	}
	if n != 2 {
		t.Errorf("validated %d diagnostics, want 2", n)
	}
}

func TestJSONEmptyRunIsValidArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Errorf("clean run must serialize diagnostics as [], got:\n%s", buf.String())
	}
	if n, err := ValidateJSON(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Errorf("ValidateJSON = (%d, %v), want (0, nil)", n, err)
	}
}

func TestValidateJSONRejectsBadReports(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"not json", "garbage", "not a sledvet JSON report"},
		{"wrong version", `{"version":2,"diagnostics":[]}`, "unsupported report version"},
		{"null diagnostics", `{"version":1,"diagnostics":null}`, "must be an array"},
		{"unknown field", `{"version":1,"diagnostics":[],"extra":true}`, "not a sledvet JSON report"},
		{"missing analyzer", `{"version":1,"diagnostics":[{"analyzer":"","file":"a.go","line":1,"column":1,"message":"m"}]}`, "missing analyzer"},
		{"zero line", `{"version":1,"diagnostics":[{"analyzer":"x","file":"a.go","line":0,"column":1,"message":"m"}]}`, "not 1-based"},
		{"missing message", `{"version":1,"diagnostics":[{"analyzer":"x","file":"a.go","line":1,"column":1,"message":""}]}`, "missing message"},
		{"trailing data", `{"version":1,"diagnostics":[]}{}`, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateJSON(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted invalid report %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestWriteSARIF(t *testing.T) {
	analyzers := []*analysis.Analyzer{
		{Name: "lockbalance", Doc: "check lock/unlock balance on every path\n\nlong text"},
		{Name: "spanpair", Doc: "check trace span pairing"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleDiags(), analyzers); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "sledvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Rules: the sledvet pseudo-rule plus one per analyzer, with first
	// Doc lines as descriptions.
	if len(run.Tool.Driver.Rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(run.Tool.Driver.Rules))
	}
	if run.Tool.Driver.Rules[0].ID != "sledvet" {
		t.Errorf("rule 0 = %q, want sledvet pseudo-rule first", run.Tool.Driver.Rules[0].ID)
	}
	if got := run.Tool.Driver.Rules[1].ShortDescription.Text; strings.Contains(got, "long text") {
		t.Errorf("rule description %q should be only the first Doc line", got)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "lockbalance" || r.Level != "warning" {
		t.Errorf("result 0 = %s/%s, want lockbalance/warning", r.RuleID, r.Level)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/engine/engine.go" || loc.Region.StartLine != 42 {
		t.Errorf("result 0 location = %s:%d", loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
}
