package driver_test

import (
	"testing"

	"sledzig/internal/analysis/all"
	"sledzig/internal/analysis/driver"
)

// BenchmarkSledvetWholeTree measures the full eleven-analyzer suite over
// every package in the module — the cost `make lint` pays on each run.
// Loading (go list + typecheck) happens once outside the timed region;
// the benchmark isolates analyzer execution, which is where CFG building
// and dataflow fixpoints dominate.
func BenchmarkSledvetWholeTree(b *testing.B) {
	pkgs, err := driver.Load("", []string{"sledzig/..."})
	if err != nil {
		b.Fatal(err)
	}
	suite := all.Analyzers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := driver.Run(pkgs, suite); err != nil {
			b.Fatal(err)
		}
	}
}
