package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"log"
	"os"

	"sledzig/internal/analysis"
)

// UnitConfig is the JSON compilation-unit description the go command hands
// to a -vettool per analyzed package. The field set mirrors the
// x/tools/go/analysis/unitchecker.Config wire format (the contract of
// `go vet -vettool`); fields sledvet does not need are still decoded so the
// schema stays documented in one place.
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes the single compilation unit described by cfgFile and
// exits the process with the protocol's status code: 0 for success, 1 when
// diagnostics were reported, a fatal log otherwise. It is the counterpart
// of unitchecker.Run for the sledvet analyzer set (sledvet keeps no
// cross-package facts, so the .vetx output is always empty).
func RunUnit(cfgFile string, analyzers []*analysis.Analyzer) {
	cfg, err := readUnitConfig(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	diags, err := runUnit(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}
	// The go command requires the facts file to exist after every run,
	// even for fact-free tools.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Fatalf("failed to write facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}
	exit := 0
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
		exit = 1
	}
	os.Exit(exit)
}

func readUnitConfig(cfgFile string) (*UnitConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

func runUnit(cfg *UnitConfig, analyzers []*analysis.Analyzer) ([]Diag, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compiled := exportImporter(fset, func(path string) (string, bool) {
		file, ok := cfg.PackageFile[path]
		return file, ok
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath] // resolve vendoring, etc
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compiled.Import(path)
	})

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	conf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	pkg := &Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	return Run([]*Package{pkg}, analyzers)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
