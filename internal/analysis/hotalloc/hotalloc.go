// Package hotalloc enforces the allocation contracts of SledZig's hot
// paths statically. The repo already gates allocs/op through benchdiff,
// but a benchmark only sees the inputs it runs: an allocation hiding on a
// rarely-taken-but-successful branch (a lazy buffer grow without its
// capacity guard, a closure materialized per frame, an argument boxed
// into an interface) slips the gate until a workload finds it. This
// analyzer proves the property on every successful path instead.
//
// A function opts in through a doc-comment directive:
//
//	//sledzig:noalloc            — strict: no allocation on any path that
//	                               can reach a successful return
//	//sledzig:noalloc budget=N   — amortized: a bounded number of one-time
//	                               allocations is part of the contract
//	                               (mirroring MaxEncodeAllocs); only
//	                               per-iteration allocations inside loops
//	                               are defects
//
// "Successful return" means a return whose error results are all literal
// nil, or falling off the end; error returns and panic paths are cold and
// free to allocate (fmt.Errorf is fine there). The CFG decides hotness:
// a block is hot when it can reach a success exit.
//
// Flagged operations in hot blocks (strict) or loops (budget):
//
//   - make / new / append
//   - slice and map composite literals, and &T{...}
//   - string ↔ []byte/[]rune conversions
//   - function literals that capture variables (strict only)
//   - boxing a non-pointer concrete value into an interface parameter
//     (strict only)
//
// Two idioms are exempt because they are how 0 allocs/op is achieved:
// anything inside an if whose condition consults cap()/len() or compares
// against nil (the amortized-grow guard), and sync.Pool Get/Put calls.
// Genuine contract exceptions take //sledvet:ignore hotalloc with the
// reasoning written down.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"sledzig/internal/analysis"
	"sledzig/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "//sledzig:noalloc functions must not allocate on paths reaching a successful return",
	Run:  run,
}

const directivePrefix = "//sledzig:noalloc"

type directive struct {
	budget int // -1 = strict
	pos    token.Pos
}

// parseDirective scans a FuncDecl doc comment for the noalloc directive.
// The second return is a malformed-directive message ("" when fine).
func parseDirective(doc *ast.CommentGroup) (*directive, string, token.Pos) {
	if doc == nil {
		return nil, "", token.NoPos
	}
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, directivePrefix) {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
		if rest == "" {
			return &directive{budget: -1, pos: c.Pos()}, "", c.Pos()
		}
		if v, ok := strings.CutPrefix(rest, "budget="); ok {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err == nil && n >= 0 {
				return &directive{budget: n, pos: c.Pos()}, "", c.Pos()
			}
		}
		return nil, "malformed //sledzig:noalloc directive: want nothing or budget=<n>, got " + strconv.Quote(rest), c.Pos()
	}
	return nil, "", token.NoPos
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			// Malformed directives anchor at the func keyword: directive
			// comment lines cannot carry fixture want-comments themselves.
			d, malformed, _ := parseDirective(fn.Doc)
			if malformed != "" {
				pass.Reportf(fn.Pos(), "%s", malformed)
				continue
			}
			if d == nil || fn.Body == nil {
				continue
			}
			check(pass, fn, d)
		}
	}
	return nil, nil
}

func check(pass *analysis.Pass, fn *ast.FuncDecl, d *directive) {
	g := cfg.New(fn.Body)

	// Classify exit blocks: success = all error results literal nil, or
	// fall-off. If no return qualifies (e.g. every return propagates a
	// possibly-nil error variable), treat all non-crash exits as success
	// so the contract still binds.
	success := map[*cfg.Block]bool{}
	anySuccess := false
	for _, b := range g.ExitBlocks() {
		ok := true
		if b.Returns {
			if ret, isRet := b.Last().(*ast.ReturnStmt); isRet {
				ok = successfulReturn(pass, fn, ret)
			}
		}
		success[b] = ok
		if ok {
			anySuccess = true
		}
	}
	if !anySuccess {
		for _, b := range g.ExitBlocks() {
			success[b] = true
		}
	}
	hot := func(b *cfg.Block) bool {
		return g.CanReach(b, func(x *cfg.Block) bool { return success[x] })
	}

	// Syntactic context ranges: capacity-guard bodies, loop bodies, and
	// sync.Pool call spans.
	var guards, loops, pools []span
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if isCapacityGuard(s.Cond) {
				guards = append(guards, span{s.Body.Pos(), s.Body.End()})
			}
		case *ast.ForStmt:
			loops = append(loops, span{s.Body.Pos(), s.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{s.Body.Pos(), s.Body.End()})
		case *ast.CallExpr:
			if isPoolMethod(pass, s, "Get") || isPoolMethod(pass, s, "Put") {
				pools = append(pools, span{s.Pos(), s.End()})
			}
		}
		return true
	})
	guarded := func(p token.Pos) bool { return within(guards, p) }
	inLoop := func(p token.Pos) bool { return within(loops, p) }
	inPool := func(p token.Pos) bool { return within(pools, p) }

	strict := d.budget < 0
	mode := "//sledzig:noalloc"
	if !strict {
		mode = "//sledzig:noalloc budget=" + strconv.Itoa(d.budget)
	}
	report := func(n ast.Node, what string) {
		if guarded(n.Pos()) {
			return // amortized-grow idiom
		}
		if strict {
			pass.Reportf(n.Pos(), "%s on a path to a successful return of %s function %s",
				what, mode, fn.Name.Name)
			return
		}
		if inLoop(n.Pos()) {
			pass.Reportf(n.Pos(), "%s inside a loop of %s function %s: allocates per iteration, not once",
				what, mode, fn.Name.Name)
		}
	}

	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		if strict && !hot(b) {
			continue // cold path: error handling may allocate
		}
		for _, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.FuncLit:
					if strict {
						if capt := captured(pass, s); capt != "" {
							report(s, "function literal capturing "+capt)
						}
					}
					return false // interior is not this function's contract
				case *ast.CallExpr:
					checkCall(pass, s, strict, inPool, report)
				case *ast.CompositeLit:
					if t := pass.TypeOf(s); t != nil {
						switch t.Underlying().(type) {
						case *types.Slice:
							report(s, "slice literal")
						case *types.Map:
							report(s, "map literal")
						}
					}
				case *ast.UnaryExpr:
					if s.Op == token.AND {
						if _, ok := ast.Unparen(s.X).(*ast.CompositeLit); ok {
							report(s, "heap-allocated composite &"+typeName(pass, s.X)+"{}")
						}
					}
				}
				return true
			})
		}
	}
}

type span struct{ lo, hi token.Pos }

func within(spans []span, p token.Pos) bool {
	for _, s := range spans {
		if s.lo <= p && p < s.hi {
			return true
		}
	}
	return false
}

// checkCall flags builtin allocators, allocating conversions, and (strict
// mode) interface boxing of arguments.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, strict bool, inPool func(token.Pos) bool, report func(ast.Node, string)) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call, "make")
			case "new":
				report(call, "new")
			case "append":
				report(call, "append (may grow the backing array)")
			}
			return
		}
	}
	// Conversions that copy: string <-> []byte/[]rune.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := pass.TypeOf(call.Args[0])
		if src != nil && allocatingConversion(dst, src.Underlying()) {
			report(call, "converting between string and byte/rune slice (copies)")
			return
		}
	}
	if !strict {
		return
	}
	// Interface boxing at call boundaries.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || inPool(call.Pos()) {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.Types[arg]
		if at.Type == nil || at.Value != nil || at.IsNil() {
			continue // constants and nil don't box per call here
		}
		t := at.Type
		if types.IsInterface(t) {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		report(arg, "boxing "+t.String()+" into interface argument")
	}
}

func allocatingConversion(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		sl, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStr(src))
}

// isCapacityGuard reports whether cond is the amortized-grow test: it
// consults cap() or len(), or compares something against nil.
func isCapacityGuard(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				found = true
			}
		case *ast.BinaryExpr:
			if s.Op == token.EQL || s.Op == token.NEQ {
				if isNilIdent(s.X) || isNilIdent(s.Y) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// captured names a variable the literal closes over, or "" when the
// literal is capture-free (and therefore statically allocated).
func captured(pass *analysis.Pass, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Parent() == pass.Pkg.Scope() || obj.Parent() == types.Universe {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			name = obj.Name()
		}
		return true
	})
	return name
}

// successfulReturn reports whether every error-typed result of ret is the
// literal nil. A bare return (named results) counts as successful.
func successfulReturn(pass *analysis.Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return true
	}
	obj := pass.TypesInfo.Defs[fn.Name]
	if obj == nil {
		return true
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return true
	}
	errType := types.Universe.Lookup("error").Type()
	for i, res := range ret.Results {
		if !types.Identical(sig.Results().At(i).Type(), errType) {
			continue
		}
		if !isNilIdent(res) {
			return false
		}
	}
	return true
}

// isPoolMethod reports whether call invokes Get/Put on a sync.Pool,
// resolved through the type checker.
func isPoolMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

func typeName(pass *analysis.Pass, e ast.Expr) string {
	if cl, ok := ast.Unparen(e).(*ast.CompositeLit); ok && cl.Type != nil {
		return types.ExprString(cl.Type)
	}
	return "T"
}
