package hotalloc_test

import (
	"testing"

	"sledzig/internal/analysis/analysistest"
	"sledzig/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "a")
}
