// Fixture for the hotalloc analyzer: //sledzig:noalloc contracts.
package a

import "sync"

type result struct{ data []float64 }

type scratch struct{ buf []float64 }

var pool = sync.Pool{New: func() any { return &scratch{} }}

var sharedBuf [64]float64

type errorString string

func (e errorString) Error() string { return string(e) }

func errOf(s string) error { return errorString(s) }

func box(v any) {}

// Un-annotated functions allocate freely.
func unannotated(n int) []float64 {
	return make([]float64, n)
}

// The canonical pooled hot path: Get/defer Put plus amortized grow.
//
//sledzig:noalloc
func pooled(n int) float64 {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	s.buf = s.buf[:n]
	return s.buf[0]
}

// Capacity guards make the grow amortized: allowed.
//
//sledzig:noalloc
func guarded(s *scratch, n int) []float64 {
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	return s.buf[:n]
}

// Nil guards are the lazy-init flavor of the same idiom.
//
//sledzig:noalloc
func nilGuard(r *result, n int) {
	if r.data == nil {
		r.data = make([]float64, n)
	}
}

// Allocation on the error path is cold and allowed.
//
//sledzig:noalloc
func coldAlloc(n int) ([]float64, error) {
	if n < 0 || n > 64 {
		b := []byte("bad length")
		return nil, errOf(string(b))
	}
	return sharedBuf[:n], nil
}

// Unguarded make on the success path breaks the contract.
//
//sledzig:noalloc
func hotMake(n int) []float64 {
	return make([]float64, n) // want `make on a path to a successful return`
}

//sledzig:noalloc
func hotNew() *result {
	return new(result) // want `new on a path to a successful return`
}

//sledzig:noalloc
func hotAppend(dst []float64, v float64) []float64 {
	return append(dst, v) // want `append \(may grow the backing array\) on a path`
}

//sledzig:noalloc
func hotComposite() *result {
	return &result{} // want `heap-allocated composite &result\{\} on a path`
}

//sledzig:noalloc
func sliceLit() float64 {
	xs := []float64{1, 2, 3} // want `slice literal on a path`
	return xs[0]
}

//sledzig:noalloc
func convert(b []byte) string {
	return string(b) // want `converting between string and byte/rune slice`
}

// Capturing closures materialize per call; capture-free ones are static.
//
//sledzig:noalloc
func closures(n int) int {
	f := func() int { return n } // want `function literal capturing n`
	g := func() int { return 42 }
	return f() + g()
}

// Boxing a concrete value into an interface argument allocates; passing a
// pointer does not.
//
//sledzig:noalloc
func boxes(x int, p *result) {
	box(x) // want `boxing int into interface argument`
	box(p)
}

// budget=N mode: one-time allocations are the contract; per-iteration
// allocations inside loops are not.
//
//sledzig:noalloc budget=2
func budgeted(n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		tmp := make([]float64, 4) // want `make inside a loop .* allocates per iteration`
		out[i] = tmp[0]
	}
	return out
}

//sledzig:noalloc budget=soon
func malformed() {} // want `malformed //sledzig:noalloc directive`

// Contract exceptions carry a written reason.
//
//sledzig:noalloc
func justifiedAlloc(n int) []float64 {
	//sledvet:ignore hotalloc one-time warmup buffer, measured outside steady state
	return make([]float64, n)
}
