// Package all is the canonical registry of sledvet's analyzers. The
// sledvet command, the whole-tree benchmark, and any future embedder pull
// the suite from here so "the eleven analyzers" is defined in one place.
//
// Ordering is presentation order: syntactic checks first (in their
// original registration order), then the CFG/dataflow generation.
package all

import (
	"sledzig/internal/analysis"
	"sledzig/internal/analysis/atomicmix"
	"sledzig/internal/analysis/ctxexit"
	"sledzig/internal/analysis/floateq"
	"sledzig/internal/analysis/hotalloc"
	"sledzig/internal/analysis/lockbalance"
	"sledzig/internal/analysis/metriclit"
	"sledzig/internal/analysis/poolescape"
	"sledzig/internal/analysis/seededrand"
	"sledzig/internal/analysis/spanlit"
	"sledzig/internal/analysis/spanpair"
	"sledzig/internal/analysis/typederr"
)

// Analyzers returns the full suite in registration order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		// Syntactic checks (PR 5 generation).
		typederr.Analyzer,
		poolescape.Analyzer,
		metriclit.Analyzer,
		spanlit.Analyzer,
		seededrand.Analyzer,
		floateq.Analyzer,
		// CFG/dataflow checks.
		lockbalance.Analyzer,
		ctxexit.Analyzer,
		hotalloc.Analyzer,
		spanpair.Analyzer,
		atomicmix.Analyzer,
	}
}
