// Fixture for the lockbalance analyzer: every Lock balanced on every path.
package a

import "sync"

type engine struct {
	mu      sync.Mutex
	statsMu sync.RWMutex
	state   int
}

func cond() bool { return true }

// Balanced: the canonical defer pattern.
func (e *engine) deferred() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cond() {
		return 1
	}
	return 2
}

// Balanced: explicit unlock on both paths.
func (e *engine) explicit() int {
	e.mu.Lock()
	if cond() {
		e.mu.Unlock()
		return 1
	}
	e.mu.Unlock()
	return 2
}

// Leak: the early return skips the unlock.
func (e *engine) leaky() int {
	e.mu.Lock()
	if e.state == 2 {
		return -1 // want `lock e\.mu \(locked at line 37\) may still be held at this return`
	}
	e.mu.Unlock()
	return 0
}

// Leak at fall-off: no unlock at all on the main path.
func (e *engine) leakyEnd() {
	e.mu.Lock()
	if cond() {
		e.mu.Unlock()
		return
	}
} // want `lock e\.mu \(locked at line 47\) may still be held at this function end`

// Read and write sides balance independently.
func (e *engine) rwLeak() int {
	e.statsMu.RLock()
	if cond() {
		return 1 // want `read lock e\.statsMu \(locked at line 56\) may still be held`
	}
	e.statsMu.RUnlock()
	return 0
}

// Conditional acquire with conditional release is balanced.
func (e *engine) conditional() {
	if cond() {
		e.mu.Lock()
		defer e.mu.Unlock()
	}
}

// Double lock: guaranteed self-deadlock.
func (e *engine) doubleLock() {
	e.mu.Lock()
	e.mu.Lock() // want `locked again while already held .* self-deadlock`
	e.mu.Unlock()
}

// Double unlock.
func (e *engine) doubleUnlock() {
	e.mu.Lock()
	e.mu.Unlock()
	e.mu.Unlock() // want `cannot be held on any path: double unlock`
}

// Unlock-only helpers are the caller's protocol, not a double unlock.
func (e *engine) unlockHalf() {
	e.mu.Unlock()
}

// A deferred closure releasing the lock counts as coverage.
func (e *engine) deferredClosure() int {
	e.mu.Lock()
	defer func() {
		e.state++
		e.mu.Unlock()
	}()
	if cond() {
		return 1
	}
	return 2
}

// Lock/unlock per loop iteration is balanced.
func (e *engine) loop(n int) {
	for i := 0; i < n; i++ {
		e.mu.Lock()
		e.state++
		e.mu.Unlock()
	}
}

// Crash edges are unbound: panicking with the lock held is not a leak.
func (e *engine) panics() {
	e.mu.Lock()
	if e.state < 0 {
		panic("corrupt state")
	}
	e.mu.Unlock()
}

// Function literals are their own frames.
func (e *engine) inLiteral() func() {
	return func() {
		e.mu.Lock()
		if cond() {
			return // want `lock e\.mu \(locked at line 125\) may still be held at this return`
		}
		e.mu.Unlock()
	}
}

// Intentional hold-across-return protocols need a written justification.
func (e *engine) lockForCaller() {
	e.mu.Lock()
	//sledvet:ignore lockbalance caller-unlocks protocol: released by unlockHalf
} // this line intentionally left unflagged
