// Package lockbalance proves, path by path, that every sync.Mutex/RWMutex
// acquisition in the engine and observability kernels is released on every
// non-crash exit. The six syntactic analyzers cannot see that
//
//	e.mu.Lock()
//	if e.state == draining {
//		return ErrDraining // leaks e.mu
//	}
//	e.mu.Unlock()
//
// leaks: the admission/breaker/drain code is exactly the kind of multi-exit
// state machine where such leaks survive review, and a held lock there
// stalls the whole pipeline rather than one request.
//
// The analyzer builds the control-flow graph of every function (and every
// function literal, as its own frame) and runs a forward may/must dataflow
// over lock facts keyed by the written receiver expression ("e.mu:w",
// "s.statsMu:r"):
//
//   - Lock/RLock sets the fact; Unlock/RUnlock clears it. Read and write
//     sides of an RWMutex balance independently.
//   - defer x.Unlock() — directly or inside a deferred function literal —
//     covers the key for all exits that follow registration.
//   - At every live non-panicking exit block, a key that may be held and is
//     not defer-covered is reported. Crash edges (panic, log.Fatal) are
//     deliberately unbound: the process is gone anyway.
//   - A second Lock while the first must still be held is a guaranteed
//     self-deadlock and reported at the second Lock. An Unlock when the
//     lock cannot be held (and the frame does Lock it somewhere) is a
//     double-unlock and reported too.
//
// The analysis is function-local by design: a method that intentionally
// returns with the lock held (caller-unlocks protocols) needs a
// //sledvet:ignore lockbalance with the ownership story written down.
// Scope: internal/engine and internal/obs (flag -lockbalance.scope), the
// packages whose lock discipline the throughput claims rest on.
package lockbalance

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"sledzig/internal/analysis"
	"sledzig/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockbalance",
	Doc:  "sync.Mutex/RWMutex Lock must be matched by Unlock on every non-crash exit path",
	Run:  run,
}

var scope = regexp.MustCompile(`^sledzig/internal/(engine|obs)(/|$)`)

func init() {
	Analyzer.Flags.Func("scope", "regexp of module package paths to analyze", func(s string) error {
		re, err := regexp.Compile(s)
		if err != nil {
			return err
		}
		scope = re
		return nil
	})
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.InScope(pass, scope) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFrame(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
					checkFrame(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// lockSide classifies a selector call as one of the four mutex operations.
type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

// mutexOp resolves call through the type checker: is it Lock/Unlock (write
// side) or RLock/RUnlock (read side) on a sync.Mutex or sync.RWMutex? It
// returns the operation, the dataflow key ("expr:w" / "expr:r"), and the
// receiver rendering for messages.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (op lockOp, key, recv string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, "", ""
	}
	var side string
	switch sel.Sel.Name {
	case "Lock":
		op, side = opLock, "w"
	case "Unlock":
		op, side = opUnlock, "w"
	case "RLock":
		op, side = opLock, "r"
	case "RUnlock":
		op, side = opUnlock, "r"
	default:
		return opNone, "", ""
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return opNone, "", ""
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return opNone, "", ""
	}
	r := fn.Type().(*types.Signature).Recv()
	if r == nil {
		return opNone, "", ""
	}
	t := r.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return opNone, "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
		(obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return opNone, "", ""
	}
	recv = render(sel.X)
	return op, recv + ":" + side, recv
}

// render produces the stable textual key for a lock receiver expression.
func render(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return render(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return render(v.Fun) + "()"
	case *ast.IndexExpr:
		return render(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + render(v.X)
	case *ast.UnaryExpr:
		return v.Op.String() + render(v.X)
	default:
		return "mutex"
	}
}

// deferKey namespaces defer-coverage facts away from held facts.
func deferKey(key string) string { return "defer " + key }

func checkFrame(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)

	// lockPos remembers where each key was (first) locked, for messages;
	// it doubles as "this frame locks the key", gating double-unlock
	// reports so unlock-only helper methods stay clean.
	lockPos := map[string]token.Pos{}

	// forCalls applies f to every mutex operation among the nodes of one
	// block, in order, without descending into nested function literals
	// (they are separate frames) — except that deferred literals are
	// scanned for Unlocks, which register coverage.
	forOps := func(b *cfg.Block, f func(op lockOp, key, recv string, n ast.Node, deferred bool)) {
		for _, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.DeferStmt:
					if op, key, recv := mutexOp(pass, s.Call); op == opUnlock {
						f(op, key, recv, s, true)
						return false
					}
					if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
						ast.Inspect(lit.Body, func(m ast.Node) bool {
							if c, ok := m.(*ast.CallExpr); ok {
								if op, key, recv := mutexOp(pass, c); op == opUnlock {
									f(op, key, recv, s, true)
								}
							}
							return true
						})
					}
					return false
				case *ast.CallExpr:
					if op, key, recv := mutexOp(pass, s); op != opNone {
						f(op, key, recv, s, false)
					}
				}
				return true
			})
		}
	}

	// Pass 1: syntactic — where does this frame lock what?
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		forOps(b, func(op lockOp, key, recv string, n ast.Node, deferred bool) {
			if op == opLock && !deferred {
				if _, ok := lockPos[key]; !ok {
					lockPos[key] = n.Pos()
				}
			}
		})
	}
	if len(lockPos) == 0 {
		return // nothing acquired here; nothing to balance
	}

	// Pass 2: dataflow. The transfer function interprets operations in
	// block order; reports for double lock/unlock fire inside it, guarded
	// by `reporting` so only the final fixpoint states report (the solver
	// may visit a block several times on the way there).
	reporting := false
	transfer := func(b *cfg.Block, in cfg.State) cfg.State {
		forOps(b, func(op lockOp, key, recv string, n ast.Node, deferred bool) {
			switch {
			case deferred: // defer x.Unlock(): coverage from here on
				in.Set(deferKey(key), cfg.May|cfg.Must)
			case op == opLock:
				if reporting && in.Get(key)&cfg.Must != 0 {
					pass.Reportf(n.Pos(),
						"%s is locked again while already held (locked at line %d): guaranteed self-deadlock",
						lockText(key, recv), line(pass, lockPos[key]))
				}
				in.Set(key, cfg.May|cfg.Must)
			case op == opUnlock:
				if reporting && in.Get(key)&cfg.May == 0 {
					if _, locked := lockPos[key]; locked {
						pass.Reportf(n.Pos(),
							"%s is unlocked here but cannot be held on any path: double unlock", lockText(key, recv))
					}
				}
				in.Set(key, 0)
			}
		})
		return in
	}
	in, out := cfg.Forward(g, cfg.State{}, transfer)

	// Re-run each block's transfer exactly once on its fixpoint in-state,
	// now with in-block reports armed: this visits every live block a
	// single time, so double-lock/double-unlock fire once per site.
	reporting = true
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		st := in[b]
		if st == nil {
			st = cfg.State{}
		}
		transfer(b, st.Clone())
	}

	// Exit check: a may-held, not defer-covered key at any non-crash exit.
	reported := map[string]bool{}
	for _, b := range g.ExitBlocks() {
		st := out[b]
		for key, pos := range lockPos {
			if st.Get(key)&cfg.May == 0 || st.Get(deferKey(key))&cfg.May != 0 {
				continue
			}
			// Returns anchor at the return statement; fall-off exits at
			// the closing brace, where "still held at function end" reads.
			at := body.Rbrace
			if b.Returns {
				if last := b.Last(); last != nil {
					at = last.Pos()
				}
			}
			k := fmt.Sprintf("%s@%d", key, at)
			if reported[k] {
				continue
			}
			reported[k] = true
			what := "return"
			if !b.Returns {
				what = "function end"
			}
			pass.Reportf(at,
				"%s (locked at line %d) may still be held at this %s; unlock on every path or defer the unlock",
				lockText(key, keyRecv(key)), line(pass, pos), what)
		}
	}
}

func line(pass *analysis.Pass, pos token.Pos) int {
	return pass.Fset.Position(pos).Line
}

func keyRecv(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == ':' {
			return key[:i]
		}
	}
	return key
}

// lockText names the lock side for diagnostics: "e.mu" or "read lock e.mu".
func lockText(key, recv string) string {
	if len(key) > 2 && key[len(key)-2:] == ":r" {
		return "read lock " + recv
	}
	return "lock " + recv
}
