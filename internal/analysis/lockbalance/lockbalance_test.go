package lockbalance_test

import (
	"testing"

	"sledzig/internal/analysis/analysistest"
	"sledzig/internal/analysis/lockbalance"
)

func TestLockbalance(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockbalance.Analyzer, "a")
}
