package ht40

import (
	"math"
	"math/rand"
	"testing"

	"sledzig/internal/bits"
	"sledzig/internal/dsp"
	"sledzig/internal/wifi"
)

func TestNumerology(t *testing.T) {
	ds := DataSubcarriers()
	if len(ds) != NumDataSubcarriers {
		t.Fatalf("%d data subcarriers, want %d", len(ds), NumDataSubcarriers)
	}
	for _, k := range ds {
		if IsPilot(k) || IsNull(k) {
			t.Fatalf("subcarrier %d misclassified", k)
		}
	}
	// 108 data + 6 pilots + 14 nulls (DC region of 3, edges) = 128.
	used := len(ds) + NumPilots
	if used != 114 {
		t.Fatalf("%d used subcarriers, want 114", used)
	}
}

func TestInterleaverBijection(t *testing.T) {
	for _, m := range []wifi.Modulation{wifi.BPSK, wifi.QPSK, wifi.QAM16, wifi.QAM64, wifi.QAM256} {
		n := NumDataSubcarriers * m.BitsPerSubcarrier()
		seen := make([]bool, n)
		for k := 0; k < n; k++ {
			j := InterleaveIndex(m, k)
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("%v: interleaver not a bijection at %d -> %d", m, k, j)
			}
			seen[j] = true
			if back := DeinterleaveIndex(m, j); back != k {
				t.Fatalf("%v: inverse broken at %d (got %d)", m, j, back)
			}
		}
	}
}

func TestInterleaverSpreadsAdjacentBits(t *testing.T) {
	// Adjacent coded bits must land on well-separated subcarriers (the
	// property that scatters SledZig's significant bits).
	m := wifi.QAM64
	for k := 0; k < 100; k++ {
		j0 := InterleaveIndex(m, k) / m.BitsPerSubcarrier()
		j1 := InterleaveIndex(m, k+1) / m.BitsPerSubcarrier()
		if d := j1 - j0; d > -3 && d < 3 {
			t.Fatalf("adjacent coded bits %d,%d land on close subcarriers %d,%d", k, k+1, j0, j1)
		}
	}
}

func TestChannelGeometry(t *testing.T) {
	if got := AllChannels(); len(got) != 8 {
		t.Fatalf("%d channels", len(got))
	}
	// Offsets span -17..+18 MHz on the 5 MHz raster.
	if AllChannels()[0].OffsetHz() != -17e6 || AllChannels()[7].OffsetHz() != 18e6 {
		t.Fatal("channel offsets wrong")
	}
	for _, ch := range AllChannels() {
		w := ch.SubcarrierWindow()
		if len(w) != 8 {
			t.Fatalf("%v: window %v", ch, w)
		}
		if n := len(ch.DataSubcarriersIn()); n < 4 || n > 8 {
			t.Fatalf("%v: %d data subcarriers in window", ch, n)
		}
	}
	// CH2 (-12 MHz) sees no pilot and keeps all 8 window subcarriers;
	// CH5 (+3 MHz) straddles the pilot at +11 and loses one.
	if n := len(Channel(2).DataSubcarriersIn()); n != 8 {
		t.Fatalf("CH2 has %d data subcarriers, want 8", n)
	}
	if n := len(Channel(5).DataSubcarriersIn()); n != 7 {
		t.Fatalf("CH5 has %d data subcarriers, want 7 (pilot at +11)", n)
	}
}

func TestSymbolRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]complex128, NumDataSubcarriers)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	freq, err := SubcarrierMap(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	sym := TimeDomain(freq)
	if len(sym) != SymbolLength {
		t.Fatalf("symbol length %d", len(sym))
	}
	back, err := FrequencyDomain(sym)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExtractSubcarriers(back)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if d := got[i] - data[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
			t.Fatalf("subcarrier %d mismatch", i)
		}
	}
}

func TestPlanOverheadScales(t *testing.T) {
	// On 40 MHz the same absolute extra bits spread over 108 subcarriers:
	// the relative loss halves compared to 20 MHz (the footnote's point).
	mode := wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}
	plan, err := NewPlan(wifi.ConventionPaper, mode, Channel(2))
	if err != nil {
		t.Fatal(err)
	}
	perSym := plan.ExtraBitsPerSymbol()
	if perSym < 20 || perSym > 32 {
		t.Fatalf("extra bits per symbol %d", perSym)
	}
	if loss := plan.ThroughputLossFraction(); loss > 0.08 {
		t.Fatalf("40 MHz loss %.3f should be well below the 20 MHz 14.6%%", loss)
	}
}

func TestEncodePinsLowestRing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, conv := range []wifi.Convention{wifi.ConventionIEEE, wifi.ConventionPaper} {
		for _, ch := range []Channel{1, 2, 6, 8} {
			mode := wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}
			plan, err := NewPlan(conv, mode, ch)
			if err != nil {
				t.Fatalf("%v %v: %v", conv, ch, err)
			}
			frame, err := (&Encoder{Plan: plan}).Encode(bits.RandomBytes(rng, 200))
			if err != nil {
				t.Fatal(err)
			}
			pts, err := frame.DataPoints()
			if err != nil {
				t.Fatal(err)
			}
			dataIndex := map[int]int{}
			for i, k := range DataSubcarriers() {
				dataIndex[k] = i
			}
			kmod := wifi.NormFactor(mode.Modulation)
			for s, sym := range pts {
				for _, k := range ch.DataSubcarriersIn() {
					p := sym[dataIndex[k]]
					power := (real(p)*real(p) + imag(p)*imag(p)) / (kmod * kmod)
					if math.Abs(power-2) > 1e-9 {
						t.Fatalf("%v %v: symbol %d subcarrier %d power %g", conv, ch, s, k, power)
					}
				}
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, mode := range []wifi.Mode{
		{Modulation: wifi.QAM16, CodeRate: wifi.Rate12},
		{Modulation: wifi.QAM64, CodeRate: wifi.Rate34},
		{Modulation: wifi.QAM256, CodeRate: wifi.Rate56},
	} {
		plan, err := NewPlan(wifi.ConventionPaper, mode, Channel(6))
		if err != nil {
			t.Fatal(err)
		}
		payload := bits.RandomBytes(rng, 150+rng.Intn(300))
		frame, err := (&Encoder{Plan: plan}).Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		wave, err := frame.Waveform()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(wifi.ConventionPaper, mode, Channel(6), wave, 0)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(got) != len(payload) {
			t.Fatalf("%v: %d bytes, want %d", mode, len(got), len(payload))
		}
		for i := range payload {
			if got[i] != payload[i] {
				t.Fatalf("%v: mismatch at %d", mode, i)
			}
		}
	}
}

func TestBandPowerDrop40MHz(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mode := wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}
	ch := Channel(2) // -12 MHz: pilot-free window, full suppression
	plan, err := NewPlan(wifi.ConventionPaper, mode, ch)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := (&Encoder{Plan: plan}).Encode(bits.RandomBytes(rng, 600))
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ch.BandHz()
	inBand, err := dsp.BandPower(wave, SampleRate, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	refLo, refHi := Channel(7).BandHz()
	ref, err := dsp.BandPower(wave, SampleRate, refLo, refHi)
	if err != nil {
		t.Fatal(err)
	}
	if drop := dsp.DB(ref) - dsp.DB(inBand); drop < 10 {
		t.Fatalf("40 MHz notch only %.1f dB deep", drop)
	}
}

func TestOverheadTable40MHz(t *testing.T) {
	for _, conv := range []wifi.Convention{wifi.ConventionIEEE, wifi.ConventionPaper} {
		rows, err := OverheadTable(conv)
		if err != nil {
			t.Fatalf("%v: %v", conv, err)
		}
		if len(rows) != 14 {
			t.Fatalf("%d rows", len(rows))
		}
		for _, r := range rows {
			// Pilot-free CH2 pins 8 subcarriers, pilot-bearing CH5 pins 7.
			perSC := 0
			switch r.Mode.Modulation {
			case wifi.QAM16:
				perSC = 2
			case wifi.QAM64:
				perSC = 4
			case wifi.QAM256:
				perSC = 6
			}
			want := 8 * perSC
			if r.Channel == Channel(5) {
				want = 7 * perSC
			}
			if r.ExtraBits != want {
				t.Errorf("%v %v %v: %d extra bits, want %d", conv, r.Mode, r.Channel, r.ExtraBits, want)
			}
			// 40 MHz loss always below the 20 MHz worst case.
			if r.LossFraction >= 0.1458 {
				t.Errorf("%v %v: loss %.4f not below the 20 MHz bound", r.Mode, r.Channel, r.LossFraction)
			}
		}
	}
}

func TestHT40EncoderValidation(t *testing.T) {
	if _, err := (&Encoder{}).Encode([]byte{1}); err == nil {
		t.Error("nil plan accepted")
	}
	plan, err := NewPlan(wifi.ConventionIEEE, wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}, Channel(1))
	if err != nil {
		t.Fatal(err)
	}
	enc := &Encoder{Plan: plan}
	if _, err := enc.Encode(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := NewPlan(wifi.ConventionIEEE, wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}, Channel(9)); err == nil {
		t.Error("channel 9 accepted")
	}
}

func TestHT40DecodeValidation(t *testing.T) {
	mode := wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	if _, err := Decode(wifi.ConventionIEEE, mode, Channel(1), make([]complex128, 100), 0); err == nil {
		t.Error("partial symbol accepted")
	}
	if _, err := Decode(wifi.ConventionIEEE, mode, Channel(1), nil, 0); err == nil {
		t.Error("empty waveform accepted")
	}
}

func TestHT40PilotMapping(t *testing.T) {
	data := make([]complex128, NumDataSubcarriers)
	freq, err := SubcarrierMap(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All six pilots energized, DC empty.
	for _, k := range []int{-53, -25, -11, 11, 25, 53} {
		if freq[bin(k)] == 0 {
			t.Errorf("pilot %d not energized", k)
		}
	}
	if freq[0] != 0 {
		t.Error("DC carries energy")
	}
}
