package ht40

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sledzig/internal/wifi"
)

// Golden vectors pin the 40 MHz derived tables, mirroring the 20 MHz set
// in internal/core/testdata. Regenerate with
//
//	UPDATE_GOLDEN=1 go test ./internal/ht40 -run TestGoldenVectors40
type goldenEntry struct {
	Convention string `json:"convention"`
	Mode       string `json:"mode"`
	Channel    string `json:"channel"`
	ExtraBits  int    `json:"extraBits"`
	// Steps are the constrained encoder steps of the first OFDM symbol.
	Steps []int `json:"steps"`
}

func TestGoldenVectors40(t *testing.T) {
	var got []goldenEntry
	for _, conv := range []wifi.Convention{wifi.ConventionIEEE, wifi.ConventionPaper} {
		for _, mode := range wifi.PaperModes() {
			for _, ch := range AllChannels() {
				plan, err := NewPlan(conv, mode, ch)
				if err != nil {
					t.Fatalf("%v %v %v: %v", conv, mode, ch, err)
				}
				e := goldenEntry{
					Convention: conv.String(),
					Mode:       mode.String(),
					Channel:    ch.String(),
					ExtraBits:  plan.ExtraBitsPerSymbol(),
				}
				for _, c := range plan.constraints {
					e.Steps = append(e.Steps, c.Step())
				}
				got = append(got, e)
			}
		}
	}
	encoded, err := json.MarshalIndent(got, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	encoded = append(encoded, '\n')
	path := filepath.Join("testdata", "vectors40.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, encoded, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(encoded, want) {
		t.Fatalf("40 MHz derived tables diverge from %s", path)
	}
}
