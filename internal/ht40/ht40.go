// Package ht40 extends SledZig to 40 MHz channels — the paper's footnote 1
// ("the similar idea can be easily extended to wider channel scenarios").
// It implements the 802.11n HT-40 single-stream numerology (128
// subcarriers, 108 data + 6 pilots, 18-column interleaver) on top of the
// shared scrambler/coder/QAM primitives, and reuses the core package's
// constraint solver to pin the subcarriers overlapping any of the EIGHT
// ZigBee channels a 40 MHz WiFi channel covers.
//
// Scope: the DATA-field pipeline (encode -> waveform -> decode). The HT
// preamble is out of scope; receivers operate symbol-aligned, which is all
// the interference analysis needs.
package ht40

import (
	"fmt"
	"math"

	"sledzig/internal/dsp"
	"sledzig/internal/wifi"
)

// HT-40 numerology (802.11n, single spatial stream).
const (
	NumSubcarriers     = 128
	NumDataSubcarriers = 108
	NumPilots          = 6
	CPLength           = 32
	SymbolLength       = NumSubcarriers + CPLength
	SampleRate         = 40e6
	SubcarrierSpacing  = SampleRate / NumSubcarriers // 312.5 kHz, as at 20 MHz
)

// pilotSubcarriers of the 40 MHz format.
var pilotSubcarriers = [NumPilots]int{-53, -25, -11, 11, 25, 53}

// pilotPattern is the single-stream 40 MHz pilot value pattern Psi.
var pilotPattern = [NumPilots]float64{1, 1, 1, -1, -1, 1}

// IsPilot reports whether signed subcarrier k carries a pilot.
func IsPilot(k int) bool {
	for _, p := range pilotSubcarriers {
		if k == p {
			return true
		}
	}
	return false
}

// IsNull reports whether signed subcarrier k carries no energy (DC region
// -1..1 and guards beyond +/-58).
func IsNull(k int) bool {
	if k >= -1 && k <= 1 {
		return true
	}
	return k < -58 || k > 58
}

// DataSubcarriers returns the 108 data subcarriers in ascending order.
func DataSubcarriers() []int {
	out := make([]int, 0, NumDataSubcarriers)
	for k := -58; k <= 58; k++ {
		if IsNull(k) || IsPilot(k) {
			continue
		}
		out = append(out, k)
	}
	return out
}

// CodedBitsPerSymbol returns N_CBPS for a mode on 40 MHz.
func CodedBitsPerSymbol(m wifi.Mode) int {
	return NumDataSubcarriers * m.Modulation.BitsPerSubcarrier()
}

// DataBitsPerSymbol returns N_DBPS for a mode on 40 MHz.
func DataBitsPerSymbol(m wifi.Mode) int {
	return CodedBitsPerSymbol(m) * m.CodeRate.Numerator() / m.CodeRate.Denominator()
}

// Interleaver: the HT structure with N_COL = 18 columns (and
// N_ROW = 6 N_BPSC rows); the legacy 20 MHz interleaver is the same shape
// with 16 columns. The third (frequency-rotation) permutation applies only
// to additional spatial streams and is omitted.
const interleaverColumns = 18

// InterleaveIndex maps coded-bit index k to its post-interleaving position.
func InterleaveIndex(m wifi.Modulation, k int) int {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	nROW := nCBPS / interleaverColumns
	s := m.BitsPerSubcarrier() / 2
	if s < 1 {
		s = 1
	}
	i := nROW*(k%interleaverColumns) + k/interleaverColumns
	j := s*(i/s) + (i+nCBPS-(interleaverColumns*i)/nCBPS)%s
	return j
}

// DeinterleaveIndex inverts InterleaveIndex.
func DeinterleaveIndex(m wifi.Modulation, j int) int {
	nCBPS := NumDataSubcarriers * m.BitsPerSubcarrier()
	s := m.BitsPerSubcarrier() / 2
	if s < 1 {
		s = 1
	}
	i := s*(j/s) + (j+(interleaverColumns*j)/nCBPS)%s
	k := interleaverColumns*i - (nCBPS-1)*((interleaverColumns*i)/nCBPS)
	return k
}

// interleaveIndexC applies the pipeline convention (the Paper convention
// swaps the permutation direction, as at 20 MHz).
func interleaveIndexC(c wifi.Convention, m wifi.Modulation, k int) int {
	if c == wifi.ConventionPaper {
		return DeinterleaveIndex(m, k)
	}
	return InterleaveIndex(m, k)
}

func deinterleaveIndexC(c wifi.Convention, m wifi.Modulation, j int) int {
	if c == wifi.ConventionPaper {
		return InterleaveIndex(m, j)
	}
	return DeinterleaveIndex(m, j)
}

// Channel is one of the eight ZigBee channels overlapping a 40 MHz WiFi
// channel, ascending in frequency. The 5 MHz raster alignment mirrors the
// 20 MHz case (paper Fig. 2): offsets -17, -12, ..., +18 MHz.
type Channel int

// Valid reports whether c is one of the eight overlapped channels.
func (c Channel) Valid() bool { return c >= 1 && c <= 8 }

// String names the channel.
func (c Channel) String() string { return fmt.Sprintf("HT40-CH%d", int(c)) }

// AllChannels returns the eight overlapped channels.
func AllChannels() []Channel {
	out := make([]Channel, 8)
	for i := range out {
		out[i] = Channel(i + 1)
	}
	return out
}

// OffsetHz returns the channel's center offset from the WiFi center.
func (c Channel) OffsetHz() float64 {
	return float64(int(c)-1)*5e6 - 17e6
}

// SubcarrierWindow returns the pinned window: the fully-overlapped
// subcarriers plus one adjacent on each side, as at 20 MHz.
func (c Channel) SubcarrierWindow() []int {
	center := c.OffsetHz() / SubcarrierSpacing
	half := 1e6 / SubcarrierSpacing
	lo := int(math.Ceil(center - half))
	hi := int(math.Floor(center + half))
	out := make([]int, 0, hi-lo+3)
	for k := lo - 1; k <= hi+1; k++ {
		out = append(out, k)
	}
	return out
}

// DataSubcarriersIn returns the data subcarriers inside the window.
func (c Channel) DataSubcarriersIn() []int {
	out := make([]int, 0, 8)
	for _, k := range c.SubcarrierWindow() {
		if !IsPilot(k) && !IsNull(k) {
			out = append(out, k)
		}
	}
	return out
}

// BandHz returns the channel band edges relative to the WiFi center.
func (c Channel) BandHz() (lo, hi float64) {
	return c.OffsetHz() - 1e6, c.OffsetHz() + 1e6
}

// SubcarrierMap places 108 data points and the 6 pilots into 128 bins.
func SubcarrierMap(data []complex128, symbolIndex int) ([]complex128, error) {
	if len(data) != NumDataSubcarriers {
		return nil, fmt.Errorf("ht40: need %d data points, got %d", NumDataSubcarriers, len(data))
	}
	freq := make([]complex128, NumSubcarriers)
	for i, k := range DataSubcarriers() {
		freq[bin(k)] = data[i]
	}
	pol := wifi.PilotPolarity(symbolIndex)
	for i, k := range pilotSubcarriers {
		freq[bin(k)] = complex(pol*pilotPattern[i], 0)
	}
	return freq, nil
}

// ExtractSubcarriers pulls the 108 data points from a 128-bin FFT output.
func ExtractSubcarriers(freq []complex128) ([]complex128, error) {
	if len(freq) != NumSubcarriers {
		return nil, fmt.Errorf("ht40: need %d bins, got %d", NumSubcarriers, len(freq))
	}
	out := make([]complex128, 0, NumDataSubcarriers)
	for _, k := range DataSubcarriers() {
		out = append(out, freq[bin(k)])
	}
	return out, nil
}

func bin(k int) int {
	return ((k % NumSubcarriers) + NumSubcarriers) % NumSubcarriers
}

// TimeDomain converts a 128-bin frequency vector to the 160-sample
// cyclic-prefixed symbol.
func TimeDomain(freq []complex128) []complex128 {
	td := dsp.MustIFFT(freq)
	out := make([]complex128, 0, SymbolLength)
	out = append(out, td[NumSubcarriers-CPLength:]...)
	out = append(out, td...)
	return out
}

// FrequencyDomain strips the CP and FFTs one symbol.
func FrequencyDomain(sym []complex128) ([]complex128, error) {
	if len(sym) != SymbolLength {
		return nil, fmt.Errorf("ht40: symbol length %d != %d", len(sym), SymbolLength)
	}
	return dsp.FFT(sym[CPLength:])
}
