package ht40

import (
	"fmt"

	"sledzig/internal/bits"
	"sledzig/internal/core"
	"sledzig/internal/wifi"
)

// SledZig on 40 MHz: the same pipeline as the 20 MHz core — derive the
// significant bits of the overlapped subcarriers through the (HT)
// deinterleaver, plan extra-bit positions with the shared cluster solver,
// and let the standard coder produce lowest-ring points.

const (
	serviceBits  = 16
	tailBits     = 6
	headerOctets = 2
)

// Plan holds the per-symbol constraints for one (convention, mode,
// channel) triple on the 40 MHz format.
type Plan struct {
	Convention wifi.Convention
	Mode       wifi.Mode
	Channel    Channel

	constraints []core.Constraint
}

// NewPlan derives the plan.
func NewPlan(conv wifi.Convention, mode wifi.Mode, ch Channel) (*Plan, error) {
	if !ch.Valid() {
		return nil, fmt.Errorf("ht40: invalid channel %d", int(ch))
	}
	if err := mode.Validate(); err != nil {
		return nil, err
	}
	offsets, values := conv.SignificantOffsetsC(mode.Modulation)
	if len(offsets) == 0 {
		return nil, fmt.Errorf("ht40: modulation %v has no pinnable bits", mode.Modulation)
	}
	dataIndex := make(map[int]int, NumDataSubcarriers)
	for i, k := range DataSubcarriers() {
		dataIndex[k] = i
	}
	bpsc := mode.Modulation.BitsPerSubcarrier()
	mother, err := wifi.MotherIndices(CodedBitsPerSymbol(mode), mode.CodeRate)
	if err != nil {
		return nil, err
	}
	var cs []core.Constraint
	for _, k := range ch.DataSubcarriersIn() {
		idx, ok := dataIndex[k]
		if !ok {
			return nil, fmt.Errorf("ht40: subcarrier %d is not a data subcarrier", k)
		}
		for i, off := range offsets {
			j := idx*bpsc + off
			pre := deinterleaveIndexC(conv, mode.Modulation, j)
			cs = append(cs, core.Constraint{MotherIndex: mother[pre], Value: values[i]})
		}
	}
	sortConstraints(cs)
	p := &Plan{Convention: conv, Mode: mode, Channel: ch, constraints: cs}
	// Fail fast on unplannable combinations.
	if _, err := core.LayoutForConstraints(cs, 2, 2*DataBitsPerSymbol(mode)); err != nil {
		return nil, err
	}
	return p, nil
}

func sortConstraints(cs []core.Constraint) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].MotherIndex < cs[j-1].MotherIndex; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// ExtraBitsPerSymbol is the per-symbol overhead.
func (p *Plan) ExtraBitsPerSymbol() int { return len(p.constraints) }

// ThroughputLossFraction is the Table IV metric on the 40 MHz format.
func (p *Plan) ThroughputLossFraction() float64 {
	return float64(len(p.constraints)) / float64(DataBitsPerSymbol(p.Mode))
}

// Frame is an encoded 40 MHz DATA field.
type Frame struct {
	Plan       *Plan
	NumSymbols int
	// ScrambledBits is the encoder input.
	ScrambledBits []bits.Bit
}

// Encoder builds SledZig frames on the 40 MHz format.
type Encoder struct {
	Plan *Plan
	Seed uint8
}

// NumSymbols returns the frame size for a payload length.
func (e *Encoder) NumSymbols(length int) int {
	eff := DataBitsPerSymbol(e.Plan.Mode) - e.Plan.ExtraBitsPerSymbol()
	needed := serviceBits + 8*(headerOctets+length) + tailBits
	return (needed + eff - 1) / eff
}

// Encode assembles the frame carrying payload.
func (e *Encoder) Encode(payload []byte) (*Frame, error) {
	if e.Plan == nil {
		return nil, fmt.Errorf("ht40: encoder has no plan")
	}
	if len(payload) == 0 || len(payload) > 0xFFFF {
		return nil, fmt.Errorf("ht40: payload length %d out of range", len(payload))
	}
	nSym := e.NumSymbols(len(payload))
	nDBPS := DataBitsPerSymbol(e.Plan.Mode)
	layout, err := core.LayoutForConstraints(e.Plan.constraints, nSym, 2*nDBPS)
	if err != nil {
		return nil, err
	}
	total := nSym * nDBPS

	logical := make([]bits.Bit, 0, total-len(layout.Positions))
	logical = append(logical, make([]bits.Bit, serviceBits)...)
	logical = append(logical, bits.FromBytes([]byte{byte(len(payload)), byte(len(payload) >> 8)})...)
	logical = append(logical, bits.FromBytes(payload)...)
	logical = append(logical, make([]bits.Bit, tailBits)...)
	capacity := total - len(layout.Positions)
	if len(logical) > capacity {
		return nil, fmt.Errorf("ht40: logical stream %d exceeds capacity %d", len(logical), capacity)
	}
	logical = append(logical, make([]bits.Bit, capacity-len(logical))...)

	extra := make([]bool, total)
	for _, p := range layout.Positions {
		if p < 0 || p >= total {
			return nil, fmt.Errorf("ht40: extra position %d outside frame", p)
		}
		extra[p] = true
	}
	u := make([]bits.Bit, total)
	li := 0
	for i := range u {
		if !extra[i] {
			u[i] = logical[li]
			li++
		}
	}
	seed := e.Seed
	if seed == 0 {
		seed = wifi.DefaultScramblerSeed
	}
	x, err := wifi.ScrambleWithSeed(u, seed)
	if err != nil {
		return nil, err
	}
	for _, p := range layout.Positions {
		x[p] = 0
	}
	if err := core.SolveExtraBits(x, layout.Clusters); err != nil {
		return nil, err
	}
	return &Frame{Plan: e.Plan, NumSymbols: nSym, ScrambledBits: x}, nil
}

// DataPoints returns per-symbol constellation points.
func (f *Frame) DataPoints() ([][]complex128, error) {
	coded, err := wifi.EncodeAndPuncture(f.ScrambledBits, f.Plan.Mode.CodeRate)
	if err != nil {
		return nil, err
	}
	nCBPS := CodedBitsPerSymbol(f.Plan.Mode)
	if len(coded)%nCBPS != 0 {
		return nil, fmt.Errorf("ht40: coded length %d not whole symbols", len(coded))
	}
	out := make([][]complex128, 0, f.NumSymbols)
	for off := 0; off < len(coded); off += nCBPS {
		inter := make([]bits.Bit, nCBPS)
		for k, b := range coded[off : off+nCBPS] {
			inter[interleaveIndexC(f.Plan.Convention, f.Plan.Mode.Modulation, k)] = b
		}
		pts, err := f.Plan.Convention.MapAllC(f.Plan.Mode.Modulation, inter)
		if err != nil {
			return nil, err
		}
		out = append(out, pts)
	}
	return out, nil
}

// Waveform renders the DATA field at 40 MS/s.
func (f *Frame) Waveform() ([]complex128, error) {
	ptsPerSym, err := f.DataPoints()
	if err != nil {
		return nil, err
	}
	out := make([]complex128, 0, len(ptsPerSym)*SymbolLength)
	for s, pts := range ptsPerSym {
		freq, err := SubcarrierMap(pts, s+1)
		if err != nil {
			return nil, err
		}
		out = append(out, TimeDomain(freq)...)
	}
	return out, nil
}

// Decode inverts Encode from a symbol-aligned DATA waveform: demodulate,
// deinterleave, Viterbi, descramble, strip the extra bits and the length
// header. The mode, channel and convention must be known (a full HT
// receiver would read them from the HT-SIG field).
func Decode(conv wifi.Convention, mode wifi.Mode, ch Channel, wave []complex128, seed uint8) ([]byte, error) {
	if len(wave)%SymbolLength != 0 {
		return nil, fmt.Errorf("ht40: waveform of %d samples is not whole symbols", len(wave))
	}
	nSym := len(wave) / SymbolLength
	if nSym == 0 {
		return nil, fmt.Errorf("ht40: empty waveform")
	}
	nCBPS := CodedBitsPerSymbol(mode)
	rx := make([]bits.Bit, 0, nSym*nCBPS)
	for s := 0; s < nSym; s++ {
		freq, err := FrequencyDomain(wave[s*SymbolLength : (s+1)*SymbolLength])
		if err != nil {
			return nil, err
		}
		pts, err := ExtractSubcarriers(freq)
		if err != nil {
			return nil, err
		}
		demapped, err := conv.DemapAllC(mode.Modulation, pts)
		if err != nil {
			return nil, err
		}
		deinter := make([]bits.Bit, nCBPS)
		for j, b := range demapped {
			deinter[deinterleaveIndexC(conv, mode.Modulation, j)] = b
		}
		rx = append(rx, deinter...)
	}
	scrambled, err := wifi.DepunctureAndDecode(rx, mode.CodeRate, false)
	if err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = wifi.DefaultScramblerSeed
	}
	dataBits, err := wifi.ScrambleWithSeed(scrambled, seed)
	if err != nil {
		return nil, err
	}
	plan, err := NewPlan(conv, mode, ch)
	if err != nil {
		return nil, err
	}
	layout, err := core.LayoutForConstraints(plan.constraints, nSym, 2*DataBitsPerSymbol(mode))
	if err != nil {
		return nil, err
	}
	extra := make([]bool, len(dataBits))
	for _, p := range layout.Positions {
		if p < len(extra) {
			extra[p] = true
		}
	}
	logical := make([]bits.Bit, 0, len(dataBits))
	for i, b := range dataBits {
		if !extra[i] {
			logical = append(logical, b)
		}
	}
	if len(logical) < serviceBits+8*headerOctets {
		return nil, fmt.Errorf("ht40: stripped stream too short")
	}
	body := logical[serviceBits:]
	hdr, err := bits.ToBytes(body[:8*headerOctets])
	if err != nil {
		return nil, err
	}
	length := int(hdr[0]) | int(hdr[1])<<8
	need := 8 * (headerOctets + length)
	if length == 0 || len(body) < need {
		return nil, fmt.Errorf("ht40: header declares %d octets, stream too short", length)
	}
	return bits.ToBytes(body[8*headerOctets : need])
}

// OverheadRow is the 40 MHz analogue of the paper's Tables III/IV rows.
type OverheadRow struct {
	Mode          wifi.Mode
	Channel       Channel
	BitsPerSymbol int
	ExtraBits     int
	LossFraction  float64
}

// OverheadTable computes extra-bit counts and throughput loss for every
// paper mode across representative 40 MHz channels (a pilot-free one and
// a pilot-bearing one).
func OverheadTable(conv wifi.Convention) ([]OverheadRow, error) {
	rows := make([]OverheadRow, 0, 2*len(wifi.PaperModes()))
	for _, mode := range wifi.PaperModes() {
		for _, ch := range []Channel{Channel(2), Channel(5)} {
			plan, err := NewPlan(conv, mode, ch)
			if err != nil {
				return nil, fmt.Errorf("ht40: %v %v: %w", mode, ch, err)
			}
			rows = append(rows, OverheadRow{
				Mode:          mode,
				Channel:       ch,
				BitsPerSymbol: DataBitsPerSymbol(mode),
				ExtraBits:     plan.ExtraBitsPerSymbol(),
				LossFraction:  plan.ThroughputLossFraction(),
			})
		}
	}
	return rows, nil
}
