package core

import (
	"fmt"

	"sledzig/internal/wifi"
)

// TableRow summarizes one (modulation, rate) row of the paper's Tables III
// and IV: extra-bit counts and WiFi throughput loss for the pilot-bearing
// channels (CH1-CH3 behave identically) and for CH4.
type TableRow struct {
	Mode             wifi.Mode
	BitsPerSymbol    int     // N_DBPS
	ExtraBitsCH13    int     // extra bits per OFDM symbol, CH1-CH3
	ExtraBitsCH4     int     // extra bits per OFDM symbol, CH4
	LossCH13         float64 // throughput loss fraction, CH1-CH3
	LossCH4          float64 // throughput loss fraction, CH4
	MinSNRDB         float64 // minimum SNR for reliable reception (Table IV)
	PaperExtraCH13   int     // the counts the paper's Table III prints
	PaperExtraCH4    int
	PaperLossCH13Pct float64 // the percentages the paper's Table IV prints
	PaperLossCH4Pct  float64
}

// minSNRTable reproduces the paper's Table IV "Min. SNR" column (from the
// literature it cites).
var minSNRTable = map[wifi.Mode]float64{
	{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}:  11,
	{Modulation: wifi.QAM16, CodeRate: wifi.Rate34}:  15,
	{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}:  18,
	{Modulation: wifi.QAM64, CodeRate: wifi.Rate34}:  20,
	{Modulation: wifi.QAM64, CodeRate: wifi.Rate56}:  25,
	{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}: 29,
	{Modulation: wifi.QAM256, CodeRate: wifi.Rate56}: 31,
}

// MinSNRDB returns the paper's minimum-SNR figure for a mode.
func MinSNRDB(m wifi.Mode) (float64, error) {
	v, ok := minSNRTable[m]
	if !ok {
		return 0, fmt.Errorf("core: no Table IV SNR entry for %v", m)
	}
	return v, nil
}

// paperTableIII holds the counts printed in the paper (for comparison; the
// QAM-64 r=2/3 CH1-CH3 entry of 24 is inconsistent with the paper's own
// Table IV, which implies 28 — see EXPERIMENTS.md).
var paperTableIII = map[wifi.Mode][2]int{
	{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}:  {14, 10},
	{Modulation: wifi.QAM16, CodeRate: wifi.Rate34}:  {14, 10},
	{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}:  {24, 20},
	{Modulation: wifi.QAM64, CodeRate: wifi.Rate34}:  {28, 20},
	{Modulation: wifi.QAM64, CodeRate: wifi.Rate56}:  {28, 20},
	{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}: {42, 30},
	{Modulation: wifi.QAM256, CodeRate: wifi.Rate56}: {42, 30},
}

// paperTableIV holds the loss percentages printed in the paper.
var paperTableIV = map[wifi.Mode][2]float64{
	{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}:  {14.58, 10.42},
	{Modulation: wifi.QAM16, CodeRate: wifi.Rate34}:  {9.72, 6.94},
	{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}:  {14.58, 10.42},
	{Modulation: wifi.QAM64, CodeRate: wifi.Rate34}:  {12.96, 9.26},
	{Modulation: wifi.QAM64, CodeRate: wifi.Rate56}:  {11.67, 8.33},
	{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}: {14.58, 11.72},
	{Modulation: wifi.QAM256, CodeRate: wifi.Rate56}: {13.12, 9.37},
}

// OverheadTable computes the Table III / Table IV rows from first
// principles under the given convention, attaching the paper's printed
// values for comparison.
func OverheadTable(conv wifi.Convention) ([]TableRow, error) {
	rows := make([]TableRow, 0, len(wifi.PaperModes()))
	for _, mode := range wifi.PaperModes() {
		p13, err := NewPlan(conv, mode, CH1)
		if err != nil {
			return nil, fmt.Errorf("core: plan %v CH1: %w", mode, err)
		}
		p4, err := NewPlan(conv, mode, CH4)
		if err != nil {
			return nil, fmt.Errorf("core: plan %v CH4: %w", mode, err)
		}
		snr := minSNRTable[mode]
		paper3 := paperTableIII[mode]
		paper4 := paperTableIV[mode]
		rows = append(rows, TableRow{
			Mode:             mode,
			BitsPerSymbol:    mode.DataBitsPerSymbol(),
			ExtraBitsCH13:    p13.ExtraBitsPerSymbol(),
			ExtraBitsCH4:     p4.ExtraBitsPerSymbol(),
			LossCH13:         p13.ThroughputLossFraction(),
			LossCH4:          p4.ThroughputLossFraction(),
			MinSNRDB:         snr,
			PaperExtraCH13:   paper3[0],
			PaperExtraCH4:    paper3[1],
			PaperLossCH13Pct: paper4[0],
			PaperLossCH4Pct:  paper4[1],
		})
	}
	return rows, nil
}
