package core

import (
	"fmt"

	"sledzig/internal/bits"
	"sledzig/internal/wifi"
)

// Masked-frame assembly: the single source of truth for building and
// stripping frames whose pinning constraints apply only to a subset of
// OFDM symbols. The per-symbol mask generalizes the all-symbols SledZig
// frame (Encoder pins every symbol) to the energy-modulation codecs,
// whose frames alternate pinned ("low") and unpinned ("high") symbols.
// internal/ctc and the codec backends build on these helpers instead of
// duplicating the layout/scramble/solve pipeline.

// MaskedLayout builds the extra-bit layout for a frame of len(mask) OFDM
// symbols where only the symbols marked true carry the plan's per-symbol
// constraints. An all-true mask reproduces Plan.FrameLayout's geometry (and
// shares its memoized instance). Layouts are memoized per (plan, mask) —
// the CTC codecs re-derive the same handful of masks for every frame of a
// message alphabet, so steady-state encoding skips cluster planning
// entirely. The returned layout is shared and read-only.
func MaskedLayout(plan *Plan, mask []bool) (*FrameLayout, error) {
	if plan == nil {
		return nil, fmt.Errorf("core: masked layout needs a plan")
	}
	if len(mask) == 0 {
		return nil, fmt.Errorf("core: masked layout needs at least one symbol")
	}
	allTrue := true
	for _, pinned := range mask {
		if !pinned {
			allTrue = false
			break
		}
	}
	if allTrue {
		// Identical constraint expansion; FrameLayout's own cache (keyed by
		// the cheaper int) holds the shared instance.
		return plan.FrameLayout(len(mask))
	}
	key := maskKey(mask)
	if v, ok := plan.maskedLayouts.Load(key); ok {
		metrics().layoutHit.Inc()
		return v.(*FrameLayout), nil
	}
	metrics().layoutMiss.Inc()
	layout, err := computeMaskedLayout(plan, mask)
	if err != nil {
		return nil, err
	}
	v, _ := plan.maskedLayouts.LoadOrStore(key, layout)
	return v.(*FrameLayout), nil
}

// maskKey packs a symbol mask into a compact map key.
func maskKey(mask []bool) string {
	b := make([]byte, 4+(len(mask)+7)/8)
	b[0] = byte(len(mask))
	b[1] = byte(len(mask) >> 8)
	b[2] = byte(len(mask) >> 16)
	b[3] = byte(len(mask) >> 24)
	for i, pinned := range mask {
		if pinned {
			b[4+i/8] |= 1 << (i % 8)
		}
	}
	return string(b)
}

// computeMaskedLayout derives a masked layout from scratch.
func computeMaskedLayout(plan *Plan, mask []bool) (*FrameLayout, error) {
	nDBPS := plan.Mode.DataBitsPerSymbol()
	perSym := plan.symbolConstraints
	var all []Constraint
	for s, pinned := range mask {
		if !pinned {
			continue
		}
		for _, c := range perSym {
			all = append(all, Constraint{
				MotherIndex: c.MotherIndex + s*2*nDBPS,
				Value:       c.Value,
			})
		}
	}
	return LayoutForGlobalConstraints(all, len(mask))
}

// AssembleMaskedFrame builds a standard-format wifi.Frame of len(mask)
// OFDM symbols carrying payload under the SledZig length-header framing
// (SERVICE, uint16 length, payload, zero pad), with the plan's pinning
// constraints satisfied on every masked symbol. It returns the frame and
// the layout that was solved, so receivers with out-of-band mask knowledge
// can account for the extra bits. seed 0 selects the 802.11 default.
func AssembleMaskedFrame(plan *Plan, mask []bool, payload []byte, seed uint8) (*wifi.Frame, *FrameLayout, error) {
	layout, err := MaskedLayout(plan, mask)
	if err != nil {
		return nil, nil, err
	}
	nSym := len(mask)
	nDBPS := plan.Mode.DataBitsPerSymbol()
	total := nSym * nDBPS

	capacity := total - len(layout.Positions) - serviceBits - tailBits
	if need := 8 * (headerOctets + len(payload)); need > capacity || len(payload) == 0 {
		return nil, nil, fmt.Errorf("core: payload of %d octets outside the %d-bit capacity of a %d-symbol masked frame: %w",
			len(payload), capacity, nSym, ErrPayloadSize)
	}

	// Logical stream: SERVICE zeros, length header, payload, zero pad.
	logical := make([]bits.Bit, total-len(layout.Positions))
	n := serviceBits
	header := [headerOctets]byte{byte(len(payload)), byte(len(payload) >> 8)}
	n += bits.CopyBytes(logical[n:], header[:])
	bits.CopyBytes(logical[n:], payload)

	// Physical unscrambled stream: logical bits at non-extra positions.
	extra := make([]bool, total)
	for _, p := range layout.Positions {
		if p < 0 || p >= total {
			return nil, nil, fmt.Errorf("core: extra position %d outside frame of %d bits: %w", p, total, ErrExtraBitLayout)
		}
		extra[p] = true
	}
	u := make([]bits.Bit, total)
	li := 0
	for i := range u {
		if !extra[i] {
			u[i] = logical[li]
			li++
		}
	}
	if seed == 0 {
		seed = wifi.DefaultScramblerSeed
	}
	x, err := wifi.ScrambleWithSeed(u, seed)
	if err != nil {
		return nil, nil, err
	}
	// Zero the placeholders (scrambling flipped some to the scrambler
	// sequence; the solver assumes unknowns start at zero), then solve.
	for _, p := range layout.Positions {
		x[p] = 0
	}
	if err := SolveExtraBits(x, layout.Clusters); err != nil {
		return nil, nil, err
	}
	tx := wifi.Transmitter{Mode: plan.Mode, Seed: seed, Convention: plan.Convention}
	frame, err := tx.FrameFromScrambled(x, (total-serviceBits-tailBits)/8)
	if err != nil {
		return nil, nil, err
	}
	return frame, layout, nil
}

// StripMaskedPayload inverts AssembleMaskedFrame at the receiver: given
// the demodulated DATA bits and the per-symbol pinning mask, it rebuilds
// the transmitter's layout, removes the extra bits, and parses the
// length-header framing back to the payload.
func StripMaskedPayload(plan *Plan, mask []bool, dataBits []bits.Bit) ([]byte, error) {
	layout, err := MaskedLayout(plan, mask)
	if err != nil {
		return nil, err
	}
	extra := make([]bool, len(dataBits))
	for _, p := range layout.Positions {
		if p < len(extra) {
			extra[p] = true
		}
	}
	logical := make([]bits.Bit, 0, len(dataBits))
	for i, b := range dataBits {
		if !extra[i] {
			logical = append(logical, b)
		}
	}
	if len(logical) < serviceBits+8*headerOctets {
		return nil, fmt.Errorf("core: stripped stream of %d bits too short: %w", len(logical), ErrExtraBitLayout)
	}
	body := logical[serviceBits:]
	hdr, err := bits.ToBytes(body[:8*headerOctets])
	if err != nil {
		return nil, err
	}
	length := int(hdr[0]) | int(hdr[1])<<8
	need := 8 * (headerOctets + length)
	if length == 0 || len(body) < need {
		return nil, fmt.Errorf("core: header declares %d octets but %d bits remain: %w",
			length, len(body)-8*headerOctets, ErrExtraBitLayout)
	}
	return bits.ToBytes(body[8*headerOctets : need])
}
