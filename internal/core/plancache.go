package core

import (
	"sync"

	"sledzig/internal/wifi"
)

// planKey identifies one precomputed plan: everything NewPlan derives
// state from.
type planKey struct {
	conv wifi.Convention
	mode wifi.Mode
	ch   ZigBeeChannel
}

// planEntry makes plan construction single-flight: concurrent first
// requests for the same key build the plan once and share the result.
type planEntry struct {
	once sync.Once
	plan *Plan
	err  error
}

var planCache sync.Map // planKey -> *planEntry

// CachedPlan returns the process-wide shared plan for (conv, mode, ch),
// building it on first use. Plans are immutable after construction, so one
// instance serves any number of encoders, decoders and engine workers
// concurrently; hot paths should prefer this over NewPlan, which always
// rebuilds. Construction errors are cached alongside the plan (they are
// deterministic for a given key).
func CachedPlan(conv wifi.Convention, mode wifi.Mode, ch ZigBeeChannel) (*Plan, error) {
	key := planKey{conv: conv, mode: mode, ch: ch}
	v, ok := planCache.Load(key)
	if !ok {
		v, _ = planCache.LoadOrStore(key, new(planEntry))
		metrics().planMiss.Inc()
	} else {
		metrics().planHit.Inc()
	}
	e := v.(*planEntry)
	e.once.Do(func() {
		e.plan, e.err = NewPlan(conv, mode, ch)
	})
	return e.plan, e.err
}

// PlanCacheLen reports how many (convention, mode, channel) keys the
// process-wide plan cache currently holds — an observability and test
// hook, not a capacity control (the key space is small and bounded).
func PlanCacheLen() int {
	n := 0
	planCache.Range(func(any, any) bool { n++; return true })
	return n
}
