package core

import (
	"fmt"
	"sort"
	"sync"

	"sledzig/internal/bits"
	"sledzig/internal/wifi"
)

// Plan precomputes everything that is fixed for a (convention, mode,
// ZigBee channel) triple: the per-symbol significant-bit constraints and
// the extra-bit positions that satisfy them. Transmitter and receiver
// derive identical plans from the on-air parameters, which is what makes
// extra-bit removal possible without side channels (paper section IV-G).
type Plan struct {
	Convention wifi.Convention
	Mode       wifi.Mode
	// Channel is the protected ZigBee channel (zero when the plan was
	// built from an explicit subcarrier set).
	Channel ZigBeeChannel
	// Subcarriers are the pinned data subcarriers.
	Subcarriers []int

	// symbolConstraints are the constraints of one OFDM symbol, sorted by
	// mother index.
	symbolConstraints []Constraint

	// layouts memoizes FrameLayout by symbol count. Layouts are immutable
	// once built, so cached instances are shared freely across goroutines;
	// frames of recurring sizes (the common case for batch traffic) pay
	// the cluster planning cost once.
	layouts sync.Map // int -> *FrameLayout
	// maskedLayouts memoizes MaskedLayout by packed mask. Masks come from
	// small message alphabets (the CTC codecs derive them from short OOK
	// words), so the map stays bounded by the alphabet, not the traffic.
	maskedLayouts sync.Map // string -> *FrameLayout
}

// NewPlan builds the plan for a protected ZigBee channel using its full
// data-subcarrier window.
func NewPlan(conv wifi.Convention, mode wifi.Mode, ch ZigBeeChannel) (*Plan, error) {
	if !ch.Valid() {
		return nil, fmt.Errorf("core: invalid ZigBee channel %d", int(ch))
	}
	p, err := NewPlanForSubcarriers(conv, mode, ch.DataSubcarriers())
	if err != nil {
		return nil, err
	}
	p.Channel = ch
	return p, nil
}

// NewPlanForSubcarriers builds a plan pinning an explicit set of data
// subcarriers (the Fig. 11 ablation sweeps these).
func NewPlanForSubcarriers(conv wifi.Convention, mode wifi.Mode, subcarriers []int) (*Plan, error) {
	cs, err := SymbolConstraints(conv, mode, subcarriers)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Convention:        conv,
		Mode:              mode,
		Subcarriers:       append([]int(nil), subcarriers...),
		symbolConstraints: cs,
	}
	// Fail fast if even a long frame cannot be planned.
	if _, err := p.FrameLayout(2); err != nil {
		return nil, err
	}
	return p, nil
}

// SymbolConstraintList returns a copy of the per-symbol constraints.
func (p *Plan) SymbolConstraintList() []Constraint {
	out := make([]Constraint, len(p.symbolConstraints))
	copy(out, p.symbolConstraints)
	return out
}

// ExtraBitsPerSymbol returns how many extra bits each OFDM symbol costs:
// one per significant bit (paper Table III).
func (p *Plan) ExtraBitsPerSymbol() int {
	return len(p.symbolConstraints)
}

// EffectiveDataBitsPerSymbol is N_DBPS minus the extra-bit overhead.
func (p *Plan) EffectiveDataBitsPerSymbol() int {
	return p.Mode.DataBitsPerSymbol() - p.ExtraBitsPerSymbol()
}

// ThroughputLossFraction is the paper's Table IV metric: the share of
// encoder input bits spent on extra bits.
func (p *Plan) ThroughputLossFraction() float64 {
	return float64(p.ExtraBitsPerSymbol()) / float64(p.Mode.DataBitsPerSymbol())
}

// Cluster is a maximal run of constrained encoder steps closer than the
// constraint length, solved jointly: Equations lists the pinned outputs,
// Positions the encoder-input bits the solver controls. len(Positions) ==
// len(Equations) and the coefficient matrix is invertible by construction.
type Cluster struct {
	// Equations hold global mother indices and pinned values.
	Equations []Constraint
	// Positions are global encoder-input indices, in solving order.
	Positions []int
}

// FrameLayout returns the global extra-bit positions and solving clusters
// for a frame of nSymbols OFDM symbols. Layouts are memoized per plan and
// shared: the returned value is read-only and must not be modified.
func (p *Plan) FrameLayout(nSymbols int) (*FrameLayout, error) {
	if v, ok := p.layouts.Load(nSymbols); ok {
		metrics().layoutHit.Inc()
		return v.(*FrameLayout), nil
	}
	metrics().layoutMiss.Inc()
	layout, err := p.computeFrameLayout(nSymbols)
	if err != nil {
		return nil, err
	}
	// Concurrent first computations are identical (the planner is
	// deterministic); keep whichever landed first so every caller shares
	// one instance.
	v, _ := p.layouts.LoadOrStore(nSymbols, layout)
	return v.(*FrameLayout), nil
}

// computeFrameLayout derives a layout from scratch.
func (p *Plan) computeFrameLayout(nSymbols int) (*FrameLayout, error) {
	if nSymbols < 1 {
		return nil, fmt.Errorf("core: frame needs at least one symbol, got %d", nSymbols)
	}
	motherPerSymbol := 2 * p.Mode.DataBitsPerSymbol()
	all := make([]Constraint, 0, nSymbols*len(p.symbolConstraints))
	for s := 0; s < nSymbols; s++ {
		for _, c := range p.symbolConstraints {
			all = append(all, Constraint{
				MotherIndex: c.MotherIndex + s*motherPerSymbol,
				Value:       c.Value,
			})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].MotherIndex < all[b].MotherIndex })

	clusters, err := buildClusters(all)
	if err != nil {
		return nil, err
	}
	positions := make([]int, 0, len(all))
	for _, cl := range clusters {
		positions = append(positions, cl.Positions...)
	}
	sort.Ints(positions)
	for i := 1; i < len(positions); i++ {
		if positions[i] == positions[i-1] {
			return nil, fmt.Errorf("core: internal error: duplicate extra position %d", positions[i])
		}
	}
	return &FrameLayout{
		NumSymbols: nSymbols,
		Clusters:   clusters,
		Positions:  positions,
	}, nil
}

// FrameLayout is the frame-wide solving plan.
type FrameLayout struct {
	NumSymbols int
	Clusters   []Cluster
	// Positions lists every extra-bit encoder-input index, ascending.
	Positions []int
}

// buildClusters groups constraints whose steps are within the encoder
// memory of each other and selects an invertible set of solver-controlled
// positions per cluster, preferring the paper's Algorithm 1 choices.
func buildClusters(all []Constraint) ([]Cluster, error) {
	var clusters []Cluster
	for i := 0; i < len(all); {
		j := i + 1
		for j < len(all) && all[j].Step()-all[j-1].Step() < wifi.ConstraintLength {
			j++
		}
		cl, err := planCluster(all[i:j])
		if err != nil {
			return nil, err
		}
		clusters = append(clusters, *cl)
		i = j
	}
	return clusters, nil
}

// planCluster chooses len(eqs) encoder-input positions whose GF(2)
// coefficient matrix against the cluster's equations is invertible.
// Candidate positions are tried in a preference order that reproduces the
// paper's Algorithm 1 (single -> own step; twin -> step-1, step-5) whenever
// that choice is solvable.
func planCluster(eqs []Constraint) (*Cluster, error) {
	minStep, maxStep := eqs[0].Step(), eqs[len(eqs)-1].Step()

	// Candidate preference: paper positions first, then every other
	// window position from latest to earliest. Candidates live in the
	// cluster's step window [minStep-(K-1), maxStep], so dedup is a small
	// offset-indexed slice rather than a map.
	candBase := minStep - (wifi.ConstraintLength - 1)
	pref := make([]int, 0, len(eqs)*2+wifi.ConstraintLength)
	seen := make([]bool, maxStep-candBase+1)
	addCand := func(p int) {
		if p < 0 || p < candBase || p > maxStep {
			return
		}
		if !seen[p-candBase] {
			seen[p-candBase] = true
			pref = append(pref, p)
		}
	}
	for i := 0; i < len(eqs); {
		step := eqs[i].Step()
		twin := i+1 < len(eqs) && eqs[i+1].Step() == step
		if twin {
			addCand(step - 1)
			addCand(step - 5)
			i += 2
		} else {
			addCand(step)
			i++
		}
	}
	for p := maxStep; p >= minStep-(wifi.ConstraintLength-1); p-- {
		addCand(p)
	}

	// Coefficient of position p in the equation for mother index m:
	// generator tap at delay step-p.
	coeff := func(eq Constraint, p int) bits.Bit {
		d := eq.Step() - p
		if d < 0 || d >= wifi.ConstraintLength {
			return 0
		}
		g0, g1 := generatorCoeff(d)
		if eq.MotherIndex%2 == 0 {
			return g0
		}
		return g1
	}

	// Gaussian elimination over the E x C candidate matrix, selecting
	// pivot columns in preference order.
	e := len(eqs)
	rows := make([][]bits.Bit, e)
	backing := make([]bits.Bit, e*len(pref))
	for r := range rows {
		rows[r] = backing[r*len(pref) : (r+1)*len(pref)]
		for c, p := range pref {
			rows[r][c] = coeff(eqs[r], p)
		}
	}
	pivotCols := make([]int, 0, e)
	usedRow := make([]bool, e)
	for c := 0; c < len(pref); c++ {
		// Find an unused row with a 1 in this column.
		pivot := -1
		for r := 0; r < e; r++ {
			if !usedRow[r] && rows[r][c] == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		usedRow[pivot] = true
		pivotCols = append(pivotCols, c)
		for r := 0; r < e; r++ {
			if r != pivot && rows[r][c] == 1 {
				for cc := range rows[r] {
					rows[r][cc] ^= rows[pivot][cc]
				}
			}
		}
		if len(pivotCols) == e {
			break
		}
	}
	if len(pivotCols) != e {
		return nil, fmt.Errorf("core: cluster of %d constraints at steps %d..%d is unsolvable: %w", e, minStep, maxStep, ErrConstraintUnsatisfied)
	}
	positions := make([]int, e)
	for i, c := range pivotCols {
		positions[i] = pref[c]
	}
	sort.Ints(positions)
	return &Cluster{Equations: append([]Constraint(nil), eqs...), Positions: positions}, nil
}

// LayoutForConstraints builds a frame-wide solving layout from an
// arbitrary per-symbol constraint list and mother-stream stride — the
// generic entry point wider channel formats (e.g. the 40 MHz extension)
// use, bypassing the 20 MHz Plan bookkeeping.
func LayoutForConstraints(symbolConstraints []Constraint, nSymbols, motherPerSymbol int) (*FrameLayout, error) {
	if nSymbols < 1 {
		return nil, fmt.Errorf("core: frame needs at least one symbol, got %d", nSymbols)
	}
	if motherPerSymbol < 2 {
		return nil, fmt.Errorf("core: mother stride %d too small", motherPerSymbol)
	}
	all := make([]Constraint, 0, nSymbols*len(symbolConstraints))
	for s := 0; s < nSymbols; s++ {
		for _, c := range symbolConstraints {
			all = append(all, Constraint{
				MotherIndex: c.MotherIndex + s*motherPerSymbol,
				Value:       c.Value,
			})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].MotherIndex < all[b].MotherIndex })
	clusters, err := buildClusters(all)
	if err != nil {
		return nil, err
	}
	positions := make([]int, 0, len(all))
	for _, cl := range clusters {
		positions = append(positions, cl.Positions...)
	}
	sort.Ints(positions)
	return &FrameLayout{NumSymbols: nSymbols, Clusters: clusters, Positions: positions}, nil
}

// LayoutForGlobalConstraints plans a frame from an already-expanded,
// frame-global constraint list (callers that pin only selected symbols,
// like the CTC energy modulator, build this themselves). The list need
// not be sorted.
func LayoutForGlobalConstraints(all []Constraint, nSymbols int) (*FrameLayout, error) {
	if nSymbols < 1 {
		return nil, fmt.Errorf("core: frame needs at least one symbol, got %d", nSymbols)
	}
	sorted := make([]Constraint, len(all))
	copy(sorted, all)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].MotherIndex < sorted[b].MotherIndex })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].MotherIndex == sorted[i-1].MotherIndex {
			return nil, fmt.Errorf("core: duplicate constraint at mother index %d", sorted[i].MotherIndex)
		}
	}
	clusters, err := buildClusters(sorted)
	if err != nil {
		return nil, err
	}
	positions := make([]int, 0, len(sorted))
	for _, cl := range clusters {
		positions = append(positions, cl.Positions...)
	}
	sort.Ints(positions)
	return &FrameLayout{NumSymbols: nSymbols, Clusters: clusters, Positions: positions}, nil
}
