package core

import "sledzig/internal/obs"

// Metric handles for the SledZig encoder/decoder, resolved lazily
// against the process-wide obs registry (nil handles, and therefore
// no-ops, when observability is off).
type coreMetrics struct {
	// Encoder stages.
	encLayout   *obs.Stage // extra-bit position planning
	encScramble *obs.Stage
	encSolve    *obs.Stage // extra-bit insertion (GF(2) cluster solve)
	encVerify   *obs.Stage
	encFrames   *obs.Counter
	encPayload  *obs.Counter // payload octets encoded

	// Decoder stages.
	decDetect   *obs.Stage // protected-channel detection
	decStrip    *obs.Stage // extra-bit strip + header parse
	decFrames   *obs.Counter
	decPayload  *obs.Counter
	failDetect  *obs.Counter // no protected channel found
	failLayout  *obs.Counter // layout/geometry mismatch
	failHeader  *obs.Counter // length header invalid
	failLength  *obs.Counter // stream too short for declared length
	failEncoder *obs.Counter // encoder-side failures (singular cluster, ...)

	// Plan/layout cache effectiveness.
	planHit    *obs.Counter
	planMiss   *obs.Counter
	layoutHit  *obs.Counter
	layoutMiss *obs.Counter

	bus *obs.Bus
}

var coreLazy obs.Lazy[*coreMetrics]

var coreNil = &coreMetrics{}

func metrics() *coreMetrics {
	return coreLazy.Get(func(r *obs.Registry) *coreMetrics {
		if r == nil {
			return coreNil
		}
		enc := r.Scope("core.encode")
		dec := r.Scope("core.decode")
		return &coreMetrics{
			encLayout:   enc.Stage("layout"),
			encScramble: enc.Stage("scramble"),
			encSolve:    enc.Stage("solve"),
			encVerify:   enc.Stage("verify"),
			encFrames:   enc.Counter("frames"),
			encPayload:  enc.Counter("payload_bytes"),

			decDetect:   dec.Stage("detect"),
			decStrip:    dec.Stage("strip"),
			decFrames:   dec.Counter("frames"),
			decPayload:  dec.Counter("payload_bytes"),
			failDetect:  dec.Counter("fail.detect"),
			failLayout:  dec.Counter("fail.layout"),
			failHeader:  dec.Counter("fail.header"),
			failLength:  dec.Counter("fail.length"),
			failEncoder: enc.Counter("fail"),

			planHit:    r.Counter("core.plan.cache_hits"),
			planMiss:   r.Counter("core.plan.cache_misses"),
			layoutHit:  r.Counter("core.layout.cache_hits"),
			layoutMiss: r.Counter("core.layout.cache_misses"),

			bus: r.Bus(),
		}
	})
}

// fail counts one failure and mirrors it on the event bus; kind is the
// full taxonomy entry ("decode_fail.detect", "encode_fail.solve", ...).
func (m *coreMetrics) fail(c *obs.Counter, source, kind string, err error) {
	c.Inc()
	if m.bus.Active() {
		detail := ""
		if err != nil {
			detail = err.Error()
		}
		m.bus.Publish(obs.Event{Source: source, Kind: kind, Node: -1, Detail: detail})
	}
}
