// Package core implements the SledZig mechanism itself: deriving the
// significant bits that pin the OFDM subcarriers overlapping a ZigBee
// channel to the lowest-power QAM points, inserting the extra bits that
// satisfy those constraints through the standard convolutional encoder
// (Algorithm 1 of the paper), and the receiver-side inverse (extra-bit
// removal and ZigBee-channel detection).
package core

import (
	"fmt"
	"math"
	"sort"

	"sledzig/internal/wifi"
)

// ZigBeeChannel identifies one of the four 2 MHz ZigBee channels that
// overlap a 20 MHz WiFi channel, in ascending frequency order. The paper
// calls them CH1..CH4; on WiFi channel 13 they are ZigBee channels 23..26.
type ZigBeeChannel int

// The four overlapped channels.
const (
	CH1 ZigBeeChannel = iota + 1
	CH2
	CH3
	CH4
)

// String names the channel as the paper does.
func (c ZigBeeChannel) String() string {
	if c < CH1 || c > CH4 {
		return fmt.Sprintf("ZigBeeChannel(%d)", int(c))
	}
	return fmt.Sprintf("CH%d", int(c))
}

// Valid reports whether c is CH1..CH4.
func (c ZigBeeChannel) Valid() bool { return c >= CH1 && c <= CH4 }

// AllChannels returns CH1..CH4.
func AllChannels() []ZigBeeChannel {
	return []ZigBeeChannel{CH1, CH2, CH3, CH4}
}

// OffsetHz returns the channel's center-frequency offset from the WiFi
// channel center: -7, -2, +3, +8 MHz. (WiFi channels are on a 5 MHz raster
// like ZigBee's, so the overlap pattern is the same for every aligned
// WiFi/ZigBee pairing — the paper's Fig. 2.)
func (c ZigBeeChannel) OffsetHz() float64 {
	return float64(int(c)-1)*5e6 - 7e6
}

// FromZigBeeChannelNumber maps an absolute 2.4 GHz ZigBee channel number
// (11..26) and a WiFi channel (1..13) to the relative overlapped channel.
// It errors when the ZigBee channel does not overlap the WiFi channel.
func FromZigBeeChannelNumber(zigbeeCh, wifiCh int) (ZigBeeChannel, error) {
	if wifiCh < 1 || wifiCh > 13 {
		return 0, fmt.Errorf("core: WiFi channel %d out of range [1, 13]", wifiCh)
	}
	if zigbeeCh < 11 || zigbeeCh > 26 {
		return 0, fmt.Errorf("core: ZigBee channel %d out of range [11, 26]", zigbeeCh)
	}
	wifiCenter := 2407.0 + 5.0*float64(wifiCh)    // MHz
	zbCenter := 2405.0 + 5.0*float64(zigbeeCh-11) // MHz
	offset := zbCenter - wifiCenter
	for _, c := range AllChannels() {
		if math.Abs(offset-c.OffsetHz()/1e6) < 0.5 {
			return c, nil
		}
	}
	return 0, fmt.Errorf("core: ZigBee channel %d (%.0f MHz) does not overlap WiFi channel %d (%.0f MHz)",
		zigbeeCh, zbCenter, wifiCh, wifiCenter)
}

// SubcarrierWindow returns the signed indices of the eight OFDM subcarriers
// SledZig pins for channel c: the six fully inside the 2 MHz band plus the
// two adjacent ones whose spectral leakage would otherwise raise the band
// power (paper section IV-B).
func (c ZigBeeChannel) SubcarrierWindow() []int {
	center := c.OffsetHz() / wifi.SubcarrierSpacing // in subcarrier units
	half := 1e6 / wifi.SubcarrierSpacing            // 3.2 subcarriers
	lo := int(math.Ceil(center - half))
	hi := int(math.Floor(center + half))
	out := make([]int, 0, hi-lo+3)
	for k := lo - 1; k <= hi+1; k++ {
		out = append(out, k)
	}
	return out
}

// DataSubcarriers returns the data subcarriers within the window (7 for
// CH1-CH3, which contain one pilot; 5 for CH4, which contains three
// nulls).
func (c ZigBeeChannel) DataSubcarriers() []int {
	out := make([]int, 0, 8)
	for _, k := range c.SubcarrierWindow() {
		if !wifi.IsPilot(k) && !wifi.IsNull(k) {
			out = append(out, k)
		}
	}
	return out
}

// PilotSubcarriers returns the pilots within the window (one for CH1-CH3,
// none for CH4).
func (c ZigBeeChannel) PilotSubcarriers() []int {
	out := make([]int, 0, 1)
	for _, k := range c.SubcarrierWindow() {
		if wifi.IsPilot(k) {
			out = append(out, k)
		}
	}
	return out
}

// DataSubcarrierSubset returns the n data subcarriers closest to the
// channel center, used by the paper's Fig. 11 ablation on how many
// subcarriers must be pinned. For n beyond the channel's own window the
// selection extends into neighbouring data subcarriers, matching the
// paper's 8-subcarrier sweep point on the pilot-bearing channels.
func (c ZigBeeChannel) DataSubcarrierSubset(n int) ([]int, error) {
	all := wifi.DataSubcarriers()
	if n < 0 || n > len(all) {
		return nil, fmt.Errorf("core: cannot select %d of %d data subcarriers", n, len(all))
	}
	center := c.OffsetHz() / wifi.SubcarrierSpacing
	sorted := append([]int(nil), all...)
	sort.Slice(sorted, func(i, j int) bool {
		di := math.Abs(float64(sorted[i]) - center)
		dj := math.Abs(float64(sorted[j]) - center)
		//sledvet:ignore floateq tie-break between symmetric subcarriers whose distances are bit-identical by construction
		if di != dj {
			return di < dj
		}
		return sorted[i] < sorted[j]
	})
	subset := append([]int(nil), sorted[:n]...)
	sort.Ints(subset)
	return subset, nil
}

// BandHz returns the channel's band edges relative to the WiFi center
// frequency, for waveform band-power measurement.
func (c ZigBeeChannel) BandHz() (lo, hi float64) {
	return c.OffsetHz() - 1e6, c.OffsetHz() + 1e6
}
