package core

import (
	"sync"
	"testing"

	"sledzig/internal/wifi"
)

func TestCachedPlanReturnsSameInstance(t *testing.T) {
	mode := wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	p1, err := CachedPlan(wifi.ConventionIEEE, mode, 2)
	if err != nil {
		t.Fatalf("CachedPlan: %v", err)
	}
	p2, err := CachedPlan(wifi.ConventionIEEE, mode, 2)
	if err != nil {
		t.Fatalf("CachedPlan: %v", err)
	}
	if p1 != p2 {
		t.Fatal("same key returned distinct plan instances")
	}
	p3, err := CachedPlan(wifi.ConventionIEEE, mode, 3)
	if err != nil {
		t.Fatalf("CachedPlan: %v", err)
	}
	if p3 == p1 {
		t.Fatal("different channels share a plan instance")
	}
}

func TestCachedPlanMatchesNewPlan(t *testing.T) {
	mode := wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate34}
	cached, err := CachedPlan(wifi.ConventionPaper, mode, 1)
	if err != nil {
		t.Fatalf("CachedPlan: %v", err)
	}
	fresh, err := NewPlan(wifi.ConventionPaper, mode, 1)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if cached.EffectiveDataBitsPerSymbol() != fresh.EffectiveDataBitsPerSymbol() {
		t.Fatalf("cached plan diverges from fresh plan: %d vs %d effective bits/symbol",
			cached.EffectiveDataBitsPerSymbol(), fresh.EffectiveDataBitsPerSymbol())
	}
}

func TestCachedPlanConcurrentSingleFlight(t *testing.T) {
	mode := wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate56}
	const goroutines = 16
	plans := make([]*Plan, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := CachedPlan(wifi.ConventionIEEE, mode, CH1)
			if err != nil {
				t.Errorf("CachedPlan: %v", err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if plans[i] != plans[0] {
			t.Fatalf("goroutine %d got a different plan instance", i)
		}
	}
}

func TestCachedPlanCachesErrors(t *testing.T) {
	mode := wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	if _, err := CachedPlan(wifi.ConventionIEEE, mode, 99); err == nil {
		t.Fatal("expected error for invalid channel 99")
	}
	if _, err := CachedPlan(wifi.ConventionIEEE, mode, 99); err == nil {
		t.Fatal("expected cached error for invalid channel 99")
	}
}

func TestFrameLayoutMemoized(t *testing.T) {
	mode := wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	plan, err := CachedPlan(wifi.ConventionIEEE, mode, 2)
	if err != nil {
		t.Fatalf("CachedPlan: %v", err)
	}
	l1, err := plan.FrameLayout(4)
	if err != nil {
		t.Fatalf("FrameLayout: %v", err)
	}
	l2, err := plan.FrameLayout(4)
	if err != nil {
		t.Fatalf("FrameLayout: %v", err)
	}
	if l1 != l2 {
		t.Fatal("same symbol count returned distinct layout instances")
	}
	l3, err := plan.FrameLayout(5)
	if err != nil {
		t.Fatalf("FrameLayout: %v", err)
	}
	if l3 == l1 {
		t.Fatal("different symbol counts share a layout instance")
	}
}

func TestFrameLayoutConcurrent(t *testing.T) {
	mode := wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}
	plan, err := CachedPlan(wifi.ConventionIEEE, mode, 4)
	if err != nil {
		t.Fatalf("CachedPlan: %v", err)
	}
	var wg sync.WaitGroup
	layouts := make([]*FrameLayout, 16)
	for i := range layouts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := plan.FrameLayout(6)
			if err != nil {
				t.Errorf("FrameLayout: %v", err)
				return
			}
			layouts[i] = l
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(layouts); i++ {
		if layouts[i] != layouts[0] {
			t.Fatalf("goroutine %d got a different layout instance", i)
		}
	}
}

func TestEncodeToMatchesEncode(t *testing.T) {
	mode := wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	plan, err := NewPlan(wifi.ConventionIEEE, mode, 2)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	enc := &Encoder{Plan: plan}
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	want, err := enc.Encode(payload)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Reuse one result across several payloads; the last pass must still
	// match a fresh Encode bit for bit.
	var res EncodeResult
	for round := 0; round < 3; round++ {
		if err := enc.EncodeTo(payload, &res); err != nil {
			t.Fatalf("EncodeTo round %d: %v", round, err)
		}
	}
	if len(res.TransmitBits) != len(want.TransmitBits) {
		t.Fatalf("TransmitBits length %d != %d", len(res.TransmitBits), len(want.TransmitBits))
	}
	for i := range want.TransmitBits {
		if res.TransmitBits[i] != want.TransmitBits[i] {
			t.Fatalf("TransmitBits diverge at %d", i)
		}
	}
	for i := range want.Frame.ScrambledBits {
		if res.Frame.ScrambledBits[i] != want.Frame.ScrambledBits[i] {
			t.Fatalf("ScrambledBits diverge at %d", i)
		}
	}
	if res.Frame.PSDULength != want.Frame.PSDULength || res.Frame.NumSymbols != want.Frame.NumSymbols {
		t.Fatalf("frame header mismatch: %+v vs %+v", res.Frame, want.Frame)
	}
}
