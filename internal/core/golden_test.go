package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sledzig/internal/wifi"
)

// The golden file pins the derived tables (significant-bit positions and
// extra-bit positions for every paper mode/channel combination, both
// conventions) so refactors cannot silently move them. It doubles as an
// interop vector set for other implementations. Regenerate with
//
//	UPDATE_GOLDEN=1 go test ./internal/core -run TestGoldenVectors
func updateGolden() bool { return os.Getenv("UPDATE_GOLDEN") != "" }

type goldenEntry struct {
	Convention string `json:"convention"`
	Mode       string `json:"mode"`
	Channel    string `json:"channel"`
	// Positions are 1-based mother-stream significant-bit positions of
	// the first OFDM symbol (the paper's Table II numbering).
	Positions []int `json:"positions"`
	// ExtraBits are 0-based encoder-input indices of the extra bits of
	// the first OFDM symbol.
	ExtraBits []int `json:"extraBits"`
}

func computeGolden(t *testing.T) []goldenEntry {
	t.Helper()
	var out []goldenEntry
	for _, conv := range []wifi.Convention{wifi.ConventionIEEE, wifi.ConventionPaper} {
		for _, mode := range wifi.PaperModes() {
			for _, ch := range AllChannels() {
				plan, err := NewPlan(conv, mode, ch)
				if err != nil {
					t.Fatalf("%v %v %v: %v", conv, mode, ch, err)
				}
				layout, err := plan.FrameLayout(1)
				if err != nil {
					t.Fatal(err)
				}
				entry := goldenEntry{
					Convention: conv.String(),
					Mode:       mode.String(),
					Channel:    ch.String(),
					ExtraBits:  layout.Positions,
				}
				for _, c := range plan.SymbolConstraintList() {
					entry.Positions = append(entry.Positions, c.PaperPosition())
				}
				out = append(out, entry)
			}
		}
	}
	return out
}

func TestGoldenVectors(t *testing.T) {
	path := filepath.Join("testdata", "vectors.json")
	got := computeGolden(t)
	encoded, err := json.MarshalIndent(got, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	encoded = append(encoded, '\n')
	if updateGolden() {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, encoded, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if !bytes.Equal(encoded, want) {
		t.Fatalf("derived tables diverge from %s — positions moved; if intentional, regenerate with -update", path)
	}
}
