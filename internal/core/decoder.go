package core

import (
	"fmt"
	"math"

	"sledzig/internal/bits"
	"sledzig/internal/obs/trace"
	"sledzig/internal/wifi"
)

// Decoder inverts the SledZig encoding at the WiFi receiver: it strips the
// extra bits (whose positions follow from the on-air mode and the detected
// ZigBee channel) and returns the original payload. Mode and coding rate
// come from the PLCP header; the ZigBee channel is detected from the
// constellation points themselves (paper section IV-G).
type Decoder struct {
	Convention wifi.Convention
	// Trace, when non-nil, receives one child span per SledZig decode
	// stage (core.detect, core.strip). A nil Trace costs one nil check
	// per stage.
	Trace *trace.Frame
}

// Decode recovers the payload from a received frame, given the protected
// channel (use DetectChannel first when it is unknown). Plans come from the
// process-wide cache, so repeated frames of one mode share a single plan
// and its memoized frame layouts.
func (d Decoder) Decode(rx *wifi.RxResult, ch ZigBeeChannel) ([]byte, error) {
	plan, err := CachedPlan(d.Convention, rx.Mode, ch)
	if err != nil {
		return nil, err
	}
	return d.decodeWithPlan(rx, plan)
}

// DecodeAuto detects the protected channel and decodes.
func (d Decoder) DecodeAuto(rx *wifi.RxResult) ([]byte, ZigBeeChannel, error) {
	m := metrics()
	t0 := m.decDetect.Start()
	mk := d.Trace.Begin("core.detect")
	ch, ok := d.DetectChannel(rx.Mode.Modulation, rx.DataPoints)
	mk.End()
	if !ok {
		m.decDetect.Fail(t0)
		err := fmt.Errorf("core: no SledZig-protected channel detected: %w", ErrNoProtectedChannel)
		m.fail(m.failDetect, "core.decode", "decode_fail.detect", err)
		return nil, 0, err
	}
	m.decDetect.Done(t0, 0)
	payload, err := d.Decode(rx, ch)
	if err != nil {
		return nil, ch, err
	}
	return payload, ch, nil
}

func (d Decoder) decodeWithPlan(rx *wifi.RxResult, plan *Plan) ([]byte, error) {
	m := metrics()
	t0 := m.decStrip.Start()
	mk := d.Trace.Begin("core.strip")
	defer mk.End()
	nDBPS := plan.Mode.DataBitsPerSymbol()
	if len(rx.DataBits)%nDBPS != 0 {
		err := fmt.Errorf("core: DATA field of %d bits is not whole symbols of %d: %w", len(rx.DataBits), nDBPS, ErrExtraBitLayout)
		m.decStrip.Fail(t0)
		m.fail(m.failLayout, "core.decode", "decode_fail.layout", err)
		return nil, err
	}
	nSym := len(rx.DataBits) / nDBPS
	layout, err := plan.FrameLayout(nSym)
	if err != nil {
		m.decStrip.Fail(t0)
		m.fail(m.failLayout, "core.decode", "decode_fail.layout", err)
		return nil, err
	}
	extra := make([]bool, len(rx.DataBits))
	for _, p := range layout.Positions {
		if p >= len(extra) {
			err := fmt.Errorf("core: layout position %d beyond frame: %w", p, ErrExtraBitLayout)
			m.decStrip.Fail(t0)
			m.fail(m.failLayout, "core.decode", "decode_fail.layout", err)
			return nil, err
		}
		extra[p] = true
	}
	logical := make([]bits.Bit, 0, len(rx.DataBits)-len(layout.Positions))
	for i, b := range rx.DataBits {
		if !extra[i] {
			logical = append(logical, b)
		}
	}
	if len(logical) < serviceBits+8*headerOctets {
		err := fmt.Errorf("core: stripped stream too short (%d bits): %w", len(logical), ErrExtraBitLayout)
		m.decStrip.Fail(t0)
		m.fail(m.failLength, "core.decode", "decode_fail.length", err)
		return nil, err
	}
	body := logical[serviceBits:]
	headerBytes, err := bits.ToBytes(body[:8*headerOctets])
	if err != nil {
		m.decStrip.Fail(t0)
		m.fail(m.failHeader, "core.decode", "decode_fail.header", err)
		return nil, err
	}
	length := int(headerBytes[0]) | int(headerBytes[1])<<8
	if length == 0 {
		err := fmt.Errorf("core: header declares empty payload: %w", ErrExtraBitLayout)
		m.decStrip.Fail(t0)
		m.fail(m.failHeader, "core.decode", "decode_fail.header", err)
		return nil, err
	}
	need := 8 * (headerOctets + length)
	if len(body) < need {
		err := fmt.Errorf("core: header declares %d octets but only %d bits remain: %w", length, len(body)-8*headerOctets, ErrExtraBitLayout)
		m.decStrip.Fail(t0)
		m.fail(m.failLength, "core.decode", "decode_fail.length", err)
		return nil, err
	}
	payload, err := bits.ToBytes(body[8*headerOctets : need])
	if err != nil {
		m.decStrip.Fail(t0)
		m.fail(m.failHeader, "core.decode", "decode_fail.header", err)
		return nil, err
	}
	m.decStrip.Done(t0, len(payload))
	m.decFrames.Inc()
	m.decPayload.Add(uint64(len(payload)))
	return payload, nil
}

// DetectChannel inspects received constellation points and reports which
// overlapped ZigBee channel, if any, is SledZig-protected: all its
// overlapped data subcarriers carry lowest-ring points in (nearly) every
// symbol. The 0.9 acceptance threshold tolerates occasional hard-decision
// errors on noisy points. The modulation comes from the PLCP header.
func (d Decoder) DetectChannel(m wifi.Modulation, dataPoints [][]complex128) (ZigBeeChannel, bool) {
	if len(dataPoints) == 0 {
		return 0, false
	}
	// Phase-only modulations have a single amplitude ring: every point is
	// trivially "lowest ring", which would make detection fire on any BPSK
	// or QPSK frame. Those modes cannot carry SledZig pinning at all.
	if offsets, _ := d.Convention.SignificantOffsetsC(m); len(offsets) == 0 {
		return 0, false
	}
	dataIndex := make(map[int]int, wifi.NumDataSubcarriers)
	for i, k := range wifi.DataSubcarriers() {
		dataIndex[k] = i
	}
	best, bestFrac := ZigBeeChannel(0), 0.0
	for _, ch := range AllChannels() {
		subs := ch.DataSubcarriers()
		low, totalPts := 0, 0
		for _, pts := range dataPoints {
			for _, k := range subs {
				idx := dataIndex[k]
				if idx >= len(pts) {
					continue
				}
				totalPts++
				if isLowestRing(m, pts[idx]) {
					low++
				}
			}
		}
		if totalPts == 0 {
			continue
		}
		frac := float64(low) / float64(totalPts)
		if frac > bestFrac {
			best, bestFrac = ch, frac
		}
	}
	if bestFrac >= 0.9 {
		return best, true
	}
	return 0, false
}

// isLowestRing reports whether a (possibly noisy) point of modulation m is
// nearest the inner constellation ring on both axes: the inner/outer
// decision boundary lies at 2*K_mod.
func isLowestRing(m wifi.Modulation, p complex128) bool {
	k := wifi.NormFactor(m)
	return math.Abs(real(p)) < 2*k && math.Abs(imag(p)) < 2*k
}
