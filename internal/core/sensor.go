package core

import (
	"fmt"

	"sledzig/internal/dsp"
	"sledzig/internal/wifi"
)

// ChannelSensor implements the adaptive variant the paper sketches in its
// related-work discussion: a WiFi device that identifies which overlapped
// ZigBee channel carries a low-power neighbour (from a quiet-period
// capture) and protects that one. It is a simple energy detector over the
// four 2 MHz windows — the same signal-identification role the paper
// delegates to systems like SoNIC or LoFi.
type ChannelSensor struct {
	// SampleRate of the capture (default 20 MS/s, the WiFi baseband).
	SampleRate float64
	// MarginDB is how far above the quietest channel a candidate must sit
	// to count as occupied (default 6 dB).
	MarginDB float64
}

func (s ChannelSensor) sampleRate() float64 {
	if s.SampleRate == 0 {
		return wifi.SampleRate
	}
	return s.SampleRate
}

func (s ChannelSensor) margin() float64 {
	if s.MarginDB == 0 {
		return 6
	}
	return s.MarginDB
}

// BandLevels measures the power in each overlapped channel (dB, relative
// units of the capture).
func (s ChannelSensor) BandLevels(capture []complex128) (map[ZigBeeChannel]float64, error) {
	if len(capture) < 64 {
		return nil, fmt.Errorf("core: capture of %d samples too short to sense", len(capture))
	}
	out := make(map[ZigBeeChannel]float64, 4)
	for _, ch := range AllChannels() {
		lo, hi := ch.BandHz()
		p, err := dsp.BandPower(capture, s.sampleRate(), lo, hi)
		if err != nil {
			return nil, err
		}
		out[ch] = dsp.DB(p)
	}
	return out, nil
}

// Sense picks the overlapped channel with the highest energy, provided it
// clears the occupancy margin over the quietest channel. The boolean is
// false when no channel stands out (nothing to protect).
func (s ChannelSensor) Sense(capture []complex128) (ZigBeeChannel, bool, error) {
	levels, err := s.BandLevels(capture)
	if err != nil {
		return 0, false, err
	}
	best, quiet := CH1, CH1
	for _, ch := range AllChannels() {
		if levels[ch] > levels[best] {
			best = ch
		}
		if levels[ch] < levels[quiet] {
			quiet = ch
		}
	}
	if levels[best]-levels[quiet] < s.margin() {
		return 0, false, nil
	}
	return best, true, nil
}
