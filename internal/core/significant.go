package core

import (
	"fmt"
	"sort"

	"sledzig/internal/bits"
	"sledzig/internal/wifi"
)

// Constraint pins one rate-1/2 mother-coded bit to a value. MotherIndex is
// 0-based within one OFDM symbol's mother stream (2 * N_DBPS bits per
// symbol); the paper's Table II uses the equivalent 1-based positions p_k.
type Constraint struct {
	MotherIndex int
	Value       bits.Bit
}

// Step returns the encoder input step (0-based) whose output carries the
// constrained bit.
func (c Constraint) Step() int { return c.MotherIndex / 2 }

// PaperPosition returns the 1-based coded-bit position p_k as the paper
// tabulates it (valid for rate 1/2 where the transmitted stream equals the
// mother stream).
func (c Constraint) PaperPosition() int { return c.MotherIndex + 1 }

// SymbolConstraints derives, for one OFDM symbol, the mother-stream
// constraints that pin the given data subcarriers to the lowest-power QAM
// ring under the given pipeline convention. The subcarriers must be data
// subcarriers (not pilots or nulls).
func SymbolConstraints(conv wifi.Convention, mode wifi.Mode, dataSubcarriers []int) ([]Constraint, error) {
	if err := mode.Validate(); err != nil {
		return nil, err
	}
	offsets, values := conv.SignificantOffsetsC(mode.Modulation)
	if len(offsets) == 0 {
		return nil, fmt.Errorf("core: modulation %v has no pinnable amplitude bits", mode.Modulation)
	}
	// Position of each signed subcarrier in the 48-wide data array.
	dataIndex := make(map[int]int, wifi.NumDataSubcarriers)
	for i, k := range wifi.DataSubcarriers() {
		dataIndex[k] = i
	}
	bpsc := mode.Modulation.BitsPerSubcarrier()
	nCBPS := mode.CodedBitsPerSymbol()
	mother, err := wifi.MotherIndices(nCBPS, mode.CodeRate)
	if err != nil {
		return nil, err
	}
	out := make([]Constraint, 0, len(dataSubcarriers)*len(offsets))
	for _, k := range dataSubcarriers {
		idx, ok := dataIndex[k]
		if !ok {
			return nil, fmt.Errorf("core: subcarrier %d is not a data subcarrier", k)
		}
		for i, off := range offsets {
			j := idx*bpsc + off // post-interleaver position
			cs := conv.DeinterleaveIndexC(mode.Modulation, j)
			out = append(out, Constraint{MotherIndex: mother[cs], Value: values[i]})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].MotherIndex < out[b].MotherIndex })
	for i := 1; i < len(out); i++ {
		if out[i].MotherIndex == out[i-1].MotherIndex {
			return nil, fmt.Errorf("core: duplicate constraint at mother index %d", out[i].MotherIndex)
		}
	}
	return out, nil
}

// StepKind classifies how a constrained encoder step is satisfied.
type StepKind int

// Single steps pin one of the step's two coded bits and solve for the
// step's own input bit; Twin steps pin both coded bits and solve for the
// input bits at offsets -1 and -5 (paper section IV-D).
const (
	Single StepKind = iota + 1
	Twin
)

// ConstrainedStep groups the constraints landing on one encoder step.
type ConstrainedStep struct {
	Step int // 0-based encoder input index within the symbol
	Kind StepKind
	// Y0 and Y1 hold the pinned values of the g0/g1 outputs; for Single
	// exactly one of HasY0/HasY1 is set.
	Y0, Y1       bits.Bit
	HasY0, HasY1 bool
	// ExtraOffsets are the input-bit indices (within the symbol, may be
	// negative for steps near the start, meaning they fall in the previous
	// symbol's input range) that the solver controls for this step.
	ExtraOffsets []int
}

// twinDelayPreference orders the shift-register delays a twin may solve
// through. The paper's choice {1, 5} comes first so the standard case
// reproduces Algorithm 1 exactly; the remaining delays are fallbacks for
// the rare QAM-256 configurations where {n-1, n-5} collides with another
// constraint's extra bit. Delay 4 is absent from both generators and can
// never be solved through.
var twinDelayPreference = []int{1, 5, 0, 2, 3, 6}

// generatorCoeff returns the (g0, g1) tap coefficients at a delay.
func generatorCoeff(delay int) (g0, g1 bits.Bit) {
	return bits.Bit((wifi.G0Mask >> delay) & 1), bits.Bit((wifi.G1Mask >> delay) & 1)
}

// solvableTwinPair reports whether the 2x2 GF(2) system over delays
// (da, db) is invertible.
func solvableTwinPair(da, db int) bool {
	a0, a1 := generatorCoeff(da)
	b0, b1 := generatorCoeff(db)
	return (a0&b1)^(b0&a1) == 1
}

// GroupConstraints converts a sorted constraint list into constrained
// steps and assigns each its extra-bit positions: singles solve through
// the step's own input bit; twins solve through two window bits, the
// paper's {step-1, step-5} when free, otherwise the first collision-free
// solvable pair. firstSymbol forbids positions before the frame start.
func GroupConstraints(constraints []Constraint, firstSymbol bool) ([]ConstrainedStep, error) {
	var out []ConstrainedStep
	constrainedSteps := make(map[int]bool)
	for _, c := range constraints {
		constrainedSteps[c.Step()] = true
	}
	used := make(map[int]bool)

	// hazardFree reports whether position p, determined at step owner, is
	// safe: it must not feed the encoder window of any constrained step
	// earlier than owner (those outputs would already have been fixed
	// using a stale value).
	hazardFree := func(p, owner int) bool {
		if used[p] {
			return false
		}
		if firstSymbol && p < 0 {
			return false
		}
		for n := p; n < p+wifi.ConstraintLength; n++ {
			if n < owner && constrainedSteps[n] {
				return false
			}
		}
		return true
	}

	for i := 0; i < len(constraints); {
		c := constraints[i]
		step := c.Step()
		cs := ConstrainedStep{Step: step}
		if c.MotherIndex%2 == 0 {
			cs.Y0, cs.HasY0 = c.Value, true
		} else {
			cs.Y1, cs.HasY1 = c.Value, true
		}
		i++
		if i < len(constraints) && constraints[i].Step() == step {
			c2 := constraints[i]
			if c2.MotherIndex%2 == 0 {
				cs.Y0, cs.HasY0 = c2.Value, true
			} else {
				cs.Y1, cs.HasY1 = c2.Value, true
			}
			i++
		}
		if cs.HasY0 && cs.HasY1 {
			cs.Kind = Twin
			found := false
			for ai := 0; ai < len(twinDelayPreference) && !found; ai++ {
				for bi := ai + 1; bi < len(twinDelayPreference) && !found; bi++ {
					da, db := twinDelayPreference[ai], twinDelayPreference[bi]
					if !solvableTwinPair(da, db) {
						continue
					}
					pa, pb := step-da, step-db
					if pa != pb && hazardFree(pa, step) && hazardFree(pb, step) {
						cs.ExtraOffsets = []int{pa, pb}
						found = true
					}
				}
			}
			if !found {
				return nil, fmt.Errorf("core: no solvable extra-bit pair for twin at step %d", step)
			}
		} else {
			cs.Kind = Single
			if !hazardFree(step, step) {
				return nil, fmt.Errorf("core: single constraint at step %d cannot claim its own input bit", step)
			}
			cs.ExtraOffsets = []int{step}
		}
		for _, p := range cs.ExtraOffsets {
			used[p] = true
		}
		out = append(out, cs)
	}
	return out, nil
}

// ValidateSteps independently re-checks the solvability invariants of a
// planned step list (GroupConstraints enforces them during planning; this
// is the belt-and-braces verifier used by tests and by Plan construction):
//
//   - extra-bit positions never collide,
//   - every extra position lies inside its own step's encoder window,
//   - twins solve through an invertible coefficient pair,
//   - a position determined at step m never feeds the window of an
//     earlier constrained step (one-pass forward solvability),
//   - with firstSymbol set, no position precedes the frame start.
func ValidateSteps(steps []ConstrainedStep, firstSymbol bool) error {
	owner := make(map[int]int)
	constrained := make(map[int]bool, len(steps))
	for _, s := range steps {
		constrained[s.Step] = true
	}
	for _, s := range steps {
		for _, off := range s.ExtraOffsets {
			if firstSymbol && off < 0 {
				return fmt.Errorf("core: extra bit at input %d precedes the frame start", off)
			}
			if _, dup := owner[off]; dup {
				return fmt.Errorf("core: extra-bit position %d assigned twice", off)
			}
			if off < s.Step-(wifi.ConstraintLength-1) || off > s.Step {
				return fmt.Errorf("core: extra bit %d outside window of step %d", off, s.Step)
			}
			owner[off] = s.Step
		}
		switch s.Kind {
		case Single:
			if len(s.ExtraOffsets) != 1 {
				return fmt.Errorf("core: single step %d has %d extra bits", s.Step, len(s.ExtraOffsets))
			}
		case Twin:
			if len(s.ExtraOffsets) != 2 {
				return fmt.Errorf("core: twin step %d has %d extra bits", s.Step, len(s.ExtraOffsets))
			}
			if !solvableTwinPair(s.Step-s.ExtraOffsets[0], s.Step-s.ExtraOffsets[1]) {
				return fmt.Errorf("core: twin step %d uses a singular coefficient pair", s.Step)
			}
		default:
			return fmt.Errorf("core: step %d has unknown kind %d", s.Step, s.Kind)
		}
	}
	for _, s := range steps {
		for off := s.Step - (wifi.ConstraintLength - 1); off <= s.Step; off++ {
			if own, ok := owner[off]; ok && own > s.Step {
				return fmt.Errorf("core: step %d reads input %d that step %d determines later", s.Step, off, own)
			}
		}
	}
	return nil
}
