package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sledzig/internal/bits"
	"sledzig/internal/channel"
	"sledzig/internal/dsp"
	"sledzig/internal/wifi"
)

func TestChannelGeometry(t *testing.T) {
	cases := []struct {
		ch     ZigBeeChannel
		window []int
		nData  int
		pilots []int
	}{
		{CH1, []int{-26, -25, -24, -23, -22, -21, -20, -19}, 7, []int{-21}},
		{CH2, []int{-10, -9, -8, -7, -6, -5, -4, -3}, 7, []int{-7}},
		{CH3, []int{6, 7, 8, 9, 10, 11, 12, 13}, 7, []int{7}},
		{CH4, []int{22, 23, 24, 25, 26, 27, 28, 29}, 5, nil},
	}
	for _, tc := range cases {
		got := tc.ch.SubcarrierWindow()
		if len(got) != 8 {
			t.Fatalf("%v: window has %d subcarriers, want 8", tc.ch, len(got))
		}
		for i := range got {
			if got[i] != tc.window[i] {
				t.Fatalf("%v: window %v, want %v", tc.ch, got, tc.window)
			}
		}
		if n := len(tc.ch.DataSubcarriers()); n != tc.nData {
			t.Errorf("%v: %d data subcarriers, want %d", tc.ch, n, tc.nData)
		}
		pilots := tc.ch.PilotSubcarriers()
		if len(pilots) != len(tc.pilots) {
			t.Errorf("%v: pilots %v, want %v", tc.ch, pilots, tc.pilots)
		}
	}
}

func TestFromZigBeeChannelNumber(t *testing.T) {
	// The paper's setup: WiFi channel 13 overlaps ZigBee 23-26 as CH1-CH4.
	for i, zb := range []int{23, 24, 25, 26} {
		got, err := FromZigBeeChannelNumber(zb, 13)
		if err != nil {
			t.Fatal(err)
		}
		if got != ZigBeeChannel(i+1) {
			t.Errorf("ZigBee %d on WiFi 13 = %v, want CH%d", zb, got, i+1)
		}
	}
	if _, err := FromZigBeeChannelNumber(11, 13); err == nil {
		t.Error("non-overlapping channel accepted")
	}
}

// TestTableIISignificantPositions reproduces the paper's Table II exactly:
// the 14 significant-bit positions of the first OFDM symbol under QAM-16,
// rate 1/2, channel CH2, with the twin steps at n = 15, 21, 39, 45.
func TestTableIISignificantPositions(t *testing.T) {
	mode := wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	cs, err := SymbolConstraints(wifi.ConventionPaper, mode, CH2.DataSubcarriers())
	if err != nil {
		t.Fatal(err)
	}
	wantP := []int{29, 30, 41, 42, 77, 78, 89, 90, 125, 138, 172, 173, 183, 186}
	wantN := []int{15, 15, 21, 21, 39, 39, 45, 45, 63, 69, 86, 87, 92, 93}
	if len(cs) != len(wantP) {
		t.Fatalf("%d significant bits, want %d", len(cs), len(wantP))
	}
	for i, c := range cs {
		if c.PaperPosition() != wantP[i] {
			t.Errorf("p_%d = %d, want %d", i+1, c.PaperPosition(), wantP[i])
		}
		if c.Step()+1 != wantN[i] {
			t.Errorf("n_%d = %d, want %d", i+1, c.Step()+1, wantN[i])
		}
	}
}

// TestTableIIAlgorithmOnePositions checks that the planner picks the
// paper's Algorithm 1 extra-bit slots for Table II's symbol: twins solve
// through inputs n-1 and n-5, singles through n.
func TestTableIIAlgorithmOnePositions(t *testing.T) {
	mode := wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	cs, err := SymbolConstraints(wifi.ConventionPaper, mode, CH2.DataSubcarriers())
	if err != nil {
		t.Fatal(err)
	}
	steps, err := GroupConstraints(cs, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSteps(steps, true); err != nil {
		t.Fatal(err)
	}
	// 1-based steps 15,21,39,45 are twins; extras at n-1 and n-5.
	wantExtras := map[int][]int{
		14: {13, 9}, 20: {19, 15}, 38: {37, 33}, 44: {43, 39},
		62: {62}, 68: {68}, 85: {85}, 86: {86}, 91: {91}, 92: {92},
	}
	if len(steps) != len(wantExtras) {
		t.Fatalf("%d constrained steps, want %d", len(steps), len(wantExtras))
	}
	for _, s := range steps {
		want := wantExtras[s.Step]
		if len(want) != len(s.ExtraOffsets) {
			t.Fatalf("step %d: extras %v, want %v", s.Step, s.ExtraOffsets, want)
		}
		for i := range want {
			if s.ExtraOffsets[i] != want[i] {
				t.Fatalf("step %d: extras %v, want %v", s.Step, s.ExtraOffsets, want)
			}
		}
	}
}

// TestTableIIIExtraBits verifies the extra-bit counts per OFDM symbol from
// first principles (paper Table III). The paper's QAM-64 r=2/3 CH1-CH3
// entry (24) disagrees with its own Table IV (14.58% of 192 = 28); the
// first-principles count is 28.
func TestTableIIIExtraBits(t *testing.T) {
	want := map[wifi.Mode][2]int{
		{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}:  {14, 10},
		{Modulation: wifi.QAM16, CodeRate: wifi.Rate34}:  {14, 10},
		{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}:  {28, 20},
		{Modulation: wifi.QAM64, CodeRate: wifi.Rate34}:  {28, 20},
		{Modulation: wifi.QAM64, CodeRate: wifi.Rate56}:  {28, 20},
		{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}: {42, 30},
		{Modulation: wifi.QAM256, CodeRate: wifi.Rate56}: {42, 30},
	}
	for _, conv := range []wifi.Convention{wifi.ConventionIEEE, wifi.ConventionPaper} {
		rows, err := OverheadTable(conv)
		if err != nil {
			t.Fatalf("%v: %v", conv, err)
		}
		for _, row := range rows {
			w := want[row.Mode]
			if row.ExtraBitsCH13 != w[0] || row.ExtraBitsCH4 != w[1] {
				t.Errorf("%v %v: extras (%d, %d), want (%d, %d)",
					conv, row.Mode, row.ExtraBitsCH13, row.ExtraBitsCH4, w[0], w[1])
			}
		}
	}
}

// TestTableIVThroughputLoss verifies the loss percentages against the
// paper's Table IV (the QAM-64 2/3 and QAM-256 3/4 CH4 rows differ from
// the paper's arithmetic as documented in EXPERIMENTS.md).
func TestTableIVThroughputLoss(t *testing.T) {
	rows, err := OverheadTable(wifi.ConventionPaper)
	if err != nil {
		t.Fatal(err)
	}
	want := map[wifi.Mode][2]float64{
		{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}:  {14.58, 10.42},
		{Modulation: wifi.QAM16, CodeRate: wifi.Rate34}:  {9.72, 6.94},
		{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}:  {14.58, 10.42},
		{Modulation: wifi.QAM64, CodeRate: wifi.Rate34}:  {12.96, 9.26},
		{Modulation: wifi.QAM64, CodeRate: wifi.Rate56}:  {11.67, 8.33},
		{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}: {14.58, 10.42},
		{Modulation: wifi.QAM256, CodeRate: wifi.Rate56}: {13.12, 9.37},
	}
	for _, row := range rows {
		w := want[row.Mode]
		if math.Abs(100*row.LossCH13-w[0]) > 0.01 {
			t.Errorf("%v: CH1-3 loss %.2f%%, want %.2f%%", row.Mode, 100*row.LossCH13, w[0])
		}
		if math.Abs(100*row.LossCH4-w[1]) > 0.01 {
			t.Errorf("%v: CH4 loss %.2f%%, want %.2f%%", row.Mode, 100*row.LossCH4, w[1])
		}
	}
}

func TestPlanAllCombos(t *testing.T) {
	for _, conv := range []wifi.Convention{wifi.ConventionIEEE, wifi.ConventionPaper} {
		for _, mode := range wifi.PaperModes() {
			for _, ch := range AllChannels() {
				plan, err := NewPlan(conv, mode, ch)
				if err != nil {
					t.Fatalf("%v %v %v: %v", conv, mode, ch, err)
				}
				if plan.ExtraBitsPerSymbol() <= 0 {
					t.Fatalf("%v %v %v: no extra bits", conv, mode, ch)
				}
				// Layouts for a range of frame sizes must be valid.
				for _, nSym := range []int{1, 2, 7, 20} {
					layout, err := plan.FrameLayout(nSym)
					if err != nil {
						t.Fatalf("%v %v %v nSym=%d: %v", conv, mode, ch, nSym, err)
					}
					if len(layout.Positions) != nSym*plan.ExtraBitsPerSymbol() {
						t.Fatalf("%v %v %v nSym=%d: %d positions, want %d",
							conv, mode, ch, nSym, len(layout.Positions), nSym*plan.ExtraBitsPerSymbol())
					}
				}
			}
		}
	}
}

// TestEncodePinsLowestRing is the central mechanism test: after encoding,
// every overlapped data subcarrier of every OFDM symbol carries a
// lowest-power constellation point, under both conventions and all paper
// mode/channel combinations.
func TestEncodePinsLowestRing(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, conv := range []wifi.Convention{wifi.ConventionIEEE, wifi.ConventionPaper} {
		for _, mode := range wifi.PaperModes() {
			for _, ch := range AllChannels() {
				plan, err := NewPlan(conv, mode, ch)
				if err != nil {
					t.Fatal(err)
				}
				enc := Encoder{Plan: plan}
				payload := bits.RandomBytes(rng, 180)
				res, err := enc.Encode(payload)
				if err != nil {
					t.Fatalf("%v %v %v: %v", conv, mode, ch, err)
				}
				pts, err := res.Frame.DataPoints()
				if err != nil {
					t.Fatal(err)
				}
				dataIndex := map[int]int{}
				for i, k := range wifi.DataSubcarriers() {
					dataIndex[k] = i
				}
				kmod := wifi.NormFactor(mode.Modulation)
				for s, sym := range pts {
					for _, k := range ch.DataSubcarriers() {
						p := sym[dataIndex[k]]
						power := (real(p)*real(p) + imag(p)*imag(p)) / (kmod * kmod)
						if math.Abs(power-2) > 1e-9 {
							t.Fatalf("%v %v %v: symbol %d subcarrier %d has power %g, want 2",
								conv, mode, ch, s, k, power)
						}
					}
				}
			}
		}
	}
}

// TestEncodeDecodeRoundTrip drives the full pipeline: SledZig encode ->
// OFDM waveform -> standard receive -> channel detection -> extra-bit
// stripping -> payload.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, conv := range []wifi.Convention{wifi.ConventionIEEE, wifi.ConventionPaper} {
		for _, mode := range wifi.PaperModes() {
			for _, ch := range AllChannels() {
				plan, err := NewPlan(conv, mode, ch)
				if err != nil {
					t.Fatal(err)
				}
				payload := bits.RandomBytes(rng, 60+rng.Intn(400))
				res, err := (&Encoder{Plan: plan}).Encode(payload)
				if err != nil {
					t.Fatal(err)
				}
				wave, err := res.Frame.Waveform()
				if err != nil {
					t.Fatal(err)
				}
				rx, err := wifi.Receiver{Convention: conv}.Receive(wave)
				if err != nil {
					t.Fatalf("%v %v %v: receive: %v", conv, mode, ch, err)
				}
				got, detected, err := Decoder{Convention: conv}.DecodeAuto(rx)
				if err != nil {
					t.Fatalf("%v %v %v: decode: %v", conv, mode, ch, err)
				}
				if detected != ch {
					t.Fatalf("%v %v: detected %v, want %v", conv, mode, detected, ch)
				}
				if len(got) != len(payload) {
					t.Fatalf("%v %v %v: got %d bytes, want %d", conv, mode, ch, len(got), len(payload))
				}
				for i := range payload {
					if got[i] != payload[i] {
						t.Fatalf("%v %v %v: payload differs at %d", conv, mode, ch, i)
					}
				}
			}
		}
	}
}

// TestTransmitBitsStandardEquivalence confirms the paper's deployment
// story: feeding EncodeResult.TransmitBits into a completely standard
// transmitter (scramble -> code -> interleave -> map) produces the same
// constellation points as the SledZig frame.
func TestTransmitBitsStandardEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	mode := wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate34}
	plan, err := NewPlan(wifi.ConventionPaper, mode, CH3)
	if err != nil {
		t.Fatal(err)
	}
	payload := bits.RandomBytes(rng, 200)
	res, err := (&Encoder{Plan: plan}).Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Standard chain: scramble the transmit bits and compare the encoder
	// input with the frame's.
	rescrambled, err := wifi.ScrambleWithSeed(res.TransmitBits, wifi.DefaultScramblerSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(rescrambled, res.Frame.ScrambledBits) {
		t.Fatal("standard scrambling of TransmitBits does not reproduce the frame's encoder input")
	}
}

func TestDetectChannelRejectsNormalFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tx := wifi.Transmitter{Mode: wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}}
	frame, err := tx.Frame(bits.RandomBytes(rng, 300))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := frame.DataPoints()
	if err != nil {
		t.Fatal(err)
	}
	if ch, ok := (Decoder{}).DetectChannel(wifi.QAM16, pts); ok {
		t.Fatalf("normal frame detected as SledZig on %v", ch)
	}
}

// TestBandPowerReduction measures the actual waveform: the SledZig frame's
// power inside the protected ZigBee channel must be well below the normal
// frame's, approaching the theoretical reduction for CH4 (no pilot) and a
// pilot-limited reduction for CH1-CH3 (paper Fig. 12).
func TestBandPowerReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, tc := range []struct {
		mod     wifi.Modulation
		rate    wifi.CodeRate
		ch      ZigBeeChannel
		minDrop float64
		maxDrop float64
	}{
		{wifi.QAM16, wifi.Rate12, CH4, 5.5, 9},
		{wifi.QAM64, wifi.Rate23, CH4, 10, 15},
		{wifi.QAM256, wifi.Rate34, CH4, 13, 21},
		{wifi.QAM16, wifi.Rate12, CH2, 3, 6},
		{wifi.QAM64, wifi.Rate23, CH2, 5, 9},
		{wifi.QAM256, wifi.Rate34, CH2, 6, 10},
	} {
		mode := wifi.Mode{Modulation: tc.mod, CodeRate: tc.rate}
		payload := bits.RandomBytes(rng, 500)

		normal, err := wifi.Transmitter{Mode: mode, Convention: wifi.ConventionPaper}.Frame(payload)
		if err != nil {
			t.Fatal(err)
		}
		normalWave, err := normal.DataWaveform()
		if err != nil {
			t.Fatal(err)
		}
		plan, err := NewPlan(wifi.ConventionPaper, mode, tc.ch)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (&Encoder{Plan: plan}).Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		sledWave, err := res.Frame.DataWaveform()
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := tc.ch.BandHz()
		pN, err := dsp.BandPower(normalWave, wifi.SampleRate, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		pS, err := dsp.BandPower(sledWave, wifi.SampleRate, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		drop := dsp.DB(pN) - dsp.DB(pS)
		if drop < tc.minDrop || drop > tc.maxDrop {
			t.Errorf("%v %v: band power drop %.1f dB, want in [%.1f, %.1f]",
				mode, tc.ch, drop, tc.minDrop, tc.maxDrop)
		}
	}
}

func TestEncoderPropertyRandomPayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	plan, err := NewPlan(wifi.ConventionPaper, wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}, CH2)
	if err != nil {
		t.Fatal(err)
	}
	enc := &Encoder{Plan: plan}
	dec := Decoder{Convention: wifi.ConventionPaper}
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		payload := bits.RandomBytes(lr, 1+lr.Intn(300))
		res, err := enc.Encode(payload)
		if err != nil {
			return false
		}
		// Bit-domain round trip (no waveform, fast).
		rx := &wifi.RxResult{
			Mode:     plan.Mode,
			DataBits: res.TransmitBits,
		}
		got, err := dec.Decode(rx, CH2)
		if err != nil || len(got) != len(payload) {
			return false
		}
		for i := range payload {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPayloadAndNumSymbolsConsistent(t *testing.T) {
	plan, err := NewPlan(wifi.ConventionPaper, wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate56}, CH1)
	if err != nil {
		t.Fatal(err)
	}
	enc := &Encoder{Plan: plan}
	for _, n := range []int{1, 2, 5, 30} {
		maxLen := enc.MaxPayload(n)
		if maxLen < 1 {
			continue
		}
		if got := enc.NumSymbols(maxLen); got != n {
			t.Errorf("MaxPayload(%d)=%d but NumSymbols=%d", n, maxLen, got)
		}
		if got := enc.NumSymbols(maxLen + 1); got != n+1 {
			t.Errorf("NumSymbols(MaxPayload(%d)+1)=%d, want %d", n, got, n+1)
		}
	}
}

func TestSubcarrierSubset(t *testing.T) {
	// Fig. 11's sweep: subsets grow outward from the channel center.
	s6, err := CH2.DataSubcarrierSubset(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(s6) != 6 {
		t.Fatalf("subset size %d", len(s6))
	}
	s7, err := CH2.DataSubcarrierSubset(7)
	if err != nil {
		t.Fatal(err)
	}
	// The 7-subcarrier subset is the full window's data set.
	all := CH2.DataSubcarriers()
	for i := range all {
		if s7[i] != all[i] {
			t.Fatalf("7-subcarrier subset %v != full set %v", s7, all)
		}
	}
	// The 8th subcarrier extends past the window (the pilot is skipped).
	s8, err := CH2.DataSubcarrierSubset(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(s8) != 8 {
		t.Fatalf("8-subcarrier subset has %d entries", len(s8))
	}
	if _, err := CH2.DataSubcarrierSubset(49); err == nil {
		t.Fatal("oversized subset accepted")
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	plan, err := NewPlan(wifi.ConventionPaper, wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}, CH1)
	if err != nil {
		t.Fatal(err)
	}
	enc := &Encoder{Plan: plan}
	if _, err := enc.Encode(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := (&Encoder{}).Encode([]byte{1}); err == nil {
		t.Error("nil plan accepted")
	}
}

// TestNotchSurvivesMultipath: the SledZig suppression is a transmit-side
// property; a frequency-selective channel shifts absolute levels but the
// protected band must stay well below the rest of the spectrum.
func TestNotchSurvivesMultipath(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	mode := wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}
	plan, err := NewPlan(wifi.ConventionPaper, mode, CH4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Encoder{Plan: plan}).Encode(bits.RandomBytes(rng, 400))
	if err != nil {
		t.Fatal(err)
	}
	wave, err := res.Frame.DataWaveform()
	if err != nil {
		t.Fatal(err)
	}
	mp := channel.TwoRay(8, 6)
	faded, err := mp.Apply(wave)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := CH4.BandHz()
	inBand, err := dsp.BandPower(faded, wifi.SampleRate, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	refLo, refHi := CH1.BandHz()
	ref, err := dsp.BandPower(faded, wifi.SampleRate, refLo, refHi)
	if err != nil {
		t.Fatal(err)
	}
	if drop := dsp.DB(ref) - dsp.DB(inBand); drop < 8 {
		t.Fatalf("notch only %.1f dB below reference band after multipath", drop)
	}
}

// TestSledZigFrameMeetsSpectralMask: moving energy between constellation
// points must not break 802.11 transmit-mask compliance.
func TestSledZigFrameMeetsSpectralMask(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, ch := range []ZigBeeChannel{CH1, CH4} {
		plan, err := NewPlan(wifi.ConventionPaper, wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}, ch)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (&Encoder{Plan: plan}).Encode(bits.RandomBytes(rng, 2500))
		if err != nil {
			t.Fatal(err)
		}
		wave, err := res.Frame.DataWaveform()
		if err != nil {
			t.Fatal(err)
		}
		violations, err := wifi.CheckSpectralMask(wave, wifi.SampleRate, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(violations) > 2 {
			t.Fatalf("%v: %d mask violations", ch, len(violations))
		}
	}
}

// TestLayoutEquivalenceFullMask: expanding a plan's constraints over every
// symbol and solving them as one global list must yield exactly the
// layout FrameLayout computes — the differential test tying the CTC
// selective-masking path to the standard path.
func TestLayoutEquivalenceFullMask(t *testing.T) {
	for _, mode := range []wifi.Mode{
		{Modulation: wifi.QAM16, CodeRate: wifi.Rate12},
		{Modulation: wifi.QAM256, CodeRate: wifi.Rate34},
	} {
		plan, err := NewPlan(wifi.ConventionPaper, mode, CH2)
		if err != nil {
			t.Fatal(err)
		}
		const nSym = 6
		want, err := plan.FrameLayout(nSym)
		if err != nil {
			t.Fatal(err)
		}
		var all []Constraint
		for s := 0; s < nSym; s++ {
			for _, c := range plan.SymbolConstraintList() {
				all = append(all, Constraint{
					MotherIndex: c.MotherIndex + s*2*mode.DataBitsPerSymbol(),
					Value:       c.Value,
				})
			}
		}
		got, err := LayoutForGlobalConstraints(all, nSym)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Positions) != len(want.Positions) {
			t.Fatalf("%v: %d vs %d positions", mode, len(got.Positions), len(want.Positions))
		}
		for i := range want.Positions {
			if got.Positions[i] != want.Positions[i] {
				t.Fatalf("%v: position %d differs (%d vs %d)", mode, i, got.Positions[i], want.Positions[i])
			}
		}
	}
}

// TestPlanDeterminism: the same inputs always produce the same layout
// (receivers depend on it).
func TestPlanDeterminism(t *testing.T) {
	mode := wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate56}
	a, err := NewPlan(wifi.ConventionIEEE, mode, CH3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(wifi.ConventionIEEE, mode, CH3)
	if err != nil {
		t.Fatal(err)
	}
	la, _ := a.FrameLayout(9)
	lb, _ := b.FrameLayout(9)
	if len(la.Positions) != len(lb.Positions) {
		t.Fatal("layout sizes differ")
	}
	for i := range la.Positions {
		if la.Positions[i] != lb.Positions[i] {
			t.Fatal("layouts differ between identical plans")
		}
	}
}
