package core

import (
	"fmt"
	"sync"

	"sledzig/internal/bits"
	"sledzig/internal/obs/trace"
	"sledzig/internal/wifi"
)

const (
	serviceBits = 16
	tailBits    = 6
	// headerOctets prefix the payload with its length (little-endian
	// uint16) inside the SledZig framing, so the receiver can recover the
	// original payload boundary after stripping extra bits.
	headerOctets = 2
)

// Encoder produces SledZig WiFi frames: standard-format PPDUs whose
// payload bits are chosen so the OFDM subcarriers overlapping the plan's
// ZigBee channel always carry the lowest-power constellation points.
type Encoder struct {
	Plan *Plan
	// Seed is the scrambler seed (0 selects wifi.DefaultScramblerSeed).
	Seed uint8
	// Trace, when non-nil, receives one child span per encode stage
	// (core.layout → core.scramble → core.solve → core.verify) and is
	// propagated to the produced wifi.Frame so waveform synthesis lands in
	// the same trace. A nil Trace costs one nil check per stage.
	Trace *trace.Frame
}

// EncodeResult carries the assembled frame plus the artifacts a caller may
// want to inspect or feed to a stock transmitter.
type EncodeResult struct {
	// Frame is ready for OFDM modulation (wifi.Frame.Waveform).
	Frame *wifi.Frame
	// TransmitBits is the unscrambled DATA-field bit stream — what one
	// would feed a completely standard 802.11 transmitter (which then
	// scrambles, codes, interleaves and maps it) to obtain the same
	// waveform. This is the paper's "transmit bits".
	TransmitBits []bits.Bit
	// Layout records the extra-bit positions of this frame.
	Layout *FrameLayout
	// PayloadLength is the original payload size in octets.
	PayloadLength int
}

// MaxPayload returns the largest payload (octets) a frame of nSymbols can
// carry under the plan.
func (e *Encoder) MaxPayload(nSymbols int) int {
	capacity := nSymbols*e.Plan.EffectiveDataBitsPerSymbol() - serviceBits - tailBits
	return capacity/8 - headerOctets
}

// NumSymbols returns the frame size in OFDM symbols for a payload of
// length octets.
func (e *Encoder) NumSymbols(length int) int {
	needed := serviceBits + 8*(headerOctets+length) + tailBits
	eff := e.Plan.EffectiveDataBitsPerSymbol()
	return (needed + eff - 1) / eff
}

// Encode builds the SledZig frame for payload. Every result buffer is
// freshly allocated; batch and streaming callers that can recycle results
// should use EncodeTo.
func (e *Encoder) Encode(payload []byte) (*EncodeResult, error) {
	res := new(EncodeResult)
	if err := e.EncodeTo(payload, res); err != nil {
		return nil, err
	}
	return res, nil
}

// encodeScratch holds the per-frame intermediate bit buffers that never
// escape Encode, pooled so steady-state encoding allocates nothing for
// them.
type encodeScratch struct {
	logical []bits.Bit
	u       []bits.Bit
	extra   []bool
}

var encodeScratchPool = sync.Pool{New: func() any { return new(encodeScratch) }}

// EncodeTo builds the SledZig frame for payload into res, reusing res's
// existing buffers (TransmitBits and Frame.ScrambledBits) when their
// capacity suffices. On success res is fully overwritten; on error its
// contents are unspecified. The caller owns res until the next EncodeTo
// with the same res — results handed to other goroutines must not be
// reused. res.Layout aliases the plan's shared, read-only layout. The
// bit-stream outputs are identical to Encode's for the same payload.
//
//sledzig:noalloc
func (e *Encoder) EncodeTo(payload []byte, res *EncodeResult) error {
	m := metrics()
	if e.Plan == nil {
		return fmt.Errorf("core: encoder has no plan")
	}
	if res == nil {
		return fmt.Errorf("core: EncodeTo needs a result to fill")
	}
	if len(payload) == 0 || len(payload) > 0xFFFF {
		err := fmt.Errorf("core: payload length %d outside [1, 65535]: %w", len(payload), ErrPayloadSize)
		m.fail(m.failEncoder, "core.encode", "encode_fail.validate", err)
		return err
	}
	nSym := e.NumSymbols(len(payload))
	t0 := m.encLayout.Start()
	mk := e.Trace.Begin("core.layout")
	layout, err := e.Plan.FrameLayout(nSym)
	mk.End()
	if err != nil {
		m.encLayout.Fail(t0)
		m.fail(m.failEncoder, "core.encode", "encode_fail.layout", err)
		return err
	}
	m.encLayout.Done(t0, 0)
	nDBPS := e.Plan.Mode.DataBitsPerSymbol()
	total := nSym * nDBPS
	if len(layout.Positions) >= total {
		return fmt.Errorf("core: layout consumes the whole frame")
	}

	scratch := encodeScratchPool.Get().(*encodeScratch)
	defer encodeScratchPool.Put(scratch)

	// Logical stream: SERVICE zeros, length header, payload, tail zeros,
	// zero padding up to the non-extra capacity.
	capacity := total - len(layout.Positions)
	need := serviceBits + 8*(headerOctets+len(payload)) + tailBits
	if need > capacity {
		return fmt.Errorf("core: internal error: logical stream %d exceeds capacity %d", need, capacity)
	}
	scratch.logical = bits.Grow(scratch.logical, capacity)
	logical := scratch.logical
	clear(logical)
	header := [headerOctets]byte{byte(len(payload)), byte(len(payload) >> 8)}
	n := serviceBits
	n += bits.CopyBytes(logical[n:], header[:])
	bits.CopyBytes(logical[n:], payload)

	// Physical unscrambled stream: logical bits at non-extra positions.
	if cap(scratch.extra) < total {
		scratch.extra = make([]bool, total)
	}
	scratch.extra = scratch.extra[:total]
	extra := scratch.extra
	clear(extra)
	for _, p := range layout.Positions {
		if p < 0 || p >= total {
			return fmt.Errorf("core: extra position %d outside frame of %d bits", p, total)
		}
		extra[p] = true
	}
	scratch.u = bits.Grow(scratch.u, total)
	u := scratch.u
	li := 0
	for i := range u {
		if extra[i] {
			u[i] = 0
		} else {
			u[i] = logical[li]
			li++
		}
	}

	// Scramble, then solve the extra bits in the scrambled (encoder-input)
	// domain. x becomes the frame's encoder-input stream, so it lives in
	// the (reusable) result buffer rather than the scratch pool.
	seed := e.Seed
	if seed == 0 {
		seed = wifi.DefaultScramblerSeed
	}
	var x []bits.Bit
	if res.Frame != nil {
		x = res.Frame.ScrambledBits
	}
	x = bits.Grow(x, total)
	t0 = m.encScramble.Start()
	mk = e.Trace.Begin("core.scramble")
	if err := wifi.ScrambleWithSeedInto(x, u, seed); err != nil {
		mk.End()
		m.encScramble.Fail(t0)
		return err
	}
	mk.End()
	m.encScramble.Done(t0, len(payload))
	// Zero the placeholders: scrambling flipped some of them to the
	// scrambler sequence; the solver assumes unknowns start at zero.
	for _, p := range layout.Positions {
		x[p] = 0
	}
	t0 = m.encSolve.Start()
	mk = e.Trace.Begin("core.solve")
	if err := solveClusters(x, layout.Clusters); err != nil {
		mk.End()
		m.encSolve.Fail(t0)
		m.fail(m.failEncoder, "core.encode", "encode_fail.solve", err)
		return err
	}
	mk.End()
	m.encSolve.Done(t0, 0)
	t0 = m.encVerify.Start()
	mk = e.Trace.Begin("core.verify")
	if err := verifyConstraints(x, layout.Clusters); err != nil {
		mk.End()
		m.encVerify.Fail(t0)
		m.fail(m.failEncoder, "core.encode", "encode_fail.verify", err)
		return err
	}
	mk.End()
	m.encVerify.Done(t0, 0)

	// The standard-compatible "transmit bits" are the descrambled stream.
	res.TransmitBits = bits.Grow(res.TransmitBits, total)
	if err := wifi.ScrambleWithSeedInto(res.TransmitBits, x, seed); err != nil {
		return err
	}

	signalled := (total - serviceBits - tailBits) / 8
	if signalled < 1 || signalled > wifi.MaxPSDULength {
		err := fmt.Errorf("core: signalled length %d out of range [1, %d]: %w", signalled, wifi.MaxPSDULength, ErrPayloadSize)
		m.fail(m.failEncoder, "core.encode", "encode_fail.validate", err)
		return err
	}
	if err := e.Plan.Mode.Validate(); err != nil {
		return err
	}
	if res.Frame == nil {
		res.Frame = new(wifi.Frame)
	}
	*res.Frame = wifi.Frame{
		Mode:          e.Plan.Mode,
		Convention:    e.Plan.Convention,
		PSDULength:    signalled,
		Terminated:    false,
		ScrambledBits: x,
		NumSymbols:    nSym,
		Trace:         e.Trace,
	}
	res.Layout = layout
	res.PayloadLength = len(payload)
	m.encFrames.Inc()
	m.encPayload.Add(uint64(len(payload)))
	return nil
}

// solveScratch backs the augmented matrices of solveClusters; a frame
// solves hundreds of small clusters, so the backing is pooled rather than
// reallocated per cluster.
type solveScratch struct {
	rows  [][]bits.Bit
	cells []bits.Bit
}

var solveScratchPool = sync.Pool{New: func() any { return new(solveScratch) }}

// solveClusters determines the extra bits in the scrambled stream x so
// every cluster's pinned encoder outputs hold. Clusters are processed in
// order; each is a small GF(2) linear solve.
//
//sledzig:noalloc
func solveClusters(x []bits.Bit, clusters []Cluster) error {
	s := solveScratchPool.Get().(*solveScratch)
	defer solveScratchPool.Put(s)
	for _, cl := range clusters {
		e := len(cl.Equations)
		w := e + 1
		// Augmented matrix over the cluster's unknown positions, carved
		// out of the pooled flat backing.
		if cap(s.rows) < e {
			s.rows = make([][]bits.Bit, e)
		}
		if cap(s.cells) < e*w {
			s.cells = make([]bits.Bit, e*w)
		}
		rows := s.rows[:e]
		cells := s.cells[:e*w]
		clear(cells)
		for r := range rows {
			rows[r] = cells[r*w : (r+1)*w]
		}
		for r, eq := range cl.Equations {
			for c, p := range cl.Positions {
				d := eq.Step() - p
				if d >= 0 && d < wifi.ConstraintLength {
					g0, g1 := generatorCoeff(d)
					if eq.MotherIndex%2 == 0 {
						rows[r][c] = g0
					} else {
						rows[r][c] = g1
					}
				}
			}
			// Constant term: encoder output with unknowns at zero.
			rows[r][e] = eq.Value ^ encodeOutput(x, eq)
		}
		// Gauss-Jordan.
		for col := 0; col < e; col++ {
			pivot := -1
			for r := col; r < e; r++ {
				if rows[r][col] == 1 {
					pivot = r
					break
				}
			}
			if pivot < 0 {
				return fmt.Errorf("core: singular cluster system at column %d: %w", col, ErrConstraintUnsatisfied)
			}
			rows[col], rows[pivot] = rows[pivot], rows[col]
			for r := 0; r < e; r++ {
				if r != col && rows[r][col] == 1 {
					for cc := col; cc <= e; cc++ {
						rows[r][cc] ^= rows[col][cc]
					}
				}
			}
		}
		for i, p := range cl.Positions {
			x[p] = rows[i][e]
		}
	}
	return nil
}

// encodeOutput computes the mother-code output bit for one constraint
// given the current stream contents.
func encodeOutput(x []bits.Bit, eq Constraint) bits.Bit {
	step := eq.Step()
	var window uint32
	for d := 0; d < wifi.ConstraintLength; d++ {
		idx := step - d
		if idx >= 0 && idx < len(x) {
			window |= uint32(x[idx]&1) << d
		}
	}
	y0, y1 := wifi.EncodeStep(window)
	if eq.MotherIndex%2 == 0 {
		return y0
	}
	return y1
}

// verifyConstraints re-checks every pinned output against the final
// stream — cheap insurance that the solver and the encoder agree.
func verifyConstraints(x []bits.Bit, clusters []Cluster) error {
	for _, cl := range clusters {
		for _, eq := range cl.Equations {
			if got := encodeOutput(x, eq); got != eq.Value {
				return fmt.Errorf("core: constraint at mother index %d unsatisfied (got %d, want %d): %w",
					eq.MotherIndex, got, eq.Value, ErrConstraintUnsatisfied)
			}
		}
	}
	return nil
}

// SolveExtraBits determines the extra bits of a scrambled encoder-input
// stream in place so every cluster constraint holds, then re-verifies —
// the generic entry point for alternative frame formats.
func SolveExtraBits(x []bits.Bit, clusters []Cluster) error {
	if err := solveClusters(x, clusters); err != nil {
		return err
	}
	return verifyConstraints(x, clusters)
}
