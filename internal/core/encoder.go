package core

import (
	"fmt"

	"sledzig/internal/bits"
	"sledzig/internal/wifi"
)

const (
	serviceBits = 16
	tailBits    = 6
	// headerOctets prefix the payload with its length (little-endian
	// uint16) inside the SledZig framing, so the receiver can recover the
	// original payload boundary after stripping extra bits.
	headerOctets = 2
)

// Encoder produces SledZig WiFi frames: standard-format PPDUs whose
// payload bits are chosen so the OFDM subcarriers overlapping the plan's
// ZigBee channel always carry the lowest-power constellation points.
type Encoder struct {
	Plan *Plan
	// Seed is the scrambler seed (0 selects wifi.DefaultScramblerSeed).
	Seed uint8
}

// EncodeResult carries the assembled frame plus the artifacts a caller may
// want to inspect or feed to a stock transmitter.
type EncodeResult struct {
	// Frame is ready for OFDM modulation (wifi.Frame.Waveform).
	Frame *wifi.Frame
	// TransmitBits is the unscrambled DATA-field bit stream — what one
	// would feed a completely standard 802.11 transmitter (which then
	// scrambles, codes, interleaves and maps it) to obtain the same
	// waveform. This is the paper's "transmit bits".
	TransmitBits []bits.Bit
	// Layout records the extra-bit positions of this frame.
	Layout *FrameLayout
	// PayloadLength is the original payload size in octets.
	PayloadLength int
}

// MaxPayload returns the largest payload (octets) a frame of nSymbols can
// carry under the plan.
func (e *Encoder) MaxPayload(nSymbols int) int {
	capacity := nSymbols*e.Plan.EffectiveDataBitsPerSymbol() - serviceBits - tailBits
	return capacity/8 - headerOctets
}

// NumSymbols returns the frame size in OFDM symbols for a payload of
// length octets.
func (e *Encoder) NumSymbols(length int) int {
	needed := serviceBits + 8*(headerOctets+length) + tailBits
	eff := e.Plan.EffectiveDataBitsPerSymbol()
	return (needed + eff - 1) / eff
}

// Encode builds the SledZig frame for payload.
func (e *Encoder) Encode(payload []byte) (*EncodeResult, error) {
	m := metrics()
	if e.Plan == nil {
		return nil, fmt.Errorf("core: encoder has no plan")
	}
	if len(payload) == 0 || len(payload) > 0xFFFF {
		err := fmt.Errorf("core: payload length %d outside [1, 65535]", len(payload))
		m.fail(m.failEncoder, "core.encode", "encode_fail.validate", err)
		return nil, err
	}
	nSym := e.NumSymbols(len(payload))
	t0 := m.encLayout.Start()
	layout, err := e.Plan.FrameLayout(nSym)
	if err != nil {
		m.encLayout.Fail(t0)
		m.fail(m.failEncoder, "core.encode", "encode_fail.layout", err)
		return nil, err
	}
	m.encLayout.Done(t0, 0)
	nDBPS := e.Plan.Mode.DataBitsPerSymbol()
	total := nSym * nDBPS
	if len(layout.Positions) >= total {
		return nil, fmt.Errorf("core: layout consumes the whole frame")
	}

	// Logical stream: SERVICE zeros, length header, payload, tail zeros,
	// zero padding up to the non-extra capacity.
	logical := make([]bits.Bit, 0, total-len(layout.Positions))
	logical = append(logical, make([]bits.Bit, serviceBits)...)
	header := []byte{byte(len(payload)), byte(len(payload) >> 8)}
	logical = append(logical, bits.FromBytes(header)...)
	logical = append(logical, bits.FromBytes(payload)...)
	logical = append(logical, make([]bits.Bit, tailBits)...)
	capacity := total - len(layout.Positions)
	if len(logical) > capacity {
		return nil, fmt.Errorf("core: internal error: logical stream %d exceeds capacity %d", len(logical), capacity)
	}
	logical = append(logical, make([]bits.Bit, capacity-len(logical))...)

	// Physical unscrambled stream: logical bits at non-extra positions.
	extra := make([]bool, total)
	for _, p := range layout.Positions {
		if p < 0 || p >= total {
			return nil, fmt.Errorf("core: extra position %d outside frame of %d bits", p, total)
		}
		extra[p] = true
	}
	u := make([]bits.Bit, total)
	li := 0
	for i := range u {
		if !extra[i] {
			u[i] = logical[li]
			li++
		}
	}

	// Scramble, then solve the extra bits in the scrambled (encoder-input)
	// domain.
	seed := e.Seed
	if seed == 0 {
		seed = wifi.DefaultScramblerSeed
	}
	t0 = m.encScramble.Start()
	x, err := wifi.ScrambleWithSeed(u, seed)
	if err != nil {
		m.encScramble.Fail(t0)
		return nil, err
	}
	m.encScramble.Done(t0, len(payload))
	// Zero the placeholders: scrambling flipped some of them to the
	// scrambler sequence; the solver assumes unknowns start at zero.
	for _, p := range layout.Positions {
		x[p] = 0
	}
	t0 = m.encSolve.Start()
	if err := solveClusters(x, layout.Clusters); err != nil {
		m.encSolve.Fail(t0)
		m.fail(m.failEncoder, "core.encode", "encode_fail.solve", err)
		return nil, err
	}
	m.encSolve.Done(t0, 0)
	t0 = m.encVerify.Start()
	if err := verifyConstraints(x, layout.Clusters); err != nil {
		m.encVerify.Fail(t0)
		m.fail(m.failEncoder, "core.encode", "encode_fail.verify", err)
		return nil, err
	}
	m.encVerify.Done(t0, 0)

	// The standard-compatible "transmit bits" are the descrambled stream.
	transmit, err := wifi.ScrambleWithSeed(x, seed)
	if err != nil {
		return nil, err
	}

	signalled := (total - serviceBits - tailBits) / 8
	tx := wifi.Transmitter{Mode: e.Plan.Mode, Seed: seed, Convention: e.Plan.Convention}
	frame, err := tx.FrameFromScrambled(x, signalled)
	if err != nil {
		return nil, err
	}
	m.encFrames.Inc()
	m.encPayload.Add(uint64(len(payload)))
	return &EncodeResult{
		Frame:         frame,
		TransmitBits:  transmit,
		Layout:        layout,
		PayloadLength: len(payload),
	}, nil
}

// solveClusters determines the extra bits in the scrambled stream x so
// every cluster's pinned encoder outputs hold. Clusters are processed in
// order; each is a small GF(2) linear solve.
func solveClusters(x []bits.Bit, clusters []Cluster) error {
	for _, cl := range clusters {
		e := len(cl.Equations)
		// Augmented matrix over the cluster's unknown positions.
		rows := make([][]bits.Bit, e)
		for r, eq := range cl.Equations {
			rows[r] = make([]bits.Bit, e+1)
			for c, p := range cl.Positions {
				d := eq.Step() - p
				if d >= 0 && d < wifi.ConstraintLength {
					g0, g1 := generatorCoeff(d)
					if eq.MotherIndex%2 == 0 {
						rows[r][c] = g0
					} else {
						rows[r][c] = g1
					}
				}
			}
			// Constant term: encoder output with unknowns at zero.
			rows[r][e] = eq.Value ^ encodeOutput(x, eq)
		}
		// Gauss-Jordan.
		for col := 0; col < e; col++ {
			pivot := -1
			for r := col; r < e; r++ {
				if rows[r][col] == 1 {
					pivot = r
					break
				}
			}
			if pivot < 0 {
				return fmt.Errorf("core: singular cluster system at column %d", col)
			}
			rows[col], rows[pivot] = rows[pivot], rows[col]
			for r := 0; r < e; r++ {
				if r != col && rows[r][col] == 1 {
					for cc := col; cc <= e; cc++ {
						rows[r][cc] ^= rows[col][cc]
					}
				}
			}
		}
		for i, p := range cl.Positions {
			x[p] = rows[i][e]
		}
	}
	return nil
}

// encodeOutput computes the mother-code output bit for one constraint
// given the current stream contents.
func encodeOutput(x []bits.Bit, eq Constraint) bits.Bit {
	step := eq.Step()
	var window uint32
	for d := 0; d < wifi.ConstraintLength; d++ {
		idx := step - d
		if idx >= 0 && idx < len(x) {
			window |= uint32(x[idx]&1) << d
		}
	}
	y0, y1 := wifi.EncodeStep(window)
	if eq.MotherIndex%2 == 0 {
		return y0
	}
	return y1
}

// verifyConstraints re-checks every pinned output against the final
// stream — cheap insurance that the solver and the encoder agree.
func verifyConstraints(x []bits.Bit, clusters []Cluster) error {
	for _, cl := range clusters {
		for _, eq := range cl.Equations {
			if got := encodeOutput(x, eq); got != eq.Value {
				return fmt.Errorf("core: constraint at mother index %d unsatisfied (got %d, want %d)",
					eq.MotherIndex, got, eq.Value)
			}
		}
	}
	return nil
}

// SolveExtraBits determines the extra bits of a scrambled encoder-input
// stream in place so every cluster constraint holds, then re-verifies —
// the generic entry point for alternative frame formats.
func SolveExtraBits(x []bits.Bit, clusters []Cluster) error {
	if err := solveClusters(x, clusters); err != nil {
		return err
	}
	return verifyConstraints(x, clusters)
}
