package core

import "errors"

// Sentinel errors of the encode/decode pipeline. Internal failure sites
// wrap these with %w so both the facade and tests can classify failures
// with errors.Is instead of string matching.
var (
	// ErrPayloadSize marks a payload outside the encodable size range.
	ErrPayloadSize = errors.New("payload size out of range")
	// ErrNoProtectedChannel marks a decode on a frame where no overlapped
	// ZigBee channel shows the SledZig lowest-ring signature.
	ErrNoProtectedChannel = errors.New("no protected channel detected")
	// ErrConstraintUnsatisfied marks an extra-bit system that could not be
	// solved or verified: the frame's pinned constellation constraints and
	// the convolutional-coder structure disagree.
	ErrConstraintUnsatisfied = errors.New("extra-bit constraints unsatisfied")
	// ErrExtraBitLayout marks a decode whose stripped stream is
	// inconsistent with the plan's extra-bit layout (wrong convention,
	// wrong channel, or a corrupted frame).
	ErrExtraBitLayout = errors.New("extra-bit layout mismatch")
)
