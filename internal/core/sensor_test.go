package core

import (
	"math/rand"
	"testing"

	"sledzig/internal/bits"
	"sledzig/internal/dsp"
	"sledzig/internal/wifi"
	"sledzig/internal/zigbee"
)

// zigbeeOnWiFiBus renders a ZigBee frame and shifts it to its channel
// offset on the 20 MS/s WiFi baseband.
func zigbeeOnWiFiBus(t *testing.T, ch ZigBeeChannel, powerDB float64, rng *rand.Rand) []complex128 {
	t.Helper()
	wave, err := zigbee.Transmitter{SamplesPerChip: 10}.Transmit(bits.RandomBytes(rng, 30))
	if err != nil {
		t.Fatal(err)
	}
	dsp.ScaleToPower(wave, dsp.FromDB(powerDB))
	return dsp.FrequencyShift(wave, wifi.SampleRate, ch.OffsetHz())
}

func TestSensorFindsOccupiedChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ch := range AllChannels() {
		capture := make([]complex128, 1<<15)
		// Noise floor.
		for i := range capture {
			capture[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-5
		}
		zb := zigbeeOnWiFiBus(t, ch, -60, rng)
		dsp.MixInto(capture, zb, 1, 500)

		got, ok, err := (ChannelSensor{}).Sense(capture)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || got != ch {
			t.Fatalf("sensed (%v, %v), want (%v, true)", got, ok, ch)
		}
	}
}

func TestSensorIgnoresQuietBand(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	capture := make([]complex128, 1<<14)
	for i := range capture {
		capture[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	if ch, ok, err := (ChannelSensor{}).Sense(capture); err != nil || ok {
		t.Fatalf("flat noise sensed as %v (ok=%v, err=%v)", ch, ok, err)
	}
}

func TestSensorRejectsShortCapture(t *testing.T) {
	if _, _, err := (ChannelSensor{}).Sense(make([]complex128, 8)); err == nil {
		t.Fatal("short capture accepted")
	}
}

// TestSenseThenProtect ties the adaptive story together: sense the ZigBee
// neighbour's channel from a capture, build a plan for it, and verify the
// resulting frame suppresses exactly that band.
func TestSenseThenProtect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	capture := make([]complex128, 1<<15)
	for i := range capture {
		capture[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-5
	}
	dsp.MixInto(capture, zigbeeOnWiFiBus(t, CH3, -65, rng), 1, 100)

	ch, ok, err := (ChannelSensor{}).Sense(capture)
	if err != nil || !ok {
		t.Fatalf("sense failed: %v %v", ok, err)
	}
	mode := wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}
	plan, err := NewPlan(wifi.ConventionPaper, mode, ch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Encoder{Plan: plan}).Encode(bits.RandomBytes(rng, 300))
	if err != nil {
		t.Fatal(err)
	}
	wave, err := res.Frame.DataWaveform()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ch.BandHz()
	inBand, err := dsp.BandPower(wave, wifi.SampleRate, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against an unprotected channel of the same width.
	otherLo, otherHi := CH1.BandHz()
	other, err := dsp.BandPower(wave, wifi.SampleRate, otherLo, otherHi)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.DB(other)-dsp.DB(inBand) < 4 {
		t.Fatalf("protected band only %.1f dB below an unprotected one", dsp.DB(other)-dsp.DB(inBand))
	}
}
