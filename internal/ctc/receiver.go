package ctc

import (
	"fmt"

	"sledzig/internal/bits"
	"sledzig/internal/core"
	"sledzig/internal/dsp"
	"sledzig/internal/wifi"
)

// RSSIDecoder is the ZigBee-side receiver: it knows nothing about 802.11
// and recovers the message purely from band-power samples — exactly what
// a CC2420's RSSI register provides.
type RSSIDecoder struct {
	// Channel the device listens on.
	Channel core.ZigBeeChannel
	// SampleRate of the capture (default 20 MS/s, WiFi-centered).
	SampleRate float64
}

// DecodeRSSI reads the OOK message from a capture of the WiFi DATA field
// (aligned to its first sample). numBits is known from the CTC framing
// convention in use; each bit spans SymbolsPerBit OFDM symbols.
func (d RSSIDecoder) DecodeRSSI(capture []complex128, numBits int) ([]bits.Bit, error) {
	if numBits <= 0 {
		return nil, fmt.Errorf("ctc: numBits must be positive")
	}
	sr := d.SampleRate
	if sr == 0 {
		sr = wifi.SampleRate
	}
	window := SymbolsPerBit * wifi.SymbolLength
	if len(capture) < numBits*window {
		return nil, fmt.Errorf("ctc: capture of %d samples shorter than %d bits x %d samples",
			len(capture), numBits, window)
	}
	lo, hi := d.Channel.BandHz()
	levels := make([]float64, numBits)
	minL, maxL := 0.0, 0.0
	for i := 0; i < numBits; i++ {
		seg := capture[i*window : (i+1)*window]
		p, err := dsp.BandPower(seg, sr, lo, hi)
		if err != nil {
			return nil, err
		}
		levels[i] = dsp.DB(p)
		if i == 0 || levels[i] < minL {
			minL = levels[i]
		}
		if i == 0 || levels[i] > maxL {
			maxL = levels[i]
		}
	}
	if maxL-minL < 2 {
		return nil, fmt.Errorf("ctc: no OOK contrast in the capture (%.1f dB span)", maxL-minL)
	}
	threshold := (minL + maxL) / 2
	out := make([]bits.Bit, numBits)
	for i, l := range levels {
		if l > threshold {
			out[i] = 1
		}
	}
	return out, nil
}

// Decoder is the WiFi-side receiver: it recovers both the ordinary WiFi
// payload and the CTC message from a received frame, reconstructing the
// per-symbol pinning mask from the constellation itself.
type Decoder struct {
	Convention wifi.Convention
	Channel    core.ZigBeeChannel
}

// RecoverMessage reconstructs the OOK message and the regularized
// per-symbol pinning mask from received constellation points: a symbol is
// "low" when every overlapped data subcarrier sits on the lowest ring,
// and each SymbolsPerBit group majority-votes into one bit.
func (d Decoder) RecoverMessage(rx *wifi.RxResult) ([]bits.Bit, []bool, error) {
	if !d.Channel.Valid() {
		return nil, nil, fmt.Errorf("ctc: invalid channel %d", int(d.Channel))
	}
	nSym := len(rx.DataPoints)
	if nSym == 0 || nSym%SymbolsPerBit != 0 {
		return nil, nil, fmt.Errorf("ctc: frame of %d symbols is not whole CTC bits", nSym)
	}
	dataIndex := map[int]int{}
	for i, k := range wifi.DataSubcarriers() {
		dataIndex[k] = i
	}
	kmod := wifi.NormFactor(rx.Mode.Modulation)
	mask := make([]bool, nSym)
	for s, pts := range rx.DataPoints {
		low := true
		for _, k := range d.Channel.DataSubcarriers() {
			p := pts[dataIndex[k]]
			if real(p) > 2*kmod || real(p) < -2*kmod || imag(p) > 2*kmod || imag(p) < -2*kmod {
				low = false
				break
			}
		}
		mask[s] = low
	}
	// Majority-vote the mask into CTC bits (low = 0), then regularize the
	// mask to the decided values so the layout matches the transmitter's.
	message := make([]bits.Bit, nSym/SymbolsPerBit)
	for i := range message {
		lows := 0
		for s := 0; s < SymbolsPerBit; s++ {
			if mask[i*SymbolsPerBit+s] {
				lows++
			}
		}
		if lows <= SymbolsPerBit/2 {
			message[i] = 1
		}
		for s := 0; s < SymbolsPerBit; s++ {
			mask[i*SymbolsPerBit+s] = message[i] == 0
		}
	}
	return message, mask, nil
}

// Decode extracts (payload, message) from a standard receive result.
func (d Decoder) Decode(rx *wifi.RxResult) ([]byte, []bits.Bit, error) {
	message, mask, err := d.RecoverMessage(rx)
	if err != nil {
		return nil, nil, err
	}
	plan, err := core.CachedPlan(d.Convention, rx.Mode, d.Channel)
	if err != nil {
		return nil, nil, err
	}
	payload, err := core.StripMaskedPayload(plan, mask, rx.DataBits)
	if err != nil {
		return nil, nil, fmt.Errorf("ctc: %w", err)
	}
	return payload, message, nil
}
