package ctc

import (
	"math/rand"
	"testing"

	"sledzig/internal/bits"
	"sledzig/internal/core"
	"sledzig/internal/dsp"
	"sledzig/internal/wifi"
)

func TestCTCRoundTripBothSides(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	message := []bits.Bit{1, 0, 1, 1, 0, 0, 1, 0}
	payload := bits.RandomBytes(rng, 100)

	enc := Encoder{Channel: core.CH4}
	frame, err := enc.Encode(payload, message)
	if err != nil {
		t.Fatal(err)
	}

	// ZigBee side: pure RSSI sampling of the DATA waveform.
	wave, err := frame.WiFi.DataWaveform()
	if err != nil {
		t.Fatal(err)
	}
	gotMsg, err := RSSIDecoder{Channel: core.CH4}.DecodeRSSI(wave, len(message))
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(gotMsg, message) {
		t.Fatalf("ZigBee side decoded %s, want %s", bits.String(gotMsg), bits.String(message))
	}

	// WiFi side: ordinary receive plus mask reconstruction.
	full, err := frame.WiFi.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	rx, err := wifi.Receiver{}.Receive(full)
	if err != nil {
		t.Fatal(err)
	}
	gotPayload, gotMsg2, err := Decoder{Channel: core.CH4}.Decode(rx)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(gotMsg2, message) {
		t.Fatalf("WiFi side decoded message %s", bits.String(gotMsg2))
	}
	if len(gotPayload) != len(payload) {
		t.Fatalf("payload %d bytes, want %d", len(gotPayload), len(payload))
	}
	for i := range payload {
		if gotPayload[i] != payload[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

func TestCTCContrast(t *testing.T) {
	// The low/high contrast inside the channel should approach the
	// SledZig reduction for the modulation.
	rng := rand.New(rand.NewSource(2))
	message := []bits.Bit{1, 0}
	frame, err := Encoder{Channel: core.CH4, Mode: wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}}.
		Encode(bits.RandomBytes(rng, 60), message)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.WiFi.DataWaveform()
	if err != nil {
		t.Fatal(err)
	}
	window := SymbolsPerBit * wifi.SymbolLength
	lo, hi := core.CH4.BandHz()
	pHigh, err := dsp.BandPower(wave[:window], wifi.SampleRate, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	pLow, err := dsp.BandPower(wave[window:2*window], wifi.SampleRate, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if contrast := dsp.DB(pHigh) - dsp.DB(pLow); contrast < 10 {
		t.Fatalf("OOK contrast %.1f dB too small", contrast)
	}
}

func TestCTCAllOnesAndAllZeros(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, msg := range [][]bits.Bit{{1, 1, 1, 1}, {0, 0, 0, 0}} {
		frame, err := Encoder{Channel: core.CH2}.Encode(bits.RandomBytes(rng, 40), msg)
		if err != nil {
			t.Fatalf("%s: %v", bits.String(msg), err)
		}
		// The WiFi side still recovers payload and message (the RSSI side
		// legitimately cannot distinguish an all-same message without a
		// reference level; framing in a real system alternates a preamble).
		full, err := frame.WiFi.Waveform()
		if err != nil {
			t.Fatal(err)
		}
		rx, err := wifi.Receiver{}.Receive(full)
		if err != nil {
			t.Fatal(err)
		}
		_, gotMsg, err := Decoder{Channel: core.CH2}.Decode(rx)
		if err != nil {
			t.Fatal(err)
		}
		if !bits.Equal(gotMsg, msg) {
			t.Fatalf("decoded %s, want %s", bits.String(gotMsg), bits.String(msg))
		}
	}
}

func TestCTCValidation(t *testing.T) {
	if _, err := (Encoder{Channel: core.CH1}).Encode([]byte{1}, nil); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := (Encoder{}).Encode([]byte{1}, []bits.Bit{1}); err == nil {
		t.Error("zero channel accepted")
	}
	// Payload too big for a 1-bit frame.
	if _, err := (Encoder{Channel: core.CH1}).Encode(make([]byte, 4000), []bits.Bit{1}); err == nil {
		t.Error("oversized payload accepted")
	}
	if _, err := (RSSIDecoder{Channel: core.CH1}).DecodeRSSI(make([]complex128, 10), 2); err == nil {
		t.Error("short capture accepted")
	}
}

func TestCTCRandomMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(3) // QAM-64 r=2/3 fits 5 bits per frame
		message := bits.Random(rng, n)
		// Guarantee contrast for the RSSI side.
		message[0], message[1] = 1, 0
		payload := bits.RandomBytes(rng, 20+rng.Intn(40))
		frame, err := Encoder{Channel: core.CH3, Mode: wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}}.
			Encode(payload, message)
		if err != nil {
			t.Fatal(err)
		}
		wave, err := frame.WiFi.DataWaveform()
		if err != nil {
			t.Fatal(err)
		}
		got, err := RSSIDecoder{Channel: core.CH3}.DecodeRSSI(wave, n)
		if err != nil {
			t.Fatal(err)
		}
		if !bits.Equal(got, message) {
			t.Fatalf("trial %d: got %s want %s", trial, bits.String(got), bits.String(message))
		}
	}
}
