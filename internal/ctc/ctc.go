// Package ctc implements the symbol-level energy-modulation
// cross-technology channel the paper discusses as related work (SLEM,
// OfdmFi — section VI): a WiFi transmitter conveys bits to a ZigBee
// device by toggling its energy inside the ZigBee channel between "high"
// (normal constellation points) and "low" (SledZig-pinned points) over
// groups of OFDM symbols; the ZigBee side reads the pattern with nothing
// but RSSI sampling.
//
// Two things distinguish this implementation from the originals and tie
// it to SledZig: the "low" level uses SledZig's exact pinning machinery
// (so the low state is as low as payload encoding can make it — the
// paper's critique of SLEM is precisely that its points "cannot always be
// the designated lowest ones"), and the WiFi payload remains intact, so
// the same frame simultaneously carries its normal WiFi data.
package ctc

import (
	"fmt"

	"sledzig/internal/bits"
	"sledzig/internal/core"
	"sledzig/internal/wifi"
)

// SymbolsPerBit is how many OFDM symbols (4 us each) encode one CTC bit.
// ZigBee RSSI registers integrate over 8 symbol periods (128 us), so 32
// OFDM symbols per bit gives the receiver a full averaging window per
// level.
const SymbolsPerBit = 32

// Encoder embeds an OOK bit pattern into a SledZig-capable WiFi frame.
type Encoder struct {
	Convention wifi.Convention
	Mode       wifi.Mode
	Channel    core.ZigBeeChannel
	Seed       uint8
}

// Frame is a WiFi frame carrying both a WiFi payload and a CTC message.
type Frame struct {
	WiFi *wifi.Frame
	// Mask marks, per OFDM symbol, whether the ZigBee channel was pinned
	// low (true = low energy = CTC bit 0 by convention).
	Mask []bool
	// Bits is the embedded CTC message.
	Bits []bits.Bit
}

// Encode builds a frame whose in-channel energy follows message (one
// bit per SymbolsPerBit OFDM symbols; bit 1 = high energy, 0 = low) while
// carrying payload as ordinary WiFi data.
func (e Encoder) Encode(payload []byte, message []bits.Bit) (*Frame, error) {
	if len(message) == 0 {
		return nil, fmt.Errorf("ctc: empty message")
	}
	if err := bits.Validate(message); err != nil {
		return nil, err
	}
	if !e.Channel.Valid() {
		return nil, fmt.Errorf("ctc: invalid channel %d", int(e.Channel))
	}
	mode := e.Mode
	if mode.Modulation == 0 {
		mode = wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	}
	plan, err := core.NewPlan(e.Convention, mode, e.Channel)
	if err != nil {
		return nil, err
	}

	nSym := len(message) * SymbolsPerBit
	nDBPS := mode.DataBitsPerSymbol()
	// The 12-bit PLCP LENGTH field bounds one frame; longer messages span
	// multiple frames.
	if nSym*nDBPS > 8*4095+16+6 {
		return nil, fmt.Errorf("ctc: message of %d bits needs %d OFDM symbols, beyond one frame at %v (max %d bits)",
			len(message), nSym, mode, (8*4095+22)/nDBPS/SymbolsPerBit)
	}

	// Build the symbol mask: low-energy symbols carry the plan's
	// constraints, high-energy symbols none.
	mask := make([]bool, nSym)
	lowSymbols := 0
	for i, b := range message {
		if b == 0 {
			for s := 0; s < SymbolsPerBit; s++ {
				mask[i*SymbolsPerBit+s] = true
			}
			lowSymbols += SymbolsPerBit
		}
	}

	// Per-frame constraint list: the plan's per-symbol constraints, but
	// only on masked symbols.
	perSym := plan.SymbolConstraintList()
	var all []core.Constraint
	for s := 0; s < nSym; s++ {
		if !mask[s] {
			continue
		}
		for _, c := range perSym {
			all = append(all, core.Constraint{
				MotherIndex: c.MotherIndex + s*2*nDBPS,
				Value:       c.Value,
			})
		}
	}
	layout, err := core.LayoutForGlobalConstraints(all, nSym)
	if err != nil {
		return nil, err
	}

	total := nSym * nDBPS
	capacity := total - len(layout.Positions) - 16 - 6 // SERVICE + tail
	if 8*len(payload) > capacity {
		return nil, fmt.Errorf("ctc: payload of %d octets exceeds the %d-bit capacity of a %d-bit message frame",
			len(payload), capacity, len(message))
	}

	// Assemble the scrambled stream the way core.Encoder does, but with
	// the frame size fixed by the message length.
	logical := make([]bits.Bit, 0, capacity+16+6)
	logical = append(logical, make([]bits.Bit, 16)...)
	logical = append(logical, bits.FromBytes([]byte{byte(len(payload)), byte(len(payload) >> 8)})...)
	logical = append(logical, bits.FromBytes(payload)...)
	pad := total - len(layout.Positions) - len(logical)
	if pad < 0 {
		return nil, fmt.Errorf("ctc: frame capacity accounting failed")
	}
	logical = append(logical, make([]bits.Bit, pad)...)

	extra := make([]bool, total)
	for _, p := range layout.Positions {
		extra[p] = true
	}
	u := make([]bits.Bit, total)
	li := 0
	for i := range u {
		if !extra[i] {
			u[i] = logical[li]
			li++
		}
	}
	seed := e.Seed
	if seed == 0 {
		seed = wifi.DefaultScramblerSeed
	}
	x, err := wifi.ScrambleWithSeed(u, seed)
	if err != nil {
		return nil, err
	}
	for _, p := range layout.Positions {
		x[p] = 0
	}
	if err := core.SolveExtraBits(x, layout.Clusters); err != nil {
		return nil, err
	}
	tx := wifi.Transmitter{Mode: mode, Seed: seed, Convention: e.Convention}
	frame, err := tx.FrameFromScrambled(x, (total-16-6)/8)
	if err != nil {
		return nil, err
	}
	return &Frame{WiFi: frame, Mask: mask, Bits: bits.Clone(message)}, nil
}
